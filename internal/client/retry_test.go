package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	r := newRetrier(RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Seed: 42})
	// Full jitter: every draw for retry i lies in [0, min(MaxDelay, Base<<i)).
	for retry := 0; retry < 10; retry++ {
		window := 50 * time.Millisecond << retry
		if window > 400*time.Millisecond {
			window = 400 * time.Millisecond
		}
		for draw := 0; draw < 50; draw++ {
			d := r.delay(retry, nil)
			if d < 0 || d >= window {
				t.Fatalf("retry %d draw %d: delay %v outside [0, %v)", retry, draw, d, window)
			}
		}
	}
}

func TestBackoffSeededReproducible(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 7}
	a, b := newRetrier(p), newRetrier(p)
	for i := 0; i < 20; i++ {
		da, db := a.delay(i%5, nil), b.delay(i%5, nil)
		if da != db {
			t.Fatalf("draw %d: %v != %v with identical seeds", i, da, db)
		}
	}
}

func TestRetryAfterOverridesBackoff(t *testing.T) {
	r := newRetrier(testPolicy())
	last := &APIError{StatusCode: http.StatusTooManyRequests, RetryAfter: 3 * time.Second}
	if d := r.delay(0, last); d != 3*time.Second {
		t.Fatalf("delay = %v, want the server's 3s Retry-After", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"1", time.Second}, {"30", 30 * time.Second}, {"-1", 0}, {"soon", 0},
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{&APIError{StatusCode: 429}, true},
		{&APIError{StatusCode: 500}, true},
		{&APIError{StatusCode: 503}, true},
		{&APIError{StatusCode: 400}, false},
		{&APIError{StatusCode: 404}, false},
		{errors.New("dial tcp: connection refused"), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
	} {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// flakyHandler fails the first n requests with status, then delegates.
func flakyHandler(n int32, status int, then http.Handler) (http.Handler, *atomic.Int32) {
	var count atomic.Int32
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if count.Add(1) <= n {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"injected"}`))
			return
		}
		then.ServeHTTP(w, r)
	}), &count
}

func okJSON(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	})
}

func TestSearchRetriesOn429ThenSucceeds(t *testing.T) {
	h, count := flakyHandler(2, http.StatusTooManyRequests, okJSON(`{"results":[]}`))
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewWithRetry(ts.URL, testPolicy())
	if _, err := c.Search(context.Background(), []float32{1}, 1, 0, 10); err != nil {
		t.Fatalf("search after retries: %v", err)
	}
	if got := count.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 shed + 1 ok)", got)
	}
}

func TestSearchRetriesOn500(t *testing.T) {
	h, count := flakyHandler(1, http.StatusInternalServerError, okJSON(`{"results":[]}`))
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewWithRetry(ts.URL, testPolicy())
	if _, err := c.Search(context.Background(), []float32{1}, 1, 0, 10); err != nil {
		t.Fatalf("search after retry: %v", err)
	}
	if got := count.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

func TestSearchGivesUpAfterMaxAttempts(t *testing.T) {
	h, count := flakyHandler(1000, http.StatusServiceUnavailable, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewWithRetry(ts.URL, testPolicy())
	_, err := c.Search(context.Background(), []float32{1}, 1, 0, 10)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := count.Load(); got != int32(testPolicy().MaxAttempts) {
		t.Errorf("server saw %d requests, want MaxAttempts=%d", got, testPolicy().MaxAttempts)
	}
}

func TestBadRequestNotRetried(t *testing.T) {
	h, count := flakyHandler(1000, http.StatusBadRequest, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewWithRetry(ts.URL, testPolicy())
	if _, err := c.Search(context.Background(), []float32{1}, 1, 0, 10); err == nil {
		t.Fatal("expected error")
	}
	if got := count.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (400 is not retryable)", got)
	}
}

func TestAddNeverRetried(t *testing.T) {
	h, count := flakyHandler(1000, http.StatusInternalServerError, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewWithRetry(ts.URL, testPolicy())
	if _, err := c.Add(context.Background(), []float32{1}, 0); err == nil {
		t.Fatal("expected error")
	}
	if _, err := c.AddBatch(context.Background(), nil); err == nil {
		t.Fatal("expected error")
	}
	if got := count.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2 (one per call, no retries)", got)
	}
}

func TestCancelDuringBackoffSleep(t *testing.T) {
	h, _ := flakyHandler(1000, http.StatusInternalServerError, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	// A long backoff window: the context fires mid-sleep and the call
	// returns promptly with the context error, not after the full delay.
	c := NewWithRetry(ts.URL, RetryPolicy{MaxAttempts: 3, BaseDelay: 30 * time.Second, MaxDelay: time.Minute, Seed: 9})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Search(ctx, []float32{1}, 1, 0, 10)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("returned after %v; should abort the sleep when ctx fires", d)
	}
}
