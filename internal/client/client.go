// Package client is a Go client for the tknnd HTTP API (internal/server),
// used by the tknnctl command and usable as a library.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// Client talks to one tknnd instance.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at base (e.g. "http://localhost:8080").
func New(base string) *Client {
	return &Client{
		base: base,
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// Health reports whether the server answers its liveness check.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz returned %s", resp.Status)
	}
	return nil
}

// Stats fetches the index shape.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var out server.StatsResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return out, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return out, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return out, responseError(resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Add inserts a single timestamped vector and returns its id.
func (c *Client) Add(ctx context.Context, v []float32, t int64) (int, error) {
	var out server.AddResponse
	if err := c.post(ctx, "/vectors", server.AddRequest{Vector: v, Time: &t}, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// AddBatch inserts a batch and returns the assigned ids.
func (c *Client) AddBatch(ctx context.Context, batch []server.AddEntry) ([]int, error) {
	var out server.AddResponse
	if err := c.post(ctx, "/vectors", server.AddRequest{Batch: batch}, &out); err != nil {
		return nil, err
	}
	if out.Count == 1 && len(out.IDs) == 0 {
		return []int{out.ID}, nil
	}
	return out.IDs, nil
}

// Checkpoint asks the server to snapshot its index and prune covered WAL
// segments. It fails when the daemon runs without a data dir.
func (c *Client) Checkpoint(ctx context.Context) (wal.CheckpointInfo, error) {
	var out wal.CheckpointInfo
	if err := c.post(ctx, "/admin/checkpoint", struct{}{}, &out); err != nil {
		return wal.CheckpointInfo{}, err
	}
	return out, nil
}

// Search runs a TkNN query.
func (c *Client) Search(ctx context.Context, v []float32, k int, start, end int64) ([]server.SearchResult, error) {
	out, err := c.SearchDetailed(ctx, v, k, start, end)
	if err != nil {
		return nil, err
	}
	return out.Results, nil
}

// SearchDetailed runs a TkNN query and returns the full response: the
// partial flag (set when the server's -search-timeout expired or the
// request was canceled mid-query) and per-stage timings alongside the
// results.
func (c *Client) SearchDetailed(ctx context.Context, v []float32, k int, start, end int64) (server.SearchResponse, error) {
	var out server.SearchResponse
	err := c.post(ctx, "/search", server.SearchRequest{Vector: v, K: k, Start: start, End: end}, &out)
	if err != nil {
		return server.SearchResponse{}, err
	}
	return out, nil
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// responseError surfaces the server's JSON error envelope.
func responseError(resp *http.Response) error {
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil && eb.Error != "" {
		return fmt.Errorf("client: %s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("client: %s", resp.Status)
}

// drain discards and closes the body so the connection is reused. Both
// steps are best-effort: the response has already been decoded (or
// rejected), so a failure here costs at most one connection.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}
