// Package client is a Go client for the tknnd HTTP API (internal/server),
// used by the tknnctl command and usable as a library.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// Client talks to one tknnd instance.
type Client struct {
	base  string
	http  *http.Client
	retry *retrier
}

// New returns a client for the server at base (e.g. "http://localhost:8080").
func New(base string) *Client {
	return &Client{
		base: base,
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// NewWithRetry is New plus a retry policy: idempotent requests (Health,
// Stats, Search) that fail with a transport error, 429, or 5xx are
// retried with capped exponential backoff and full jitter, honoring any
// Retry-After the server sends. Add, AddBatch, and Checkpoint are never
// retried automatically.
func NewWithRetry(base string, p RetryPolicy) *Client {
	c := New(base)
	c.retry = newRetrier(p)
	return c
}

// Health reports whether the server answers its liveness check.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

// Stats fetches the index shape.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var out server.StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &out, true)
	return out, err
}

// Add inserts a single timestamped vector and returns its id. Inserts
// are not idempotent and are never retried by the client: a request that
// died mid-flight may have been applied.
func (c *Client) Add(ctx context.Context, v []float32, t int64) (int, error) {
	var out server.AddResponse
	if err := c.post(ctx, "/vectors", server.AddRequest{Vector: v, Time: &t}, &out, false); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// AddBatch inserts a batch and returns the assigned ids. Like Add, it is
// never retried automatically.
func (c *Client) AddBatch(ctx context.Context, batch []server.AddEntry) ([]int, error) {
	var out server.AddResponse
	if err := c.post(ctx, "/vectors", server.AddRequest{Batch: batch}, &out, false); err != nil {
		return nil, err
	}
	if out.Count == 1 && len(out.IDs) == 0 {
		return []int{out.ID}, nil
	}
	return out.IDs, nil
}

// Checkpoint asks the server to snapshot its index and prune covered WAL
// segments. It fails when the daemon runs without a data dir.
func (c *Client) Checkpoint(ctx context.Context) (wal.CheckpointInfo, error) {
	var out wal.CheckpointInfo
	if err := c.post(ctx, "/admin/checkpoint", struct{}{}, &out, false); err != nil {
		return wal.CheckpointInfo{}, err
	}
	return out, nil
}

// Search runs a TkNN query.
func (c *Client) Search(ctx context.Context, v []float32, k int, start, end int64) ([]server.SearchResult, error) {
	out, err := c.SearchDetailed(ctx, v, k, start, end)
	if err != nil {
		return nil, err
	}
	return out.Results, nil
}

// SearchDetailed runs a TkNN query and returns the full response: the
// partial flag (set when the server's -search-timeout expired or the
// request was canceled mid-query) and per-stage timings alongside the
// results.
func (c *Client) SearchDetailed(ctx context.Context, v []float32, k int, start, end int64) (server.SearchResponse, error) {
	var out server.SearchResponse
	// A search reads and is safe to retry under the client's policy.
	err := c.post(ctx, "/search", server.SearchRequest{Vector: v, K: k, Start: start, End: end}, &out, true)
	if err != nil {
		return server.SearchResponse{}, err
	}
	return out, nil
}

// post marshals body once and sends it through the retry loop (replayed
// verbatim on each attempt when idempotent).
func (c *Client) post(ctx context.Context, path string, body, out any, idempotent bool) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, raw, out, idempotent)
}

// do drives doOnce through the retry policy. Non-idempotent requests get
// exactly one attempt regardless of policy; idempotent ones are retried
// on retryable failures with full-jitter backoff, sleeping under the
// caller's context.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, idempotent bool) error {
	attempts := 1
	if idempotent && c.retry != nil {
		attempts = c.retry.policy.MaxAttempts
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if err := sleepCtx(ctx, c.retry.delay(i-1, last)); err != nil {
				return fmt.Errorf("client: %w while backing off from: %v", err, last)
			}
		}
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		last = err
		if !retryable(err) {
			return err
		}
	}
	return last
}

// doOnce is one HTTP round trip: build, send, decode.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// responseError surfaces the server's JSON error envelope as a typed
// *APIError carrying the status code and Retry-After hint.
func responseError(resp *http.Response) error {
	var eb struct {
		Error string `json:"error"`
	}
	apiErr := &APIError{
		StatusCode: resp.StatusCode,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil && eb.Error != "" {
		apiErr.Msg = eb.Error
	}
	return apiErr
}

// drain discards and closes the body so the connection is reused. Both
// steps are best-effort: the response has already been decoded (or
// rejected), so a failure here costs at most one connection.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}
