package client

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"

	tknn "repro"
	"repro/internal/server"
	"repro/internal/wal"
)

func newPair(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 3, LeafSize: 8, GraphDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(ix))
	t.Cleanup(ts.Close)
	return New(ts.URL), ts
}

// newDurablePair backs the server with a WAL manager so /admin/checkpoint
// is live.
func newDurablePair(t *testing.T) *Client {
	t.Helper()
	opts := tknn.MBIOptions{Dim: 3, LeafSize: 8, GraphDegree: 4}
	d, err := wal.Open(wal.Config{Dir: t.TempDir(), Sync: wal.SyncNever}, func(snapshot io.Reader) (wal.Target, error) {
		if snapshot == nil {
			return tknn.NewMBI(opts)
		}
		return tknn.LoadMBI(snapshot, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := d.Close(); err != nil {
			t.Errorf("closing manager: %v", err)
		}
	})
	ts := httptest.NewServer(server.NewDurable(d.Index().(*tknn.MBI), d))
	t.Cleanup(ts.Close)
	return New(ts.URL)
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := newDurablePair(t)
	ctx := context.Background()
	if _, err := c.Add(ctx, []float32{1, 0, 0}, 5); err != nil {
		t.Fatal(err)
	}
	info, err := c.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Bytes <= 0 {
		t.Errorf("checkpoint info %+v", info)
	}
}

func TestCheckpointWithoutWALFails(t *testing.T) {
	c, _ := newPair(t)
	if _, err := c.Checkpoint(context.Background()); err == nil {
		t.Fatal("checkpoint against a non-durable server should fail")
	}
}

func TestHealthStatsRoundTrip(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dim != 3 || st.Vectors != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestAddSearchRoundTrip(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	id, err := c.Add(ctx, []float32{1, 0, 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Errorf("first id %d", id)
	}
	batch := make([]server.AddEntry, 10)
	for i := range batch {
		batch[i] = server.AddEntry{Vector: []float32{float32(i), 1, 0}, Time: int64(10 + i)}
	}
	ids, err := c.AddBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 || ids[0] != 1 {
		t.Errorf("batch ids %v", ids)
	}
	res, err := c.Search(ctx, []float32{4, 1, 0}, 2, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 5 || res[0].Dist != 0 {
		t.Errorf("search = %+v", res)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vectors != 11 {
		t.Errorf("vectors %d", st.Vectors)
	}
}

func TestSingleEntryBatch(t *testing.T) {
	c, _ := newPair(t)
	ids, err := c.AddBatch(context.Background(), []server.AddEntry{{Vector: []float32{1, 2, 3}, Time: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("ids %v", ids)
	}
}

func TestErrorSurface(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	if _, err := c.Add(ctx, []float32{1}, 0); err == nil {
		t.Error("wrong-dim add did not error")
	}
	if _, err := c.Search(ctx, []float32{1, 2, 3}, 0, 0, 1); err == nil {
		t.Error("k=0 search did not error")
	}
	// The server's error message is surfaced.
	_, err := c.Search(ctx, []float32{1, 2, 3}, 1, 9, 9)
	if err == nil || len(err.Error()) < 10 {
		t.Errorf("error lacks detail: %v", err)
	}
}

func TestServerGone(t *testing.T) {
	c, ts := newPair(t)
	ts.Close()
	if err := c.Health(context.Background()); err == nil {
		t.Error("health on closed server succeeded")
	}
}
