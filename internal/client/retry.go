package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Retry policy: idempotent requests (search, stats, health, liveness) are
// retried on transport errors, 429s, and 5xx responses with capped
// exponential backoff and full jitter; a server-provided Retry-After
// overrides the computed delay. Inserts are never blindly retried — a
// request that died mid-flight may have been applied, and replaying it
// would double-insert; the caller decides, with ids in hand.

// APIError is a non-200 response from the server, carrying the status
// code and any Retry-After hint so callers (and the retry loop) can react
// to overload signals instead of string-matching.
type APIError struct {
	StatusCode int
	Msg        string
	// RetryAfter is the parsed Retry-After delay, zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("client: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Msg)
	}
	return fmt.Sprintf("client: %d %s", e.StatusCode, http.StatusText(e.StatusCode))
}

// RetryPolicy configures the client's backoff loop for idempotent
// requests.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// <= 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff scale for the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff scale (default 2s).
	MaxDelay time.Duration
	// Seed seeds the jitter source; 0 derives a seed from the clock.
	// Fixing it makes a client's delay sequence reproducible.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// retrier owns the policy plus the seeded jitter source.
type retrier struct {
	policy RetryPolicy
	mu     sync.Mutex
	//tknn:guardedBy(mu)
	rng *rand.Rand
}

func newRetrier(p RetryPolicy) *retrier {
	if p.MaxAttempts <= 1 {
		return nil
	}
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &retrier{policy: p, rng: rand.New(rand.NewSource(seed))}
}

// delay computes the sleep before retry number retry (0-based): full
// jitter over an exponentially growing, capped window — unless the
// server said when to come back, in which case that wins.
func (r *retrier) delay(retry int, last error) time.Duration {
	var apiErr *APIError
	if errors.As(last, &apiErr) && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter
	}
	window := r.policy.BaseDelay
	for i := 0; i < retry && window < r.policy.MaxDelay; i++ {
		window *= 2
	}
	if window > r.policy.MaxDelay {
		window = r.policy.MaxDelay
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(f * float64(window))
}

// sleep waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether err is worth another attempt of an
// idempotent request: overload (429), server-side failures (5xx), and
// transport errors qualify; client errors and context expiry do not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusTooManyRequests || apiErr.StatusCode >= 500
	}
	// Anything else at this layer is a transport error; the request never
	// produced a response, so retrying an idempotent call is safe.
	return true
}

// parseRetryAfter reads a Retry-After header in its delay-seconds form
// (the only form the server emits); 0 when absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
