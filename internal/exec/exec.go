// Package exec is the shared query-execution layer of every index in this
// repository. A TkNN query, whatever the index, decomposes into the same
// shape (Algorithm 4): a set of independent per-block subtasks — a graph
// search over a sealed block, a brute-force scan over an unindexed range —
// whose partial result lists are merged into the final top-k. MBI, BSBF,
// SF, and IVF each act as a *planner*: they translate a query into a Plan,
// and this package owns everything downstream of planning:
//
//   - running subtasks across a bounded worker pool (intra-query
//     parallelism over independent blocks, the dimension "Data Series
//     Indexing Gone Parallel" identifies as where the latency wins are);
//   - honoring context.Context cancellation and deadlines — a subtask is
//     never started after the context is done, and expiry returns the
//     partial results gathered so far tagged Partial instead of failing;
//   - merging per-subtask lists with theap.Merge;
//   - reporting per-subtask and per-stage timings for Explain plans,
//     server responses, and metrics.
//
// Callers typically hold their index's read lock across Run; the executor
// always joins its workers before returning, so data guarded by that lock
// is never touched after Run returns (no goroutine outlives the call even
// when the context fires — at worst Run waits for in-flight subtasks to
// finish while skipping the rest).
package exec

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/blockcache"
	"repro/internal/graph"
	"repro/internal/sq"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Kind distinguishes the subtask flavors: the two of Algorithm 4, plus
// their compressed (SQ8) counterparts.
type Kind int

const (
	// GraphSearch answers the subtask with a best-first proximity-graph
	// traversal (Algorithm 2) over a sealed block.
	GraphSearch Kind = iota
	// BruteScan answers the subtask with an exact linear scan
	// (Algorithm 1) — open leaves, unbuilt tails, probed IVF lists.
	BruteScan
	// CompressedGraph is GraphSearch over an SQ8-compressed block: the walk
	// scores candidates against byte codes through an asymmetric lookup
	// table, over-fetches RerankK, and re-ranks the survivors exactly
	// against the float32 store.
	CompressedGraph
	// CompressedScan is BruteScan over SQ8 codes with the same over-fetch
	// and exact re-rank.
	CompressedScan
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case BruteScan:
		return "brute-scan"
	case CompressedGraph:
		return "compressed-graph"
	case CompressedScan:
		return "compressed-scan"
	default:
		return "graph-search"
	}
}

// Subtask is one independent unit of a query plan: a contiguous global
// vector range answered by one search primitive. Subtasks of a plan must
// cover disjoint id ranges — the merge deduplicates defensively, but
// result equivalence across worker counts relies on disjointness.
//
// A subtask is pure data: planners fill in the fields of their kind and the
// executor's built-in kernels do the work, so building a plan allocates
// nothing (the closure-per-subtask shape this replaced cost one heap
// allocation per block per query). Everything a subtask references must be
// safe to read under whatever lock the caller holds across the executor;
// the executor always joins its workers before returning.
type Subtask struct {
	// Kind reports how the range is answered.
	Kind Kind
	// Lo, Hi is the global vector range the subtask covers.
	Lo, Hi int
	// WindowStart, WindowEnd is the time window [t_s, t_e) of the range.
	WindowStart, WindowEnd int64

	// Store and Metric locate the vectors for both kernels.
	Store  *vec.Store
	Metric vec.Metric

	// Brute-scan inputs (Kind == BruteScan): the kernel scores global rows
	// [ScanLo, ScanHi) — the subtask's range clipped to the query window —
	// or, when List is non-nil, the explicit global ids of List instead
	// (IVF probes scan inverted lists, not contiguous ranges).
	ScanLo, ScanHi int
	List           []int32

	// Graph-search inputs (Kind == GraphSearch): traverse Graph over the
	// view [Lo, Hi) of Store with Params, seeding the walks from Entries
	// (local ids; entries[0] is the primary walk, the rest restarts) and
	// admitting only nodes whose timestamp lands in [Ts, Te). Times is
	// local-indexed — Times[i] belongs to global row Lo+i — and a nil
	// Times admits every node.
	Graph   *graph.CSR
	Params  graph.SearchParams
	Entries []int32
	Times   []int64
	Ts, Te  int64

	// Compressed inputs (Kind == CompressedScan or CompressedGraph): Codes
	// is the block's SQ8 payload — its local row i is global row Lo+i — and
	// RerankK is the over-fetch size (k·rerankFactor, clipped to the rows
	// the kernel can produce) collected from the codes before the exact
	// float32 re-rank.
	Codes   *sq.Codes
	RerankK int

	// Cold inputs: a cold subtask's block payload was spilled to a
	// segment file, so Graph and Codes start nil and the fetch stage
	// resolves them by paging Cache entry CacheKey in before the kernel
	// runs (pinned across it). A failed fetch leaves the subtask skipped,
	// degrading the query to Partial rather than erroring. Kind is
	// GraphSearch at plan time; the kernel upgrades to CompressedGraph
	// when the fetched payload carries codes (RerankK must be preset).
	Cold     bool
	Cache    *blockcache.Cache
	CacheKey uint64

	// Run, when non-nil, overrides the built-in kernels: it returns up to
	// the plan's K neighbors with global ids in ascending distance order
	// and is called at most once, possibly on a pool goroutine. Tests and
	// external planners use it; the in-repo planners emit data-only
	// subtasks so the hot path stays allocation-free.
	Run func(ctx context.Context) []theap.Neighbor
}

// Plan is an ordered list of subtasks answering one query for K results.
// Planners produce it; the Executor consumes it.
type Plan struct {
	// K is the result count the merged answer is capped at.
	K int
	// Query is the query vector the kernels score against.
	Query []float32
	// Subtasks are the independent per-block units, in timestamp order.
	Subtasks []Subtask
}

// SubtaskResult records one subtask's execution for Explain-style
// diagnostics.
type SubtaskResult struct {
	// Kind, Lo, Hi echo the subtask.
	Kind   Kind
	Lo, Hi int
	// Duration is the subtask's wall-clock run time (zero when skipped).
	Duration time.Duration
	// Skipped reports that the context was done before the subtask
	// started, so it contributed nothing.
	Skipped bool
	// Found is the number of neighbors the subtask returned.
	Found int
	// Rerank is the time the compressed kernels spent re-scoring their
	// over-fetched candidates against the float32 store (zero for
	// uncompressed subtasks). It is contained in Duration.
	Rerank time.Duration
	// Cold reports that the subtask's block was spilled and its payload
	// had to come through the block cache; Fetch is the time that page-in
	// took (cache hits make it near-zero). Fetch is not contained in
	// Duration — with overlap enabled it runs concurrently with other
	// subtasks' kernels.
	Cold  bool
	Fetch time.Duration
}

// Outcome describes how a plan executed: the per-stage timings the server
// exposes as tknn_search_stage_seconds, and the partial-result flag.
type Outcome struct {
	// Partial reports that the context was done before the plan finished:
	// subtasks may have been skipped and in-flight scans may have
	// truncated, so the merged results cover only the work that ran.
	Partial bool
	// Select is the planning stage's duration. The executor cannot
	// measure it (planning happens in the caller); planners fill it in.
	Select time.Duration
	// Search is the wall-clock duration of the subtask-execution stage.
	Search time.Duration
	// Rerank is the summed per-subtask exact re-rank time of the plan's
	// compressed kernels — CPU time, so under parallel fan-out it can
	// exceed its share of the wall-clock Search. Zero for uncompressed
	// plans.
	Rerank time.Duration
	// Fetch is the summed time cold subtasks spent paging their block
	// payloads in from the segment cache. It is CPU-and-disk time that
	// overlaps the Search wall clock: hot kernels run while the fetch
	// stage reads, so Fetch can exceed its visible share of Search.
	Fetch time.Duration
	// Merge is the duration of the final theap.Merge combine.
	Merge time.Duration
	// Subtasks records per-subtask execution, in plan order.
	Subtasks []SubtaskResult
}

// Executor runs plans across a bounded worker pool. The zero value is
// valid and runs sequentially; construct with New to default to one
// worker per CPU. Executors are stateless and safe for concurrent use.
type Executor struct {
	// Workers bounds the goroutines one Run may use. Values <= 1 run the
	// plan sequentially on the calling goroutine.
	Workers int
}

// New returns an executor with the given parallelism; workers <= 0
// defaults to GOMAXPROCS.
func New(workers int) Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Executor{Workers: workers}
}

// Run executes the plan and merges the per-subtask lists into the final
// top-K. Subtasks never start after ctx is done; in-flight subtasks are
// always joined before Run returns, so at worst cancellation latency is
// one subtask's duration. When any subtask was skipped the outcome is
// tagged Partial and the merged results cover only what ran — partial
// answers instead of errors, because a late result set is still useful to
// a serving tier while a failed query is not.
//
// Run borrows a pooled Scratch and returns freshly copied results, so the
// caller owns everything it gets back. The allocation-free path is
// RunScratch.
func (e Executor) Run(ctx context.Context, p Plan) ([]theap.Neighbor, Outcome) {
	scr := GetScratch()
	res, out := e.RunScratch(ctx, p, scr)
	res = CopyNeighbors(res)
	out = out.Detach()
	PutScratch(scr)
	return res, out
}

// RunScratch is Run with caller-owned per-query state: the per-subtask
// result heaps, the merge buffer, the returned neighbor slice, and
// Outcome.Subtasks all live in scr and stay valid only until scr's next
// query. A warmed-up sequential run (Workers <= 1) performs zero heap
// allocations; parallel runs pay only the inherent goroutine fan-out.
//
//tknn:hotpath
func (e Executor) RunScratch(ctx context.Context, p Plan, scr *Scratch) ([]theap.Neighbor, Outcome) {
	// The parallel branch hands the plan to worker goroutines by pointer,
	// which would force the p parameter itself to escape — one heap copy
	// per query, even sequentially. Parking the copy in the heap-resident
	// scratch keeps the sequential path allocation-free.
	scr.plan = p
	plan := &scr.plan
	n := len(plan.Subtasks)
	scr.ensure(n)
	out := Outcome{Subtasks: scr.results[:n]}
	for i := range plan.Subtasks {
		st := &plan.Subtasks[i]
		out.Subtasks[i] = SubtaskResult{Kind: st.Kind, Lo: st.Lo, Hi: st.Hi, Skipped: true}
	}
	if n == 0 {
		return nil, out
	}

	lists := scr.lists[:n]
	searchStart := time.Now()
	workers := e.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		scr.ensureWorkers(1)
		if planHasCold(plan) {
			// Cold plans leave the allocation-free contract: the fetch
			// stage overlaps hot kernels with segment page-ins via a
			// prefetch goroutine.
			//lint:ignore hotpath-alloc cold-plan fetch stage allocates by design (prefetch fan-out)
			scr.runSeqCold(ctx, plan, out.Subtasks, lists)
		} else {
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					break
				}
				scr.runOne(ctx, plan, i, 0, out.Subtasks, lists)
			}
		}
	} else {
		scr.ensureWorkers(workers)
		scr.next.Store(-1)
		// The fan-out below is the one part of the hot path that
		// inherently allocates (goroutine stacks, the escaping plan
		// pointer); sequential execution — what the allocation gate
		// measures — never reaches it.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go scr.runWorker(ctx, plan, w, &wg, out.Subtasks, lists)
		}
		wg.Wait()
	}
	out.Search = time.Since(searchStart)

	completed := lists[:0]
	for i := range lists {
		out.Rerank += out.Subtasks[i].Rerank
		out.Fetch += out.Subtasks[i].Fetch
		if out.Subtasks[i].Skipped {
			out.Partial = true
		} else if len(lists[i]) > 0 {
			completed = append(completed, lists[i])
		}
	}
	if ctx.Err() != nil {
		// The context fired while the plan was executing: even if no
		// subtask was skipped outright, an in-flight scan may have
		// truncated itself, so the answer can no longer be promised
		// complete. Conservatively tag it.
		out.Partial = true
	}

	mergeStart := time.Now()
	var result []theap.Neighbor
	switch len(completed) {
	case 0:
		// Nothing to merge: either every subtask was skipped or none
		// found an in-window neighbor.
	case 1:
		// A single contributing list is already the answer (each subtask
		// returns at most K, sorted ascending) — skip the merge exactly
		// like the old single-block fast path.
		result = completed[0]
	default:
		result = scr.merger.Merge(plan.K, completed...)
	}
	out.Merge = time.Since(mergeStart)
	return result, out
}

// DefaultRerankFactor is the over-fetch multiplier compressed subtasks use
// when their planner does not set one: the compressed kernel collects
// k·factor candidates, then the exact re-rank keeps the true top k. Four
// recovers ≥ 0.95 of flat-index recall@10 on the drifting-cluster dataset
// (see BENCH_sq.json) while re-scoring only tens of vectors.
const DefaultRerankFactor = 4

// RerankK is the over-fetch size a compressed subtask collects before its
// exact re-rank: k·factor clipped to the n rows the subtask can produce,
// never below k. factor <= 0 selects DefaultRerankFactor.
func RerankK(k, factor, n int) int {
	if factor <= 0 {
		factor = DefaultRerankFactor
	}
	rk := k * factor
	if rk > n {
		rk = n
	}
	if rk < k {
		rk = k
	}
	return rk
}

// CopyNeighbors returns a fresh copy of src, preserving nil — how the
// convenience search paths detach scratch-aliased results before the
// scratch goes back to its pool.
func CopyNeighbors(src []theap.Neighbor) []theap.Neighbor {
	if src == nil {
		return nil
	}
	cp := make([]theap.Neighbor, len(src))
	copy(cp, src)
	return cp
}

// Detach returns a copy of the outcome whose Subtasks slice no longer
// aliases executor scratch.
func (o Outcome) Detach() Outcome {
	cp := make([]SubtaskResult, len(o.Subtasks))
	copy(cp, o.Subtasks)
	o.Subtasks = cp
	return o
}
