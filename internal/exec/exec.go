// Package exec is the shared query-execution layer of every index in this
// repository. A TkNN query, whatever the index, decomposes into the same
// shape (Algorithm 4): a set of independent per-block subtasks — a graph
// search over a sealed block, a brute-force scan over an unindexed range —
// whose partial result lists are merged into the final top-k. MBI, BSBF,
// SF, and IVF each act as a *planner*: they translate a query into a Plan,
// and this package owns everything downstream of planning:
//
//   - running subtasks across a bounded worker pool (intra-query
//     parallelism over independent blocks, the dimension "Data Series
//     Indexing Gone Parallel" identifies as where the latency wins are);
//   - honoring context.Context cancellation and deadlines — a subtask is
//     never started after the context is done, and expiry returns the
//     partial results gathered so far tagged Partial instead of failing;
//   - merging per-subtask lists with theap.Merge;
//   - reporting per-subtask and per-stage timings for Explain plans,
//     server responses, and metrics.
//
// Callers typically hold their index's read lock across Run; the executor
// always joins its workers before returning, so data guarded by that lock
// is never touched after Run returns (no goroutine outlives the call even
// when the context fires — at worst Run waits for in-flight subtasks to
// finish while skipping the rest).
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/theap"
)

// Kind distinguishes the two subtask flavors of Algorithm 4.
type Kind int

const (
	// GraphSearch answers the subtask with a best-first proximity-graph
	// traversal (Algorithm 2) over a sealed block.
	GraphSearch Kind = iota
	// BruteScan answers the subtask with an exact linear scan
	// (Algorithm 1) — open leaves, unbuilt tails, probed IVF lists.
	BruteScan
)

// String returns the kind's name.
func (k Kind) String() string {
	if k == BruteScan {
		return "brute-scan"
	}
	return "graph-search"
}

// Subtask is one independent unit of a query plan: a contiguous global
// vector range answered by one search primitive. Subtasks of a plan must
// cover disjoint id ranges — theap.Merge deduplicates defensively, but
// result equivalence across worker counts relies on disjointness.
type Subtask struct {
	// Kind reports how the range is answered.
	Kind Kind
	// Lo, Hi is the global vector range the subtask covers.
	Lo, Hi int
	// WindowStart, WindowEnd is the time window [t_s, t_e) of the range.
	WindowStart, WindowEnd int64
	// Run executes the subtask and returns up to the plan's K neighbors
	// with global ids in ascending distance order. Run is called at most
	// once, possibly on a pool goroutine; everything it captures must be
	// safe to read under whatever lock the caller holds across the
	// executor. Long scans should poll ctx and return early with what
	// they have.
	Run func(ctx context.Context) []theap.Neighbor
}

// Plan is an ordered list of subtasks answering one query for K results.
// Planners produce it; the Executor consumes it.
type Plan struct {
	// K is the result count the merged answer is capped at.
	K int
	// Subtasks are the independent per-block units, in timestamp order.
	Subtasks []Subtask
}

// SubtaskResult records one subtask's execution for Explain-style
// diagnostics.
type SubtaskResult struct {
	// Kind, Lo, Hi echo the subtask.
	Kind   Kind
	Lo, Hi int
	// Duration is the subtask's wall-clock run time (zero when skipped).
	Duration time.Duration
	// Skipped reports that the context was done before the subtask
	// started, so it contributed nothing.
	Skipped bool
	// Found is the number of neighbors the subtask returned.
	Found int
}

// Outcome describes how a plan executed: the per-stage timings the server
// exposes as tknn_search_stage_seconds, and the partial-result flag.
type Outcome struct {
	// Partial reports that the context was done before the plan finished:
	// subtasks may have been skipped and in-flight scans may have
	// truncated, so the merged results cover only the work that ran.
	Partial bool
	// Select is the planning stage's duration. The executor cannot
	// measure it (planning happens in the caller); planners fill it in.
	Select time.Duration
	// Search is the wall-clock duration of the subtask-execution stage.
	Search time.Duration
	// Merge is the duration of the final theap.Merge combine.
	Merge time.Duration
	// Subtasks records per-subtask execution, in plan order.
	Subtasks []SubtaskResult
}

// Executor runs plans across a bounded worker pool. The zero value is
// valid and runs sequentially; construct with New to default to one
// worker per CPU. Executors are stateless and safe for concurrent use.
type Executor struct {
	// Workers bounds the goroutines one Run may use. Values <= 1 run the
	// plan sequentially on the calling goroutine.
	Workers int
}

// New returns an executor with the given parallelism; workers <= 0
// defaults to GOMAXPROCS.
func New(workers int) Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Executor{Workers: workers}
}

// Run executes the plan and merges the per-subtask lists into the final
// top-K. Subtasks never start after ctx is done; in-flight subtasks are
// always joined before Run returns, so at worst cancellation latency is
// one subtask's duration. When any subtask was skipped the outcome is
// tagged Partial and the merged results cover only what ran — partial
// answers instead of errors, because a late result set is still useful to
// a serving tier while a failed query is not.
func (e Executor) Run(ctx context.Context, p Plan) ([]theap.Neighbor, Outcome) {
	n := len(p.Subtasks)
	out := Outcome{Subtasks: make([]SubtaskResult, n)}
	for i, st := range p.Subtasks {
		out.Subtasks[i] = SubtaskResult{Kind: st.Kind, Lo: st.Lo, Hi: st.Hi, Skipped: true}
	}
	if n == 0 {
		return nil, out
	}

	lists := make([][]theap.Neighbor, n)
	runOne := func(i int) {
		start := time.Now()
		lists[i] = p.Subtasks[i].Run(ctx)
		r := &out.Subtasks[i]
		r.Duration = time.Since(start)
		r.Skipped = false
		r.Found = len(lists[i])
	}

	searchStart := time.Now()
	workers := e.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			runOne(i)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n || ctx.Err() != nil {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	out.Search = time.Since(searchStart)

	completed := lists[:0]
	for i := range lists {
		if out.Subtasks[i].Skipped {
			out.Partial = true
		} else if len(lists[i]) > 0 {
			completed = append(completed, lists[i])
		}
	}
	if ctx.Err() != nil {
		// The context fired while the plan was executing: even if no
		// subtask was skipped outright, an in-flight scan may have
		// truncated itself, so the answer can no longer be promised
		// complete. Conservatively tag it.
		out.Partial = true
	}

	mergeStart := time.Now()
	var result []theap.Neighbor
	switch len(completed) {
	case 0:
		// Nothing to merge: either every subtask was skipped or none
		// found an in-window neighbor.
	case 1:
		// A single contributing list is already the answer (each subtask
		// returns at most K, sorted ascending) — skip the merge exactly
		// like the old single-block fast path.
		result = completed[0]
	default:
		result = theap.Merge(p.K, completed...)
	}
	out.Merge = time.Since(mergeStart)
	return result, out
}
