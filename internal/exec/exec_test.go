package exec

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/theap"
)

// listPlan builds a plan whose subtasks return fixed neighbor lists over
// disjoint id ranges, like real per-block subtasks do.
func listPlan(k int, lists ...[]theap.Neighbor) Plan {
	p := Plan{K: k}
	for i, l := range lists {
		l := l
		p.Subtasks = append(p.Subtasks, Subtask{
			Kind: GraphSearch,
			Lo:   i * 100, Hi: i*100 + 100,
			Run: func(context.Context) []theap.Neighbor { return l },
		})
	}
	return p
}

func TestRunEquivalentAcrossWorkerCounts(t *testing.T) {
	// 8 subtasks over disjoint ranges; results must be identical for any
	// worker count because entries are fixed at plan time and the merge
	// orders by (Dist, ID).
	lists := make([][]theap.Neighbor, 8)
	for i := range lists {
		base := int32(i * 100)
		lists[i] = []theap.Neighbor{
			{ID: base, Dist: float32(i%3) + float32(i)*0.01},
			{ID: base + 1, Dist: float32((i+1)%4) + float32(i)*0.02},
			{ID: base + 2, Dist: 5 + float32(i)},
		}
		theapSort(lists[i])
	}
	p := listPlan(5, lists...)
	var want []theap.Neighbor
	for _, workers := range []int{1, 2, 3, 8, 16} {
		got, out := New(workers).Run(context.Background(), p)
		if out.Partial {
			t.Fatalf("workers=%d: unexpected partial", workers)
		}
		if len(out.Subtasks) != len(lists) {
			t.Fatalf("workers=%d: %d subtask results", workers, len(out.Subtasks))
		}
		for i, sr := range out.Subtasks {
			if sr.Skipped || sr.Found != len(lists[i]) {
				t.Fatalf("workers=%d subtask %d: skipped=%v found=%d", workers, i, sr.Skipped, sr.Found)
			}
		}
		if want == nil {
			want = got
			if len(want) != 5 {
				t.Fatalf("got %d results, want 5", len(want))
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results diverge:\n got %v\nwant %v", workers, got, want)
		}
	}
}

// theapSort orders a list ascending by (Dist, ID) as subtasks promise.
func theapSort(l []theap.Neighbor) {
	for i := 1; i < len(l); i++ {
		for j := i; j > 0 && theap.Less(l[j], l[j-1]); j-- {
			l[j], l[j-1] = l[j-1], l[j]
		}
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	started := atomic.Int32{}
	p := Plan{K: 1, Subtasks: []Subtask{{
		Run: func(context.Context) []theap.Neighbor { started.Add(1); return nil },
	}, {
		Run: func(context.Context) []theap.Neighbor { started.Add(1); return nil },
	}}}
	for _, workers := range []int{1, 4} {
		started.Store(0)
		res, out := New(workers).Run(ctx, p)
		if res != nil {
			t.Fatalf("workers=%d: results from a dead context: %v", workers, res)
		}
		if !out.Partial {
			t.Fatalf("workers=%d: outcome not partial", workers)
		}
		for i, sr := range out.Subtasks {
			if !sr.Skipped {
				t.Fatalf("workers=%d subtask %d not marked skipped", workers, i)
			}
		}
		if started.Load() != 0 {
			t.Fatalf("workers=%d: %d subtasks started after cancel", workers, started.Load())
		}
	}
}

func TestRunDeadlinePartial(t *testing.T) {
	// The first subtask burns past the deadline, so later ones are
	// skipped; the executor must return the completed work tagged partial
	// and still join every worker.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n1 := []theap.Neighbor{{ID: 1, Dist: 0.5}}
	p := Plan{K: 2, Subtasks: []Subtask{{
		Lo: 0, Hi: 100,
		Run: func(ctx context.Context) []theap.Neighbor {
			cancel() // "deadline" fires while this subtask runs
			return n1
		},
	}, {
		Lo: 100, Hi: 200,
		Run: func(context.Context) []theap.Neighbor {
			t.Error("second subtask ran after the context was done")
			return nil
		},
	}}}
	res, out := New(1).Run(ctx, p)
	if !out.Partial {
		t.Fatal("outcome not partial after mid-plan expiry")
	}
	if !reflect.DeepEqual(res, n1) {
		t.Fatalf("partial results = %v, want %v", res, n1)
	}
	if out.Subtasks[0].Skipped || out.Subtasks[0].Found != 1 {
		t.Fatalf("first subtask: %+v", out.Subtasks[0])
	}
	if !out.Subtasks[1].Skipped {
		t.Fatal("second subtask not marked skipped")
	}
}

func TestRunEmptyPlan(t *testing.T) {
	res, out := New(4).Run(context.Background(), Plan{K: 3})
	if res != nil || out.Partial {
		t.Fatalf("empty plan: res=%v partial=%v", res, out.Partial)
	}
}

func TestForEachFirstErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(context.Background(), workers, 100, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return fmt.Errorf("item 3: %w", boom)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if workers == 1 && ran.Load() != 4 {
			t.Fatalf("sequential: ran %d items, want 4", ran.Load())
		}
		if ran.Load() == 100 {
			t.Fatalf("workers=%d: abort did not stop the batch", workers)
		}
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 2, 1000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("cancel did not stop the batch")
	}
}

func TestForEachLateCancelAfterCompletion(t *testing.T) {
	// The context firing after every item completed must not turn a fully
	// successful batch into an error.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 4, 8, func(i int) error {
		if ran.Add(1) == 8 {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v after all items completed", err)
	}
}

func TestEntropySerialDeterminism(t *testing.T) {
	a, b := NewEntropy(42), NewEntropy(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
	if NewEntropy(1).Next() == NewEntropy(2).Next() {
		t.Fatal("different seeds produced the same first value")
	}
}

func TestEntropyIntnRange(t *testing.T) {
	e := NewEntropy(7)
	for i := 0; i < 1000; i++ {
		if v := e.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
	}
}

func TestQueryHashDeterministicAndDiscriminating(t *testing.T) {
	q1 := []float32{1, 2, 3}
	q2 := []float32{1, 2, 3.0001}
	if QueryHash(5, q1) != QueryHash(5, q1) {
		t.Fatal("same (salt, q) hashed differently")
	}
	if QueryHash(5, q1) == QueryHash(5, q2) {
		t.Fatal("distinct vectors collided (astronomically unlikely)")
	}
	if QueryHash(5, q1) == QueryHash(6, q1) {
		t.Fatal("distinct salts collided (astronomically unlikely)")
	}
}

func TestRunStageTimings(t *testing.T) {
	p := listPlan(1, []theap.Neighbor{{ID: 0, Dist: 1}})
	p.Subtasks[0].Run = func(context.Context) []theap.Neighbor {
		time.Sleep(2 * time.Millisecond)
		return []theap.Neighbor{{ID: 0, Dist: 1}}
	}
	_, out := New(1).Run(context.Background(), p)
	if out.Search < 2*time.Millisecond {
		t.Fatalf("Search stage %v, want >= 2ms", out.Search)
	}
	if out.Subtasks[0].Duration < 2*time.Millisecond {
		t.Fatalf("subtask duration %v, want >= 2ms", out.Subtasks[0].Duration)
	}
}
