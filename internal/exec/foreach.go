package exec

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0) … fn(n-1) across at most workers goroutines,
// preserving the batch semantics every fan-out in this repository has
// documented since MBI.SearchBatch: the first error (by time of arrival)
// aborts the batch — workers stop claiming new items and the error is
// returned — and a done context stops the batch with ctx.Err(). Items
// already in flight when the abort happens still finish; ForEach always
// joins its goroutines before returning.
//
// workers <= 1 (or n <= 1) runs sequentially on the calling goroutine.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		done    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		first   error
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || stopped.Load() || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	if done.Load() < int64(n) {
		// Items were skipped and no fn errored: the context did it.
		return ctx.Err()
	}
	return nil
}
