package exec

import (
	"math"
	"sync/atomic"
)

// Entropy is a contention-free source of per-query randomness: a seeded
// atomic counter finalized with the splitmix64 mixer. It replaces the
// mutex-guarded *rand.Rand the indexes used to draw graph entry points
// from — under concurrent search load every query serialized on that one
// mutex; an atomic add does not. The sequence is deterministic for a
// serial caller (replay and the differential oracle depend on that) and
// race-free for concurrent ones, at the cost of cross-goroutine
// interleaving being scheduler-dependent — exactly the property the old
// shared rand.Rand had.
type Entropy struct {
	state atomic.Uint64
}

// NewEntropy returns a source whose serial sequence is determined by seed.
func NewEntropy(seed int64) *Entropy {
	e := &Entropy{}
	e.Reseed(seed)
	return e
}

// Reseed resets the sequence to seed, producing exactly the stream a fresh
// NewEntropy(seed) would — the scratch path reseeds one retained source per
// query instead of allocating one.
func (e *Entropy) Reseed(seed int64) { e.state.Store(uint64(seed)) }

// Next returns the next 64-bit value of the sequence. Safe for concurrent
// use.
func (e *Entropy) Next() uint64 {
	return mix64(e.state.Add(0x9e3779b97f4a7c15))
}

// Intn returns a value in [0, n). It panics if n <= 0, matching
// rand.Intn.
func (e *Entropy) Intn(n int) int {
	if n <= 0 {
		panic("exec: Entropy.Intn with n <= 0")
	}
	// The modulo bias at realistic block sizes (n << 2^64) is far below
	// anything a graph entry point can observe.
	return int(e.Next() % uint64(n))
}

// mix64 is the splitmix64 finalizer (Steele, Lea, Flood 2014).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// QueryHash folds a query vector into a 64-bit value, deterministic per
// (salt, q). Planners seed a plan-local Entropy with it to draw graph
// entry points: the same query always walks from the same entries — fully
// deterministic answers regardless of concurrency, call order, or worker
// count — while distinct queries spread uniformly, which is all the
// "random entry vertex" of Algorithm 2 line 1 actually needs.
func QueryHash(salt uint64, q []float32) uint64 {
	h := mix64(salt ^ 0x9e3779b97f4a7c15)
	for _, v := range q {
		h = mix64(h ^ uint64(math.Float32bits(v)))
	}
	return h
}
