package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Scratch owns every reusable buffer one query needs downstream of block
// selection: the plan's subtask backing, the entry-seed arena planners
// carve per-block seed slices from, the per-subtask result heaps, the
// graph searchers, and the merge buffer. All of it grows to a high-water
// mark on the first queries and is then reused verbatim, which is what
// makes a warmed-up sequential query allocation-free.
//
// A Scratch serves one query at a time and is not safe for concurrent use.
// Results returned from RunScratch (the neighbor slice and
// Outcome.Subtasks) alias the scratch and are valid until its next query.
type Scratch struct {
	// Subtasks is the plan backing array: planners build their plan as
	// Plan{Subtasks: scr.Subtasks[:0]}, append to it, and store the grown
	// slice back so the capacity is retained.
	Subtasks []Subtask
	// Entries is the entry-seed arena: planners append each block's seeds
	// and hand the subtask a capped sub-slice, so seed storage for any
	// number of blocks costs zero steady-state allocations.
	Entries []int32
	// PlanTop is a planner-side ranking heap (IVF uses it to rank
	// centroids at plan time).
	PlanTop theap.TopK
	// Ent is the plan-local entropy source; planners Reseed it per query
	// instead of allocating a fresh source.
	Ent Entropy

	// Executor-side state.
	plan      Plan // RunScratch's copy of the plan, so &plan never escapes a stack frame
	results   []SubtaskResult
	lists     [][]theap.Neighbor
	tops      []theap.TopK
	searchers []*graph.Searcher // one per worker slot
	merger    theap.Merger
	next      atomic.Int64 // parallel-mode claim counter
}

// NewScratch returns an empty scratch; every buffer grows on first use and
// is retained afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool backs the convenience paths (Executor.Run and the planners'
// SearchContext methods), which borrow a scratch per query and copy results
// out before returning it.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch borrows a pooled scratch for one query. Pair with PutScratch
// once every slice derived from the scratch has been copied or dropped.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch borrowed with GetScratch to the pool.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// ensure sizes the per-subtask arrays for an n-subtask plan, retaining the
// result heaps' backing across growth.
func (s *Scratch) ensure(n int) {
	if cap(s.results) >= n {
		return
	}
	//lint:ignore hotpath-alloc cold-start growth; retained for every later query on this scratch
	s.results = make([]SubtaskResult, n)
	//lint:ignore hotpath-alloc cold-start growth; retained for every later query on this scratch
	s.lists = make([][]theap.Neighbor, n)
	//lint:ignore hotpath-alloc cold-start growth; retained for every later query on this scratch
	grown := make([]theap.TopK, n)
	copy(grown, s.tops)
	s.tops = grown
}

// ensureWorkers guarantees one graph searcher per worker slot.
func (s *Scratch) ensureWorkers(w int) {
	for len(s.searchers) < w {
		//lint:ignore hotpath-alloc,scratch-reuse cold-start growth; searchers persist across queries
		s.searchers = append(s.searchers, graph.NewSearcher(0))
	}
}

// runOne executes subtask i on worker slot, recording its timing and
// result list.
func (s *Scratch) runOne(ctx context.Context, p *Plan, i, slot int, results []SubtaskResult, lists [][]theap.Neighbor) {
	start := time.Now()
	lists[i] = s.runSubtask(ctx, p, i, slot)
	r := &results[i]
	r.Duration = time.Since(start)
	r.Skipped = false
	r.Found = len(lists[i])
}

// runWorker is one goroutine of the parallel fan-out: it claims subtask
// indices off the shared counter until the plan is drained or the context
// fires.
func (s *Scratch) runWorker(ctx context.Context, p *Plan, slot int, wg *sync.WaitGroup, results []SubtaskResult, lists [][]theap.Neighbor) {
	defer wg.Done()
	n := len(p.Subtasks)
	for {
		i := int(s.next.Add(1))
		if i >= n || ctx.Err() != nil {
			return
		}
		s.runOne(ctx, p, i, slot, results, lists)
	}
}

// runSubtask dispatches subtask i to its kernel. The returned list aliases
// the subtask's scratch heap and is valid until the scratch's next query.
func (s *Scratch) runSubtask(ctx context.Context, p *Plan, i, slot int) []theap.Neighbor {
	st := &p.Subtasks[i]
	if st.Run != nil {
		return st.Run(ctx)
	}
	if p.K <= 0 {
		return nil
	}
	top := &s.tops[i]
	top.ResetK(p.K)
	if st.Kind == GraphSearch {
		return s.graphKernel(st, p.Query, p.K, top, slot)
	}
	if st.List != nil {
		ScanListInto(ctx, top, st.Store, st.Metric, p.Query, st.List)
	} else {
		ScanInto(ctx, top, st.Store, st.Metric, p.Query, st.ScanLo, st.ScanHi)
	}
	return top.Items()
}

// graphKernel answers a GraphSearch subtask: an Algorithm 2 traversal over
// the block's view, rebased to global ids. A graph traversal visits a
// bounded frontier and is short relative to scans; cancellation is honored
// between subtasks rather than inside the walk.
func (s *Scratch) graphKernel(st *Subtask, q []float32, k int, top *theap.TopK, slot int) []theap.Neighbor {
	sr := s.searchers[slot]
	view := vec.View{Store: st.Store, Lo: st.Lo, Hi: st.Hi, Metric: st.Metric}
	sr.SearchInto(top, st.Graph, view, q, st.Times, st.Ts, st.Te, st.Params, st.Entries, k)
	res := top.Items()
	base := int32(st.Lo)
	for i := range res {
		res[i].ID += base
	}
	if invariant.Enabled {
		for i, nb := range res {
			invariant.Checkf(int(nb.ID) >= st.Lo && int(nb.ID) < st.Hi,
				"exec: graph result %d has id %d outside [%d,%d)", i, nb.ID, st.Lo, st.Hi)
			invariant.Checkf(st.Times == nil ||
				(st.Times[nb.ID-base] >= st.Ts && st.Times[nb.ID-base] < st.Te),
				"exec: graph result %d (id %d) fails the time window", i, nb.ID)
			invariant.Checkf(i == 0 || !theap.Less(res[i], res[i-1]),
				"exec: graph results not ascending at %d", i)
		}
	}
	return res
}

// scanPoll is how many rows a brute-scan kernel scores between context
// polls: rare enough to stay off the hot path, frequent enough that
// cancelling a scan takes microseconds.
const scanPoll = 2048

// ScanInto brute-force scores global rows [lo, hi) of store against q,
// pushing every row into top — the BruteForce step of Algorithm 1 as a
// kernel over a caller-owned heap. The scan polls ctx every scanPoll rows
// and stops early with what it has when the context is done; the executor
// tags the outcome Partial whenever that happens mid-plan.
//
//tknn:hotpath
func ScanInto(ctx context.Context, top *theap.TopK, store *vec.Store, metric vec.Metric, q []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		if (i-lo)%scanPoll == scanPoll-1 && ctx.Err() != nil {
			return
		}
		top.Push(theap.Neighbor{ID: int32(i), Dist: vec.Distance(metric, q, store.At(i))})
	}
}

// ScanListInto is ScanInto over an explicit global-id list — how IVF
// probes score the in-window run of an inverted list.
//
//tknn:hotpath
func ScanListInto(ctx context.Context, top *theap.TopK, store *vec.Store, metric vec.Metric, q []float32, ids []int32) {
	for j, id := range ids {
		if j%scanPoll == scanPoll-1 && ctx.Err() != nil {
			return
		}
		top.Push(theap.Neighbor{ID: id, Dist: vec.Distance(metric, q, store.At(int(id)))})
	}
}
