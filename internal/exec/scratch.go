package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Scratch owns every reusable buffer one query needs downstream of block
// selection: the plan's subtask backing, the entry-seed arena planners
// carve per-block seed slices from, the per-subtask result heaps, the
// graph searchers, and the merge buffer. All of it grows to a high-water
// mark on the first queries and is then reused verbatim, which is what
// makes a warmed-up sequential query allocation-free.
//
// A Scratch serves one query at a time and is not safe for concurrent use.
// Results returned from RunScratch (the neighbor slice and
// Outcome.Subtasks) alias the scratch and are valid until its next query.
type Scratch struct {
	// Subtasks is the plan backing array: planners build their plan as
	// Plan{Subtasks: scr.Subtasks[:0]}, append to it, and store the grown
	// slice back so the capacity is retained.
	Subtasks []Subtask
	// Entries is the entry-seed arena: planners append each block's seeds
	// and hand the subtask a capped sub-slice, so seed storage for any
	// number of blocks costs zero steady-state allocations.
	Entries []int32
	// PlanTop is a planner-side ranking heap (IVF uses it to rank
	// centroids at plan time).
	PlanTop theap.TopK
	// Ent is the plan-local entropy source; planners Reseed it per query
	// instead of allocating a fresh source.
	Ent Entropy

	// Executor-side state.
	plan      Plan // RunScratch's copy of the plan, so &plan never escapes a stack frame
	results   []SubtaskResult
	lists     [][]theap.Neighbor
	tops      []theap.TopK
	rtops     []theap.TopK      // per-subtask exact re-rank heaps (compressed kinds): tops[i] holds the over-fetched candidates while rtops[i] collects the re-scored top-k, because TopK.Items aliases its backing and cannot be refilled while iterated
	searchers []*graph.Searcher // one per worker slot
	luts      [][]float32       // per-worker-slot asymmetric-distance tables (dim·256 floats, grown on first compressed subtask)
	merger    theap.Merger
	next      atomic.Int64 // parallel-mode claim counter
}

// NewScratch returns an empty scratch; every buffer grows on first use and
// is retained afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool backs the convenience paths (Executor.Run and the planners'
// SearchContext methods), which borrow a scratch per query and copy results
// out before returning it.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch borrows a pooled scratch for one query. Pair with PutScratch
// once every slice derived from the scratch has been copied or dropped.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch borrowed with GetScratch to the pool.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// ensure sizes the per-subtask arrays for an n-subtask plan, retaining the
// result heaps' backing across growth.
func (s *Scratch) ensure(n int) {
	if cap(s.results) >= n {
		return
	}
	//lint:ignore hotpath-alloc cold-start growth; retained for every later query on this scratch
	s.results = make([]SubtaskResult, n)
	//lint:ignore hotpath-alloc cold-start growth; retained for every later query on this scratch
	s.lists = make([][]theap.Neighbor, n)
	//lint:ignore hotpath-alloc cold-start growth; retained for every later query on this scratch
	grown := make([]theap.TopK, n)
	copy(grown, s.tops)
	s.tops = grown
	//lint:ignore hotpath-alloc cold-start growth; retained for every later query on this scratch
	rgrown := make([]theap.TopK, n)
	copy(rgrown, s.rtops)
	s.rtops = rgrown
}

// ensureLUT returns worker slot's lookup-table buffer with length >= n,
// growing it on first use like every other scratch arena.
func (s *Scratch) ensureLUT(slot, n int) []float32 {
	if cap(s.luts[slot]) < n {
		//lint:ignore hotpath-alloc cold-start growth; the table is retained for every later query on this scratch
		s.luts[slot] = make([]float32, n)
	}
	return s.luts[slot][:n]
}

// ensureWorkers guarantees one graph searcher and one LUT slot per worker.
func (s *Scratch) ensureWorkers(w int) {
	for len(s.searchers) < w {
		//lint:ignore hotpath-alloc,scratch-reuse cold-start growth; searchers persist across queries
		s.searchers = append(s.searchers, graph.NewSearcher(0))
		//lint:ignore hotpath-alloc,scratch-reuse cold-start growth; LUT slots persist across queries
		s.luts = append(s.luts, nil)
	}
}

// runOne executes subtask i on worker slot, recording its timing and
// result list.
func (s *Scratch) runOne(ctx context.Context, p *Plan, i, slot int, results []SubtaskResult, lists [][]theap.Neighbor) {
	if fault.Enabled {
		// Injection point exec.subtask: a failed or slow subtask. Returning
		// before the kernel runs leaves results[i].Skipped true, so the
		// executor reports the query Partial — the same degradation path a
		// deadline exercises.
		if err := fault.Hit("exec.subtask"); err != nil {
			return
		}
	}
	if p.Subtasks[i].Cold {
		// Cold subtask on a worker slot: fetch inline — other workers'
		// hot kernels overlap the page-in naturally.
		//lint:ignore hotpath-alloc cold-fetch path; all-hot plans never reach it
		s.runCold(ctx, p, i, slot, results, lists)
		return
	}
	start := time.Now()
	lists[i] = s.runSubtask(ctx, p, i, slot)
	r := &results[i]
	r.Duration = time.Since(start)
	r.Skipped = false
	r.Found = len(lists[i])
}

// runWorker is one goroutine of the parallel fan-out: it claims subtask
// indices off the shared counter until the plan is drained or the context
// fires.
func (s *Scratch) runWorker(ctx context.Context, p *Plan, slot int, wg *sync.WaitGroup, results []SubtaskResult, lists [][]theap.Neighbor) {
	defer wg.Done()
	n := len(p.Subtasks)
	for {
		i := int(s.next.Add(1))
		if i >= n || ctx.Err() != nil {
			return
		}
		s.runOne(ctx, p, i, slot, results, lists)
	}
}

// runSubtask dispatches subtask i to its kernel. The returned list aliases
// the subtask's scratch heap and is valid until the scratch's next query.
func (s *Scratch) runSubtask(ctx context.Context, p *Plan, i, slot int) []theap.Neighbor {
	st := &p.Subtasks[i]
	if st.Run != nil {
		return st.Run(ctx)
	}
	if p.K <= 0 {
		return nil
	}
	top := &s.tops[i]
	top.ResetK(p.K)
	switch st.Kind {
	case GraphSearch:
		return s.graphKernel(st, p.Query, p.K, top, slot)
	case CompressedGraph:
		return s.compressedGraphKernel(st, p.Query, p.K, top, i, slot)
	case CompressedScan:
		return s.compressedScanKernel(ctx, st, p.Query, p.K, top, i, slot)
	}
	if st.List != nil {
		ScanListInto(ctx, top, st.Store, st.Metric, p.Query, st.List)
	} else {
		ScanInto(ctx, top, st.Store, st.Metric, p.Query, st.ScanLo, st.ScanHi)
	}
	return top.Items()
}

// graphKernel answers a GraphSearch subtask: an Algorithm 2 traversal over
// the block's view, rebased to global ids. A graph traversal visits a
// bounded frontier and is short relative to scans; cancellation is honored
// between subtasks rather than inside the walk.
func (s *Scratch) graphKernel(st *Subtask, q []float32, k int, top *theap.TopK, slot int) []theap.Neighbor {
	sr := s.searchers[slot]
	view := vec.View{Store: st.Store, Lo: st.Lo, Hi: st.Hi, Metric: st.Metric}
	sr.SearchInto(top, st.Graph, view, q, st.Times, st.Ts, st.Te, st.Params, st.Entries, k)
	res := top.Items()
	base := int32(st.Lo)
	for i := range res {
		res[i].ID += base
	}
	if invariant.Enabled {
		for i, nb := range res {
			invariant.Checkf(int(nb.ID) >= st.Lo && int(nb.ID) < st.Hi,
				"exec: graph result %d has id %d outside [%d,%d)", i, nb.ID, st.Lo, st.Hi)
			invariant.Checkf(st.Times == nil ||
				(st.Times[nb.ID-base] >= st.Ts && st.Times[nb.ID-base] < st.Te),
				"exec: graph result %d (id %d) fails the time window", i, nb.ID)
			invariant.Checkf(i == 0 || !theap.Less(res[i], res[i-1]),
				"exec: graph results not ascending at %d", i)
		}
	}
	return res
}

// compressedScanKernel answers a CompressedScan subtask: an asymmetric
// linear scan of the block's SQ8 codes over the window rows [ScanLo,
// ScanHi), over-fetching RerankK candidates into top, then the exact
// float32 re-rank keeps the true top k. The LUT is per worker slot and
// rebuilt per subtask; candidate ids are global throughout (codes row g
// maps to global row st.Lo+g).
//
//tknn:hotpath
func (s *Scratch) compressedScanKernel(ctx context.Context, st *Subtask, q []float32, k int, top *theap.TopK, i, slot int) []theap.Neighbor {
	rk := RerankK(k, 0, st.ScanHi-st.ScanLo)
	if st.RerankK > 0 {
		rk = st.RerankK
	}
	top.ResetK(rk)
	lut := s.ensureLUT(slot, st.Codes.LUTLen())
	st.Codes.FillLUT(st.Metric, q, lut)
	qn := vec.Norm(q)
	for g := st.ScanLo; g < st.ScanHi; g++ {
		if (g-st.ScanLo)%scanPoll == scanPoll-1 && ctx.Err() != nil {
			break
		}
		top.Push(theap.Neighbor{ID: int32(g), Dist: st.Codes.LUTDist(st.Metric, lut, qn, g-st.Lo)})
	}
	return s.rerank(st, q, k, top.Items(), i)
}

// compressedGraphKernel answers a CompressedGraph subtask: the Algorithm 2
// walk scores candidates against the block's SQ8 codes through the slot's
// LUT, over-fetches RerankK, and the exact re-rank keeps the true top k.
//
//tknn:hotpath
func (s *Scratch) compressedGraphKernel(st *Subtask, q []float32, k int, top *theap.TopK, i, slot int) []theap.Neighbor {
	rk := RerankK(k, 0, st.Hi-st.Lo)
	if st.RerankK > 0 {
		rk = st.RerankK
	}
	lut := s.ensureLUT(slot, st.Codes.LUTLen())
	st.Codes.FillLUT(st.Metric, q, lut)
	qn := vec.Norm(q)
	sr := s.searchers[slot]
	sr.SearchCodesInto(top, st.Graph, st.Codes, lut, st.Metric, qn, st.Times, st.Ts, st.Te, st.Params, st.Entries, rk)
	cands := top.Items()
	base := int32(st.Lo)
	for j := range cands {
		cands[j].ID += base
	}
	res := s.rerank(st, q, k, cands, i)
	if invariant.Enabled {
		for j, nb := range res {
			invariant.Checkf(int(nb.ID) >= st.Lo && int(nb.ID) < st.Hi,
				"exec: compressed result %d has id %d outside [%d,%d)", j, nb.ID, st.Lo, st.Hi)
			invariant.Checkf(st.Times == nil ||
				(st.Times[nb.ID-base] >= st.Ts && st.Times[nb.ID-base] < st.Te),
				"exec: compressed result %d (id %d) fails the time window", j, nb.ID)
			invariant.Checkf(j == 0 || !theap.Less(res[j], res[j-1]),
				"exec: compressed results not ascending at %d", j)
		}
	}
	return res
}

// rerank is the exact re-rank stage shared by the compressed kernels: the
// over-fetched candidates (global ids, asymmetric distances) are re-scored
// against the float32 store into the subtask's re-rank heap, which keeps
// the exact top k. Its duration is recorded on the subtask's result — the
// Rerank stage the server exports.
//
//tknn:hotpath
func (s *Scratch) rerank(st *Subtask, q []float32, k int, cands []theap.Neighbor, i int) []theap.Neighbor {
	start := time.Now()
	rt := &s.rtops[i]
	rt.ResetK(k)
	qsq := vec.SquaredNorm(q)
	for _, nb := range cands {
		rt.Push(theap.Neighbor{ID: nb.ID, Dist: vec.DistanceStored(st.Metric, q, qsq, st.Store, int(nb.ID))})
	}
	s.results[i].Rerank = time.Since(start)
	return rt.Items()
}

// scanPoll is how many rows a brute-scan kernel scores between context
// polls: rare enough to stay off the hot path, frequent enough that
// cancelling a scan takes microseconds.
const scanPoll = 2048

// ScanInto brute-force scores global rows [lo, hi) of store against q,
// pushing every row into top — the BruteForce step of Algorithm 1 as a
// kernel over a caller-owned heap. The scan polls ctx every scanPoll rows
// and stops early with what it has when the context is done; the executor
// tags the outcome Partial whenever that happens mid-plan.
//
//tknn:hotpath
func ScanInto(ctx context.Context, top *theap.TopK, store *vec.Store, metric vec.Metric, q []float32, lo, hi int) {
	qsq := vec.SquaredNorm(q) // hoisted once; the angular path then reads cached vector norms
	for i := lo; i < hi; i++ {
		if (i-lo)%scanPoll == scanPoll-1 && ctx.Err() != nil {
			return
		}
		top.Push(theap.Neighbor{ID: int32(i), Dist: vec.DistanceStored(metric, q, qsq, store, i)})
	}
}

// ScanListInto is ScanInto over an explicit global-id list — how IVF
// probes score the in-window run of an inverted list.
//
//tknn:hotpath
func ScanListInto(ctx context.Context, top *theap.TopK, store *vec.Store, metric vec.Metric, q []float32, ids []int32) {
	qsq := vec.SquaredNorm(q)
	for j, id := range ids {
		if j%scanPoll == scanPoll-1 && ctx.Err() != nil {
			return
		}
		top.Push(theap.Neighbor{ID: id, Dist: vec.DistanceStored(metric, q, qsq, store, int(id))})
	}
}
