package exec

import (
	"context"
	"time"

	"repro/internal/blockcache"
	"repro/internal/theap"
)

// Fetch stage: cold subtasks reference a spilled block whose payload
// must be paged in through the plan's block cache before a kernel can
// run. Two schedules cover both executor modes:
//
//   - Sequential (Workers <= 1): runSeqCold runs the hot subtasks on
//     the calling goroutine while a single prefetch goroutine pages the
//     cold payloads in plan order; cold kernels then run as their
//     fetches complete. Hot search overlaps disk reads, which is the
//     point of the stage.
//   - Parallel: runOne fetches inline on the claiming worker — the
//     other workers' kernels overlap the page-in without extra
//     machinery.
//
// Either way the payload stays pinned across its kernel and a failed
// fetch leaves the subtask skipped, so the query degrades to
// Outcome.Partial instead of erroring.

// planHasCold reports whether any subtask needs the fetch stage. It
// runs on the allocation-free hot path; all-hot plans take the
// untouched sequential loop.
func planHasCold(p *Plan) bool {
	for i := range p.Subtasks {
		if p.Subtasks[i].Cold {
			return true
		}
	}
	return false
}

// runCold fetches subtask i's payload through the block cache and runs
// its kernel. Used by the parallel workers (inline fetch) and shared
// with the sequential drain via runColdFetched.
func (s *Scratch) runCold(ctx context.Context, p *Plan, i, slot int, results []SubtaskResult, lists [][]theap.Neighbor) {
	st := &p.Subtasks[i]
	start := time.Now()
	val, err := st.Cache.Get(ctx, st.CacheKey)
	s.runColdFetched(ctx, p, i, slot, val, err, time.Since(start), results, lists)
}

// runColdFetched finishes a cold subtask once its fetch resolved:
// records the fetch, validates the payload against the subtask's range,
// rewrites the subtask into its resident form, runs the kernel, and
// unpins. Any failure leaves results[i].Skipped true.
func (s *Scratch) runColdFetched(ctx context.Context, p *Plan, i, slot int, val blockcache.Value, err error, fetch time.Duration, results []SubtaskResult, lists [][]theap.Neighbor) {
	st := &p.Subtasks[i]
	r := &results[i]
	r.Cold = true
	r.Fetch = fetch
	if err != nil {
		return
	}
	if val.Graph == nil || val.Graph.NumNodes() != st.Hi-st.Lo ||
		(val.Codes != nil && val.Codes.N != st.Hi-st.Lo) {
		// A structurally mismatched payload (stale or foreign segment
		// behind this key) must degrade like a failed fetch, never feed
		// a kernel.
		st.Cache.Unpin(st.CacheKey)
		return
	}
	// p aliases the scratch-owned plan copy, so rewriting the subtask
	// into its resident form is per-query state, not caller state.
	st.Graph = val.Graph
	st.Codes = val.Codes
	if st.Codes != nil {
		st.Kind = CompressedGraph
	}
	r.Kind = st.Kind
	if ctx.Err() == nil {
		start := time.Now()
		lists[i] = s.runSubtask(ctx, p, i, slot)
		r.Duration = time.Since(start)
		r.Skipped = false
		r.Found = len(lists[i])
	}
	st.Cache.Unpin(st.CacheKey)
}

// fetched is one prefetcher result handed to the sequential drain.
type fetched struct {
	i    int
	val  blockcache.Value
	err  error
	elap time.Duration
}

// runSeqCold is the sequential schedule for plans with cold subtasks:
// one prefetch goroutine pages cold payloads in plan order while the
// calling goroutine runs the hot subtasks, then drains the fetches and
// runs each cold kernel as its payload lands. The channel is always
// drained — even after cancellation — so every successful fetch is
// unpinned exactly once before the caller's lock-scope ends.
func (s *Scratch) runSeqCold(ctx context.Context, p *Plan, results []SubtaskResult, lists [][]theap.Neighbor) {
	n := len(p.Subtasks)
	ch := make(chan fetched, n)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			st := &p.Subtasks[i]
			if !st.Cold {
				continue
			}
			start := time.Now()
			val, err := st.Cache.Get(ctx, st.CacheKey)
			ch <- fetched{i: i, val: val, err: err, elap: time.Since(start)}
		}
	}()
	for i := 0; i < n; i++ {
		if p.Subtasks[i].Cold {
			continue
		}
		if ctx.Err() != nil {
			continue // keep going: the drain below must still run
		}
		s.runOne(ctx, p, i, 0, results, lists)
	}
	for f := range ch {
		s.runColdFetched(ctx, p, f.i, 0, f.val, f.err, f.elap, results, lists)
	}
}
