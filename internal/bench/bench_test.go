package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// tinyConfig keeps smoke tests fast: one small profile, few queries.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.05
	c.Fractions = []float64{0.05, 0.5}
	c.Ks = []int{10}
	c.QueriesPerPoint = 15
	c.EpsStep = 0.1 // coarse sweep for speed
	return c
}

func tinyProfiles(t *testing.T) []dataset.Profile {
	t.Helper()
	p, err := dataset.ProfileByName("MovieLens")
	if err != nil {
		t.Fatal(err)
	}
	return []dataset.Profile{p}
}

func TestFig5Smoke(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig5(tinyConfig(), tinyProfiles(t), &buf)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.BSBF.QPS <= 0 || r.SF.QPS <= 0 || r.MBI.QPS <= 0 {
			t.Errorf("non-positive QPS in %+v", r)
		}
		if !r.BSBF.Reached {
			t.Errorf("exact BSBF missed the recall target: %+v", r.BSBF)
		}
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("missing banner")
	}
}

func TestFig5ShapeShortVsLongWindows(t *testing.T) {
	// The paper's central claim in miniature: BSBF throughput collapses as
	// the window grows, SF's rises; verify the baselines' slopes have the
	// expected signs on a slightly larger run.
	c := tinyConfig()
	c.Scale = 0.12
	c.Fractions = []float64{0.02, 0.9}
	c.QueriesPerPoint = 25
	var buf bytes.Buffer
	rows := Fig5(c, tinyProfiles(t), &buf)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	short, long := rows[0], rows[1]
	if short.BSBF.QPS <= long.BSBF.QPS {
		t.Errorf("BSBF should be faster on short windows: short %.0f, long %.0f",
			short.BSBF.QPS, long.BSBF.QPS)
	}
}

func TestFig6Smoke(t *testing.T) {
	var buf bytes.Buffer
	series := Fig6(tinyConfig(), &buf)
	// 3 fractions x 3 methods.
	if len(series) != 9 {
		t.Fatalf("%d series, want 9", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Errorf("empty frontier for %s at %.0f%%", s.Method, s.Fraction*100)
		}
		for _, p := range s.Points {
			if p.QPS <= 0 || p.Recall < 0 || p.Recall > 1 {
				t.Errorf("bad point %+v", p)
			}
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	var buf bytes.Buffer
	res := Fig7(tinyConfig(), &buf)
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4 (n/8..n)", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].N <= res.Rows[i-1].N {
			t.Error("sizes not increasing")
		}
		if res.Rows[i].MBIIndexSize <= res.Rows[i-1].MBIIndexSize {
			t.Error("MBI index size not increasing with data")
		}
	}
	// MBI stores more graph levels than SF: larger index at every size.
	for _, r := range res.Rows {
		if r.MBIIndexSize <= r.SFIndexSize {
			t.Errorf("n=%d: MBI size %d <= SF size %d", r.N, r.MBIIndexSize, r.SFIndexSize)
		}
		if r.MBIIndexSize <= r.InputSize {
			t.Errorf("n=%d: MBI index smaller than input", r.N)
		}
	}
	// Size slope should be around 1 plus a log factor: comfortably within
	// (0.8, 1.8) even at smoke scale.
	if res.MBISizeSlope < 0.8 || res.MBISizeSlope > 1.8 {
		t.Errorf("MBI size slope %.2f outside sanity band", res.MBISizeSlope)
	}
}

func TestFig8Smoke(t *testing.T) {
	c := tinyConfig()
	var buf bytes.Buffer
	pts := Fig8(c, &buf)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	byLeaf := map[int][]Fig8Point{}
	for _, p := range pts {
		byLeaf[p.LeafSize] = append(byLeaf[p.LeafSize], p)
	}
	if len(byLeaf) < 2 {
		t.Fatalf("leaf sweep produced %d sizes", len(byLeaf))
	}
	for sl, series := range byLeaf {
		for i := 1; i < len(series); i++ {
			if series[i].Cumulative < series[i-1].Cumulative {
				t.Errorf("S_L=%d: cumulative time decreased", sl)
			}
			if series[i].Inserted <= series[i-1].Inserted {
				t.Errorf("S_L=%d: inserted counts not increasing", sl)
			}
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig9(tinyConfig(), tinyProfiles(t), &buf)
	// 2 fractions x 5 taus.
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.MBI.QPS <= 0 {
			t.Errorf("non-positive MBI QPS at tau %.1f", r.Tau)
		}
	}
}

func TestTablesSmoke(t *testing.T) {
	c := tinyConfig()
	ps := tinyProfiles(t)
	var buf bytes.Buffer
	Table2(c, ps, &buf)
	Table3(c, ps, &buf)
	rows := Table4(c, ps, &buf)
	if len(rows) != 1 {
		t.Fatalf("%d table-4 rows", len(rows))
	}
	r := rows[0]
	if r.MBISize <= r.SFSize || r.SFSize <= r.InputSize {
		t.Errorf("size ordering violated: input %d, SF %d, MBI %d", r.InputSize, r.SFSize, r.MBISize)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "MovieLens"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	var buf bytes.Buffer
	rows := AblationBuilder(tinyConfig(), &buf)
	if len(rows) != 4 { // 2 builders x 2 fractions
		t.Fatalf("%d rows, want 4", len(rows))
	}
	builders := map[string]bool{}
	for _, r := range rows {
		builders[r.Builder] = true
		if r.Op.QPS <= 0 {
			t.Errorf("%s: non-positive QPS", r.Builder)
		}
	}
	if !builders["nndescent"] || !builders["nsw"] {
		t.Error("missing a builder in the ablation")
	}
}

func TestExecExperimentSmoke(t *testing.T) {
	c := tinyConfig()
	c.QueriesPerPoint = 10
	var buf bytes.Buffer
	report, err := ExecExperiment(c, &buf, "") // no JSON at smoke scale
	if err != nil {
		t.Fatal(err)
	}
	// The 128-leaf smoke tree cannot decompose into 16 pieces, but 1- and
	// 4-block windows must exist.
	if len(report.Points) < 2 {
		t.Fatalf("%d points, want at least the 1- and 4-block windows", len(report.Points))
	}
	wantBlocks := []int{1, 4}
	for i, want := range wantBlocks {
		p := report.Points[i]
		if p.Blocks != want {
			t.Errorf("point %d: %d blocks, want %d", i, p.Blocks, want)
		}
		if !p.Equivalent {
			t.Errorf("%d-block window: sequential and parallel results differ", p.Blocks)
		}
		if p.SeqSeconds <= 0 || p.ParSeconds <= 0 {
			t.Errorf("%d-block window: non-positive latency %+v", p.Blocks, p)
		}
		if want > 1 && p.IdealSpeedup <= 1 {
			t.Errorf("%d-block window: ideal speedup %.2f not > 1", p.Blocks, p.IdealSpeedup)
		}
	}
	if !strings.Contains(buf.String(), "Exec experiment") {
		t.Error("missing banner")
	}
}

func TestQPSAtRecallExactShortCircuit(t *testing.T) {
	c := tinyConfig()
	p := tinyProfiles(t)[0]
	d := genData(c, p)
	bs := NewBSBF()
	bs.Build(d)
	qs, gt := queriesAndTruth(c, d, 10, 0.3)
	op := qpsAtRecall(c, bs, qs, gt)
	if !op.Reached || op.Recall < 0.999 {
		t.Errorf("exact method scored %+v", op)
	}
}

func TestDriftExperimentSmoke(t *testing.T) {
	c := tinyConfig()
	var buf bytes.Buffer
	rows := DriftExperiment(c, &buf)
	if len(rows) != 6 { // 3 rates x 2 fractions
		t.Fatalf("%d rows, want 6", len(rows))
	}
	var zero, high float32
	for _, r := range rows {
		if r.MBI.QPS <= 0 || r.BSBF.QPS <= 0 {
			t.Errorf("non-positive QPS at rate %g", r.Rate)
		}
		switch r.Rate {
		case 0:
			zero = r.Spread
		case 2e-3:
			high = r.Spread
		}
	}
	if high <= zero {
		t.Errorf("spread did not grow with drift: %g -> %g", zero, high)
	}
	if !strings.Contains(buf.String(), "Drift experiment") {
		t.Error("missing banner")
	}
}

func TestIVFExperimentSmoke(t *testing.T) {
	c := tinyConfig()
	var buf bytes.Buffer
	rows := IVFExperiment(c, tinyProfiles(t), &buf)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.IVF.QPS <= 0 || r.MBI.QPS <= 0 {
			t.Errorf("non-positive QPS in %+v", r)
		}
		if r.IVFBuild <= 0 {
			t.Error("zero IVF build time")
		}
	}
	if !strings.Contains(buf.String(), "IVF experiment") {
		t.Error("missing banner")
	}
}

func TestAsyncMergeExperimentSmoke(t *testing.T) {
	c := tinyConfig()
	var buf bytes.Buffer
	rows := AsyncMergeExperiment(c, &buf)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Mode != "sync" || rows[1].Mode != "async" {
		t.Errorf("modes %q, %q", rows[0].Mode, rows[1].Mode)
	}
	for _, r := range rows {
		if r.Total <= 0 || r.Max <= 0 || r.P50 > r.P99 || r.P99 > r.Max {
			t.Errorf("implausible latencies %+v", r)
		}
	}
	// The async path's worst insert should beat the sync path's worst
	// (which contains a full merge cascade).
	if rows[1].Max >= rows[0].Max {
		t.Errorf("async max insert %v not better than sync %v", rows[1].Max, rows[0].Max)
	}
	if !strings.Contains(buf.String(), "AsyncMerge experiment") {
		t.Error("missing banner")
	}
}
