package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/ivf"
	"repro/internal/theap"
)

// IVFMethod adapts the inverted-file index to the Method interface. Its
// accuracy knob is nprobe (how many inverted lists a query scans), not ε;
// the harness's sweep variable maps onto it linearly so the same
// qpsAtRecall machinery tunes both families:
//
//	eps = EpsMin        -> nprobe = 1
//	eps = EpsHardMax    -> nprobe = Lists (exact)
type IVFMethod struct {
	profile dataset.Profile
	seed    int64
	sweepLo float64
	sweepHi float64
	ix      *ivf.Index
}

// NewIVF returns the IVF comparator. sweepLo/sweepHi must match the
// config's EpsMin and EpsHardMax so the probe mapping spans 1..Lists.
func NewIVF(p dataset.Profile, seed int64, sweepLo, sweepHi float64) *IVFMethod {
	return &IVFMethod{profile: p, seed: seed, sweepLo: sweepLo, sweepHi: sweepHi}
}

// Name implements Method.
func (m *IVFMethod) Name() string { return "IVF" }

// Exact implements Method.
func (m *IVFMethod) Exact() bool { return false }

// Build implements Method; the duration covers k-means clustering and
// list assignment.
func (m *IVFMethod) Build(d *dataset.Data) time.Duration {
	ix := ivf.New(m.profile.Dim, m.profile.Metric, ivf.Config{})
	for i := 0; i < d.Train.Len(); i++ {
		if err := ix.Append(d.Train.At(i), d.Times[i]); err != nil {
			panic(fmt.Sprintf("bench: ivf append: %v", err))
		}
	}
	start := time.Now()
	if err := ix.Build(m.seed); err != nil {
		panic(fmt.Sprintf("bench: ivf build: %v", err))
	}
	elapsed := time.Since(start)
	m.ix = ix
	return elapsed
}

// Query implements Method, translating the sweep variable to nprobe.
func (m *IVFMethod) Query(q dataset.Query, eps float64, _ *rand.Rand) []theap.Neighbor {
	return m.ix.Search(q.W, q.K, q.Ts, q.Te, m.nprobe(eps))
}

func (m *IVFMethod) nprobe(eps float64) int {
	lists := m.ix.Lists()
	if lists == 0 {
		return 1
	}
	span := m.sweepHi - m.sweepLo
	if span <= 0 {
		return lists
	}
	frac := (eps - m.sweepLo) / span
	np := 1 + int(frac*float64(lists-1)+0.5)
	if np < 1 {
		np = 1
	}
	if np > lists {
		np = lists
	}
	return np
}

// IVFRow is one window-fraction measurement of the IVF experiment.
type IVFRow struct {
	Profile  string
	Fraction float64
	IVFBuild time.Duration
	SFBuild  time.Duration
	IVF      Operating
	SF       Operating
	MBI      Operating
}

// IVFExperiment compares the quantization family (IVF-Flat with native
// time-window lists) against the graph family (SF) and MBI, extending the
// paper's graph-only evaluation. IVF's per-list time windows make short
// windows cheap, like BSBF — but probing too few lists caps recall, which
// is where MBI's per-era graphs win.
func IVFExperiment(c Config, profiles []dataset.Profile, w io.Writer) []IVFRow {
	header(w, "IVF experiment — quantization-family comparator",
		fmt.Sprintf("QPS at recall@10 >= %.3f; IVF nprobe vs SF/MBI eps tuned by the same sweep", c.RecallTarget))
	hard := c.EpsHardMax
	if hard < c.EpsMax {
		hard = c.EpsMax
	}
	const k = 10
	var rows []IVFRow
	for _, p := range profiles {
		d := genData(c, p)
		scaled := d.Profile
		ivfm := NewIVF(scaled, c.Seed, c.EpsMin, hard)
		ivfBuild := ivfm.Build(d)
		sfm := NewSF(scaled, c.Seed)
		sfBuild := sfm.Build(d)
		mbi := NewMBI(scaled, c.Seed, c.Workers)
		mbi.Build(d)

		fmt.Fprintf(w, "%s (n=%d, %d lists; IVF build %s, SF build %s)\n",
			p.Name, d.Train.Len(), ivfm.ix.Lists(), ivfBuild.Round(time.Millisecond), sfBuild.Round(time.Millisecond))
		fmt.Fprintf(w, "%8s | %12s %12s %12s\n", "window", "IVF qps", "SF qps", "MBI qps")
		for _, frac := range c.Fractions {
			qs, gt := queriesAndTruth(c, d, k, frac)
			row := IVFRow{Profile: p.Name, Fraction: frac, IVFBuild: ivfBuild, SFBuild: sfBuild}
			row.IVF = qpsAtRecall(c, ivfm, qs, gt)
			row.SF = qpsAtRecall(c, sfm, qs, gt)
			row.MBI = qpsAtRecall(c, mbi, qs, gt)
			rows = append(rows, row)
			fmt.Fprintf(w, "%7.0f%% | %12.0f%s %12.0f%s %12.0f%s\n",
				frac*100, row.IVF.QPS, flag(row.IVF), row.SF.QPS, flag(row.SF), row.MBI.QPS, flag(row.MBI))
		}
		fmt.Fprintln(w)
	}
	return rows
}
