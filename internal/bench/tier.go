package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/blockcache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/persist"
	"repro/internal/sq"
	"repro/internal/theap"
	"repro/internal/vec"
)

// TierPoint is one cache-budget operating point of the tiered-storage
// experiment: the whole sealed forest on disk, the block cache bounded
// to SpilledBytes/Overcommit, measured against the all-RAM baseline on
// the same queries.
type TierPoint struct {
	// Overcommit is the memory overcommit factor: spilled payload bytes
	// divided by the cache budget (1 = everything fits, 16 = heavy
	// thrash).
	Overcommit int `json:"overcommit"`
	// CacheBytes is the resulting cache budget.
	CacheBytes int64 `json:"cache_bytes"`
	// Recall is recall@k against brute-force ground truth.
	Recall float64 `json:"recall_vs_exact"`
	// P50Ns / P99Ns are per-query latency percentiles in nanoseconds.
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
	// HitRate is hits/(hits+misses) over the measured (second) pass of
	// the query stream — steady-state paging, after one warm-up pass
	// from an empty cache.
	HitRate float64 `json:"hit_rate"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	// Evictions counts payloads dropped to stay under the budget.
	Evictions uint64 `json:"evictions"`
	// HitRateTrajectory is the cumulative hit rate sampled after each
	// quarter of the query stream — how fast the cache warms (or fails
	// to) at this budget.
	HitRateTrajectory []float64 `json:"hit_rate_trajectory"`
}

// TierReport is the experiment output, serialized to BENCH_tier.json:
// recall and latency of disk-resident blocks behind the bounded LRU
// block cache at increasing memory overcommit, on the drifting-cluster
// workload.
type TierReport struct {
	Dim      int `json:"dim"`
	TrainN   int `json:"train_n"`
	LeafSize int `json:"leaf_size"`
	K        int `json:"k"`
	Queries  int `json:"queries"`
	// SpilledBlocks / SpilledBytes describe what SpillCold moved to
	// disk: every sealed block at or below the spill height (the bulk of
	// the block count; the tall roots stay RAM-resident).
	SpilledBlocks int   `json:"spilled_blocks"`
	SpilledBytes  int64 `json:"spilled_bytes"`
	// RAMRecall / RAMP50Ns / RAMP99Ns are the all-RAM baseline, measured
	// on the identical index before spilling.
	RAMRecall float64     `json:"ram_recall_vs_exact"`
	RAMP50Ns  float64     `json:"ram_p50_ns"`
	RAMP99Ns  float64     `json:"ram_p99_ns"`
	Points    []TierPoint `json:"points"`
}

// tierK is the result count; the paper's headline recall operating point.
const tierK = 10

// tierOvercommits is the cache-pressure sweep; the acceptance gates read
// the 4x point.
var tierOvercommits = []int{1, 4, 16}

// Acceptance gates, checked at 4x overcommit (cache bounded to a quarter
// of the spilled bytes): paging through the cache must not cost recall
// (cold results are bit-identical to RAM results by construction), and
// tail latency must stay within 3x of the all-RAM median.
const (
	tierGateOvercommit   = 4
	tierMaxRecallLoss    = 0.01
	tierMaxP99OverRAMP50 = 3.0
)

// TierExperiment measures the tiered query path on a drifting-cluster
// workload: build the index, take the all-RAM baseline, spill the cold
// short blocks to per-block segment files (the shipped policy — tall
// roots stay in RAM), then sweep the block-cache budget from
// "everything fits" to 16x overcommit, reporting recall, latency
// percentiles, and the cache hit-rate trajectory at each budget.
func TierExperiment(c Config, w io.Writer, jsonPath string) (TierReport, error) {
	leaves := 48
	sl := int(96*c.Scale + 0.5)
	if sl < 32 {
		sl = 32
	}
	p := dataset.Profile{
		Name: "tier-drift", Dim: 64, Metric: vec.Angular,
		TrainN: leaves * sl, TestN: c.QueriesPerPoint,
		Clusters: 24, ClusterStd: 0.9, Background: 0.1,
		LeafSize: sl, Tau: 0.5, GraphK: 12, MC: 36,
	}
	drift := dataset.DriftConfig{Rate: 5e-4, Renormalize: true}
	d := dataset.GenerateDrifting(p, drift, c.Seed)

	report := TierReport{Dim: p.Dim, TrainN: p.TrainN, LeafSize: sl, K: tierK}

	segDir, err := os.MkdirTemp("", "tknn-tier-")
	if err != nil {
		return report, fmt.Errorf("tier experiment: %w", err)
	}
	defer os.RemoveAll(segDir)

	sp := graph.SearchParams{MC: effMC(p.MC, tierK), Eps: 1.1}
	ix, err := core.New(core.Options{
		Dim: p.Dim, Metric: p.Metric, LeafSize: sl, Tau: p.Tau,
		Builder: nndescent.MustNew(nndescent.DefaultConfig(p.GraphK)),
		Search:  sp, Workers: c.Workers, Seed: c.Seed,
		Spill: &core.SpillConfig{
			Write: func(id, lo, hi, height int, g *graph.CSR, codes *sq.Codes) (int64, error) {
				return persist.WriteSegmentFile(segDir, id, lo, hi, height, p.Dim, g, codes)
			},
			Load: func(ctx context.Context, key uint64) (blockcache.Value, error) {
				g, codes, _, _, err := persist.ReadSegmentFile(segDir, int(key), p.Dim)
				if err != nil {
					return blockcache.Value{}, err
				}
				return blockcache.Value{Graph: g, Codes: codes}, nil
			},
			// Height <= 3 mirrors the shipped policy: short blocks (the
			// bulk of the block count) spill, the tall roots that answer
			// most of every window stay RAM-resident.
			MaxHeight:  3,
			CacheBytes: 1 << 40,
		},
	})
	if err != nil {
		return report, fmt.Errorf("tier experiment: %w", err)
	}
	for i := 0; i < d.Train.Len(); i++ {
		if err := ix.Append(d.Train.At(i), d.Times[i]); err != nil {
			return report, fmt.Errorf("tier experiment: append: %w", err)
		}
	}

	rng := rand.New(rand.NewSource(c.Seed + 2))
	qs := dataset.MakeQueries(rng, d, tierK, 0.5)
	if len(qs) > c.QueriesPerPoint {
		qs = qs[:c.QueriesPerPoint]
	}
	exact := dataset.GroundTruth(d.Train, d.Times, p.Metric, qs, c.Workers)
	report.Queries = len(qs)

	// run answers the full query stream sequentially, sampling the
	// cumulative cache hit rate after each quarter, and returns answers
	// plus sorted per-query latencies.
	run := func() ([][]theap.Neighbor, []time.Duration, []float64) {
		qrng := rand.New(rand.NewSource(c.Seed + 3))
		answers := make([][]theap.Neighbor, len(qs))
		lats := make([]time.Duration, len(qs))
		var traj []float64
		quarter := (len(qs) + 3) / 4
		for i, q := range qs {
			start := time.Now()
			answers[i] = ix.SearchTau(q.W, q.K, q.Ts, q.Te, p.Tau, sp, qrng)
			lats[i] = time.Since(start)
			if (i+1)%quarter == 0 || i == len(qs)-1 {
				if st, ok := ix.CacheStats(); ok && st.Hits+st.Misses > 0 {
					traj = append(traj, float64(st.Hits)/float64(st.Hits+st.Misses))
				}
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return answers, lats, traj
	}
	pct := func(sorted []time.Duration, p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return float64(sorted[i].Nanoseconds())
	}

	// --- all-RAM baseline, before anything is spilled -------------------
	ramAnswers, ramLats, _ := run()
	report.RAMRecall, err = dataset.MeanRecall(ramAnswers, exact, tierK)
	if err != nil {
		return report, fmt.Errorf("tier experiment: %w", err)
	}
	report.RAMP50Ns = pct(ramLats, 0.50)
	report.RAMP99Ns = pct(ramLats, 0.99)

	blocks, bytes, err := ix.SpillCold()
	if err != nil {
		return report, fmt.Errorf("tier experiment: spill: %w", err)
	}
	if blocks == 0 {
		return report, fmt.Errorf("tier experiment: nothing spilled (S_L %d, %d vectors)", sl, p.TrainN)
	}
	report.SpilledBlocks = blocks
	report.SpilledBytes = bytes

	header(w, "tiered storage experiment (drifting clusters)",
		fmt.Sprintf("n=%d, S_L=%d (%d leaves), dim=%d, k=%d, %d queries, %d cores",
			p.TrainN, sl, leaves, p.Dim, tierK, len(qs), runtime.NumCPU()))
	fmt.Fprintf(w, "spilled %d blocks, %d bytes; all-RAM baseline: recall@%d %.3f, p50 %.0f ns, p99 %.0f ns\n\n",
		blocks, bytes, tierK, report.RAMRecall, report.RAMP50Ns, report.RAMP99Ns)
	fmt.Fprintf(w, "%-10s %12s %8s %12s %12s %9s %10s\n",
		"overcommit", "cache bytes", "recall", "p50 ns", "p99 ns", "hit rate", "evictions")

	for _, oc := range tierOvercommits {
		budget := bytes / int64(oc)
		// A fresh cache per budget: each point warms from empty, so the
		// hit-rate trajectory is the budget's own, not the previous
		// sweep's leftovers.
		ix.SetCacheBytes(budget)
		// First pass warms the cache (and records how fast it warms);
		// the second pass is the measured one, so the latency gates read
		// steady-state paging behavior, not one-time first-touch misses.
		_, _, traj := run()
		warm, _ := ix.CacheStats()
		answers, lats, _ := run()
		recall, err := dataset.MeanRecall(answers, exact, tierK)
		if err != nil {
			return report, fmt.Errorf("tier experiment: %w", err)
		}
		st, _ := ix.CacheStats()
		pt := TierPoint{
			Overcommit:        oc,
			CacheBytes:        budget,
			Recall:            recall,
			P50Ns:             pct(lats, 0.50),
			P99Ns:             pct(lats, 0.99),
			Hits:              st.Hits - warm.Hits,
			Misses:            st.Misses - warm.Misses,
			Evictions:         st.Evictions,
			HitRateTrajectory: traj,
		}
		if lookups := pt.Hits + pt.Misses; lookups > 0 {
			pt.HitRate = float64(pt.Hits) / float64(lookups)
		}
		report.Points = append(report.Points, pt)
		fmt.Fprintf(w, "%-10d %12d %8.3f %12.0f %12.0f %9.3f %10d\n",
			pt.Overcommit, pt.CacheBytes, pt.Recall, pt.P50Ns, pt.P99Ns, pt.HitRate, pt.Evictions)
	}

	if jsonPath != "" {
		if err := writeTierJSON(jsonPath, report); err != nil {
			return report, err
		}
		fmt.Fprintf(w, "\nwrote %s\n", jsonPath)
	}
	for _, pt := range report.Points {
		if pt.Overcommit != tierGateOvercommit {
			continue
		}
		if pt.Recall < report.RAMRecall-tierMaxRecallLoss {
			return report, fmt.Errorf("tier experiment: recall@%d %.3f at %dx overcommit more than %.2f below the all-RAM %.3f",
				tierK, pt.Recall, pt.Overcommit, tierMaxRecallLoss, report.RAMRecall)
		}
		if pt.P99Ns > tierMaxP99OverRAMP50*report.RAMP50Ns && pt.P99Ns > report.RAMP99Ns {
			return report, fmt.Errorf("tier experiment: p99 %.0f ns at %dx overcommit exceeds %gx the all-RAM p50 (%.0f ns)",
				pt.P99Ns, pt.Overcommit, tierMaxP99OverRAMP50, report.RAMP50Ns)
		}
	}
	return report, nil
}

func writeTierJSON(path string, report TierReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tier experiment: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		_ = f.Close()
		return fmt.Errorf("tier experiment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("tier experiment: %w", err)
	}
	return nil
}
