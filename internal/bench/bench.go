// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5) against the synthetic dataset
// stand-ins, printing rows comparable to the paper's plots. Each FigN /
// TableN function is wired to both a cmd/mbibench subcommand and a
// testing.B benchmark in the repository root.
//
// Methodology follows §5.1.3 and §5.2: queries are held-out vectors with
// windows sampled to cover a target fraction of the data; SF and MBI sweep
// the range-extension factor ε from 1.00 to 1.40 in steps of 0.02 and
// report the fastest configuration whose recall@k reaches the target
// (0.995 in the paper); BSBF is exact so it reports plain QPS.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/bsbf"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/sf"
	"repro/internal/theap"
)

// Config controls experiment scale. The zero value is unusable; start
// from DefaultConfig.
type Config struct {
	// Scale multiplies every profile's train/test sizes (and leaf size).
	// 1.0 is the laptop-scale default documented in DESIGN.md.
	Scale float64
	// Seed drives data generation, index builds, and query sampling.
	Seed int64
	// RecallTarget is the recall@k a configuration must reach before its
	// QPS is reported (the paper uses 0.995).
	RecallTarget float64
	// EpsMin, EpsMax, EpsStep define the ε sweep (paper: 1.00–1.40 by 0.02).
	EpsMin, EpsMax, EpsStep float64
	// EpsHardMax extends the sweep past EpsMax when the recall target is
	// not reached within the paper's range — the synthetic stand-ins are
	// occasionally harder than the real datasets at matched ε. Points
	// that needed the extension are marked in the output.
	EpsHardMax float64
	// Fractions are the query-window sizes as fractions of the data
	// (paper sweeps 1%–95%).
	Fractions []float64
	// Ks are the TkNN result counts (paper: 10, 50, 100).
	Ks []int
	// QueriesPerPoint bounds how many held-out queries measure each
	// (fraction, k) point.
	QueriesPerPoint int
	// Workers parallelizes ground-truth computation and MBI block builds.
	Workers int
}

// DefaultConfig returns the configuration used by `mbibench` without
// flags: full fraction sweep at scale 1.
func DefaultConfig() Config {
	return Config{
		Scale:           1.0,
		Seed:            1,
		RecallTarget:    0.995,
		EpsMin:          1.0,
		EpsMax:          1.4,
		EpsStep:         0.02,
		EpsHardMax:      2.4,
		Fractions:       []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95},
		Ks:              []int{10, 50, 100},
		QueriesPerPoint: 100,
		Workers:         1,
	}
}

// QuickConfig returns a configuration small enough for smoke tests and
// `go test -bench`.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.12
	c.Fractions = []float64{0.02, 0.3, 0.9}
	c.Ks = []int{10}
	c.QueriesPerPoint = 40
	return c
}

// Method is one competitor in the experiments: MBI, BSBF, or SF.
type Method interface {
	// Name identifies the method in output rows.
	Name() string
	// Build indexes the full training set, returning the wall-clock
	// build time.
	Build(d *dataset.Data) time.Duration
	// Query answers one TkNN query with range-extension factor eps.
	// BSBF ignores eps (it is exact).
	Query(q dataset.Query, eps float64, rng *rand.Rand) []theap.Neighbor
	// Exact reports whether results are exact (skips the ε sweep).
	Exact() bool
}

// --- BSBF -------------------------------------------------------------

type bsbfMethod struct {
	ix *bsbf.Index
}

// NewBSBF returns the Binary-Search-and-Brute-Force baseline method.
func NewBSBF() Method { return &bsbfMethod{} }

func (m *bsbfMethod) Name() string { return "BSBF" }
func (m *bsbfMethod) Exact() bool  { return true }

func (m *bsbfMethod) Build(d *dataset.Data) time.Duration {
	start := time.Now()
	ix, err := bsbf.FromData(d.Train, d.Times, d.Profile.Metric)
	if err != nil {
		panic(fmt.Sprintf("bench: bsbf build: %v", err))
	}
	m.ix = ix
	return time.Since(start)
}

func (m *bsbfMethod) Query(q dataset.Query, _ float64, _ *rand.Rand) []theap.Neighbor {
	return m.ix.Search(q.W, q.K, q.Ts, q.Te)
}

// --- SF ----------------------------------------------------------------

// SFMethod is the Search-and-Filtering competitor.
type SFMethod struct {
	profile dataset.Profile
	seed    int64
	ix      *sf.Index
}

// NewSF returns the Search-and-Filtering baseline method with the
// profile's graph parameters.
func NewSF(p dataset.Profile, seed int64) *SFMethod {
	return &SFMethod{profile: p, seed: seed}
}

// Name implements Method.
func (m *SFMethod) Name() string { return "SF" }

// Exact implements Method.
func (m *SFMethod) Exact() bool { return false }

// Build implements Method; the reported duration covers graph
// construction only (appends are raw data loading for SF).
func (m *SFMethod) Build(d *dataset.Data) time.Duration {
	builder := nndescent.MustNew(nndescent.DefaultConfig(m.profile.GraphK))
	ix := sf.New(m.profile.Dim, m.profile.Metric, builder)
	for i := 0; i < d.Train.Len(); i++ {
		if err := ix.Append(d.Train.At(i), d.Times[i]); err != nil {
			panic(fmt.Sprintf("bench: sf append: %v", err))
		}
	}
	start := time.Now()
	ix.BuildGraph(m.seed)
	elapsed := time.Since(start)
	m.ix = ix
	return elapsed
}

// Query implements Method.
func (m *SFMethod) Query(q dataset.Query, eps float64, rng *rand.Rand) []theap.Neighbor {
	p := graph.SearchParams{MC: effMC(m.profile.MC, q.K), Eps: float32(eps)}
	return m.ix.Search(q.W, q.K, q.Ts, q.Te, p, rng)
}

// effMC widens the candidate cap for large k: a frontier smaller than the
// result set cannot assemble k good answers. The paper handles this by
// grid-searching M_C per dataset with M_C >= k (Table 3); scaling with k
// is the equivalent rule at this repository's sizes.
func effMC(mc, k int) int {
	if floor := 3 * k; mc < floor {
		return floor
	}
	return mc
}

// Index exposes the built SF index (for size measurement).
func (m *SFMethod) Index() *sf.Index { return m.ix }

// --- MBI ---------------------------------------------------------------

type mbiMethod struct {
	profile dataset.Profile
	seed    int64
	tau     float64
	workers int
	ix      *core.Index
	builder graph.Builder
}

// NewMBI returns the paper's method with the profile's Table 3 parameters.
func NewMBI(p dataset.Profile, seed int64, workers int) *MBIMethod {
	return &MBIMethod{mbiMethod{
		profile: p,
		seed:    seed,
		tau:     p.Tau,
		workers: workers,
		builder: nndescent.MustNew(nndescent.DefaultConfig(p.GraphK)),
	}}
}

// MBIMethod is the exported MBI competitor; it carries extra knobs the
// parameter-sweep experiments (Figures 8 and 9) need.
type MBIMethod struct {
	mbiMethod
}

func (m *MBIMethod) Name() string { return "MBI" }
func (m *MBIMethod) Exact() bool  { return false }

// SetTau overrides the block-selection threshold (Figure 9).
func (m *MBIMethod) SetTau(tau float64) { m.tau = tau }

// SetBuilder overrides the per-block graph builder (builder ablation).
func (m *MBIMethod) SetBuilder(b graph.Builder) { m.builder = b }

// SetLeafSize overrides S_L (Figure 8). Must be called before Build.
func (m *MBIMethod) SetLeafSize(sl int) { m.profile.LeafSize = sl }

// Build implements Method.
func (m *MBIMethod) Build(d *dataset.Data) time.Duration {
	ix, err := core.New(core.Options{
		Dim:      m.profile.Dim,
		Metric:   m.profile.Metric,
		LeafSize: m.profile.LeafSize,
		Tau:      m.tau,
		Builder:  m.builder,
		Search:   graph.SearchParams{MC: m.profile.MC, Eps: 1.1},
		Workers:  m.workers,
		Seed:     m.seed,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: mbi: %v", err))
	}
	start := time.Now()
	for i := 0; i < d.Train.Len(); i++ {
		if err := ix.Append(d.Train.At(i), d.Times[i]); err != nil {
			panic(fmt.Sprintf("bench: mbi append: %v", err))
		}
	}
	elapsed := time.Since(start)
	m.ix = ix
	return elapsed
}

// Query implements Method; tau is whatever SetTau last set (a pure
// query-time parameter, so Figure 9 sweeps it on one built index).
func (m *MBIMethod) Query(q dataset.Query, eps float64, rng *rand.Rand) []theap.Neighbor {
	p := graph.SearchParams{MC: effMC(m.profile.MC, q.K), Eps: float32(eps)}
	return m.ix.SearchTau(q.W, q.K, q.Ts, q.Te, m.tau, p, rng)
}

// Index exposes the built MBI index (for size measurement and τ sweeps).
func (m *MBIMethod) Index() *core.Index { return m.ix }

// --- measurement primitives ---------------------------------------------

// Point is one measured (recall, QPS) operating point.
type Point struct {
	Eps    float64
	Recall float64
	QPS    float64
}

// measure runs all queries at one ε and returns recall and QPS.
func measure(m Method, qs []dataset.Query, gt [][]theap.Neighbor, eps float64, seed int64) Point {
	rng := rand.New(rand.NewSource(seed))
	answers := make([][]theap.Neighbor, len(qs))
	start := time.Now()
	for i, q := range qs {
		answers[i] = m.Query(q, eps, rng)
	}
	elapsed := time.Since(start)
	var recall float64
	for i := range qs {
		recall += dataset.Recall(answers[i], gt[i], qs[i].K)
	}
	recall /= float64(len(qs))
	return Point{Eps: eps, Recall: recall, QPS: float64(len(qs)) / elapsed.Seconds()}
}

// Operating is the result of tuning one method at one workload point.
type Operating struct {
	Point
	// Reached reports whether the recall target was attained within the
	// ε sweep; when false, Point is the highest-recall configuration.
	Reached bool
	// Extended reports that the target needed an ε beyond the paper's
	// sweep range (see Config.EpsHardMax).
	Extended bool
}

// qpsAtRecall sweeps ε upward (the paper's grid) and returns the first
// configuration reaching the recall target — the fastest one, since QPS
// decreases with ε. Exact methods return their single operating point.
func qpsAtRecall(c Config, m Method, qs []dataset.Query, gt [][]theap.Neighbor) Operating {
	if m.Exact() {
		p := measure(m, qs, gt, 1.0, c.Seed)
		return Operating{Point: p, Reached: p.Recall >= c.RecallTarget}
	}
	hard := c.EpsHardMax
	if hard < c.EpsMax {
		hard = c.EpsMax
	}
	best := Point{Recall: -1}
	for eps := c.EpsMin; eps <= hard+1e-9; eps += c.EpsStep {
		p := measure(m, qs, gt, eps, c.Seed)
		if p.Recall >= c.RecallTarget {
			return Operating{Point: p, Reached: true, Extended: eps > c.EpsMax+1e-9}
		}
		if p.Recall > best.Recall {
			best = p
		}
	}
	return Operating{Point: best, Reached: false}
}

// pareto measures the full ε sweep and returns the Pareto frontier of
// (recall, QPS) points — for each recall level the fastest configuration
// (Figure 6's curves).
func pareto(c Config, m Method, qs []dataset.Query, gt [][]theap.Neighbor) []Point {
	var pts []Point
	if m.Exact() {
		return []Point{measure(m, qs, gt, 1.0, c.Seed)}
	}
	for eps := c.EpsMin; eps <= c.EpsMax+1e-9; eps += c.EpsStep {
		pts = append(pts, measure(m, qs, gt, eps, c.Seed))
	}
	// Keep points not dominated by any other (higher recall and higher QPS).
	var frontier []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && q.Recall >= p.Recall && q.QPS > p.QPS {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	return frontier
}

// genData generates the scaled workload for a profile.
func genData(c Config, p dataset.Profile) *dataset.Data {
	scaled := p.Scale(c.Scale)
	return dataset.Generate(scaled, c.Seed)
}

// queriesAndTruth samples queries at a window fraction, limited to
// c.QueriesPerPoint, with exact ground truth.
func queriesAndTruth(c Config, d *dataset.Data, k int, frac float64) ([]dataset.Query, [][]theap.Neighbor) {
	rng := rand.New(rand.NewSource(c.Seed + int64(frac*1e6) + int64(k)))
	qs := dataset.MakeQueries(rng, d, k, frac)
	if len(qs) > c.QueriesPerPoint {
		qs = qs[:c.QueriesPerPoint]
	}
	gt := dataset.GroundTruth(d.Train, d.Times, d.Profile.Metric, qs, c.Workers)
	return qs, gt
}

// header prints an experiment banner.
func header(w io.Writer, title, detail string) {
	fmt.Fprintf(w, "\n=== %s ===\n%s\n\n", title, detail)
}

// flag marks operating points that missed the recall target or needed an
// ε beyond the paper's sweep.
func flag(o Operating) string {
	switch {
	case o.Reached && !o.Extended:
		return ""
	case o.Reached:
		return fmt.Sprintf(" [eps %.2f > paper range]", o.Eps)
	default:
		return fmt.Sprintf(" (best recall %.3f < target)", o.Recall)
	}
}
