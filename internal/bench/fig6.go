package bench

import (
	"fmt"
	"io"

	"repro/internal/dataset"
)

// Fig6Series is one method's Pareto frontier at one window fraction.
type Fig6Series struct {
	Method   string
	Fraction float64
	Points   []Point
}

// Fig6 reproduces Figure 6: recall@10 versus queries per second on the
// COMS profile for window fractions 10%, 30%, and 80%, sweeping ε for SF
// and MBI (BSBF contributes its single exact point).
func Fig6(c Config, w io.Writer) []Fig6Series {
	p, err := dataset.ProfileByName("COMS")
	if err != nil {
		panic(err) // profile table is static
	}
	header(w, "Figure 6 — recall/QPS trade-off (COMS)",
		fmt.Sprintf("recall@10 vs QPS, eps in [%.2f, %.2f] by %.2f", c.EpsMin, c.EpsMax, c.EpsStep))

	d := genData(c, p)
	scaled := d.Profile
	bs := NewBSBF()
	bs.Build(d)
	sfm := NewSF(scaled, c.Seed)
	sfm.Build(d)
	mbi := NewMBI(scaled, c.Seed, c.Workers)
	mbi.Build(d)

	const k = 10
	fractions := []float64{0.1, 0.3, 0.8}
	var series []Fig6Series
	for _, frac := range fractions {
		qs, gt := queriesAndTruth(c, d, k, frac)
		fmt.Fprintf(w, "window %.0f%%:\n", frac*100)
		for _, m := range []Method{bs, sfm, mbi} {
			pts := pareto(c, m, qs, gt)
			series = append(series, Fig6Series{Method: m.Name(), Fraction: frac, Points: pts})
			fmt.Fprintf(w, "  %-4s:", m.Name())
			for _, pt := range pts {
				fmt.Fprintf(w, " (%.3f, %.0f)", pt.Recall, pt.QPS)
			}
			fmt.Fprintln(w)
		}
	}
	return series
}
