package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/nndescent"
	"repro/internal/nsw"
)

// AblationRow is one builder's measurements at one window fraction.
type AblationRow struct {
	Builder   string
	BuildTime time.Duration
	Fraction  float64
	Op        Operating
}

// AblationBuilder exercises §4.1's claim that MBI uses the per-block kNN
// index as a pluggable module: the same tree is built once with NNDescent
// and once with NSW, comparing build time and achievable QPS at the recall
// target on the COMS profile.
func AblationBuilder(c Config, w io.Writer) []AblationRow {
	p, err := dataset.ProfileByName("COMS")
	if err != nil {
		panic(err)
	}
	header(w, "Ablation — per-block graph builder (COMS)",
		"NNDescent (paper's choice) vs NSW behind the same MBI tree")
	d := genData(c, p)
	scaled := d.Profile
	const k = 10

	builders := []struct {
		name string
		mk   func() *MBIMethod
	}{
		{"nndescent", func() *MBIMethod {
			m := NewMBI(scaled, c.Seed, c.Workers)
			m.SetBuilder(nndescent.MustNew(nndescent.DefaultConfig(scaled.GraphK)))
			return m
		}},
		{"nsw", func() *MBIMethod {
			m := NewMBI(scaled, c.Seed, c.Workers)
			m.SetBuilder(nsw.MustNew(nsw.DefaultConfig(scaled.GraphK)))
			return m
		}},
	}

	var rows []AblationRow
	fmt.Fprintf(w, "%-10s %12s | %6s %12s %8s\n", "builder", "build", "window", "qps", "recall")
	for _, b := range builders {
		m := b.mk()
		buildTime := m.Build(d)
		for _, frac := range c.Fractions {
			qs, gt := queriesAndTruth(c, d, k, frac)
			op := qpsAtRecall(c, m, qs, gt)
			rows = append(rows, AblationRow{Builder: b.name, BuildTime: buildTime, Fraction: frac, Op: op})
			fmt.Fprintf(w, "%-10s %12s | %5.0f%% %12.0f %8.3f%s\n",
				b.name, buildTime.Round(time.Millisecond), frac*100, op.QPS, op.Recall, flag(op))
		}
	}
	return rows
}
