package bench

import (
	"fmt"
	"io"

	"repro/internal/dataset"
)

// DriftRow is one (drift rate, window fraction) measurement.
type DriftRow struct {
	Rate     float64
	Spread   float32
	Fraction float64
	BSBF     Operating
	SF       Operating
	MBI      Operating
}

// DriftExperiment probes a property the paper's stationary datasets
// cannot show: when data drifts over time, each MBI block's graph covers
// a temporally — hence spatially — coherent slice, while SF's single
// graph must span every era at once. The experiment sweeps the drift
// rate on the DEEP1B profile and measures QPS at the recall target for
// recent-history windows, where drift hurts a global graph the most.
func DriftExperiment(c Config, w io.Writer) []DriftRow {
	p, err := dataset.ProfileByName("DEEP1B")
	if err != nil {
		panic(err)
	}
	header(w, "Drift experiment — non-stationary data (DEEP1B profile)",
		"QPS at recall@10 >= target vs cluster drift rate; windows cover the most recent data")
	const k = 10
	rates := []float64{0, 5e-4, 2e-3}
	fractions := []float64{0.05, 0.3}

	var rows []DriftRow
	fmt.Fprintf(w, "%10s %8s | %6s | %12s %12s %12s\n", "rate", "spread", "window", "BSBF qps", "SF qps", "MBI qps")
	for _, rate := range rates {
		scaled := p.Scale(c.Scale)
		d := dataset.GenerateDrifting(scaled, dataset.DriftConfig{Rate: rate, Renormalize: true}, c.Seed)
		spread := dataset.CenterSpread(d)

		bs := NewBSBF()
		bs.Build(d)
		sfm := NewSF(scaled, c.Seed)
		sfm.Build(d)
		mbi := NewMBI(scaled, c.Seed, c.Workers)
		mbi.Build(d)

		n := d.Train.Len()
		for _, frac := range fractions {
			// Recent-history windows: the regime where drift separates a
			// per-era index from a global one.
			wlen := int(frac * float64(n))
			if wlen < 1 {
				wlen = 1
			}
			ts, te := d.Times[n-wlen], d.Times[n-1]+1
			qs := make([]dataset.Query, 0, c.QueriesPerPoint)
			for i := 0; i < len(d.Test) && len(qs) < c.QueriesPerPoint; i++ {
				qs = append(qs, dataset.Query{W: d.Test[i], K: k, Ts: ts, Te: te})
			}
			gt := dataset.GroundTruth(d.Train, d.Times, scaled.Metric, qs, c.Workers)

			row := DriftRow{Rate: rate, Spread: spread, Fraction: frac}
			row.BSBF = qpsAtRecall(c, bs, qs, gt)
			row.SF = qpsAtRecall(c, sfm, qs, gt)
			row.MBI = qpsAtRecall(c, mbi, qs, gt)
			rows = append(rows, row)
			fmt.Fprintf(w, "%10.0e %8.3f | %5.0f%% | %12.0f %12.0f%s %12.0f%s\n",
				rate, spread, frac*100, row.BSBF.QPS, row.SF.QPS, flag(row.SF), row.MBI.QPS, flag(row.MBI))
		}
	}
	fmt.Fprintln(w, "\nexpected shape: higher drift widens MBI's margin over SF on recent windows —")
	fmt.Fprintln(w, "SF's global graph mixes eras while each MBI block stays era-coherent")
	return rows
}
