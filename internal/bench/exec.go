package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/theap"
	"repro/internal/vec"
)

// ExecPoint is one measured operating point of the executor experiment: the
// same index, the same queries, the same block selection — executed once on
// the sequential executor and once on the parallel one.
type ExecPoint struct {
	// Blocks is the number of blocks top-down selection chose for the
	// window (the experiment's independent variable).
	Blocks int `json:"blocks"`
	// WindowStart, WindowEnd is the query time window that produced the
	// selection.
	WindowStart int64 `json:"window_start"`
	WindowEnd   int64 `json:"window_end"`
	// InWindow is how many indexed vectors the window covers.
	InWindow int `json:"in_window"`
	// SeqSeconds and ParSeconds are mean per-query latencies on the
	// 1-worker and parallel executors (best of several passes).
	SeqSeconds float64 `json:"seq_seconds"`
	ParSeconds float64 `json:"par_seconds"`
	// Speedup is SeqSeconds / ParSeconds as measured on this host.
	Speedup float64 `json:"speedup"`
	// CriticalSeconds is the mean per-query critical path: the largest
	// single block subtask duration, i.e. the wall-clock floor a parallel
	// executor converges to given enough cores.
	CriticalSeconds float64 `json:"critical_seconds"`
	// IdealSpeedup is the mean of (sum of block durations) / (max block
	// duration) — the hardware-independent parallelizability of the plan.
	IdealSpeedup float64 `json:"ideal_speedup"`
	// Equivalent reports that both executors returned identical results
	// (same IDs, same distances, same order) for every query.
	Equivalent bool `json:"equivalent"`
}

// ExecReport is the full experiment output, serialized to BENCH_exec.json
// as the first point of the executor perf trajectory.
type ExecReport struct {
	Dim        int         `json:"dim"`
	TrainN     int         `json:"train_n"`
	LeafSize   int         `json:"leaf_size"`
	Leaves     int         `json:"leaves"`
	K          int         `json:"k"`
	Queries    int         `json:"queries"`
	ParWorkers int         `json:"par_workers"`
	NumCPU     int         `json:"num_cpu"`
	Tau        float64     `json:"tau"`
	Points     []ExecPoint `json:"points"`
}

// execTau is the block-selection threshold the experiment queries with. It
// must exceed the largest partial overlap a leaf-aligned window can have
// with any block — (2^h - 1)/2^h ≤ 511/512 for the 512-leaf tree — so that
// selection descends through partially covered ancestors instead of
// absorbing them, letting the window scan reach high block counts.
const execTau = 0.999

// execK is the result count; recall is not at stake here, so one paper
// value suffices.
const execK = 10

// ExecExperiment measures the plan/execute split: sequential versus
// parallel intra-query execution on windows whose top-down selection yields
// 1, 4, and 16 blocks (aligned-subtree windows collapse into one ancestor,
// so the window for each target count is found by scanning leaf-aligned
// candidates against SelectedBlockCount). Both executors must return
// identical results — entry points are drawn at plan time from the
// query-hash entropy source, so the answer is worker-count independent and
// the experiment asserts it.
//
// Measured speedup is hardware-bound (a single-core host cannot run two
// subtasks at once, and the report says so via NumCPU); IdealSpeedup — the
// sum/max ratio of the per-block durations the executor records — is the
// machine-independent parallelizability of the same plans.
func ExecExperiment(c Config, w io.Writer, jsonPath string) (ExecReport, error) {
	leaves := 512
	if c.Scale < 0.5 {
		leaves = 128 // smoke scale: depth 7 still yields multi-block windows
	}
	sl := int(64*c.Scale + 0.5)
	if sl < 24 {
		sl = 24
	}

	p := dataset.Profile{
		Name: "exec-synth", Dim: 32, Metric: vec.Euclidean,
		TrainN: leaves * sl, TestN: c.QueriesPerPoint,
		Clusters: 16, ClusterStd: 0.9, Background: 0.1,
		LeafSize: sl, Tau: execTau, GraphK: 8, MC: 24,
	}
	d := dataset.Generate(p, c.Seed)

	ix, err := core.New(core.Options{
		Dim: p.Dim, Metric: p.Metric, LeafSize: sl, Tau: execTau,
		Builder: nndescent.MustNew(nndescent.DefaultConfig(p.GraphK)),
		Search:  graph.SearchParams{MC: effMC(p.MC, execK), Eps: 1.1},
		Workers: c.Workers, Seed: c.Seed,
	})
	if err != nil {
		return ExecReport{}, fmt.Errorf("exec experiment: %w", err)
	}
	for i := 0; i < d.Train.Len(); i++ {
		if err := ix.Append(d.Train.At(i), d.Times[i]); err != nil {
			return ExecReport{}, fmt.Errorf("exec experiment: append: %w", err)
		}
	}

	parWorkers := c.Workers
	if parWorkers <= 1 {
		// A 1-worker "parallel" executor is the sequential one; keep the
		// comparison meaningful even when -workers defaults to a small
		// NumCPU by always running the parallel side with real fan-out.
		parWorkers = 4
	}

	report := ExecReport{
		Dim: p.Dim, TrainN: p.TrainN, LeafSize: sl, Leaves: leaves,
		K: execK, Queries: len(d.Test), ParWorkers: parWorkers,
		NumCPU: runtime.NumCPU(), Tau: execTau,
	}

	header(w, "Exec experiment (plan/execute split)",
		fmt.Sprintf("MBI, n=%d, S_L=%d (%d leaves), dim=%d, k=%d, tau=%.3f, %d queries/point, parallel workers=%d, host CPUs=%d",
			p.TrainN, sl, leaves, p.Dim, execK, execTau, len(d.Test), parWorkers, report.NumCPU))
	fmt.Fprintf(w, "%-7s %-18s %10s %10s %9s %11s %7s  %s\n",
		"blocks", "window", "seq/query", "par/query", "speedup", "crit.path", "ideal", "equivalent")

	sp := graph.SearchParams{MC: effMC(p.MC, execK), Eps: 1.1}
	for _, target := range []int{1, 4, 16} {
		ts, te, ok := findExecWindow(ix, leaves, sl, target)
		if !ok {
			fmt.Fprintf(w, "%-7d no window with this selection count at %d leaves; skipped\n", target, leaves)
			continue
		}
		pt := measureExecPoint(ix, d.Test, ts, te, sp, parWorkers)
		report.Points = append(report.Points, pt)
		fmt.Fprintf(w, "%-7d [%7d,%7d) %10s %10s %8.2fx %11s %6.2fx  %v\n",
			pt.Blocks, pt.WindowStart, pt.WindowEnd,
			fmtSeconds(pt.SeqSeconds), fmtSeconds(pt.ParSeconds), pt.Speedup,
			fmtSeconds(pt.CriticalSeconds), pt.IdealSpeedup, pt.Equivalent)
	}
	if report.NumCPU == 1 {
		fmt.Fprintf(w, "\nnote: single-CPU host — measured speedup cannot exceed 1; the ideal column\nis the plan's parallelizability from the executor's per-block timings.\n")
	}

	if jsonPath != "" {
		if err := writeExecJSON(jsonPath, report); err != nil {
			return report, err
		}
		fmt.Fprintf(w, "\nwrote %s\n", jsonPath)
	}
	return report, nil
}

// findExecWindow scans leaf-aligned windows, widest first, for one whose
// top-down selection yields exactly target blocks. Widest-first maximizes
// per-block work, which is what the executor comparison wants to time.
func findExecWindow(ix *core.Index, leaves, sl, target int) (ts, te int64, ok bool) {
	for wlen := leaves; wlen >= 1; wlen-- {
		for start := 0; start+wlen <= leaves; start++ {
			ts = int64(start * sl)
			te = int64((start + wlen) * sl)
			if ix.SelectedBlockCount(ts, te, execTau) == target {
				return ts, te, true
			}
		}
	}
	return 0, 0, false
}

// measureExecPoint times one window on both executors and checks result
// equivalence. Timing passes repeat and keep the fastest total, the usual
// guard against scheduler noise.
func measureExecPoint(ix *core.Index, queries [][]float32, ts, te int64, sp graph.SearchParams, parWorkers int) ExecPoint {
	const repeats = 3
	run := func(workers int) ([][]theap.Neighbor, float64) {
		ix.SetQueryWorkers(workers)
		res := make([][]theap.Neighbor, len(queries))
		for i, q := range queries { // warmup, also the equivalence answer set
			res[i], _ = ix.SearchTauContext(context.Background(), q, execK, ts, te, execTau, sp, nil)
		}
		best := time.Duration(1<<63 - 1)
		for r := 0; r < repeats; r++ {
			start := time.Now()
			for _, q := range queries {
				_, _ = ix.SearchTauContext(context.Background(), q, execK, ts, te, execTau, sp, nil)
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return res, best.Seconds() / float64(len(queries))
	}

	seqRes, seqSec := run(1)
	parRes, parSec := run(parWorkers)

	equivalent := true
	for i := range seqRes {
		if !sameNeighbors(seqRes[i], parRes[i]) {
			equivalent = false
			break
		}
	}

	// Per-block durations from the executed plan, on the sequential
	// executor so subtasks don't time-slice each other: sum is the serial
	// cost, max the critical path.
	ix.SetQueryWorkers(1)
	var critSum, idealSum float64
	var plan core.Plan
	for _, q := range queries {
		_, plan = ix.SearchExplainContext(context.Background(), q, execK, ts, te, execTau, sp, nil)
		var sum, max time.Duration
		for _, b := range plan.Blocks {
			sum += b.Duration
			if b.Duration > max {
				max = b.Duration
			}
		}
		if max > 0 {
			critSum += max.Seconds()
			idealSum += sum.Seconds() / max.Seconds()
		}
	}

	return ExecPoint{
		Blocks:      len(plan.Blocks),
		WindowStart: ts, WindowEnd: te,
		InWindow:        plan.TotalInWindow,
		SeqSeconds:      seqSec,
		ParSeconds:      parSec,
		Speedup:         seqSec / parSec,
		CriticalSeconds: critSum / float64(len(queries)),
		IdealSpeedup:    idealSum / float64(len(queries)),
		Equivalent:      equivalent,
	}
}

func sameNeighbors(a, b []theap.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func writeExecJSON(path string, report ExecReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("exec experiment: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		_ = f.Close()
		return fmt.Errorf("exec experiment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("exec experiment: %w", err)
	}
	return nil
}
