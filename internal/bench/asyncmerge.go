package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nndescent"
)

// AsyncRow summarizes one insertion run.
type AsyncRow struct {
	Mode       string // "sync" or "async"
	Total      time.Duration
	P50, P99   time.Duration
	Max        time.Duration
	MaxBacklog int // peak sealed-but-unbuilt vectors (async only)
}

// AsyncMergeExperiment quantifies the AsyncMerge extension: per-insert
// latency with Algorithm 3's synchronous merging (an Append occasionally
// stalls for a full merge cascade) versus the background builder (Appends
// stay O(1); the builder works off a backlog that queries cover by brute
// force). Run on the COMS profile.
func AsyncMergeExperiment(c Config, w io.Writer) []AsyncRow {
	p, err := dataset.ProfileByName("COMS")
	if err != nil {
		panic(err)
	}
	header(w, "AsyncMerge experiment — insert latency (COMS)",
		"synchronous Algorithm 3 merging vs the background merge worker")
	d := genData(c, p)
	scaled := d.Profile

	run := func(async bool) AsyncRow {
		ix, err := core.New(core.Options{
			Dim:        scaled.Dim,
			Metric:     scaled.Metric,
			LeafSize:   scaled.LeafSize,
			Tau:        scaled.Tau,
			Builder:    nndescent.MustNew(nndescent.DefaultConfig(scaled.GraphK)),
			Search:     graph.SearchParams{MC: scaled.MC, Eps: 1.1},
			Workers:    c.Workers,
			AsyncMerge: async,
			Seed:       c.Seed,
		})
		if err != nil {
			panic(err)
		}
		mode := "sync"
		if async {
			mode = "async"
		}
		lats := make([]time.Duration, d.Train.Len())
		maxBacklog := 0
		startAll := time.Now()
		for i := 0; i < d.Train.Len(); i++ {
			t0 := time.Now()
			if err := ix.Append(d.Train.At(i), d.Times[i]); err != nil {
				panic(err)
			}
			lats[i] = time.Since(t0)
			if async && i%256 == 0 {
				if b := ix.PendingBuilds(); b > maxBacklog {
					maxBacklog = b
				}
			}
		}
		ix.Flush()
		total := time.Since(startAll)
		if err := ix.Close(); err != nil {
			panic(err)
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		at := func(q float64) time.Duration { return lats[int(q*float64(len(lats)-1))] }
		return AsyncRow{
			Mode: mode, Total: total,
			P50: at(0.50), P99: at(0.99), Max: lats[len(lats)-1],
			MaxBacklog: maxBacklog,
		}
	}

	rows := []AsyncRow{run(false), run(true)}
	fmt.Fprintf(w, "%-6s | %12s | %10s %10s %12s | %s\n", "mode", "total", "p50", "p99", "max insert", "peak backlog")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s | %12s | %10s %10s %12s | %d vectors\n",
			r.Mode, r.Total.Round(time.Millisecond),
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.Max.Round(time.Millisecond), r.MaxBacklog)
	}
	fmt.Fprintln(w, "\nexpected shape: same total work; async keeps the insert path free of merge")
	fmt.Fprintln(w, "stalls up to the job-queue backpressure bound — on a single core the builder")
	fmt.Fprintln(w, "cannot outrun the appender, so the worst insert shrinks but stays visible;")
	fmt.Fprintln(w, "with spare cores it disappears entirely")
	return rows
}
