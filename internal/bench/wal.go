package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/persist"
	"repro/internal/wal"
)

// WALRow summarizes one ingestion run of the durability experiment.
type WALRow struct {
	Mode       string // "off", "interval", "always"
	Total      time.Duration
	VecsPerSec float64
	Fsyncs     uint64
	WALBytes   int64
}

// coreTarget adapts internal/core to wal.Target the same way cmd/tknnd's
// *tknn.MBI does at the public layer.
type coreTarget struct{ ix *core.Index }

func (t coreTarget) Add(v []float32, ts int64) error { return t.ix.Append(v, ts) }
func (t coreTarget) Save(w io.Writer) error          { return persist.SaveMBI(w, t.ix) }
func (t coreTarget) Len() int                        { return t.ix.Len() }

// WALExperiment measures what durable ingestion costs: vectors per second
// appending the COMS workload in batches of 64 with no WAL at all, with
// the WAL under the default interval fsync policy, and with an fsync
// before every acknowledgement. Run on the COMS profile.
func WALExperiment(c Config, w io.Writer) []WALRow {
	p, err := dataset.ProfileByName("COMS")
	if err != nil {
		panic(err)
	}
	header(w, "WAL experiment — ingestion throughput (COMS)",
		"no WAL vs fsync=interval vs fsync=always, batches of 64")
	d := genData(c, p)
	scaled := d.Profile
	const batch = 64

	newIndex := func() *core.Index {
		ix, err := core.New(core.Options{
			Dim:      scaled.Dim,
			Metric:   scaled.Metric,
			LeafSize: scaled.LeafSize,
			Tau:      scaled.Tau,
			Builder:  nndescent.MustNew(nndescent.DefaultConfig(scaled.GraphK)),
			Search:   graph.SearchParams{MC: scaled.MC, Eps: 1.1},
			Workers:  c.Workers,
			Seed:     c.Seed,
		})
		if err != nil {
			panic(err)
		}
		return ix
	}

	runOff := func() WALRow {
		ix := newIndex()
		start := time.Now()
		for i := 0; i < d.Train.Len(); i++ {
			if err := ix.Append(d.Train.At(i), d.Times[i]); err != nil {
				panic(err)
			}
		}
		total := time.Since(start)
		if err := ix.Close(); err != nil {
			panic(err)
		}
		return WALRow{Mode: "off", Total: total, VecsPerSec: float64(d.Train.Len()) / total.Seconds()}
	}

	runWAL := func(mode string, policy wal.SyncPolicy) WALRow {
		dir, err := os.MkdirTemp("", "tknn-walbench-")
		if err != nil {
			panic(err)
		}
		defer func() {
			// Scratch data; the benchmark result is what matters.
			_ = os.RemoveAll(dir)
		}()
		m, err := wal.Open(wal.Config{Dir: dir, Sync: policy}, func(snapshot io.Reader) (wal.Target, error) {
			if snapshot != nil {
				return nil, fmt.Errorf("bench: fresh dir cannot have a snapshot")
			}
			return coreTarget{newIndex()}, nil
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		vs := make([][]float32, 0, batch)
		ts := make([]int64, 0, batch)
		for lo := 0; lo < d.Train.Len(); lo += batch {
			hi := lo + batch
			if hi > d.Train.Len() {
				hi = d.Train.Len()
			}
			vs, ts = vs[:0], ts[:0]
			for i := lo; i < hi; i++ {
				vs = append(vs, d.Train.At(i))
				ts = append(ts, d.Times[i])
			}
			if err := m.AppendBatch(vs, ts); err != nil {
				panic(err)
			}
		}
		total := time.Since(start)
		st := m.Stats()
		if err := m.Index().(coreTarget).ix.Close(); err != nil {
			panic(err)
		}
		if err := m.Close(); err != nil {
			panic(err)
		}
		return WALRow{
			Mode: mode, Total: total,
			VecsPerSec: float64(d.Train.Len()) / total.Seconds(),
			Fsyncs:     st.Fsyncs, WALBytes: st.WALBytes,
		}
	}

	rows := []WALRow{
		runOff(),
		runWAL("interval", wal.SyncInterval),
		runWAL("always", wal.SyncAlways),
	}
	fmt.Fprintf(w, "%-9s | %12s | %12s | %8s | %s\n", "fsync", "total", "vectors/s", "fsyncs", "wal bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s | %12s | %12.0f | %8d | %d\n",
			r.Mode, r.Total.Round(time.Millisecond), r.VecsPerSec, r.Fsyncs, r.WALBytes)
	}
	fmt.Fprintln(w, "\nexpected shape: interval syncing costs a few percent over no WAL (one")
	fmt.Fprintln(w, "sequential write per append); fsync=always pays a disk flush per batch and")
	fmt.Fprintln(w, "is bounded by the device's sync latency, not by the index")
	return rows
}
