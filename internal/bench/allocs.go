package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bsbf"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/theap"
	"repro/internal/vec"
)

// AllocsPoint is one measured (index, entry point) pair of the allocation
// experiment: the same index and queries driven through the pooled
// convenience path and through the caller-owned-scratch path that the
// allocation gate pins at zero.
type AllocsPoint struct {
	// Index is the planner under measurement: "mbi" or "bsbf".
	Index string `json:"index"`
	// Variant is the entry point: "pooled" (SearchContext — borrows a
	// scratch, copies results out) or "buf" (SearchBuf/SearchTauBuf —
	// caller-owned scratch and destination, zero steady-state allocations).
	Variant string `json:"variant"`
	// AllocsPerQuery and BytesPerQuery are heap-allocation counts and
	// bytes per query, measured over the full query set after warmup.
	AllocsPerQuery float64 `json:"allocs_per_query"`
	BytesPerQuery  float64 `json:"bytes_per_query"`
	// NsPerQuery is mean per-query latency in nanoseconds over the same
	// measured pass.
	NsPerQuery float64 `json:"ns_per_query"`
}

// AllocsReport is the experiment output, serialized to BENCH_allocs.json:
// the allocation profile of the query hot path, before (pooled) versus
// after (caller-owned buffers), on both the MBI and BSBF planners.
type AllocsReport struct {
	Dim      int           `json:"dim"`
	TrainN   int           `json:"train_n"`
	LeafSize int           `json:"leaf_size"`
	K        int           `json:"k"`
	Queries  int           `json:"queries"`
	Rounds   int           `json:"rounds"`
	NumCPU   int           `json:"num_cpu"`
	Tau      float64       `json:"tau"`
	Points   []AllocsPoint `json:"points"`
}

// allocsK is the result count; the allocation profile is insensitive to k
// once buffers are warm, so one paper value suffices.
const allocsK = 10

// AllocsExperiment measures heap allocations per query on the MBI and
// BSBF query paths, comparing the pooled convenience entry points against
// the caller-owned-scratch Buf entry points the allocation gate
// (TestSearchTauBufZeroAllocs, TestSearchBufZeroAllocs) pins at zero.
// Queries run sequentially (Workers=1 executors) on a single OS thread:
// parallel fan-out allocates goroutine bookkeeping by design, and the gate
// scope is the per-query planner/executor/merge path, not the fan-out.
func AllocsExperiment(c Config, w io.Writer, jsonPath string) (AllocsReport, error) {
	leaves := 64
	sl := int(64*c.Scale + 0.5)
	if sl < 24 {
		sl = 24
	}
	p := dataset.Profile{
		Name: "allocs-synth", Dim: 32, Metric: vec.Euclidean,
		TrainN: leaves * sl, TestN: c.QueriesPerPoint,
		Clusters: 16, ClusterStd: 0.9, Background: 0.1,
		LeafSize: sl, Tau: 0.5, GraphK: 8, MC: 24,
	}
	d := dataset.Generate(p, c.Seed)

	sp := graph.SearchParams{MC: effMC(p.MC, allocsK), Eps: 1.1}
	mbi, err := core.New(core.Options{
		Dim: p.Dim, Metric: p.Metric, LeafSize: sl, Tau: p.Tau,
		Builder: nndescent.MustNew(nndescent.DefaultConfig(p.GraphK)),
		Search:  sp, Workers: c.Workers, QueryWorkers: 1, Seed: c.Seed,
	})
	if err != nil {
		return AllocsReport{}, fmt.Errorf("allocs experiment: %w", err)
	}
	flat := bsbf.New(p.Dim, p.Metric)
	for i := 0; i < d.Train.Len(); i++ {
		if err := mbi.Append(d.Train.At(i), d.Times[i]); err != nil {
			return AllocsReport{}, fmt.Errorf("allocs experiment: append: %w", err)
		}
		if err := flat.Append(d.Train.At(i), d.Times[i]); err != nil {
			return AllocsReport{}, fmt.Errorf("allocs experiment: append: %w", err)
		}
	}

	// A multi-block window (half the data, leaf-misaligned) so MBI plans
	// graph subtasks plus an open-leaf scan, and BSBF scans several chunks.
	n := int64(d.Train.Len())
	ts, te := n/4+3, n/4+3+n/2

	rounds := 3
	report := AllocsReport{
		Dim: p.Dim, TrainN: p.TrainN, LeafSize: sl, K: allocsK,
		Queries: len(d.Test), Rounds: rounds, NumCPU: runtime.NumCPU(),
		Tau: p.Tau,
	}

	ctx := context.Background()
	seq := exec.Executor{Workers: 1}
	scr := core.NewScratch()
	xscr := exec.NewScratch()
	var dst []theap.Neighbor

	measurements := []struct {
		index, variant string
		query          func(q []float32)
	}{
		{"mbi", "pooled", func(q []float32) {
			_, _ = mbi.SearchTauContext(ctx, q, allocsK, ts, te, p.Tau, sp, nil)
		}},
		{"mbi", "buf", func(q []float32) {
			dst, _ = mbi.SearchTauBuf(ctx, scr, dst, q, allocsK, ts, te, p.Tau, sp, nil)
		}},
		{"bsbf", "pooled", func(q []float32) {
			_, _ = flat.SearchContext(ctx, q, allocsK, ts, te, seq)
		}},
		{"bsbf", "buf", func(q []float32) {
			dst, _ = flat.SearchBuf(ctx, xscr, dst, q, allocsK, ts, te, seq)
		}},
	}

	header(w, "Allocation experiment (query-path heap traffic)",
		fmt.Sprintf("n=%d, S_L=%d (%d leaves), dim=%d, k=%d, window=[%d,%d), %d queries x %d rounds, sequential",
			p.TrainN, sl, leaves, p.Dim, allocsK, ts, te, len(d.Test), rounds))
	fmt.Fprintf(w, "%-6s %-8s %14s %13s %12s\n",
		"index", "variant", "allocs/query", "bytes/query", "ns/query")

	for _, m := range measurements {
		pt := measureAllocs(m.index, m.variant, rounds, d.Test, m.query)
		report.Points = append(report.Points, pt)
		fmt.Fprintf(w, "%-6s %-8s %14.2f %13.1f %12.0f\n",
			pt.Index, pt.Variant, pt.AllocsPerQuery, pt.BytesPerQuery, pt.NsPerQuery)
	}

	if jsonPath != "" {
		if err := writeAllocsJSON(jsonPath, report); err != nil {
			return report, err
		}
		fmt.Fprintf(w, "\nwrote %s\n", jsonPath)
	}
	return report, nil
}

// measureAllocs drives every query through fn for rounds passes and reads
// the heap counters around the measured passes, testing.AllocsPerRun
// style: one warmup pass grows the reusable buffers to their steady state,
// and GOMAXPROCS is pinned to 1 so no other goroutine's allocations land
// in the window.
func measureAllocs(index, variant string, rounds int, queries [][]float32, fn func(q []float32)) AllocsPoint {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	for _, q := range queries {
		fn(q)
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			fn(q)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	total := float64(rounds * len(queries))
	return AllocsPoint{
		Index:          index,
		Variant:        variant,
		AllocsPerQuery: float64(after.Mallocs-before.Mallocs) / total,
		BytesPerQuery:  float64(after.TotalAlloc-before.TotalAlloc) / total,
		NsPerQuery:     float64(elapsed.Nanoseconds()) / total,
	}
}

func writeAllocsJSON(path string, report AllocsReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("allocs experiment: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		_ = f.Close()
		return fmt.Errorf("allocs experiment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("allocs experiment: %w", err)
	}
	return nil
}
