package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/persist"
	"repro/internal/vec"
)

// Fig7Row is one data size's measurements.
type Fig7Row struct {
	N            int
	MBIBuild     time.Duration
	MBIBuildPar  time.Duration
	SFBuild      time.Duration
	MBIIndexSize int64
	SFIndexSize  int64
	InputSize    int64
}

// Fig7Result carries the rows plus the fitted log-log slopes the paper
// reports (MBI indexing-time slope 1.29 on SIFT1M; index size likewise).
type Fig7Result struct {
	Rows                      []Fig7Row
	MBITimeSlope, SFTimeSlope float64
	MBISizeSlope, SFSizeSlope float64
}

// Fig7 reproduces Figure 7: indexing time (a) and index size (b) versus
// data size on the SIFT profile, for MBI (sequential and parallel builds)
// and SF. Sizes double from n/8 up to n.
func Fig7(c Config, w io.Writer) Fig7Result {
	p, err := dataset.ProfileByName("SIFT1M")
	if err != nil {
		panic(err)
	}
	header(w, "Figure 7 — scalability (SIFT profile)",
		"indexing time and index size vs data size; slopes are log2-log2 fits")

	full := genData(c, p)
	scaled := full.Profile
	var res Fig7Result
	fmt.Fprintf(w, "%10s | %12s %12s %12s | %12s %12s %12s\n",
		"n", "MBI build", "MBI par", "SF build", "input B", "MBI idx B", "SF idx B")
	for div := 8; div >= 1; div /= 2 {
		n := full.Train.Len() / div
		sub := subset(full, n)

		mbiSeq := NewMBI(scaled, c.Seed, 1)
		tSeq := mbiSeq.Build(sub)

		workers := c.Workers
		if workers < 2 {
			workers = 2 // exercise the parallel path even on small hosts
		}
		mbiPar := NewMBI(scaled, c.Seed, workers)
		tPar := mbiPar.Build(sub)

		sfm := NewSF(scaled, c.Seed)
		tSF := sfm.Build(sub)

		mbiSize, err := persist.SizeMBI(mbiSeq.Index())
		if err != nil {
			panic(err)
		}
		sfSize, err := persist.SizeSF(sfm.Index())
		if err != nil {
			panic(err)
		}
		row := Fig7Row{
			N: n, MBIBuild: tSeq, MBIBuildPar: tPar, SFBuild: tSF,
			MBIIndexSize: mbiSize, SFIndexSize: sfSize, InputSize: sub.InputBytes(),
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(w, "%10d | %12s %12s %12s | %12d %12d %12d\n",
			n, tSeq.Round(time.Millisecond), tPar.Round(time.Millisecond), tSF.Round(time.Millisecond),
			row.InputSize, mbiSize, sfSize)
	}
	res.MBITimeSlope = slope(res.Rows, func(r Fig7Row) float64 { return r.MBIBuild.Seconds() })
	res.SFTimeSlope = slope(res.Rows, func(r Fig7Row) float64 { return r.SFBuild.Seconds() })
	res.MBISizeSlope = slope(res.Rows, func(r Fig7Row) float64 { return float64(r.MBIIndexSize) })
	res.SFSizeSlope = slope(res.Rows, func(r Fig7Row) float64 { return float64(r.SFIndexSize) })
	fmt.Fprintf(w, "\nlog-log slopes: MBI time %.2f (paper ~1.29), SF time %.2f (~1.14);"+
		" MBI size %.2f (paper ~1.29 incl. log factor), SF size %.2f (~1.0)\n",
		res.MBITimeSlope, res.SFTimeSlope, res.MBISizeSlope, res.SFSizeSlope)
	return res
}

// subset returns a prefix view of a workload (the first n vectors in
// timestamp order — exactly how time-accumulating data grows).
func subset(d *dataset.Data, n int) *dataset.Data {
	if n >= d.Train.Len() {
		return d
	}
	dim := d.Train.Dim()
	store, err := vec.FromRaw(dim, d.Train.Raw()[:n*dim])
	if err != nil {
		panic(err)
	}
	return &dataset.Data{
		Profile: d.Profile,
		Train:   store,
		Times:   d.Times[:n],
		Test:    d.Test,
	}
}

// slope fits least-squares log2(metric) against log2(n).
func slope(rows []Fig7Row, metric func(Fig7Row) float64) float64 {
	var xs, ys []float64
	for _, r := range rows {
		v := metric(r)
		if v <= 0 {
			continue
		}
		xs = append(xs, math.Log2(float64(r.N)))
		ys = append(ys, math.Log2(v))
	}
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
