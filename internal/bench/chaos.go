package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	tknn "repro"
	"repro/internal/fault"
	"repro/internal/server"
)

// Chaos experiment: overload-resilience of the serving stack. An
// in-process tknnd handler (admission control + degraded mode + fault
// injection) is driven with open-loop mixed insert+search traffic in
// three phases — baseline at half the measured capacity, a burst at
// several multiples of it, and a post-burst recovery — while a
// deterministic fault schedule (build tag tknn_fault; `make bench-chaos`)
// slows subtasks and injects tagged 500s. The report records goodput,
// shed rate, and admitted-latency percentiles per phase, and the run
// fails hard when the resilience gates are violated: an overloaded
// server must shed with 429s rather than emit non-injected 5xx or let
// admitted latency run away, and goodput must come back after the burst.

// ChaosPhase is one measured traffic phase.
type ChaosPhase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// OfferedQPS is the open-loop arrival rate the phase dispatched.
	OfferedQPS float64 `json:"offered_qps"`
	Offered    int64   `json:"offered"`
	// Admitted counts 200s — searches (partial included) and inserts.
	Admitted int64 `json:"admitted"`
	// Shed counts 429s from admission control.
	Shed int64 `json:"shed"`
	// Injected5xx are deliberate failures (X-Tknn-Injected); Other5xx are
	// genuine server errors and must stay zero.
	Injected5xx int64 `json:"injected_5xx"`
	Other5xx    int64 `json:"other_5xx"`
	ClientErrs  int64 `json:"client_errors"`
	// TransportErrs are connection-level failures (should stay zero in
	// this in-process harness; not gated).
	TransportErrs int64 `json:"transport_errors"`
	// Degraded counts searches that ran under the shrunken deadline;
	// Partial counts 200s whose results were cut short.
	Degraded int64 `json:"degraded"`
	Partial  int64 `json:"partial"`
	// GoodputQPS is admitted responses per second; GoodputRatio divides
	// by offered.
	GoodputQPS   float64 `json:"goodput_qps"`
	GoodputRatio float64 `json:"goodput_ratio"`
	// P50Ms and P99Ms are admitted-request latency percentiles.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// ChaosReport is the full experiment output, serialized to
// BENCH_chaos.json.
type ChaosReport struct {
	Dim         int  `json:"dim"`
	TrainN      int  `json:"train_n"`
	K           int  `json:"k"`
	MaxInflight int  `json:"max_inflight"`
	Injection   bool `json:"injection_enabled"`
	// FaultSpec is the schedule driven through internal/fault (a no-op
	// without the tknn_fault build tag).
	FaultSpec string `json:"fault_spec"`
	// CapacityQPS is the closed-loop service rate measured at MaxInflight
	// concurrency before the phases run; offered rates are multiples.
	CapacityQPS   float64      `json:"capacity_qps"`
	BurstMultiple float64      `json:"burst_multiple"`
	Phases        []ChaosPhase `json:"phases"`
	// RecoverySeconds is the time from the start of the recovery phase to
	// its first admitted response — how quickly service resumes once the
	// burst stops.
	RecoverySeconds float64 `json:"recovery_seconds"`
	// Gates lists every violated resilience gate; empty means pass.
	Gates []string `json:"gates_violated"`
}

const (
	chaosK             = 10
	chaosMaxInflight   = 2
	chaosBurstMultiple = 4.0
	chaosInsertEvery   = 10 // 1 insert per 10 operations
	// chaosFaultSpec slows every search subtask by 2ms (which also makes
	// the measured capacity honest about it) and injects a tagged 500 on
	// roughly 1% of admitted searches.
	chaosFaultSpec = "exec.subtask:latency=2ms;server.search:error:every=97"
	// chaosOfferedCap bounds the dispatch rate so a fast host without
	// injected latency cannot turn the burst into a fork bomb.
	chaosOfferedCap = 3000.0
)

// ChaosExperiment runs the overload harness and enforces its gates: a
// non-empty Gates list is returned as an error.
func ChaosExperiment(c Config, w io.Writer, jsonPath string) (ChaosReport, error) {
	dim := 32
	trainN := int(20000 * c.Scale)
	if trainN < 2000 {
		trainN = 2000
	}
	baseDur, burstDur, recoverDur := 2*time.Second, 3*time.Second, 2*time.Second
	if c.Scale < 0.5 {
		baseDur, burstDur, recoverDur = 500*time.Millisecond, 900*time.Millisecond, 700*time.Millisecond
	}

	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: dim, LeafSize: 256, GraphDegree: 12})
	if err != nil {
		return ChaosReport{}, fmt.Errorf("chaos experiment: %w", err)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	vec := func() []float32 {
		v := make([]float32, dim)
		for i := range v {
			v[i] = rng.Float32()
		}
		return v
	}
	for i := 0; i < trainN; i++ {
		if err := ix.Add(vec(), int64(i)); err != nil {
			return ChaosReport{}, fmt.Errorf("chaos experiment: prefill: %w", err)
		}
	}

	srv := server.New(ix)
	srv.SetSearchTimeout(150 * time.Millisecond)
	srv.SetLimits(server.Limits{MaxInflight: chaosMaxInflight, MaxQueue: chaosMaxInflight, MaxWait: 25 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The fault schedule is installed before capacity is measured so the
	// baseline includes the injected subtask latency. Without the
	// tknn_fault tag the hooks are compiled out and installing a schedule
	// would be pointless, so the whole control plane sits under the guard.
	if fault.Enabled {
		if err := fault.Configure(chaosFaultSpec, c.Seed); err != nil {
			return ChaosReport{}, fmt.Errorf("chaos experiment: %w", err)
		}
		// A deferred Reset is function-scoped even from inside the guard:
		// the schedule is cleared however the experiment exits.
		defer fault.Reset()
	}

	h := &chaosHarness{
		url: ts.URL,
		http: &http.Client{
			Timeout:   5 * time.Second,
			Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256},
		},
		dim: dim,
	}
	h.end.Store(int64(trainN))
	h.queries = make([][]byte, 64)
	for i := range h.queries {
		body, merr := json.Marshal(server.SearchRequest{Vector: vec(), K: chaosK, Start: 0, End: int64(trainN + 1<<20)})
		if merr != nil {
			return ChaosReport{}, fmt.Errorf("chaos experiment: %w", merr)
		}
		h.queries[i] = body
	}

	capacity := h.measureCapacity(chaosMaxInflight, 400*time.Millisecond)
	report := ChaosReport{
		Dim: dim, TrainN: trainN, K: chaosK,
		MaxInflight: chaosMaxInflight, Injection: fault.Enabled,
		FaultSpec: chaosFaultSpec, CapacityQPS: capacity,
		BurstMultiple: chaosBurstMultiple,
	}

	header(w, "Chaos experiment (overload resilience)",
		fmt.Sprintf("n=%d, dim=%d, k=%d, max-inflight=%d, capacity≈%.0f qps, injection=%v",
			trainN, dim, chaosK, chaosMaxInflight, capacity, fault.Enabled))
	fmt.Fprintf(w, "%-9s %9s %8s %9s %6s %9s %9s %8s %9s %9s\n",
		"phase", "offered", "admit", "shed", "inj", "other5xx", "degraded", "goodput", "p50", "p99")

	rate := func(mult float64) float64 {
		r := capacity * mult
		if r > chaosOfferedCap {
			r = chaosOfferedCap
		}
		if r < 10 {
			r = 10
		}
		return r
	}
	phases := []struct {
		name string
		qps  float64
		dur  time.Duration
	}{
		{"baseline", rate(0.5), baseDur},
		{"burst", rate(chaosBurstMultiple), burstDur},
		{"recovery", rate(0.5), recoverDur},
	}
	for _, p := range phases {
		ph := h.runPhase(p.name, p.qps, p.dur)
		report.Phases = append(report.Phases, ph)
		if p.name == "recovery" {
			report.RecoverySeconds = h.lastFirstSuccess
		}
		fmt.Fprintf(w, "%-9s %9d %8d %9d %6d %9d %9d %7.0f/s %8.1fms %8.1fms\n",
			ph.Name, ph.Offered, ph.Admitted, ph.Shed, ph.Injected5xx, ph.Other5xx,
			ph.Degraded, ph.GoodputQPS, ph.P50Ms, ph.P99Ms)
	}

	report.Gates = chaosGates(report)
	if len(report.Gates) == 0 {
		fmt.Fprintf(w, "\ngates: all passed\n")
	} else {
		for _, g := range report.Gates {
			fmt.Fprintf(w, "\nGATE VIOLATED: %s", g)
		}
		fmt.Fprintln(w)
	}

	if jsonPath != "" {
		if err := writeChaosJSON(jsonPath, report); err != nil {
			return report, err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	if len(report.Gates) > 0 {
		return report, fmt.Errorf("chaos experiment: %d gate(s) violated: %v", len(report.Gates), report.Gates)
	}
	return report, nil
}

// chaosGates evaluates the resilience gates against a finished run.
func chaosGates(r ChaosReport) []string {
	var violated []string
	var burst, recovery *ChaosPhase
	for i := range r.Phases {
		p := &r.Phases[i]
		// An overloaded server must never emit genuine 5xx — only tagged
		// injected ones and 429s.
		if p.Other5xx > 0 {
			violated = append(violated, fmt.Sprintf("%s: %d non-injected 5xx (want 0)", p.Name, p.Other5xx))
		}
		// Admitted work must stay bounded even mid-burst.
		if p.Admitted > 0 && p.P99Ms > 2000 {
			violated = append(violated, fmt.Sprintf("%s: admitted p99 %.0fms exceeds 2000ms", p.Name, p.P99Ms))
		}
		switch p.Name {
		case "burst":
			burst = p
		case "recovery":
			recovery = p
		}
	}
	// The shed and recovery gates describe genuine overload, which the
	// harness only guarantees when the injected subtask latency is
	// compiled in (make bench-chaos); an untagged run keeps the 5xx and
	// latency gates.
	if fault.Enabled {
		if burst != nil && burst.Shed == 0 {
			violated = append(violated, "burst: no requests shed with 429 at 4x capacity")
		}
		if recovery != nil && recovery.GoodputRatio < 0.6 {
			violated = append(violated, fmt.Sprintf("recovery: goodput ratio %.2f below 0.6", recovery.GoodputRatio))
		}
		if recovery != nil && r.RecoverySeconds > recovery.Seconds/2 {
			violated = append(violated, fmt.Sprintf("recovery: first admitted response took %.2fs", r.RecoverySeconds))
		}
	}
	return violated
}

// chaosHarness drives one server with open-loop traffic.
type chaosHarness struct {
	url     string
	http    *http.Client
	queries [][]byte
	dim     int
	// end is the next insert timestamp; monotonically increasing across
	// the whole run so appends never violate timestamp order.
	end atomic.Int64
	// lastFirstSuccess is the offset of the last finished phase's first
	// admitted response, in seconds from phase start.
	lastFirstSuccess float64
}

// measureCapacity runs closed-loop traffic at the admission concurrency
// and returns the observed service rate in QPS.
func (h *chaosHarness) measureCapacity(workers int, dur time.Duration) float64 {
	var done atomic.Int64
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				st, _, _, _ := h.searchOnce(i)
				if st == http.StatusOK {
					done.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	qps := float64(done.Load()) / dur.Seconds()
	if qps < 1 {
		qps = 1
	}
	return qps
}

// searchOnce posts one pre-marshaled query, returning the status plus
// the partial, degraded, and injected-failure markers.
func (h *chaosHarness) searchOnce(i int) (status int, partial, degraded, injected bool) {
	resp, err := h.http.Post(h.url+"/search", "application/json", bytes.NewReader(h.queries[i%len(h.queries)]))
	if err != nil {
		return 0, false, false, false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
	}()
	degraded = resp.Header.Get("X-Tknn-Degraded") == "1"
	injected = resp.Header.Get("X-Tknn-Injected") == "1"
	if resp.StatusCode == http.StatusOK {
		var out struct {
			Partial bool `json:"partial"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out)
		partial = out.Partial
	}
	return resp.StatusCode, partial, degraded, injected
}

// insertOnce posts one vector with the next monotone timestamp.
func (h *chaosHarness) insertOnce() (status int, injected bool) {
	t := h.end.Add(1) - 1
	v := make([]float32, h.dim)
	for i := range v {
		// Cheap deterministic pseudo-vector; content is irrelevant to the
		// overload behavior under test.
		v[i] = float32((int(t)+i)%97) / 97
	}
	body, err := json.Marshal(server.AddRequest{Vector: v, Time: &t})
	if err != nil {
		return 0, false
	}
	resp, rerr := h.http.Post(h.url+"/vectors", "application/json", bytes.NewReader(body))
	if rerr != nil {
		return 0, false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close()
	}()
	return resp.StatusCode, resp.Header.Get("X-Tknn-Injected") == "1"
}

// runPhase dispatches open-loop traffic at qps for dur: arrivals are
// scheduled on the clock regardless of how the server is doing, which is
// what makes overload real instead of self-throttling.
func (h *chaosHarness) runPhase(name string, qps float64, dur time.Duration) ChaosPhase {
	interval := time.Duration(float64(time.Second) / qps)
	var (
		wg                                     sync.WaitGroup
		admitted, shed, inj, other, cerr, terr atomic.Int64
		degraded, partials, firstSuccessNs     atomic.Int64
		mu                                     sync.Mutex
		lats                                   []time.Duration
	)
	start := time.Now()
	deadline := start.Add(dur)
	offered := int64(0)
	next := start
	for op := 0; ; op++ {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		offered++
		wg.Add(1)
		go func(op int) {
			defer wg.Done()
			opStart := time.Now()
			var st int
			var partial, degr, injected bool
			if op%chaosInsertEvery == 0 {
				st, injected = h.insertOnce()
			} else {
				st, partial, degr, injected = h.searchOnce(op)
			}
			el := time.Since(opStart)
			switch {
			case st == 0:
				terr.Add(1)
			case st == http.StatusOK:
				admitted.Add(1)
				firstSuccessNs.CompareAndSwap(0, time.Since(start).Nanoseconds())
				mu.Lock()
				lats = append(lats, el)
				mu.Unlock()
			case st == http.StatusTooManyRequests:
				shed.Add(1)
			case st >= 500:
				// An injected failure carries the X-Tknn-Injected marker;
				// classify it apart from genuine errors.
				if injected {
					inj.Add(1)
				} else {
					other.Add(1)
				}
			default:
				cerr.Add(1)
			}
			if degr {
				degraded.Add(1)
			}
			if partial {
				partials.Add(1)
			}
		}(op)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	h.lastFirstSuccess = float64(firstSuccessNs.Load()) / 1e9

	ph := ChaosPhase{
		Name: name, Seconds: elapsed.Seconds(), OfferedQPS: qps,
		Offered: offered, Admitted: admitted.Load(), Shed: shed.Load(),
		Injected5xx: inj.Load(), Other5xx: other.Load(),
		ClientErrs: cerr.Load(), TransportErrs: terr.Load(),
		Degraded: degraded.Load(), Partial: partials.Load(),
		P50Ms: pct(0.50), P99Ms: pct(0.99),
	}
	ph.GoodputQPS = float64(ph.Admitted) / elapsed.Seconds()
	if offered > 0 {
		ph.GoodputRatio = float64(ph.Admitted) / float64(offered)
	}
	return ph
}

func writeChaosJSON(path string, report ChaosReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("chaos experiment: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		_ = f.Close()
		return fmt.Errorf("chaos experiment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("chaos experiment: %w", err)
	}
	return nil
}
