package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nndescent"

	"repro/internal/core"
)

// Fig8Point is one checkpoint of the incremental-insertion experiment.
type Fig8Point struct {
	LeafSize int
	Inserted int
	// Cumulative is the total insertion time up to this checkpoint
	// (Figure 8a's y-axis).
	Cumulative time.Duration
	// QPS is the query throughput at this index state with windows
	// covering 5–95% of the data inserted so far (Figure 8b's y-axis).
	QPS float64
}

// Fig8 reproduces Figure 8: the effect of the leaf size S_L on
// incremental indexing time (a) and query speed (b) on the MovieLens
// profile. Vectors are inserted one at a time; at each checkpoint the
// cumulative insertion time and the query throughput are recorded.
func Fig8(c Config, w io.Writer) []Fig8Point {
	p, err := dataset.ProfileByName("MovieLens")
	if err != nil {
		panic(err)
	}
	header(w, "Figure 8 — effect of leaf size S_L (MovieLens)",
		"cumulative insert time and QPS vs inserted count, for an S_L sweep")

	d := genData(c, p)
	scaled := d.Profile
	n := d.Train.Len()

	// S_L sweep around the profile default, mirroring the paper's
	// 450/900/1800/3550/7100 geometric ladder.
	minSL := scaled.LeafSizeScaledMin()
	var leafSizes []int
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		sl := int(float64(scaled.LeafSize) * mult)
		if sl < minSL {
			sl = minSL
		}
		if len(leafSizes) == 0 || leafSizes[len(leafSizes)-1] != sl {
			leafSizes = append(leafSizes, sl)
		}
	}

	const checkpoints = 10
	const k = 10
	var out []Fig8Point
	for _, sl := range leafSizes {
		ix, err := core.New(core.Options{
			Dim:      scaled.Dim,
			Metric:   scaled.Metric,
			LeafSize: sl,
			Tau:      scaled.Tau,
			Builder:  nndescent.MustNew(nndescent.DefaultConfig(scaled.GraphK)),
			Search:   graph.SearchParams{MC: scaled.MC, Eps: 1.2},
			Workers:  c.Workers,
			Seed:     c.Seed,
		})
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "S_L = %d\n%10s %14s %12s\n", sl, "inserted", "cumulative", "qps")
		var cumulative time.Duration
		inserted := 0
		for cp := 1; cp <= checkpoints; cp++ {
			target := n * cp / checkpoints
			start := time.Now()
			for ; inserted < target; inserted++ {
				if err := ix.Append(d.Train.At(inserted), d.Times[inserted]); err != nil {
					panic(err)
				}
			}
			cumulative += time.Since(start)

			qps := measureIncrementalQPS(c, ix, d, k, inserted)
			pt := Fig8Point{LeafSize: sl, Inserted: inserted, Cumulative: cumulative, QPS: qps}
			out = append(out, pt)
			fmt.Fprintf(w, "%10d %14s %12.0f\n", inserted, cumulative.Round(time.Millisecond), qps)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "expected shape: cumulative time ~ n^1.14 log n; QPS dips as the tree")
	fmt.Fprintln(w, "deepens and jumps when a merge cascade completes the tree (the paper's zigzag)")
	return out
}

// measureIncrementalQPS measures throughput against the current prefix
// with window sizes drawn from 5–95% of the inserted data (§5.4.1).
func measureIncrementalQPS(c Config, ix *core.Index, d *dataset.Data, k, inserted int) float64 {
	rng := rand.New(rand.NewSource(c.Seed + int64(inserted)))
	nq := c.QueriesPerPoint / 2
	if nq < 10 {
		nq = 10
	}
	if nq > len(d.Test) {
		nq = len(d.Test)
	}
	p := graph.SearchParams{MC: d.Profile.MC, Eps: 1.2}
	times := d.Times[:inserted]
	start := time.Now()
	for i := 0; i < nq; i++ {
		f := 0.05 + 0.9*rng.Float64()
		ts, te := dataset.WindowForFraction(rng, times, f)
		ix.SearchWith(d.Test[i], k, ts, te, p, rng)
	}
	return float64(nq) / time.Since(start).Seconds()
}
