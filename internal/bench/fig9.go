package bench

import (
	"fmt"
	"io"

	"repro/internal/dataset"
)

// Fig9Row is one (tau, fraction) measurement for MBI, with the baselines
// at the same fraction for reference.
type Fig9Row struct {
	Profile  string
	Tau      float64
	Fraction float64
	MBI      Operating
	BSBF     Operating
	SF       Operating
}

// Fig9 reproduces Figure 9: MBI query speed across the block-selection
// threshold τ from 0.1 to 0.9 as a function of the window fraction, with
// BSBF and SF shown for reference. The paper runs MovieLens and COMS;
// profiles selects which to run here.
func Fig9(c Config, profiles []dataset.Profile, w io.Writer) []Fig9Row {
	header(w, "Figure 9 — effect of threshold tau",
		fmt.Sprintf("QPS vs window fraction for tau in [0.1, 0.9] at recall@10 >= %.3f", c.RecallTarget))
	taus := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	const k = 10
	var rows []Fig9Row
	for _, p := range profiles {
		d := genData(c, p)
		scaled := d.Profile

		bs := NewBSBF()
		bs.Build(d)
		sfm := NewSF(scaled, c.Seed)
		sfm.Build(d)
		mbi := NewMBI(scaled, c.Seed, c.Workers)
		mbi.Build(d) // one build; tau is a query-time parameter

		fmt.Fprintf(w, "%s (n=%d)\n", p.Name, d.Train.Len())
		fmt.Fprintf(w, "%8s %6s | %12s | %12s %12s\n", "tau", "window", "MBI qps", "BSBF qps", "SF qps")
		for _, frac := range c.Fractions {
			qs, gt := queriesAndTruth(c, d, k, frac)
			bsOp := qpsAtRecall(c, bs, qs, gt)
			sfOp := qpsAtRecall(c, sfm, qs, gt)
			for _, tau := range taus {
				mbi.SetTau(tau)
				op := qpsAtRecall(c, mbi, qs, gt)
				rows = append(rows, Fig9Row{
					Profile: p.Name, Tau: tau, Fraction: frac,
					MBI: op, BSBF: bsOp, SF: sfOp,
				})
				fmt.Fprintf(w, "%8.1f %5.0f%% | %12.0f%s | %12.0f %12.0f%s\n",
					tau, frac*100, op.QPS, flag(op), bsOp.QPS, sfOp.QPS, flag(sfOp))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "expected shape: tau > 0.5 degrades with many blocks; tau <= 0.5 guarantees")
	fmt.Fprintln(w, "at most two blocks (Lemma 4.1); tau ~ 0.5 is the paper's recommendation")
	return rows
}
