package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/sq"
	"repro/internal/theap"
	"repro/internal/vec"
)

// SQPoint is one rerank-factor operating point of the compression
// experiment: the compressed index's answers scored against the flat
// index's answers on the same queries.
type SQPoint struct {
	// RerankFactor is the over-fetch multiplier: each compressed block
	// contributes its k·RerankFactor best code-space candidates, re-ranked
	// exactly against the float32 store.
	RerankFactor int `json:"rerank_factor"`
	// RecallVsFlat is recall@k of the compressed index against the flat
	// index — quantization loss in isolation, since both walk identical
	// graphs.
	RecallVsFlat float64 `json:"recall_vs_flat"`
	// RecallVsExact is recall@k against brute-force ground truth.
	RecallVsExact float64 `json:"recall_vs_exact"`
	// NsPerQuery is mean per-query latency in nanoseconds.
	NsPerQuery float64 `json:"ns_per_query"`
}

// SQReport is the experiment output, serialized to BENCH_sq.json: the
// memory and throughput profile of SQ8-compressed blocks, plus the
// recall cost of quantization at increasing rerank factors on the
// drifting-cluster workload.
type SQReport struct {
	Dim      int     `json:"dim"`
	TrainN   int     `json:"train_n"`
	LeafSize int     `json:"leaf_size"`
	K        int     `json:"k"`
	Queries  int     `json:"queries"`
	Drift    float64 `json:"drift_rate"`
	// FloatBytesPerVector is the raw float32 payload (Dim·4).
	FloatBytesPerVector int `json:"float_bytes_per_vector"`
	// CodeBytesPerVector is the SQ8 payload per vector: 1 byte per
	// coordinate plus the amortized affine map and the per-row norm.
	CodeBytesPerVector float64 `json:"code_bytes_per_vector"`
	// MemoryReduction is FloatBytesPerVector / CodeBytesPerVector.
	MemoryReduction float64 `json:"memory_reduction"`
	// CompressedBlocks and CodeBytes describe the built MBI index: every
	// sealed block of the forest carries codes (CompressMinHeight 0), so
	// CodeBytes spans all tree levels, not one copy of the data.
	CompressedBlocks int   `json:"compressed_blocks"`
	CodeBytes        int64 `json:"code_bytes"`
	// ScanGBps is asymmetric-kernel throughput in code bytes per second:
	// FillLUT once per query, then LUTDist over every row.
	ScanGBps float64 `json:"scan_gbps"`
	// NsPerDistance is the amortized cost of one LUT distance, including
	// the per-query LUT fill.
	NsPerDistance float64 `json:"ns_per_distance"`
	// FlatRecall is the flat index's recall@k against brute force — the
	// ceiling the compressed points are chasing.
	FlatRecall float64   `json:"flat_recall_vs_exact"`
	Points     []SQPoint `json:"points"`
}

// sqK is the result count; the paper's headline recall operating point.
const sqK = 10

// sqRerankFactors is the over-fetch sweep; the acceptance gate reads the
// last (largest) factor.
var sqRerankFactors = []int{1, 2, 4}

// Acceptance gates for the compression experiment, checked on the
// drifting-cluster workload: SQ8 must shrink the vector payload at least
// 3.5x and, at the largest rerank factor, must track the flat index's
// answers at recall@10 >= 0.95.
const (
	sqMinReduction = 3.5
	sqMinRecall    = 0.95
)

// SQExperiment measures the SQ8 compressed query path on a drifting-
// cluster workload — the regime the paper targets, where each sealed
// block covers a temporally coherent (hence spatially tight) slice, which
// is exactly what makes per-block quantizers accurate. It reports
// bytes/vector and memory reduction versus float32, asymmetric-kernel
// scan throughput, and recall@10 against the flat index at rerank factors
// 1/2/4, and fails if the memory-reduction or recall gate is missed.
func SQExperiment(c Config, w io.Writer, jsonPath string) (SQReport, error) {
	leaves := 48
	sl := int(96*c.Scale + 0.5)
	if sl < 32 {
		sl = 32
	}
	p := dataset.Profile{
		Name: "sq-drift", Dim: 64, Metric: vec.Angular,
		TrainN: leaves * sl, TestN: c.QueriesPerPoint,
		Clusters: 24, ClusterStd: 0.9, Background: 0.1,
		LeafSize: sl, Tau: 0.5, GraphK: 12, MC: 36,
	}
	drift := dataset.DriftConfig{Rate: 5e-4, Renormalize: true}
	d := dataset.GenerateDrifting(p, drift, c.Seed)

	report := SQReport{
		Dim: p.Dim, TrainN: p.TrainN, LeafSize: sl, K: sqK,
		Drift:               drift.Rate,
		FloatBytesPerVector: p.Dim * 4,
	}

	// --- payload size and kernel throughput on one trained block --------
	// One quantizer over the full store gives the clean bytes/vector
	// number (the per-block affine overhead amortizes the same way at any
	// realistic block size) and a large enough row count to time the
	// asymmetric kernel meaningfully.
	codes := sq.Train(d.Train, 0, d.Train.Len(), sq.TrainConfig{})
	report.CodeBytesPerVector = float64(codes.Bytes()) / float64(codes.N)
	report.MemoryReduction = float64(report.FloatBytesPerVector) / report.CodeBytesPerVector

	lut := make([]float32, codes.LUTLen())
	scanQueries := d.Test
	if len(scanQueries) > 32 {
		scanQueries = scanQueries[:32]
	}
	var sink float32
	start := time.Now()
	for _, q := range scanQueries {
		codes.FillLUT(p.Metric, q, lut)
		qn := vec.Norm(q)
		for i := 0; i < codes.N; i++ {
			sink += codes.LUTDist(p.Metric, lut, qn, i)
		}
	}
	elapsed := time.Since(start)
	distances := float64(len(scanQueries)) * float64(codes.N)
	scanned := distances * float64(p.Dim) // one code byte per coordinate
	report.ScanGBps = scanned / elapsed.Seconds() / 1e9
	report.NsPerDistance = float64(elapsed.Nanoseconds()) / distances
	_ = sink

	// --- flat vs compressed index recall -------------------------------
	sp := graph.SearchParams{MC: effMC(p.MC, sqK), Eps: 1.1}
	build := func(kind sq.Kind) (*core.Index, error) {
		ix, err := core.New(core.Options{
			Dim: p.Dim, Metric: p.Metric, LeafSize: sl, Tau: p.Tau,
			Builder: nndescent.MustNew(nndescent.DefaultConfig(p.GraphK)),
			Search:  sp, Workers: c.Workers, Seed: c.Seed,
			Compression: kind,
		})
		if err != nil {
			return nil, fmt.Errorf("sq experiment: %w", err)
		}
		for i := 0; i < d.Train.Len(); i++ {
			if err := ix.Append(d.Train.At(i), d.Times[i]); err != nil {
				return nil, fmt.Errorf("sq experiment: append: %w", err)
			}
		}
		return ix, nil
	}
	flat, err := build(sq.None)
	if err != nil {
		return report, err
	}
	comp, err := build(sq.SQ8)
	if err != nil {
		return report, err
	}
	st := comp.Stats()
	report.CompressedBlocks = st.CompressedBlocks
	report.CodeBytes = st.CodeBytes

	rng := rand.New(rand.NewSource(c.Seed + 2))
	qs := dataset.MakeQueries(rng, d, sqK, 0.5)
	if len(qs) > c.QueriesPerPoint {
		qs = qs[:c.QueriesPerPoint]
	}
	exact := dataset.GroundTruth(d.Train, d.Times, p.Metric, qs, c.Workers)
	report.Queries = len(qs)

	run := func(ix *core.Index) ([][]theap.Neighbor, time.Duration) {
		qrng := rand.New(rand.NewSource(c.Seed + 3))
		answers := make([][]theap.Neighbor, len(qs))
		start := time.Now()
		for i, q := range qs {
			answers[i] = ix.SearchTau(q.W, q.K, q.Ts, q.Te, p.Tau, sp, qrng)
		}
		return answers, time.Since(start)
	}

	flatAnswers, _ := run(flat)
	report.FlatRecall, err = dataset.MeanRecall(flatAnswers, exact, sqK)
	if err != nil {
		return report, fmt.Errorf("sq experiment: %w", err)
	}

	header(w, "SQ8 compression experiment (drifting clusters)",
		fmt.Sprintf("n=%d, S_L=%d (%d leaves), dim=%d, k=%d, drift=%g, %d queries, %d cores",
			p.TrainN, sl, leaves, p.Dim, sqK, drift.Rate, len(qs), runtime.NumCPU()))
	fmt.Fprintf(w, "payload: %.1f B/vector vs %d float32 (%.2fx reduction); index: %d compressed blocks, %d code bytes\n",
		report.CodeBytesPerVector, report.FloatBytesPerVector, report.MemoryReduction,
		report.CompressedBlocks, report.CodeBytes)
	fmt.Fprintf(w, "asymmetric kernel: %.2f GB/s over codes, %.1f ns/distance\n",
		report.ScanGBps, report.NsPerDistance)
	fmt.Fprintf(w, "flat recall@%d vs exact: %.3f\n\n", sqK, report.FlatRecall)
	fmt.Fprintf(w, "%-8s %14s %15s %12s\n", "rerank", "recall(flat)", "recall(exact)", "ns/query")

	for _, rf := range sqRerankFactors {
		comp.SetRerankFactor(rf)
		answers, dur := run(comp)
		vsFlat, err := dataset.MeanRecall(answers, flatAnswers, sqK)
		if err != nil {
			return report, fmt.Errorf("sq experiment: %w", err)
		}
		vsExact, err := dataset.MeanRecall(answers, exact, sqK)
		if err != nil {
			return report, fmt.Errorf("sq experiment: %w", err)
		}
		pt := SQPoint{
			RerankFactor:  rf,
			RecallVsFlat:  vsFlat,
			RecallVsExact: vsExact,
			NsPerQuery:    float64(dur.Nanoseconds()) / float64(len(qs)),
		}
		report.Points = append(report.Points, pt)
		fmt.Fprintf(w, "%-8d %14.3f %15.3f %12.0f\n",
			pt.RerankFactor, pt.RecallVsFlat, pt.RecallVsExact, pt.NsPerQuery)
	}

	if jsonPath != "" {
		if err := writeSQJSON(jsonPath, report); err != nil {
			return report, err
		}
		fmt.Fprintf(w, "\nwrote %s\n", jsonPath)
	}
	if report.MemoryReduction < sqMinReduction {
		return report, fmt.Errorf("sq experiment: memory reduction %.2fx below the %.1fx gate",
			report.MemoryReduction, sqMinReduction)
	}
	if last := report.Points[len(report.Points)-1]; last.RecallVsFlat < sqMinRecall {
		return report, fmt.Errorf("sq experiment: recall@%d %.3f vs flat at rerank factor %d below the %.2f gate",
			sqK, last.RecallVsFlat, last.RerankFactor, sqMinRecall)
	}
	return report, nil
}

func writeSQJSON(path string, report SQReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sq experiment: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		_ = f.Close()
		return fmt.Errorf("sq experiment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sq experiment: %w", err)
	}
	return nil
}
