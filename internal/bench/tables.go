package bench

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/persist"
)

// Table2 prints the dataset summary: the paper's Table 2 alongside the
// scaled stand-ins actually used here.
func Table2(c Config, profiles []dataset.Profile, w io.Writer) {
	header(w, "Table 2 — datasets",
		"paper sizes vs the synthetic stand-ins used in this reproduction")
	fmt.Fprintf(w, "%-10s %6s %10s | %12s %8s | %12s %8s\n",
		"dataset", "dim", "distance", "paper train", "test", "repro train", "test")
	for _, p := range profiles {
		s := p.Scale(c.Scale)
		fmt.Fprintf(w, "%-10s %6d %10s | %12d %8d | %12d %8d\n",
			p.Name, p.Dim, p.Metric, p.PaperTrainN, p.PaperTestN, s.TrainN, s.TestN)
	}
}

// Table3 prints the default parameters per profile (the paper's Table 3,
// rescaled).
func Table3(c Config, profiles []dataset.Profile, w io.Writer) {
	header(w, "Table 3 — default parameters",
		"graph-search and MBI parameters per profile (paper's S_L in parentheses)")
	fmt.Fprintf(w, "%-10s | %10s %6s %12s | %6s %10s\n",
		"dataset", "neighbors", "M_C", "eps", "tau", "S_L")
	for _, p := range profiles {
		s := p.Scale(c.Scale)
		fmt.Fprintf(w, "%-10s | %10d %6d %5.2f-%.2f | %6.2f %6d (%d)\n",
			p.Name, s.GraphK, s.MC, c.EpsMin, c.EpsMax, s.Tau, s.LeafSize, p.PaperLeafSize)
	}
}

// Table4Row is one profile's index-size measurements.
type Table4Row struct {
	Profile   string
	InputSize int64
	MBISize   int64
	SFSize    int64
}

// Table4 reproduces Table 4: serialized index sizes of MBI and SF against
// the raw input size, per profile. The ratios (MBI a few times larger
// than SF, both larger than the input) are the comparable quantity; the
// absolute bytes differ from the paper's Rust encoding.
func Table4(c Config, profiles []dataset.Profile, w io.Writer) []Table4Row {
	header(w, "Table 4 — index sizes",
		"serialized bytes; parenthesized factors are relative to the input size")
	fmt.Fprintf(w, "%-10s %14s | %22s | %22s\n", "dataset", "input", "MBI", "SF")
	var rows []Table4Row
	for _, p := range profiles {
		d := genData(c, p)
		scaled := d.Profile
		mbi := NewMBI(scaled, c.Seed, c.Workers)
		mbi.Build(d)
		sfm := NewSF(scaled, c.Seed)
		sfm.Build(d)
		mbiSize, err := persist.SizeMBI(mbi.Index())
		if err != nil {
			panic(err)
		}
		sfSize, err := persist.SizeSF(sfm.Index())
		if err != nil {
			panic(err)
		}
		row := Table4Row{Profile: p.Name, InputSize: d.InputBytes(), MBISize: mbiSize, SFSize: sfSize}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %14d | %14d (%5.2fx) | %14d (%5.2fx)\n",
			p.Name, row.InputSize,
			mbiSize, float64(mbiSize)/float64(row.InputSize),
			sfSize, float64(sfSize)/float64(row.InputSize))
	}
	fmt.Fprintln(w, "\npaper factors: MBI 2.15x-8.72x, SF 1.21x-2.49x of the input")
	return rows
}
