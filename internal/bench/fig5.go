package bench

import (
	"fmt"
	"io"

	"repro/internal/dataset"
)

// Fig5Row is one measured point of Figure 5.
type Fig5Row struct {
	Profile  string
	K        int
	Fraction float64
	BSBF     Operating
	SF       Operating
	MBI      Operating
	// Speedup is MBI QPS over the better of BSBF and SF — the paper's
	// "hypothetical method that selects the faster of BSBF and SF"
	// comparison (up to 10.88x in the paper).
	Speedup float64
}

// Fig5 reproduces Figure 5: queries per second versus the query-window
// fraction at the recall target, for every profile and k in c.Ks. Rows are
// printed to w and returned.
func Fig5(c Config, profiles []dataset.Profile, w io.Writer) []Fig5Row {
	header(w, "Figure 5 — search performance",
		fmt.Sprintf("QPS vs window fraction at recall@k >= %.3f; MBI vs BSBF vs SF", c.RecallTarget))
	var rows []Fig5Row
	for _, p := range profiles {
		d := genData(c, p)
		scaled := d.Profile

		bs := NewBSBF()
		bs.Build(d)
		sfm := NewSF(scaled, c.Seed)
		sfm.Build(d)
		mbi := NewMBI(scaled, c.Seed, c.Workers)
		mbi.Build(d)

		fmt.Fprintf(w, "%s (n=%d, dim=%d, %s, S_L=%d, tau=%.2f)\n",
			p.Name, d.Train.Len(), p.Dim, p.Metric, scaled.LeafSize, scaled.Tau)
		fmt.Fprintf(w, "%8s %6s | %12s %12s %12s | %8s\n", "k", "window", "BSBF qps", "SF qps", "MBI qps", "speedup")
		for _, k := range c.Ks {
			for _, frac := range c.Fractions {
				qs, gt := queriesAndTruth(c, d, k, frac)
				row := Fig5Row{Profile: p.Name, K: k, Fraction: frac}
				row.BSBF = qpsAtRecall(c, bs, qs, gt)
				row.SF = qpsAtRecall(c, sfm, qs, gt)
				row.MBI = qpsAtRecall(c, mbi, qs, gt)
				baseline := row.BSBF.QPS
				if row.SF.Reached && row.SF.QPS > baseline {
					baseline = row.SF.QPS
				}
				if baseline > 0 {
					row.Speedup = row.MBI.QPS / baseline
				}
				rows = append(rows, row)
				fmt.Fprintf(w, "%8d %5.0f%% | %12.0f %12.0f%s %12.0f%s | %7.2fx\n",
					k, frac*100, row.BSBF.QPS, row.SF.QPS, flag(row.SF), row.MBI.QPS, flag(row.MBI), row.Speedup)
			}
		}
		fmt.Fprintln(w)
	}
	summarizeFig5(w, rows)
	return rows
}

// summarizeFig5 prints the headline comparisons the paper draws from
// Figure 5.
func summarizeFig5(w io.Writer, rows []Fig5Row) {
	if len(rows) == 0 {
		return
	}
	var maxSpeedup float64
	var at Fig5Row
	wins := 0
	for _, r := range rows {
		if r.Speedup > maxSpeedup {
			maxSpeedup = r.Speedup
			at = r
		}
		if r.Speedup >= 1 {
			wins++
		}
	}
	fmt.Fprintf(w, "MBI beats max(BSBF, SF) on %d/%d points; max speedup %.2fx (%s, k=%d, window %.0f%%)\n",
		wins, len(rows), maxSpeedup, at.Profile, at.K, at.Fraction*100)
	fmt.Fprintf(w, "paper reports up to 10.88x on its testbed\n")
}
