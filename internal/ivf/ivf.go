// Package ivf implements an inverted-file (IVF-Flat) index with native
// time-window support — the quantization-family comparator for this
// repository's graph-based methods (the paper's related work covers both
// families, §2.1).
//
// Vectors are coarse-quantized to their nearest k-means centroid; each
// centroid owns an inverted list of member ids. Because ids are assigned
// in timestamp order, every inverted list is itself sorted by time, so a
// TkNN query (1) ranks centroids by distance to the query, (2) probes the
// closest nprobe lists, and (3) within each list binary-searches the time
// window and scans only in-window members exactly. Unlike graph
// search-and-filter, the time restriction makes IVF *faster*, not slower
// — but its recall ceiling is set by how many lists are probed.
package ivf

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bsbf"
	"repro/internal/exec"
	"repro/internal/kmeans"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Config holds IVF build parameters.
type Config struct {
	// Lists is the number of inverted lists (k-means centroids). A
	// common rule of thumb is ~sqrt(n). Zero lets Build pick sqrt(n).
	Lists int
	// KMeansIters caps the Lloyd iterations. Zero means the kmeans
	// default.
	KMeansIters int
}

// Index is a built IVF-Flat index over a timestamped database.
// Like the SF baseline it is built in one shot over appended data;
// vectors appended after the last Build are covered by a brute-force
// tail scan.
type Index struct {
	store  *vec.Store
	times  []int64
	metric vec.Metric
	cfg    Config

	centroids *vec.Store
	lists     [][]int32 // member ids, ascending (= timestamp order)
	built     int
}

// New returns an empty IVF index.
func New(dim int, metric vec.Metric, cfg Config) *Index {
	return &Index{store: vec.NewStore(dim), metric: metric, cfg: cfg}
}

// Len returns the number of appended vectors.
func (ix *Index) Len() int { return ix.store.Len() }

// Built returns how many vectors the current lists cover.
func (ix *Index) Built() int { return ix.built }

// Metric returns the index metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// TimeAt returns the timestamp of vector id.
func (ix *Index) TimeAt(id int) int64 { return ix.times[id] }

// Lists returns the number of inverted lists (0 before the first Build).
func (ix *Index) Lists() int {
	if ix.centroids == nil {
		return 0
	}
	return ix.centroids.Len()
}

// Append adds a timestamped vector. Timestamps must be non-decreasing.
func (ix *Index) Append(v []float32, t int64) error {
	if n := len(ix.times); n > 0 && t < ix.times[n-1] {
		return fmt.Errorf("ivf: timestamp %d precedes last timestamp %d", t, ix.times[n-1])
	}
	if _, err := ix.store.Append(v); err != nil {
		return err
	}
	ix.times = append(ix.times, t)
	return nil
}

// Build (re)clusters all appended vectors into inverted lists.
func (ix *Index) Build(seed int64) error {
	n := ix.store.Len()
	if n == 0 {
		return fmt.Errorf("ivf: nothing to build")
	}
	k := ix.cfg.Lists
	if k == 0 {
		k = intSqrt(n)
	}
	if k > n {
		k = n
	}
	view := vec.View{Store: ix.store, Lo: 0, Hi: n, Metric: ix.metric}
	res, err := kmeans.Run(view, kmeans.Config{K: k, MaxIter: ix.cfg.KMeansIters}, seed)
	if err != nil {
		return err
	}
	lists := make([][]int32, res.Centroids.Len())
	for c, size := range res.Sizes {
		lists[c] = make([]int32, 0, size)
	}
	for i, c := range res.Assign {
		lists[c] = append(lists[c], int32(i)) // ascending ids = time order
	}
	ix.centroids = res.Centroids
	ix.lists = lists
	ix.built = n
	return nil
}

// Search returns approximately the k nearest neighbors to q among vectors
// with timestamps in [ts, te), probing the nprobe nearest inverted lists
// (plus a brute-force tail scan over unbuilt vectors). Results use global
// insertion indices and ascending distance order.
func (ix *Index) Search(q []float32, k int, ts, te int64, nprobe int) []theap.Neighbor {
	res, _ := ix.SearchContext(context.Background(), q, k, ts, te, nprobe, exec.Executor{Workers: 1})
	return res
}

// SearchContext answers the query through the shared executor: probed
// lists scan as independent subtasks across x's worker pool, subtasks
// never start after ctx is done, and expiry yields partial results tagged
// in the outcome. It borrows a pooled scratch and copies the results out.
func (ix *Index) SearchContext(ctx context.Context, q []float32, k int, ts, te int64, nprobe int, x exec.Executor) ([]theap.Neighbor, exec.Outcome) {
	scr := exec.GetScratch()
	planStart := time.Now()
	plan := exec.Plan{K: k, Query: q, Subtasks: scr.Subtasks[:0]}
	scr.Entries = scr.Entries[:0]
	ix.planInto(&plan, scr, q, k, ts, te, nprobe)
	scr.Subtasks = plan.Subtasks[:0]
	planDur := time.Since(planStart)
	res, out := x.RunScratch(ctx, plan, scr)
	res = exec.CopyNeighbors(res)
	out = out.Detach()
	exec.PutScratch(scr)
	out.Select = planDur
	return res, out
}

// Plan translates the query into the shared executor's shape: centroid
// ranking and per-list window binary searches happen at plan time (the
// select stage), then each probed list's in-window run becomes one
// brute-scan subtask, plus one for the unbuilt tail. Lists partition the
// built ids and the tail is disjoint from them, so the merged result is
// identical for every worker count.
func (ix *Index) Plan(q []float32, k int, ts, te int64, nprobe int) exec.Plan {
	plan := exec.Plan{K: k, Query: q}
	if k <= 0 || ts >= te {
		return plan
	}
	ix.planInto(&plan, exec.NewScratch(), q, k, ts, te, nprobe)
	return plan
}

// planInto appends the query's subtasks to plan as data-only units: each
// probed list's in-window run scans through the executor's id-list kernel
// (the inverted list's segment rides along as Subtask.List — no copying),
// and the unbuilt tail scans as a contiguous range. scr backs the centroid
// ranking and probe storage.
func (ix *Index) planInto(plan *exec.Plan, scr *exec.Scratch, q []float32, k int, ts, te int64, nprobe int) {
	if k <= 0 || ts >= te {
		return
	}
	if ix.centroids != nil && ix.built > 0 {
		probes := ix.rankCentroidsInto(scr, q, nprobe)
		for _, c := range probes {
			list := ix.lists[c]
			lo := sort.Search(len(list), func(i int) bool { return ix.times[list[i]] >= ts })
			hi := sort.Search(len(list), func(i int) bool { return ix.times[list[i]] >= te })
			if lo >= hi {
				continue
			}
			seg := list[lo:hi]
			plan.Subtasks = append(plan.Subtasks, exec.Subtask{
				Kind: exec.BruteScan,
				Lo:   int(seg[0]), Hi: int(seg[len(seg)-1]) + 1,
				WindowStart: ix.times[seg[0]], WindowEnd: ix.times[seg[len(seg)-1]] + 1,
				Store: ix.store, Metric: ix.metric, List: seg,
			})
		}
	}
	// Tail scan over unbuilt vectors; ids past built are in timestamp
	// order, so the window is one contiguous run.
	if tailLo, tailHi := ix.built, ix.store.Len(); tailLo < tailHi {
		lo, hi := bsbf.WindowOf(ix.times[tailLo:tailHi], ts, te)
		lo, hi = tailLo+lo, tailLo+hi
		if lo < hi {
			plan.Subtasks = append(plan.Subtasks, exec.Subtask{
				Kind: exec.BruteScan, Lo: lo, Hi: hi,
				WindowStart: ix.times[lo], WindowEnd: ix.times[hi-1] + 1,
				Store: ix.store, Metric: ix.metric, ScanLo: lo, ScanHi: hi,
			})
		}
	}
}

// rankCentroidsInto returns the indices of the nprobe centroids nearest to
// q, ranked through the scratch's plan-time heap and carved from its
// entry arena so steady-state planning allocates nothing.
func (ix *Index) rankCentroidsInto(scr *exec.Scratch, q []float32, nprobe int) []int32 {
	nc := ix.centroids.Len()
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > nc {
		nprobe = nc
	}
	scr.PlanTop.ResetK(nprobe)
	for c := 0; c < nc; c++ {
		scr.PlanTop.Push(theap.Neighbor{ID: int32(c), Dist: vec.Distance(ix.metric, q, ix.centroids.At(c))})
	}
	ranked := scr.PlanTop.Items()
	start := len(scr.Entries)
	for _, r := range ranked {
		scr.Entries = append(scr.Entries, r.ID)
	}
	return scr.Entries[start:len(scr.Entries):len(scr.Entries)]
}

// Stats describes the list-size distribution, for diagnostics and tests.
type Stats struct {
	Lists    int
	MinList  int
	MaxList  int
	MeanList float64
}

// Stats summarizes the inverted lists.
func (ix *Index) Stats() Stats {
	s := Stats{Lists: len(ix.lists)}
	if s.Lists == 0 {
		return s
	}
	s.MinList = len(ix.lists[0])
	for _, l := range ix.lists {
		if len(l) < s.MinList {
			s.MinList = len(l)
		}
		if len(l) > s.MaxList {
			s.MaxList = len(l)
		}
		s.MeanList += float64(len(l))
	}
	s.MeanList /= float64(s.Lists)
	return s
}

func intSqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}
