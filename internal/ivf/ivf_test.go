package ivf

import (
	"math/rand"
	"testing"

	"repro/internal/bsbf"
	"repro/internal/vec"
)

func clusteredData(seed int64, n, dim, clusters int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, clusters)
	for c := range centers {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = v
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.3)
		}
		out[i] = v
	}
	return out
}

func buildIVF(t *testing.T, vs [][]float32, cfg Config) *Index {
	t.Helper()
	ix := New(len(vs[0]), vec.Euclidean, cfg)
	for i, v := range vs {
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Build(3); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestAppendValidation(t *testing.T) {
	ix := New(2, vec.Euclidean, Config{})
	if err := ix.Append([]float32{1, 2}, 5); err != nil {
		t.Fatal(err)
	}
	if err := ix.Append([]float32{1, 2}, 4); err == nil {
		t.Error("decreasing timestamp accepted")
	}
	if err := ix.Append([]float32{1}, 6); err == nil {
		t.Error("wrong dimension accepted")
	}
	if err := New(2, vec.Euclidean, Config{}).Build(1); err == nil {
		t.Error("empty build accepted")
	}
}

func TestBuildShape(t *testing.T) {
	vs := clusteredData(1, 900, 8, 6)
	ix := buildIVF(t, vs, Config{}) // default sqrt(900)=30 lists
	if ix.Lists() != 30 {
		t.Errorf("%d lists, want 30", ix.Lists())
	}
	st := ix.Stats()
	if st.Lists != 30 || st.MeanList < 29 || st.MeanList > 31 {
		t.Errorf("stats %+v", st)
	}
	// Inverted lists are in ascending id (time) order.
	for c, l := range ix.lists {
		for i := 1; i < len(l); i++ {
			if l[i] <= l[i-1] {
				t.Fatalf("list %d not ascending", c)
			}
		}
	}
}

func TestSearchExactWithAllProbes(t *testing.T) {
	vs := clusteredData(2, 600, 8, 5)
	ix := buildIVF(t, vs, Config{Lists: 20})
	exact, err := bsbf.FromData(ix.store, ix.times, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a := rng.Intn(600)
		b := a + 1 + rng.Intn(600-a)
		q := vs[rng.Intn(len(vs))]
		got := ix.Search(q, 5, int64(a), int64(b), 20) // probe everything
		want := exact.Search(q, 5, int64(a), int64(b))
		if len(got) != len(want) {
			t.Fatalf("[%d,%d): %d results, want %d", a, b, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d): result %d = %v, want %v", a, b, i, got[i], want[i])
			}
		}
	}
}

func TestSearchRecallGrowsWithProbes(t *testing.T) {
	vs := clusteredData(3, 2000, 16, 10)
	ix := buildIVF(t, vs, Config{Lists: 40})
	exact, err := bsbf.FromData(ix.store, ix.times, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	recallAt := func(nprobe int) float64 {
		var sum float64
		const trials = 40
		r := rand.New(rand.NewSource(6)) // same queries for each probe level
		_ = rng
		for trial := 0; trial < trials; trial++ {
			q := vs[r.Intn(len(vs))]
			got := ix.Search(q, 10, 0, 2000, nprobe)
			want := exact.Search(q, 10, 0, 2000)
			thr := want[len(want)-1].Dist * 1.00001
			hits := 0
			for _, g := range got {
				if g.Dist <= thr {
					hits++
				}
			}
			sum += float64(hits) / float64(len(want))
		}
		return sum / trials
	}
	r1, r4, rAll := recallAt(1), recallAt(4), recallAt(40)
	if !(r1 <= r4+0.05 && r4 <= rAll+1e-9) {
		t.Errorf("recall not increasing with probes: %g, %g, %g", r1, r4, rAll)
	}
	if rAll < 0.999 {
		t.Errorf("full-probe recall %g, want 1.0", rAll)
	}
	if r4 < 0.5 {
		t.Errorf("4-probe recall %g suspiciously low", r4)
	}
}

func TestSearchWindowRestriction(t *testing.T) {
	vs := clusteredData(7, 500, 8, 4)
	ix := buildIVF(t, vs, Config{Lists: 10})
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		a := rng.Intn(500)
		b := a + 1 + rng.Intn(500-a)
		got := ix.Search(vs[rng.Intn(len(vs))], 8, int64(a), int64(b), 10)
		for _, g := range got {
			if int(g.ID) < a || int(g.ID) >= b {
				t.Fatalf("result %d outside [%d, %d)", g.ID, a, b)
			}
		}
	}
	if got := ix.Search(vs[0], 3, 5, 5, 10); got != nil {
		t.Errorf("empty window returned %v", got)
	}
	if got := ix.Search(vs[0], 0, 0, 10, 10); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestSearchTailScan(t *testing.T) {
	vs := clusteredData(9, 300, 8, 4)
	ix := New(8, vec.Euclidean, Config{Lists: 10})
	for i, v := range vs[:200] {
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Build(1); err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 300; i++ {
		if err := ix.Append(vs[i], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A query targeting a tail vector must find it exactly.
	got := ix.Search(vs[250], 1, 200, 300, 1)
	if len(got) != 1 || got[0].ID != 250 || got[0].Dist != 0 {
		t.Fatalf("tail search = %v", got)
	}
	// Unbuilt index still answers via pure tail scan.
	fresh := New(8, vec.Euclidean, Config{})
	for i, v := range vs[:50] {
		if err := fresh.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got = fresh.Search(vs[25], 1, 0, 50, 1)
	if len(got) != 1 || got[0].ID != 25 {
		t.Fatalf("unbuilt search = %v", got)
	}
}
