package sf

import (
	"math/rand"
	"testing"

	"repro/internal/bsbf"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/vec"
)

func clusteredVectors(seed int64, n, dim, clusters int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, clusters)
	for c := range centers {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = v
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.15)
		}
		out[i] = v
	}
	return out
}

func newTestIndex(t *testing.T, vs [][]float32) *Index {
	t.Helper()
	ix := New(len(vs[0]), vec.Euclidean, nndescent.MustNew(nndescent.DefaultConfig(16)))
	for i, v := range vs {
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestAppendValidation(t *testing.T) {
	ix := New(3, vec.Euclidean, nndescent.MustNew(nndescent.DefaultConfig(4)))
	if err := ix.Append([]float32{1, 2, 3}, 5); err != nil {
		t.Fatal(err)
	}
	if err := ix.Append([]float32{1, 2, 3}, 4); err == nil {
		t.Error("decreasing timestamp accepted")
	}
	if err := ix.Append([]float32{1, 2}, 6); err == nil {
		t.Error("wrong dimension accepted")
	}
}

func TestSearchBeforeBuildUsesTailScan(t *testing.T) {
	vs := clusteredVectors(1, 100, 8, 4)
	ix := newTestIndex(t, vs)
	// No BuildGraph: everything is in the tail, search must still be
	// exact within the window.
	rng := rand.New(rand.NewSource(2))
	p := graph.SearchParams{MC: 32, Eps: 1.1}
	res := ix.Search(vs[42], 1, 0, 100, p, rng)
	if len(res) != 1 || res[0].ID != 42 || res[0].Dist != 0 {
		t.Fatalf("unbuilt-index exact search = %v", res)
	}
	res = ix.Search(vs[42], 5, 10, 20, p, rng)
	for _, r := range res {
		if r.ID < 10 || r.ID >= 20 {
			t.Fatalf("tail scan leaked out-of-window id %d", r.ID)
		}
	}
}

func TestSearchRecallAfterBuild(t *testing.T) {
	vs := clusteredVectors(3, 3000, 16, 8)
	ix := newTestIndex(t, vs)
	ix.BuildGraph(7)
	if ix.Built() != 3000 {
		t.Fatalf("Built = %d", ix.Built())
	}

	exact, err := bsbf.FromData(ix.Store(), ix.Times(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	p := graph.SearchParams{MC: 48, Eps: 1.25}
	const trials, k = 40, 10
	var recall float64
	for i := 0; i < trials; i++ {
		q := vs[rng.Intn(len(vs))]
		// Long window: SF's favorable regime.
		res := ix.Search(q, k, 0, 3000, p, rng)
		want := exact.Search(q, k, 0, 3000)
		threshold := want[len(want)-1].Dist * 1.00001
		hits := 0
		for _, r := range res {
			if r.Dist <= threshold {
				hits++
			}
		}
		recall += float64(hits) / float64(k)
	}
	recall /= trials
	if recall < 0.85 {
		t.Errorf("long-window recall@%d = %.3f, want >= 0.85", k, recall)
	}
}

func TestSearchShortWindowStaysInWindow(t *testing.T) {
	vs := clusteredVectors(4, 2000, 8, 4)
	ix := newTestIndex(t, vs)
	ix.BuildGraph(5)
	rng := rand.New(rand.NewSource(9))
	p := graph.SearchParams{MC: 64, Eps: 1.4}
	for trial := 0; trial < 20; trial++ {
		ts := int64(rng.Intn(1900))
		te := ts + 50
		res := ix.Search(vs[rng.Intn(len(vs))], 10, ts, te, p, rng)
		for _, r := range res {
			if int64(r.ID) < ts || int64(r.ID) >= te {
				t.Fatalf("result id %d outside window [%d, %d)", r.ID, ts, te)
			}
		}
	}
}

func TestSearchMixedGraphAndTail(t *testing.T) {
	vs := clusteredVectors(5, 1200, 8, 4)
	ix := newTestIndex(t, vs[:1000])
	ix.BuildGraph(3)
	for i := 1000; i < 1200; i++ {
		if err := ix.Append(vs[i], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(10))
	p := graph.SearchParams{MC: 64, Eps: 1.4}
	// A query targeting a tail vector must find it exactly (tail is
	// scanned brute force).
	res := ix.Search(vs[1100], 1, 1050, 1200, p, rng)
	if len(res) != 1 || res[0].ID != 1100 || res[0].Dist != 0 {
		t.Fatalf("tail-targeted search = %v", res)
	}
	// A window spanning both regions returns results from both.
	res = ix.Search(vs[990], 20, 900, 1100, p, rng)
	var graphSide, tailSide bool
	for _, r := range res {
		if r.ID < 1000 {
			graphSide = true
		} else {
			tailSide = true
		}
		if r.ID < 900 || r.ID >= 1100 {
			t.Fatalf("out-of-window id %d", r.ID)
		}
	}
	if !graphSide || !tailSide {
		t.Errorf("span query used graph=%v tail=%v, want both", graphSide, tailSide)
	}
}

func TestRestoreValidation(t *testing.T) {
	vs := clusteredVectors(6, 50, 4, 2)
	ix := newTestIndex(t, vs)
	bad := &graph.CSR{Off: []int32{0}}
	if err := ix.Restore(bad, 50); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if err := ix.Restore(bad, 100); err == nil {
		t.Error("built > len accepted")
	}
	if err := ix.Restore(bad, 0); err != nil {
		t.Errorf("empty restore rejected: %v", err)
	}
}
