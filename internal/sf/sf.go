// Package sf implements the paper's second baseline, Search and Filtering
// (§3.2.2): one proximity graph over the whole database, traversed with
// Algorithm 2, filtering results to the query's time window and continuing
// until k in-window vectors are found. SF is strong for long windows (it
// degenerates to plain graph kNN) and weak for short ones, where almost
// every visited vector is filtered out.
package sf

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Index is a whole-database proximity graph with time-filtered search.
//
// Append is single-writer. BuildGraph (re)indexes everything appended so
// far; vectors appended after the last BuildGraph are covered by a
// brute-force tail scan so that results stay complete between rebuilds.
// Search is safe for concurrent use once a graph is built.
type Index struct {
	store   *vec.Store
	times   []int64
	metric  vec.Metric
	builder graph.Builder

	g     *graph.CSR
	built int // vectors covered by g

	searchers sync.Pool
}

// New returns an empty SF index. builder constructs the proximity graph
// (NNDescent in the paper's setup).
func New(dim int, metric vec.Metric, builder graph.Builder) *Index {
	ix := &Index{store: vec.NewStore(dim), metric: metric, builder: builder}
	ix.searchers.New = func() any { return graph.NewSearcher(0) }
	return ix
}

// Len returns the number of appended vectors.
func (ix *Index) Len() int { return ix.store.Len() }

// Built returns how many vectors the current graph covers.
func (ix *Index) Built() int { return ix.built }

// Metric returns the index's distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// Graph exposes the current proximity graph (nil before the first
// BuildGraph); used by the persistence layer and tests.
func (ix *Index) Graph() *graph.CSR { return ix.g }

// Store exposes the backing vector store for persistence.
func (ix *Index) Store() *vec.Store { return ix.store }

// Times exposes the timestamp slice for persistence. Read-only.
func (ix *Index) Times() []int64 { return ix.times }

// Append adds a timestamped vector without touching the graph. The
// timestamp must be >= the last appended timestamp.
func (ix *Index) Append(v []float32, t int64) error {
	if n := len(ix.times); n > 0 && t < ix.times[n-1] {
		return fmt.Errorf("sf: timestamp %d precedes last timestamp %d", t, ix.times[n-1])
	}
	if _, err := ix.store.Append(v); err != nil {
		return err
	}
	ix.times = append(ix.times, t)
	return nil
}

// BuildGraph (re)builds the proximity graph over all appended vectors.
// seed drives the builder's randomization for reproducibility.
func (ix *Index) BuildGraph(seed int64) {
	n := ix.store.Len()
	view := vec.View{Store: ix.store, Lo: 0, Hi: n, Metric: ix.metric}
	ix.g = ix.builder.Build(view, seed)
	ix.built = n
}

// Restore installs a previously serialized graph covering built vectors.
func (ix *Index) Restore(g *graph.CSR, built int) error {
	if built > ix.store.Len() {
		return fmt.Errorf("sf: restored graph covers %d vectors but store has %d", built, ix.store.Len())
	}
	if g.NumNodes() != built {
		return fmt.Errorf("sf: restored graph has %d nodes, want %d", g.NumNodes(), built)
	}
	ix.g = g
	ix.built = built
	return nil
}

// Search returns approximately the k nearest neighbors to q among vectors
// with timestamps in [ts, te), ordered by ascending distance, with global
// insertion indices as IDs. p tunes the Algorithm 2 traversal; rng picks
// the random entry vertex (line 1) and must not be shared across
// goroutines.
func (ix *Index) Search(q []float32, k int, ts, te int64, p graph.SearchParams, rng *rand.Rand) []theap.Neighbor {
	var fromGraph []theap.Neighbor
	if ix.g != nil && ix.built > 0 {
		view := vec.View{Store: ix.store, Lo: 0, Hi: ix.built, Metric: ix.metric}
		filter := func(local int32) bool {
			t := ix.times[local]
			return t >= ts && t < te
		}
		s := ix.searchers.Get().(*graph.Searcher)
		fromGraph = s.Search(ix.g, view, q, k, filter, p, graph.RandomEntry(rng, ix.built))
		ix.searchers.Put(s)
	}
	// Tail scan over vectors the graph does not cover yet.
	tailLo, tailHi := ix.built, ix.store.Len()
	var fromTail []theap.Neighbor
	if tailLo < tailHi {
		lo, hi := windowWithin(ix.times, tailLo, tailHi, ts, te)
		if lo < hi {
			fromTail = scanGlobal(ix.store, ix.metric, q, k, lo, hi)
		}
	}
	if fromTail == nil {
		return fromGraph
	}
	return theap.Merge(k, fromGraph, fromTail)
}

// windowWithin narrows [lo, hi) to timestamps in [ts, te) assuming times is
// sorted ascending.
func windowWithin(times []int64, lo, hi int, ts, te int64) (int, int) {
	for lo < hi && times[lo] < ts {
		lo++
	}
	for hi > lo && times[hi-1] >= te {
		hi--
	}
	return lo, hi
}

// scanGlobal brute-forces rows [lo, hi) returning global ids.
func scanGlobal(store *vec.Store, metric vec.Metric, q []float32, k int, lo, hi int) []theap.Neighbor {
	top := theap.NewTopK(k)
	for i := lo; i < hi; i++ {
		top.Push(theap.Neighbor{ID: int32(i), Dist: vec.Distance(metric, q, store.At(i))})
	}
	return top.Items()
}
