// Package sf implements the paper's second baseline, Search and Filtering
// (§3.2.2): one proximity graph over the whole database, traversed with
// Algorithm 2, filtering results to the query's time window and continuing
// until k in-window vectors are found. SF is strong for long windows (it
// degenerates to plain graph kNN) and weak for short ones, where almost
// every visited vector is filtered out.
package sf

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bsbf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Index is a whole-database proximity graph with time-filtered search.
//
// Append is single-writer. BuildGraph (re)indexes everything appended so
// far; vectors appended after the last BuildGraph are covered by a
// brute-force tail scan so that results stay complete between rebuilds.
// Search is safe for concurrent use once a graph is built.
type Index struct {
	store   *vec.Store
	times   []int64
	metric  vec.Metric
	builder graph.Builder

	g     *graph.CSR
	built int // vectors covered by g
}

// New returns an empty SF index. builder constructs the proximity graph
// (NNDescent in the paper's setup).
func New(dim int, metric vec.Metric, builder graph.Builder) *Index {
	return &Index{store: vec.NewStore(dim), metric: metric, builder: builder}
}

// Len returns the number of appended vectors.
func (ix *Index) Len() int { return ix.store.Len() }

// Built returns how many vectors the current graph covers.
func (ix *Index) Built() int { return ix.built }

// Metric returns the index's distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// Graph exposes the current proximity graph (nil before the first
// BuildGraph); used by the persistence layer and tests.
func (ix *Index) Graph() *graph.CSR { return ix.g }

// Store exposes the backing vector store for persistence.
func (ix *Index) Store() *vec.Store { return ix.store }

// Times exposes the timestamp slice for persistence. Read-only.
func (ix *Index) Times() []int64 { return ix.times }

// Append adds a timestamped vector without touching the graph. The
// timestamp must be >= the last appended timestamp.
func (ix *Index) Append(v []float32, t int64) error {
	if n := len(ix.times); n > 0 && t < ix.times[n-1] {
		return fmt.Errorf("sf: timestamp %d precedes last timestamp %d", t, ix.times[n-1])
	}
	if _, err := ix.store.Append(v); err != nil {
		return err
	}
	ix.times = append(ix.times, t)
	return nil
}

// BuildGraph (re)builds the proximity graph over all appended vectors.
// seed drives the builder's randomization for reproducibility.
func (ix *Index) BuildGraph(seed int64) {
	n := ix.store.Len()
	view := vec.View{Store: ix.store, Lo: 0, Hi: n, Metric: ix.metric}
	ix.g = ix.builder.Build(view, seed)
	ix.built = n
}

// Restore installs a previously serialized graph covering built vectors.
func (ix *Index) Restore(g *graph.CSR, built int) error {
	if built > ix.store.Len() {
		return fmt.Errorf("sf: restored graph covers %d vectors but store has %d", built, ix.store.Len())
	}
	if g.NumNodes() != built {
		return fmt.Errorf("sf: restored graph has %d nodes, want %d", g.NumNodes(), built)
	}
	ix.g = g
	ix.built = built
	return nil
}

// Search returns approximately the k nearest neighbors to q among vectors
// with timestamps in [ts, te), ordered by ascending distance, with global
// insertion indices as IDs. p tunes the Algorithm 2 traversal; rng picks
// the random entry vertex (line 1) and must not be shared across
// goroutines.
func (ix *Index) Search(q []float32, k int, ts, te int64, p graph.SearchParams, rng *rand.Rand) []theap.Neighbor {
	var entry int32
	if ix.g != nil && ix.built > 0 {
		entry = graph.RandomEntry(rng, ix.built)
	}
	res, _ := ix.SearchContext(context.Background(), q, k, ts, te, p, entry, exec.Executor{Workers: 1})
	return res
}

// SearchContext answers the query through the shared executor. The caller
// supplies the graph entry vertex (drawn at plan time, so results are
// identical for every worker count) and the executor to run on; subtasks
// never start after ctx is done and expiry yields partial results tagged
// in the outcome. It borrows a pooled scratch and copies the results out.
func (ix *Index) SearchContext(ctx context.Context, q []float32, k int, ts, te int64, p graph.SearchParams, entry int32, x exec.Executor) ([]theap.Neighbor, exec.Outcome) {
	scr := exec.GetScratch()
	planStart := time.Now()
	plan := exec.Plan{K: k, Query: q, Subtasks: scr.Subtasks[:0]}
	scr.Entries = scr.Entries[:0]
	ix.planInto(&plan, scr, k, ts, te, p, entry)
	scr.Subtasks = plan.Subtasks[:0]
	planDur := time.Since(planStart)
	res, out := x.RunScratch(ctx, plan, scr)
	res = exec.CopyNeighbors(res)
	out = out.Detach()
	exec.PutScratch(scr)
	out.Select = planDur
	return res, out
}

// Plan translates the query into the shared executor's shape: one graph
// subtask over the built prefix (when a graph exists) plus one brute-scan
// subtask over the unbuilt tail's in-window run. The two cover disjoint
// global-id ranges.
func (ix *Index) Plan(q []float32, k int, ts, te int64, p graph.SearchParams, entry int32) exec.Plan {
	plan := exec.Plan{K: k, Query: q}
	if k <= 0 || ts >= te {
		return plan
	}
	ix.planInto(&plan, exec.NewScratch(), k, ts, te, p, entry)
	return plan
}

// planInto appends the query's subtasks to plan as data-only units: the
// executor's graph kernel traverses the built prefix with the query's time
// window as its admission filter, and the scan kernel covers the unbuilt
// tail. scr provides the entry-seed backing.
func (ix *Index) planInto(plan *exec.Plan, scr *exec.Scratch, k int, ts, te int64, p graph.SearchParams, entry int32) {
	if k <= 0 || ts >= te {
		return
	}
	if ix.g != nil && ix.built > 0 {
		seed := len(scr.Entries)
		scr.Entries = append(scr.Entries, entry)
		plan.Subtasks = append(plan.Subtasks, exec.Subtask{
			Kind: exec.GraphSearch, Lo: 0, Hi: ix.built,
			WindowStart: ix.times[0], WindowEnd: ix.times[ix.built-1] + 1,
			Store: ix.store, Metric: ix.metric,
			Graph: ix.g, Params: p,
			Entries: scr.Entries[seed : seed+1 : seed+1],
			Times:   ix.times[:ix.built], Ts: ts, Te: te,
		})
	}
	// Tail scan over vectors the graph does not cover yet.
	if tailLo, tailHi := ix.built, ix.store.Len(); tailLo < tailHi {
		lo, hi := bsbf.WindowOf(ix.times[tailLo:tailHi], ts, te)
		lo, hi = tailLo+lo, tailLo+hi
		if lo < hi {
			plan.Subtasks = append(plan.Subtasks, exec.Subtask{
				Kind: exec.BruteScan, Lo: lo, Hi: hi,
				WindowStart: ix.times[lo], WindowEnd: ix.times[hi-1] + 1,
				Store: ix.store, Metric: ix.metric, ScanLo: lo, ScanHi: hi,
			})
		}
	}
}
