package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestFormatGolden pins the serialized bytes of a fixed small index. If
// this fails you have changed the on-disk format: either revert the
// accidental change, or — for a deliberate format change — bump the
// format version constant, update the hash here, and note the migration
// in the package comment. Everything feeding this hash is deterministic:
// seeded math/rand, distance-sorted adjacency, IEEE float32 arithmetic.
func TestFormatGolden(t *testing.T) {
	ix := buildMBI(t, 45)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	got := hex.EncodeToString(sum[:])
	// Version 4: per-block location bytes for tiered storage (bumped from
	// version 3, hash
	// 54e983150a9251d32fb2e03ec0f27012cafb6c90c2e05c21fe80589e75d1549c;
	// version 2 was
	// bc0c0c83a06eca4422b53009b9066151349a32280d1d345a8eb3dfa63fc74557;
	// version 1 was
	// 1e85c57c3793aa62869fece26c1fafbecb7b2b154ee7a58ebbc3a46ea955968a).
	const want = "e0dbf0494e78f243d0fcef2f5f1bf8cb9594de7a61218ede93bf5690be25f5fb"
	if got != want {
		t.Fatalf("serialized format changed: sha256 = %s (was %s); see comment above", got, want)
	}
}
