package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestFormatGolden pins the serialized bytes of a fixed small index. If
// this fails you have changed the on-disk format: either revert the
// accidental change, or — for a deliberate format change — bump the
// format version constant, update the hash here, and note the migration
// in the package comment. Everything feeding this hash is deterministic:
// seeded math/rand, distance-sorted adjacency, IEEE float32 arithmetic.
func TestFormatGolden(t *testing.T) {
	ix := buildMBI(t, 45)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	got := hex.EncodeToString(sum[:])
	// Version 3: optional per-block SQ8 codes sections (bumped from
	// version 2, hash
	// bc0c0c83a06eca4422b53009b9066151349a32280d1d345a8eb3dfa63fc74557;
	// version 1 was
	// 1e85c57c3793aa62869fece26c1fafbecb7b2b154ee7a58ebbc3a46ea955968a).
	const want = "54e983150a9251d32fb2e03ec0f27012cafb6c90c2e05c21fe80589e75d1549c"
	if got != want {
		t.Fatalf("serialized format changed: sha256 = %s (was %s); see comment above", got, want)
	}
}
