package persist

import (
	"bufio"
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/sq"
	"repro/internal/vec"
)

// saveMBIOld serializes ix in the pre-v3 MBI format: no per-block codes
// presence byte. It reproduces the old writer byte-for-byte (ver 2 CRC
// footer included, ver 1 footerless), so the legacy-load tests exercise
// exactly the files old binaries produced.
func saveMBIOld(t *testing.T, ix *core.Index, ver uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	cw := &crcWriter{w: bw}
	store := ix.Store()
	times := ix.Times()
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(writeInts(cw, uint64(magic), uint64(ver)))
	check(binaryWrite(cw, kindMBI, uint8(ix.Options().Metric), uint32(store.Dim()), uint64(len(times))))
	check(writeData(cw, store, times))
	blocks := ix.Blocks()
	forest := ix.Forest()
	check(writeInts(cw, uint64(ix.Options().LeafSize), uint64(ix.OpenLo()), uint64(len(blocks)), uint64(len(forest))))
	for _, root := range forest {
		check(writeInts(cw, uint64(root)))
	}
	for _, b := range blocks {
		check(writeInts(cw, uint64(b.Lo), uint64(b.Hi), uint64(b.Height)))
		check(writeGraph(cw, b.Graph))
	}
	if ver >= crcVersion {
		check(writeFooter(bw, cw.sum))
	}
	check(bw.Flush())
	return buf.Bytes()
}

// saveMBIv3 serializes ix in the version-3 MBI format: per-block codes
// presence byte, no location byte. Byte-exact with the v3 writer so the
// legacy-load test exercises files v3 binaries produced.
func saveMBIv3(t *testing.T, ix *core.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	cw := &crcWriter{w: bw}
	store := ix.Store()
	times := ix.Times()
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(writeInts(cw, uint64(magic), uint64(minCodeVersion)))
	check(binaryWrite(cw, kindMBI, uint8(ix.Options().Metric), uint32(store.Dim()), uint64(len(times))))
	check(writeData(cw, store, times))
	blocks := ix.Blocks()
	forest := ix.Forest()
	check(writeInts(cw, uint64(ix.Options().LeafSize), uint64(ix.OpenLo()), uint64(len(blocks)), uint64(len(forest))))
	for _, root := range forest {
		check(writeInts(cw, uint64(root)))
	}
	for _, b := range blocks {
		check(writeInts(cw, uint64(b.Lo), uint64(b.Hi), uint64(b.Height)))
		check(writeGraph(cw, b.Graph))
		check(writeCodes(cw, b.Codes))
	}
	check(writeFooter(bw, cw.sum))
	check(bw.Flush())
	return buf.Bytes()
}

// buildCompressedMBI is buildMBI with SQ8 compression on every sealed
// block.
func buildCompressedMBI(t *testing.T, n int) *core.Index {
	t.Helper()
	opts := core.Options{
		Dim: 6, Metric: vec.Euclidean, LeafSize: 8, Tau: 0.5,
		Builder: nndescent.MustNew(nndescent.DefaultConfig(4)),
		Search:  graph.SearchParams{MC: 16, Eps: 1.2}, Seed: 3,
		Compression: sq.SQ8,
	}
	ix, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	v := make([]float32, 6)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

// TestLegacyV2Loads feeds the loader a byte-exact version-2 file (CRC
// footer, no codes sections) and checks it restores and searches flat.
func TestLegacyV2Loads(t *testing.T) {
	ix := buildMBI(t, 45)
	raw := saveMBIOld(t, ix, crcVersion)
	got, err := LoadMBI(bytes.NewReader(raw), ix.Options())
	if err != nil {
		t.Fatalf("LoadMBI rejected a version-2 file: %v", err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, b := range got.Blocks() {
		if b.Codes != nil {
			t.Fatal("version-2 file restored with codes")
		}
	}
	q := make([]float32, 6)
	want, _ := ix.SearchContext(context.Background(), q, 5, 0, 1<<40)
	have, _ := got.SearchContext(context.Background(), q, 5, 0, 1<<40)
	if len(want) != len(have) {
		t.Fatalf("loaded index found %d results, want %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("result %d: loaded %v, original %v", i, have[i], want[i])
		}
	}
}

// TestLegacyV3Loads feeds the loader a byte-exact version-3 file (codes
// presence bytes, no location bytes) and checks codes and search results
// survive the load.
func TestLegacyV3Loads(t *testing.T) {
	ix := buildCompressedMBI(t, 45)
	raw := saveMBIv3(t, ix)
	got, err := LoadMBI(bytes.NewReader(raw), ix.Options())
	if err != nil {
		t.Fatalf("LoadMBI rejected a version-3 file: %v", err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	orig := ix.Blocks()
	hasCodes := false
	for i, b := range got.Blocks() {
		if b.Spilled {
			t.Fatal("version-3 file restored with spilled blocks")
		}
		if (b.Codes == nil) != (orig[i].Codes == nil) {
			t.Fatalf("block %d: codes presence changed across v3 load", i)
		}
		if b.Codes != nil {
			hasCodes = true
			if !bytes.Equal(b.Codes.Data, orig[i].Codes.Data) {
				t.Fatalf("block %d: codes not byte-identical after v3 load", i)
			}
		}
	}
	if !hasCodes {
		t.Fatal("test index built no codes")
	}
	q := make([]float32, 6)
	want, _ := ix.SearchContext(context.Background(), q, 5, 0, 1<<40)
	have, _ := got.SearchContext(context.Background(), q, 5, 0, 1<<40)
	if len(want) != len(have) {
		t.Fatalf("loaded index found %d results, want %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("result %d: loaded %v, original %v", i, have[i], want[i])
		}
	}
}

// TestCompressedRoundTrip checks that a compressed index's codes survive
// serialization byte-identically (the CRC footer covers them) and the
// restored index answers compressed queries like the original.
func TestCompressedRoundTrip(t *testing.T) {
	ix := buildCompressedMBI(t, 45)
	orig := ix.Blocks()
	hasCodes := false
	for _, b := range orig {
		if b.Codes != nil {
			hasCodes = true
		}
	}
	if !hasCodes {
		t.Fatal("test index built no codes")
	}

	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	got, err := LoadMBI(bytes.NewReader(raw), ix.Options())
	if err != nil {
		t.Fatal(err)
	}
	loaded := got.Blocks()
	if len(loaded) != len(orig) {
		t.Fatalf("loaded %d blocks, want %d", len(loaded), len(orig))
	}
	for i := range orig {
		a, b := orig[i].Codes, loaded[i].Codes
		if (a == nil) != (b == nil) {
			t.Fatalf("block %d: codes presence changed across round trip", i)
		}
		if a == nil {
			continue
		}
		if a.Dim != b.Dim || a.N != b.N ||
			!bytes.Equal(a.Data, b.Data) ||
			!float32Equal(a.Min, b.Min) || !float32Equal(a.Step, b.Step) ||
			!float32Equal(a.Norms, b.Norms) {
			t.Fatalf("block %d: codes not byte-identical after round trip", i)
		}
	}

	q := make([]float32, 6)
	want, _ := ix.SearchContext(context.Background(), q, 5, 0, 1<<40)
	have, _ := got.SearchContext(context.Background(), q, 5, 0, 1<<40)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("result %d: loaded %v, original %v", i, have[i], want[i])
		}
	}

	// Corrupting one byte of the last block's codes section (it ends just
	// before the 8-byte footer) must trip the checksum, not load garbage.
	bad := append([]byte{}, raw...)
	bad[len(bad)-20] ^= 0x01
	if _, err := LoadMBI(bytes.NewReader(bad), ix.Options()); err == nil {
		t.Fatal("LoadMBI accepted a corrupted compressed file")
	}
}

func float32Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
