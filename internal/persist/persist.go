// Package persist serializes indexes to a versioned little-endian binary
// format. Besides durability (the satellite example saves and reloads its
// index), serialization is how the experiments measure index size: the
// "Index Sizes" of Table 4 and Figure 7b are the byte counts these
// encoders produce, covering vectors, timestamps, and every block graph.
//
// Format history: version 1 had no integrity check, so a truncated or
// bit-rotted file could deserialize into garbage. Version 2 appends an
// 8-byte footer — magic plus the CRC32C of every preceding byte — which
// the loaders verify before restoring. Version 3 follows each MBI block's
// graph with a presence byte and, when set, the block's SQ8 codes
// (per-dim quantizer parameters, 1-byte codes, cached norms), all inside
// the CRC envelope. Version-1 and version-2 files are still read; they
// simply restore with no codes, searching flat.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sf"
	"repro/internal/sq"
	"repro/internal/vec"
)

// Format constants.
const (
	magic = uint32(0x4d424958) // "MBIX"
	// version 4 added a per-block location byte so spilled blocks persist
	// as segment references instead of inline payloads; version 3 added
	// optional per-block SQ8 codes; version 2 appended the CRC32C footer.
	// All predecessors remain readable.
	version         = uint32(4)
	crcVersion      = uint32(2)
	legacyVersion   = uint32(1)
	minCodeVersion  = uint32(3) // first version carrying per-block codes
	minSpillVersion = uint32(4) // first version carrying per-block location bytes

	// Per-block location byte values (v4+).
	locInline  = uint8(0) // graph (+codes) follow inline
	locSpilled = uint8(1) // payload lives in the block's segment file; u64 size follows

	kindMBI = uint8(0)
	kindSF  = uint8(1)

	footerMagic = uint32(0x4d424946) // "MBIF"
)

var order = binary.LittleEndian

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcWriter hashes everything written through it with CRC32C, so the
// footer can vouch for the exact bytes on disk.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	if fault.Enabled {
		// Injection point persist.write: every snapshot byte funnels
		// through this writer, so an Error/Truncate rule models a disk
		// that gave out mid-serialization.
		if keep, ferr := fault.Cut("persist.write", len(p)); ferr != nil {
			n, _ := c.w.Write(p[:keep])
			c.sum = crc32.Update(c.sum, castagnoli, p[:n])
			return n, ferr
		}
	}
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, castagnoli, p[:n])
	return n, err
}

// crcReader hashes exactly the bytes the parser consumes. It must sit
// ON TOP of the bufio reader, not under it: bufio reads ahead, and
// read-ahead bytes (including the footer itself) must not enter the sum.
type crcReader struct {
	r   io.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	if fault.Enabled {
		// Injection point persist.read: a failed read while restoring a
		// snapshot — the WAL manager must fall back to an older
		// checkpoint (or the full log) instead of dying.
		if err := fault.Hit("persist.read"); err != nil {
			return 0, err
		}
	}
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, castagnoli, p[:n])
	return n, err
}

// writeFooter appends the integrity footer: magic + CRC32C of every
// preceding byte. Written past the crcWriter — the footer does not hash
// itself.
func writeFooter(w io.Writer, sum uint32) error {
	return binaryWrite(w, footerMagic, sum)
}

// verifyFooter checks the integrity footer against the bytes the parser
// consumed. Version-1 files predate the footer and are accepted as-is;
// a version-2 file with a missing or mismatched footer was truncated or
// corrupted and fails loudly.
func verifyFooter(ver uint32, r io.Reader, sum uint32) error {
	if ver < 2 {
		return nil
	}
	var m, want uint32
	if err := binaryRead(r, &m, &want); err != nil {
		return fmt.Errorf("persist: reading integrity footer (file truncated?): %w", err)
	}
	if m != footerMagic {
		return fmt.Errorf("persist: bad footer magic %#x (file truncated?)", m)
	}
	if sum != want {
		return fmt.Errorf("persist: checksum mismatch: file says %#x, content hashes to %#x", want, sum)
	}
	return nil
}

// SaveMBI writes ix to w. Outstanding asynchronous merges are flushed
// first so the file is always quiescent (restorable).
func SaveMBI(w io.Writer, ix *core.Index) error {
	ix.Flush()
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	store := ix.Store()
	times := ix.Times()
	if err := writeHeader(cw, kindMBI, ix.Options().Metric, store.Dim(), len(times)); err != nil {
		return err
	}
	if err := writeData(cw, store, times); err != nil {
		return err
	}
	opts := ix.Options()
	blocks := ix.Blocks()
	forest := ix.Forest()
	if err := writeInts(cw, uint64(opts.LeafSize), uint64(ix.OpenLo()), uint64(len(blocks)), uint64(len(forest))); err != nil {
		return err
	}
	for _, root := range forest {
		if err := writeInts(cw, uint64(root)); err != nil {
			return err
		}
	}
	for _, b := range blocks {
		if err := writeInts(cw, uint64(b.Lo), uint64(b.Hi), uint64(b.Height)); err != nil {
			return err
		}
		if b.Spilled {
			// Spilled block: the snapshot records a segment reference,
			// not the payload — recovery composes snapshot + segment
			// files + WAL suffix. The spill happened before this
			// snapshot was cut (checkpoint orders it), so the segment
			// is already durable.
			if err := binaryWrite(cw, locSpilled); err != nil {
				return err
			}
			if err := writeInts(cw, uint64(b.SegBytes)); err != nil {
				return err
			}
			continue
		}
		if err := binaryWrite(cw, locInline); err != nil {
			return err
		}
		if err := writeGraph(cw, b.Graph); err != nil {
			return err
		}
		if err := writeCodes(cw, b.Codes); err != nil {
			return err
		}
	}
	if err := writeFooter(bw, cw.sum); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadMBI reads an MBI index from r. opts supplies everything the format
// does not carry (builder, τ, search defaults, workers, seed); its Dim,
// Metric, and LeafSize must match the file.
func LoadMBI(r io.Reader, opts core.Options) (*core.Index, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	ver, metric, dim, n, err := readHeader(cr, kindMBI)
	if err != nil {
		return nil, err
	}
	if opts.Dim != dim {
		return nil, fmt.Errorf("persist: file has dim %d, options say %d", dim, opts.Dim)
	}
	if opts.Metric != metric {
		return nil, fmt.Errorf("persist: file has metric %v, options say %v", metric, opts.Metric)
	}
	store, times, err := readData(cr, dim, n)
	if err != nil {
		return nil, err
	}
	var leafSize, openLo, numBlocks, numForest uint64
	if err := readInts(cr, &leafSize, &openLo, &numBlocks, &numForest); err != nil {
		return nil, err
	}
	if opts.LeafSize != int(leafSize) {
		return nil, fmt.Errorf("persist: file has leaf size %d, options say %d", leafSize, opts.LeafSize)
	}
	if numBlocks > uint64(n)+1 || numForest > numBlocks {
		return nil, fmt.Errorf("persist: implausible block counts (%d blocks, %d roots, %d vectors)", numBlocks, numForest, n)
	}
	// Grown by append rather than count-sized make: the counts are
	// untrusted (see readFloat32Slice).
	forest := make([]int, 0, minInt(int(numForest), readChunk))
	for i := uint64(0); i < numForest; i++ {
		var v uint64
		if err := readInts(cr, &v); err != nil {
			return nil, err
		}
		forest = append(forest, int(v))
	}
	blocks := make([]core.Block, 0, minInt(int(numBlocks), readChunk))
	for i := uint64(0); i < numBlocks; i++ {
		var lo, hi, height uint64
		if err := readInts(cr, &lo, &hi, &height); err != nil {
			return nil, err
		}
		loc := locInline
		if ver >= minSpillVersion {
			if err := binaryRead(cr, &loc); err != nil {
				return nil, err
			}
		}
		b := core.Block{Lo: int(lo), Hi: int(hi), Height: int(height)}
		switch loc {
		case locSpilled:
			var segBytes uint64
			if err := readInts(cr, &segBytes); err != nil {
				return nil, err
			}
			b.Spilled = true
			b.SegBytes = int64(segBytes)
		case locInline:
			g, err := readGraph(cr)
			if err != nil {
				return nil, err
			}
			b.Graph = g
			if ver >= minCodeVersion {
				if b.Codes, err = readCodes(cr); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("persist: bad block location byte %d", loc)
		}
		blocks = append(blocks, b)
	}
	// Footer first: don't hand Restore bytes the checksum disowns. Read
	// from br, past the crcReader — the footer does not hash itself.
	if err := verifyFooter(ver, br, cr.sum); err != nil {
		return nil, err
	}
	return core.Restore(opts, store, times, blocks, forest, int(openLo))
}

// SaveSF writes ix to w. The index must have a built graph.
func SaveSF(w io.Writer, ix *sf.Index) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	store := ix.Store()
	times := ix.Times()
	if err := writeHeader(cw, kindSF, ix.Metric(), store.Dim(), len(times)); err != nil {
		return err
	}
	if err := writeData(cw, store, times); err != nil {
		return err
	}
	if err := writeInts(cw, uint64(ix.Built())); err != nil {
		return err
	}
	g := ix.Graph()
	if g == nil {
		g = &graph.CSR{Off: []int32{0}}
	}
	if err := writeGraph(cw, g); err != nil {
		return err
	}
	if err := writeFooter(bw, cw.sum); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSF reads an SF index from r; builder is re-attached for future
// rebuilds.
func LoadSF(r io.Reader, builder graph.Builder) (*sf.Index, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	ver, metric, dim, n, err := readHeader(cr, kindSF)
	if err != nil {
		return nil, err
	}
	store, times, err := readData(cr, dim, n)
	if err != nil {
		return nil, err
	}
	ix := sf.New(dim, metric, builder)
	for i := 0; i < n; i++ {
		if err := ix.Append(store.At(i), times[i]); err != nil {
			return nil, err
		}
	}
	var built uint64
	if err := readInts(cr, &built); err != nil {
		return nil, err
	}
	g, err := readGraph(cr)
	if err != nil {
		return nil, err
	}
	if err := verifyFooter(ver, br, cr.sum); err != nil {
		return nil, err
	}
	if built > 0 || g.NumNodes() > 0 {
		if err := ix.Restore(g, int(built)); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// SizeMBI returns the serialized byte size of ix without materializing it.
func SizeMBI(ix *core.Index) (int64, error) {
	var c countingWriter
	if err := SaveMBI(&c, ix); err != nil {
		return 0, err
	}
	return c.n, nil
}

// SizeSF returns the serialized byte size of ix without materializing it.
func SizeSF(ix *sf.Index) (int64, error) {
	var c countingWriter
	if err := SaveSF(&c, ix); err != nil {
		return 0, err
	}
	return c.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func writeHeader(w io.Writer, kind uint8, metric vec.Metric, dim, n int) error {
	if err := writeInts(w, uint64(magic), uint64(version)); err != nil {
		return err
	}
	return binaryWrite(w, kind, uint8(metric), uint32(dim), uint64(n))
}

func readHeader(r io.Reader, wantKind uint8) (uint32, vec.Metric, int, int, error) {
	var m, v uint64
	if err := readInts(r, &m, &v); err != nil {
		return 0, 0, 0, 0, err
	}
	if uint32(m) != magic {
		return 0, 0, 0, 0, fmt.Errorf("persist: bad magic %#x", m)
	}
	if uint32(v) < legacyVersion || uint32(v) > version {
		return 0, 0, 0, 0, fmt.Errorf("persist: unsupported version %d", v)
	}
	var kind, metric uint8
	var dim uint32
	var n uint64
	if err := binaryRead(r, &kind, &metric, &dim, &n); err != nil {
		return 0, 0, 0, 0, err
	}
	if kind != wantKind {
		return 0, 0, 0, 0, fmt.Errorf("persist: file holds index kind %d, want %d", kind, wantKind)
	}
	if !vec.Metric(metric).Valid() {
		return 0, 0, 0, 0, fmt.Errorf("persist: invalid metric %d", metric)
	}
	if dim == 0 || dim > 1<<20 {
		return 0, 0, 0, 0, fmt.Errorf("persist: implausible dimension %d", dim)
	}
	if n > 1<<40 {
		return 0, 0, 0, 0, fmt.Errorf("persist: implausible vector count %d", n)
	}
	return uint32(v), vec.Metric(metric), int(dim), int(n), nil
}

func writeData(w io.Writer, store *vec.Store, times []int64) error {
	if err := binary.Write(w, order, times); err != nil {
		return err
	}
	return binary.Write(w, order, store.Raw())
}

func readData(r io.Reader, dim, n int) (*vec.Store, []int64, error) {
	times, err := readInt64Slice(r, n)
	if err != nil {
		return nil, nil, err
	}
	buf, err := readFloat32Slice(r, n*dim)
	if err != nil {
		return nil, nil, err
	}
	store, err := vec.FromRaw(dim, buf)
	if err != nil {
		return nil, nil, err
	}
	return store, times, nil
}

// Counts in a file are untrusted: a corrupt header must not trigger a
// count-sized allocation. These readers grow their buffers in bounded
// chunks, so a truncated or garbage file fails at the first missing byte
// having allocated at most one chunk too many.
const readChunk = 1 << 20 // elements per chunk

func readFloat32Slice(r io.Reader, n int) ([]float32, error) {
	out := make([]float32, 0, minInt(n, readChunk))
	for len(out) < n {
		c := minInt(n-len(out), readChunk)
		chunk := make([]float32, c)
		if err := binary.Read(r, order, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readInt64Slice(r io.Reader, n int) ([]int64, error) {
	out := make([]int64, 0, minInt(n, readChunk))
	for len(out) < n {
		c := minInt(n-len(out), readChunk)
		chunk := make([]int64, c)
		if err := binary.Read(r, order, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readInt32Slice(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, minInt(n, readChunk))
	for len(out) < n {
		c := minInt(n-len(out), readChunk)
		chunk := make([]int32, c)
		if err := binary.Read(r, order, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func writeGraph(w io.Writer, g *graph.CSR) error {
	if err := writeInts(w, uint64(len(g.Off)), uint64(len(g.Adj))); err != nil {
		return err
	}
	if err := binary.Write(w, order, g.Off); err != nil {
		return err
	}
	return binary.Write(w, order, g.Adj)
}

func readGraph(r io.Reader) (*graph.CSR, error) {
	var nOff, nAdj uint64
	if err := readInts(r, &nOff, &nAdj); err != nil {
		return nil, err
	}
	if nOff > 1<<40 || nAdj > 1<<40 {
		return nil, fmt.Errorf("persist: implausible graph sizes (%d offsets, %d edges)", nOff, nAdj)
	}
	off, err := readInt32Slice(r, int(nOff))
	if err != nil {
		return nil, err
	}
	adj, err := readInt32Slice(r, int(nAdj))
	if err != nil {
		return nil, err
	}
	g := &graph.CSR{Off: off, Adj: adj}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return g, nil
}

// writeCodes serializes a block's optional SQ8 section: a presence byte,
// then — when present — the code dimensions followed by the quantizer
// parameters, the packed codes, and the cached norms. All of it flows
// through the caller's crcWriter, so the existing footer vouches for the
// codes byte-for-byte.
func writeCodes(w io.Writer, c *sq.Codes) error {
	if c == nil {
		return binaryWrite(w, uint8(0))
	}
	if err := binaryWrite(w, uint8(1)); err != nil {
		return err
	}
	if err := writeInts(w, uint64(c.Dim), uint64(c.N)); err != nil {
		return err
	}
	if err := binary.Write(w, order, c.Min); err != nil {
		return err
	}
	if err := binary.Write(w, order, c.Step); err != nil {
		return err
	}
	if _, err := w.Write(c.Data); err != nil {
		return err
	}
	return binary.Write(w, order, c.Norms)
}

// readCodes reads the optional SQ8 section written by writeCodes. The
// counts are untrusted (chunked reads); the decoded structure is validated
// before use so a corrupt-but-CRC-passing section still cannot produce an
// inconsistent quantizer.
func readCodes(r io.Reader) (*sq.Codes, error) {
	var present uint8
	if err := binaryRead(r, &present); err != nil {
		return nil, err
	}
	switch present {
	case 0:
		return nil, nil
	case 1:
	default:
		return nil, fmt.Errorf("persist: bad codes presence byte %d", present)
	}
	var dim, n uint64
	if err := readInts(r, &dim, &n); err != nil {
		return nil, err
	}
	if dim == 0 || dim > 1<<20 || n > 1<<40 {
		return nil, fmt.Errorf("persist: implausible code sizes (dim %d, %d rows)", dim, n)
	}
	c := &sq.Codes{Dim: int(dim), N: int(n)}
	var err error
	if c.Min, err = readFloat32Slice(r, int(dim)); err != nil {
		return nil, err
	}
	if c.Step, err = readFloat32Slice(r, int(dim)); err != nil {
		return nil, err
	}
	if c.Data, err = readUint8Slice(r, int(dim)*int(n)); err != nil {
		return nil, err
	}
	if c.Norms, err = readFloat32Slice(r, int(n)); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return c, nil
}

func readUint8Slice(r io.Reader, n int) ([]uint8, error) {
	out := make([]uint8, 0, minInt(n, readChunk))
	for len(out) < n {
		c := minInt(n-len(out), readChunk)
		chunk := make([]uint8, c)
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func writeInts(w io.Writer, vs ...uint64) error {
	for _, v := range vs {
		if err := binary.Write(w, order, v); err != nil {
			return err
		}
	}
	return nil
}

func readInts(r io.Reader, vs ...*uint64) error {
	for _, v := range vs {
		if err := binary.Read(r, order, v); err != nil {
			return err
		}
	}
	return nil
}

func binaryWrite(w io.Writer, vs ...any) error {
	for _, v := range vs {
		if err := binary.Write(w, order, v); err != nil {
			return err
		}
	}
	return nil
}

func binaryRead(r io.Reader, vs ...any) error {
	for _, v := range vs {
		if err := binary.Read(r, order, v); err != nil {
			return err
		}
	}
	return nil
}
