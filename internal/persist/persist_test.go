package persist

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/sf"
	"repro/internal/vec"
)

func buildMBI(t *testing.T, n int) *core.Index {
	t.Helper()
	opts := core.Options{
		Dim: 6, Metric: vec.Euclidean, LeafSize: 8, Tau: 0.5,
		Builder: nndescent.MustNew(nndescent.DefaultConfig(4)),
		Search:  graph.SearchParams{MC: 16, Eps: 1.2}, Seed: 3,
	}
	ix, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	v := make([]float32, 6)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestMBIRoundTrip(t *testing.T) {
	ix := buildMBI(t, 45) // several blocks plus a partial open leaf
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMBI(&buf, ix.Options())
	if err != nil {
		t.Fatal(err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got.Len() != ix.Len() {
		t.Fatalf("len %d, want %d", got.Len(), ix.Len())
	}
	// Deep equality of blocks and data.
	a, b := ix.Blocks(), got.Blocks()
	if len(a) != len(b) {
		t.Fatalf("%d blocks, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Lo != b[i].Lo || a[i].Hi != b[i].Hi || a[i].Height != b[i].Height {
			t.Fatalf("block %d metadata differs", i)
		}
		if !equalInt32(a[i].Graph.Off, b[i].Graph.Off) || !equalInt32(a[i].Graph.Adj, b[i].Graph.Adj) {
			t.Fatalf("block %d graph differs", i)
		}
	}
	if !equalInt(ix.Forest(), got.Forest()) {
		t.Fatal("forest differs")
	}
	if got.OpenLo() != ix.OpenLo() {
		t.Fatalf("openLo %d, want %d", got.OpenLo(), ix.OpenLo())
	}
	for i := 0; i < ix.Len(); i++ {
		av, bv := ix.Store().At(i), got.Store().At(i)
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("vector %d differs", i)
			}
		}
		if ix.Times()[i] != got.Times()[i] {
			t.Fatalf("timestamp %d differs", i)
		}
	}
	// Loaded index keeps working: inserts cross a leaf boundary cleanly.
	v := make([]float32, 6)
	for i := 0; i < 20; i++ {
		if err := got.Append(v, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMBILoadRejectsMismatchedOptions(t *testing.T) {
	ix := buildMBI(t, 20)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	wrongDim := ix.Options()
	wrongDim.Dim = 7
	if _, err := LoadMBI(bytes.NewReader(buf.Bytes()), wrongDim); err == nil {
		t.Error("dim mismatch accepted")
	}
	wrongMetric := ix.Options()
	wrongMetric.Metric = vec.Angular
	if _, err := LoadMBI(bytes.NewReader(buf.Bytes()), wrongMetric); err == nil {
		t.Error("metric mismatch accepted")
	}
	wrongLeaf := ix.Options()
	wrongLeaf.LeafSize = 9
	if _, err := LoadMBI(bytes.NewReader(buf.Bytes()), wrongLeaf); err == nil {
		t.Error("leaf-size mismatch accepted")
	}
}

func TestMBILoadRejectsCorruption(t *testing.T) {
	ix := buildMBI(t, 20)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] ^= 0xff
	if _, err := LoadMBI(bytes.NewReader(bad), ix.Options()); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncation at every eighth of the file.
	for cut := 1; cut < 8; cut++ {
		trunc := raw[:len(raw)*cut/8]
		if _, err := LoadMBI(bytes.NewReader(trunc), ix.Options()); err == nil {
			t.Errorf("truncation at %d/8 accepted", cut)
		}
	}
	// SF loader must reject an MBI file.
	if _, err := LoadSF(bytes.NewReader(raw), nndescent.MustNew(nndescent.DefaultConfig(4))); err == nil {
		t.Error("SF loader accepted MBI file")
	}
}

func TestSFRoundTrip(t *testing.T) {
	builder := nndescent.MustNew(nndescent.DefaultConfig(6))
	ix := sf.New(5, vec.Angular, builder)
	rng := rand.New(rand.NewSource(2))
	v := make([]float32, 5)
	for i := 0; i < 120; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vec.Normalize(v)
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.BuildGraph(9)

	var buf bytes.Buffer
	if err := SaveSF(&buf, ix); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSF(&buf, builder)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 120 || got.Built() != 120 {
		t.Fatalf("len %d built %d", got.Len(), got.Built())
	}
	if !equalInt32(ix.Graph().Adj, got.Graph().Adj) {
		t.Fatal("graph differs after round trip")
	}
	if got.Metric() != vec.Angular {
		t.Fatalf("metric %v", got.Metric())
	}
}

func TestSFRoundTripUnbuilt(t *testing.T) {
	builder := nndescent.MustNew(nndescent.DefaultConfig(4))
	ix := sf.New(3, vec.Euclidean, builder)
	if err := ix.Append([]float32{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSF(&buf, ix); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSF(&buf, builder)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Built() != 0 {
		t.Fatalf("len %d built %d, want 1, 0", got.Len(), got.Built())
	}
}

func TestSizeMatchesEncoding(t *testing.T) {
	ix := buildMBI(t, 30)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	size, err := SizeMBI(ix)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(buf.Len()) {
		t.Errorf("SizeMBI = %d, encoded %d bytes", size, buf.Len())
	}
	// MBI stores log-many graph levels: size must exceed the raw data.
	raw := int64(ix.Len() * 6 * 4)
	if size <= raw {
		t.Errorf("index size %d not larger than raw data %d", size, raw)
	}
}

func TestSizeMBILargerThanSF(t *testing.T) {
	// Table 4's qualitative claim at matched data: MBI's index is larger
	// than SF's because it stores one graph per level.
	mbi := buildMBI(t, 64)
	builder := nndescent.MustNew(nndescent.DefaultConfig(4))
	sfIx := sf.New(6, vec.Euclidean, builder)
	for i := 0; i < 64; i++ {
		if err := sfIx.Append(mbi.Store().At(i), int64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	sfIx.BuildGraph(1)
	mbiSize, err := SizeMBI(mbi)
	if err != nil {
		t.Fatal(err)
	}
	sfSize, err := SizeSF(sfIx)
	if err != nil {
		t.Fatal(err)
	}
	if mbiSize <= sfSize {
		t.Errorf("MBI size %d <= SF size %d; multi-level graphs should cost more", mbiSize, sfSize)
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
