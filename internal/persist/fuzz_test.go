package persist

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// TestLoadNeverPanicsOnCorruptInput flips, truncates, and splices random
// bytes into valid index files and asserts the loaders always return an
// error or a valid index — never panic, never hang. This is the safety
// property a durable format must have: a torn write or disk corruption
// must not take the process down.
func TestLoadNeverPanicsOnCorruptInput(t *testing.T) {
	ix := buildMBI(t, 40)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(99))

	check := func(raw []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("LoadMBI panicked on corrupt input: %v", r)
			}
		}()
		got, err := LoadMBI(bytes.NewReader(raw), ix.Options())
		if err == nil && got != nil {
			// Rarely a mutation leaves the file valid; the result must
			// then be structurally sound.
			if invErr := got.CheckInvariants(); invErr != nil {
				t.Fatalf("loader accepted corrupt file with broken invariants: %v", invErr)
			}
		}
	}

	for trial := 0; trial < 300; trial++ {
		raw := append([]byte{}, valid...)
		switch trial % 4 {
		case 0: // flip 1-8 random bytes
			for f := 0; f <= rng.Intn(8); f++ {
				raw[rng.Intn(len(raw))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate at a random point
			raw = raw[:rng.Intn(len(raw))]
		case 2: // duplicate a random chunk into a random offset
			lo := rng.Intn(len(raw))
			hi := lo + rng.Intn(len(raw)-lo)
			at := rng.Intn(len(raw))
			raw = append(raw[:at], append(append([]byte{}, raw[lo:hi]...), raw[at:]...)...)
		case 3: // random garbage of the same length
			rng.Read(raw)
		}
		check(raw)
	}
}

// countTarget is the minimal wal.Target for replay fuzzing: it accepts
// everything and counts.
type countTarget struct{ n int }

func (c *countTarget) Add(v []float32, t int64) error { c.n++; return nil }
func (c *countTarget) Save(io.Writer) error           { return nil }
func (c *countTarget) Len() int                       { return c.n }

// TestWALRecordReplayNeverPanics extends the corrupt-input sweep to the
// WAL record format: mutate a valid segment the way torn writes and bit
// rot would and assert wal.Replay always returns an error or a
// self-consistent record count — never panics, never hangs. Durability
// holds only if both layers (snapshot files above, log records here)
// survive arbitrary corruption.
func TestWALRecordReplayNeverPanics(t *testing.T) {
	src := t.TempDir()
	m, err := wal.Open(wal.Config{Dir: src, Sync: wal.SyncNever},
		func(io.Reader) (wal.Target, error) { return &countTarget{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	v := make([]float32, 6)
	for i := 0; i < 40; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := m.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	segName := ""
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			segName = e.Name()
		}
	}
	if segName == "" {
		t.Fatal("no segment written")
	}
	valid, err := os.ReadFile(filepath.Join(src, segName))
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 300; trial++ {
		raw := append([]byte{}, valid...)
		switch trial % 4 {
		case 0: // flip 1-8 random bytes
			for f := 0; f <= rng.Intn(8); f++ {
				raw[rng.Intn(len(raw))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate at a random point
			raw = raw[:rng.Intn(len(raw))]
		case 2: // duplicate a random chunk into a random offset
			lo := rng.Intn(len(raw))
			hi := lo + rng.Intn(len(raw)-lo)
			at := rng.Intn(len(raw))
			raw = append(raw[:at], append(append([]byte{}, raw[lo:hi]...), raw[at:]...)...)
		case 3: // random garbage of the same length
			rng.Read(raw)
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("wal.Replay panicked on corrupt segment (trial %d): %v", trial, r)
				}
			}()
			var applied uint64
			stats, err := wal.Replay(dir, 0, func(seq uint64, ts int64, v []float32) error {
				applied++
				return nil
			})
			if err == nil && stats.Applied != applied {
				t.Fatalf("trial %d: stats say %d applied, callback saw %d", trial, stats.Applied, applied)
			}
		}()
	}
}

// TestLoadSFNeverPanics mirrors the MBI fuzz for the SF format.
func TestLoadSFNeverPanics(t *testing.T) {
	ix := buildMBI(t, 20) // reuse data via MBI, then save as garbage input source
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		raw := append([]byte{}, valid...)
		for f := 0; f <= rng.Intn(6); f++ {
			raw[rng.Intn(len(raw))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadSF panicked: %v", r)
				}
			}()
			// Any outcome but a panic is acceptable; kind mismatch is the
			// common path since this is an MBI file.
			_, _ = LoadSF(bytes.NewReader(raw), nil)
		}()
	}
}
