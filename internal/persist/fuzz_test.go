package persist

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestLoadNeverPanicsOnCorruptInput flips, truncates, and splices random
// bytes into valid index files and asserts the loaders always return an
// error or a valid index — never panic, never hang. This is the safety
// property a durable format must have: a torn write or disk corruption
// must not take the process down.
func TestLoadNeverPanicsOnCorruptInput(t *testing.T) {
	ix := buildMBI(t, 40)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(99))

	check := func(raw []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("LoadMBI panicked on corrupt input: %v", r)
			}
		}()
		got, err := LoadMBI(bytes.NewReader(raw), ix.Options())
		if err == nil && got != nil {
			// Rarely a mutation leaves the file valid; the result must
			// then be structurally sound.
			if invErr := got.CheckInvariants(); invErr != nil {
				t.Fatalf("loader accepted corrupt file with broken invariants: %v", invErr)
			}
		}
	}

	for trial := 0; trial < 300; trial++ {
		raw := append([]byte{}, valid...)
		switch trial % 4 {
		case 0: // flip 1-8 random bytes
			for f := 0; f <= rng.Intn(8); f++ {
				raw[rng.Intn(len(raw))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate at a random point
			raw = raw[:rng.Intn(len(raw))]
		case 2: // duplicate a random chunk into a random offset
			lo := rng.Intn(len(raw))
			hi := lo + rng.Intn(len(raw)-lo)
			at := rng.Intn(len(raw))
			raw = append(raw[:at], append(append([]byte{}, raw[lo:hi]...), raw[at:]...)...)
		case 3: // random garbage of the same length
			rng.Read(raw)
		}
		check(raw)
	}
}

// TestLoadSFNeverPanics mirrors the MBI fuzz for the SF format.
func TestLoadSFNeverPanics(t *testing.T) {
	ix := buildMBI(t, 20) // reuse data via MBI, then save as garbage input source
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		raw := append([]byte{}, valid...)
		for f := 0; f <= rng.Intn(6); f++ {
			raw[rng.Intn(len(raw))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadSF panicked: %v", r)
				}
			}()
			// Any outcome but a panic is acceptable; kind mismatch is the
			// common path since this is an MBI file.
			_, _ = LoadSF(bytes.NewReader(raw), nil)
		}()
	}
}
