package persist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sq"
)

// Per-block segment files: tiered storage spills one sealed block's
// payload (graph + optional SQ8 codes) into one independently loadable
// file, reusing the v3 block encoding inside its own CRC envelope.
//
// Layout (all little-endian, hashed by the footer's CRC32C):
//
//	u64 segMagic, u64 segVersion
//	u64 blockID, u64 lo, u64 hi, u64 height, u64 dim
//	graph   (writeGraph: off/adj lengths + data)
//	codes   (writeCodes: presence byte + payload)
//	u32 footerMagic, u32 crc32c   (past the hash, like the snapshot footer)
//
// Counts are untrusted on the way in — the chunked readers bound every
// allocation — and the decoded structures are cross-validated against
// the header (node count == hi-lo) before the payload is accepted, so a
// corrupt-but-CRC-passing segment still cannot reach a kernel.
const (
	segMagic   = uint64(0x4d424953) // "MBIS"
	segVersion = uint64(1)
)

// segFaultWriter routes segment bytes through the persist.segment.write
// injection point: a Truncate rule models the process dying (or the
// disk giving out) partway through a spill. It sits under the
// crcWriter so injected short writes corrupt the file exactly like a
// real torn write would.
type segFaultWriter struct {
	w io.Writer
}

func (s *segFaultWriter) Write(p []byte) (int, error) {
	if fault.Enabled {
		if keep, ferr := fault.Cut("persist.segment.write", len(p)); ferr != nil {
			n, _ := s.w.Write(p[:keep])
			return n, ferr
		}
	}
	return s.w.Write(p)
}

// WriteSegment encodes one block payload to w. id/lo/hi/height identify
// the block; dim is the index dimension (validated on load). g must be
// non-nil; codes may be nil.
func WriteSegment(w io.Writer, id, lo, hi, height, dim int, g *graph.CSR, codes *sq.Codes) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: &segFaultWriter{w: bw}}
	if err := writeInts(cw, segMagic, segVersion); err != nil {
		return err
	}
	if err := writeInts(cw, uint64(id), uint64(lo), uint64(hi), uint64(height), uint64(dim)); err != nil {
		return err
	}
	if err := writeGraph(cw, g); err != nil {
		return err
	}
	if err := writeCodes(cw, codes); err != nil {
		return err
	}
	// Footer past the hash, like the snapshot footer: it vouches for
	// everything before itself.
	if err := writeFooter(bw, cw.sum); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSegment decodes one block payload from r, verifying the CRC
// footer and that the segment describes block wantID of a wantDim
// index. It returns the graph, the optional codes, and the block range
// the segment claims; the caller must check that range against its own
// block table before using the payload.
func ReadSegment(r io.Reader, wantID, wantDim int) (*graph.CSR, *sq.Codes, int, int, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var m, ver uint64
	if err := readInts(cr, &m, &ver); err != nil {
		return nil, nil, 0, 0, fmt.Errorf("persist: segment header: %w", err)
	}
	if m != segMagic {
		return nil, nil, 0, 0, fmt.Errorf("persist: bad segment magic %#x", m)
	}
	if ver != segVersion {
		return nil, nil, 0, 0, fmt.Errorf("persist: unsupported segment version %d", ver)
	}
	var id, lo, hi, height, dim uint64
	if err := readInts(cr, &id, &lo, &hi, &height, &dim); err != nil {
		return nil, nil, 0, 0, fmt.Errorf("persist: segment header: %w", err)
	}
	if id != uint64(wantID) {
		return nil, nil, 0, 0, fmt.Errorf("persist: segment holds block %d, want %d", id, wantID)
	}
	if dim != uint64(wantDim) {
		return nil, nil, 0, 0, fmt.Errorf("persist: segment has dim %d, want %d", dim, wantDim)
	}
	if lo > hi || hi > 1<<40 || height > 64 {
		return nil, nil, 0, 0, fmt.Errorf("persist: implausible segment range [%d,%d) height %d", lo, hi, height)
	}
	g, err := readGraph(cr)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	codes, err := readCodes(cr)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if err := verifyFooter(uint32(crcVersion), br, cr.sum); err != nil {
		return nil, nil, 0, 0, err
	}
	// Structural cross-checks after the CRC: a valid checksum proves the
	// bytes are what was written, not that what was written matches this
	// block.
	n := int(hi - lo)
	if g.NumNodes() != n {
		return nil, nil, 0, 0, fmt.Errorf("persist: segment graph has %d nodes for range [%d,%d)", g.NumNodes(), lo, hi)
	}
	if codes != nil && (codes.N != n || codes.Dim != wantDim) {
		return nil, nil, 0, 0, fmt.Errorf("persist: segment codes cover %d rows (dim %d) for range [%d,%d)", codes.N, codes.Dim, lo, hi)
	}
	return g, codes, int(lo), int(hi), nil
}

// SegmentFileName is the on-disk name of block id's segment.
func SegmentFileName(id int) string {
	return fmt.Sprintf("block-%08d.seg", id)
}

// WriteSegmentFile durably writes one block's segment into dir using
// the temp-file + fsync + rename + dir-sync discipline: a crash at any
// point leaves either no segment or a complete one — a torn temp file
// is never picked up because loads open only the final name. It
// returns the segment's byte size.
func WriteSegmentFile(dir string, id, lo, hi, height, dim int, g *graph.CSR, codes *sq.Codes) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	final := filepath.Join(dir, SegmentFileName(id))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if err := WriteSegment(f, id, lo, hi, height, dim, g, codes); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := syncSegDir(dir); err != nil {
		return 0, err
	}
	return size, nil
}

// ReadSegmentFile loads block id's segment from dir, verifying identity
// and integrity, and returns the payload plus the block range the
// segment claims.
func ReadSegmentFile(dir string, id, dim int) (*graph.CSR, *sq.Codes, int, int, error) {
	f, err := os.Open(filepath.Join(dir, SegmentFileName(id)))
	if err != nil {
		return nil, nil, 0, 0, err
	}
	g, codes, lo, hi, err := ReadSegment(f, id, dim)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return g, codes, lo, hi, nil
}

// syncSegDir fsyncs a directory so a just-renamed segment's entry is
// durable (the WAL package keeps its own private copy of this helper).
func syncSegDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
