package persist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nndescent"
	"repro/internal/sf"
	"repro/internal/vec"
)

// Offsets of the version field within the fixed header: magic and
// version are each written as uint64.
const versionOffset = 8

// asLegacyV1 rewrites a version-2 file as the version-1 format: stamp the
// old version number and strip the 8-byte footer. Byte-identical to what
// the v1 encoder produced, since the footer was a pure suffix.
func asLegacyV1(t *testing.T, raw []byte) []byte {
	t.Helper()
	if len(raw) < versionOffset+8+8 {
		t.Fatalf("file too short to rewrite (%d bytes)", len(raw))
	}
	out := append([]byte{}, raw[:len(raw)-8]...)
	out[versionOffset] = byte(legacyVersion)
	return out
}

func TestFooterDetectsTruncation(t *testing.T) {
	ix := buildMBI(t, 40)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Chop off the footer entirely, part of it, and one body byte: all
	// three truncations must fail loudly rather than restore a prefix.
	for _, cut := range []int{len(raw) - 8, len(raw) - 3, len(raw) - 9} {
		if _, err := LoadMBI(bytes.NewReader(raw[:cut]), ix.Options()); err == nil {
			t.Fatalf("LoadMBI accepted a file truncated to %d of %d bytes", cut, len(raw))
		}
	}
}

func TestFooterDetectsBodyCorruption(t *testing.T) {
	ix := buildMBI(t, 40)
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte{}, buf.Bytes()...)
	// Flip a byte inside the vector data — structurally invisible, so
	// only the checksum can catch it.
	headerLen := 16 + 1 + 1 + 4 + 8
	timesLen := 8 * ix.Len()
	raw[headerLen+timesLen+5] ^= 0x01
	_, err := LoadMBI(bytes.NewReader(raw), ix.Options())
	if err == nil {
		t.Fatal("LoadMBI accepted a file with a flipped vector byte")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want a checksum error, got: %v", err)
	}
}

func TestFooterLegacyV1StillLoads(t *testing.T) {
	ix := buildMBI(t, 40)
	// Version 1 also predates per-block codes sections, so the file must
	// come from the legacy serializer, not a restamped current file.
	legacy := saveMBIOld(t, ix, legacyVersion)
	got, err := LoadMBI(bytes.NewReader(legacy), ix.Options())
	if err != nil {
		t.Fatalf("LoadMBI rejected a legacy footerless file: %v", err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got.Len() != ix.Len() {
		t.Fatalf("len %d, want %d", got.Len(), ix.Len())
	}
}

func TestFooterSFTruncationAndLegacy(t *testing.T) {
	builder := nndescent.MustNew(nndescent.DefaultConfig(4))
	sfix := sf.New(5, vec.Euclidean, builder)
	rng := rand.New(rand.NewSource(4))
	v := make([]float32, 5)
	for i := 0; i < 40; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := sfix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sfix.BuildGraph(5)

	var buf bytes.Buffer
	if err := SaveSF(&buf, sfix); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadSF(bytes.NewReader(raw[:len(raw)-3]), builder); err == nil {
		t.Fatal("LoadSF accepted a truncated file")
	}
	legacy := asLegacyV1(t, raw)
	got, err := LoadSF(bytes.NewReader(legacy), builder)
	if err != nil {
		t.Fatalf("LoadSF rejected a legacy footerless file: %v", err)
	}
	if got.Len() != sfix.Len() {
		t.Fatalf("len %d, want %d", got.Len(), sfix.Len())
	}
}
