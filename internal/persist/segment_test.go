package persist

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/blockcache"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/sq"
	"repro/internal/vec"
)

// dirSpillConfig wires a core index's tiered storage to segment files
// in dir — the same closures the tknn facade builds.
func dirSpillConfig(dir string, dim, maxHeight int, cacheBytes int64) *core.SpillConfig {
	return &core.SpillConfig{
		Write: func(id, lo, hi, height int, g *graph.CSR, c *sq.Codes) (int64, error) {
			return WriteSegmentFile(dir, id, lo, hi, height, dim, g, c)
		},
		Load: func(ctx context.Context, key uint64) (blockcache.Value, error) {
			g, c, _, _, err := ReadSegmentFile(dir, int(key), dim)
			if err != nil {
				return blockcache.Value{}, err
			}
			return blockcache.Value{Graph: g, Codes: c}, nil
		},
		MaxHeight:  maxHeight,
		CacheBytes: cacheBytes,
	}
}

// buildSpillMBI builds an index with tiered storage into dir and n
// appended vectors, optionally SQ8-compressed.
func buildSpillMBI(t *testing.T, dir string, n int, compress bool) *core.Index {
	t.Helper()
	opts := core.Options{
		Dim: 6, Metric: vec.Euclidean, LeafSize: 8, Tau: 0.5,
		Builder: nndescent.MustNew(nndescent.DefaultConfig(4)),
		Search:  graph.SearchParams{MC: 16, Eps: 1.2}, Seed: 3,
		Spill: dirSpillConfig(dir, 6, 8, 1<<20),
	}
	if compress {
		opts.Compression = sq.SQ8
	}
	ix, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	v := make([]float32, 6)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func segPayload(t *testing.T) (*graph.CSR, *sq.Codes) {
	t.Helper()
	store := vec.NewStore(6)
	rng := rand.New(rand.NewSource(7))
	v := make([]float32, 6)
	for i := 0; i < 16; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if _, err := store.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	b := nndescent.MustNew(nndescent.DefaultConfig(4))
	g := b.Build(vec.View{Store: store, Lo: 0, Hi: 16, Metric: vec.Euclidean}, 1)
	codes := sq.Train(store, 0, 16, sq.TrainConfig{})
	return g, codes
}

func TestSegmentRoundTrip(t *testing.T) {
	g, codes := segPayload(t)
	for _, withCodes := range []bool{false, true} {
		var c *sq.Codes
		if withCodes {
			c = codes
		}
		var buf bytes.Buffer
		if err := WriteSegment(&buf, 3, 16, 32, 1, 6, g, c); err != nil {
			t.Fatal(err)
		}
		g2, c2, lo, hi, err := ReadSegment(bytes.NewReader(buf.Bytes()), 3, 6)
		if err != nil {
			t.Fatalf("ReadSegment (codes=%v): %v", withCodes, err)
		}
		if lo != 16 || hi != 32 {
			t.Fatalf("segment range [%d,%d), want [16,32)", lo, hi)
		}
		if !equalInt32(g.Off, g2.Off) || !equalInt32(g.Adj, g2.Adj) {
			t.Fatal("graph not byte-identical after round trip")
		}
		if (c2 != nil) != withCodes {
			t.Fatalf("codes presence = %v, want %v", c2 != nil, withCodes)
		}
		if withCodes && !bytes.Equal(c.Data, c2.Data) {
			t.Fatal("codes not byte-identical after round trip")
		}
	}
}

func TestSegmentRejectsCorruptionAndTruncation(t *testing.T) {
	g, codes := segPayload(t)
	var buf bytes.Buffer
	if err := WriteSegment(&buf, 0, 0, 16, 0, 6, g, codes); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Every single-byte flip must be rejected (header checks or CRC).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 64; trial++ {
		bad := append([]byte{}, raw...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		if _, _, _, _, err := ReadSegment(bytes.NewReader(bad), 0, 6); err == nil {
			t.Fatalf("trial %d: ReadSegment accepted a corrupted segment", trial)
		}
	}
	// A torn write — the file cut at any offset — must be rejected too:
	// this is the kill-at-a-random-offset model for segment spills.
	for trial := 0; trial < 64; trial++ {
		cut := rng.Intn(len(raw))
		if _, _, _, _, err := ReadSegment(bytes.NewReader(raw[:cut]), 0, 6); err == nil {
			t.Fatalf("trial %d: ReadSegment accepted a segment truncated at %d/%d", trial, cut, len(raw))
		}
	}
}

func TestSegmentRejectsWrongIdentity(t *testing.T) {
	g, _ := segPayload(t)
	var buf bytes.Buffer
	if err := WriteSegment(&buf, 5, 0, 16, 0, 6, g, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadSegment(bytes.NewReader(buf.Bytes()), 6, 6); err == nil {
		t.Fatal("ReadSegment accepted a segment for the wrong block id")
	}
	if _, _, _, _, err := ReadSegment(bytes.NewReader(buf.Bytes()), 5, 8); err == nil {
		t.Fatal("ReadSegment accepted a segment with the wrong dimension")
	}
}

func TestWriteSegmentFileDurableAndTornTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	g, codes := segPayload(t)
	size, err := WriteSegmentFile(dir, 2, 0, 16, 0, 6, g, codes)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, SegmentFileName(2)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != size {
		t.Fatalf("reported size %d, file is %d", size, info.Size())
	}
	// A torn temp file from a killed writer must never be read: loads
	// open only the final name.
	torn := filepath.Join(dir, SegmentFileName(3)+".tmp")
	if err := os.WriteFile(torn, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadSegmentFile(dir, 3, 6); err == nil {
		t.Fatal("ReadSegmentFile read a block that was never renamed into place")
	}
	if _, _, _, _, err := ReadSegmentFile(dir, 2, 6); err != nil {
		t.Fatalf("ReadSegmentFile(2): %v", err)
	}
}

// TestSpilledSnapshotRoundTrip is the v4 format test: spill an index,
// snapshot it, reload it, and check that the spilled blocks restore as
// segment references whose queries produce results identical to the
// RAM-resident original.
func TestSpilledSnapshotRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		dir := t.TempDir()
		ix := buildSpillMBI(t, dir, 45, compress)

		q := make([]float32, 6)
		want, _ := ix.SearchContext(context.Background(), q, 5, 0, 1<<40)

		n, bytesSpilled, err := ix.SpillCold()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 || bytesSpilled == 0 {
			t.Fatal("SpillCold spilled nothing")
		}

		var buf bytes.Buffer
		if err := SaveMBI(&buf, ix); err != nil {
			t.Fatal(err)
		}
		got, err := LoadMBI(bytes.NewReader(buf.Bytes()), ix.Options())
		if err != nil {
			t.Fatal(err)
		}
		spilled := 0
		for _, b := range got.Blocks() {
			if b.Spilled {
				spilled++
				if b.Graph != nil || b.Codes != nil {
					t.Fatal("spilled block restored with a RAM payload")
				}
			}
		}
		if spilled != n {
			t.Fatalf("restored %d spilled blocks, spilled %d", spilled, n)
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatal(err)
		}

		// Cold queries on the restored index must match the all-RAM
		// results bit-for-bit (same entries, same payload bytes).
		have, out := got.SearchContext(context.Background(), q, 5, 0, 1<<40)
		if out.Partial {
			t.Fatal("cold query reported Partial")
		}
		if len(want) != len(have) {
			t.Fatalf("cold query found %d results, want %d", len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("compress=%v result %d: cold %v, RAM %v", compress, i, have[i], want[i])
			}
		}
	}
}

// TestSpilledLoadRequiresSpillConfig pins the failure mode of loading a
// v4 file with segment references into an index with tiering disabled:
// a load-time error, not a latent nil-graph panic.
func TestSpilledLoadRequiresSpillConfig(t *testing.T) {
	dir := t.TempDir()
	ix := buildSpillMBI(t, dir, 45, false)
	if _, _, err := ix.SpillCold(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveMBI(&buf, ix); err != nil {
		t.Fatal(err)
	}
	opts := ix.Options()
	opts.Spill = nil
	if _, err := LoadMBI(bytes.NewReader(buf.Bytes()), opts); err == nil {
		t.Fatal("LoadMBI restored spilled blocks without a spill config")
	}
}
