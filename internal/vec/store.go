package vec

import (
	"fmt"

	"repro/internal/invariant"
)

// Store holds vectors of a fixed dimension back-to-back in one []float32.
// Index i's coordinates live at data[i*dim : (i+1)*dim].
//
// A Store is append-only: vectors are never mutated or removed once added,
// which is what lets MBI blocks reference ranges of the store instead of
// copying. Append is not safe for concurrent use; reads of already-appended
// vectors are safe concurrently with a single appender as long as readers
// obtained their length bound before the append (the MBI index enforces
// this with its own lock).
// Besides the coordinates, the store caches each vector's squared L2 norm
// at append time (4 bytes/vector), so angular-distance hot paths never
// renormalize stored vectors per call — DistanceStored reads the cache.
type Store struct {
	dim     int
	data    []float32
	sqnorms []float32 // sqnorms[i] == SquaredNorm(At(i)), maintained by every ingest path
}

// NewStore returns an empty store for dim-dimensional vectors.
// It panics if dim <= 0: a zero-dimensional store is always a caller bug.
func NewStore(dim int) *Store {
	if dim <= 0 {
		panic(fmt.Sprintf("vec: non-positive dimension %d", dim))
	}
	return &Store{dim: dim}
}

// NewStoreCap is NewStore with capacity pre-allocated for n vectors.
func NewStoreCap(dim, n int) *Store {
	s := NewStore(dim)
	s.data = make([]float32, 0, dim*n)
	s.sqnorms = make([]float32, 0, n)
	return s
}

// Dim returns the vector dimension.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of vectors currently stored.
func (s *Store) Len() int { return len(s.data) / s.dim }

// CheckFinite returns an error if any coordinate of v is NaN or ±Inf.
// A non-finite coordinate poisons every distance computed against the
// vector, so ingest paths assert finiteness under the invariant gate.
// The x-x != 0 test is NaN for both NaN and infinite inputs and keeps
// this file inside the float32-only kernel rule (no math.IsNaN/IsInf).
func CheckFinite(v []float32) error {
	for i, x := range v {
		if x-x != 0 {
			return fmt.Errorf("vec: coordinate %d is not finite (%v)", i, x)
		}
	}
	return nil
}

// Append adds a copy of v and returns its index.
// It returns an error if len(v) does not match the store dimension.
func (s *Store) Append(v []float32) (int, error) {
	if len(v) != s.dim {
		return 0, fmt.Errorf("vec: appending %d-dim vector to %d-dim store", len(v), s.dim)
	}
	if invariant.Enabled {
		invariant.NoError(CheckFinite(v), "vec: ingest")
	}
	id := s.Len()
	s.data = append(s.data, v...)
	s.sqnorms = append(s.sqnorms, SquaredNorm(v))
	return id, nil
}

// SqNorm returns the cached squared L2 norm of vector i.
func (s *Store) SqNorm(i int) float32 { return s.sqnorms[i] }

// At returns the vector at index i as a slice aliasing the store's memory.
// Callers must not modify the returned slice.
func (s *Store) At(i int) []float32 {
	off := i * s.dim
	return s.data[off : off+s.dim : off+s.dim]
}

// Raw exposes the underlying flat buffer, e.g. for serialization.
// Callers must not modify it.
func (s *Store) Raw() []float32 { return s.data }

// Snapshot returns a read-only view of the store's current contents that
// stays valid while the original keeps growing: the returned store shares
// the backing array but has a fixed length, and appends to the original
// either write past that length or reallocate — either way they never
// touch the snapshot's [0, Len) range. Used by MBI's asynchronous merge
// worker to build block graphs without holding the index lock.
func (s *Store) Snapshot() *Store {
	n := s.Len()
	return &Store{
		dim:     s.dim,
		data:    s.data[:len(s.data):len(s.data)],
		sqnorms: s.sqnorms[:n:n],
	}
}

// FromRaw constructs a store that adopts buf as its backing memory.
// len(buf) must be a multiple of dim.
func FromRaw(dim int, buf []float32) (*Store, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vec: non-positive dimension %d", dim)
	}
	if len(buf)%dim != 0 {
		return nil, fmt.Errorf("vec: buffer length %d is not a multiple of dim %d", len(buf), dim)
	}
	s := &Store{dim: dim, data: buf}
	n := s.Len()
	s.sqnorms = make([]float32, n)
	for i := 0; i < n; i++ {
		s.sqnorms[i] = SquaredNorm(s.At(i))
	}
	return s, nil
}

// View is a read-only window over the contiguous range [Lo, Hi) of a store,
// with local indices 0..Len()-1 mapping to global indices Lo..Hi-1.
// MBI blocks, the BSBF baseline, and the graph builders all operate on
// Views so they are agnostic to where in the timeline their data sits.
type View struct {
	Store  *Store
	Lo, Hi int
	Metric Metric
}

// Len returns the number of vectors in the view.
func (v View) Len() int { return v.Hi - v.Lo }

// At returns the vector at local index i.
func (v View) At(i int) []float32 { return v.Store.At(v.Lo + i) }

// Dist returns the metric distance between the vectors at local indices i
// and j.
func (v View) Dist(i, j int) float32 {
	return Distance(v.Metric, v.Store.At(v.Lo+i), v.Store.At(v.Lo+j))
}

// DistTo returns the metric distance between query q and the vector at
// local index i.
func (v View) DistTo(q []float32, i int) float32 {
	return Distance(v.Metric, q, v.Store.At(v.Lo+i))
}

// DistToCached is DistTo with the query's squared norm hoisted by the
// caller (once per scan or walk), so the angular path reads the store's
// cached vector norm instead of recomputing both norms per candidate.
//
//tknn:hotpath
func (v View) DistToCached(q []float32, qSqNorm float32, i int) float32 {
	return DistanceStored(v.Metric, q, qSqNorm, v.Store, v.Lo+i)
}
