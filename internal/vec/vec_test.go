package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestMetricString(t *testing.T) {
	if Euclidean.String() != "euclidean" {
		t.Errorf("Euclidean.String() = %q", Euclidean.String())
	}
	if Angular.String() != "angular" {
		t.Errorf("Angular.String() = %q", Angular.String())
	}
	if Metric(99).String() != "metric(99)" {
		t.Errorf("Metric(99).String() = %q", Metric(99).String())
	}
}

func TestParseMetric(t *testing.T) {
	cases := []struct {
		in   string
		want Metric
		ok   bool
	}{
		{"euclidean", Euclidean, true},
		{"l2", Euclidean, true},
		{"angular", Angular, true},
		{"cosine", Angular, true},
		{"manhattan", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseMetric(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseMetric(%q) succeeded, want error", c.in)
		}
	}
}

func TestMetricValid(t *testing.T) {
	if !Euclidean.Valid() || !Angular.Valid() {
		t.Error("defined metrics should be valid")
	}
	if Metric(7).Valid() {
		t.Error("Metric(7) should be invalid")
	}
}

func TestDotKnownValues(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Errorf("Dot = %g, want 35", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil, nil) = %g, want 0", got)
	}
}

func TestSquaredL2KnownValues(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{3, 4, 0}
	if got := SquaredL2(a, b); got != 25 {
		t.Errorf("SquaredL2 = %g, want 25", got)
	}
	if got := SquaredL2(a, a); got != 0 {
		t.Errorf("SquaredL2(a, a) = %g, want 0", got)
	}
}

// TestDistanceAgainstFloat64 cross-checks the unrolled float32 kernels
// against a straightforward float64 computation.
func TestDistanceAgainstFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(300)
		a, b := randVec(rng, dim), randVec(rng, dim)

		var dot, l2, na, nb float64
		for i := range a {
			dot += float64(a[i]) * float64(b[i])
			d := float64(a[i]) - float64(b[i])
			l2 += d * d
			na += float64(a[i]) * float64(a[i])
			nb += float64(b[i]) * float64(b[i])
		}
		if got := Dot(a, b); math.Abs(float64(got)-dot) > 1e-3*(1+math.Abs(dot)) {
			t.Fatalf("dim %d: Dot = %g, want %g", dim, got, dot)
		}
		if got := SquaredL2(a, b); math.Abs(float64(got)-l2) > 1e-3*(1+l2) {
			t.Fatalf("dim %d: SquaredL2 = %g, want %g", dim, got, l2)
		}
		wantCos := 1 - dot/math.Sqrt(na*nb)
		if got := CosineDistance(a, b); math.Abs(float64(got)-wantCos) > 1e-3 {
			t.Fatalf("dim %d: CosineDistance = %g, want %g", dim, got, wantCos)
		}
	}
}

func TestSquaredL2Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(64)
		a, b := randVec(r, dim), randVec(r, dim)
		// Symmetry and non-negativity.
		return SquaredL2(a, b) == SquaredL2(b, a) && SquaredL2(a, b) >= 0 && SquaredL2(a, a) == 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCosineDistanceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(64)
		a, b := randVec(rng, dim), randVec(rng, dim)
		d := CosineDistance(a, b)
		if d < -1e-5 || d > 2+1e-5 {
			t.Fatalf("cosine distance %g outside [0, 2]", d)
		}
		if self := CosineDistance(a, a); self > 1e-5 {
			t.Fatalf("self cosine distance %g, want ~0", self)
		}
	}
}

func TestCosineDistanceZeroVector(t *testing.T) {
	zero := []float32{0, 0, 0}
	v := []float32{1, 2, 3}
	if got := CosineDistance(zero, v); got != 1 {
		t.Errorf("CosineDistance(zero, v) = %g, want 1", got)
	}
	if got := CosineDistance(v, zero); got != 1 {
		t.Errorf("CosineDistance(v, zero) = %g, want 1", got)
	}
}

func TestNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		v := randVec(rng, 1+rng.Intn(128))
		Normalize(v)
		n := SquaredNorm(v)
		if math.Abs(float64(n)-1) > 1e-4 {
			t.Fatalf("normalized squared norm = %g, want 1", n)
		}
	}
	zero := []float32{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("Normalize(zero) should be a no-op")
	}
}

func TestNormalizeScaleInvariance(t *testing.T) {
	// After normalization, cosine distance equals 1 - dot.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a, b := randVec(rng, 32), randVec(rng, 32)
		Normalize(a)
		Normalize(b)
		want := 1 - Dot(a, b)
		got := CosineDistance(a, b)
		if math.Abs(float64(got-want)) > 1e-4 {
			t.Fatalf("normalized cosine %g != 1-dot %g", got, want)
		}
	}
}

func TestDistanceDispatch(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := Distance(Euclidean, a, b); got != 2 {
		t.Errorf("Distance(Euclidean) = %g, want 2", got)
	}
	if got := Distance(Angular, a, b); math.Abs(float64(got)-1) > 1e-6 {
		t.Errorf("Distance(Angular) = %g, want 1", got)
	}
}

func TestStoreAppendAt(t *testing.T) {
	s := NewStore(3)
	if s.Dim() != 3 || s.Len() != 0 {
		t.Fatalf("fresh store: dim %d len %d", s.Dim(), s.Len())
	}
	id, err := s.Append([]float32{1, 2, 3})
	if err != nil || id != 0 {
		t.Fatalf("first append: id %d err %v", id, err)
	}
	id, err = s.Append([]float32{4, 5, 6})
	if err != nil || id != 1 {
		t.Fatalf("second append: id %d err %v", id, err)
	}
	if got := s.At(1); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Errorf("At(1) = %v", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestStoreAppendWrongDim(t *testing.T) {
	s := NewStore(3)
	if _, err := s.Append([]float32{1, 2}); err == nil {
		t.Error("appending 2-dim vector to 3-dim store should fail")
	}
	if s.Len() != 0 {
		t.Error("failed append must not grow the store")
	}
}

func TestNewStorePanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStore(0) should panic")
		}
	}()
	NewStore(0)
}

func TestFromRaw(t *testing.T) {
	buf := []float32{1, 2, 3, 4, 5, 6}
	s, err := FromRaw(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if got := s.At(1)[2]; got != 6 {
		t.Errorf("At(1)[2] = %g, want 6", got)
	}
	if _, err := FromRaw(4, buf); err == nil {
		t.Error("FromRaw with non-multiple length should fail")
	}
	if _, err := FromRaw(0, buf); err == nil {
		t.Error("FromRaw with dim 0 should fail")
	}
}

func TestViewIndexing(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 5; i++ {
		if _, err := s.Append([]float32{float32(i), float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	v := View{Store: s, Lo: 1, Hi: 4, Metric: Euclidean}
	if v.Len() != 3 {
		t.Fatalf("view len %d, want 3", v.Len())
	}
	if got := v.At(0)[0]; got != 1 {
		t.Errorf("view At(0) = %g, want 1", got)
	}
	if got := v.At(2)[0]; got != 3 {
		t.Errorf("view At(2) = %g, want 3", got)
	}
	// Dist between local 0 (global 1) and local 2 (global 3): (3-1)^2 * 2 = 8.
	if got := v.Dist(0, 2); got != 8 {
		t.Errorf("view Dist = %g, want 8", got)
	}
	if got := v.DistTo([]float32{0, 0}, 1); got != 8 {
		t.Errorf("view DistTo = %g, want 8", got)
	}
}

func TestStoreNewStoreCap(t *testing.T) {
	s := NewStoreCap(4, 100)
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
	if _, err := s.Append(make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}
