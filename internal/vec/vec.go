// Package vec provides the dense-vector primitives that every index in this
// repository is built on: a flat float32 store that keeps vectors contiguous
// in memory, distance kernels for the two metrics the paper uses (squared
// Euclidean and angular), and lightweight views over timestamp-contiguous
// ranges of a store.
//
// Vectors are stored back-to-back in a single []float32 so that a block of
// the MBI tree — which is always a contiguous timestamp range — can be
// described by two integer offsets instead of a copy.
package vec

import (
	"fmt"
	"math"
)

// Metric identifies the distance function attached to a dataset.
//
// The paper evaluates on angular datasets (MovieLens, COMS, GloVe-100,
// DEEP1B) and Euclidean datasets (SIFT1M, GIST1M); both are supported.
type Metric uint8

const (
	// Euclidean orders neighbors by squared L2 distance. Squared distance
	// preserves the ordering of true Euclidean distance and avoids a sqrt
	// per comparison.
	Euclidean Metric = iota
	// Angular orders neighbors by cosine distance, 1 - cos(a, b).
	Angular
)

// String returns the lower-case name of the metric.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Angular:
		return "angular"
	default:
		return fmt.Sprintf("metric(%d)", uint8(m))
	}
}

// Valid reports whether m is one of the defined metrics.
func (m Metric) Valid() bool { return m == Euclidean || m == Angular }

// ParseMetric converts a name produced by Metric.String back to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "euclidean", "l2":
		return Euclidean, nil
	case "angular", "cosine":
		return Angular, nil
	}
	return 0, fmt.Errorf("vec: unknown metric %q", s)
}

// Dot returns the inner product of a and b. The slices must have equal
// length; this is the caller's responsibility (hot path, not re-checked).
func Dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// SquaredNorm returns the squared L2 norm of a.
func SquaredNorm(a []float32) float32 { return Dot(a, a) }

// Norm returns the L2 norm of a.
func Norm(a []float32) float32 { return sqrt32(SquaredNorm(a)) }

// CosineDistance returns 1 - cos(a, b). Zero vectors are treated as
// maximally distant from everything (distance 1), matching the convention
// used by ann-benchmarks for angular datasets.
func CosineDistance(a, b []float32) float32 {
	dot := Dot(a, b)
	na := SquaredNorm(a)
	nb := SquaredNorm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/sqrt32(na*nb)
}

// Distance evaluates metric m between a and b.
func Distance(m Metric, a, b []float32) float32 {
	if m == Euclidean {
		return SquaredL2(a, b)
	}
	return CosineDistance(a, b)
}

// DistanceStored evaluates metric m between query q and stored vector i,
// using the store's cached squared norm so the angular path computes one
// dot product instead of three. qSqNorm is SquaredNorm(q), hoisted by the
// caller once per scan or walk. Bit-identical to Distance: the cached norm
// is the same SquaredNorm the direct path would recompute.
//
//tknn:hotpath
func DistanceStored(m Metric, q []float32, qSqNorm float32, s *Store, i int) float32 {
	v := s.At(i)
	if m == Euclidean {
		return SquaredL2(q, v)
	}
	nb := s.sqnorms[i]
	if qSqNorm == 0 || nb == 0 {
		return 1
	}
	return 1 - Dot(q, v)/sqrt32(qSqNorm*nb)
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}

// Normalize scales v to unit L2 norm in place. Zero vectors are left
// untouched. Angular datasets are normalized once at generation time so
// that cosine distance reduces to 1 - dot.
func Normalize(v []float32) {
	n := SquaredNorm(v)
	if n == 0 {
		return
	}
	inv := 1 / sqrt32(n)
	for i := range v {
		v[i] *= inv
	}
}
