package nndescent

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// clusteredView generates n clustered points in dim dimensions.
func clusteredView(seed int64, n, dim, clusters int, metric vec.Metric) vec.View {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, clusters)
	for c := range centers {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = v
	}
	s := vec.NewStore(dim)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(clusters)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.15)
		}
		if _, err := s.Append(v); err != nil {
			panic(err)
		}
	}
	return vec.View{Store: s, Lo: 0, Hi: n, Metric: metric}
}

// graphRecall measures the fraction of true k-nearest neighbors present in
// each node's adjacency, averaged over sampled nodes.
func graphRecall(t *testing.T, view vec.View, adj func(int32) []int32, k, samples int, rng *rand.Rand) float64 {
	t.Helper()
	n := view.Len()
	var sum float64
	for s := 0; s < samples; s++ {
		v := rng.Intn(n)
		// Exact k nearest of v.
		type nd struct {
			id   int32
			dist float32
		}
		var exact []nd
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			exact = append(exact, nd{int32(u), view.Dist(v, u)})
		}
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(exact); j++ {
				if exact[j].dist < exact[best].dist {
					best = j
				}
			}
			exact[i], exact[best] = exact[best], exact[i]
		}
		have := map[int32]bool{}
		for _, nb := range adj(int32(v)) {
			have[nb] = true
		}
		hits := 0
		for i := 0; i < k; i++ {
			if have[exact[i].id] {
				hits++
			}
		}
		sum += float64(hits) / float64(k)
	}
	return sum / float64(samples)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, Rho: 1, Delta: 0.001, MaxIter: 5},
		{K: 8, Rho: 0, Delta: 0.001, MaxIter: 5},
		{K: 8, Rho: 1.5, Delta: 0.001, MaxIter: 5},
		{K: 8, Rho: 1, Delta: -1, MaxIter: 5},
		{K: 8, Rho: 1, Delta: 0.001, MaxIter: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig(16)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config should panic")
		}
	}()
	MustNew(Config{})
}

func TestBuildEmptyAndTiny(t *testing.T) {
	b := MustNew(DefaultConfig(8))
	s := vec.NewStore(4)
	empty := vec.View{Store: s, Lo: 0, Hi: 0, Metric: vec.Euclidean}
	g := b.Build(empty, 1)
	if g.NumNodes() != 0 {
		t.Errorf("empty view built %d nodes", g.NumNodes())
	}

	if _, err := s.Append([]float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	single := vec.View{Store: s, Lo: 0, Hi: 1, Metric: vec.Euclidean}
	g = b.Build(single, 1)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Errorf("single-node graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestBuildExactPathForSmallViews(t *testing.T) {
	view := clusteredView(1, 100, 8, 4, vec.Euclidean)
	b := MustNew(DefaultConfig(10))
	g := b.Build(view, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes %d, want 100", g.NumNodes())
	}
	// Small views take the exact path: adjacency must equal the true kNN.
	rng := rand.New(rand.NewSource(2))
	rec := graphRecall(t, view, g.Neighbors, 10, 30, rng)
	if rec < 0.999 {
		t.Errorf("exact-path graph recall %.3f, want 1.0", rec)
	}
}

func TestBuildQualityOnClusteredData(t *testing.T) {
	view := clusteredView(3, 2000, 16, 10, vec.Euclidean)
	b := MustNew(DefaultConfig(16))
	g := b.Build(view, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	rec := graphRecall(t, view, g.Neighbors, 8, 40, rng)
	// NNDescent converges to near-exact graphs on easy clustered data.
	if rec < 0.85 {
		t.Errorf("graph recall %.3f, want >= 0.85", rec)
	}
}

func TestBuildQualityAngular(t *testing.T) {
	view := clusteredView(5, 1500, 24, 8, vec.Angular)
	b := MustNew(DefaultConfig(12))
	g := b.Build(view, 11)
	rng := rand.New(rand.NewSource(6))
	rec := graphRecall(t, view, g.Neighbors, 6, 30, rng)
	if rec < 0.8 {
		t.Errorf("angular graph recall %.3f, want >= 0.8", rec)
	}
}

func TestBuildDeterministic(t *testing.T) {
	view := clusteredView(7, 800, 8, 6, vec.Euclidean)
	b := MustNew(DefaultConfig(8))
	g1 := b.Build(view, 42)
	g2 := b.Build(view, 42)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for i := range g1.Adj {
		if g1.Adj[i] != g2.Adj[i] {
			t.Fatalf("adjacency differs at %d: %d vs %d", i, g1.Adj[i], g2.Adj[i])
		}
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	view := clusteredView(7, 800, 8, 6, vec.Euclidean)
	b := MustNew(Config{K: 8, Rho: 0.5, Delta: 0.01, MaxIter: 2}) // few iters: randomness visible
	g1 := b.Build(view, 1)
	g2 := b.Build(view, 2)
	same := true
	if g1.NumEdges() != g2.NumEdges() {
		same = false
	} else {
		for i := range g1.Adj {
			if g1.Adj[i] != g2.Adj[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical partially-converged graphs")
	}
}

func TestBuildDegreeShape(t *testing.T) {
	view := clusteredView(9, 1000, 8, 5, vec.Euclidean)
	k := 12
	b := MustNew(DefaultConfig(k))
	g := b.Build(view, 3)
	// The symmetrized graph has out-degree K plus in-degree (mean K), so
	// the average sits near 2K. Hubs can exceed that but total edges are
	// bounded by twice the directed kNN edges plus bridges.
	n := g.NumNodes()
	if g.NumEdges() < n*k {
		t.Errorf("%d edges for %d nodes, want >= n*K=%d (every node keeps its K out-edges)", g.NumEdges(), n, n*k)
	}
	maxEdges := 2*n*k + 8*n // symmetrization doubles; bridges add a few
	if g.NumEdges() > maxEdges {
		t.Errorf("%d edges, want <= %d", g.NumEdges(), maxEdges)
	}
	for v := int32(0); int(v) < n; v++ {
		if d := len(g.Neighbors(v)); d < k {
			t.Fatalf("node %d has degree %d < K=%d", v, d, k)
		}
	}
}

func TestBuildKLargerThanN(t *testing.T) {
	view := clusteredView(11, 10, 4, 2, vec.Euclidean)
	b := MustNew(DefaultConfig(64))
	g := b.Build(view, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// K is clamped to n-1: every node connects to all others.
	for v := int32(0); int(v) < 10; v++ {
		if d := len(g.Neighbors(v)); d != 9 {
			t.Fatalf("node %d degree %d, want 9", v, d)
		}
	}
}

func TestNeighborsSortedByDistance(t *testing.T) {
	view := clusteredView(13, 600, 8, 4, vec.Euclidean)
	b := MustNew(DefaultConfig(8))
	g := b.Build(view, 5)
	for v := 0; v < g.NumNodes(); v += 37 {
		nbs := g.Neighbors(int32(v))
		prev := float32(-1)
		for _, nb := range nbs {
			d := view.Dist(v, int(nb))
			if d < prev {
				t.Fatalf("node %d neighbors not distance-sorted", v)
			}
			prev = d
		}
	}
}
