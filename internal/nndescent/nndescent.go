// Package nndescent implements NNDescent (Dong, Charikar, Li — WWW 2011),
// the approximate kNN-graph construction algorithm the paper uses to index
// every MBI block and the SF baseline. The algorithm starts from a random
// K-NN graph and repeatedly applies the local-join step — "a neighbor of my
// neighbor is probably my neighbor" — until the update rate drops below a
// threshold. Its empirical cost is O(n^1.14), the exponent the paper's
// indexing-time analysis (§4.4.2) builds on.
package nndescent

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/vec"
)

// Config holds NNDescent tunables.
type Config struct {
	// K is the number of neighbors kept per node in the final graph. The
	// paper grid-searches 64–512 per dataset at million scale; this
	// repository's laptop-scale profiles default to 16–48.
	K int
	// Rho is the sample rate ρ of the local join (0 < ρ ≤ 1). 1.0 joins
	// every new neighbor; smaller values trade graph quality for speed.
	Rho float64
	// Delta is the termination threshold δ: iteration stops when fewer
	// than δ·n·K neighbor updates happen in a round.
	Delta float64
	// MaxIter caps the number of rounds regardless of convergence.
	MaxIter int
}

// DefaultConfig returns the configuration used when a profile does not
// override it: K neighbors, full sampling, 0.1% update-rate cutoff.
func DefaultConfig(k int) Config {
	return Config{K: k, Rho: 1.0, Delta: 0.001, MaxIter: 12}
}

// Builder is a graph.Builder backed by NNDescent. It is immutable after
// construction and therefore safe for concurrent Build calls.
type Builder struct {
	cfg Config
}

// New validates cfg and returns a Builder.
func New(cfg Config) (*Builder, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("nndescent: K must be positive, got %d", cfg.K)
	}
	if cfg.Rho <= 0 || cfg.Rho > 1 {
		return nil, fmt.Errorf("nndescent: Rho must be in (0, 1], got %g", cfg.Rho)
	}
	if cfg.Delta < 0 {
		return nil, fmt.Errorf("nndescent: Delta must be non-negative, got %g", cfg.Delta)
	}
	if cfg.MaxIter <= 0 {
		return nil, fmt.Errorf("nndescent: MaxIter must be positive, got %d", cfg.MaxIter)
	}
	return &Builder{cfg: cfg}, nil
}

// MustNew is New but panics on invalid configuration; for use in tests and
// internal wiring where the config is a compile-time constant.
func MustNew(cfg Config) *Builder {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Name implements graph.Builder.
func (b *Builder) Name() string { return "nndescent" }

// Config returns the builder's configuration.
func (b *Builder) Config() Config { return b.cfg }

// entry is one slot in a node's bounded neighbor heap.
type entry struct {
	id    int32
	dist  float32
	isNew bool
}

// nodeHeap is a bounded max-heap on dist: slot 0 holds the current worst
// neighbor, so replacing it is O(log K).
type nodeHeap []entry

func (h nodeHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && h[r].dist > h[l].dist {
			big = r
		}
		if h[i].dist >= h[big].dist {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

func (h nodeHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist >= h[i].dist {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// insert offers (id, dist) to the heap, keeping at most k entries and
// rejecting duplicates. It reports whether the heap changed.
func (h *nodeHeap) insert(id int32, dist float32, k int) bool {
	hh := *h
	if len(hh) == k && dist >= hh[0].dist {
		return false // cheaper than the duplicate scan below
	}
	for i := range hh {
		if hh[i].id == id {
			return false
		}
	}
	if len(hh) < k {
		hh = append(hh, entry{id: id, dist: dist, isNew: true})
		hh.siftUp(len(hh) - 1)
		*h = hh
		return true
	}
	hh[0] = entry{id: id, dist: dist, isNew: true}
	hh.siftDown(0)
	return true
}

// Build implements graph.Builder. For views small enough that the exact
// graph is cheaper than iterating (n ≤ K+1 or tiny n), it computes the
// exact K-NN graph directly.
func (b *Builder) Build(view vec.View, seed int64) *graph.CSR {
	n := view.Len()
	if n == 0 {
		return &graph.CSR{Off: []int32{0}}
	}
	k := b.cfg.K
	if k > n-1 {
		k = n - 1
	}
	if k == 0 {
		return graph.FromLists(make([][]int32, n))
	}
	rng := rand.New(rand.NewSource(seed))
	// Exact construction for small blocks: the O(n²) scan beats the
	// constant factors of iterating, and leaf blocks in tests are tiny.
	if n <= 256 || n <= 2*k {
		g := exactGraph(view, k)
		if invariant.Enabled {
			// The degree cap applies to the directed kNN lists; the
			// symmetrized closure exactGraph returns has no per-node bound
			// (a hub may appear in arbitrarily many lists), so only the
			// structural shape is asserted here.
			invariant.NoError(g.Validate(), "nndescent: exact graph shape")
		}
		return graph.EnsureConnected(g, view, rng)
	}
	heaps := b.initRandom(view, n, k, rng)
	sampleK := int(b.cfg.Rho * float64(k))
	if sampleK < 1 {
		sampleK = 1
	}
	minUpdates := int(b.cfg.Delta * float64(n) * float64(k))

	newFwd := make([][]int32, n)
	oldFwd := make([][]int32, n)
	newRev := make([][]int32, n)
	oldRev := make([][]int32, n)

	for iter := 0; iter < b.cfg.MaxIter; iter++ {
		for i := range newFwd {
			newFwd[i] = newFwd[i][:0]
			oldFwd[i] = oldFwd[i][:0]
			newRev[i] = newRev[i][:0]
			oldRev[i] = oldRev[i][:0]
		}

		// Sampling pass: split each node's current neighbors into sampled
		// new (which become old afterwards) and old, and build the reverse
		// lists.
		for v := 0; v < n; v++ {
			h := heaps[v]
			newSeen := 0
			for i := range h {
				e := &h[i]
				if e.isNew {
					if newSeen < sampleK || rng.Float64() < b.cfg.Rho {
						newSeen++
						e.isNew = false
						newFwd[v] = append(newFwd[v], e.id)
						newRev[e.id] = append(newRev[e.id], int32(v))
					}
				} else {
					oldFwd[v] = append(oldFwd[v], e.id)
					oldRev[e.id] = append(oldRev[e.id], int32(v))
				}
			}
		}

		// Local join: for every node, pair its sampled-new list against
		// itself and against the old list (forward ∪ sampled reverse).
		updates := 0
		for v := 0; v < n; v++ {
			newList := appendSampled(newFwd[v], newRev[v], sampleK, rng)
			oldList := appendSampled(oldFwd[v], oldRev[v], sampleK, rng)

			for i := 0; i < len(newList); i++ {
				a := newList[i]
				for j := i + 1; j < len(newList); j++ {
					c := newList[j]
					if a == c {
						continue
					}
					d := view.Dist(int(a), int(c))
					if heaps[a].insert(c, d, k) {
						updates++
					}
					if heaps[c].insert(a, d, k) {
						updates++
					}
				}
				for _, c := range oldList {
					if a == c {
						continue
					}
					d := view.Dist(int(a), int(c))
					if heaps[a].insert(c, d, k) {
						updates++
					}
					if heaps[c].insert(a, d, k) {
						updates++
					}
				}
			}
		}
		if updates <= minUpdates {
			break
		}
	}
	// A kNN graph over clustered data is one component per cluster;
	// bridge them so single-entry graph search can reach everything.
	if invariant.Enabled {
		// The k-cap invariant lives on the directed candidate heaps;
		// symmetrization then legitimately lifts hub nodes past k.
		for v := range heaps {
			invariant.Checkf(len(heaps[v]) <= k,
				"nndescent: node %d holds %d candidates, cap %d", v, len(heaps[v]), k)
		}
	}
	g := finalize(heaps, view)
	if invariant.Enabled {
		invariant.NoError(g.Validate(), "nndescent: pre-bridge graph shape")
	}
	return graph.EnsureConnected(g, view, rng)
}

// initRandom seeds every node with k distinct random neighbors.
func (b *Builder) initRandom(view vec.View, n, k int, rng *rand.Rand) []nodeHeap {
	heaps := make([]nodeHeap, n)
	for v := 0; v < n; v++ {
		h := make(nodeHeap, 0, k)
		for len(h) < k {
			c := int32(rng.Intn(n))
			if int(c) == v {
				continue
			}
			dup := false
			for _, e := range h {
				if e.id == c {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			h = append(h, entry{id: c, dist: view.Dist(v, int(c)), isNew: true})
			h.siftUp(len(h) - 1)
		}
		heaps[v] = h
	}
	return heaps
}

// appendSampled returns fwd plus up to limit elements sampled from rev.
// The result may alias fwd's backing array; callers use it read-only
// within the iteration.
func appendSampled(fwd, rev []int32, limit int, rng *rand.Rand) []int32 {
	if len(rev) == 0 {
		return fwd
	}
	out := make([]int32, len(fwd), len(fwd)+limit)
	copy(out, fwd)
	if len(rev) <= limit {
		return append(out, rev...)
	}
	// Partial Fisher-Yates over a copy so rev's order is preserved for the
	// reverse lists of other nodes.
	tmp := make([]int32, len(rev))
	copy(tmp, rev)
	for i := 0; i < limit; i++ {
		j := i + rng.Intn(len(tmp)-i)
		tmp[i], tmp[j] = tmp[j], tmp[i]
	}
	return append(out, tmp[:limit]...)
}

// finalize converts the neighbor heaps to a CSR graph with each node's
// neighbors sorted by ascending distance, then symmetrizes it.
//
// Symmetrization (adding the reverse of every edge) is essential, not an
// optimization: a pure kNN graph is directed, and a tight cluster whose
// members are nobody else's k-nearest has no incoming edges at all —
// best-first search following out-edges can never enter it, regardless of
// ε. Search-oriented kNN-graph systems (NGT, Efanna, NSG) all add reverse
// edges for exactly this reason.
func finalize(heaps []nodeHeap, view vec.View) *graph.CSR {
	lists := make([][]int32, len(heaps))
	for v, h := range heaps {
		tmp := make([]entry, len(h))
		copy(tmp, h)
		sortEntries(tmp)
		ids := make([]int32, len(tmp))
		for i, e := range tmp {
			ids[i] = e.id
		}
		lists[v] = ids
	}
	return symmetrize(lists, view)
}

// symmetrize returns the undirected closure of the adjacency lists with
// each node's final neighbor list deduplicated and sorted by ascending
// distance.
func symmetrize(lists [][]int32, view vec.View) *graph.CSR {
	n := len(lists)
	merged := make([][]int32, n)
	for v, nbs := range lists {
		merged[v] = append(merged[v], nbs...)
	}
	for v, nbs := range lists {
		for _, nb := range nbs {
			merged[nb] = append(merged[nb], int32(v))
		}
	}
	type nd struct {
		id   int32
		dist float32
	}
	for v := range merged {
		seen := make(map[int32]struct{}, len(merged[v]))
		cands := make([]nd, 0, len(merged[v]))
		for _, nb := range merged[v] {
			if _, dup := seen[nb]; dup || int(nb) == v {
				continue
			}
			seen[nb] = struct{}{}
			cands = append(cands, nd{nb, view.Dist(v, int(nb))})
		}
		for i := 1; i < len(cands); i++ {
			x := cands[i]
			j := i - 1
			for j >= 0 && (cands[j].dist > x.dist || (cands[j].dist == x.dist && cands[j].id > x.id)) {
				cands[j+1] = cands[j]
				j--
			}
			cands[j+1] = x
		}
		out := merged[v][:0]
		for _, c := range cands {
			out = append(out, c.id)
		}
		merged[v] = out
	}
	return graph.FromLists(merged)
}

func sortEntries(a []entry) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && (a[j].dist > x.dist || (a[j].dist == x.dist && a[j].id > x.id)) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// exactGraph computes the exact K-NN graph by brute force; used for blocks
// small enough that NNDescent's machinery is overhead.
func exactGraph(view vec.View, k int) *graph.CSR {
	n := view.Len()
	lists := make([][]int32, n)
	type cand struct {
		id   int32
		dist float32
	}
	cands := make([]cand, 0, n-1)
	for v := 0; v < n; v++ {
		cands = cands[:0]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			cands = append(cands, cand{id: int32(u), dist: view.Dist(v, u)})
		}
		// Partial selection sort for the k nearest: k is small relative to
		// these block sizes.
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].dist < cands[best].dist ||
					(cands[j].dist == cands[best].dist && cands[j].id < cands[best].id) {
					best = j
				}
			}
			cands[i], cands[best] = cands[best], cands[i]
		}
		ids := make([]int32, k)
		for i := 0; i < k; i++ {
			ids[i] = cands[i].id
		}
		lists[v] = ids
	}
	// Symmetrized for the same directed-reachability reason as finalize.
	return symmetrize(lists, view)
}
