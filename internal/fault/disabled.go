//go:build !tknn_fault

package fault

// Enabled reports whether fault injection is compiled in. Default builds
// have it off: every `if fault.Enabled { ... }` block is dead code the
// compiler deletes, so injection points cost nothing on the hot path and
// the zero-allocs/query gates are unaffected.
const Enabled = false
