//go:build tknn_fault

package fault

// Enabled reports whether fault injection is compiled in. This build
// (tag tknn_fault) has it on: configured rules fire at their injection
// points on the schedule they declare.
const Enabled = true
