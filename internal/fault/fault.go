// Package fault is the repository's deterministic fault-injection layer:
// named injection points compiled into the I/O and query paths (the WAL's
// write/fsync calls, the persist codec's reads and writes, the executor's
// per-subtask dispatch, the server's handlers) that can return errors, add
// latency, or truncate writes on a reproducible schedule. It exists so the
// durability and overload claims elsewhere in this repository can be
// tested without killing processes: a recovery test injects an fsync error
// mid-append and asserts replay still converges; the chaos harness fires a
// latency schedule under 4x load and asserts overload sheds instead of
// collapsing.
//
// Enabled is a build-tag-selected constant mirroring internal/invariant:
// false by default, true under `-tags tknn_fault`. Every call site must be
// guarded so default builds delete the whole check — injection points cost
// zero on the hot path and the allocation gates are unaffected:
//
//	if fault.Enabled {
//		if err := fault.Hit("wal.sync"); err != nil {
//			return err
//		}
//	}
//
// Points are named `<package>.<operation>` (see DESIGN.md for the wired
// set). Rules attach to points either programmatically (Set) or through a
// compact spec string (Configure):
//
//	wal.sync:error:after=100:count=1;exec.subtask:latency=2ms:every=7
//
// Schedules are deterministic: a counter rule fires on an exact arithmetic
// progression of that rule's hit count (after/every/count), so a test that
// replays the same operations sees the same faults. Probabilistic rules
// (prob=) draw from a PRNG seeded by Configure and are reproducible given
// the same hit order; under concurrency the order is the scheduler's, so
// tests that need exact replay use counter rules.
//
// A misspelled point name is not an error — the rule simply never fires —
// but Snapshot exposes per-point hit and fire counts, so harnesses assert
// their schedule actually ran.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error wraps. Handlers that
// must distinguish an injected failure from a real one (the server tags
// injected 5xx responses so the chaos harness can exclude them from its
// zero-unexplained-5xx gate) test with errors.Is.
var ErrInjected = errors.New("injected fault")

// Kind is what a firing rule does.
type Kind int

const (
	// Error returns an ErrInjected-wrapped error from the point.
	Error Kind = iota
	// Latency sleeps for the rule's Delay, then lets the operation
	// proceed.
	Latency
	// Truncate applies only to write-shaped points (Cut): the write
	// persists at most Keep bytes and then fails with an injected error,
	// modeling a torn write at the moment the disk gave out.
	Truncate
)

// String returns the kind's spec-string name.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Truncate:
		return "truncate"
	default:
		return "error"
	}
}

// Rule schedules one fault at one point. The zero schedule (After, Every,
// Count, Prob all zero) fires on every hit.
type Rule struct {
	// Point is the injection point the rule attaches to.
	Point string
	// Kind is the fault to inject.
	Kind Kind
	// After skips the first After hits of this rule.
	After uint64
	// Every fires on every Every-th eligible hit (1 = each one). 0 means 1.
	Every uint64
	// Count caps the number of fires; 0 is unlimited.
	Count uint64
	// Prob, when positive, gates each eligible hit on a seeded coin flip
	// instead of the every-counter. Counter and probability rules compose:
	// After/Count still apply.
	Prob float64
	// Delay is the sleep of a Latency rule.
	Delay time.Duration
	// Keep is the surviving byte count of a Truncate rule.
	Keep int
}

// rule is an installed Rule plus its mutable schedule state.
type rule struct {
	Rule
	hits  atomic.Uint64
	fires atomic.Uint64

	// rng backs Prob draws; guarded by mu because hits race.
	mu sync.Mutex
	//tknn:guardedBy(mu)
	rng *rand.Rand
}

// fires reports whether this hit (1-based h within the rule) fires.
func (r *rule) shouldFire(h uint64) bool {
	if h <= r.After {
		return false
	}
	if r.Count > 0 && r.fires.Load() >= r.Count {
		return false
	}
	if r.Prob > 0 {
		r.mu.Lock()
		ok := r.rng.Float64() < r.Prob
		r.mu.Unlock()
		if !ok {
			return false
		}
	} else {
		every := r.Every
		if every == 0 {
			every = 1
		}
		if (h-r.After-1)%every != 0 {
			return false
		}
	}
	r.fires.Add(1)
	return true
}

func (r *rule) err() error {
	return fmt.Errorf("fault: %s at %s (hit %d): %w", r.Kind, r.Point, r.hits.Load(), ErrInjected)
}

// registry is an immutable rule set; Configure/Set/Reset swap the whole
// pointer so the hit path reads without locks.
type registry struct {
	points map[string][]*rule
}

var current atomic.Pointer[registry]

// regMu serializes registry mutations (the swap itself is atomic; the
// read-modify-write of Set is not).
var regMu sync.Mutex

// Set installs one rule, keeping existing rules (several rules may attach
// to one point: a latency rule and an error rule compose).
func Set(r Rule, seed int64) error {
	if r.Point == "" {
		return errors.New("fault: rule has no point")
	}
	if r.Kind == Latency && r.Delay <= 0 {
		return fmt.Errorf("fault: latency rule at %s has no delay", r.Point)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: rule at %s has probability %g outside [0,1]", r.Point, r.Prob)
	}
	if r.Keep < 0 {
		return fmt.Errorf("fault: truncate rule at %s keeps negative bytes", r.Point)
	}
	regMu.Lock()
	defer regMu.Unlock()
	old := current.Load()
	next := &registry{points: map[string][]*rule{}}
	if old != nil {
		for p, rs := range old.points {
			next.points[p] = rs
		}
	}
	in := &rule{Rule: r}
	in.rng = rand.New(rand.NewSource(seed ^ int64(len(next.points[r.Point])+1)))
	next.points[r.Point] = append(append([]*rule(nil), next.points[r.Point]...), in)
	current.Store(next)
	return nil
}

// Reset removes every rule and clears all schedule state.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	current.Store(nil)
}

// Configure resets the registry and installs the rules of spec, a
// semicolon-separated list of colon-separated rules:
//
//	point:kind[:k=v]...
//
// where kind is `error`, `latency=<duration>`, or `truncate=<keep-bytes>`,
// and the optional settings are `after=<n>`, `every=<n>`, `count=<n>`,
// and `prob=<p>`. seed makes probabilistic rules reproducible.
func Configure(spec string, seed int64) error {
	// Parse everything first so a bad spec never half-installs.
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		r, err := parseRule(rs)
		if err != nil {
			return err
		}
		rules = append(rules, r)
	}
	Reset()
	for _, r := range rules {
		if err := Set(r, seed); err != nil {
			Reset()
			return err
		}
	}
	return nil
}

func parseRule(s string) (Rule, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 2 {
		return Rule{}, fmt.Errorf("fault: rule %q needs at least point:kind", s)
	}
	r := Rule{Point: fields[0]}
	kindSet := false
	for _, f := range fields[1:] {
		key, val, hasVal := strings.Cut(f, "=")
		switch key {
		case "error":
			r.Kind, kindSet = Error, true
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil || !hasVal {
				return Rule{}, fmt.Errorf("fault: rule %q: bad latency %q", s, val)
			}
			r.Kind, r.Delay, kindSet = Latency, d, true
		case "truncate":
			n, err := strconv.Atoi(val)
			if err != nil || !hasVal {
				return Rule{}, fmt.Errorf("fault: rule %q: bad truncate %q", s, val)
			}
			r.Kind, r.Keep, kindSet = Truncate, n, true
		case "after", "every", "count":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || !hasVal {
				return Rule{}, fmt.Errorf("fault: rule %q: bad %s %q", s, key, val)
			}
			switch key {
			case "after":
				r.After = n
			case "every":
				r.Every = n
			case "count":
				r.Count = n
			}
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || !hasVal {
				return Rule{}, fmt.Errorf("fault: rule %q: bad prob %q", s, val)
			}
			r.Prob = p
		default:
			return Rule{}, fmt.Errorf("fault: rule %q: unknown directive %q", s, f)
		}
	}
	if !kindSet {
		return Rule{}, fmt.Errorf("fault: rule %q has no kind (error, latency=, or truncate=)", s)
	}
	return r, nil
}

// Hit records one pass through the named point. A firing latency rule
// sleeps; a firing error (or truncate — from a read-shaped point the
// distinction is moot) rule returns its injected error. With no rules
// configured it is a pointer load and a map lookup.
func Hit(point string) error {
	reg := current.Load()
	if reg == nil {
		return nil
	}
	var failed *rule
	for _, r := range reg.points[point] {
		h := r.hits.Add(1)
		if !r.shouldFire(h) {
			continue
		}
		if r.Kind == Latency {
			time.Sleep(r.Delay)
			continue
		}
		if failed == nil {
			failed = r
		}
	}
	if failed != nil {
		return failed.err()
	}
	return nil
}

// Cut is Hit for write-shaped points: the caller is about to write n
// bytes, and the returned keep says how many of them actually to write
// before returning the returned error. keep == n with a nil error means
// the write proceeds untouched; a firing Error rule fails the write
// before any byte (keep 0); a firing Truncate rule models a torn write —
// min(Keep, n) bytes land, then the error.
func Cut(point string, n int) (keep int, err error) {
	reg := current.Load()
	if reg == nil {
		return n, nil
	}
	keep = n
	var failed *rule
	for _, r := range reg.points[point] {
		h := r.hits.Add(1)
		if !r.shouldFire(h) {
			continue
		}
		switch r.Kind {
		case Latency:
			time.Sleep(r.Delay)
		case Truncate:
			if failed == nil {
				failed = r
				if r.Keep < keep {
					keep = r.Keep
				}
			}
		default:
			if failed == nil {
				failed = r
				keep = 0
			}
		}
	}
	if failed != nil {
		return keep, failed.err()
	}
	return n, nil
}

// PointStats aggregates one point's schedule state.
type PointStats struct {
	// Point is the injection-point name.
	Point string
	// Hits counts passes through the point (summed over its rules).
	Hits uint64
	// Fires counts injected faults (errors, sleeps, truncations).
	Fires uint64
}

// Snapshot returns per-point hit/fire counts for every point with at
// least one rule, sorted by name.
func Snapshot() []PointStats {
	reg := current.Load()
	if reg == nil {
		return nil
	}
	out := make([]PointStats, 0, len(reg.points))
	for p, rs := range reg.points {
		st := PointStats{Point: p}
		for _, r := range rs {
			// A point with several rules counts each rule's hits; divide
			// mentally by the rule count if you need per-operation hits.
			st.Hits += r.hits.Load()
			st.Fires += r.fires.Load()
		}
		out = append(out, st)
	}
	sortStats(out)
	return out
}

// TotalFires sums injected faults across every rule — the counter the
// server's metrics endpoint exposes in fault-enabled builds.
func TotalFires() uint64 {
	reg := current.Load()
	if reg == nil {
		return 0
	}
	var n uint64
	for _, rs := range reg.points {
		for _, r := range rs {
			n += r.fires.Load()
		}
	}
	return n
}

// Active reports whether any rule is installed — cheap enough for a
// handler to decide whether to consult Snapshot.
func Active() bool {
	reg := current.Load()
	return reg != nil && len(reg.points) > 0
}

func sortStats(s []PointStats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Point < s[j-1].Point; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
