package fault

import (
	"errors"
	"testing"
	"time"
)

// The registry machinery is compiled in every build (only the Enabled
// constant and the guarded call sites differ), so these tests run in the
// default suite too.

func TestCounterSchedule(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("p:error:after=2:every=3:count=2", 1); err != nil {
		t.Fatal(err)
	}
	// Hits 1..2 skipped (after), then fire on 3, 6 and stop (count=2).
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := Hit("p"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error does not wrap ErrInjected: %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	want := []int{3, 6}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	st := Snapshot()
	if len(st) != 1 || st[0].Point != "p" || st[0].Hits != 12 || st[0].Fires != 2 {
		t.Errorf("snapshot %+v", st)
	}
	if TotalFires() != 2 {
		t.Errorf("TotalFires = %d", TotalFires())
	}
}

func TestEveryHitByDefault(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("p:error", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := Hit("p"); err == nil {
			t.Fatalf("hit %d did not fire", i)
		}
	}
}

func TestUnknownPointNeverFires(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("p:error", 1); err != nil {
		t.Fatal(err)
	}
	if err := Hit("other"); err != nil {
		t.Fatalf("unconfigured point fired: %v", err)
	}
}

func TestCutTruncates(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("w:truncate=5:after=1", 1); err != nil {
		t.Fatal(err)
	}
	if keep, err := Cut("w", 100); keep != 100 || err != nil {
		t.Fatalf("first write touched: keep=%d err=%v", keep, err)
	}
	keep, err := Cut("w", 100)
	if keep != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("second write: keep=%d err=%v, want torn at 5", keep, err)
	}
	// Truncation never grows a write.
	if keep, _ := Cut("w", 3); keep > 3 {
		t.Fatalf("truncate grew a 3-byte write to %d", keep)
	}
}

func TestCutErrorKeepsNothing(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("w:error", 1); err != nil {
		t.Fatal(err)
	}
	if keep, err := Cut("w", 64); keep != 0 || err == nil {
		t.Fatalf("error rule: keep=%d err=%v", keep, err)
	}
}

func TestLatencyRuleSleeps(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("p:latency=20ms:count=1", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatalf("latency rule returned an error: %v", err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Errorf("slept %v, want >= 20ms", el)
	}
	// Count exhausted: no sleep.
	start = time.Now()
	if err := Hit("p"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Millisecond {
		t.Errorf("exhausted rule still slept %v", el)
	}
}

func TestProbReproducible(t *testing.T) {
	pattern := func(seed int64) []bool {
		t.Helper()
		if err := Configure("p:error:prob=0.3", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = Hit("p") != nil
		}
		return out
	}
	t.Cleanup(Reset)
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("prob=0.3 fired %d/%d times", fires, len(a))
	}
}

func TestConfigureRejectsBadSpecs(t *testing.T) {
	t.Cleanup(Reset)
	for _, spec := range []string{
		"p",                  // no kind
		"p:after=3",          // settings but no kind
		"p:latency",          // latency without duration
		"p:latency=xyz",      // bad duration
		"p:truncate=no",      // bad byte count
		"p:error:prob=1.5",   // probability out of range
		"p:error:bogus=1",    // unknown directive
		"p:error:after=-1",   // negative counter
		":error",             // empty point
		"p:error:every=zero", // bad counter
	} {
		if err := Configure(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	// A rejected Configure leaves the registry empty, not half-installed.
	if Active() {
		t.Error("failed Configure left rules installed")
	}
}

func TestMultipleRulesCompose(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("p:latency=5ms:count=1;p:error:after=1", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatalf("first hit should only sleep: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("latency rule did not sleep")
	}
	if err := Hit("p"); err == nil {
		t.Fatal("error rule did not fire on the second hit")
	}
}

func TestResetClears(t *testing.T) {
	if err := Configure("p:error", 1); err != nil {
		t.Fatal(err)
	}
	Reset()
	if err := Hit("p"); err != nil {
		t.Fatalf("rule survived Reset: %v", err)
	}
	if Active() || Snapshot() != nil || TotalFires() != 0 {
		t.Error("state survived Reset")
	}
}
