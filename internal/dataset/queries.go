package dataset

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/bsbf"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Query is one TkNN query q = (W, K, Ts, Te) against a workload.
type Query struct {
	W      []float32
	K      int
	Ts, Te int64
}

// WindowForFraction samples a random query time window covering fraction f
// of the n indexed vectors, mirroring §5.2: "the start and end times of
// the query time window are randomly determined to cover a fraction of the
// entire data". Timestamps are taken from times (sorted ascending).
func WindowForFraction(rng *rand.Rand, times []int64, f float64) (ts, te int64) {
	n := len(times)
	wlen := int(f * float64(n))
	if wlen < 1 {
		wlen = 1
	}
	if wlen > n {
		wlen = n
	}
	start := 0
	if n > wlen {
		start = rng.Intn(n - wlen + 1)
	}
	ts = times[start]
	if start+wlen < n {
		te = times[start+wlen]
	} else {
		te = times[n-1] + 1
	}
	return ts, te
}

// MakeQueries builds one query per test vector with windows covering
// fraction f of the data and result count k.
func MakeQueries(rng *rand.Rand, d *Data, k int, f float64) []Query {
	qs := make([]Query, len(d.Test))
	for i, w := range d.Test {
		ts, te := WindowForFraction(rng, d.Times, f)
		qs[i] = Query{W: w, K: k, Ts: ts, Te: te}
	}
	return qs
}

// GroundTruth computes the exact answer of every query by brute force,
// fanning queries across workers goroutines (0 means 1).
func GroundTruth(store *vec.Store, times []int64, metric vec.Metric, qs []Query, workers int) [][]theap.Neighbor {
	if workers < 1 {
		workers = 1
	}
	out := make([][]theap.Neighbor, len(qs))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(qs) {
					return
				}
				q := qs[i]
				lo, hi := bsbf.WindowOf(times, q.Ts, q.Te)
				out[i] = bsbf.ScanRange(store, metric, q.W, q.K, lo, hi)
			}
		}()
	}
	wg.Wait()
	return out
}

// Recall returns recall@k of an approximate answer against the exact one.
//
// It counts an approximate result as a hit if its distance is within the
// exact k-th distance (with a tiny relative slack for float roundoff) —
// the distance-based recall used by ann-benchmarks, which is robust to
// ties that make set intersection under-count.
func Recall(approx, exact []theap.Neighbor, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(exact) < k {
		k = len(exact) // window holds fewer than k vectors; score against what exists
	}
	if k == 0 {
		return 1 // nothing to find: trivially perfect
	}
	threshold := exact[k-1].Dist
	threshold += absf(threshold) * 1e-5
	hits := 0
	for i, a := range approx {
		if i >= k {
			break
		}
		if a.Dist <= threshold {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// MeanRecall averages Recall across a query batch.
func MeanRecall(approx, exact [][]theap.Neighbor, k int) (float64, error) {
	if len(approx) != len(exact) {
		return 0, fmt.Errorf("dataset: %d approximate answers for %d exact", len(approx), len(exact))
	}
	if len(approx) == 0 {
		return 0, fmt.Errorf("dataset: no answers to score")
	}
	var sum float64
	for i := range approx {
		sum += Recall(approx[i], exact[i], k)
	}
	return sum / float64(len(approx)), nil
}

func absf(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
