package dataset

import (
	"testing"

	"repro/internal/vec"
)

func driftProfile() Profile {
	p, _ := ProfileByName("DEEP1B")
	p.TrainN, p.TestN = 2000, 20
	return p
}

func TestGenerateDriftingDeterministic(t *testing.T) {
	p := driftProfile()
	cfg := DriftConfig{Rate: 1e-3, Renormalize: true}
	a := GenerateDrifting(p, cfg, 9)
	b := GenerateDrifting(p, cfg, 9)
	if a.Train.Len() != p.TrainN || len(a.Test) != p.TestN {
		t.Fatalf("sizes %d/%d", a.Train.Len(), len(a.Test))
	}
	for i := 0; i < a.Train.Len(); i += 97 {
		av, bv := a.Train.At(i), b.Train.At(i)
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("vector %d differs between same-seed generations", i)
			}
		}
	}
}

func TestDriftIncreasesSpread(t *testing.T) {
	p := driftProfile()
	var prev float32 = -1
	for _, rate := range []float64{0, 5e-3, 2e-2} {
		d := GenerateDrifting(p, DriftConfig{Rate: rate, Renormalize: true}, 11)
		spread := CenterSpread(d)
		if spread < 0 {
			t.Fatalf("negative spread %g", spread)
		}
		if rate > 0 && spread <= prev {
			t.Errorf("rate %g: spread %g not larger than previous %g", rate, spread, prev)
		}
		prev = spread
	}
}

func TestDriftZeroMatchesStationaryShape(t *testing.T) {
	// Rate 0 should behave like the stationary generator statistically:
	// tiny first/last decile centroid distance.
	p := driftProfile()
	d := GenerateDrifting(p, DriftConfig{Rate: 0}, 13)
	// Sampling noise for 500-vector centroids of ~unit vectors is about
	// sqrt(2/500)*||x|| ~ 0.07; anything near that means no drift.
	if spread := CenterSpread(d); spread > 0.2 {
		t.Errorf("zero-drift spread %g, want sampling noise only", spread)
	}
	// Angular profile data is normalized.
	for i := 0; i < d.Train.Len(); i += 211 {
		n := vec.SquaredNorm(d.Train.At(i))
		if n < 0.99 || n > 1.01 {
			t.Fatalf("vector %d squared norm %g", i, n)
		}
	}
}

func TestCenterSpreadTinyData(t *testing.T) {
	p := driftProfile()
	p.TrainN, p.TestN = 10, 2
	d := GenerateDrifting(p, DriftConfig{Rate: 1}, 15)
	if got := CenterSpread(d); got != 0 {
		t.Errorf("tiny-data spread = %g, want 0 sentinel", got)
	}
}
