package dataset

import (
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Time-accumulating data rarely stays stationary: photo styles, music
// genres, and weather regimes drift, so vectors from 2024 occupy a
// different region of the space than vectors from 2008. GenerateDrifting
// produces such a workload by random-walking the cluster centers as time
// advances. Drift is the interesting regime for MBI versus SF: each MBI
// block's graph covers a temporally (hence spatially) coherent slice,
// while SF's single graph must span every era at once.

// DriftConfig controls GenerateDrifting.
type DriftConfig struct {
	// Rate is the standard deviation of each center's per-step random
	// walk, as a fraction of the unit center norm, applied once per
	// emitted vector. Typical interesting values: 1e-4 .. 1e-3 (over n
	// steps the centers move ~Rate*sqrt(n)).
	Rate float64
	// Renormalize keeps centers on the unit sphere as they walk, so
	// drift changes direction rather than magnitude. Recommended for
	// angular profiles.
	Renormalize bool
}

// GenerateDrifting draws profile p's workload with cluster centers that
// drift over time. Test queries are drawn against the *final* state of
// the centers, mimicking "current" probes against historical data. The
// same (p, cfg, seed) triple always yields identical data.
func GenerateDrifting(p Profile, cfg DriftConfig, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, p.Clusters)
	for c := range centers {
		v := make([]float32, p.Dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		vec.Normalize(v)
		centers[c] = v
	}

	noiseScale := p.ClusterStd / math.Sqrt(float64(p.Dim))
	bgScale := 0.7 / math.Sqrt(float64(p.Dim))
	stepScale := cfg.Rate / math.Sqrt(float64(p.Dim))

	drift := func() {
		for _, c := range centers {
			for i := range c {
				c[i] += float32(rng.NormFloat64() * stepScale)
			}
			if cfg.Renormalize {
				vec.Normalize(c)
			}
		}
	}
	sample := func() []float32 {
		v := make([]float32, p.Dim)
		if rng.Float64() < p.Background {
			for i := range v {
				v[i] = float32(rng.NormFloat64() * bgScale)
			}
		} else {
			c := centers[rng.Intn(p.Clusters)]
			for i := range v {
				v[i] = c[i] + float32(rng.NormFloat64()*noiseScale)
			}
		}
		if p.Metric == vec.Angular {
			vec.Normalize(v)
		}
		return v
	}

	train := vec.NewStoreCap(p.Dim, p.TrainN)
	times := make([]int64, p.TrainN)
	for i := 0; i < p.TrainN; i++ {
		if _, err := train.Append(sample()); err != nil {
			panic(err) // dimensions are internally consistent
		}
		times[i] = int64(i)
		drift()
	}
	queries := make([][]float32, p.TestN)
	for i := range queries {
		queries[i] = sample()
	}
	return &Data{Profile: p, Train: train, Times: times, Test: queries}
}

// CenterSpread is a cheap, model-free drift indicator: the Euclidean
// distance between the centroids of the first and last quartiles of the
// training data. Stationary data gives sampling noise (~sqrt(8/n) for
// unit vectors); drifting data grows with the drift rate. Euclidean is
// used regardless of the profile metric because cosine distance between
// near-zero centroids (random cluster directions cancel) is meaningless.
func CenterSpread(d *Data) float32 {
	n := d.Train.Len()
	if n < 20 {
		return 0
	}
	dim := d.Train.Dim()
	first := make([]float32, dim)
	last := make([]float32, dim)
	quarter := n / 4
	for i := 0; i < quarter; i++ {
		a, b := d.Train.At(i), d.Train.At(n-1-i)
		for j := 0; j < dim; j++ {
			first[j] += a[j] / float32(quarter)
			last[j] += b[j] / float32(quarter)
		}
	}
	return sqrt32(vec.SquaredL2(first, last))
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}
