package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/theap"
	"repro/internal/vec"
)

func TestProfilesWellFormed(t *testing.T) {
	ps := Profiles()
	if len(ps) != 6 {
		t.Fatalf("%d profiles, want 6 (Table 2)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.Dim <= 0 || p.TrainN <= 0 || p.TestN <= 0 || p.Clusters <= 0 {
			t.Errorf("%s: non-positive sizes %+v", p.Name, p)
		}
		if !p.Metric.Valid() {
			t.Errorf("%s: invalid metric", p.Name)
		}
		if p.LeafSize < p.LeafSizeScaledMin() {
			t.Errorf("%s: leaf size %d below minimum %d", p.Name, p.LeafSize, p.LeafSizeScaledMin())
		}
		if p.Tau <= 0 || p.Tau > 1 {
			t.Errorf("%s: tau %g out of range", p.Name, p.Tau)
		}
		if p.TrainN < 8*p.LeafSize {
			t.Errorf("%s: train size %d gives fewer than 8 leaves (S_L=%d)", p.Name, p.TrainN, p.LeafSize)
		}
	}
}

func TestProfileTable2Fidelity(t *testing.T) {
	// Dimensions and metrics must match the paper's Table 2 exactly.
	want := map[string]struct {
		dim    int
		metric vec.Metric
	}{
		"MovieLens": {32, vec.Angular},
		"COMS":      {128, vec.Angular},
		"GloVe-100": {100, vec.Angular},
		"SIFT1M":    {128, vec.Euclidean},
		"GIST1M":    {960, vec.Euclidean},
		"DEEP1B":    {96, vec.Angular},
	}
	for _, p := range Profiles() {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if p.Dim != w.dim || p.Metric != w.metric {
			t.Errorf("%s: dim/metric = %d/%v, paper says %d/%v", p.Name, p.Dim, p.Metric, w.dim, w.metric)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("sift1m")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "SIFT1M" {
		t.Errorf("got %q", p.Name)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestScale(t *testing.T) {
	p, _ := ProfileByName("COMS")
	up := p.Scale(2)
	if up.TrainN <= p.TrainN || up.LeafSize <= p.LeafSize {
		t.Errorf("Scale(2) did not grow: %+v", up)
	}
	down := p.Scale(0.1)
	if down.LeafSize < down.LeafSizeScaledMin() {
		t.Errorf("Scale(0.1) leaf size %d below minimum", down.LeafSize)
	}
	if down.TrainN < 8*down.LeafSizeScaledMin() {
		t.Errorf("Scale(0.1) train size %d too small for a tree", down.TrainN)
	}
	same := p.Scale(1)
	if same != p {
		t.Error("Scale(1) should be identity")
	}
}

func TestGenerateDeterministicAndShaped(t *testing.T) {
	p, _ := ProfileByName("MovieLens")
	p.TrainN, p.TestN = 500, 20
	a := Generate(p, 42)
	b := Generate(p, 42)
	if a.Train.Len() != 500 || len(a.Test) != 20 || len(a.Times) != 500 {
		t.Fatalf("sizes: train %d test %d times %d", a.Train.Len(), len(a.Test), len(a.Times))
	}
	for i := 0; i < 500; i++ {
		av, bv := a.Train.At(i), b.Train.At(i)
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("vector %d differs between same-seed generations", i)
			}
		}
		if a.Times[i] != int64(i) {
			t.Fatalf("timestamp %d = %d, want %d", i, a.Times[i], i)
		}
	}
	c := Generate(p, 43)
	same := true
	for j, x := range a.Train.At(0) {
		if x != c.Train.At(0)[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical first vectors")
	}
}

func TestGenerateAngularIsNormalized(t *testing.T) {
	p, _ := ProfileByName("COMS")
	p.TrainN, p.TestN = 200, 10
	d := Generate(p, 7)
	for i := 0; i < d.Train.Len(); i++ {
		n := vec.SquaredNorm(d.Train.At(i))
		if math.Abs(float64(n)-1) > 1e-3 {
			t.Fatalf("train vector %d has squared norm %g", i, n)
		}
	}
	for i, v := range d.Test {
		n := vec.SquaredNorm(v)
		if math.Abs(float64(n)-1) > 1e-3 {
			t.Fatalf("test vector %d has squared norm %g", i, n)
		}
	}
}

func TestInputBytes(t *testing.T) {
	p, _ := ProfileByName("MovieLens")
	p.TrainN, p.TestN = 100, 5
	d := Generate(p, 1)
	if got, want := d.InputBytes(), int64(100*32*4); got != want {
		t.Errorf("InputBytes = %d, want %d", got, want)
	}
}

func TestWindowForFraction(t *testing.T) {
	times := make([]int64, 1000)
	for i := range times {
		times[i] = int64(i * 3) // gaps
	}
	rng := rand.New(rand.NewSource(1))
	for _, f := range []float64{0.001, 0.01, 0.25, 0.5, 1.0} {
		for trial := 0; trial < 50; trial++ {
			ts, te := WindowForFraction(rng, times, f)
			if ts >= te {
				t.Fatalf("f=%g: empty window [%d, %d)", f, ts, te)
			}
			// Count covered items; should be within one of the target.
			count := 0
			for _, tt := range times {
				if tt >= ts && tt < te {
					count++
				}
			}
			want := int(f * 1000)
			if want < 1 {
				want = 1
			}
			if count != want {
				t.Fatalf("f=%g: window covers %d items, want %d", f, count, want)
			}
		}
	}
}

func TestMakeQueriesShape(t *testing.T) {
	p, _ := ProfileByName("MovieLens")
	p.TrainN, p.TestN = 300, 12
	d := Generate(p, 3)
	rng := rand.New(rand.NewSource(4))
	qs := MakeQueries(rng, d, 7, 0.2)
	if len(qs) != 12 {
		t.Fatalf("%d queries, want 12", len(qs))
	}
	for _, q := range qs {
		if q.K != 7 || len(q.W) != 32 || q.Ts >= q.Te {
			t.Fatalf("malformed query %+v", q)
		}
	}
}

func TestGroundTruthMatchesSerial(t *testing.T) {
	p, _ := ProfileByName("MovieLens")
	p.TrainN, p.TestN = 400, 20
	d := Generate(p, 5)
	rng := rand.New(rand.NewSource(6))
	qs := MakeQueries(rng, d, 5, 0.3)
	par := GroundTruth(d.Train, d.Times, p.Metric, qs, 4)
	ser := GroundTruth(d.Train, d.Times, p.Metric, qs, 1)
	for i := range qs {
		if len(par[i]) != len(ser[i]) {
			t.Fatalf("query %d: %d vs %d results", i, len(par[i]), len(ser[i]))
		}
		for j := range par[i] {
			if par[i][j] != ser[i][j] {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

func TestRecallScoring(t *testing.T) {
	exact := []theap.Neighbor{{ID: 1, Dist: 1}, {ID: 2, Dist: 2}, {ID: 3, Dist: 3}}
	cases := []struct {
		name   string
		approx []theap.Neighbor
		k      int
		want   float64
	}{
		{"perfect", exact, 3, 1},
		{"miss one", []theap.Neighbor{{ID: 1, Dist: 1}, {ID: 2, Dist: 2}, {ID: 9, Dist: 9}}, 3, 2.0 / 3},
		{"empty approx", nil, 3, 0},
		{"tie counts", []theap.Neighbor{{ID: 7, Dist: 1}, {ID: 8, Dist: 2}, {ID: 9, Dist: 3}}, 3, 1},
		{"k beyond exact", exact, 5, 1}, // scored against the 3 that exist
		{"k zero", exact, 0, 0},
	}
	for _, c := range cases {
		if got := Recall(c.approx, exact, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: recall = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestRecallEmptyWindow(t *testing.T) {
	// Exact answer empty (window held nothing): trivially perfect.
	if got := Recall(nil, nil, 5); got != 1 {
		t.Errorf("empty-exact recall = %g, want 1", got)
	}
}

func TestMeanRecall(t *testing.T) {
	exact := [][]theap.Neighbor{
		{{ID: 1, Dist: 1}},
		{{ID: 2, Dist: 2}},
	}
	approx := [][]theap.Neighbor{
		{{ID: 1, Dist: 1}},
		{{ID: 9, Dist: 9}},
	}
	got, err := MeanRecall(approx, exact, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("mean recall = %g, want 0.5", got)
	}
	if _, err := MeanRecall(approx[:1], exact, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MeanRecall(nil, nil, 1); err == nil {
		t.Error("empty batch accepted")
	}
}
