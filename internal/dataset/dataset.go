// Package dataset provides the workloads for the experiments: synthetic
// stand-ins for the paper's six datasets (Table 2), exact ground truth for
// TkNN queries, recall@k, and query-window sampling.
//
// The paper's real datasets (MovieLens, COMS satellite embeddings,
// GloVe-100, SIFT1M, GIST1M, DEEP1B) are not redistributable here, so each
// profile generates a clustered Gaussian mixture with the same
// dimensionality and metric, scaled to laptop size. Clustered data keeps
// graph-based search meaningful (uniform random points in high dimension
// make every method degenerate to brute force). Timestamps are the
// insertion index, exactly how the paper treats GloVe/SIFT/GIST/DEEP
// ("we consider the index of each item as its virtual timestamp").
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Profile describes one dataset stand-in plus the default parameters the
// paper's Table 3 assigns to it, rescaled to this repository's default
// sizes.
type Profile struct {
	// Name matches the paper's dataset name.
	Name string
	// Dim and Metric match the paper's Table 2 exactly.
	Dim    int
	Metric vec.Metric
	// TrainN and TestN are the laptop-scale default sizes; Scale adjusts.
	TrainN, TestN int
	// Clusters controls the Gaussian mixture the generator draws from.
	Clusters int
	// ClusterStd is the total L2 norm of intra-cluster noise relative to
	// the unit-norm cluster centers. Values near or above 1 make clusters
	// overlap like real embedding clouds do; well-separated balls
	// (values << 1) are unrealistically hard for single-entry graph
	// search and unrealistically easy for everything else.
	ClusterStd float64
	// Background is the fraction of points drawn from a broad ambient
	// Gaussian instead of a cluster, mimicking the long tail of real
	// embedding datasets.
	Background float64
	// LeafSize is the default S_L, scaled from Table 3 in proportion to
	// TrainN versus the paper's dataset size.
	LeafSize int
	// Tau is the paper's best-performing τ for this dataset (Table 3
	// lists one or two; the first is used as default).
	Tau float64
	// GraphK is the NNDescent neighbor count (Table 3's "# neighbors",
	// scaled down with the dataset).
	GraphK int
	// MC is the Algorithm 2 candidate cap M_C (Table 3, scaled).
	MC int
	// PaperTrainN and PaperTestN are the paper's Table 2 sizes, kept for
	// the Table 2 report.
	PaperTrainN, PaperTestN int
	// PaperLeafSize is the paper's Table 3 S_L.
	PaperLeafSize int
}

// Profiles returns the six dataset stand-ins in the paper's Table 2 order.
// Default sizes keep a full experiment run tractable on one core; the
// Scale method enlarges them proportionally.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "MovieLens", Dim: 32, Metric: vec.Angular,
			TrainN: 12000, TestN: 200, Clusters: 60, ClusterStd: 1.0, Background: 0.1,
			LeafSize: 750, Tau: 0.5, GraphK: 20, MC: 40,
			PaperTrainN: 57571, PaperTestN: 200, PaperLeafSize: 3550,
		},
		{
			Name: "COMS", Dim: 128, Metric: vec.Angular,
			TrainN: 12000, TestN: 200, Clusters: 40, ClusterStd: 0.9, Background: 0.1,
			LeafSize: 400, Tau: 0.2, GraphK: 24, MC: 48,
			PaperTrainN: 291180, PaperTestN: 200, PaperLeafSize: 1000,
		},
		{
			Name: "GloVe-100", Dim: 100, Metric: vec.Angular,
			TrainN: 16000, TestN: 400, Clusters: 80, ClusterStd: 1.1, Background: 0.1,
			LeafSize: 1000, Tau: 0.2, GraphK: 24, MC: 48,
			PaperTrainN: 1183514, PaperTestN: 10000, PaperLeafSize: 36000,
		},
		{
			Name: "SIFT1M", Dim: 128, Metric: vec.Euclidean,
			TrainN: 16000, TestN: 400, Clusters: 64, ClusterStd: 1.0, Background: 0.1,
			LeafSize: 1000, Tau: 0.3, GraphK: 24, MC: 48,
			PaperTrainN: 1000000, PaperTestN: 10000, PaperLeafSize: 15625,
		},
		{
			Name: "GIST1M", Dim: 960, Metric: vec.Euclidean,
			TrainN: 4000, TestN: 100, Clusters: 32, ClusterStd: 1.0, Background: 0.1,
			LeafSize: 250, Tau: 0.3, GraphK: 24, MC: 64,
			PaperTrainN: 1000000, PaperTestN: 1000, PaperLeafSize: 15625,
		},
		{
			Name: "DEEP1B", Dim: 96, Metric: vec.Angular,
			TrainN: 20000, TestN: 400, Clusters: 100, ClusterStd: 1.0, Background: 0.1,
			LeafSize: 1250, Tau: 0.2, GraphK: 16, MC: 32,
			PaperTrainN: 9990000, PaperTestN: 10000, PaperLeafSize: 78000,
		},
	}
}

// ProfileByName looks a profile up case-insensitively by its paper name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if equalFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Scale returns a copy of p with TrainN, TestN, and LeafSize multiplied by
// factor (minimums keep the tree non-degenerate).
func (p Profile) Scale(factor float64) Profile {
	if factor <= 0 || factor == 1 {
		return p
	}
	scaled := p
	scaled.TrainN = maxInt(8*maxInt(p.LeafSizeScaledMin(), 1), int(float64(p.TrainN)*factor))
	scaled.TestN = maxInt(50, int(float64(p.TestN)*factor))
	scaled.LeafSize = maxInt(p.LeafSizeScaledMin(), int(float64(p.LeafSize)*factor))
	return scaled
}

// LeafSizeScaledMin is the smallest leaf size that keeps the per-block
// graphs denser than their node degree.
func (p Profile) LeafSizeScaledMin() int { return 2 * p.GraphK }

// Data is one generated workload: a timestamped training set plus held-out
// query vectors (the paper samples queries from the data and excludes them
// from indexing, §5.2).
type Data struct {
	Profile Profile
	Train   *vec.Store
	Times   []int64
	Test    [][]float32
}

// InputBytes returns the raw size of the training vectors, the "Input Data
// Size" column of Table 4.
func (d *Data) InputBytes() int64 {
	return int64(d.Train.Len()) * int64(d.Train.Dim()) * 4
}

// Generate draws the workload for profile p. The same (p, seed) pair
// always yields identical data.
func Generate(p Profile, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, p.Clusters)
	for c := range centers {
		v := make([]float32, p.Dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		// Unit-norm centers put clusters on the sphere, which suits both
		// metrics: angular data is normalized anyway, and Euclidean data
		// gets well-separated modes.
		vec.Normalize(v)
		centers[c] = v
	}

	noiseScale := p.ClusterStd / math.Sqrt(float64(p.Dim))
	bgScale := 0.7 / math.Sqrt(float64(p.Dim))
	sample := func() []float32 {
		v := make([]float32, p.Dim)
		if rng.Float64() < p.Background {
			// Ambient long-tail point.
			for i := range v {
				v[i] = float32(rng.NormFloat64() * bgScale)
			}
		} else {
			c := centers[rng.Intn(p.Clusters)]
			for i := range v {
				v[i] = c[i] + float32(rng.NormFloat64()*noiseScale)
			}
		}
		if p.Metric == vec.Angular {
			vec.Normalize(v)
		}
		return v
	}

	train := vec.NewStoreCap(p.Dim, p.TrainN)
	times := make([]int64, p.TrainN)
	for i := 0; i < p.TrainN; i++ {
		if _, err := train.Append(sample()); err != nil {
			panic(err) // dimensions are internally consistent
		}
		times[i] = int64(i)
	}
	test := make([][]float32, p.TestN)
	for i := range test {
		test[i] = sample()
	}
	return &Data{Profile: p, Train: train, Times: times, Test: test}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
