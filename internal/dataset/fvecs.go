package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/vec"
)

// This file reads the TEXMEX corpus formats the paper's public datasets
// ship in (http://corpus-texmex.irisa.fr/): .fvecs holds float32 vectors,
// .ivecs int32 vectors (used for precomputed ground truth). Each record
// is a little-endian int32 dimension followed by that many values. With
// the real SIFT1M/GIST1M/GloVe files on disk, LoadReal swaps them in for
// the synthetic stand-ins; timestamps are the record index, exactly how
// the paper treats datasets without native time (§5.1.2).

// ReadFVecs parses an .fvecs stream. maxN > 0 caps the number of vectors
// read; maxN <= 0 reads everything.
func ReadFVecs(r io.Reader, maxN int) (*vec.Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var store *vec.Store
	for n := 0; maxN <= 0 || n < maxN; n++ {
		dim, err := readDim(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fvecs: record %d: %w", n, err)
		}
		buf := make([]float32, dim)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("fvecs: record %d body: %w", n, err)
		}
		if store == nil {
			store = vec.NewStore(dim)
		} else if store.Dim() != dim {
			return nil, fmt.Errorf("fvecs: record %d has dim %d, want %d", n, dim, store.Dim())
		}
		if _, err := store.Append(buf); err != nil {
			return nil, err
		}
	}
	if store == nil {
		return nil, fmt.Errorf("fvecs: empty input")
	}
	return store, nil
}

// ReadIVecs parses an .ivecs stream (e.g. TEXMEX ground-truth files,
// where record i lists the true neighbor ids of query i).
func ReadIVecs(r io.Reader, maxN int) ([][]int32, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var out [][]int32
	for n := 0; maxN <= 0 || n < maxN; n++ {
		dim, err := readDim(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ivecs: record %d: %w", n, err)
		}
		rec := make([]int32, dim)
		if err := binary.Read(br, binary.LittleEndian, rec); err != nil {
			return nil, fmt.Errorf("ivecs: record %d body: %w", n, err)
		}
		out = append(out, rec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ivecs: empty input")
	}
	return out, nil
}

func readDim(br *bufio.Reader) (int, error) {
	var dim int32
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, io.EOF
		}
		return 0, err
	}
	if dim <= 0 || dim > 1<<20 {
		return 0, fmt.Errorf("implausible dimension %d", dim)
	}
	return int(dim), nil
}

// WriteFVecs writes a store in .fvecs format — the inverse of ReadFVecs,
// used by tests and for exporting synthetic workloads to other tools.
func WriteFVecs(w io.Writer, store *vec.Store) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	dim := int32(store.Dim())
	for i := 0; i < store.Len(); i++ {
		if err := binary.Write(bw, binary.LittleEndian, dim); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, store.At(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RealFiles names the on-disk files for a real dataset.
type RealFiles struct {
	// Train is the base-vector .fvecs file (required).
	Train string
	// Test is the query-vector .fvecs file (optional: when empty, the
	// last TestN train vectors are held out as queries).
	Test string
	// TestN caps the number of queries when Test is empty. Zero means 200.
	TestN int
}

// LoadReal builds a Data workload from real .fvecs files, replacing the
// synthetic generator for profile p. The profile supplies the metric and
// the index parameters; the dimension is taken from the file and checked
// against the profile's. maxN > 0 caps the training size.
func LoadReal(p Profile, files RealFiles, maxN int) (*Data, error) {
	f, err := os.Open(files.Train)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	train, err := ReadFVecs(f, maxN)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", files.Train, err)
	}
	if train.Dim() != p.Dim {
		return nil, fmt.Errorf("dataset: %s has dim %d, profile %s expects %d",
			files.Train, train.Dim(), p.Name, p.Dim)
	}

	var test [][]float32
	if files.Test != "" {
		tf, err := os.Open(files.Test)
		if err != nil {
			return nil, err
		}
		defer tf.Close()
		testStore, err := ReadFVecs(tf, 0)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", files.Test, err)
		}
		if testStore.Dim() != p.Dim {
			return nil, fmt.Errorf("dataset: %s has dim %d, profile %s expects %d",
				files.Test, testStore.Dim(), p.Name, p.Dim)
		}
		for i := 0; i < testStore.Len(); i++ {
			v := make([]float32, p.Dim)
			copy(v, testStore.At(i))
			test = append(test, v)
		}
	} else {
		// Hold out the tail as queries (the paper samples 200 vectors and
		// excludes them from indexing).
		testN := files.TestN
		if testN == 0 {
			testN = 200
		}
		if testN >= train.Len() {
			return nil, fmt.Errorf("dataset: %d vectors cannot spare %d held-out queries", train.Len(), testN)
		}
		keep := train.Len() - testN
		for i := keep; i < train.Len(); i++ {
			v := make([]float32, p.Dim)
			copy(v, train.At(i))
			test = append(test, v)
		}
		trimmed, err := vec.FromRaw(p.Dim, train.Raw()[:keep*p.Dim])
		if err != nil {
			return nil, err
		}
		train = trimmed
	}

	times := make([]int64, train.Len())
	for i := range times {
		times[i] = int64(i) // virtual timestamps, as in §5.1.2
	}
	scaled := p
	scaled.TrainN = train.Len()
	scaled.TestN = len(test)
	return &Data{Profile: scaled, Train: train, Times: times, Test: test}, nil
}
