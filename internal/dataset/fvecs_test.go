package dataset

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vec"
)

func randomStore(seed int64, n, dim int) *vec.Store {
	rng := rand.New(rand.NewSource(seed))
	s := vec.NewStore(dim)
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if _, err := s.Append(v); err != nil {
			panic(err)
		}
	}
	return s
}

func TestFVecsRoundTrip(t *testing.T) {
	want := randomStore(1, 57, 16)
	var buf bytes.Buffer
	if err := WriteFVecs(&buf, want); err != nil {
		t.Fatal(err)
	}
	// TEXMEX record size: 4 (dim) + 4*dim bytes.
	if got, wantLen := buf.Len(), 57*(4+4*16); got != wantLen {
		t.Errorf("encoded %d bytes, want %d", got, wantLen)
	}
	got, err := ReadFVecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 57 || got.Dim() != 16 {
		t.Fatalf("read %d x %d", got.Len(), got.Dim())
	}
	for i := 0; i < 57; i++ {
		a, b := want.At(i), got.At(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("vector %d differs at %d", i, j)
			}
		}
	}
}

func TestReadFVecsMaxN(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFVecs(&buf, randomStore(2, 30, 4)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFVecs(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Errorf("read %d, want 10", got.Len())
	}
}

func TestReadFVecsRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"negative dim": binaryLE(int32(-1)),
		"huge dim":     binaryLE(int32(1 << 24)),
		"truncated":    append(binaryLE(int32(4)), 1, 2, 3), // 3 of 16 body bytes
		"mixed dims":   append(append(append(binaryLE(int32(2)), binaryLE(float32(1), float32(2))...), binaryLE(int32(3))...), binaryLE(float32(1), float32(2), float32(3))...),
	}
	for name, raw := range cases {
		if _, err := ReadFVecs(bytes.NewReader(raw), 0); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestIVecsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	// Two records of ids.
	for _, rec := range [][]int32{{5, 2, 9}, {1, 1, 1}} {
		if err := binary.Write(&buf, binary.LittleEndian, int32(len(rec))); err != nil {
			t.Fatal(err)
		}
		if err := binary.Write(&buf, binary.LittleEndian, rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadIVecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][2] != 9 || got[1][0] != 1 {
		t.Fatalf("got %v", got)
	}
	if _, err := ReadIVecs(bytes.NewReader(nil), 0); err == nil {
		t.Error("empty ivecs accepted")
	}
}

func TestLoadRealWithHoldout(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.fvecs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	store := randomStore(3, 300, 32)
	if err := WriteFVecs(f, store); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p, _ := ProfileByName("MovieLens") // dim 32 matches
	d, err := LoadReal(p, RealFiles{Train: path, TestN: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Train.Len() != 250 || len(d.Test) != 50 {
		t.Fatalf("train %d test %d", d.Train.Len(), len(d.Test))
	}
	// Held-out queries are the tail vectors.
	for j, x := range d.Test[0] {
		if x != store.At(250)[j] {
			t.Fatal("first held-out query is not train vector 250")
		}
	}
	for i, tm := range d.Times {
		if tm != int64(i) {
			t.Fatal("virtual timestamps not sequential")
		}
	}
	if d.Profile.TrainN != 250 || d.Profile.TestN != 50 {
		t.Errorf("profile sizes not updated: %+v", d.Profile)
	}
}

func TestLoadRealWithQueryFile(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.fvecs")
	queries := filepath.Join(dir, "query.fvecs")
	for path, seed, n := base, int64(4), 100; ; {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFVecs(f, randomStore(seed, n, 32)); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if path == queries {
			break
		}
		path, seed, n = queries, 5, 7
	}
	p, _ := ProfileByName("MovieLens")
	d, err := LoadReal(p, RealFiles{Train: base, Test: queries}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Train.Len() != 100 || len(d.Test) != 7 {
		t.Fatalf("train %d test %d", d.Train.Len(), len(d.Test))
	}
}

func TestLoadRealValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.fvecs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFVecs(f, randomStore(6, 50, 16)); err != nil { // wrong dim for MovieLens
		t.Fatal(err)
	}
	f.Close()
	p, _ := ProfileByName("MovieLens")
	if _, err := LoadReal(p, RealFiles{Train: path}, 0); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := LoadReal(p, RealFiles{Train: filepath.Join(dir, "missing.fvecs")}, 0); err == nil {
		t.Error("missing file accepted")
	}
	// Too few vectors to spare the holdout.
	small := filepath.Join(dir, "small.fvecs")
	f, err = os.Create(small)
	if err != nil {
		t.Fatal(err)
	}
	store32 := randomStore(7, 10, 32)
	if err := WriteFVecs(f, store32); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := LoadReal(p, RealFiles{Train: small, TestN: 50}, 0); err == nil {
		t.Error("insufficient holdout accepted")
	}
}

func binaryLE(vs ...any) []byte {
	var buf bytes.Buffer
	for _, v := range vs {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}
