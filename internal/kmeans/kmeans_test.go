package kmeans

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// blobs generates k well-separated 2-d blobs of m points each.
func blobs(seed int64, k, m int) (vec.View, [][]float32) {
	rng := rand.New(rand.NewSource(seed))
	s := vec.NewStore(2)
	centers := make([][]float32, k)
	for c := range centers {
		centers[c] = []float32{float32(c * 100), float32(c % 3 * 100)}
		for i := 0; i < m; i++ {
			v := []float32{
				centers[c][0] + float32(rng.NormFloat64()),
				centers[c][1] + float32(rng.NormFloat64()),
			}
			if _, err := s.Append(v); err != nil {
				panic(err)
			}
		}
	}
	return vec.View{Store: s, Lo: 0, Hi: s.Len(), Metric: vec.Euclidean}, centers
}

func TestRunRecoversBlobs(t *testing.T) {
	view, centers := blobs(1, 4, 100)
	res, err := Run(view, Config{K: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Len() != 4 {
		t.Fatalf("%d centroids", res.Centroids.Len())
	}
	// Every true center should have a centroid within a couple of noise
	// standard deviations.
	for _, c := range centers {
		best := float32(1e30)
		for i := 0; i < 4; i++ {
			if d := vec.SquaredL2(c, res.Centroids.At(i)); d < best {
				best = d
			}
		}
		if best > 4 { // (2 sigma)^2
			t.Errorf("center %v has nearest centroid at squared distance %g", c, best)
		}
	}
	// Balanced assignment: each blob has 100 points.
	for c, size := range res.Sizes {
		if size < 80 || size > 120 {
			t.Errorf("cluster %d has %d members, want ~100", c, size)
		}
	}
}

func TestRunAssignmentsConsistent(t *testing.T) {
	view, _ := blobs(2, 3, 60)
	res, err := Run(view, Config{K: 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != view.Len() {
		t.Fatalf("%d assignments for %d points", len(res.Assign), view.Len())
	}
	counts := make([]int, 3)
	for i, a := range res.Assign {
		if a < 0 || int(a) >= 3 {
			t.Fatalf("point %d assigned to %d", i, a)
		}
		counts[a]++
		// Each point's assigned centroid is its nearest.
		p := view.At(i)
		own := vec.SquaredL2(p, res.Centroids.At(int(a)))
		for c := 0; c < 3; c++ {
			if d := vec.SquaredL2(p, res.Centroids.At(c)); d < own-1e-4 {
				t.Fatalf("point %d assigned to %d but %d is closer", i, a, c)
			}
		}
	}
	for c, got := range counts {
		if got != res.Sizes[c] {
			t.Errorf("cluster %d size mismatch: %d vs %d", c, got, res.Sizes[c])
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	view, _ := blobs(3, 3, 50)
	a, err := Run(view, Config{K: 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(view, Config{K: 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs between same-seed runs", i)
		}
	}
}

func TestRunEdgeCases(t *testing.T) {
	s := vec.NewStore(2)
	empty := vec.View{Store: s, Lo: 0, Hi: 0, Metric: vec.Euclidean}
	if _, err := Run(empty, Config{K: 2}, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Run(empty, Config{K: 0}, 1); err == nil {
		t.Error("K=0 accepted")
	}
	// K > n clamps to n.
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]float32{float32(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	view := vec.View{Store: s, Lo: 0, Hi: 3, Metric: vec.Euclidean}
	res, err := Run(view, Config{K: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Len() != 3 {
		t.Errorf("K>n gave %d centroids, want 3", res.Centroids.Len())
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	s := vec.NewStore(2)
	for i := 0; i < 20; i++ {
		if _, err := s.Append([]float32{5, 5}); err != nil {
			t.Fatal(err)
		}
	}
	view := vec.View{Store: s, Lo: 0, Hi: 20, Metric: vec.Euclidean}
	res, err := Run(view, Config{K: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, size := range res.Sizes {
		total += size
	}
	if total != 20 {
		t.Errorf("sizes sum to %d, want 20", total)
	}
}
