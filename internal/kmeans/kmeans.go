// Package kmeans implements k-means clustering with k-means++ seeding and
// Lloyd iterations over a vec.View. It is the coarse quantizer behind the
// IVF index (internal/ivf), written from scratch on the standard library.
package kmeans

import (
	"fmt"
	"math/rand"

	"repro/internal/vec"
)

// Config controls a clustering run.
type Config struct {
	// K is the number of centroids.
	K int
	// MaxIter caps the Lloyd iterations. Zero means 15.
	MaxIter int
	// MinMove stops early when fewer than MinMove fraction of points
	// change assignment in an iteration. Zero means 0.01.
	MinMove float64
}

// Result is a finished clustering: centroids plus each point's assignment.
type Result struct {
	// Centroids holds K centroid vectors.
	Centroids *vec.Store
	// Assign[i] is the centroid index of point i.
	Assign []int32
	// Sizes[c] is the number of points assigned to centroid c.
	Sizes []int
	// Iters is the number of Lloyd iterations run.
	Iters int
}

// Run clusters the view's vectors. Distances always use squared Euclidean
// — the standard k-means objective — regardless of the view's metric;
// for angular data the caller should normalize first (then Euclidean and
// cosine orderings agree). seed drives the k-means++ initialization.
func Run(view vec.View, cfg Config, seed int64) (*Result, error) {
	n := view.Len()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", cfg.K)
	}
	if n == 0 {
		return nil, fmt.Errorf("kmeans: empty input")
	}
	k := cfg.K
	if k > n {
		k = n
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 15
	}
	minMove := cfg.MinMove
	if minMove == 0 {
		minMove = 0.01
	}
	dim := view.Store.Dim()
	rng := rand.New(rand.NewSource(seed))

	centroids := seedPlusPlus(view, k, rng)
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		moved := 0
		for c := range sums {
			sizes[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			p := view.At(i)
			best, bestD := int32(0), vec.SquaredL2(p, centroids[0])
			for c := 1; c < k; c++ {
				if d := vec.SquaredL2(p, centroids[c]); d < bestD {
					best, bestD = int32(c), d
				}
			}
			if assign[i] != best {
				moved++
				assign[i] = best
			}
			sizes[best]++
			for j, x := range p {
				sums[best][j] += float64(x)
			}
		}
		// Update step; empty clusters are re-seeded at a random point so
		// K stays effective.
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				copy(centroids[c], view.At(rng.Intn(n)))
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = float32(sums[c][j] / float64(sizes[c]))
			}
		}
		if float64(moved) < minMove*float64(n) {
			iters++
			break
		}
	}

	// Final assignment against the last centroid update.
	for c := range sizes {
		sizes[c] = 0
	}
	for i := 0; i < n; i++ {
		p := view.At(i)
		best, bestD := int32(0), vec.SquaredL2(p, centroids[0])
		for c := 1; c < k; c++ {
			if d := vec.SquaredL2(p, centroids[c]); d < bestD {
				best, bestD = int32(c), d
			}
		}
		assign[i] = best
		sizes[best]++
	}

	out := vec.NewStoreCap(dim, k)
	for _, c := range centroids {
		if _, err := out.Append(c); err != nil {
			return nil, err
		}
	}
	return &Result{Centroids: out, Assign: assign, Sizes: sizes, Iters: iters}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ rule: each
// next centroid is drawn with probability proportional to its squared
// distance from the nearest already-chosen one.
func seedPlusPlus(view vec.View, k int, rng *rand.Rand) [][]float32 {
	n := view.Len()
	dim := view.Store.Dim()
	centroids := make([][]float32, 0, k)
	first := make([]float32, dim)
	copy(first, view.At(rng.Intn(n)))
	centroids = append(centroids, first)

	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = float64(vec.SquaredL2(view.At(i), first))
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n) // all points identical to some centroid
		} else {
			r := rng.Float64() * total
			for idx = 0; idx < n-1; idx++ {
				r -= d2[idx]
				if r <= 0 {
					break
				}
			}
		}
		next := make([]float32, dim)
		copy(next, view.At(idx))
		centroids = append(centroids, next)
		for i := range d2 {
			if d := float64(vec.SquaredL2(view.At(i), next)); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}
