// Package nsw implements a Navigable Small World graph builder (Malkov et
// al., Inf. Syst. 2014) as an alternative to NNDescent for indexing MBI
// blocks. The paper notes that "any index structure for efficient kNN
// search can be used" per block (§4.1); this package exists to exercise
// that claim — it plugs into the same graph.Builder interface, and the
// builder ablation in the benchmark harness compares the two.
//
// Construction is incremental: each vector is inserted by greedily
// searching the graph built so far for its M nearest neighbors and
// connecting to them bidirectionally, capping each node's degree.
package nsw

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Config holds NSW construction tunables.
type Config struct {
	// M is the number of bidirectional links created for each inserted
	// vector.
	M int
	// MaxDegree caps a node's neighbor list; when exceeded, only the
	// nearest MaxDegree neighbors are kept. Zero means 2*M.
	MaxDegree int
	// EFConstruction is the beam width of the insert-time search. Zero
	// means 4*M.
	EFConstruction int
}

// DefaultConfig returns an NSW configuration comparable in degree to an
// NNDescent graph with k neighbors.
func DefaultConfig(m int) Config {
	return Config{M: m}
}

// Builder is a graph.Builder backed by NSW incremental construction.
// It is immutable after construction and safe for concurrent Build calls.
type Builder struct {
	cfg Config
}

// New validates cfg and returns a Builder.
func New(cfg Config) (*Builder, error) {
	if cfg.M <= 0 {
		return nil, fmt.Errorf("nsw: M must be positive, got %d", cfg.M)
	}
	if cfg.MaxDegree < 0 || cfg.EFConstruction < 0 {
		return nil, fmt.Errorf("nsw: negative limits (maxDegree=%d, efConstruction=%d)", cfg.MaxDegree, cfg.EFConstruction)
	}
	if cfg.MaxDegree == 0 {
		cfg.MaxDegree = 2 * cfg.M
	}
	if cfg.EFConstruction == 0 {
		cfg.EFConstruction = 4 * cfg.M
	}
	return &Builder{cfg: cfg}, nil
}

// MustNew is New but panics on invalid configuration.
func MustNew(cfg Config) *Builder {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Name implements graph.Builder.
func (b *Builder) Name() string { return "nsw" }

// Config returns the builder's configuration.
func (b *Builder) Config() Config { return b.cfg }

// Build implements graph.Builder.
func (b *Builder) Build(view vec.View, seed int64) *graph.CSR {
	n := view.Len()
	if n == 0 {
		return &graph.CSR{Off: []int32{0}}
	}
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int32, n)
	visited := make([]uint32, n)
	var epoch uint32

	// Insert in a random permutation: NSW quality degrades if insertion
	// order correlates with spatial position, and MBI blocks arrive in
	// timestamp order which may drift spatially.
	order := rng.Perm(n)

	var frontier theap.MinQueue
	for step, vi := range order {
		v := int32(vi)
		if step == 0 {
			continue // first node has nothing to connect to
		}
		// Beam search over the partial graph from a random inserted node.
		entry := int32(order[rng.Intn(step)])
		epoch++
		nearest := beamSearch(view, adj, visited, epoch, &frontier, view.At(int(v)), entry, b.cfg.EFConstruction)

		links := selectDiverse(view, int(v), nearest, b.cfg.M)
		for _, nb := range links {
			adj[v] = append(adj[v], nb)
			adj[nb] = append(adj[nb], v)
			if len(adj[nb]) > b.cfg.MaxDegree {
				shrink(view, adj, nb, b.cfg.MaxDegree)
			}
		}
	}
	// Degree-capped shrinking can in rare cases isolate a region; repair
	// connectivity so single-entry search reaches everything.
	g := graph.FromLists(adj)
	if invariant.Enabled {
		// Shrinking enforces MaxDegree on backlink growth; a node's initial
		// links are bounded by M, so the pre-bridge cap is the larger of the
		// two. EnsureConnected may then add a few bridge endpoints past it.
		capDeg := b.cfg.MaxDegree
		if b.cfg.M > capDeg {
			capDeg = b.cfg.M
		}
		invariant.NoError(g.ValidateDegree(capDeg), "nsw: pre-bridge degree cap")
		invariant.NoError(g.Validate(), "nsw: pre-bridge graph shape")
	}
	return graph.EnsureConnected(g, view, rng)
}

// beamSearch finds up to ef nearest inserted nodes to q.
func beamSearch(view vec.View, adj [][]int32, visited []uint32, epoch uint32, frontier *theap.MinQueue, q []float32, entry int32, ef int) []theap.Neighbor {
	result := theap.NewTopK(ef)
	frontier.Reset()
	visited[entry] = epoch
	frontier.Push(theap.Neighbor{ID: entry, Dist: view.DistTo(q, int(entry))})
	for frontier.Len() > 0 {
		cur := frontier.Pop()
		if result.Full() && cur.Dist > result.Worst() {
			break
		}
		result.Push(cur)
		for _, nb := range adj[cur.ID] {
			if visited[nb] == epoch {
				continue
			}
			visited[nb] = epoch
			d := view.DistTo(q, int(nb))
			if result.Full() && d > result.Worst() {
				continue
			}
			frontier.Push(theap.Neighbor{ID: nb, Dist: d})
		}
	}
	return result.Items()
}

// selectDiverse picks up to m links for node v from distance-sorted
// candidates using the select-neighbors diversity heuristic: a candidate
// is kept only if it is closer to v than to every neighbor already kept.
// This preserves the long-range edges naive nearest-only selection prunes,
// keeping multi-cluster data navigable. Any remaining slots are filled
// with the nearest skipped candidates.
func selectDiverse(view vec.View, v int, cands []theap.Neighbor, m int) []int32 {
	kept := make([]int32, 0, m)
	var skipped []theap.Neighbor
	for _, c := range cands {
		if len(kept) == m {
			break
		}
		diverse := true
		for _, k := range kept {
			if view.Dist(int(c.ID), int(k)) < c.Dist {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, c.ID)
		} else {
			skipped = append(skipped, c)
		}
	}
	for _, c := range skipped {
		if len(kept) == m {
			break
		}
		kept = append(kept, c.ID)
	}
	return kept
}

// shrink trims node v's adjacency to maxDegree using the same diversity
// heuristic as link selection.
func shrink(view vec.View, adj [][]int32, v int32, maxDegree int) {
	list := adj[v]
	cands := make([]theap.Neighbor, 0, len(list))
	seen := make(map[int32]struct{}, len(list))
	for _, nb := range list {
		if _, dup := seen[nb]; dup {
			continue
		}
		seen[nb] = struct{}{}
		cands = append(cands, theap.Neighbor{ID: nb, Dist: view.Dist(int(v), int(nb))})
	}
	// Sort ascending by distance (insertion sort; degree lists are short).
	for i := 1; i < len(cands); i++ {
		x := cands[i]
		j := i - 1
		for j >= 0 && theap.Less(x, cands[j]) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = x
	}
	adj[v] = append(list[:0], selectDiverse(view, int(v), cands, maxDegree)...)
}
