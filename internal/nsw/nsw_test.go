package nsw

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/theap"
	"repro/internal/vec"
)

func clusteredView(seed int64, n, dim, clusters int) vec.View {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, clusters)
	for c := range centers {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = v
	}
	s := vec.NewStore(dim)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(clusters)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.15)
		}
		if _, err := s.Append(v); err != nil {
			panic(err)
		}
	}
	return vec.View{Store: s, Lo: 0, Hi: n, Metric: vec.Euclidean}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := New(Config{M: 4, MaxDegree: -1}); err == nil {
		t.Error("negative MaxDegree accepted")
	}
	if _, err := New(Config{M: 4, EFConstruction: -1}); err == nil {
		t.Error("negative EFConstruction accepted")
	}
	b, err := New(Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Config(); got.MaxDegree != 16 || got.EFConstruction != 32 {
		t.Errorf("defaults = %+v, want MaxDegree 16, EFConstruction 32", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config should panic")
		}
	}()
	MustNew(Config{})
}

func TestBuildEmptyAndSingle(t *testing.T) {
	b := MustNew(DefaultConfig(4))
	s := vec.NewStore(2)
	g := b.Build(vec.View{Store: s, Lo: 0, Hi: 0, Metric: vec.Euclidean}, 1)
	if g.NumNodes() != 0 {
		t.Errorf("empty build: %d nodes", g.NumNodes())
	}
	if _, err := s.Append([]float32{1, 1}); err != nil {
		t.Fatal(err)
	}
	g = b.Build(vec.View{Store: s, Lo: 0, Hi: 1, Metric: vec.Euclidean}, 1)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Errorf("single build: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestBuildStructure(t *testing.T) {
	view := clusteredView(1, 500, 8, 4)
	cfg := Config{M: 6, MaxDegree: 10}
	b := MustNew(cfg)
	g := b.Build(view, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Fatalf("nodes %d, want 500", g.NumNodes())
	}
	for v := int32(0); int(v) < 500; v++ {
		if d := len(g.Neighbors(v)); d > cfg.MaxDegree {
			t.Fatalf("node %d degree %d > MaxDegree %d", v, d, cfg.MaxDegree)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	view := clusteredView(2, 400, 8, 4)
	b := MustNew(DefaultConfig(6))
	g1 := b.Build(view, 9)
	g2 := b.Build(view, 9)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for i := range g1.Adj {
		if g1.Adj[i] != g2.Adj[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
}

// TestSearchableGraph verifies an NSW graph actually supports accurate
// best-first kNN search — the property MBI relies on when plugging NSW in.
func TestSearchableGraph(t *testing.T) {
	view := clusteredView(3, 1500, 16, 8)
	b := MustNew(DefaultConfig(12))
	g := b.Build(view, 5)

	sr := graph.NewSearcher(view.Len())
	rng := rand.New(rand.NewSource(6))
	p := graph.SearchParams{MC: 48, Eps: 1.3}
	const trials, k = 40, 10
	var recall float64
	for i := 0; i < trials; i++ {
		q := view.At(rng.Intn(view.Len()))
		res := sr.Search(g, view, q, k, nil, p, graph.RandomEntry(rng, view.Len()))
		// Exact k nearest by brute force.
		exact := make([]theap.Neighbor, 0, view.Len())
		for u := 0; u < view.Len(); u++ {
			exact = append(exact, theap.Neighbor{ID: int32(u), Dist: view.DistTo(q, u)})
		}
		top := theap.NewTopK(k)
		for _, e := range exact {
			top.Push(e)
		}
		want := top.Items()
		threshold := want[len(want)-1].Dist * 1.00001
		hits := 0
		for _, r := range res {
			if r.Dist <= threshold {
				hits++
			}
		}
		recall += float64(hits) / float64(k)
	}
	recall /= trials
	if recall < 0.7 {
		t.Errorf("recall@%d = %.3f, want >= 0.7", k, recall)
	}
}

func TestGraphConnectivity(t *testing.T) {
	// An NSW graph over one blob should be (nearly) one connected
	// component when edges are followed in both directions; build is
	// bidirectional so CSR already contains both directions (modulo
	// shrink). BFS from node 0 should reach almost everything.
	view := clusteredView(4, 800, 8, 1)
	b := MustNew(DefaultConfig(8))
	g := b.Build(view, 7)
	seen := make([]bool, view.Len())
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(v) {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	if count < view.Len()*95/100 {
		t.Errorf("BFS reached %d/%d nodes", count, view.Len())
	}
}

var sink []theap.Neighbor

func BenchmarkBuild2k(b *testing.B) {
	view := clusteredView(5, 2000, 16, 8)
	bl := MustNew(DefaultConfig(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := bl.Build(view, int64(i))
		if g.NumNodes() != 2000 {
			b.Fatal("bad build")
		}
	}
}
