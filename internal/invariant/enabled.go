//go:build tknn_invariants

package invariant

// Enabled reports whether runtime invariant checking is compiled in.
// This build (tag tknn_invariants) has it on: guarded assertions run and
// panic with a Violation on failure.
const Enabled = true
