// Package invariant is the repository's zero-cost-when-off runtime
// assertion layer. The MBI query path is only correct if a stack of
// structural invariants holds — the block tree stays a perfect binary tree
// with time-covering leaves, τ block selection returns disjoint ranges that
// cover the query window, CSR adjacency stays in-bounds, the top-k heap
// keeps its ordering, WAL sequence numbers stay monotone — and none of
// that is visible to the compiler. This package lets the hot data
// structures state those invariants inline and have them checked in
// dedicated CI runs while costing nothing in production builds.
//
// Enabled is a build-tag-selected constant: false by default, true under
// `-tags tknn_invariants` (`make invariants` / the CI "invariants" job).
// Every call site must be guarded so the compiler can delete the whole
// check when the tag is off:
//
//	if invariant.Enabled {
//		invariant.NoError(ix.checkInvariantsLocked(), "mbi: after seal cascade")
//	}
//
// The guard is not a style preference — an unguarded call still evaluates
// its arguments (often an O(n) Validate walk) in production builds. The
// tknnlint rule `invariant-gate` enforces the discipline: calls into this
// package outside an `invariant.Enabled` guard (or a file gated on the
// `tknn_invariants` build tag) are lint errors.
//
// A failed assertion panics with a Violation rather than returning an
// error: an invariant violation means the data structure is already
// corrupt, and unwinding to the test (or crashing the invariant-enabled
// binary) with the precise broken property is the entire point.
package invariant

import "fmt"

// Violation is the panic value raised by a failed assertion. Tests can
// recover it to assert that a specific invariant trips.
type Violation struct {
	// Msg describes the violated invariant.
	Msg string
}

// Error makes a Violation usable as an error after recover().
func (v Violation) Error() string { return "invariant violated: " + v.Msg }

// Check panics with a Violation carrying msg when cond is false.
// It is a no-op when Enabled is false, but call sites must still guard
// with Enabled so argument evaluation compiles away too.
func Check(cond bool, msg string) {
	if !Enabled || cond {
		return
	}
	panic(Violation{Msg: msg})
}

// Checkf is Check with a formatted message. The format arguments are only
// evaluated on failure paths inside an Enabled guard, so wrapping Checkf
// calls in `if invariant.Enabled` keeps them free in normal builds.
func Checkf(cond bool, format string, args ...any) {
	if !Enabled || cond {
		return
	}
	panic(Violation{Msg: fmt.Sprintf(format, args...)})
}

// NoError panics with a Violation when err is non-nil, prefixing it with
// context. It is the bridge between the deep per-package Validate()
// methods (which return errors so tests and deserializers can use them
// unconditionally) and the panic-on-corruption semantics of this layer.
func NoError(err error, context string) {
	if !Enabled || err == nil {
		return
	}
	panic(Violation{Msg: context + ": " + err.Error()})
}
