package invariant

import (
	"errors"
	"strings"
	"testing"
)

// trips runs fn and reports the Violation it panicked with, or nil.
func trips(fn func()) (v *Violation) {
	defer func() {
		if r := recover(); r != nil {
			got, ok := r.(Violation)
			if !ok {
				panic(r)
			}
			v = &got
		}
	}()
	fn()
	return nil
}

func TestCheck(t *testing.T) {
	if v := trips(func() { Check(true, "fine") }); v != nil {
		t.Fatalf("Check(true) tripped: %v", v)
	}
	v := trips(func() { Check(false, "broken thing") })
	if Enabled {
		if v == nil {
			t.Fatal("Check(false) did not trip with invariants enabled")
		}
		if v.Msg != "broken thing" {
			t.Fatalf("Msg = %q", v.Msg)
		}
		if !strings.Contains(v.Error(), "invariant violated") {
			t.Fatalf("Error() = %q", v.Error())
		}
	} else if v != nil {
		t.Fatalf("Check(false) tripped with invariants disabled: %v", v)
	}
}

func TestCheckf(t *testing.T) {
	v := trips(func() { Checkf(false, "bad offset %d in segment %q", 7, "wal-0001") })
	if !Enabled {
		if v != nil {
			t.Fatalf("Checkf tripped with invariants disabled: %v", v)
		}
		return
	}
	if v == nil {
		t.Fatal("Checkf(false) did not trip")
	}
	if want := `bad offset 7 in segment "wal-0001"`; v.Msg != want {
		t.Fatalf("Msg = %q, want %q", v.Msg, want)
	}
}

func TestNoError(t *testing.T) {
	if v := trips(func() { NoError(nil, "ctx") }); v != nil {
		t.Fatalf("NoError(nil) tripped: %v", v)
	}
	v := trips(func() { NoError(errors.New("csr offsets not monotone"), "graph: after build") })
	if !Enabled {
		if v != nil {
			t.Fatalf("NoError tripped with invariants disabled: %v", v)
		}
		return
	}
	if v == nil {
		t.Fatal("NoError(err) did not trip")
	}
	if want := "graph: after build: csr offsets not monotone"; v.Msg != want {
		t.Fatalf("Msg = %q, want %q", v.Msg, want)
	}
}
