//go:build !tknn_invariants

package invariant

// Enabled reports whether runtime invariant checking is compiled in.
// Default builds have it off: every `if invariant.Enabled { ... }` block
// is dead code the compiler deletes, so assertions cost nothing.
const Enabled = false
