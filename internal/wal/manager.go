package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/invariant"
)

// Target is the index surface the Manager needs: the append it makes
// durable, the snapshot it checkpoints, and the size it reports.
// *tknn.MBI satisfies it directly; internal/core users wrap Append and
// persist.SaveMBI in a three-line adapter.
type Target interface {
	// Add appends a timestamped vector. Rejections must be
	// deterministic functions of the prior accepted state and the
	// record (dimension mismatch, timestamp regression): replay relies
	// on re-applying the log reproducing exactly the same accepts.
	Add(v []float32, t int64) error
	// Save writes a snapshot restorable by the RestoreFunc the Manager
	// was opened with.
	Save(w io.Writer) error
	// Len reports the number of indexed vectors.
	Len() int
}

// Spiller is the optional tiered-storage surface of a Target. When the
// managed index implements it, Checkpoint spills cold blocks to their
// segment files *before* cutting the snapshot, so every segment
// reference the snapshot records is already durable — recovery composes
// snapshot + segment files + WAL suffix. A Target without tiering (or
// with it disabled) simply doesn't implement this, or returns (0, 0,
// nil).
type Spiller interface {
	// SpillCold writes cold sealed blocks to durable segment files and
	// releases their RAM payloads. It reports blocks spilled and bytes
	// written; a partially-failed pass releases only the blocks whose
	// segments were written, never leaving the index unreadable.
	SpillCold() (int, int64, error)
}

// RestoreFunc builds the Target at startup. snapshot is nil when no
// usable checkpoint exists (start empty); otherwise it reads a file
// written by Target.Save. Open may call it more than once if a newer
// snapshot turns out to be corrupt.
type RestoreFunc func(snapshot io.Reader) (Target, error)

// Config configures a Manager. Dir is required; zero values elsewhere get
// defaults.
type Config struct {
	// Dir is the data directory holding segments and checkpoints.
	Dir string
	// Sync is the fsync policy. Default SyncInterval.
	Sync SyncPolicy
	// SyncInterval is the background fsync period for SyncInterval.
	// Default 100ms.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment when it reaches this
	// size. Default 64 MiB.
	SegmentBytes int64
	// CheckpointEvery triggers a background checkpoint after this many
	// appended records. 0 disables automatic checkpointing (manual
	// Checkpoint calls and the shutdown checkpoint still work).
	CheckpointEvery int
	// Logf, when set, receives replay/checkpoint progress and
	// background-error messages (log.Printf-shaped).
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() error {
	if c.Dir == "" {
		return errors.New("wal: Config.Dir is required")
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.SegmentBytes < segHeaderLen+recHeaderLen+recPayloadMin {
		return fmt.Errorf("wal: SegmentBytes %d cannot hold a single record", c.SegmentBytes)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("wal: CheckpointEvery must be non-negative, got %d", c.CheckpointEvery)
	}
	return nil
}

// Stats is a point-in-time snapshot of the Manager's counters.
type Stats struct {
	// Appended counts records logged by this process.
	Appended uint64
	// Fsyncs counts fsync syscalls issued on segment files.
	Fsyncs uint64
	// Checkpoints counts snapshots written by this process.
	Checkpoints uint64
	// Replayed / ReplaySkipped report the startup recovery: log records
	// re-applied to the index and records it (deterministically)
	// rejected.
	Replayed      uint64
	ReplaySkipped uint64
	// ReplayTruncated reports whether startup found (and truncated) a
	// torn tail.
	ReplayTruncated bool
	// NextSeq is the sequence number of the next record.
	NextSeq uint64
	// LastCheckpointSeq is the record count covered by the newest
	// snapshot (0 when none exists).
	LastCheckpointSeq uint64
	// LastCheckpointTime is when that snapshot was written; zero when
	// none exists.
	LastCheckpointTime time.Time
	// Segments and WALBytes describe the on-disk log.
	Segments int
	WALBytes int64
}

// CheckpointInfo reports one completed checkpoint.
type CheckpointInfo struct {
	// Seq is the WAL position the snapshot covers: records [0, Seq).
	Seq uint64 `json:"seq"`
	// Path is the snapshot file.
	Path string `json:"path"`
	// Bytes is the snapshot size.
	Bytes int64 `json:"bytes"`
	// Duration is how long serialization took.
	Duration time.Duration `json:"duration"`
	// SegmentsRemoved counts fully-covered segments deleted afterwards.
	SegmentsRemoved int `json:"segmentsRemoved"`
}

// Manager makes a Target durable: every Add is logged (and, under
// SyncAlways, fsynced) before it is applied, checkpoints bound replay
// time, and Open reconstructs the exact acknowledged state after a crash.
//
// Append/AppendBatch are serialized internally and must anyway follow the
// index's single-writer rule. Checkpoint blocks appends for the duration
// of one snapshot serialization. Reads (searches) never touch the
// Manager and proceed concurrently as before.
type Manager struct {
	cfg    Config
	target Target

	// mu guards the log state below and, critically, spans log+apply in
	// Append so the log order always equals the apply order.
	mu sync.Mutex
	//tknn:guardedBy(mu)
	seg *segmentWriter
	//tknn:guardedBy(mu)
	nextSeq uint64
	//tknn:guardedBy(mu)
	sinceCp uint64
	// broken records the first write/sync failure; poisons further appends.
	//tknn:guardedBy(mu)
	broken error
	//tknn:guardedBy(mu)
	closed bool
	//tknn:guardedBy(mu)
	appended uint64
	//tknn:guardedBy(mu)
	fsyncs uint64

	// cpMu serializes checkpoints and orders before mu.
	cpMu sync.Mutex
	//tknn:guardedBy(cpMu)
	checkpoints uint64
	//tknn:guardedBy(cpMu)
	lastCpSeq uint64
	//tknn:guardedBy(cpMu)
	lastCpTime time.Time

	replay ReplayStats

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	// encBuf is the reusable record-encoding scratch buffer.
	//tknn:guardedBy(mu)
	encBuf []byte
}

// Open recovers durable state from cfg.Dir and returns a running
// Manager. It loads the newest checkpoint that restores cleanly (falling
// back to the previous one if the newest is corrupt), replays the WAL
// suffix through the restored Target, truncates any torn tail, and
// resumes appending.
func Open(cfg Config, restore RestoreFunc) (*Manager, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if restore == nil {
		return nil, errors.New("wal: restore function is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:  cfg,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}

	target, cpSeq, cpTime, err := m.restoreCheckpoint(restore)
	if err != nil {
		return nil, err
	}
	m.target = target
	m.lastCpSeq = cpSeq
	m.lastCpTime = cpTime

	stats, err := Replay(cfg.Dir, cpSeq, func(_ uint64, t int64, v []float32) error {
		return target.Add(v, t)
	})
	if err != nil {
		return nil, err
	}
	m.replay = stats
	m.nextSeq = stats.NextSeq
	if stats.Records > 0 || stats.Truncated {
		m.logf("wal: replayed %d records (%d rejected) from %d segments; index now holds %d vectors",
			stats.Applied, stats.Skipped, stats.Segments, target.Len())
	}
	if stats.Truncated {
		if err := truncateTorn(stats.TruncatedPath, stats.TruncatedAt, cfg.Dir); err != nil {
			return nil, err
		}
		m.logf("wal: truncated torn tail of %s at byte %d", filepath.Base(stats.TruncatedPath), stats.TruncatedAt)
	}
	seg, err := openActiveSegment(cfg.Dir, cfg.SegmentBytes, m.nextSeq)
	if err != nil {
		return nil, err
	}
	m.seg = seg

	if cfg.Sync == SyncInterval {
		m.wg.Add(1)
		go m.syncLoop()
	}
	if cfg.CheckpointEvery > 0 {
		m.wg.Add(1)
		go m.checkpointLoop()
	}
	return m, nil
}

// restoreCheckpoint loads the newest snapshot that restores cleanly and
// returns the target plus the WAL position the snapshot covers. With no
// usable snapshot it restores fresh at position 0 — recovery then needs
// the log to reach back to record 0, which Replay enforces.
func (m *Manager) restoreCheckpoint(restore RestoreFunc) (Target, uint64, time.Time, error) {
	cps, err := listCheckpoints(m.cfg.Dir)
	if err != nil {
		return nil, 0, time.Time{}, err
	}
	for _, cp := range cps {
		target, err := restoreFromFile(restore, cp.path)
		if err != nil {
			m.logf("wal: checkpoint %s unusable (%v); trying an older one", filepath.Base(cp.path), err)
			continue
		}
		mtime := time.Time{}
		if info, err := os.Stat(cp.path); err == nil {
			mtime = info.ModTime()
		}
		m.logf("wal: restored %d vectors from %s (covers %d log records)", target.Len(), filepath.Base(cp.path), cp.firstSeq)
		return target, cp.firstSeq, mtime, nil
	}
	if len(cps) > 0 {
		m.logf("wal: no checkpoint restored cleanly; rebuilding from the full log")
	}
	target, err := restore(nil)
	if err != nil {
		return nil, 0, time.Time{}, err
	}
	return target, 0, time.Time{}, nil
}

func restoreFromFile(restore RestoreFunc, path string) (Target, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	target, err := restore(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		return nil, cerr
	}
	return target, err
}

// truncateTorn discards the torn tail Replay reported: chop the file to
// its valid prefix, or delete it entirely when even the header is torn.
func truncateTorn(path string, at int64, dir string) error {
	if at <= segHeaderLen {
		if err := os.Remove(path); err != nil {
			return err
		}
		return syncDir(dir)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(at); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("wal: truncating %s: %v (and closing: %v)", path, err, cerr)
		}
		return err
	}
	if err := f.Sync(); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("wal: syncing %s: %v (and closing: %v)", path, err, cerr)
		}
		return err
	}
	return f.Close()
}

// openActiveSegment resumes appending: the last on-disk segment if it has
// room, else a fresh one starting at nextSeq. It is a free function so
// Open can wire the result into a still-private Manager.
func openActiveSegment(dir string, segmentBytes int64, nextSeq uint64) (*segmentWriter, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if invariant.Enabled {
		invariant.NoError(validateSegments(segs), "wal: on-disk log at startup")
	}
	if n := len(segs); n > 0 && segs[n-1].size < segmentBytes {
		return openSegmentForAppend(segs[n-1])
	}
	return createSegment(dir, nextSeq)
}

// Index returns the managed target.
func (m *Manager) Index() Target { return m.target }

// Append durably logs (v, t) and applies it to the index. Under
// SyncAlways the record is fsynced before apply; the returned error is
// the index's accept/reject decision (a reject is still logged, and
// replay reproduces the rejection).
func (m *Manager) Append(v []float32, t int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.logRecordLocked(v, t); err != nil {
		return err
	}
	if err := m.syncPolicyLocked(); err != nil {
		return err
	}
	err := m.target.Add(v, t)
	m.maybeWakeCheckpointLocked()
	return err
}

// AppendBatch logs and applies vs[i] at ts[i] in order, fsyncing once for
// the whole batch under SyncAlways. On the first index rejection it stops:
// earlier entries are committed, the rejected entry is logged-but-skipped
// (as it will be again on replay), and later entries are untouched.
func (m *Manager) AppendBatch(vs [][]float32, ts []int64) error {
	if len(vs) != len(ts) {
		return fmt.Errorf("wal: %d vectors but %d timestamps", len(vs), len(ts))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, v := range vs {
		if err := m.logRecordLocked(v, ts[i]); err != nil {
			return err
		}
		if err := m.target.Add(v, ts[i]); err != nil {
			if serr := m.syncPolicyLocked(); serr != nil {
				return serr
			}
			m.maybeWakeCheckpointLocked()
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	if err := m.syncPolicyLocked(); err != nil {
		return err
	}
	m.maybeWakeCheckpointLocked()
	return nil
}

// logRecordLocked writes one framed record, rotating segments at the size
// threshold. A write failure poisons the Manager: the log tail is in an
// unknown state, so no further appends are accepted (reads and restart
// recovery remain safe — the torn tail truncates on the next Open).
func (m *Manager) logRecordLocked(v []float32, t int64) error {
	if m.closed {
		return errors.New("wal: manager is closed")
	}
	if m.broken != nil {
		return fmt.Errorf("wal: log is poisoned by an earlier write error: %w", m.broken)
	}
	if m.seg.size >= m.cfg.SegmentBytes {
		if err := m.rotateLocked(); err != nil {
			m.broken = err
			return err
		}
	}
	m.encBuf = encodeRecord(m.encBuf[:0], t, v)
	if err := m.seg.write(m.encBuf); err != nil {
		m.broken = err
		return err
	}
	m.nextSeq++
	m.appended++
	m.sinceCp++
	if invariant.Enabled {
		invariant.NoError(m.validateLocked(), "wal: after logging a record")
	}
	return nil
}

// rotateLocked seals the active segment and starts a new one at nextSeq.
func (m *Manager) rotateLocked() error {
	if m.seg.dirty {
		m.fsyncs++
	}
	if err := m.seg.seal(); err != nil {
		return err
	}
	seg, err := createSegment(m.cfg.Dir, m.nextSeq)
	if err != nil {
		return err
	}
	m.seg = seg
	if invariant.Enabled {
		invariant.NoError(m.validateLocked(), "wal: after segment rotation")
	}
	return nil
}

// syncPolicyLocked applies the per-append fsync decision.
func (m *Manager) syncPolicyLocked() error {
	if m.cfg.Sync != SyncAlways {
		return nil
	}
	return m.syncSegLocked()
}

func (m *Manager) syncSegLocked() error {
	synced, err := m.seg.sync()
	if err != nil {
		m.broken = err
		return err
	}
	if synced {
		m.fsyncs++
	}
	return nil
}

func (m *Manager) maybeWakeCheckpointLocked() {
	if m.cfg.CheckpointEvery > 0 && m.sinceCp >= uint64(m.cfg.CheckpointEvery) {
		select {
		case m.wake <- struct{}{}:
		default:
		}
	}
}

// Sync forces an fsync of the active segment, regardless of policy.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("wal: manager is closed")
	}
	return m.syncSegLocked()
}

// Checkpoint serializes a snapshot covering every record logged so far,
// then deletes fully-covered segments and checkpoints older than the
// retained two. Appends are blocked while the snapshot serializes (the
// index cannot be saved concurrently with writes); searches proceed.
//
// The newest two checkpoints are kept, together with the segments needed
// to replay from the older of them — so a corrupt newest snapshot still
// recovers exactly via the previous one plus a longer replay.
func (m *Manager) Checkpoint() (CheckpointInfo, error) {
	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return CheckpointInfo{}, errors.New("wal: manager is closed")
	}
	if m.broken != nil {
		return CheckpointInfo{}, fmt.Errorf("wal: log is poisoned by an earlier write error: %w", m.broken)
	}

	start := now()
	seq := m.nextSeq
	// Rotate first so the active segment begins exactly at the covered
	// position: after cleanup, replay reads only the post-checkpoint
	// suffix. An empty just-created segment already starts at seq.
	if m.seg.firstSeq < seq {
		if err := m.rotateLocked(); err != nil {
			m.broken = err
			return CheckpointInfo{}, err
		}
	}

	// Spill before snapshotting: the snapshot may then record segment
	// references instead of payloads, and every segment it references is
	// durable before the snapshot exists. A failed spill is logged, not
	// fatal — unspilled blocks stay inline in the snapshot, which is
	// merely bigger, never wrong.
	if sp, ok := m.target.(Spiller); ok {
		if blocks, bytes, err := sp.SpillCold(); err != nil {
			m.logf("wal: spilling cold blocks before checkpoint: %v", err)
		} else if blocks > 0 {
			m.logf("wal: spilled %d cold blocks (%d bytes) before checkpoint", blocks, bytes)
		}
	}

	path := filepath.Join(m.cfg.Dir, checkpointName(seq))
	n, err := writeSnapshot(m.cfg.Dir, path, m.target)
	if err != nil {
		return CheckpointInfo{}, err
	}
	m.sinceCp = 0
	m.checkpoints++
	m.lastCpSeq = seq
	m.lastCpTime = now()

	removed, err := m.cleanupLocked()
	if err != nil {
		// The checkpoint itself succeeded; surplus files only cost
		// disk. Report but do not fail.
		m.logf("wal: cleanup after checkpoint: %v", err)
	}
	info := CheckpointInfo{Seq: seq, Path: path, Bytes: n, Duration: now().Sub(start), SegmentsRemoved: removed}
	m.logf("wal: checkpoint %s: %d vectors, %d bytes in %v (%d segments removed)",
		filepath.Base(path), m.target.Len(), n, info.Duration.Round(time.Millisecond), removed)
	return info, nil
}

// writeSnapshot saves the target to a temp file, fsyncs, and renames into
// place so a crash never leaves a torn snapshot under the final name.
func writeSnapshot(dir, path string, target Target) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cleanup := func(err error) (int64, error) {
		// Best-effort removal; the write error is the actionable one.
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	if fault.Enabled {
		// Injection point wal.checkpoint: a failed snapshot serialization.
		// The temp file is discarded and the previous checkpoint stays the
		// newest — recovery must still work from it plus a longer replay.
		if err := fault.Hit("wal.checkpoint"); err != nil {
			return cleanup(err)
		}
	}
	if err := target.Save(f); err != nil {
		return cleanup(err)
	}
	n, err := f.Seek(0, 2) // io.SeekEnd: snapshot size
	if err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	return n, syncDir(dir)
}

// cleanupLocked deletes checkpoints beyond the newest two and every
// sealed segment fully covered by the older retained checkpoint.
func (m *Manager) cleanupLocked() (int, error) {
	cps, err := listCheckpoints(m.cfg.Dir)
	if err != nil {
		return 0, err
	}
	const retain = 2
	for _, cp := range cps[minInt(retain, len(cps)):] {
		if err := os.Remove(cp.path); err != nil {
			return 0, err
		}
	}
	// safeSeq: recovery may start from the oldest retained checkpoint,
	// so only segments wholly below it are garbage.
	safeSeq := m.lastCpSeq
	if len(cps) >= retain {
		safeSeq = cps[retain-1].firstSeq
	}
	segs, err := listSegments(m.cfg.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, seg := range segs {
		if i+1 >= len(segs) || segs[i+1].firstSeq > safeSeq {
			break // not fully covered (or the active segment)
		}
		if err := os.Remove(seg.path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 || len(cps) > retain {
		return removed, syncDir(m.cfg.Dir)
	}
	return removed, nil
}

// syncLoop is the SyncInterval background fsync.
func (m *Manager) syncLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			m.mu.Lock()
			if !m.closed && m.broken == nil {
				if err := m.syncSegLocked(); err != nil {
					m.logf("wal: background fsync: %v", err)
				}
			}
			m.mu.Unlock()
		}
	}
}

// checkpointLoop runs automatic checkpoints when the append path signals
// the record threshold.
func (m *Manager) checkpointLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case <-m.wake:
			if _, err := m.Checkpoint(); err != nil {
				m.logf("wal: background checkpoint: %v", err)
			}
		}
	}
}

// Close stops the background goroutines and seals the active segment
// with a final fsync. It does not checkpoint; call Checkpoint first for
// an instant next startup. Close is idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	already := m.closed
	m.closed = true
	m.mu.Unlock()
	if already {
		return nil
	}

	close(m.done)
	m.wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seg.dirty {
		m.fsyncs++
	}
	return m.seg.seal()
}

// Stats returns a snapshot of the Manager's counters plus the on-disk log
// shape.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Appended:        m.appended,
		Fsyncs:          m.fsyncs,
		Replayed:        m.replay.Applied,
		ReplaySkipped:   m.replay.Skipped,
		ReplayTruncated: m.replay.Truncated,
		NextSeq:         m.nextSeq,
	}
	m.mu.Unlock()
	m.cpMu.Lock()
	s.Checkpoints = m.checkpoints
	s.LastCheckpointSeq = m.lastCpSeq
	s.LastCheckpointTime = m.lastCpTime
	m.cpMu.Unlock()
	if segs, err := listSegments(m.cfg.Dir); err == nil {
		s.Segments = len(segs)
		for _, seg := range segs {
			s.WALBytes += seg.size
		}
	}
	return s
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
