package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReplayStats reports what Replay did.
type ReplayStats struct {
	// Segments is the number of segment files actually read (fully
	// covered segments are skipped without opening them).
	Segments int
	// Records is the number of CRC-valid records at or past fromSeq.
	Records uint64
	// Applied counts records the callback accepted.
	Applied uint64
	// Skipped counts records the callback rejected. Rejections must be
	// deterministic (e.g. a timestamp-order violation the index also
	// rejected when the record was first logged), so skipping them
	// reproduces the original apply sequence exactly.
	Skipped uint64
	// Covered counts records decoded but below fromSeq (already
	// contained in the snapshot the caller restored).
	Covered uint64
	// NextSeq is the sequence number the next appended record should
	// carry: fromSeq plus every record seen at or past it.
	NextSeq uint64
	// Truncated reports a torn tail: the final segment ended in a
	// partial or corrupt record, presumed a crash mid-write.
	Truncated bool
	// TruncatedPath is the torn segment's path (when Truncated).
	TruncatedPath string
	// TruncatedAt is the byte offset of the valid prefix of the torn
	// segment: everything at or past it must be discarded. An offset at
	// or below the segment header length means the whole file is
	// unusable (torn during creation) and should be deleted.
	TruncatedAt int64
}

// Replay reads every log record with sequence number >= fromSeq, in
// order, invoking apply for each. Segments wholly below fromSeq are
// skipped unread. A torn tail in the final segment ends the replay and is
// reported through the stats; corruption anywhere else — a bad record in
// a sealed segment, a sequence gap between segments — is an error,
// because acknowledged data would otherwise silently vanish.
//
// Replay does not modify any file; callers that intend to append
// afterwards must first truncate the torn tail it reports (Manager does).
func Replay(dir string, fromSeq uint64, apply func(seq uint64, t int64, v []float32) error) (ReplayStats, error) {
	var stats ReplayStats
	stats.NextSeq = fromSeq
	segs, err := listSegments(dir)
	if err != nil {
		return stats, err
	}
	if len(segs) == 0 {
		return stats, nil
	}
	if segs[0].firstSeq > fromSeq {
		return stats, fmt.Errorf("wal: log begins at record %d but replay needs record %d: covering segments were deleted",
			segs[0].firstSeq, fromSeq)
	}

	seq := segs[0].firstSeq
	for i, seg := range segs {
		last := i == len(segs)-1
		if seg.firstSeq != seq {
			return stats, fmt.Errorf("wal: segment %s starts at record %d, want %d: log has a gap", seg.path, seg.firstSeq, seq)
		}
		// A sealed segment whose successor starts at or below fromSeq
		// holds only covered records; skip it without reading.
		if !last && segs[i+1].firstSeq <= fromSeq {
			seq = segs[i+1].firstSeq
			continue
		}
		end, err := replaySegment(seg, last, fromSeq, &seq, &stats, apply)
		if err != nil {
			return stats, err
		}
		if stats.Truncated {
			stats.TruncatedPath = seg.path
			stats.TruncatedAt = end
			if !last {
				// Can't happen from replaySegment (it only sets
				// Truncated on the last segment), but keep the
				// invariant obvious.
				return stats, fmt.Errorf("wal: torn record inside sealed segment %s", seg.path)
			}
			break
		}
	}
	stats.NextSeq = seq
	return stats, nil
}

// replaySegment scans one segment, advancing *seq per record. It returns
// the byte offset after the last valid record. Torn or corrupt data is an
// error in sealed segments and a reported truncation in the final one.
func replaySegment(seg segmentFile, last bool, fromSeq uint64, seq *uint64, stats *ReplayStats, apply func(seq uint64, t int64, v []float32) error) (int64, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, err
	}
	defer func() {
		// Read-only handle; the scan error (if any) is the one that
		// matters.
		_ = f.Close()
	}()
	stats.Segments++

	corrupt := func(off int64, format string, args ...any) (int64, error) {
		if last {
			stats.Truncated = true
			return off, nil
		}
		return off, fmt.Errorf("wal: sealed segment %s corrupt at offset %d: %s", seg.path, off, fmt.Sprintf(format, args...))
	}

	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return corrupt(0, "short header: %v", err)
	}
	if m := order.Uint32(hdr[0:]); m != segMagic {
		return corrupt(0, "bad magic %#x", m)
	}
	if v := order.Uint32(hdr[4:]); v != segVersion {
		return 0, fmt.Errorf("wal: segment %s has unsupported version %d", seg.path, v)
	}
	if s := order.Uint64(hdr[8:]); s != seg.firstSeq {
		return 0, fmt.Errorf("wal: segment %s header says first record %d, name says %d", seg.path, s, seg.firstSeq)
	}

	off := int64(segHeaderLen)
	var rec [recHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			if err == io.EOF {
				return off, nil // clean end of segment
			}
			return corrupt(off, "partial record header: %v", err)
		}
		payloadLen := int(order.Uint32(rec[0:]))
		wantCRC := order.Uint32(rec[4:])
		if payloadLen < recPayloadMin || payloadLen > maxRecordBytes {
			return corrupt(off, "implausible record length %d", payloadLen)
		}
		if cap(payload) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := io.ReadFull(f, payload); err != nil {
			return corrupt(off, "partial record payload: %v", err)
		}
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return corrupt(off, "record checksum %#x, want %#x", got, wantCRC)
		}
		t, v, err := decodePayload(payload)
		if err != nil {
			return corrupt(off, "%v", err)
		}
		recSeq := *seq
		*seq++
		off += int64(recHeaderLen + payloadLen)
		if recSeq < fromSeq {
			stats.Covered++
			continue
		}
		stats.Records++
		if err := apply(recSeq, t, v); err != nil {
			stats.Skipped++
		} else {
			stats.Applied++
		}
	}
}
