package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Crash-recovery tests: build a known log + checkpoint layout, then maim
// it the way a crash (tail truncation) or bit rot (byte flips) would and
// assert recovery returns exactly the durable prefix — never a superset,
// never interior gaps, never silent partial data.

const (
	// crashDim-dimensional records frame to a fixed size, so expected
	// durable prefixes can be computed from byte offsets.
	crashDim     = 4
	crashRecLen  = recHeaderLen + recPayloadMin + 4*crashDim
	crashSegRecs = 5
	crashSegLen  = segHeaderLen + crashSegRecs*crashRecLen
	crashTotal   = 60
	crashCp1     = 23 // first checkpoint covers records [0, 23)
	crashCp2     = 38 // second covers [0, 38); segments below 23 pruned
)

// buildCrashFixture writes the canonical layout into dir: 60 records,
// checkpoints at 23 and 38, several sealed segments plus a short active
// one, cleanly closed.
func buildCrashFixture(t *testing.T, dir string) {
	t.Helper()
	m, _ := openTestManager(t, dir, Config{Sync: SyncNever, SegmentBytes: crashSegLen})
	appendN(t, m, 0, crashCp1)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	appendN(t, m, crashCp1, crashCp2)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint 2: %v", err)
	}
	appendN(t, m, crashCp2, crashTotal)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// cloneDir copies every regular file of src into a fresh temp directory.
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	return dst
}

// assertPrefix verifies the target holds exactly the first n canonical
// records — assertRecords plus intent-revealing name for these tests.
func assertPrefix(t *testing.T, tgt *memTarget, n int) {
	t.Helper()
	assertRecords(t, tgt, n)
}

// TestCrashTruncatedTailRecoversDurablePrefix simulates a SIGKILL (or
// power cut with a lying disk) at every interesting byte offset of the
// active segment: recovery must succeed and hold exactly the records
// whose frames made it to disk in full.
func TestCrashTruncatedTailRecoversDurablePrefix(t *testing.T) {
	fixture := t.TempDir()
	buildCrashFixture(t, fixture)
	segs, err := listSegments(fixture)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	last := segs[len(segs)-1]
	lastRecs := int(last.size-segHeaderLen) / crashRecLen
	base := crashTotal - lastRecs // records durable in sealed segments + checkpoints

	rng := rand.New(rand.NewSource(7))
	offsets := []int64{0, 1, segHeaderLen - 1, segHeaderLen, last.size - 1, last.size}
	for len(offsets) < 40 {
		offsets = append(offsets, rng.Int63n(last.size+1))
	}
	for _, off := range offsets {
		dir := cloneDir(t, fixture)
		if err := os.Truncate(filepath.Join(dir, filepath.Base(last.path)), off); err != nil {
			t.Fatalf("Truncate: %v", err)
		}
		want := base
		if off >= segHeaderLen {
			want += int(off-segHeaderLen) / crashRecLen
		}
		m, tgt := openTestManager(t, dir, Config{Sync: SyncNever, SegmentBytes: crashSegLen})
		assertPrefix(t, tgt, want)
		st := m.Stats()
		if got, wantReplay := st.Replayed, uint64(want-crashCp2); got != wantReplay {
			t.Fatalf("offset %d: replayed %d records, want only the post-checkpoint suffix %d", off, got, wantReplay)
		}
		// The recovered log must accept appends and survive another
		// clean restart — truncation left no landmines.
		if err := m.Append(testVec(crashDim, want), int64(want)); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", off, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		m2, tgt2 := openTestManager(t, dir, Config{Sync: SyncNever, SegmentBytes: crashSegLen})
		assertPrefix(t, tgt2, want+1)
		if err := m2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestCrashRandomByteFlips flips one random byte in one random WAL or
// snapshot file per trial. Whatever the damage, recovery must either
// fail loudly or return an exact prefix of the canonical sequence.
// Snapshot corruption specifically must not lose anything: the retained
// older checkpoint (or the full log) covers it.
func TestCrashRandomByteFlips(t *testing.T) {
	fixture := t.TempDir()
	buildCrashFixture(t, fixture)
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		name := names[rng.Intn(len(names))]
		dir := cloneDir(t, fixture)
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("Stat: %v", err)
		}
		off := rng.Int63n(info.Size())
		corruptFile(t, path, off)

		cfg := Config{Dir: dir, Sync: SyncNever, SegmentBytes: crashSegLen}
		m, err := Open(cfg, memRestore(crashDim))
		if err != nil {
			continue // loud failure is an acceptable outcome
		}
		tgt := m.Index().(*memTarget)
		n := tgt.Len()
		if n > crashTotal {
			t.Fatalf("trial %d (%s @%d): recovered %d records, more than were ever written", trial, name, off, n)
		}
		assertPrefix(t, tgt, n)
		if strings.HasPrefix(name, cpPrefix) && n != crashTotal {
			t.Fatalf("trial %d: corrupt snapshot %s @%d lost data: recovered %d of %d records", trial, name, off, n, crashTotal)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestCrashDoubleFaultTornTailPlusBadSnapshot stacks the two failure
// modes: the newest snapshot is corrupt AND the active segment is torn.
// Recovery must fall back to the older checkpoint, replay the longer
// suffix, and still land on the exact durable prefix.
func TestCrashDoubleFaultTornTailPlusBadSnapshot(t *testing.T) {
	fixture := t.TempDir()
	buildCrashFixture(t, fixture)
	dir := cloneDir(t, fixture)

	corruptFile(t, filepath.Join(dir, checkpointName(crashCp2)), 5)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	last := segs[len(segs)-1]
	cut := segHeaderLen + crashRecLen + crashRecLen/2 // one whole record, one torn
	if err := os.Truncate(last.path, int64(cut)); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	m, tgt := openTestManager(t, dir, Config{Sync: SyncNever, SegmentBytes: crashSegLen})
	want := int(last.firstSeq) + 1
	assertPrefix(t, tgt, want)
	st := m.Stats()
	if got := st.Replayed; got != uint64(want-crashCp1) {
		t.Fatalf("replayed %d records, want %d (suffix past the older checkpoint)", got, want-crashCp1)
	}
	if !st.ReplayTruncated {
		t.Fatal("stats should report the torn tail")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
