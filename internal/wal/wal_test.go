package wal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"
)

// memTarget is a minimal Target: an append-only list of (t, v) records
// with the same deterministic rejections as the real indexes (dimension
// mismatch, timestamp regression).
type memTarget struct {
	dim   int
	times []int64
	vecs  [][]float32
}

func newMemTarget(dim int) *memTarget { return &memTarget{dim: dim} }

func (m *memTarget) Add(v []float32, t int64) error {
	if len(v) != m.dim {
		return fmt.Errorf("mem: got %d dims, want %d", len(v), m.dim)
	}
	if n := len(m.times); n > 0 && t < m.times[n-1] {
		return fmt.Errorf("mem: timestamp %d precedes %d", t, m.times[n-1])
	}
	m.times = append(m.times, t)
	m.vecs = append(m.vecs, append([]float32(nil), v...))
	return nil
}

func (m *memTarget) Len() int { return len(m.times) }

// Save serializes with the same CRC framing the WAL uses; memRestore
// verifies it, mirroring the checksum footer the real persist loaders
// enforce.
func (m *memTarget) Save(w io.Writer) error {
	var buf []byte
	for i := range m.times {
		buf = encodeRecord(buf[:0], m.times[i], m.vecs[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func memRestore(dim int) RestoreFunc {
	return func(snapshot io.Reader) (Target, error) {
		t := newMemTarget(dim)
		if snapshot == nil {
			return t, nil
		}
		raw, err := io.ReadAll(snapshot)
		if err != nil {
			return nil, err
		}
		for len(raw) > 0 {
			if len(raw) < recHeaderLen {
				return nil, fmt.Errorf("mem: torn snapshot record header")
			}
			n := int(order.Uint32(raw[0:]))
			if len(raw) < recHeaderLen+n {
				return nil, fmt.Errorf("mem: torn snapshot record")
			}
			payload := raw[recHeaderLen : recHeaderLen+n]
			if crc32.Checksum(payload, castagnoli) != order.Uint32(raw[4:]) {
				return nil, fmt.Errorf("mem: snapshot record checksum mismatch")
			}
			ts, v, err := decodePayload(payload)
			if err != nil {
				return nil, err
			}
			if err := t.Add(v, ts); err != nil {
				return nil, err
			}
			raw = raw[recHeaderLen+n:]
		}
		return t, nil
	}
}

// testVec returns a deterministic vector for record i.
func testVec(dim, i int) []float32 {
	v := make([]float32, dim)
	for j := range v {
		v[j] = float32(i*dim + j)
	}
	return v
}

func openTestManager(t *testing.T, dir string, cfg Config) (*Manager, *memTarget) {
	t.Helper()
	cfg.Dir = dir
	if cfg.Sync == SyncInterval {
		cfg.SyncInterval = time.Millisecond
	}
	m, err := Open(cfg, memRestore(4))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m, m.Index().(*memTarget)
}

func appendN(t *testing.T, m *Manager, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := m.Append(testVec(4, i), int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func assertRecords(t *testing.T, tgt *memTarget, n int) {
	t.Helper()
	if tgt.Len() != n {
		t.Fatalf("target holds %d records, want %d", tgt.Len(), n)
	}
	for i := 0; i < n; i++ {
		if tgt.times[i] != int64(i) {
			t.Fatalf("record %d has timestamp %d", i, tgt.times[i])
		}
		want := testVec(4, i)
		for j, x := range tgt.vecs[i] {
			if x != want[j] {
				t.Fatalf("record %d coordinate %d = %g, want %g", i, j, x, want[j])
			}
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseSyncPolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != s {
			t.Fatalf("round trip %q -> %v", s, p)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestAppendCloseReopen(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncAlways})
	appendN(t, m, 0, 25)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, tgt := openTestManager(t, dir, Config{Sync: SyncAlways})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	assertRecords(t, tgt, 25)
	st := m2.Stats()
	if st.Replayed != 25 || st.NextSeq != 25 {
		t.Fatalf("stats = %+v, want 25 replayed, nextSeq 25", st)
	}
	// And keep appending after recovery.
	appendN(t, m2, 25, 30)
	assertRecords(t, tgt, 30)
}

func TestAppendBatchMatchesLoop(t *testing.T) {
	dir := t.TempDir()
	m, tgt := openTestManager(t, dir, Config{Sync: SyncAlways})
	var vs [][]float32
	var ts []int64
	for i := 0; i < 10; i++ {
		vs = append(vs, testVec(4, i))
		ts = append(ts, int64(i))
	}
	if err := m.AppendBatch(vs, ts); err != nil {
		t.Fatal(err)
	}
	assertRecords(t, tgt, 10)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, tgt2 := openTestManager(t, dir, Config{Sync: SyncAlways})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	assertRecords(t, tgt2, 10)
}

func TestRejectedAppendIsReplayedAsRejected(t *testing.T) {
	dir := t.TempDir()
	m, tgt := openTestManager(t, dir, Config{Sync: SyncAlways})
	appendN(t, m, 0, 5)
	// Timestamp regression: logged, rejected, acknowledged as an error.
	if err := m.Append(testVec(4, 99), 1); err == nil {
		t.Fatal("expected rejection for regressing timestamp")
	}
	appendN(t, m, 5, 8)
	assertRecords(t, tgt, 8)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, tgt2 := openTestManager(t, dir, Config{Sync: SyncAlways})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	assertRecords(t, tgt2, 8)
	st := m2.Stats()
	if st.ReplaySkipped != 1 {
		t.Fatalf("ReplaySkipped = %d, want 1 (the rejected record)", st.ReplaySkipped)
	}
	if st.NextSeq != 9 {
		t.Fatalf("NextSeq = %d, want 9 (rejections still consume sequence numbers)", st.NextSeq)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Each record is 8 + 12 + 16 = 36 bytes; rotate every ~4 records.
	m, _ := openTestManager(t, dir, Config{Sync: SyncNever, SegmentBytes: segHeaderLen + 4*36})
	appendN(t, m, 0, 20)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	m2, tgt := openTestManager(t, dir, Config{Sync: SyncNever})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	assertRecords(t, tgt, 20)
}

func TestCheckpointCoversPrefixAndPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncAlways, SegmentBytes: segHeaderLen + 4*36})
	appendN(t, m, 0, 17)
	info, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 17 {
		t.Fatalf("checkpoint seq = %d, want 17", info.Seq)
	}
	if _, err := os.Stat(info.Path); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	appendN(t, m, 17, 23)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, tgt := openTestManager(t, dir, Config{Sync: SyncAlways})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	assertRecords(t, tgt, 23)
	st := m2.Stats()
	// The acceptance criterion: replay after a checkpoint reads only the
	// WAL suffix.
	if st.Replayed != 6 {
		t.Fatalf("replayed %d records, want only the 6 past the checkpoint", st.Replayed)
	}
	if st.LastCheckpointSeq != 17 {
		t.Fatalf("LastCheckpointSeq = %d, want 17", st.LastCheckpointSeq)
	}
}

func TestCheckpointRetainsTwoSnapshots(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncAlways, SegmentBytes: segHeaderLen + 4*36})
	for round := 0; round < 4; round++ {
		appendN(t, m, round*10, (round+1)*10)
		if _, err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	cps, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(cps))
	}
	if cps[0].firstSeq != 40 || cps[1].firstSeq != 30 {
		t.Fatalf("retained checkpoints at %d and %d, want 40 and 30", cps[0].firstSeq, cps[1].firstSeq)
	}
	// Segments below the older retained checkpoint must be gone, and the
	// surviving log must still reach back to it.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].firstSeq > 30 {
		t.Fatalf("log no longer covers the older retained checkpoint: first segment at %d", segs[0].firstSeq)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot: recovery must fall back to the older
	// one and still reconstruct everything exactly.
	corruptFile(t, cps[0].path, 3)
	m2, tgt := openTestManager(t, dir, Config{Sync: SyncAlways})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	assertRecords(t, tgt, 40)
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncNever, CheckpointEvery: 10})
	appendN(t, m, 0, 35)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := m.Stats(); st.Checkpoints >= 1 && st.LastCheckpointSeq >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 35 appends with CheckpointEvery=10: %+v", m.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSyncCountsFsyncs(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncInterval})
	appendN(t, m, 0, 5)
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background fsync never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncAlways})
	appendN(t, m, 0, 7)
	st := m.Stats()
	if st.Appended != 7 {
		t.Fatalf("Appended = %d, want 7", st.Appended)
	}
	if st.Fsyncs < 7 {
		t.Fatalf("Fsyncs = %d, want >= 7 under SyncAlways", st.Fsyncs)
	}
	if st.Segments != 1 || st.WALBytes <= segHeaderLen {
		t.Fatalf("on-disk shape = %d segments, %d bytes", st.Segments, st.WALBytes)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayGapIsAnError(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncAlways, SegmentBytes: segHeaderLen + 4*36})
	appendN(t, m, 0, 12)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Deleting a middle segment leaves a sequence gap.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}, memRestore(4)); err == nil {
		t.Fatal("expected Open to fail on a log gap")
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncAlways, SegmentBytes: segHeaderLen + 4*36})
	appendN(t, m, 0, 12)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside a sealed (non-final) segment.
	corruptFile(t, segs[0].path, segHeaderLen+recHeaderLen+2)
	if _, err := Open(Config{Dir: dir}, memRestore(4)); err == nil {
		t.Fatal("expected Open to fail on mid-log corruption")
	}
}

func TestAllCheckpointsCorruptFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncAlways})
	appendN(t, m, 0, 10)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendN(t, m, 10, 15)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	cps, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range cps {
		corruptFile(t, cp.path, 5)
	}
	// Both snapshots are garbage and the log no longer reaches record 0
	// (the first checkpoint pruned it): recovery must fail, not silently
	// return a partial index.
	if _, err := Open(Config{Dir: dir}, memRestore(4)); err == nil {
		t.Fatal("expected Open to fail when no checkpoint loads and the log is pruned")
	}
}

func TestPoisonedAfterWriteError(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestManager(t, dir, Config{Sync: SyncNever})
	appendN(t, m, 0, 3)
	// Close the segment file behind the manager's back to force a write
	// error.
	m.mu.Lock()
	if err := m.seg.f.Close(); err != nil {
		m.mu.Unlock()
		t.Fatal(err)
	}
	m.mu.Unlock()
	if err := m.Append(testVec(4, 3), 3); err == nil {
		t.Fatal("expected write error")
	}
	if err := m.Append(testVec(4, 4), 4); err == nil {
		t.Fatal("expected poisoned log to reject further appends")
	}
	if _, err := m.Checkpoint(); err == nil {
		t.Fatal("expected poisoned log to reject checkpoints")
	}
}

// corruptFile XORs the byte at offset (clamped into range) with 0xFF.
func corruptFile(t *testing.T, path string, offset int64) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatalf("cannot corrupt empty file %s", path)
	}
	if offset >= int64(len(raw)) {
		offset = int64(len(raw)) - 1
	}
	raw[offset] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeRoundTrip covers the record codec directly, including
// NaN/Inf payloads which must survive bit-exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		dim := rng.Intn(16)
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		ts := rng.Int63() - rng.Int63()
		rec := encodeRecord(nil, ts, v)
		payload := rec[recHeaderLen:]
		if int(order.Uint32(rec[0:])) != len(payload) {
			t.Fatal("length prefix mismatch")
		}
		gotT, gotV, err := decodePayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		if gotT != ts || len(gotV) != dim {
			t.Fatalf("round trip (%d, %d dims) -> (%d, %d dims)", ts, dim, gotT, len(gotV))
		}
		for i := range v {
			if !bytes.Equal(float32Bytes(v[i]), float32Bytes(gotV[i])) {
				t.Fatalf("coordinate %d changed: %g -> %g", i, v[i], gotV[i])
			}
		}
	}
}

func float32Bytes(x float32) []byte {
	var b [4]byte
	order.PutUint32(b[:], math.Float32bits(x))
	return b[:]
}
