// Package wal implements durable ingestion for time-accumulating vector
// indexes: an append-only segmented write-ahead log of (timestamp, vector)
// records, a crash-tolerant replayer, and a Manager that layers
// log-before-apply ingestion, background checkpointing, and startup
// recovery over any index satisfying the small Target interface.
//
// The problem it solves: the indexes in this repository persist only via
// whole-index snapshots, so a crash loses every vector appended since the
// last save. With a WAL, every acknowledged append is on disk before the
// index applies it; on restart the Manager loads the latest valid
// snapshot and replays the log suffix, reconstructing exactly the set of
// acknowledged appends.
//
// On-disk layout (all integers little-endian):
//
//	<dir>/wal-<firstSeq>.seg        log segments, named by the sequence
//	                                number of their first record
//	<dir>/checkpoint-<seq>.snap     index snapshots covering records [0, seq)
//
// Segment format:
//
//	header:  magic uint32 | version uint32 | firstSeq uint64      (16 bytes)
//	record:  payloadLen uint32 | crc32c(payload) uint32 | payload
//	payload: timestamp int64 | dim uint32 | dim * float32
//
// Records are individually CRC-framed so the replayer can tell a torn
// tail (a crash mid-write: the log simply ends early) from mid-log
// corruption (bit rot inside a sealed region: recovery must not silently
// drop acknowledged data). Torn tails are truncated; mid-log corruption
// is a hard error.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
)

// SyncPolicy controls when the log fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Append/AppendBatch returns: an
	// acknowledged append survives power loss. Slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Config.SyncInterval):
	// a crash loses at most one interval of acknowledged appends to
	// power loss, nothing to a process kill (the OS has the writes).
	SyncInterval
	// SyncNever leaves syncing to the OS page cache. A process kill
	// still loses nothing; power loss can lose unflushed appends.
	SyncNever
)

// String returns the policy name used by ParseSyncPolicy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses "always", "interval", or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Format constants.
const (
	segMagic   = uint32(0x5457414c) // "TWAL"
	segVersion = uint32(1)

	segHeaderLen = 16
	recHeaderLen = 8
	// recPayloadMin is a record with a zero-dimensional vector.
	recPayloadMin = 12
	// maxRecordBytes bounds a record payload; lengths beyond it are
	// treated as corruption rather than allocated.
	maxRecordBytes = 1 << 26

	segPrefix = "wal-"
	segSuffix = ".seg"
	cpPrefix  = "checkpoint-"
	cpSuffix  = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var order = binary.LittleEndian

// segmentName returns the file name of the segment whose first record has
// the given sequence number.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

// checkpointName returns the file name of the snapshot covering records
// [0, seq).
func checkpointName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", cpPrefix, seq, cpSuffix)
}

// parseSeqName extracts the sequence number from a segment or checkpoint
// file name.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) == 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segmentFile describes one on-disk segment.
type segmentFile struct {
	path     string
	firstSeq uint64
	size     int64
}

// listSegments returns the directory's segments sorted by first sequence
// number.
func listSegments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseSeqName(e.Name(), segPrefix, segSuffix)
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segmentFile{path: filepath.Join(dir, e.Name()), firstSeq: seq, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	for i := 1; i < len(segs); i++ {
		if segs[i].firstSeq == segs[i-1].firstSeq {
			return nil, fmt.Errorf("wal: duplicate segments for record %d (%s, %s)",
				segs[i].firstSeq, filepath.Base(segs[i-1].path), filepath.Base(segs[i].path))
		}
	}
	return segs, nil
}

// listCheckpoints returns the directory's snapshot files sorted newest
// (highest covered sequence) first.
func listCheckpoints(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cps []segmentFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseSeqName(e.Name(), cpPrefix, cpSuffix)
		if !ok {
			continue
		}
		cps = append(cps, segmentFile{path: filepath.Join(dir, e.Name()), firstSeq: seq})
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].firstSeq > cps[j].firstSeq })
	return cps, nil
}

// encodeRecord appends the framed record for (t, v) to buf and returns
// the extended slice.
func encodeRecord(buf []byte, t int64, v []float32) []byte {
	payloadLen := recPayloadMin + 4*len(v)
	need := recHeaderLen + payloadLen
	start := len(buf)
	for cap(buf)-start < need {
		buf = append(buf[:cap(buf)], 0)
	}
	buf = buf[:start+need]
	payload := buf[start+recHeaderLen:]
	order.PutUint64(payload[0:], uint64(t))
	order.PutUint32(payload[8:], uint32(len(v)))
	for i, x := range v {
		order.PutUint32(payload[12+4*i:], math.Float32bits(x))
	}
	order.PutUint32(buf[start:], uint32(payloadLen))
	order.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodePayload parses a CRC-validated record payload.
func decodePayload(payload []byte) (int64, []float32, error) {
	if len(payload) < recPayloadMin {
		return 0, nil, fmt.Errorf("wal: record payload too short (%d bytes)", len(payload))
	}
	t := int64(order.Uint64(payload[0:]))
	dim := int(order.Uint32(payload[8:]))
	if len(payload) != recPayloadMin+4*dim {
		return 0, nil, fmt.Errorf("wal: record claims %d dimensions in %d payload bytes", dim, len(payload))
	}
	v := make([]float32, dim)
	for i := range v {
		v[i] = math.Float32frombits(order.Uint32(payload[12+4*i:]))
	}
	return t, v, nil
}

// segmentWriter appends framed records to one open segment file.
type segmentWriter struct {
	f        *os.File
	path     string
	firstSeq uint64
	size     int64
	dirty    bool // bytes written since the last fsync
}

// createSegment creates a new segment whose first record will carry seq.
// The header is written and fsynced immediately (and the directory entry
// synced) so a later torn tail can never be confused with a torn header.
func createSegment(dir string, seq uint64) (*segmentWriter, error) {
	path := filepath.Join(dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [segHeaderLen]byte
	order.PutUint32(hdr[0:], segMagic)
	order.PutUint32(hdr[4:], segVersion)
	order.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		closeAndRemove(f, path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		closeAndRemove(f, path)
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		closeAndRemove(f, path)
		return nil, err
	}
	return &segmentWriter{f: f, path: path, firstSeq: seq, size: segHeaderLen}, nil
}

// openSegmentForAppend reopens an existing (possibly tail-truncated)
// segment to continue appending at its end.
func openSegmentForAppend(seg segmentFile) (*segmentWriter, error) {
	f, err := os.OpenFile(seg.path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	size, err := f.Seek(0, 2) // io.SeekEnd
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, fmt.Errorf("wal: seeking %s: %v (and closing: %v)", seg.path, err, cerr)
		}
		return nil, err
	}
	return &segmentWriter{f: f, path: seg.path, firstSeq: seg.firstSeq, size: size}, nil
}

// write appends raw framed-record bytes.
func (w *segmentWriter) write(rec []byte) error {
	if fault.Enabled {
		// Injection point wal.write: an Error rule fails the write before
		// any byte lands; a Truncate rule models a torn write — the kept
		// prefix reaches the file (sizes update so recovery sees exactly
		// what a real torn tail leaves) and the injected error surfaces.
		if keep, ferr := fault.Cut("wal.write", len(rec)); ferr != nil {
			if keep > 0 {
				n, _ := w.f.Write(rec[:keep])
				if n > 0 {
					w.size += int64(n)
					w.dirty = true
				}
			}
			return ferr
		}
	}
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	w.size += int64(len(rec))
	w.dirty = true
	return nil
}

// sync fsyncs the segment if it has unsynced writes, reporting whether a
// syscall was issued.
func (w *segmentWriter) sync() (bool, error) {
	if !w.dirty {
		return false, nil
	}
	if fault.Enabled {
		// Injection point wal.sync: a failed fsync before the syscall —
		// the bytes may or may not be durable, which is exactly the state
		// a real fsync failure leaves.
		if err := fault.Hit("wal.sync"); err != nil {
			return false, err
		}
	}
	if err := w.f.Sync(); err != nil {
		return false, err
	}
	w.dirty = false
	return true, nil
}

// seal fsyncs and closes the segment.
func (w *segmentWriter) seal() error {
	if _, err := w.sync(); err != nil {
		if cerr := w.f.Close(); cerr != nil {
			return fmt.Errorf("wal: syncing %s: %v (and closing: %v)", w.path, err, cerr)
		}
		return err
	}
	return w.f.Close()
}

// closeAndRemove is best-effort cleanup on a failed segment creation; the
// original error is the one the caller reports.
func closeAndRemove(f *os.File, path string) {
	_ = f.Close()
	_ = os.Remove(path)
}

// syncDir fsyncs a directory so entry creations/renames/removals are
// durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("wal: syncing dir %s: %v (and closing: %v)", dir, err, cerr)
		}
		return err
	}
	return f.Close()
}

// now is stubbed in tests that pin checkpoint ages.
var now = time.Now
