package wal

import "fmt"

// validateSegments checks the cross-segment invariants of an on-disk log:
// first-sequence numbers strictly increase (each segment starts where some
// earlier one left off; duplicates would make replay ambiguous) and every
// segment is at least a full header (openActiveSegment runs after torn
// tails are truncated, so a sub-header file here is real corruption).
func validateSegments(segs []segmentFile) error {
	for i, seg := range segs {
		if seg.size < segHeaderLen {
			return fmt.Errorf("wal: segment %s is %d bytes, smaller than its %d-byte header",
				seg.path, seg.size, segHeaderLen)
		}
		if i > 0 && seg.firstSeq <= segs[i-1].firstSeq {
			return fmt.Errorf("wal: segment sequence numbers not strictly increasing: %d then %d",
				segs[i-1].firstSeq, seg.firstSeq)
		}
	}
	return nil
}

// validateLocked checks the Manager's in-memory sequencing invariants:
// the active segment exists, its first record position does not exceed the
// next sequence number (the segment holds records [firstSeq, nextSeq)), an
// empty segment sits exactly at nextSeq, and no checkpoint claims to cover
// records that were never logged. Caller holds mu; the mu-guarded fields
// are obviously race-free, and lastCpSeq (guarded by cpMu) is written only
// while Checkpoint holds BOTH cpMu and mu, so holding either lock makes
// reading it safe. O(1) — safe to run per record under the invariant gate.
func (m *Manager) validateLocked() error {
	if m.seg == nil {
		return fmt.Errorf("wal: no active segment")
	}
	if m.seg.size < segHeaderLen {
		return fmt.Errorf("wal: active segment %s is %d bytes, smaller than its header", m.seg.path, m.seg.size)
	}
	if m.seg.firstSeq > m.nextSeq {
		return fmt.Errorf("wal: active segment starts at record %d but nextSeq is %d", m.seg.firstSeq, m.nextSeq)
	}
	if m.seg.size == segHeaderLen && m.seg.firstSeq != m.nextSeq {
		return fmt.Errorf("wal: empty active segment at record %d, want %d", m.seg.firstSeq, m.nextSeq)
	}
	//lint:ignore guarded-by lastCpSeq is written only under cpMu+mu together, so mu alone is a race-free read
	if m.lastCpSeq > m.nextSeq {
		return fmt.Errorf("wal: checkpoint covers %d records but only %d were logged", m.lastCpSeq, m.nextSeq)
	}
	return nil
}
