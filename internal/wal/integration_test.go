package wal_test

import (
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	tknn "repro"
	"repro/internal/wal"
)

// Integration test against the real MBI index: *tknn.MBI satisfies
// wal.Target directly, so this exercises the exact stack cmd/tknnd runs —
// snapshot via persist.SaveMBI, restore via LoadMBI, replay through
// MBI.Add — including a simulated SIGKILL (the Manager is abandoned
// without Close) followed by a torn tail.

const (
	mbiDim    = 8
	mbiRecLen = 8 + 12 + 4*mbiDim // framed record size at this dimension
)

func mbiRestore(opts tknn.MBIOptions) wal.RestoreFunc {
	return func(snapshot io.Reader) (wal.Target, error) {
		if snapshot == nil {
			return tknn.NewMBI(opts)
		}
		return tknn.LoadMBI(snapshot, opts)
	}
}

func mbiVec(rng *rand.Rand) []float32 {
	v := make([]float32, mbiDim)
	for i := range v {
		v[i] = rng.Float32()
	}
	return v
}

func TestMBIRecoveryAfterKillAndTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := tknn.MBIOptions{Dim: mbiDim, LeafSize: 16}
	cfg := wal.Config{Dir: dir, Sync: wal.SyncNever, SegmentBytes: 1 << 12}

	const (
		cpAt  = 120
		total = 200
	)
	rng := rand.New(rand.NewSource(42))
	vecs := make([][]float32, total)
	for i := range vecs {
		vecs[i] = mbiVec(rng)
	}

	m, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < cpAt; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := cpAt; i < total; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// SIGKILL: no Close, no final fsync. The page cache still holds the
	// writes, exactly as it would for a killed process on the same host.

	// Tear the active segment mid-record: its final record is cut in
	// half, as a crash during that write would leave it.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if info.Size() < 16+mbiRecLen {
		t.Fatalf("active segment holds no complete record (%d bytes)", info.Size())
	}
	cut := info.Size() - int64(mbiRecLen)/2
	if err := os.Truncate(last, cut); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	want := total - 1 // only the torn record is gone

	m2, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := m2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ix, ok := m2.Index().(*tknn.MBI)
	if !ok {
		t.Fatalf("Index() is %T, want *tknn.MBI", m2.Index())
	}
	if got := ix.Len(); got != want {
		t.Fatalf("recovered index holds %d vectors, want %d", got, want)
	}
	st := m2.Stats()
	if got := st.Replayed; got != uint64(want-cpAt) {
		t.Fatalf("replayed %d records, want only the post-checkpoint suffix %d", got, want-cpAt)
	}
	if !st.ReplayTruncated {
		t.Fatal("stats should report the torn tail")
	}

	// Every recovered vector must be findable at its own timestamp with
	// distance zero — byte-exact replay, not approximate recovery.
	for _, i := range []int{0, cpAt - 1, cpAt, want - 1} {
		res, err := ix.Search(tknn.Query{Vector: vecs[i], K: 1, Start: int64(i), End: int64(i) + 1})
		if err != nil {
			t.Fatalf("Search %d: %v", i, err)
		}
		if len(res) != 1 || res[0].Time != int64(i) || res[0].Dist != 0 {
			t.Fatalf("vector %d not recovered exactly: %+v", i, res)
		}
	}

	// The recovered manager keeps working: append, checkpoint, restart.
	extra := mbiVec(rng)
	if err := m2.Append(extra, int64(total)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if _, err := m2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m3, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer func() {
		if err := m3.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if got := m3.Index().Len(); got != want+1 {
		t.Fatalf("after checkpointed restart index holds %d vectors, want %d", got, want+1)
	}
	if st := m3.Stats(); st.Replayed != 0 {
		t.Fatalf("replayed %d records after a fresh checkpoint, want 0", st.Replayed)
	}
}
