//go:build tknn_fault

package wal_test

import (
	"errors"
	"math/rand"
	"testing"

	tknn "repro"
	"repro/internal/fault"
	"repro/internal/wal"
)

// Fault-injection recovery tests (build tag tknn_fault): disk failures
// injected mid-append and mid-checkpoint must never corrupt the log —
// every acknowledged insert survives a reopen, and unacknowledged ones
// may at most surface as extras, never as torn or reordered state.

func faultEnv(t *testing.T) (wal.Config, tknn.MBIOptions, [][]float32) {
	t.Helper()
	t.Cleanup(fault.Reset)
	fault.Reset()
	cfg := wal.Config{Dir: t.TempDir(), Sync: wal.SyncNever, SegmentBytes: 1 << 12}
	opts := tknn.MBIOptions{Dim: mbiDim, LeafSize: 16}
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]float32, 120)
	for i := range vecs {
		vecs[i] = mbiVec(rng)
	}
	return cfg, opts, vecs
}

func mustConfigure(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Configure(spec, 1); err != nil {
		t.Fatalf("Configure(%q): %v", spec, err)
	}
}

func reopenLen(t *testing.T, cfg wal.Config, opts tknn.MBIOptions) int {
	t.Helper()
	m, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m.Close()
	return m.Index().(*tknn.MBI).Len()
}

func TestInjectedWriteErrorMidAppend(t *testing.T) {
	cfg, opts, vecs := faultEnv(t)
	m, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const acked = 40
	for i := 0; i < acked; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// The next record's write fails outright: the append must error and
	// must not be applied to the index.
	mustConfigure(t, "wal.write:error:count=1")
	if err := m.Append(vecs[acked], int64(acked)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append under injection: err = %v, want ErrInjected", err)
	}
	if got := m.Index().(*tknn.MBI).Len(); got != acked {
		t.Fatalf("failed append applied: index has %d vectors, want %d", got, acked)
	}
	_ = m.Close() // the manager is poisoned; sealing may itself error
	fault.Reset()
	if got := reopenLen(t, cfg, opts); got != acked {
		t.Fatalf("recovered %d vectors, want %d", got, acked)
	}
}

func TestInjectedTornWriteMidAppend(t *testing.T) {
	cfg, opts, vecs := faultEnv(t)
	m, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const acked = 30
	for i := 0; i < acked; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// A short write: 10 bytes of the record land on disk, then the disk
	// dies. Recovery must truncate the torn tail, not choke on it.
	mustConfigure(t, "wal.write:truncate=10:count=1")
	if err := m.Append(vecs[acked], int64(acked)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append under injection: err = %v, want ErrInjected", err)
	}
	_ = m.Close()
	fault.Reset()
	if got := reopenLen(t, cfg, opts); got != acked {
		t.Fatalf("recovered %d vectors, want %d (torn tail must be dropped)", got, acked)
	}
}

func TestInjectedFsyncErrorMidAppend(t *testing.T) {
	cfg, opts, vecs := faultEnv(t)
	cfg.Sync = wal.SyncAlways
	m, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const acked = 20
	for i := 0; i < acked; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	mustConfigure(t, "wal.sync:error:count=1")
	if err := m.Append(vecs[acked], int64(acked)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append under injection: err = %v, want ErrInjected", err)
	}
	_ = m.Close()
	fault.Reset()
	// The record's bytes were written before the fsync failed, so the
	// unacknowledged insert may legitimately surface on replay — but the
	// log must stay readable and every acknowledged insert must be there.
	got := reopenLen(t, cfg, opts)
	if got < acked || got > acked+1 {
		t.Fatalf("recovered %d vectors, want %d or %d", got, acked, acked+1)
	}
}

func TestInjectedCheckpointFailureKeepsOldState(t *testing.T) {
	cfg, opts, vecs := faultEnv(t)
	m, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const half, total = 50, 100
	for i := 0; i < half; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	for i := half; i < total; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// The second snapshot fails mid-write; the first one must remain the
	// newest durable state and the log must still cover the gap.
	mustConfigure(t, "wal.checkpoint:error:count=1")
	if _, err := m.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint under injection: err = %v, want ErrInjected", err)
	}
	// Appends continue after a failed checkpoint — it is not a poisoning
	// event.
	if err := m.Append(vecs[0], int64(total)); err != nil {
		t.Fatalf("append after failed checkpoint: %v", err)
	}
	_ = m.Close()
	fault.Reset()
	if got := reopenLen(t, cfg, opts); got != total+1 {
		t.Fatalf("recovered %d vectors, want %d", got, total+1)
	}
}

func TestInjectedPersistWriteFailureDuringCheckpoint(t *testing.T) {
	cfg, opts, vecs := faultEnv(t)
	m, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const total = 60
	for i := 0; i < total; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// Fail deep inside snapshot serialization (the CRC writer), past the
	// header: the torn temp file must be discarded, not renamed in.
	mustConfigure(t, "persist.write:error:after=2:count=1")
	if _, err := m.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint under injection: err = %v, want ErrInjected", err)
	}
	fault.Reset()
	// A later checkpoint succeeds and the reopened state is complete.
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after injection cleared: %v", err)
	}
	_ = m.Close()
	if got := reopenLen(t, cfg, opts); got != total {
		t.Fatalf("recovered %d vectors, want %d", got, total)
	}
}

func TestInjectedSnapshotReadFallsBackToOlderCheckpoint(t *testing.T) {
	cfg, opts, vecs := faultEnv(t)
	m, err := wal.Open(cfg, mbiRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const half, total = 40, 80
	for i := 0; i < half; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	for i := half; i < total; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The newest snapshot's first read fails; recovery must fall back to
	// the retained older snapshot plus a longer replay and still arrive
	// at the full acknowledged state.
	mustConfigure(t, "persist.read:error:count=1")
	if got := reopenLen(t, cfg, opts); got != total {
		t.Fatalf("recovered %d vectors via fallback, want %d", got, total)
	}
}
