package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedSegment produces the bytes of a small valid segment through
// the real append path, for use as fuzz seed corpus.
func buildSeedSegment(f *testing.F) []byte {
	dir := f.TempDir()
	m, err := Open(Config{Dir: dir, Sync: SyncNever}, memRestore(4))
	if err != nil {
		f.Fatalf("Open: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := m.Append(testVec(4, i), int64(i)); err != nil {
			f.Fatalf("Append: %v", err)
		}
	}
	if err := m.Close(); err != nil {
		f.Fatalf("Close: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, segmentName(0)))
	if err != nil {
		f.Fatalf("ReadFile: %v", err)
	}
	return raw
}

// FuzzSegmentReplay feeds arbitrary bytes to Replay as a segment file.
// Replay must never panic or hang, and when it succeeds its counters
// must be self-consistent and bounded by what the bytes could hold.
func FuzzSegmentReplay(f *testing.F) {
	seed := buildSeedSegment(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])        // torn tail
	f.Add(seed[:segHeaderLen])       // header only
	f.Add([]byte{})                  // empty file
	f.Add(bytes.Repeat(seed, 2))     // spliced double
	mut := append([]byte{}, seed...) // one flipped CRC byte
	mut[segHeaderLen+recHeaderLen] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), raw, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		var applied uint64
		stats, err := Replay(dir, 0, func(seq uint64, ts int64, v []float32) error {
			applied++
			return nil
		})
		if err != nil {
			return
		}
		if stats.Applied != applied || stats.Applied+stats.Skipped != stats.Records {
			t.Fatalf("inconsistent counters: %+v (callback saw %d)", stats, applied)
		}
		minRec := uint64(recHeaderLen + recPayloadMin)
		if max := uint64(len(raw)) / minRec; stats.Records > max {
			t.Fatalf("replayed %d records from %d bytes (max plausible %d)", stats.Records, len(raw), max)
		}
		if stats.NextSeq != stats.Records {
			t.Fatalf("NextSeq %d but %d records from seq 0", stats.NextSeq, stats.Records)
		}
	})
}

// FuzzRecordDecode asserts decodePayload never panics and that every
// payload it accepts re-encodes to the identical bytes (the format has
// exactly one representation per record).
func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeRecord(nil, 42, testVec(4, 1))[recHeaderLen:])
	f.Add(encodeRecord(nil, -1, nil)[recHeaderLen:])

	f.Fuzz(func(t *testing.T, payload []byte) {
		ts, v, err := decodePayload(payload)
		if err != nil {
			return
		}
		re := encodeRecord(nil, ts, v)
		if !bytes.Equal(re[recHeaderLen:], payload) {
			t.Fatalf("decode/encode not a fixpoint:\n in: %x\nout: %x", payload, re[recHeaderLen:])
		}
	})
}
