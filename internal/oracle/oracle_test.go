package oracle

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic pins the property Minimize depends on: the
// workload is a pure function of the config, and truncating it replays an
// identical prefix.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 9}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic for a fixed config")
	}
	if len(a) != cfg.applyDefaults().Ops {
		t.Fatalf("generated %d ops, want %d", len(a), cfg.applyDefaults().Ops)
	}
	inserts := 0
	for _, op := range a {
		if op.Kind == OpInsert {
			inserts++
		}
	}
	if inserts == 0 || inserts == len(a) {
		t.Fatalf("degenerate workload: %d inserts of %d ops", inserts, len(a))
	}
}

// TestSmokeRun replays a small workload untagged, so the harness itself is
// exercised by plain `go test ./...`; the heavyweight multi-seed sweep
// lives behind the tknn_invariants tag.
func TestSmokeRun(t *testing.T) {
	cfg := Config{Seed: 1, Ops: 150}
	stats, err := Run(cfg)
	if err != nil {
		t.Fatalf("differential smoke run failed: %v\nreplay: TKNN_ORACLE_SEED=%d go test -tags tknn_invariants -run TestDifferentialOracle ./internal/oracle/", err, cfg.Seed)
	}
	if stats.ExactChecks == 0 {
		t.Error("workload produced no exactness-checked queries")
	}
	if stats.RecallChecks == 0 {
		t.Error("workload produced no recall-scored queries")
	}
	t.Logf("inserts=%d queries=%d exact=%d recall-scored=%d recall=%v",
		stats.Inserts, stats.Queries, stats.ExactChecks, stats.RecallChecks, stats.Recall)
}

// TestMinimizePassthrough: a passing workload comes back unchanged.
func TestMinimizePassthrough(t *testing.T) {
	cfg := Config{Seed: 1, Ops: 60}
	ops := Generate(cfg)
	if got := Minimize(cfg, ops); len(got) != len(ops) {
		t.Fatalf("Minimize shrank a passing workload to %d of %d ops", len(got), len(ops))
	}
}
