//go:build tknn_invariants

package oracle

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	tknn "repro"
)

// TestDifferentialOracle is the full randomized sweep: several seeds per
// metric, replayed with runtime invariant checking compiled in (this file
// is tagged tknn_invariants, so a structural violation inside any index
// panics the run with the broken property named).
//
// On failure it prints the failing seed, the workload minimized to the
// operations that still reproduce it, and a one-line replay command.
// Set TKNN_ORACLE_SEED to replay a single reported seed.
func TestDifferentialOracle(t *testing.T) {
	type run struct {
		seed   int64
		metric tknn.Metric
	}
	runs := []run{
		{seed: 1}, {seed: 2}, {seed: 3}, {seed: 7},
		{seed: 11, metric: tknn.Angular},
		{seed: 12, metric: tknn.Angular},
	}
	if s := os.Getenv("TKNN_ORACLE_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("TKNN_ORACLE_SEED=%q: %v", s, err)
		}
		// Replay the seed under both metrics: the report names the seed
		// only, and a replay that runs an extra passing config is cheap.
		runs = []run{{seed: seed}, {seed: seed, metric: tknn.Angular}}
	}
	for _, r := range runs {
		r := r
		t.Run(fmt.Sprintf("seed=%d/metric=%v", r.seed, r.metric), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Seed: r.seed, Metric: r.metric}
			ops := Generate(cfg)
			stats, err := Replay(cfg, ops)
			if err != nil {
				t.Fatal(failureReport(cfg, ops, err))
			}
			if stats.ExactChecks == 0 || stats.RecallChecks == 0 {
				t.Errorf("workload did not cover both regimes: %d exact, %d recall-scored",
					stats.ExactChecks, stats.RecallChecks)
			}
			t.Logf("inserts=%d queries=%d exact=%d recall-scored=%d recall=%v",
				stats.Inserts, stats.Queries, stats.ExactChecks, stats.RecallChecks, stats.Recall)
		})
	}
}

// failureReport shrinks the workload and formats everything needed to
// reproduce: the divergence, the minimized op list, and the replay line.
func failureReport(cfg Config, ops []Op, err error) string {
	minimized := Minimize(cfg, ops)
	var b strings.Builder
	fmt.Fprintf(&b, "differential failure: %v\n", err)
	fmt.Fprintf(&b, "workload minimized from %d to %d ops:\n", len(ops), len(minimized))
	for i, op := range minimized {
		fmt.Fprintf(&b, "  %3d: %s\n", i, op)
	}
	fmt.Fprintf(&b, "replay with:\n  TKNN_ORACLE_SEED=%d go test -tags tknn_invariants -run TestDifferentialOracle ./internal/oracle/\n", cfg.Seed)
	return b.String()
}
