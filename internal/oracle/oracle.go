// Package oracle is a differential testing harness for the repository's
// TkNN indexes. It generates randomized insert/query workloads, replays
// them simultaneously through MBI (sync and async), SF, and IVF, and
// checks every answer against the brute-force BSBF baseline, which is
// exact by construction.
//
// The comparison is two-tiered, mirroring what the indexes actually
// guarantee:
//
//   - Where an index's answer is provably exact — MBI when the window only
//     touches brute-forced regions (open leaf, pending async builds), SF
//     before its first graph build, IVF when probing every list — the
//     harness demands the exact BSBF distance sequence. Comparing distance
//     sequences rather than ID sequences makes the check robust to
//     tie-breaking differences between implementations.
//   - Elsewhere the answer is approximate by design, so per-query the
//     harness checks only structural sanity (sorted, deduplicated, inside
//     the window, never more results than the window holds) and tracks
//     distance-based recall against BSBF, asserting a per-system aggregate
//     floor at the end of the run.
//
// Workloads are materialized up front from a seed, so a failure shrinks
// mechanically: Minimize truncates to the failing prefix and then greedily
// drops operations while the failure reproduces. Failing seeds print with
// a TKNN_ORACLE_SEED replay line (see the tagged differential test).
package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	tknn "repro"
)

// Config sizes a workload. Zero fields get defaults from applyDefaults.
type Config struct {
	// Seed determines the whole workload.
	Seed int64
	// Ops is the number of operations (inserts + queries). Default 400.
	Ops int
	// Dim is the vector dimension. Default 8.
	Dim int
	// Metric is the distance function. Default tknn.Euclidean.
	Metric tknn.Metric
	// LeafSize is MBI's S_L; kept small so workloads seal many blocks.
	// Default 8.
	LeafSize int
	// MaxK bounds query K. Default 5.
	MaxK int
	// RecallFloor is the aggregate distance-recall each graph-based
	// system must reach over the run's approximate queries. Default 0.85.
	RecallFloor float64
}

func (c Config) applyDefaults() Config {
	if c.Ops == 0 {
		c.Ops = 400
	}
	if c.Dim == 0 {
		c.Dim = 8
	}
	if c.LeafSize == 0 {
		c.LeafSize = 8
	}
	if c.MaxK == 0 {
		c.MaxK = 5
	}
	if c.RecallFloor == 0 {
		c.RecallFloor = 0.85
	}
	return c
}

// OpKind tags a workload operation.
type OpKind int

const (
	// OpInsert appends Vec at Time to every system.
	OpInsert OpKind = iota
	// OpQuery runs the TkNN query (Vec, K, [Start, End)) on every system
	// and compares against BSBF.
	OpQuery
)

// Op is one materialized workload operation.
type Op struct {
	Kind       OpKind
	Vec        []float32
	Time       int64 // insert timestamp
	K          int
	Start, End int64 // query window
}

func (o Op) String() string {
	if o.Kind == OpInsert {
		return fmt.Sprintf("insert t=%d", o.Time)
	}
	return fmt.Sprintf("query k=%d window=[%d,%d)", o.K, o.Start, o.End)
}

// Generate materializes the workload for cfg. The op list is a pure
// function of the config, so any suffix-truncation of it replays an
// identical prefix — the property Minimize relies on.
func Generate(cfg Config) []Op {
	cfg = cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := make([]Op, 0, cfg.Ops)
	var t int64
	inserted := 0
	for len(ops) < cfg.Ops {
		// Lead with a few inserts so early queries have data; then mix.
		if inserted < 4 || rng.Float64() < 0.6 {
			// Int63n(3) makes runs of duplicate timestamps common — the
			// regime where block-window boundary bugs live.
			t += rng.Int63n(3)
			ops = append(ops, Op{Kind: OpInsert, Vec: randVec(rng, cfg.Dim), Time: t})
			inserted++
			continue
		}
		op := Op{Kind: OpQuery, Vec: randVec(rng, cfg.Dim), K: 1 + rng.Intn(cfg.MaxK)}
		switch rng.Intn(4) {
		case 0: // full history
			op.Start, op.End = 0, t+1
		case 1: // short window ending now (often only the open leaf)
			op.Start, op.End = max64(0, t-2), t+1
		default: // random window
			op.Start = rng.Int63n(t + 1)
			op.End = op.Start + 1 + rng.Int63n(t-op.Start+2)
		}
		ops = append(ops, op)
	}
	return ops
}

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// Failure describes the first divergence Replay found.
type Failure struct {
	// OpIndex is the position of the failing operation in the workload.
	OpIndex int
	// System names the diverging index ("" when the reference itself
	// failed).
	System string
	// Op is the failing operation.
	Op Op
	// Msg states the divergence.
	Msg string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("oracle: op %d (%s) on %s: %s", f.OpIndex, f.Op, f.System, f.Msg)
}

// Stats aggregates a successful (or partially successful) replay.
type Stats struct {
	Inserts int
	Queries int
	// ExactChecks counts (system, query) pairs verified for exact
	// equality; RecallChecks counts pairs scored for recall.
	ExactChecks  int
	RecallChecks int
	// Recall maps system name to its aggregate distance-recall over the
	// run's approximate queries (1.0 when it had none).
	Recall map[string]float64
}

// Replay runs ops through every system and the BSBF reference, returning
// the first divergence. The recall floor is asserted at the end of a
// divergence-free replay.
func Replay(cfg Config, ops []Op) (Stats, error) {
	cfg = cfg.applyDefaults()
	stats := Stats{Recall: map[string]float64{}}

	ref, err := tknn.NewBSBF(cfg.Dim, cfg.Metric)
	if err != nil {
		return stats, err
	}
	systems, closeAll, err := newSystems(cfg)
	if err != nil {
		return stats, err
	}
	defer closeAll()

	recallSum := map[string]float64{}
	recallN := map[string]int{}

	for i, op := range ops {
		if op.Kind == OpInsert {
			if err := ref.Add(op.Vec, op.Time); err != nil {
				return stats, &Failure{OpIndex: i, System: "bsbf", Op: op, Msg: err.Error()}
			}
			for _, s := range systems {
				if err := s.add(op.Vec, op.Time); err != nil {
					return stats, &Failure{OpIndex: i, System: s.name, Op: op, Msg: err.Error()}
				}
			}
			stats.Inserts++
			continue
		}

		q := tknn.Query{Vector: op.Vec, K: op.K, Start: op.Start, End: op.End}
		truth, err := ref.Search(q)
		if err != nil {
			return stats, &Failure{OpIndex: i, System: "bsbf", Op: op, Msg: err.Error()}
		}
		stats.Queries++
		for _, s := range systems {
			got, err := s.search(q)
			if err != nil {
				return stats, &Failure{OpIndex: i, System: s.name, Op: op, Msg: err.Error()}
			}
			if msg := checkSane(got, q, ref.Len(), len(truth)); msg != "" {
				return stats, &Failure{OpIndex: i, System: s.name, Op: op, Msg: msg}
			}
			if s.exact(q) {
				stats.ExactChecks++
				if msg := checkExact(got, truth); msg != "" {
					return stats, &Failure{OpIndex: i, System: s.name, Op: op, Msg: msg}
				}
			} else {
				stats.RecallChecks++
				recallSum[s.name] += recallOf(got, truth)
				recallN[s.name]++
			}
		}
	}

	for _, s := range systems {
		r := 1.0
		if n := recallN[s.name]; n > 0 {
			r = recallSum[s.name] / float64(n)
		}
		stats.Recall[s.name] = r
		if floor := s.recallFloor(cfg); r < floor {
			return stats, &Failure{
				OpIndex: len(ops) - 1,
				System:  s.name,
				Op:      Op{Kind: OpQuery},
				Msg: fmt.Sprintf("aggregate recall %.3f over %d approximate queries, floor %.2f",
					r, recallN[s.name], floor),
			}
		}
	}
	return stats, nil
}

// Run generates and replays the workload for cfg.
func Run(cfg Config) (Stats, error) {
	return Replay(cfg, Generate(cfg))
}

// distEps absorbs the one place exact answers may differ in float bits:
// both sides use identical distance kernels over identical pairs, but
// cross-block merges can sum ties in a different order upstream.
const distEps = 1e-5

// checkSane verifies the guarantees every index makes on every query,
// exact or not.
func checkSane(got []tknn.Result, q tknn.Query, dbLen, inWindow int) string {
	want := q.K
	if inWindow < want {
		want = inWindow
	}
	if len(got) > want {
		return fmt.Sprintf("returned %d results for k=%d with %d in-window vectors", len(got), q.K, inWindow)
	}
	seen := map[int]bool{}
	for i, r := range got {
		if r.ID < 0 || r.ID >= dbLen {
			return fmt.Sprintf("result %d has id %d outside [0,%d)", i, r.ID, dbLen)
		}
		if seen[r.ID] {
			return fmt.Sprintf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
		if r.Time < q.Start || r.Time >= q.End {
			return fmt.Sprintf("result %d (id %d, t=%d) outside window [%d,%d)", i, r.ID, r.Time, q.Start, q.End)
		}
		if i > 0 && r.Dist < got[i-1].Dist {
			return fmt.Sprintf("results not ascending: dist[%d]=%v < dist[%d]=%v", i, r.Dist, i-1, got[i-1].Dist)
		}
	}
	return ""
}

// checkExact demands the reference's distance sequence.
func checkExact(got, truth []tknn.Result) string {
	if len(got) != len(truth) {
		return fmt.Sprintf("got %d results, exact answer has %d\n  got:   %s\n  truth: %s",
			len(got), len(truth), renderResults(got), renderResults(truth))
	}
	for i := range got {
		d := float64(got[i].Dist) - float64(truth[i].Dist)
		if d < -distEps || d > distEps {
			return fmt.Sprintf("distance %d diverges: got %v, exact %v\n  got:   %s\n  truth: %s",
				i, got[i].Dist, truth[i].Dist, renderResults(got), renderResults(truth))
		}
	}
	return ""
}

// recallOf scores got against the exact answer by distance: a returned
// result counts when it is at least as near as the worst true neighbor
// (within distEps), which is the tie-robust form of recall@k.
func recallOf(got, truth []tknn.Result) float64 {
	if len(truth) == 0 {
		return 1
	}
	worst := float64(truth[len(truth)-1].Dist) + distEps
	hit := 0
	for _, r := range got {
		if float64(r.Dist) <= worst {
			hit++
		}
	}
	if hit > len(truth) {
		hit = len(truth)
	}
	return float64(hit) / float64(len(truth))
}

func renderResults(rs []tknn.Result) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("(%d t=%d d=%.4g)", r.ID, r.Time, r.Dist)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Minimize shrinks a failing workload: first truncate to the failing
// prefix, then greedily drop earlier operations while the replay still
// fails. The returned slice still fails under Replay; if ops does not
// fail in the first place it is returned unchanged.
func Minimize(cfg Config, ops []Op) []Op {
	fails := func(candidate []Op) bool {
		_, err := Replay(cfg, candidate)
		return err != nil
	}
	_, err := Replay(cfg, ops)
	f, ok := err.(*Failure)
	if !ok {
		return ops
	}
	cur := append([]Op(nil), ops[:f.OpIndex+1]...)
	for j := len(cur) - 2; j >= 0; j-- {
		candidate := append(append([]Op(nil), cur[:j]...), cur[j+1:]...)
		if fails(candidate) {
			cur = candidate
		}
	}
	return cur
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
