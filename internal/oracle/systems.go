package oracle

import (
	"context"
	"os"

	tknn "repro"
	"repro/internal/core"
)

// system is one index under differential test.
type system struct {
	name   string
	add    func(v []float32, t int64) error
	search func(q tknn.Query) ([]tknn.Result, error)
	// exact reports whether, in the system's current state, its answer to
	// q is guaranteed to equal the brute-force answer.
	exact func(q tknn.Query) bool
	// floor is the aggregate recall bound applied to the system's
	// approximate queries.
	floor func(cfg Config) float64
}

func (s *system) recallFloor(cfg Config) float64 { return s.floor(cfg) }

func graphFloor(cfg Config) float64 { return cfg.RecallFloor }
func alwaysExact(tknn.Query) bool   { return true }

// sq8RecallFloor is the aggregate recall bound for the SQ8-compressed MBI
// variant. The default rerank factor (4) recovers most quantization loss,
// but the walk itself routes on approximate distances, so the floor sits
// below the flat-graph floor on purpose.
const sq8RecallFloor = 0.80

// newSystems builds one instance of every index variant the oracle
// exercises. closeAll must be called when the replay finishes.
func newSystems(cfg Config) ([]*system, func(), error) {
	var systems []*system
	var closers []func()
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}

	// MBI, synchronous merges, queried through the shared executor with an
	// explicit 2-worker pool: the oracle then continuously re-checks that
	// parallel per-block execution answers exactly like the old sequential
	// path (plan-time entry draws + disjoint ranges make results
	// worker-count independent). Exact exactly when block selection chose
	// only brute-forced regions — Explain reports the plan without
	// searching, so the classification can't drift from the real query
	// path.
	mbiSync, err := tknn.NewMBI(tknn.MBIOptions{
		Dim: cfg.Dim, Metric: cfg.Metric, LeafSize: cfg.LeafSize, Seed: cfg.Seed + 1,
		QueryWorkers: 2,
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	systems = append(systems, &system{
		name: "mbi-sync",
		add:  mbiSync.Add,
		search: func(q tknn.Query) ([]tknn.Result, error) {
			return mbiSync.SearchContext(context.Background(), q)
		},
		exact: func(q tknn.Query) bool { return planIsBruteForce(mbiSync.Explain(q.Start, q.End)) },
		floor: graphFloor,
	})

	// MBI with asynchronous merging. Flushing before every query makes
	// the visible state deterministic (all queued builds installed), so
	// replays and shrinks reproduce; the paper's equivalence claim — the
	// async tree is bit-identical to the sync one — is then tested for
	// free, because both variants face the same exactness checks.
	mbiAsync, err := tknn.NewMBI(tknn.MBIOptions{
		Dim: cfg.Dim, Metric: cfg.Metric, LeafSize: cfg.LeafSize, Seed: cfg.Seed + 1,
		AsyncMerge: true, Workers: 2,
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	closers = append(closers, func() { _ = mbiAsync.Close() })
	systems = append(systems, &system{
		name: "mbi-async",
		add:  mbiAsync.Add,
		search: func(q tknn.Query) ([]tknn.Result, error) {
			mbiAsync.Flush()
			return mbiAsync.Search(q)
		},
		exact: func(q tknn.Query) bool {
			mbiAsync.Flush()
			return planIsBruteForce(mbiAsync.Explain(q.Start, q.End))
		},
		floor: graphFloor,
	})

	// MBI with SQ8-compressed blocks: graph walks read quantized codes and
	// re-rank exactly. Quantization loses information, so this system gets
	// an explicit floor below the graph floor — it guards against the
	// compressed path collapsing (wrong LUT, broken re-rank), not against
	// the inherent quantization cost the paper's §4.1 modularity argument
	// accepts.
	mbiSQ8, err := tknn.NewMBI(tknn.MBIOptions{
		Dim: cfg.Dim, Metric: cfg.Metric, LeafSize: cfg.LeafSize, Seed: cfg.Seed + 1,
		Compression: tknn.CompressionSQ8,
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	systems = append(systems, &system{
		name: "mbi-sq8",
		add:  mbiSQ8.Add,
		search: func(q tknn.Query) ([]tknn.Result, error) {
			return mbiSQ8.SearchContext(context.Background(), q)
		},
		exact: func(q tknn.Query) bool { return planIsBruteForce(mbiSQ8.Explain(q.Start, q.End)) },
		floor: func(Config) float64 { return sq8RecallFloor },
	})

	// MBI with tiered storage: cold blocks spilled to segment files
	// before every search, paged back through a deliberately tiny block
	// cache so queries constantly cross the fetch path. Cold execution
	// draws entry seeds at plan time in selection order, so its answers
	// are bit-identical to the RAM-resident index's — the plain graph
	// floor applies, and any divergence (torn segment accepted, stale
	// payload, fetch reordering) surfaces as a recall or exactness
	// violation.
	tierDir, err := os.MkdirTemp("", "tknn-oracle-tier-")
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	closers = append(closers, func() { _ = os.RemoveAll(tierDir) })
	mbiTiered, err := tknn.NewMBI(tknn.MBIOptions{
		Dim: cfg.Dim, Metric: cfg.Metric, LeafSize: cfg.LeafSize, Seed: cfg.Seed + 1,
		SpillDir: tierDir, CacheBytes: 1 << 16, SpillMaxHeight: 64,
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	systems = append(systems, &system{
		name: "mbi-tiered",
		add:  mbiTiered.Add,
		search: func(q tknn.Query) ([]tknn.Result, error) {
			// Spill before searching so newly sealed blocks go cold as the
			// replay grows the index; already-spilled blocks are no-ops.
			if _, _, err := mbiTiered.SpillCold(); err != nil {
				return nil, err
			}
			return mbiTiered.SearchContext(context.Background(), q)
		},
		exact: func(q tknn.Query) bool { return planIsBruteForce(mbiTiered.Explain(q.Start, q.End)) },
		floor: graphFloor,
	})

	// SF with no graph build: every query falls through to the exact
	// brute-force tail scan, making it a second independent reference.
	sfFrozen, err := tknn.NewSF(tknn.SFOptions{Dim: cfg.Dim, Metric: cfg.Metric, Seed: cfg.Seed + 2})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	systems = append(systems, &system{
		name:   "sf-frozen",
		add:    sfFrozen.Add,
		search: sfFrozen.Search,
		exact:  alwaysExact,
		floor:  graphFloor,
	})

	// SF with periodic rebuilds: exact until the first build, then a
	// graph search with a brute-forced tail — the approximate regime the
	// recall floor governs.
	sfRebuild, err := tknn.NewSF(tknn.SFOptions{
		Dim: cfg.Dim, Metric: cfg.Metric, Seed: cfg.Seed + 3, RebuildEvery: 2 * cfg.LeafSize,
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	systems = append(systems, &system{
		name:   "sf-rebuild",
		add:    sfRebuild.Add,
		search: sfRebuild.Search,
		exact:  func(tknn.Query) bool { return sfRebuild.Built() == 0 },
		floor:  graphFloor,
	})

	// IVF probing every list: exact within the window by construction
	// (probed lists cover the database; the unclustered tail is scanned).
	ivfFull, err := tknn.NewIVF(tknn.IVFOptions{
		Dim: cfg.Dim, Metric: cfg.Metric, Seed: cfg.Seed + 4, RebuildEvery: 3 * cfg.LeafSize,
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	systems = append(systems, &system{
		name: "ivf-full",
		add:  ivfFull.Add,
		search: func(q tknn.Query) ([]tknn.Result, error) {
			nprobe := ivfFull.Lists()
			if nprobe < 1 {
				nprobe = 1
			}
			// Through the executor path: probed lists run as parallel
			// subtasks, and the oracle checks the merged answer is still
			// exact.
			res, _, err := ivfFull.SearchDetailed(context.Background(), q, nprobe)
			return res, err
		},
		exact: alwaysExact,
		floor: graphFloor,
	})

	// IVF probing a fixed couple of lists: deliberately lossy; the floor
	// only guards against total collapse, not graph-level recall.
	ivfProbe, err := tknn.NewIVF(tknn.IVFOptions{
		Dim: cfg.Dim, Metric: cfg.Metric, Seed: cfg.Seed + 5, RebuildEvery: 3 * cfg.LeafSize, Probes: 2,
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	systems = append(systems, &system{
		name:   "ivf-probe2",
		add:    ivfProbe.Add,
		search: ivfProbe.Search,
		exact:  func(tknn.Query) bool { return ivfProbe.Built() == 0 },
		floor:  func(Config) float64 { return 0.10 },
	})

	return systems, closeAll, nil
}

// planIsBruteForce reports whether every selected block of an MBI plan is
// answered by brute force — the condition under which MBI's result is
// exact.
func planIsBruteForce(p core.Plan) bool {
	for _, b := range p.Blocks {
		if !b.BruteForce {
			return false
		}
	}
	return true
}
