package blockcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// testGraph builds a tiny CSR whose resident size is deterministic:
// n+1 offsets + n adjacency entries, 4 bytes each.
func testGraph(n int) *graph.CSR {
	off := make([]int32, n+1)
	adj := make([]int32, n)
	for i := 0; i < n; i++ {
		off[i+1] = int32(i + 1)
		adj[i] = int32((i + 1) % n)
	}
	return &graph.CSR{Off: off, Adj: adj}
}

// loader returns a LoadFunc serving deterministic payloads of the given
// node count and counts invocations.
func loader(nodes int, calls *atomic.Int64) LoadFunc {
	return func(ctx context.Context, key uint64) (Value, error) {
		calls.Add(1)
		return Value{Graph: testGraph(nodes)}, nil
	}
}

func TestGetMissThenHit(t *testing.T) {
	var calls atomic.Int64
	c := New(1<<20, loader(8, &calls))
	ctx := context.Background()

	v, err := c.Get(ctx, 3)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if v.Graph == nil || v.Graph.NumNodes() != 8 {
		t.Fatalf("payload = %+v, want 8-node graph", v)
	}
	c.Unpin(3)

	if _, err := c.Get(ctx, 3); err != nil {
		t.Fatalf("Get (hit): %v", err)
	}
	c.Unpin(3)

	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1", got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
	if want := v.Bytes(); s.Bytes != want {
		t.Fatalf("resident bytes = %d, want %d", s.Bytes, want)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	var calls atomic.Int64
	one := Value{Graph: testGraph(8)}.Bytes()
	// Room for exactly two payloads.
	c := New(2*one, loader(8, &calls))
	ctx := context.Background()

	for _, k := range []uint64{1, 2} {
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		c.Unpin(k)
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, err := c.Get(ctx, 1); err != nil {
		t.Fatalf("Get(1): %v", err)
	}
	c.Unpin(1)

	if _, err := c.Get(ctx, 3); err != nil {
		t.Fatalf("Get(3): %v", err)
	}
	c.Unpin(3)

	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", s)
	}
	// 2 must be the evicted key: fetching it again is a fresh load.
	before := calls.Load()
	if _, err := c.Get(ctx, 2); err != nil {
		t.Fatalf("Get(2): %v", err)
	}
	c.Unpin(2)
	if calls.Load() != before+1 {
		t.Fatal("key 2 was still resident; LRU evicted the wrong entry")
	}
	// 1 survived the first eviction round but was evicted to admit 2's
	// reload; 3 must still be resident.
	before = calls.Load()
	if _, err := c.Get(ctx, 3); err != nil {
		t.Fatalf("Get(3) again: %v", err)
	}
	c.Unpin(3)
	if calls.Load() != before {
		t.Fatal("key 3 was evicted; LRU order violated")
	}
}

func TestPinnedEntriesAreNotEvicted(t *testing.T) {
	var calls atomic.Int64
	one := Value{Graph: testGraph(8)}.Bytes()
	c := New(one, loader(8, &calls)) // room for a single payload
	ctx := context.Background()

	if _, err := c.Get(ctx, 1); err != nil {
		t.Fatalf("Get(1): %v", err)
	}
	// 1 stays pinned while 2 is admitted: the budget overshoots rather
	// than evicting a pinned entry.
	if _, err := c.Get(ctx, 2); err != nil {
		t.Fatalf("Get(2): %v", err)
	}
	s := c.Stats()
	if s.Bytes <= one {
		t.Fatalf("resident bytes = %d, want overshoot past %d while both are pinned", s.Bytes, one)
	}
	c.Unpin(2)
	before := calls.Load()
	if _, err := c.Get(ctx, 1); err != nil {
		t.Fatalf("Get(1) while pinned: %v", err)
	}
	c.Unpin(1)
	if calls.Load() != before {
		t.Fatal("pinned key 1 was evicted")
	}
	// Releasing the last pin drains the overshoot.
	c.Unpin(1)
	if s := c.Stats(); s.Bytes > one {
		t.Fatalf("resident bytes = %d after final Unpin, want <= %d", s.Bytes, one)
	}
}

func TestSingleflightDedup(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	c := New(1<<20, func(ctx context.Context, key uint64) (Value, error) {
		calls.Add(1)
		<-release
		return Value{Graph: testGraph(8)}, nil
	})
	ctx := context.Background()

	const followers = 8
	var wg sync.WaitGroup
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Get(ctx, 7)
			c.Unpin(7)
		}(i)
	}
	// All goroutines are either the leader (blocked in the loader) or
	// followers (blocked on done); one release unblocks everyone.
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Get #%d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times for one key, want 1 (singleflight)", got)
	}
}

func TestLoadErrorIsNotCached(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("disk gone")
	c := New(1<<20, func(ctx context.Context, key uint64) (Value, error) {
		if calls.Add(1) == 1 {
			return Value{}, boom
		}
		return Value{Graph: testGraph(8)}, nil
	})
	ctx := context.Background()

	if _, err := c.Get(ctx, 1); !errors.Is(err, boom) {
		t.Fatalf("Get err = %v, want %v", err, boom)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("failed load left %d entries resident", s.Entries)
	}
	// The failure is not cached: the next Get retries and succeeds.
	if _, err := c.Get(ctx, 1); err != nil {
		t.Fatalf("Get retry: %v", err)
	}
	c.Unpin(1)
}

func TestGetHonorsContextCancel(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	c := New(1<<20, func(ctx context.Context, key uint64) (Value, error) {
		close(started)
		<-release
		return Value{Graph: testGraph(8)}, nil
	})
	defer close(release)

	go func() {
		_, _ = c.Get(context.Background(), 1) // leader, blocked in loader
		c.Unpin(1)
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("follower Get err = %v, want context.Canceled", err)
	}
}

func TestSetMaxBytesAndPurge(t *testing.T) {
	var calls atomic.Int64
	c := New(1<<20, loader(8, &calls))
	ctx := context.Background()
	for k := uint64(0); k < 4; k++ {
		if _, err := c.Get(ctx, k); err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		c.Unpin(k)
	}
	one := Value{Graph: testGraph(8)}.Bytes()
	c.SetMaxBytes(one)
	if s := c.Stats(); s.Bytes > one || s.Entries != 1 {
		t.Fatalf("after SetMaxBytes(%d): %+v, want one resident entry", one, s)
	}
	c.Purge()
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("after Purge: %+v, want empty", s)
	}
}

func TestValueBytesCountsCodes(t *testing.T) {
	g := testGraph(4)
	v := Value{Graph: g}
	if v.Bytes() != 4*int64(len(g.Off)+len(g.Adj)) {
		t.Fatalf("graph-only Bytes = %d", v.Bytes())
	}
}

func TestStringer(t *testing.T) {
	c := New(1, loader(2, new(atomic.Int64)))
	if got := c.String(); got == "" {
		t.Fatal("String() empty")
	}
	_ = fmt.Stringer(c)
}
