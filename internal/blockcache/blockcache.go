// Package blockcache provides a bytes-bounded LRU cache for spilled
// block payloads (graph + optional codes), keyed by block creation
// index.
//
// The cache is the RAM boundary of tiered storage: sealed blocks whose
// payload has been spilled to per-block segment files are paged back in
// through Get and held resident until evicted. Three properties matter
// to callers:
//
//   - Pinning. Get returns the payload pinned; the caller must Unpin
//     when its kernel is done. A pinned entry is never evicted, so a
//     graph is never freed out from under a running search. The byte
//     budget may be overshot while pins hold more than the budget; the
//     overshoot drains as pins are released.
//   - Singleflight. Concurrent Gets for the same key share one loader
//     call; followers block until the leader's load resolves and then
//     pin the shared payload. A failed load is not cached — the next
//     Get retries.
//   - Bounded bytes, not entries. Eviction walks from the LRU tail,
//     skipping pinned entries, until resident bytes fit the budget.
//
// The cache never takes locks outside its own mutex and the loader runs
// with no cache lock held, so callers may invoke Get while holding
// index locks without ordering hazards.
package blockcache

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sq"
)

// Value is one cached block payload. Codes is nil for blocks below the
// compression threshold.
type Value struct {
	Graph *graph.CSR
	Codes *sq.Codes
}

// Bytes reports the resident size the cache charges for the payload.
func (v Value) Bytes() int64 {
	var n int64
	if v.Graph != nil {
		n += 4 * int64(len(v.Graph.Off)+len(v.Graph.Adj))
	}
	if v.Codes != nil {
		n += int64(v.Codes.Bytes())
	}
	return n
}

// LoadFunc reads the payload for one spilled block. It is called with
// no cache lock held and may block on disk I/O; ctx carries the
// query's deadline.
type LoadFunc func(ctx context.Context, key uint64) (Value, error)

// Stats is a snapshot of the cache counters. Hits/Misses/Evictions are
// cumulative; Bytes/Entries describe the current resident set.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Bytes     int64
	Entries   int
}

// entry is one cache slot. While a load is in flight, done is non-nil
// and val/err are invalid until done is closed. Resident entries sit on
// the LRU list (front = most recent).
type entry struct {
	key   uint64
	val   Value
	err   error
	bytes int64
	pins  int
	done  chan struct{}

	prev, next *entry
}

// Cache is a bytes-bounded LRU of spilled block payloads. The zero
// value is not usable; construct with New.
type Cache struct {
	load LoadFunc

	mu sync.Mutex
	//tknn:guardedBy(mu)
	maxBytes int64
	//tknn:guardedBy(mu)
	entries map[uint64]*entry
	// head/tail delimit the LRU list of resident entries; head is the
	// most recently used.
	//tknn:guardedBy(mu)
	head *entry
	//tknn:guardedBy(mu)
	tail *entry
	//tknn:guardedBy(mu)
	bytes int64
	//tknn:guardedBy(mu)
	hits uint64
	//tknn:guardedBy(mu)
	misses uint64
	//tknn:guardedBy(mu)
	evictions uint64
}

// New builds a cache bounded to maxBytes of resident payload bytes.
// maxBytes <= 0 means unbounded. load resolves misses.
func New(maxBytes int64, load LoadFunc) *Cache {
	return &Cache{
		load:     load,
		maxBytes: maxBytes,
		entries:  make(map[uint64]*entry),
	}
}

// Get returns the payload for key, loading it on a miss, and pins it.
// The caller must Unpin(key) exactly once when done with the payload.
// On error nothing is pinned and the miss is not cached.
func (c *Cache) Get(ctx context.Context, key uint64) (Value, error) {
	v, e, done, leader, hit := c.claim(key)
	if hit {
		return v, nil
	}
	if !leader {
		// Load in flight: wait for the leader, then pin its result.
		select {
		case <-done:
		case <-ctx.Done():
			return Value{}, ctx.Err()
		}
		return c.adopt(key, e)
	}
	val, err := c.doLoad(ctx, key)
	return c.install(e, val, err)
}

// claim resolves key against the current cache state: a resident entry
// is pinned and returned (hit), an in-flight load is joined (the
// follower gets the leader's done channel, captured under the lock
// because the leader nils e.done on install), and a missing key
// registers the caller as the load leader. Followers and leaders both
// count as misses — each waits on the disk read.
func (c *Cache) claim(key uint64) (v Value, e *entry, done chan struct{}, leader, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.entries[key]; e != nil {
		if e.done == nil {
			e.pins++
			c.hits++
			c.moveFrontLocked(e)
			return e.val, e, nil, false, true
		}
		c.misses++
		return Value{}, e, e.done, false, false
	}
	e = &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	return Value{}, e, e.done, true, false
}

// adopt pins the leader's resolved entry for a follower that finished
// waiting. If the entry was evicted between the leader finishing and
// the follower waking, the payload is still valid (payloads are
// immutable) and the caller's Unpin will be a no-op.
func (c *Cache) adopt(key uint64, e *entry) (Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.err != nil {
		return Value{}, e.err
	}
	if cur, ok := c.entries[key]; ok && cur == e {
		e.pins++
		c.moveFrontLocked(e)
	}
	return e.val, nil
}

// install publishes the leader's load result: on success the entry goes
// resident and pinned at the MRU end; on failure it is forgotten so the
// next Get retries. Either way the done channel is closed to release
// the followers.
func (c *Cache) install(e *entry, val Value, err error) (Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := e.done
	if err != nil {
		e.err = err
		delete(c.entries, e.key)
		close(done)
		return Value{}, err
	}
	e.val = val
	e.bytes = val.Bytes()
	e.pins = 1
	e.done = nil
	c.bytes += e.bytes
	c.pushFrontLocked(e)
	c.evictLocked()
	close(done)
	return val, nil
}

// doLoad invokes the loader with no lock held. The blockcache.load
// fault point injects loader errors and latency for resilience tests.
func (c *Cache) doLoad(ctx context.Context, key uint64) (Value, error) {
	if fault.Enabled {
		if err := fault.Hit("blockcache.load"); err != nil {
			return Value{}, err
		}
	}
	return c.load(ctx, key)
}

// Unpin releases one pin taken by Get. Unpinning a key that is not
// resident or not pinned is a no-op.
func (c *Cache) Unpin(key uint64) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.done == nil && e.pins > 0 {
		e.pins--
		if e.pins == 0 && c.bytes > c.maxBytes {
			c.evictLocked()
		}
	}
	c.mu.Unlock()
}

// SetMaxBytes rebounds the cache, evicting immediately if the resident
// set no longer fits. Used by the tier benchmark to sweep budgets.
func (c *Cache) SetMaxBytes(n int64) {
	c.mu.Lock()
	c.maxBytes = n
	c.evictLocked()
	c.mu.Unlock()
}

// Purge evicts every unpinned resident entry, regardless of budget.
func (c *Cache) Purge() {
	c.mu.Lock()
	for e := c.tail; e != nil; {
		prev := e.prev
		if e.pins == 0 {
			c.removeLocked(e)
			c.evictions++
		}
		e = prev
	}
	c.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   len(c.entries),
	}
	c.mu.Unlock()
	return s
}

// evictLocked drops LRU-tail entries until resident bytes fit the
// budget. Pinned and in-flight entries are skipped, so the budget may
// be overshot while pins hold it open.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for e := c.tail; e != nil && c.bytes > c.maxBytes; {
		prev := e.prev
		if e.pins == 0 {
			c.removeLocked(e)
			c.evictions++
		}
		e = prev
	}
}

// removeLocked unlinks a resident entry and forgets it.
func (c *Cache) removeLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.bytes -= e.bytes
	delete(c.entries, e.key)
}

// pushFrontLocked links a newly resident entry at the MRU end.
func (c *Cache) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// moveFrontLocked refreshes recency for a resident entry.
func (c *Cache) moveFrontLocked(e *entry) {
	if c.head == e {
		return
	}
	// Unlink without touching bytes or the map.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
}

// String implements fmt.Stringer for debug logging.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("blockcache{entries=%d bytes=%d hits=%d misses=%d evictions=%d}",
		s.Entries, s.Bytes, s.Hits, s.Misses, s.Evictions)
}
