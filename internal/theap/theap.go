// Package theap implements the two priority queues every search path in
// this repository needs:
//
//   - TopK, a bounded max-heap that retains the k nearest (id, distance)
//     pairs seen so far. It backs the brute-force scan of BSBF
//     (Algorithm 1), the result set R of the graph search (Algorithm 2),
//     and the cross-block merge of MBI queries (Algorithm 4 line 9).
//   - MinQueue, an unbounded min-heap used as the candidate frontier C of
//     the graph search.
//
// Both are hand-specialized for Neighbor values instead of going through
// container/heap: the interface indirection costs ~2x on these hot paths.
package theap

import "repro/internal/invariant"

// Neighbor is one candidate search result: a vector id and its distance to
// the query. IDs are local to whatever view the search runs over; callers
// translate to global ids when merging across blocks.
type Neighbor struct {
	ID   int32
	Dist float32
}

// Less orders neighbors by distance, breaking ties by id so that results
// are deterministic across runs and implementations.
func Less(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// TopK keeps the k smallest-distance neighbors pushed into it.
// The zero value is unusable; construct with NewTopK.
type TopK struct {
	k    int
	heap []Neighbor // max-heap on (Dist, ID): heap[0] is the current worst
}

// NewTopK returns a collector for the k nearest neighbors.
// It panics if k <= 0.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("theap: TopK needs k > 0")
	}
	return &TopK{k: k, heap: make([]Neighbor, 0, k)}
}

// K returns the capacity of the collector.
func (t *TopK) K() int { return t.k }

// Len returns how many neighbors are currently retained (≤ k).
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k neighbors have been retained.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// Worst returns the largest retained distance. It must only be called when
// Len() > 0.
func (t *TopK) Worst() float32 { return t.heap[0].Dist }

// WorstNeighbor returns the retained neighbor with the largest distance.
// It must only be called when Len() > 0.
func (t *TopK) WorstNeighbor() Neighbor { return t.heap[0] }

// Push offers a neighbor. It returns true if the neighbor was retained
// (i.e. the collector was not full, or n beats the current worst).
// NaN distances are rejected outright: NaN does not participate in any
// strict weak ordering, so admitting one would silently corrupt the heap.
func (t *TopK) Push(n Neighbor) bool {
	if n.Dist != n.Dist {
		return false
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, n)
		t.siftUp(len(t.heap) - 1)
		if invariant.Enabled {
			invariant.NoError(t.Validate(), "theap: TopK after growing Push")
		}
		return true
	}
	if !Less(n, t.heap[0]) {
		return false
	}
	t.heap[0] = n
	t.siftDown(0)
	if invariant.Enabled {
		invariant.NoError(t.Validate(), "theap: TopK after replacing Push")
	}
	return true
}

// Reset empties the collector, retaining its backing storage.
func (t *TopK) Reset() { t.heap = t.heap[:0] }

// ResetK re-initializes the collector for a k-result query, retaining the
// backing array across calls — the reuse primitive of the allocation-free
// query path: a zero TopK becomes usable on first ResetK and never
// allocates again for any k up to the largest seen. It panics if k <= 0,
// matching NewTopK.
func (t *TopK) ResetK(k int) {
	if k <= 0 {
		panic("theap: TopK needs k > 0")
	}
	t.k = k
	if cap(t.heap) < k {
		//lint:ignore hotpath-alloc cold-start growth; the backing array is retained for every later query
		t.heap = make([]Neighbor, 0, k)
		return
	}
	t.heap = t.heap[:0]
}

// Items returns the retained neighbors sorted by ascending distance.
// The collector is consumed: it is empty afterwards.
func (t *TopK) Items() []Neighbor {
	out := t.heap
	// Repeatedly swap the max to the end and shrink: heap-sort descending
	// by max-heap yields ascending order in place.
	for n := len(out) - 1; n > 0; n-- {
		out[0], out[n] = out[n], out[0]
		t.heap = out[:n]
		t.siftDown(0)
	}
	t.heap = out[:0]
	return out
}

// Snapshot returns a copy of the retained neighbors sorted by ascending
// distance, leaving the collector intact.
func (t *TopK) Snapshot() []Neighbor {
	cp := make([]Neighbor, len(t.heap))
	copy(cp, t.heap)
	sortNeighbors(cp)
	return cp
}

func (t *TopK) siftUp(i int) {
	h := t.heap
	for i > 0 {
		p := (i - 1) / 2
		if !Less(h[p], h[i]) { // parent >= child: heap property holds
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (t *TopK) siftDown(i int) {
	h := t.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && Less(h[l], h[r]) {
			big = r
		}
		if !Less(h[i], h[big]) {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// MinQueue is a min-heap of neighbors ordered by ascending distance.
// The zero value is ready to use.
type MinQueue struct {
	heap []Neighbor
}

// Len returns the number of queued neighbors.
func (q *MinQueue) Len() int { return len(q.heap) }

// Push enqueues n. NaN distances are dropped for the same reason TopK
// rejects them: they have no place in the ordering.
func (q *MinQueue) Push(n Neighbor) {
	if n.Dist != n.Dist {
		return
	}
	q.heap = append(q.heap, n)
	h := q.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !Less(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	if invariant.Enabled {
		invariant.NoError(q.Validate(), "theap: MinQueue after Push")
	}
}

// Pop removes and returns the nearest queued neighbor.
// It must only be called when Len() > 0.
func (q *MinQueue) Pop() Neighbor {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.heap = h[:n]
	q.siftDown(0)
	if invariant.Enabled {
		invariant.NoError(q.Validate(), "theap: MinQueue after Pop")
	}
	return top
}

// Min returns the nearest queued neighbor without removing it.
// It must only be called when Len() > 0.
func (q *MinQueue) Min() Neighbor { return q.heap[0] }

// Reset empties the queue, retaining its backing storage.
func (q *MinQueue) Reset() { q.heap = q.heap[:0] }

// TrimTo retains only the m nearest queued neighbors, discarding the rest.
// This implements line 17 of Algorithm 2 ("update C to retain M_C nearest").
func (q *MinQueue) TrimTo(m int) {
	if len(q.heap) <= m {
		return
	}
	sortNeighbors(q.heap)
	q.heap = q.heap[:m]
	// A sorted prefix is already a valid min-heap.
}

func (q *MinQueue) siftDown(i int) {
	h := q.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && Less(h[r], h[l]) {
			small = r
		}
		if !Less(h[small], h[i]) {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// sortNeighbors sorts by ascending (Dist, ID) with insertion sort for short
// slices and a simple quicksort otherwise. The slices here are small
// (bounded by M_C or k), so this beats the reflection cost of sort.Slice.
func sortNeighbors(a []Neighbor) {
	if len(a) < 24 {
		insertionSort(a)
		return
	}
	quickSort(a, 0)
}

func insertionSort(a []Neighbor) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && Less(x, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

func quickSort(a []Neighbor, depth int) {
	for len(a) >= 24 {
		if depth > 40 {
			heapSortAll(a)
			return
		}
		depth++
		p := partition(a)
		if p < len(a)-p {
			quickSort(a[:p], depth)
			a = a[p+1:]
		} else {
			quickSort(a[p+1:], depth)
			a = a[:p]
		}
	}
	insertionSort(a)
}

func partition(a []Neighbor) int {
	// Median-of-three pivot to avoid quadratic behavior on sorted input.
	m := len(a) / 2
	hi := len(a) - 1
	if Less(a[m], a[0]) {
		a[m], a[0] = a[0], a[m]
	}
	if Less(a[hi], a[0]) {
		a[hi], a[0] = a[0], a[hi]
	}
	if Less(a[hi], a[m]) {
		a[hi], a[m] = a[m], a[hi]
	}
	a[m], a[hi-1] = a[hi-1], a[m]
	pivot := a[hi-1]
	i := 0
	for j := 0; j < hi-1; j++ {
		if Less(a[j], pivot) {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

func heapSortAll(a []Neighbor) {
	// Build a max-heap then repeatedly extract; fallback for pathological
	// quicksort inputs.
	for i := len(a)/2 - 1; i >= 0; i-- {
		siftDownRange(a, i, len(a))
	}
	for n := len(a) - 1; n > 0; n-- {
		a[0], a[n] = a[n], a[0]
		siftDownRange(a, 0, n)
	}
}

func siftDownRange(a []Neighbor, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && Less(a[l], a[r]) {
			big = r
		}
		if !Less(a[i], a[big]) {
			return
		}
		a[i], a[big] = a[big], a[i]
		i = big
	}
}

// Merge combines several ascending-sorted neighbor lists into the k nearest
// overall, deduplicating by ID. It is the final combine step of an MBI
// query (each block contributes a sorted list over global ids). Each call
// allocates a fresh heap and dedup set; steady-state paths use a Merger.
func Merge(k int, lists ...[]Neighbor) []Neighbor {
	var m Merger
	out := m.Merge(k, lists...)
	if out == nil {
		return nil
	}
	cp := make([]Neighbor, len(out))
	copy(cp, out)
	return cp
}

// Merger is the scratch-backed form of Merge: the result heap and the
// dedup set persist across calls, so a steady-state query performs no
// allocation in the final combine. The returned slice aliases the Merger's
// storage and is valid only until the next Merge call. A Merger is not safe
// for concurrent use; its zero value is ready.
type Merger struct {
	top  TopK
	seen map[int32]struct{}
}

// Merge combines several ascending-sorted neighbor lists into the k nearest
// overall, deduplicating by ID, exactly like the package-level Merge but
// into reused storage.
func (m *Merger) Merge(k int, lists ...[]Neighbor) []Neighbor {
	m.top.ResetK(k)
	if m.seen == nil {
		//lint:ignore hotpath-alloc cold-start; the dedup set is retained across queries
		m.seen = make(map[int32]struct{}, k)
	}
	clear(m.seen)
	for _, l := range lists {
		for _, n := range l {
			if _, dup := m.seen[n.ID]; dup {
				continue
			}
			m.seen[n.ID] = struct{}{}
			m.top.Push(n)
		}
	}
	if m.top.Len() == 0 {
		return nil
	}
	return m.top.Items()
}
