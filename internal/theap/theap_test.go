package theap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randNeighbors(rng *rand.Rand, n int) []Neighbor {
	out := make([]Neighbor, n)
	for i := range out {
		out[i] = Neighbor{ID: int32(rng.Intn(n * 2)), Dist: float32(rng.NormFloat64())}
	}
	return out
}

// reference computes the expected k nearest by full sort.
func reference(items []Neighbor, k int) []Neighbor {
	cp := make([]Neighbor, len(items))
	copy(cp, items)
	sort.Slice(cp, func(i, j int) bool { return Less(cp[i], cp[j]) })
	if len(cp) > k {
		cp = cp[:k]
	}
	return cp
}

func TestTopKAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		k := 1 + rng.Intn(20)
		items := randNeighbors(rng, n+1)[:n]
		top := NewTopK(k)
		for _, it := range items {
			top.Push(it)
		}
		got := top.Items()
		want := reference(items, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: item %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTopKProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw)%20 + 1
		items := randNeighbors(rng, rng.Intn(100)+1)
		top := NewTopK(k)
		for _, it := range items {
			top.Push(it)
		}
		got := top.Items()
		want := reference(items, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopKSnapshotKeepsContents(t *testing.T) {
	top := NewTopK(3)
	for _, d := range []float32{5, 1, 3, 2, 4} {
		top.Push(Neighbor{ID: int32(d), Dist: d})
	}
	snap := top.Snapshot()
	if len(snap) != 3 || snap[0].Dist != 1 || snap[2].Dist != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	if top.Len() != 3 {
		t.Errorf("snapshot consumed the heap: len %d", top.Len())
	}
	// Items after Snapshot still works and returns the same contents.
	items := top.Items()
	if len(items) != 3 || items[0].Dist != 1 {
		t.Fatalf("items = %v", items)
	}
	if top.Len() != 0 {
		t.Errorf("Items should consume: len %d", top.Len())
	}
}

func TestTopKWorstAndFull(t *testing.T) {
	top := NewTopK(2)
	if top.Full() {
		t.Error("empty TopK reports full")
	}
	top.Push(Neighbor{ID: 1, Dist: 10})
	top.Push(Neighbor{ID: 2, Dist: 5})
	if !top.Full() {
		t.Error("TopK with k items should be full")
	}
	if top.Worst() != 10 {
		t.Errorf("Worst = %g, want 10", top.Worst())
	}
	if w := top.WorstNeighbor(); w.ID != 1 {
		t.Errorf("WorstNeighbor = %v", w)
	}
	// Pushing something worse is rejected.
	if top.Push(Neighbor{ID: 3, Dist: 20}) {
		t.Error("push of worse neighbor should be rejected")
	}
	// Pushing something better evicts the worst.
	if !top.Push(Neighbor{ID: 4, Dist: 1}) {
		t.Error("push of better neighbor should be accepted")
	}
	if top.Worst() != 5 {
		t.Errorf("after eviction Worst = %g, want 5", top.Worst())
	}
}

func TestTopKTieBreaksByID(t *testing.T) {
	top := NewTopK(2)
	top.Push(Neighbor{ID: 9, Dist: 1})
	top.Push(Neighbor{ID: 3, Dist: 1})
	top.Push(Neighbor{ID: 6, Dist: 1})
	items := top.Items()
	if items[0].ID != 3 || items[1].ID != 6 {
		t.Errorf("tie-break order = %v, want IDs 3, 6", items)
	}
}

func TestTopKReset(t *testing.T) {
	top := NewTopK(4)
	top.Push(Neighbor{ID: 1, Dist: 1})
	top.Reset()
	if top.Len() != 0 {
		t.Errorf("after reset len = %d", top.Len())
	}
	top.Push(Neighbor{ID: 2, Dist: 2})
	if got := top.Items(); len(got) != 1 || got[0].ID != 2 {
		t.Errorf("after reuse items = %v", got)
	}
}

func TestNewTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopK(0) should panic")
		}
	}()
	NewTopK(0)
}

func TestMinQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		items := randNeighbors(rng, rng.Intn(150)+1)
		var q MinQueue
		for _, it := range items {
			q.Push(it)
		}
		if q.Len() != len(items) {
			t.Fatalf("len %d, want %d", q.Len(), len(items))
		}
		prev := Neighbor{Dist: -1e30}
		for q.Len() > 0 {
			if m := q.Min(); m != q.Pop() {
				t.Fatal("Min disagrees with Pop")
			} else {
				if Less(m, prev) {
					t.Fatalf("pop order violated: %v after %v", m, prev)
				}
				prev = m
			}
		}
	}
}

func TestMinQueueTrimTo(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		items := randNeighbors(rng, rng.Intn(100)+10)
		m := 1 + rng.Intn(len(items))
		var q MinQueue
		for _, it := range items {
			q.Push(it)
		}
		q.TrimTo(m)
		if q.Len() != m {
			t.Fatalf("after TrimTo(%d) len = %d", m, q.Len())
		}
		want := reference(items, m)
		for i := 0; q.Len() > 0; i++ {
			got := q.Pop()
			if got != want[i] {
				t.Fatalf("trim kept %v at %d, want %v", got, i, want[i])
			}
		}
	}
}

func TestMinQueueTrimToNoop(t *testing.T) {
	var q MinQueue
	q.Push(Neighbor{ID: 1, Dist: 1})
	q.TrimTo(5)
	if q.Len() != 1 {
		t.Errorf("TrimTo larger than len should be a no-op, len = %d", q.Len())
	}
}

func TestMergeDedupsAndRanks(t *testing.T) {
	a := []Neighbor{{ID: 1, Dist: 1}, {ID: 2, Dist: 3}}
	b := []Neighbor{{ID: 1, Dist: 1}, {ID: 3, Dist: 2}}
	got := Merge(2, a, b)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("Merge = %v, want IDs 1, 3", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(3); len(got) != 0 {
		t.Errorf("Merge() = %v, want empty", got)
	}
	if got := Merge(3, nil, nil); len(got) != 0 {
		t.Errorf("Merge(nil, nil) = %v, want empty", got)
	}
}

func TestSortNeighborsLargeInputs(t *testing.T) {
	// Exercise the quicksort path (len >= 24) including duplicate-heavy
	// and pre-sorted inputs that would break a naive pivot choice.
	rng := rand.New(rand.NewSource(9))
	shapes := []func(n int) []Neighbor{
		func(n int) []Neighbor { return randNeighbors(rng, n) },
		func(n int) []Neighbor { // all equal distances
			out := make([]Neighbor, n)
			for i := range out {
				out[i] = Neighbor{ID: int32(n - i), Dist: 1}
			}
			return out
		},
		func(n int) []Neighbor { // already ascending
			out := make([]Neighbor, n)
			for i := range out {
				out[i] = Neighbor{ID: int32(i), Dist: float32(i)}
			}
			return out
		},
		func(n int) []Neighbor { // descending
			out := make([]Neighbor, n)
			for i := range out {
				out[i] = Neighbor{ID: int32(i), Dist: float32(n - i)}
			}
			return out
		},
	}
	for si, shape := range shapes {
		for _, n := range []int{24, 100, 1000} {
			items := shape(n)
			cp := make([]Neighbor, n)
			copy(cp, items)
			sortNeighbors(cp)
			want := reference(items, n)
			for i := range cp {
				if cp[i] != want[i] {
					t.Fatalf("shape %d n %d: index %d = %v, want %v", si, n, i, cp[i], want[i])
				}
			}
		}
	}
}
