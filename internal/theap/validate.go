package theap

import "fmt"

// Validate checks the two structural invariants of a TopK collector: the
// retained count never exceeds k, and the backing array satisfies the
// max-heap ordering on (Dist, ID). It returns an error rather than
// panicking so tests can use it unconditionally; hot paths wrap it in an
// invariant.Enabled guard.
func (t *TopK) Validate() error {
	if t.k <= 0 {
		return fmt.Errorf("theap: TopK has k=%d, want > 0", t.k)
	}
	if len(t.heap) > t.k {
		return fmt.Errorf("theap: TopK holds %d neighbors, bound is k=%d", len(t.heap), t.k)
	}
	for i, n := range t.heap {
		if n.Dist != n.Dist {
			return fmt.Errorf("theap: TopK slot %d holds NaN distance (id %d)", i, n.ID)
		}
	}
	for i := 1; i < len(t.heap); i++ {
		p := (i - 1) / 2
		if Less(t.heap[p], t.heap[i]) {
			return fmt.Errorf("theap: TopK max-heap violated: parent %d (id %d, dist %v) < child %d (id %d, dist %v)",
				p, t.heap[p].ID, t.heap[p].Dist, i, t.heap[i].ID, t.heap[i].Dist)
		}
	}
	return nil
}

// Validate checks the min-heap ordering of the frontier queue.
func (q *MinQueue) Validate() error {
	for i, n := range q.heap {
		if n.Dist != n.Dist {
			return fmt.Errorf("theap: MinQueue slot %d holds NaN distance (id %d)", i, n.ID)
		}
	}
	for i := 1; i < len(q.heap); i++ {
		p := (i - 1) / 2
		if Less(q.heap[i], q.heap[p]) {
			return fmt.Errorf("theap: MinQueue min-heap violated: child %d (id %d, dist %v) < parent %d (id %d, dist %v)",
				i, q.heap[i].ID, q.heap[i].Dist, p, q.heap[p].ID, q.heap[p].Dist)
		}
	}
	return nil
}
