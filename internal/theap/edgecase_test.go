package theap

import (
	"math"
	"testing"
)

// TestTopKZeroKPanics: a collector that can hold nothing is a programming
// error, not an empty result.
func TestTopKZeroKPanics(t *testing.T) {
	for _, k := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTopK(%d) did not panic", k)
				}
			}()
			NewTopK(k)
		}()
	}
}

// TestTopKSingleSlot: k=1 degenerates to a running minimum; every retained
// push must evict the previous holder, and ties must lose to the smaller
// id already held.
func TestTopKSingleSlot(t *testing.T) {
	top := NewTopK(1)
	if !top.Push(Neighbor{ID: 5, Dist: 3}) {
		t.Fatal("first push into an empty collector was rejected")
	}
	if top.Push(Neighbor{ID: 6, Dist: 4}) {
		t.Error("farther neighbor was retained over the current minimum")
	}
	if !top.Push(Neighbor{ID: 7, Dist: 2}) {
		t.Error("nearer neighbor was rejected")
	}
	if top.Push(Neighbor{ID: 9, Dist: 2}) {
		t.Error("equal distance with larger id displaced the holder")
	}
	got := top.Items()
	if len(got) != 1 || got[0].ID != 7 || got[0].Dist != 2 {
		t.Fatalf("k=1 collector holds %v, want [(7, 2)]", got)
	}
}

// TestTopKDuplicateDistances: with every distance equal, the collector
// must fall back to the id tie-break and retain exactly the k smallest
// ids in ascending order.
func TestTopKDuplicateDistances(t *testing.T) {
	top := NewTopK(3)
	for _, id := range []int32{9, 4, 7, 1, 8, 3} {
		top.Push(Neighbor{ID: id, Dist: 1.5})
	}
	got := top.Items()
	want := []int32{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("retained %d neighbors, want %d", len(got), len(want))
	}
	for i, n := range got {
		if n.ID != want[i] || n.Dist != 1.5 {
			t.Fatalf("Items() = %v, want ids %v at distance 1.5", got, want)
		}
	}
}

// TestTopKRejectsNaN: NaN has no place in a strict weak ordering, so Push
// must refuse it in every collector state — empty, partially full, and
// full — without disturbing the retained set.
func TestTopKRejectsNaN(t *testing.T) {
	nan := float32(math.NaN())
	top := NewTopK(2)
	if top.Push(Neighbor{ID: 1, Dist: nan}) {
		t.Error("empty collector retained a NaN distance")
	}
	top.Push(Neighbor{ID: 2, Dist: 1})
	if top.Push(Neighbor{ID: 3, Dist: nan}) {
		t.Error("partially full collector retained a NaN distance")
	}
	top.Push(Neighbor{ID: 4, Dist: 2})
	if top.Push(Neighbor{ID: 5, Dist: nan}) {
		t.Error("full collector retained a NaN distance")
	}
	got := top.Items()
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 4 {
		t.Fatalf("NaN pushes disturbed the retained set: %v", got)
	}
}

// TestMinQueueRejectsNaN: the frontier drops NaN on Push, so Pop order
// over the rest is unaffected.
func TestMinQueueRejectsNaN(t *testing.T) {
	var q MinQueue
	q.Push(Neighbor{ID: 1, Dist: 2})
	q.Push(Neighbor{ID: 2, Dist: float32(math.NaN())})
	q.Push(Neighbor{ID: 3, Dist: 1})
	if q.Len() != 2 {
		t.Fatalf("queue holds %d neighbors after a NaN push, want 2", q.Len())
	}
	if first := q.Pop(); first.ID != 3 {
		t.Errorf("Pop() = %v, want id 3", first)
	}
	if second := q.Pop(); second.ID != 1 {
		t.Errorf("Pop() = %v, want id 1", second)
	}
}
