package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestLimiterFastPathQueueAndShed(t *testing.T) {
	l := newLimiter(Limits{MaxInflight: 2, MaxQueue: 1, MaxWait: 50 * time.Millisecond})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		waited, err := l.acquire(ctx)
		if err != nil || waited {
			t.Fatalf("acquire %d: waited=%v err=%v", i, waited, err)
		}
	}
	if got := l.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	// Slots are full: a queued request gets the slot a release frees, and
	// reports that it waited.
	done := make(chan error, 1)
	var waited bool
	go func() {
		var err error
		waited, err = l.acquire(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if !waited {
		t.Error("queued acquire did not report waited")
	}

	// Queue full beyond MaxQueue: immediate shed.
	blocker := make(chan error, 1)
	go func() { _, err := l.acquire(ctx); blocker <- err }()
	time.Sleep(5 * time.Millisecond) // let the waiter enqueue
	if _, err := l.acquire(ctx); !errors.Is(err, errOverloaded) {
		t.Fatalf("over-queue acquire err = %v, want errOverloaded", err)
	}
	l.release()
	if err := <-blocker; err != nil {
		t.Fatalf("blocked acquire: %v", err)
	}
	l.release()
	l.release()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}
}

func TestLimiterWaitTimeout(t *testing.T) {
	l := newLimiter(Limits{MaxInflight: 1, MaxQueue: 4, MaxWait: 20 * time.Millisecond})
	if _, err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := l.acquire(context.Background())
	if !errors.Is(err, errOverloaded) {
		t.Fatalf("err = %v, want errOverloaded", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("shed after %v, want >= MaxWait", d)
	}
}

func TestLimiterContextCancel(t *testing.T) {
	l := newLimiter(Limits{MaxInflight: 1, MaxQueue: 4, MaxWait: time.Minute})
	if _, err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if _, err := l.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSearchShed429(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetLimits(Limits{MaxInflight: 1, MaxQueue: 1, MaxWait: 5 * time.Millisecond})

	// Occupy the only slot so the HTTP request must queue, time out, and
	// be shed with 429 + Retry-After.
	if _, err := s.searchLim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/search", SearchRequest{Vector: []float32{1, 0, 0, 0}, K: 1, End: 10})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := s.metrics.shedSearches.Load(); got != 1 {
		t.Errorf("shedSearches = %d, want 1", got)
	}

	// Slot freed: the same request is admitted again.
	s.searchLim.release()
	resp, body = postJSON(t, ts.URL+"/search", SearchRequest{Vector: []float32{1, 0, 0, 0}, K: 1, End: 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d (%s), want 200", resp.StatusCode, body)
	}
}

func TestInsertShed429(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetLimits(Limits{MaxInflight: 1, MaxQueue: 1, MaxWait: 5 * time.Millisecond})
	if _, err := s.insertLim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	tm := int64(0)
	resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{1, 0, 0, 0}, Time: &tm})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if got := s.metrics.shedInserts.Load(); got != 1 {
		t.Errorf("shedInserts = %d, want 1", got)
	}
	s.insertLim.release()
}

func TestDegradedSearchAfterQueue(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetLimits(Limits{MaxInflight: 1, MaxQueue: 2, MaxWait: time.Second})
	tm := int64(0)
	if resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{1, 0, 0, 0}, Time: &tm}); resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d %s", resp.StatusCode, body)
	}

	// Hold the slot briefly so the query queues, then runs degraded.
	if _, err := s.searchLim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.searchLim.release()
	}()
	resp, body := postJSON(t, ts.URL+"/search", SearchRequest{Vector: []float32{1, 0, 0, 0}, K: 1, End: 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Tknn-Degraded") != "1" {
		t.Error("queued search missing X-Tknn-Degraded marker")
	}
	if got := s.metrics.degraded.Load(); got != 1 {
		t.Errorf("degraded = %d, want 1", got)
	}
}

func TestDegradedTimeoutShrinks(t *testing.T) {
	s := &Server{}
	s.SetSearchTimeout(400 * time.Millisecond)
	if got := s.degradedTimeout(); got != 100*time.Millisecond {
		t.Errorf("degraded timeout = %v, want 100ms", got)
	}
	s.SetSearchTimeout(1 * time.Millisecond)
	if got := s.degradedTimeout(); got != minDegradedTimeout {
		t.Errorf("degraded timeout = %v, want floor %v", got, minDegradedTimeout)
	}
	s.SetSearchTimeout(0)
	if got := s.degradedTimeout(); got != defaultDegradedTimeout {
		t.Errorf("degraded timeout = %v, want default %v", got, defaultDegradedTimeout)
	}
}

func TestReadyzFlips(t *testing.T) {
	s, ts := newTestServer(t)
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", got)
	}
	s.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after SetReady(false) = %d, want 503", got)
	}
	// Liveness is unaffected by readiness.
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	s.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz restored = %d, want 200", got)
	}
}

func TestMetricsExposeAdmission(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetLimits(Limits{MaxInflight: 2})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		`tknn_inflight{op="search"} 0`,
		`tknn_inflight{op="insert"} 0`,
		`tknn_shed_total{op="search"} 0`,
		`tknn_shed_total{op="insert"} 0`,
		"tknn_degraded_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
