package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Admission control: every /search and /vectors request must claim one of
// a bounded number of in-flight slots before any work happens. A request
// that finds all slots busy may queue briefly — bounded both in headcount
// and in wall-clock — and is otherwise shed with 429 + Retry-After, which
// keeps an overloaded daemon answering quickly instead of accumulating
// goroutines until latency collapses. Queuing is also the degrade signal:
// a search that had to wait runs under a shrunken deadline so the partial
// -results machinery sheds work instead of time.

// errOverloaded marks a request shed by admission control; the handler
// maps it to 429 Too Many Requests.
var errOverloaded = errors.New("overloaded: in-flight limit and wait queue full")

// Limits configures admission control for one request class.
type Limits struct {
	// MaxInflight is the number of requests of this class allowed to
	// execute concurrently. <= 0 disables admission control entirely.
	MaxInflight int
	// MaxQueue bounds how many requests may wait for a slot beyond
	// MaxInflight before new arrivals are shed. Defaults to MaxInflight.
	MaxQueue int
	// MaxWait bounds how long a queued request waits for a slot before it
	// is shed. Defaults to 100ms — long enough to ride out a burst one
	// queue-depth deep, short enough that shed responses stay snappy.
	MaxWait time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxQueue <= 0 {
		l.MaxQueue = l.MaxInflight
	}
	if l.MaxWait <= 0 {
		l.MaxWait = 100 * time.Millisecond
	}
	return l
}

// limiter is a channel semaphore with a bounded, deadline-aware wait
// queue. The zero-cost fast path is one non-blocking channel send.
type limiter struct {
	slots    chan struct{}
	waiters  atomic.Int64
	inflight atomic.Int64
	maxQueue int64
	maxWait  time.Duration
}

func newLimiter(l Limits) *limiter {
	if l.MaxInflight <= 0 {
		return nil
	}
	l = l.withDefaults()
	return &limiter{
		slots:    make(chan struct{}, l.MaxInflight),
		maxQueue: int64(l.MaxQueue),
		maxWait:  l.MaxWait,
	}
}

// acquire claims a slot, queuing up to maxWait when none is free. waited
// reports that the request had to queue — the caller's degrade signal.
// The error is errOverloaded when the queue is full or the wait timed
// out, or ctx.Err() when the client gave up first.
func (l *limiter) acquire(ctx context.Context) (waited bool, err error) {
	select {
	case l.slots <- struct{}{}:
		l.inflight.Add(1)
		return false, nil
	default:
	}
	if l.waiters.Add(1) > l.maxQueue {
		l.waiters.Add(-1)
		return false, errOverloaded
	}
	defer l.waiters.Add(-1)
	t := time.NewTimer(l.maxWait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		l.inflight.Add(1)
		return true, nil
	case <-t.C:
		return false, errOverloaded
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (l *limiter) release() {
	l.inflight.Add(-1)
	<-l.slots
}

// Inflight reports requests currently holding a slot.
func (l *limiter) Inflight() int64 {
	if l == nil {
		return 0
	}
	return l.inflight.Load()
}

// SetLimits installs admission control on the /search and /vectors
// handlers; each class gets its own slot pool sized by l. Call before
// serving. A zero MaxInflight leaves the server unlimited (the default).
func (s *Server) SetLimits(l Limits) {
	s.searchLim = newLimiter(l)
	s.insertLim = newLimiter(l)
}

// admit claims a slot from lim on behalf of a request, writing the shed
// or cancellation response itself when admission fails. ok reports the
// request may proceed (and must release); waited is the degrade signal.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, lim *limiter, shed *atomic.Int64) (waited, ok bool) {
	if lim == nil {
		return false, true
	}
	waited, err := lim.acquire(r.Context())
	if err == nil {
		return waited, true
	}
	if errors.Is(err, errOverloaded) {
		shed.Add(1)
		w.Header().Set("Retry-After", "1")
		s.error(w, http.StatusTooManyRequests, err)
		return false, false
	}
	// The client disconnected while queued: nothing to retry, nothing shed.
	s.error(w, statusClientClosedRequest, fmt.Errorf("canceled while queued: %w", err))
	return false, false
}

// Degraded-mode deadlines: a search that had to queue for its slot runs
// under a fraction of the configured -search-timeout so that, under
// pressure, the executor's partial-results machinery trades result
// completeness for bounded latency instead of queue depth.
const (
	// degradedDiv shrinks the configured search timeout under pressure.
	degradedDiv = 4
	// minDegradedTimeout floors the shrunken deadline so degraded queries
	// still do useful work.
	minDegradedTimeout = 5 * time.Millisecond
	// defaultDegradedTimeout applies when no -search-timeout is set but
	// the server is degrading: even an uncapped deployment sheds work
	// under pressure.
	defaultDegradedTimeout = 100 * time.Millisecond
)

// degradedTimeout is the search deadline for a query that had to queue.
func (s *Server) degradedTimeout() time.Duration {
	if s.searchTimeout <= 0 {
		return defaultDegradedTimeout
	}
	d := s.searchTimeout / degradedDiv
	if d < minDegradedTimeout {
		d = minDegradedTimeout
	}
	return d
}

// SetReady flips the /readyz state: tknnd holds it false until startup
// recovery completes and flips it back to false when a drain begins, so
// load balancers stop routing before in-flight requests are cut off.
// /healthz is liveness and stays 200 throughout.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current /readyz state.
func (s *Server) Ready() bool { return s.ready.Load() }

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}
