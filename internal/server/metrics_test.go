package server

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// Generate traffic: 10 inserts, 3 searches, 2 client errors.
	for i := 0; i < 10; i++ {
		tm := int64(i)
		if resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{float32(i), 0, 0, 0}, Time: &tm}); resp.StatusCode != 200 {
			t.Fatalf("insert: %s", body)
		}
	}
	for i := 0; i < 3; i++ {
		if resp, body := postJSON(t, ts.URL+"/search", SearchRequest{Vector: []float32{1, 0, 0, 0}, K: 2, Start: 0, End: 100}); resp.StatusCode != 200 {
			t.Fatalf("search: %s", body)
		}
	}
	postJSON(t, ts.URL+"/search", SearchRequest{Vector: []float32{1}, K: 2, Start: 0, End: 100}) // bad dim
	postJSON(t, ts.URL+"/vectors", AddRequest{})                                                 // empty

	body := scrape(t, ts.URL)
	if got := metricValue(t, body, "tknn_vectors_total"); got != 10 {
		t.Errorf("vectors_total = %g", got)
	}
	if got := metricValue(t, body, "tknn_inserts_total"); got != 10 {
		t.Errorf("inserts_total = %g", got)
	}
	if got := metricValue(t, body, "tknn_insert_requests_total"); got != 11 {
		t.Errorf("insert_requests_total = %g, want 11 (10 ok + 1 rejected)", got)
	}
	if got := metricValue(t, body, "tknn_searches_total"); got != 3 {
		t.Errorf("searches_total = %g", got)
	}
	if got := metricValue(t, body, "tknn_client_errors_total"); got != 2 {
		t.Errorf("client_errors_total = %g", got)
	}
	if got := metricValue(t, body, "tknn_search_latency_seconds_count"); got != 3 {
		t.Errorf("search latency count = %g", got)
	}
	if got := metricValue(t, body, "tknn_insert_latency_seconds_count"); got != 10 {
		t.Errorf("insert latency count = %g", got)
	}
	if got := metricValue(t, body, "tknn_pending_build_vectors"); got != 0 {
		t.Errorf("pending builds = %g", got)
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: %d", resp.StatusCode)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(75 * time.Microsecond) // le 100
	h.observe(75 * time.Microsecond) // le 100
	h.observe(3 * time.Millisecond)  // le 5000
	h.observe(10 * time.Second)      // +Inf overflow
	if got := h.total.Load(); got != 4 {
		t.Fatalf("total %d", got)
	}
	if got := h.counts[1].Load(); got != 2 { // bucket le=100us
		t.Errorf("100us bucket = %d", got)
	}
	if got := h.counts[len(latencyBounds)].Load(); got != 1 {
		t.Errorf("overflow bucket = %d", got)
	}
	wantSum := int64(75+75+3000) + 10*1000*1000
	if got := h.sumUs.Load(); got != wantSum {
		t.Errorf("sum %d, want %d", got, wantSum)
	}
}
