package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	tknn "repro"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 4, LeafSize: 8, GraphDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestAddAndSearch(t *testing.T) {
	_, ts := newTestServer(t)

	// Single insert.
	tm := int64(0)
	resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{1, 0, 0, 0}, Time: &tm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d: %s", resp.StatusCode, body)
	}
	var ar AddResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.ID != 0 || ar.Count != 1 {
		t.Errorf("add response %+v", ar)
	}

	// Batch insert.
	batch := make([]AddEntry, 20)
	for i := range batch {
		batch[i] = AddEntry{Vector: []float32{float32(i), 1, 0, 0}, Time: int64(i + 1)}
	}
	resp, body = postJSON(t, ts.URL+"/vectors", AddRequest{Batch: batch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Count != 20 || len(ar.IDs) != 20 || ar.IDs[0] != 1 {
		t.Errorf("batch response %+v", ar)
	}

	// Search.
	resp, body = postJSON(t, ts.URL+"/search", SearchRequest{
		Vector: []float32{5, 1, 0, 0}, K: 3, Start: 0, End: 100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 3 {
		t.Fatalf("%d results", len(sr.Results))
	}
	if sr.Results[0].ID != 6 || sr.Results[0].Dist != 0 { // vector {5,1,0,0} was batch[5] = id 6
		t.Errorf("nearest = %+v", sr.Results[0])
	}

	// Windowed search respects times.
	resp, body = postJSON(t, ts.URL+"/search", SearchRequest{
		Vector: []float32{5, 1, 0, 0}, K: 5, Start: 10, End: 15,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("windowed search status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for _, r := range sr.Results {
		if r.Time < 10 || r.Time >= 15 {
			t.Errorf("result time %d outside window", r.Time)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t)
	tm := int64(0)
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"empty add", "/vectors", AddRequest{}, http.StatusBadRequest},
		{"missing time", "/vectors", AddRequest{Vector: []float32{1, 2, 3, 4}}, http.StatusBadRequest},
		{"wrong dim", "/vectors", AddRequest{Vector: []float32{1}, Time: &tm}, http.StatusBadRequest},
		{"both forms", "/vectors", AddRequest{Vector: []float32{1, 2, 3, 4}, Time: &tm,
			Batch: []AddEntry{{Vector: []float32{1, 2, 3, 4}}}}, http.StatusBadRequest},
		{"bad k", "/search", SearchRequest{Vector: []float32{1, 2, 3, 4}, K: 0, Start: 0, End: 1}, http.StatusBadRequest},
		{"empty window", "/search", SearchRequest{Vector: []float32{1, 2, 3, 4}, K: 1, Start: 5, End: 5}, http.StatusBadRequest},
		{"bad search dim", "/search", SearchRequest{Vector: []float32{1}, K: 1, Start: 0, End: 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: missing error body: %s", c.name, body)
		}
	}
}

func TestOutOfOrderTimestampRejected(t *testing.T) {
	_, ts := newTestServer(t)
	t10 := int64(10)
	resp, _ := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{1, 2, 3, 4}, Time: &t10})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("setup insert failed")
	}
	t5 := int64(5)
	resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{1, 2, 3, 4}, Time: &t5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-order insert: status %d (%s)", resp.StatusCode, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/vectors")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /vectors: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats: %d", resp.StatusCode)
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t)
	batch := make([]AddEntry, 30)
	for i := range batch {
		batch[i] = AddEntry{Vector: []float32{float32(i), 0, 0, 0}, Time: int64(i)}
	}
	if resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Batch: batch}); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s", body)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Vectors != 30 || st.Dim != 4 || st.LeafSize != 8 || st.Blocks == 0 {
		t.Errorf("stats %+v", st)
	}
	if st.Metric != "euclidean" {
		t.Errorf("metric %q", st.Metric)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

// TestConcurrentClients hammers the server from parallel writers and
// readers (writers use distinct time ranges so ordering is valid).
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t)

	// One writer (MBI is single-writer; the server serializes anyway, but
	// timestamps must still be globally non-decreasing, so a single
	// writer keeps the test deterministic).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tm := int64(i)
			resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{
				Vector: []float32{float32(i), 0, 0, 0}, Time: &tm,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("writer: %s", body)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				resp, body := postJSON(t, ts.URL+"/search", SearchRequest{
					Vector: []float32{float32(rng.Intn(200)), 0, 0, 0},
					K:      3, Start: 0, End: 1 << 40,
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader: %d %s", resp.StatusCode, body)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
}

func TestBatchPartialFailureReportsProgress(t *testing.T) {
	_, ts := newTestServer(t)
	batch := []AddEntry{
		{Vector: []float32{1, 2, 3, 4}, Time: 5},
		{Vector: []float32{1, 2, 3, 4}, Time: 3}, // goes backwards: rejected
	}
	resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Batch: batch})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("entry %d (after %d inserted)", 1, 1)
	if !bytes.Contains(body, []byte(want)) {
		t.Errorf("error %q does not report progress (%q)", eb.Error, want)
	}
}
