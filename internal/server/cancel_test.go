package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	tknn "repro"
)

func cancelTestServer(t *testing.T, n int) (*Server, *tknn.MBI) {
	t.Helper()
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 4, LeafSize: 16, GraphDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := []float32{float32(i), float32(i % 7), float32(i % 3), 1}
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return New(ix), ix
}

// TestSearchAbortedRequest: a request whose context is already done must
// not execute the query plan — the executor skips every subtask and the
// response reports a partial, empty result.
func TestSearchAbortedRequest(t *testing.T) {
	s, _ := cancelTestServer(t, 100)
	body := `{"vector":[1,2,3,4],"k":5,"start":0,"end":100}`
	req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(body))
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Fatal("aborted search not marked partial")
	}
	if len(out.Results) != 0 {
		t.Fatalf("aborted search returned %d results", len(out.Results))
	}
}

// TestSearchTimeoutPartial: an expired -search-timeout behaves like an
// aborted request — partial response instead of an error or a hang.
func TestSearchTimeoutPartial(t *testing.T) {
	s, _ := cancelTestServer(t, 100)
	s.SetSearchTimeout(time.Nanosecond)
	body := `{"vector":[1,2,3,4],"k":5,"start":0,"end":100}`
	req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Fatal("timed-out search not marked partial")
	}
}

// TestSearchResponseStages: a normal search reports stage timings and
// bumps the stage metrics.
func TestSearchResponseStages(t *testing.T) {
	s, _ := cancelTestServer(t, 100)
	body := `{"vector":[1,2,3,4],"k":5,"start":0,"end":100}`
	req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Partial {
		t.Fatal("unexpected partial")
	}
	if len(out.Results) == 0 {
		t.Fatal("no results")
	}
	if out.Stages.SearchSeconds <= 0 {
		t.Fatalf("search stage %v, want > 0", out.Stages.SearchSeconds)
	}

	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, mreq)
	text := mrec.Body.String()
	for _, want := range []string{
		`tknn_search_stage_seconds_bucket{stage="select",le=`,
		`tknn_search_stage_seconds_bucket{stage="search",le=`,
		`tknn_search_stage_seconds_bucket{stage="merge",le=`,
		`tknn_search_stage_seconds_count{stage="search"} 1`,
		"tknn_search_partials_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestBatchInsertAborted: a canceled request stops batch ingestion with
// 499 and reports how far it got; nothing after the abort is inserted.
func TestBatchInsertAborted(t *testing.T) {
	s, ix := cancelTestServer(t, 0)
	var b bytes.Buffer
	b.WriteString(`{"batch":[`)
	for i := 0; i < 10; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"vector":[1,2,3,%d],"time":%d}`, i, i)
	}
	b.WriteString(`]}`)
	req := httptest.NewRequest(http.MethodPost, "/vectors", &b)
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if n := ix.Len(); n != 0 {
		t.Fatalf("%d vectors inserted from an aborted request", n)
	}
}
