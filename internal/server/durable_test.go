package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	tknn "repro"
	"repro/internal/wal"
)

func newDurableTestServer(t *testing.T, dir string) (*Server, *httptest.Server, *wal.Manager) {
	t.Helper()
	opts := tknn.MBIOptions{Dim: 4, LeafSize: 8, GraphDegree: 4}
	d, err := wal.Open(wal.Config{Dir: dir, Sync: wal.SyncNever}, func(snapshot io.Reader) (wal.Target, error) {
		if snapshot == nil {
			return tknn.NewMBI(opts)
		}
		return tknn.LoadMBI(snapshot, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := d.Close(); err != nil {
			t.Errorf("closing manager: %v", err)
		}
	})
	ix := d.Index().(*tknn.MBI)
	s := NewDurable(ix, d)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, d
}

// TestDurableInsertsSurviveRestart drives inserts through the HTTP API,
// drops the server without a checkpoint, and verifies a fresh manager
// over the same dir replays every acknowledged insert.
func TestDurableInsertsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts, d := newDurableTestServer(t, dir)

	tm := int64(0)
	resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{1, 0, 0, 0}, Time: &tm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d: %s", resp.StatusCode, body)
	}
	batch := make([]AddEntry, 10)
	for i := range batch {
		batch[i] = AddEntry{Vector: []float32{float32(i), 1, 0, 0}, Time: int64(i + 1)}
	}
	resp, body = postJSON(t, ts.URL+"/vectors", AddRequest{Batch: batch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var ar AddResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Count != 10 || len(ar.IDs) != 10 || ar.IDs[0] != 1 {
		t.Fatalf("batch response %+v", ar)
	}

	ts.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	opts := tknn.MBIOptions{Dim: 4, LeafSize: 8, GraphDegree: 4}
	d2, err := wal.Open(wal.Config{Dir: dir, Sync: wal.SyncNever}, func(snapshot io.Reader) (wal.Target, error) {
		if snapshot == nil {
			return tknn.NewMBI(opts)
		}
		return tknn.LoadMBI(snapshot, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d2.Close(); err != nil {
			t.Errorf("closing manager: %v", err)
		}
	}()
	if got := d2.Index().Len(); got != 11 {
		t.Fatalf("recovered %d vectors, want 11", got)
	}
}

// TestDurableBatchRejectionCommitsPrefix mirrors the non-durable
// partial-failure contract: entries before the rejected one stay
// committed (and logged), later ones are untouched.
func TestDurableBatchRejectionCommitsPrefix(t *testing.T) {
	s, ts, _ := newDurableTestServer(t, t.TempDir())
	batch := []AddEntry{
		{Vector: []float32{1, 0, 0, 0}, Time: 10},
		{Vector: []float32{2, 0, 0, 0}, Time: 11},
		{Vector: []float32{3, 0, 0, 0}, Time: 5}, // timestamp regression
		{Vector: []float32{4, 0, 0, 0}, Time: 12},
	}
	resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Batch: batch})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "after 2 inserted") {
		t.Fatalf("error should report the committed prefix: %s", body)
	}
	if got := s.ix.Len(); got != 2 {
		t.Fatalf("index holds %d vectors, want 2", got)
	}
}

// TestCheckpointEndpoint exercises POST /admin/checkpoint end to end.
func TestCheckpointEndpoint(t *testing.T) {
	_, ts, d := newDurableTestServer(t, t.TempDir())
	tm := int64(0)
	resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{1, 0, 0, 0}, Time: &tm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/admin/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d: %s", resp.StatusCode, body)
	}
	var info wal.CheckpointInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 {
		t.Fatalf("checkpoint covers %d records, want 1", info.Seq)
	}
	if st := d.Stats(); st.Checkpoints != 1 || st.LastCheckpointSeq != 1 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}

	// GET is rejected.
	getResp, err := http.Get(ts.URL + "/admin/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", getResp.StatusCode)
	}
}

// TestCheckpointWithoutDataDirIs404 pins the legacy-mode behavior.
func TestCheckpointWithoutDataDirIs404(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/admin/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

// TestWALMetricsExposed asserts the durability counters appear on
// /metrics in durable mode and are absent otherwise.
func TestWALMetricsExposed(t *testing.T) {
	_, ts, _ := newDurableTestServer(t, t.TempDir())
	tm := int64(0)
	if resp, body := postJSON(t, ts.URL+"/vectors", AddRequest{Vector: []float32{1, 0, 0, 0}, Time: &tm}); resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"tknn_wal_appended_records_total 1",
		"tknn_wal_fsyncs_total",
		"tknn_wal_replayed_records 0",
		"tknn_wal_checkpoints_total 0",
		"tknn_wal_last_checkpoint_age_seconds -1",
		"tknn_wal_segments 1",
		"tknn_wal_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	_, legacy := newTestServer(t)
	resp2, err := http.Get(legacy.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw2), "tknn_wal_") {
		t.Error("legacy mode should not expose WAL metrics")
	}
}
