package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics tracks request counters and a search-latency histogram with
// atomic counters only — no locks on the hot path, no dependencies.
// The /metrics endpoint exposes them in the Prometheus text format so a
// standard scraper can watch a tknnd deployment.
type metrics struct {
	inserts        atomic.Int64 // vectors successfully inserted
	insertReqs     atomic.Int64 // /vectors requests
	searches       atomic.Int64 // /search requests answered OK
	searchPartials atomic.Int64 // searches cut short by cancel/timeout
	clientErrors   atomic.Int64 // 4xx responses
	shedSearches   atomic.Int64 // searches rejected 429 by admission control
	shedInserts    atomic.Int64 // inserts rejected 429 by admission control
	degraded       atomic.Int64 // searches run under a shrunken deadline
	searchLatency  histogram
	insertLatency  histogram
	// Per-stage search breakdown, exposed as one histogram family with a
	// stage label
	// (tknn_search_stage_seconds{stage="select"|"search"|"merge"|"rerank"|"fetch"}).
	// Rerank is contained in the search stage and stays at zero on
	// uncompressed indexes; fetch is cold-block cache page-in time,
	// overlapping search, and stays at zero on all-RAM indexes.
	stageSelect histogram
	stageSearch histogram
	stageMerge  histogram
	stageRerank histogram
	stageFetch  histogram
}

// histogram is a fixed-bucket latency histogram. Bounds are cumulative
// (le semantics) in microseconds.
type histogram struct {
	counts [len(latencyBounds) + 1]atomic.Int64
	sumUs  atomic.Int64
	total  atomic.Int64
}

// latencyBounds are the bucket upper bounds in microseconds, spanning the
// sub-millisecond graph searches up to multi-second merge stalls.
var latencyBounds = [...]int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000, 5000000}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	h.sumUs.Add(us)
	h.total.Add(1)
	for i, bound := range latencyBounds {
		if us <= bound {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBounds)].Add(1)
}

// write emits the histogram in Prometheus exposition format.
func (h *histogram) write(w http.ResponseWriter, name string) {
	h.writeLabeled(w, name, "")
}

// writeLabeled is write with an extra fixed label rendered into every
// sample (e.g. `stage="select"`), letting several histograms form one
// labeled family. An empty label emits the plain form.
func (h *histogram) writeLabeled(w http.ResponseWriter, name, label string) {
	sep := ""
	if label != "" {
		sep = label + ","
		label = "{" + label + "}"
	}
	cumulative := int64(0)
	for i, bound := range latencyBounds {
		cumulative += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, sep, float64(bound)/1e6, cumulative)
	}
	cumulative += h.counts[len(latencyBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, cumulative)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, label, float64(h.sumUs.Load())/1e6)
	fmt.Fprintf(w, "%s_count%s %d\n", name, label, h.total.Load())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m := &s.metrics
	fmt.Fprintf(w, "# HELP tknn_vectors_total Vectors currently indexed.\n")
	fmt.Fprintf(w, "# TYPE tknn_vectors_total gauge\n")
	fmt.Fprintf(w, "tknn_vectors_total %d\n", s.ix.Len())
	fmt.Fprintf(w, "# HELP tknn_blocks_total Sealed MBI blocks.\n")
	fmt.Fprintf(w, "# TYPE tknn_blocks_total gauge\n")
	fmt.Fprintf(w, "tknn_blocks_total %d\n", s.ix.BlockCount())
	fmt.Fprintf(w, "# HELP tknn_pending_build_vectors Vectors awaiting async block builds.\n")
	fmt.Fprintf(w, "# TYPE tknn_pending_build_vectors gauge\n")
	fmt.Fprintf(w, "tknn_pending_build_vectors %d\n", s.ix.PendingBuilds())
	fmt.Fprintf(w, "# HELP tknn_inserts_total Vectors inserted since start.\n")
	fmt.Fprintf(w, "# TYPE tknn_inserts_total counter\n")
	fmt.Fprintf(w, "tknn_inserts_total %d\n", m.inserts.Load())
	fmt.Fprintf(w, "# HELP tknn_insert_requests_total /vectors requests.\n")
	fmt.Fprintf(w, "# TYPE tknn_insert_requests_total counter\n")
	fmt.Fprintf(w, "tknn_insert_requests_total %d\n", m.insertReqs.Load())
	fmt.Fprintf(w, "# HELP tknn_searches_total Successful searches.\n")
	fmt.Fprintf(w, "# TYPE tknn_searches_total counter\n")
	fmt.Fprintf(w, "tknn_searches_total %d\n", m.searches.Load())
	fmt.Fprintf(w, "# HELP tknn_client_errors_total 4xx responses.\n")
	fmt.Fprintf(w, "# TYPE tknn_client_errors_total counter\n")
	fmt.Fprintf(w, "tknn_client_errors_total %d\n", m.clientErrors.Load())
	fmt.Fprintf(w, "# HELP tknn_inflight Requests currently holding an admission slot.\n")
	fmt.Fprintf(w, "# TYPE tknn_inflight gauge\n")
	fmt.Fprintf(w, "tknn_inflight{op=\"search\"} %d\n", s.searchLim.Inflight())
	fmt.Fprintf(w, "tknn_inflight{op=\"insert\"} %d\n", s.insertLim.Inflight())
	fmt.Fprintf(w, "# HELP tknn_shed_total Requests rejected 429 by admission control.\n")
	fmt.Fprintf(w, "# TYPE tknn_shed_total counter\n")
	fmt.Fprintf(w, "tknn_shed_total{op=\"search\"} %d\n", m.shedSearches.Load())
	fmt.Fprintf(w, "tknn_shed_total{op=\"insert\"} %d\n", m.shedInserts.Load())
	fmt.Fprintf(w, "# HELP tknn_degraded_total Searches run under the shrunken degraded-mode deadline.\n")
	fmt.Fprintf(w, "# TYPE tknn_degraded_total counter\n")
	fmt.Fprintf(w, "tknn_degraded_total %d\n", m.degraded.Load())
	fmt.Fprintf(w, "# HELP tknn_search_partials_total Searches cut short by cancellation or -search-timeout.\n")
	fmt.Fprintf(w, "# TYPE tknn_search_partials_total counter\n")
	fmt.Fprintf(w, "tknn_search_partials_total %d\n", m.searchPartials.Load())
	fmt.Fprintf(w, "# HELP tknn_search_latency_seconds Search latency.\n")
	fmt.Fprintf(w, "# TYPE tknn_search_latency_seconds histogram\n")
	m.searchLatency.write(w, "tknn_search_latency_seconds")
	fmt.Fprintf(w, "# HELP tknn_search_stage_seconds Per-stage search time: planning/selection, per-block execution, merge, and the compressed-candidate exact re-rank (contained in search).\n")
	fmt.Fprintf(w, "# TYPE tknn_search_stage_seconds histogram\n")
	m.stageSelect.writeLabeled(w, "tknn_search_stage_seconds", `stage="select"`)
	m.stageSearch.writeLabeled(w, "tknn_search_stage_seconds", `stage="search"`)
	m.stageMerge.writeLabeled(w, "tknn_search_stage_seconds", `stage="merge"`)
	m.stageRerank.writeLabeled(w, "tknn_search_stage_seconds", `stage="rerank"`)
	m.stageFetch.writeLabeled(w, "tknn_search_stage_seconds", `stage="fetch"`)
	if cs, ok := s.ix.CacheStats(); ok {
		fmt.Fprintf(w, "# HELP tknn_block_cache_hits_total Block cache lookups served from RAM.\n")
		fmt.Fprintf(w, "# TYPE tknn_block_cache_hits_total counter\n")
		fmt.Fprintf(w, "tknn_block_cache_hits_total %d\n", cs.Hits)
		fmt.Fprintf(w, "# HELP tknn_block_cache_misses_total Block cache lookups that loaded a segment from disk.\n")
		fmt.Fprintf(w, "# TYPE tknn_block_cache_misses_total counter\n")
		fmt.Fprintf(w, "tknn_block_cache_misses_total %d\n", cs.Misses)
		fmt.Fprintf(w, "# HELP tknn_block_cache_evictions_total Block payloads evicted to stay under the byte bound.\n")
		fmt.Fprintf(w, "# TYPE tknn_block_cache_evictions_total counter\n")
		fmt.Fprintf(w, "tknn_block_cache_evictions_total %d\n", cs.Evictions)
		fmt.Fprintf(w, "# HELP tknn_block_cache_bytes Resident block payload bytes in the cache.\n")
		fmt.Fprintf(w, "# TYPE tknn_block_cache_bytes gauge\n")
		fmt.Fprintf(w, "tknn_block_cache_bytes %d\n", cs.Bytes)
	}
	fmt.Fprintf(w, "# HELP tknn_insert_latency_seconds Per-request insert latency.\n")
	fmt.Fprintf(w, "# TYPE tknn_insert_latency_seconds histogram\n")
	m.insertLatency.write(w, "tknn_insert_latency_seconds")
	if s.durable != nil {
		s.writeWALMetrics(w)
	}
}

// writeWALMetrics exposes the durability counters when the daemon runs
// with a WAL data dir.
func (s *Server) writeWALMetrics(w http.ResponseWriter) {
	st := s.durable.Stats()
	fmt.Fprintf(w, "# HELP tknn_wal_appended_records_total Records written to the WAL since start.\n")
	fmt.Fprintf(w, "# TYPE tknn_wal_appended_records_total counter\n")
	fmt.Fprintf(w, "tknn_wal_appended_records_total %d\n", st.Appended)
	fmt.Fprintf(w, "# HELP tknn_wal_fsyncs_total Fsync syscalls issued on WAL segments.\n")
	fmt.Fprintf(w, "# TYPE tknn_wal_fsyncs_total counter\n")
	fmt.Fprintf(w, "tknn_wal_fsyncs_total %d\n", st.Fsyncs)
	fmt.Fprintf(w, "# HELP tknn_wal_replayed_records Records replayed into the index at startup.\n")
	fmt.Fprintf(w, "# TYPE tknn_wal_replayed_records gauge\n")
	fmt.Fprintf(w, "tknn_wal_replayed_records %d\n", st.Replayed)
	fmt.Fprintf(w, "# HELP tknn_wal_checkpoints_total Snapshots written since start.\n")
	fmt.Fprintf(w, "# TYPE tknn_wal_checkpoints_total counter\n")
	fmt.Fprintf(w, "tknn_wal_checkpoints_total %d\n", st.Checkpoints)
	fmt.Fprintf(w, "# HELP tknn_wal_last_checkpoint_age_seconds Seconds since the newest snapshot; -1 when none exists.\n")
	fmt.Fprintf(w, "# TYPE tknn_wal_last_checkpoint_age_seconds gauge\n")
	age := float64(-1)
	if !st.LastCheckpointTime.IsZero() {
		age = time.Since(st.LastCheckpointTime).Seconds()
	}
	fmt.Fprintf(w, "tknn_wal_last_checkpoint_age_seconds %g\n", age)
	fmt.Fprintf(w, "# HELP tknn_wal_segments Segment files on disk.\n")
	fmt.Fprintf(w, "# TYPE tknn_wal_segments gauge\n")
	fmt.Fprintf(w, "tknn_wal_segments %d\n", st.Segments)
	fmt.Fprintf(w, "# HELP tknn_wal_bytes Bytes of log on disk.\n")
	fmt.Fprintf(w, "# TYPE tknn_wal_bytes gauge\n")
	fmt.Fprintf(w, "tknn_wal_bytes %d\n", st.WALBytes)
}
