// Package server implements the HTTP API of the tknnd daemon: a small
// JSON service exposing one MBI index for ingestion and time-restricted
// kNN search. It exists to give downstream users a network-facing
// deployment surface and to demonstrate the library under concurrent
// load; cmd/tknnd wires it to flags.
//
// Endpoints:
//
//	POST /vectors   {"vector": [...], "time": 123}          -> {"id": 0}
//	POST /vectors   {"batch": [{"vector": ..., "time": ...}, ...]}
//	POST /search    {"vector": [...], "k": 10,
//	                 "start": 0, "end": 1000}               -> {"results": [...]}
//	GET  /stats                                             -> index shape
//	GET  /healthz                                           -> 200 ok (liveness)
//	GET  /readyz                                            -> 200/503 (readiness)
//	POST /admin/checkpoint                                  -> snapshot now
//	                (404 unless the daemon runs with a WAL data dir)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	tknn "repro"
	"repro/internal/fault"
	"repro/internal/wal"
)

// statusClientClosedRequest is the de-facto (nginx) status for a request
// whose client went away before the response.
const statusClientClosedRequest = 499

// Server handles the HTTP API around one MBI index.
type Server struct {
	ix *tknn.MBI
	// durable, when set, write-ahead-logs every insert and serves
	// /admin/checkpoint; nil means the legacy snapshot-on-exit mode.
	durable *wal.Manager
	// addMu serializes ingestion: tknn.MBI.Add is single-writer.
	addMu   sync.Mutex
	mux     *http.ServeMux
	metrics metrics
	// searchTimeout, when positive, caps each /search request's execution;
	// on expiry the executor returns what it has, tagged partial. Set
	// before serving.
	searchTimeout time.Duration
	// searchLim/insertLim, when set, gate the corresponding handler behind
	// bounded in-flight slots with a short wait queue (see SetLimits); nil
	// means unlimited.
	searchLim *limiter
	insertLim *limiter
	// ready is the /readyz state: true while the daemon should receive
	// traffic, false during startup recovery and shutdown drain.
	ready atomic.Bool
}

// New wraps an index in a Server.
func New(ix *tknn.MBI) *Server {
	s := &Server{ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("/vectors", s.handleVectors)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/admin/checkpoint", s.handleCheckpoint)
	s.ready.Store(true)
	return s
}

// NewDurable wraps the index managed by d in a Server whose inserts go
// through the write-ahead log: every acknowledged /vectors request is on
// disk before the response leaves. ix must be d.Index().
func NewDurable(ix *tknn.MBI, d *wal.Manager) *Server {
	s := New(ix)
	s.durable = d
	return s
}

// SetSearchTimeout caps per-request search execution: a query still
// running after d returns the partial results gathered so far (tagged in
// the response) instead of holding the connection. d <= 0 disables the
// cap. Call before serving; the value is read concurrently afterwards.
func (s *Server) SetSearchTimeout(d time.Duration) { s.searchTimeout = d }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// AddRequest is the /vectors request body: either a single timestamped
// vector or a batch.
type AddRequest struct {
	Vector []float32  `json:"vector,omitempty"`
	Time   *int64     `json:"time,omitempty"`
	Batch  []AddEntry `json:"batch,omitempty"`
}

// AddEntry is one element of a batch insert.
type AddEntry struct {
	Vector []float32 `json:"vector"`
	Time   int64     `json:"time"`
}

// AddResponse reports the ids assigned to the inserted vectors.
type AddResponse struct {
	ID    int   `json:"id,omitempty"`
	IDs   []int `json:"ids,omitempty"`
	Count int   `json:"count"`
}

func (s *Server) handleVectors(w http.ResponseWriter, r *http.Request) {
	s.metrics.insertReqs.Add(1)
	if r.Method != http.MethodPost {
		s.error(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if _, ok := s.admit(w, r, s.insertLim, &s.metrics.shedInserts); !ok {
		return
	} else if s.insertLim != nil {
		defer s.insertLim.release()
	}
	if fault.Enabled {
		// Injection point server.insert: the request was admitted but the
		// handler fails before touching the index — the client-visible
		// shape of a crash between accept and apply.
		if err := fault.Hit("server.insert"); err != nil {
			s.error(w, http.StatusInternalServerError, err)
			return
		}
	}
	var req AddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.error(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	switch {
	case len(req.Batch) > 0 && req.Vector != nil:
		s.error(w, http.StatusBadRequest, errors.New("provide either vector or batch, not both"))
	case len(req.Batch) > 0:
		s.addBatch(w, r.Context(), req.Batch)
	case req.Vector != nil:
		if req.Time == nil {
			s.error(w, http.StatusBadRequest, errors.New("missing time"))
			return
		}
		s.addBatch(w, r.Context(), []AddEntry{{Vector: req.Vector, Time: *req.Time}})
	default:
		s.error(w, http.StatusBadRequest, errors.New("empty request"))
	}
}

func (s *Server) addBatch(w http.ResponseWriter, ctx context.Context, batch []AddEntry) {
	start := time.Now()
	s.addMu.Lock()
	defer func() {
		s.addMu.Unlock()
		s.metrics.insertLatency.observe(time.Since(start))
	}()
	ids := make([]int, 0, len(batch))
	if err := ctx.Err(); err != nil {
		// The client was gone before any work: nothing inserted.
		s.error(w, statusClientClosedRequest, fmt.Errorf("request canceled: %w", err))
		return
	}
	if s.durable != nil {
		// One AppendBatch call: the whole batch is logged and fsynced
		// (policy permitting) before any response. On a mid-batch
		// rejection the earlier entries are committed, matching the
		// non-durable path.
		before := s.ix.Len()
		vs := make([][]float32, len(batch))
		ts := make([]int64, len(batch))
		for i, e := range batch {
			vs[i], ts[i] = e.Vector, e.Time
		}
		err := s.durable.AppendBatch(vs, ts)
		for id := before; id < s.ix.Len(); id++ {
			ids = append(ids, id)
		}
		if err != nil {
			s.metrics.inserts.Add(int64(len(ids)))
			s.error(w, statusFor(err), fmt.Errorf("after %d inserted: %w", len(ids), err))
			return
		}
	} else {
		for i, e := range batch {
			// An aborted request stops consuming the batch between
			// entries; what was already inserted stays (appends are not
			// transactional) and the error reports how far we got.
			if err := ctx.Err(); err != nil {
				s.metrics.inserts.Add(int64(len(ids)))
				s.error(w, statusClientClosedRequest, fmt.Errorf("request canceled after %d inserted: %w", len(ids), err))
				return
			}
			id := s.ix.Len()
			if err := s.ix.Add(e.Vector, e.Time); err != nil {
				// Report how far we got: earlier entries are committed
				// (appends are not transactional).
				s.metrics.inserts.Add(int64(len(ids)))
				s.error(w, statusFor(err), fmt.Errorf("entry %d (after %d inserted): %w", i, len(ids), err))
				return
			}
			ids = append(ids, id)
		}
	}
	s.metrics.inserts.Add(int64(len(ids)))
	resp := AddResponse{IDs: ids, Count: len(ids)}
	if len(ids) == 1 {
		resp = AddResponse{ID: ids[0], Count: 1}
	}
	writeJSON(w, http.StatusOK, resp)
}

// SearchRequest is the /search request body.
type SearchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	Start  int64     `json:"start"`
	End    int64     `json:"end"`
}

// SearchResult is one neighbor in a SearchResponse.
type SearchResult struct {
	ID   int     `json:"id"`
	Time int64   `json:"time"`
	Dist float32 `json:"dist"`
}

// SearchStages reports one query's per-stage wall-clock seconds: block
// selection/planning, per-block subtask execution, and the final merge.
type SearchStages struct {
	SelectSeconds float64 `json:"selectSeconds"`
	SearchSeconds float64 `json:"searchSeconds"`
	MergeSeconds  float64 `json:"mergeSeconds"`
	// RerankSeconds is the exact re-scoring of compressed-block
	// candidates, contained in SearchSeconds; zero on uncompressed
	// indexes.
	RerankSeconds float64 `json:"rerankSeconds,omitempty"`
	// FetchSeconds is the time cold (spilled) blocks spent paging their
	// payloads through the block cache. It overlaps SearchSeconds and is
	// zero on all-RAM indexes.
	FetchSeconds float64 `json:"fetchSeconds,omitempty"`
}

// SearchResponse is the /search response body.
type SearchResponse struct {
	Results []SearchResult `json:"results"`
	// Partial reports that the request was canceled or timed out mid-plan:
	// the results cover only the blocks that executed.
	Partial bool `json:"partial,omitempty"`
	// Stages breaks the query's execution time down per stage.
	Stages SearchStages `json:"stages"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.error(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	waited, ok := s.admit(w, r, s.searchLim, &s.metrics.shedSearches)
	if !ok {
		return
	}
	if s.searchLim != nil {
		defer s.searchLim.release()
	}
	if fault.Enabled {
		// Injection point server.search: an admitted query that fails
		// before execution. The chaos harness tells these from genuine
		// failures by the X-Tknn-Injected marker s.error attaches.
		if err := fault.Hit("server.search"); err != nil {
			s.error(w, http.StatusInternalServerError, err)
			return
		}
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.error(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	// The request context flows into the executor: an aborted connection
	// or an expired -search-timeout stops launching per-block subtasks and
	// the response carries whatever completed, tagged partial. A query
	// that had to queue for its admission slot runs degraded — a shrunken
	// deadline that trades completeness for bounded latency.
	ctx := r.Context()
	timeout := s.searchTimeout
	if waited {
		s.metrics.degraded.Add(1)
		w.Header().Set("X-Tknn-Degraded", "1")
		timeout = s.degradedTimeout()
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	res, info, err := s.ix.SearchDetailed(ctx, tknn.Query{Vector: req.Vector, K: req.K, Start: req.Start, End: req.End})
	if err != nil {
		s.error(w, statusFor(err), err)
		return
	}
	s.metrics.searchLatency.observe(time.Since(start))
	s.metrics.searches.Add(1)
	s.metrics.stageSelect.observe(info.Select)
	s.metrics.stageSearch.observe(info.Search)
	s.metrics.stageMerge.observe(info.Merge)
	s.metrics.stageRerank.observe(info.Rerank)
	s.metrics.stageFetch.observe(info.Fetch)
	if info.Partial {
		s.metrics.searchPartials.Add(1)
	}
	out := SearchResponse{
		Results: make([]SearchResult, len(res)),
		Partial: info.Partial,
		Stages: SearchStages{
			SelectSeconds: info.Select.Seconds(),
			SearchSeconds: info.Search.Seconds(),
			MergeSeconds:  info.Merge.Seconds(),
			RerankSeconds: info.Rerank.Seconds(),
			FetchSeconds:  info.Fetch.Seconds(),
		},
	}
	for i, n := range res {
		out.Results[i] = SearchResult{ID: n.ID, Time: n.Time, Dist: n.Dist}
	}
	writeJSON(w, http.StatusOK, out)
}

// StatsResponse is the /stats response body.
type StatsResponse struct {
	Vectors    int    `json:"vectors"`
	Blocks     int    `json:"blocks"`
	TreeHeight int    `json:"treeHeight"`
	Dim        int    `json:"dim"`
	Metric     string `json:"metric"`
	LeafSize   int    `json:"leafSize"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.error(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	o := s.ix.Options()
	writeJSON(w, http.StatusOK, StatsResponse{
		Vectors:    s.ix.Len(),
		Blocks:     s.ix.BlockCount(),
		TreeHeight: s.ix.TreeHeight(),
		Dim:        o.Dim,
		Metric:     o.Metric.String(),
		LeafSize:   o.LeafSize,
	})
}

// handleCheckpoint serializes a snapshot covering every logged record
// and prunes fully-covered WAL segments. Inserts block for the duration;
// searches proceed.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.error(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.durable == nil {
		s.error(w, http.StatusNotFound, errors.New("checkpointing requires the daemon to run with a WAL data dir (-data-dir)"))
		return
	}
	info, err := s.durable.Checkpoint()
	if err != nil {
		s.error(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// error is httpError plus client-error accounting. In fault-injection
// builds, injected failures are tagged with an X-Tknn-Injected header so
// load harnesses can separate deliberate errors from genuine ones.
func (s *Server) error(w http.ResponseWriter, status int, err error) {
	if fault.Enabled {
		if errors.Is(err, fault.ErrInjected) {
			w.Header().Set("X-Tknn-Injected", "1")
		}
	}
	if status >= 400 && status < 500 {
		s.metrics.clientErrors.Add(1)
	}
	httpError(w, status, err)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, tknn.ErrBadQuery),
		errors.Is(err, tknn.ErrDimension),
		errors.Is(err, tknn.ErrTimestampOrder):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header write can only be logged; the
	// status line is already on the wire.
	_ = json.NewEncoder(w).Encode(v)
}
