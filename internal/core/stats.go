package core

import (
	"fmt"
	"sort"

	"repro/internal/vec"
)

// Stats summarizes the shape of an MBI index.
type Stats struct {
	// NumVectors is the total number of indexed vectors, including the
	// open leaf.
	NumVectors int
	// NumBlocks is the number of sealed blocks (graphs built).
	NumBlocks int
	// TreeHeight is the height of the tallest complete subtree.
	TreeHeight int
	// BlocksPerLevel[h] counts sealed blocks of height h.
	BlocksPerLevel []int
	// GraphEdges is the total directed edge count across all block graphs.
	GraphEdges int64
	// ForestHeights lists the heights of the complete-subtree roots,
	// left to right.
	ForestHeights []int
	// OpenLeafFill is the number of vectors in the open (non-full) leaf.
	OpenLeafFill int
	// CompressedBlocks counts sealed blocks carrying SQ8 codes.
	CompressedBlocks int
	// CodeBytes is the total memory of all blocks' SQ8 codes (codes,
	// per-dim parameters, and cached norms).
	CodeBytes int64
	// SpilledBlocks counts blocks whose payload lives in a segment file
	// instead of RAM; SpilledBytes is their total on-disk size.
	SpilledBlocks int
	SpilledBytes  int64
}

// Stats returns a snapshot of the index shape.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := Stats{
		NumVectors:   ix.store.Len(),
		NumBlocks:    len(ix.blocks),
		OpenLeafFill: ix.store.Len() - ix.openLo,
	}
	for _, b := range ix.blocks {
		for len(s.BlocksPerLevel) <= b.Height {
			s.BlocksPerLevel = append(s.BlocksPerLevel, 0)
		}
		s.BlocksPerLevel[b.Height]++
		if b.Graph != nil {
			s.GraphEdges += int64(b.Graph.NumEdges())
		}
		if b.Height > s.TreeHeight {
			s.TreeHeight = b.Height
		}
		if b.Codes != nil {
			s.CompressedBlocks++
			s.CodeBytes += int64(b.Codes.Bytes())
		}
		if b.Spilled {
			s.SpilledBlocks++
			s.SpilledBytes += b.SegBytes
		}
	}
	for _, root := range ix.forest {
		s.ForestHeights = append(s.ForestHeights, ix.blocks[root].Height)
	}
	return s
}

// CheckInvariants verifies every structural invariant the design relies
// on. It is called by tests after randomized insertion sequences and is
// cheap enough to run after restores.
//
// Invariants checked:
//  1. times is sorted ascending and matches the store length.
//  2. Postorder numbering: a height-h block at index i has its right child
//     at i-1 and its left child at i-2^h, children are one level lower and
//     split the parent's range at its midpoint.
//  3. Every sealed block covers exactly S_L * 2^height vectors and carries
//     a structurally valid graph with one node per vector.
//  4. The forest roots have strictly decreasing heights and tile
//     [0, openLo) contiguously from the left.
//  5. The open leaf holds fewer than S_L vectors.
func (ix *Index) CheckInvariants() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.checkInvariantsLocked()
}

// checkInvariantsLocked is CheckInvariants for callers already holding mu
// (read or write) — sealLeafLocked and the async install step run it under
// the invariant gate while still inside their write-lock critical section.
func (ix *Index) checkInvariantsLocked() error {
	n := ix.store.Len()
	if len(ix.times) != n {
		return fmt.Errorf("mbi: %d timestamps for %d vectors", len(ix.times), n)
	}
	times := ix.times
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		return fmt.Errorf("mbi: timestamps not sorted")
	}

	for i, b := range ix.blocks {
		want := ix.opts.LeafSize << uint(b.Height)
		if b.Len() != want {
			return fmt.Errorf("mbi: block %d (height %d) covers %d vectors, want %d", i, b.Height, b.Len(), want)
		}
		if b.Spilled {
			// A spilled block's payload lives in its segment; the RAM side
			// must be fully released and tiered storage configured to page
			// it back. Its range/child structure is still checked below.
			if b.Graph != nil || b.Codes != nil {
				return fmt.Errorf("mbi: spilled block %d still holds a RAM payload", i)
			}
			if ix.opts.Spill == nil {
				return fmt.Errorf("mbi: block %d is spilled but no spill config is set", i)
			}
		} else {
			if b.Graph == nil {
				return fmt.Errorf("mbi: block %d has no graph", i)
			}
			if err := b.Graph.Validate(); err != nil {
				return fmt.Errorf("mbi: block %d: %w", i, err)
			}
			if b.Graph.NumNodes() != b.Len() {
				return fmt.Errorf("mbi: block %d graph has %d nodes for %d vectors", i, b.Graph.NumNodes(), b.Len())
			}
			if b.Codes != nil {
				if err := b.Codes.Validate(); err != nil {
					return fmt.Errorf("mbi: block %d: %w", i, err)
				}
				if b.Codes.Dim != ix.opts.Dim {
					return fmt.Errorf("mbi: block %d codes have dim %d, want %d", i, b.Codes.Dim, ix.opts.Dim)
				}
				if b.Codes.N != b.Len() {
					return fmt.Errorf("mbi: block %d codes cover %d vectors, want %d", i, b.Codes.N, b.Len())
				}
			}
		}
		if b.Height > 0 {
			li := i - (1 << uint(b.Height))
			ri := i - 1
			if li < 0 || ri < 0 {
				return fmt.Errorf("mbi: block %d (height %d) has out-of-range children %d, %d", i, b.Height, li, ri)
			}
			l, r := ix.blocks[li], ix.blocks[ri]
			if l.Height != b.Height-1 || r.Height != b.Height-1 {
				return fmt.Errorf("mbi: block %d children heights %d, %d, want %d", i, l.Height, r.Height, b.Height-1)
			}
			if l.Lo != b.Lo || l.Hi != r.Lo || r.Hi != b.Hi {
				return fmt.Errorf("mbi: block %d range [%d,%d) not split by children [%d,%d) [%d,%d)",
					i, b.Lo, b.Hi, l.Lo, l.Hi, r.Lo, r.Hi)
			}
		}
	}

	prevHeight := int(^uint(0) >> 1) // max int
	cursor := 0
	for _, root := range ix.forest {
		if root < 0 || root >= len(ix.blocks) {
			return fmt.Errorf("mbi: forest references missing block %d", root)
		}
		b := ix.blocks[root]
		if b.Height >= prevHeight {
			return fmt.Errorf("mbi: forest heights not strictly decreasing (%d after %d)", b.Height, prevHeight)
		}
		prevHeight = b.Height
		if b.Lo != cursor {
			return fmt.Errorf("mbi: forest root at %d starts at %d, want %d", root, b.Lo, cursor)
		}
		cursor = b.Hi
	}
	if ix.opts.AsyncMerge {
		// Builds may trail: the gap [cursor, openLo) is sealed data whose
		// blocks are still in flight, and must be leaf-aligned.
		if cursor > ix.openLo {
			return fmt.Errorf("mbi: forest covers [0,%d) past open leaf at %d", cursor, ix.openLo)
		}
		if gap := ix.openLo - cursor; gap%ix.opts.LeafSize != 0 {
			return fmt.Errorf("mbi: pending region [%d,%d) is not whole leaves", cursor, ix.openLo)
		}
	} else if cursor != ix.openLo {
		return fmt.Errorf("mbi: forest covers [0,%d) but open leaf starts at %d", cursor, ix.openLo)
	}
	if fill := n - ix.openLo; fill < 0 || fill >= ix.opts.LeafSize {
		return fmt.Errorf("mbi: open leaf holds %d vectors with S_L = %d", fill, ix.opts.LeafSize)
	}
	return nil
}

// SetRerankFactor changes the compressed-block over-fetch multiplier on a
// live index (0 restores the default). Benchmarks sweep it per query batch;
// the write lock orders the change against in-flight searches.
func (ix *Index) SetRerankFactor(f int) {
	if f < 0 {
		f = 0
	}
	ix.mu.Lock()
	ix.opts.RerankFactor = f
	ix.mu.Unlock()
}

// Store exposes the backing vector store for persistence. The returned
// store must be treated as read-only.
func (ix *Index) Store() *vec.Store {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.store
}

// Times returns the timestamp slice for persistence. Read-only.
func (ix *Index) Times() []int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.times
}

// Blocks returns a copy of the sealed-block metadata in creation order.
// The graphs alias index memory and must be treated as read-only.
func (ix *Index) Blocks() []Block {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Block, len(ix.blocks))
	copy(out, ix.blocks)
	return out
}

// Forest returns a copy of the complete-subtree root indices.
func (ix *Index) Forest() []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]int, len(ix.forest))
	copy(out, ix.forest)
	return out
}

// OpenLo returns the global index where the open leaf begins.
func (ix *Index) OpenLo() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.openLo
}

// Restore reconstructs an index from persisted state. The inputs are
// adopted, not copied; the caller must not reuse them. CheckInvariants is
// run before accepting the state.
func Restore(opts Options, store *vec.Store, times []int64, blocks []Block, forest []int, openLo int) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if store.Dim() != opts.Dim {
		return nil, fmt.Errorf("mbi: store dimension %d != options dimension %d", store.Dim(), opts.Dim)
	}
	ix := &Index{
		opts:   opts,
		store:  store,
		times:  times,
		blocks: blocks,
		forest: forest,
		openLo: openLo,
	}
	ix.entrySalt, ix.executor = queryState(opts)
	ix.cache = newBlockCache(opts)
	if err := ix.CheckInvariants(); err != nil {
		return nil, err
	}
	// Restored state must be quiescent: a sealed-but-unbuilt gap has no
	// queued job to build it (SaveMBI flushes, so valid files never have
	// one).
	if got := ix.installedHiLocked(); got != openLo {
		return nil, fmt.Errorf("mbi: restored blocks cover [0,%d) but open leaf starts at %d", got, openLo)
	}
	if opts.AsyncMerge {
		ix.jobs = make(chan sealJob, 16)
		go ix.mergeWorker()
	}
	return ix, nil
}
