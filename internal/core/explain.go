package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/theap"
)

// BlockPlan describes one block that top-down selection chose for a query
// window.
type BlockPlan struct {
	// Lo, Hi is the block's global vector range.
	Lo, Hi int
	// Height is the block's tree height (0 = leaf); -1 marks the open
	// (non-full) leaf, which is scanned by brute force.
	Height int
	// WindowStart, WindowEnd is the block's time window [t_s, t_e).
	WindowStart, WindowEnd int64
	// OverlapRatio is r_o(q, B), the fraction of the block's window
	// covered by the query (the quantity Algorithm 4 thresholds on).
	OverlapRatio float64
	// InWindow is the number of the block's vectors inside the query
	// window — the work a brute-force scan would do, and the candidate
	// pool a graph search filters for.
	InWindow int
	// BruteForce reports whether this block is answered by brute force
	// (only the open leaf) rather than graph search.
	BruteForce bool
	// Compressed reports that the block is searched through its SQ8 codes
	// (asymmetric distances + exact re-rank) rather than the float store.
	// For a cold block it reflects the fetched payload in executed plans
	// and is false in static ones (the payload is on disk).
	Compressed bool
	// Cold reports that the block is spilled: its payload is paged in
	// through the block cache by the executor's fetch stage. Fetch is
	// the page-in time in an executed plan (near-zero on a cache hit).
	Cold  bool
	Fetch time.Duration
	// Duration is the block subtask's wall-clock run time. Zero unless the
	// plan was executed (SearchExplainContext).
	Duration time.Duration
	// Skipped reports that the executed plan's context was done before
	// this block's subtask started. Always false for static Explain.
	Skipped bool
	// Found is the number of neighbors the block's subtask returned in an
	// executed plan.
	Found int
}

// Plan is the result of Explain: everything block selection decided for a
// query window, without running the search.
type Plan struct {
	// Tau is the threshold the plan was computed with.
	Tau float64
	// WindowStart, WindowEnd echo the query window.
	WindowStart, WindowEnd int64
	// TotalInWindow is the number of indexed vectors inside the window.
	TotalInWindow int
	// Blocks are the selected blocks in timestamp order.
	Blocks []BlockPlan

	// Executed reports whether the plan was actually run
	// (SearchExplainContext); the fields below are zero otherwise.
	Executed bool
	// Partial reports that the context was done before every block
	// finished — the query's results cover only the blocks that ran.
	Partial bool
	// Select, Search, Merge are the executed query's stage durations:
	// block selection + planning, per-block subtask execution, and the
	// final theap.Merge combine. Rerank is the CPU time compressed blocks
	// spent re-scoring candidates exactly; it is contained in Search.
	// Fetch is the summed time cold blocks spent paging their payloads
	// through the block cache; it overlaps the Search wall clock.
	Select, Search, Merge, Rerank, Fetch time.Duration
}

// String renders the plan like an EXPLAIN output; executed plans include
// stage durations and per-block timings (EXPLAIN ANALYZE, as it were).
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window [%d, %d): %d vectors in %d block(s), tau=%.2f\n",
		p.WindowStart, p.WindowEnd, p.TotalInWindow, len(p.Blocks), p.Tau)
	if p.Executed {
		fmt.Fprintf(&b, "executed: select %v, search %v, merge %v", p.Select, p.Search, p.Merge)
		if p.Rerank > 0 {
			fmt.Fprintf(&b, " (rerank %v)", p.Rerank)
		}
		if p.Fetch > 0 {
			fmt.Fprintf(&b, " (fetch %v)", p.Fetch)
		}
		if p.Partial {
			b.WriteString(" (partial)")
		}
		b.WriteString("\n")
	}
	for _, blk := range p.Blocks {
		kind := fmt.Sprintf("height %d, graph", blk.Height)
		if blk.Compressed {
			kind = fmt.Sprintf("height %d, graph+sq8", blk.Height)
		}
		if blk.Cold {
			kind += ", cold"
		}
		if blk.BruteForce {
			kind = "open leaf, brute force"
		}
		fmt.Fprintf(&b, "  block [%d, %d) %-24s overlap %.2f, %d/%d vectors in window",
			blk.Lo, blk.Hi, "("+kind+")", blk.OverlapRatio, blk.InWindow, blk.Hi-blk.Lo)
		if p.Executed {
			if blk.Skipped {
				b.WriteString(", skipped")
			} else {
				fmt.Fprintf(&b, ", %d found in %v", blk.Found, blk.Duration)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Explain runs top-down block selection for the window [ts, te) with the
// index's configured τ and reports what a query would search, without
// searching. Use ExplainTau to inspect a different threshold.
func (ix *Index) Explain(ts, te int64) Plan {
	return ix.ExplainTau(ts, te, ix.opts.Tau)
}

// ExplainTau is Explain with an explicit τ.
func (ix *Index) ExplainTau(ts, te int64, tau float64) Plan {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.store.Len() == 0 || ts >= te {
		return Plan{Tau: tau, WindowStart: ts, WindowEnd: te}
	}
	return ix.explainSelLocked(ix.selectBlocksLocked(ts, te, tau, nil), ts, te, tau)
}

// explainSelLocked renders selections into the static half of a Plan.
// Caller holds mu.
func (ix *Index) explainSelLocked(sel []selection, ts, te int64, tau float64) Plan {
	plan := Plan{Tau: tau, WindowStart: ts, WindowEnd: te}
	for _, s := range sel {
		bts, bte := ix.blockWindowLocked(s.lo, s.hi)
		ro := 1.0
		if bte > bts {
			ro = float64(min64(bte, te)-max64(bts, ts)) / float64(bte-bts)
		}
		if ro > 1 {
			ro = 1
		}
		inWindow := countInWindow(ix.times[s.lo:s.hi], ts, te)
		height := -1
		if !s.openLeaf {
			height = ix.heightOfRangeLocked(s.lo, s.hi)
		}
		plan.Blocks = append(plan.Blocks, BlockPlan{
			Lo: s.lo, Hi: s.hi,
			Height:      height,
			WindowStart: bts, WindowEnd: bte,
			OverlapRatio: ro,
			InWindow:     inWindow,
			BruteForce:   s.openLeaf,
			Compressed:   s.codes != nil,
			Cold:         s.cold,
		})
		plan.TotalInWindow += inWindow
	}
	return plan
}

// SearchExplainContext answers the query through the shared executor and
// returns the results together with the *executed* plan: the static
// Explain fields annotated with per-block timings, skip flags, stage
// durations, and the Partial flag. It is the EXPLAIN ANALYZE counterpart
// of Explain. A nil rng draws entry points from a plan-local query-hash
// entropy source, as in SearchTauContext.
func (ix *Index) SearchExplainContext(ctx context.Context, q []float32, k int, ts, te int64, tau float64, p graph.SearchParams, rng *rand.Rand) ([]theap.Neighbor, Plan) {
	if k <= 0 || ts >= te {
		return nil, Plan{Tau: tau, WindowStart: ts, WindowEnd: te}
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.store.Len() == 0 {
		return nil, Plan{Tau: tau, WindowStart: ts, WindowEnd: te}
	}
	scr := getScratch()
	eplan, sel, selDur := ix.planTimedLocked(scr, q, k, ts, te, tau, p, rng)
	res, out := ix.executor.RunScratch(ctx, eplan, &scr.ex)
	res = exec.CopyNeighbors(res)

	plan := ix.explainSelLocked(sel, ts, te, tau)
	plan.Executed = true
	plan.Partial = out.Partial
	plan.Select = selDur
	plan.Search = out.Search
	plan.Merge = out.Merge
	plan.Rerank = out.Rerank
	plan.Fetch = out.Fetch
	// planLocked emits exactly one subtask per selection, in order, so the
	// executed results annotate the static blocks 1:1. The annotations are
	// copied out of the outcome before the scratch is returned to its pool.
	for i := range plan.Blocks {
		sr := out.Subtasks[i]
		plan.Blocks[i].Duration = sr.Duration
		plan.Blocks[i].Skipped = sr.Skipped
		plan.Blocks[i].Found = sr.Found
		plan.Blocks[i].Fetch = sr.Fetch
		// A cold block's compressed flag is only knowable once the fetch
		// resolved the payload; the executed kind carries it.
		if sr.Cold && sr.Kind == exec.CompressedGraph {
			plan.Blocks[i].Compressed = true
		}
	}
	putScratch(scr)
	return res, plan
}

// heightOfRangeLocked resolves a selected range back to its block height.
// Selection only returns ranges of real blocks, so the lookup always hits.
func (ix *Index) heightOfRangeLocked(lo, hi int) int {
	for i := len(ix.blocks) - 1; i >= 0; i-- {
		if ix.blocks[i].Lo == lo && ix.blocks[i].Hi == hi {
			return ix.blocks[i].Height
		}
	}
	return -1
}

// countInWindow counts timestamps in [ts, te) within a sorted slice.
func countInWindow(times []int64, ts, te int64) int {
	lo, hi := 0, len(times)
	for lo < hi {
		mid := (lo + hi) / 2
		if times[mid] < ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	lo, hi = start, len(times)
	for lo < hi {
		mid := (lo + hi) / 2
		if times[mid] < te {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - start
}
