package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/vec"
)

// execTestIndex builds a small multi-block index: leaf 32 over 300
// clustered vectors gives a forest of sealed graph blocks plus an open
// leaf.
func execTestIndex(t *testing.T) (*Index, [][]float32) {
	t.Helper()
	ix, err := New(Options{
		Dim: 8, Metric: vec.Euclidean, LeafSize: 32, Tau: 0.5,
		Builder: nndescent.MustNew(nndescent.DefaultConfig(8)),
		Search:  graph.SearchParams{MC: 16, Eps: 1.4},
		Workers: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	vs := make([][]float32, 300)
	for i := range vs {
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vs[i] = v
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return ix, vs
}

// TestSearchEquivalentAcrossWorkerCounts is the plan/execute split's core
// promise: entry seeds are drawn at plan time and subtasks cover disjoint
// id ranges, so the merged result is identical for every worker count.
func TestSearchEquivalentAcrossWorkerCounts(t *testing.T) {
	ix, vs := execTestIndex(t)
	windows := [][2]int64{{0, 300}, {10, 290}, {64, 200}, {250, 300}, {0, 40}}
	type key struct {
		q int
		w int
	}
	want := map[key][]int32{}
	for _, workers := range []int{1, 2, 4, 16} {
		ix.SetQueryWorkers(workers)
		for qi := 0; qi < 20; qi++ {
			q := vs[qi*13]
			for wi, win := range windows {
				res, out := ix.SearchContext(context.Background(), q, 5, win[0], win[1])
				if out.Partial {
					t.Fatalf("workers=%d q=%d win=%v: partial without cancellation", workers, qi, win)
				}
				ids := make([]int32, len(res))
				for i, n := range res {
					ids[i] = n.ID
				}
				k := key{qi, wi}
				if prev, ok := want[k]; !ok {
					want[k] = ids
				} else if !reflect.DeepEqual(ids, prev) {
					t.Fatalf("workers=%d q=%d win=%v: ids %v, want %v (workers=1)", workers, qi, win, ids, prev)
				}
			}
		}
	}
}

// TestSearchContextCancel: a dead context yields no results and a partial
// outcome, and re-running with a live context works (nothing leaked or
// wedged).
func TestSearchContextCancel(t *testing.T) {
	ix, vs := execTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, out := ix.SearchContext(ctx, vs[0], 3, 0, 300)
	if len(res) != 0 {
		t.Fatalf("canceled search returned %v", res)
	}
	if !out.Partial {
		t.Fatal("canceled search not marked partial")
	}
	res, out = ix.SearchContext(context.Background(), vs[0], 3, 0, 300)
	if out.Partial || len(res) == 0 {
		t.Fatalf("follow-up search broken: partial=%v res=%v", out.Partial, res)
	}
}

// TestSearchDeterministicPerQuery: with no explicit rng, a query's result
// depends only on the query (entry seeds hash from the vector), not on
// call order or interleaving with other queries.
func TestSearchDeterministicPerQuery(t *testing.T) {
	ix, vs := execTestIndex(t)
	first := ix.Search(vs[7], 4, 0, 300)
	for i := 0; i < 5; i++ {
		ix.Search(vs[i*31], 2, 0, 300) // interleave other queries
		if got := ix.Search(vs[7], 4, 0, 300); !reflect.DeepEqual(got, first) {
			t.Fatalf("repeat %d: %v, want %v", i, got, first)
		}
	}
}
