package core

import (
	"context"
	"fmt"

	"repro/internal/blockcache"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/sq"
)

// SpillConfig wires tiered storage into an index. The I/O endpoints are
// injected as closures because the segment codec lives in
// internal/persist, which imports core: the facade (package tknn) owns
// both and connects them.
type SpillConfig struct {
	// Write durably persists one block's payload as an independently
	// loadable segment (write to a temp file, fsync, rename) and returns
	// its on-disk byte size. SpillCold only releases a block's RAM after
	// Write returns nil, so a failed or torn write never loses state.
	Write func(id, lo, hi, height int, g *graph.CSR, c *sq.Codes) (int64, error)
	// Load reads one spilled block's payload back. It runs inside the
	// block cache's loader — possibly while queries hold the index read
	// lock — so it must not touch the index.
	Load blockcache.LoadFunc
	// MaxHeight is the cold threshold: sealed blocks of height <=
	// MaxHeight are spill-eligible; taller blocks (the upper levels that
	// nearly every query selects) stay RAM-resident, as does the open
	// leaf, which is never a block at all.
	MaxHeight int
	// CacheBytes bounds the resident bytes of paged-in cold payloads;
	// <= 0 means unbounded.
	CacheBytes int64
}

func (c *SpillConfig) validate() error {
	if c.Write == nil || c.Load == nil {
		return fmt.Errorf("mbi: SpillConfig requires both Write and Load")
	}
	if c.MaxHeight < 0 {
		return fmt.Errorf("mbi: SpillConfig.MaxHeight must be non-negative, got %d", c.MaxHeight)
	}
	return nil
}

// newBlockCache builds the block cache for opts; nil when tiered
// storage is disabled.
func newBlockCache(opts Options) *blockcache.Cache {
	if opts.Spill == nil {
		return nil
	}
	return blockcache.New(opts.Spill.CacheBytes, opts.Spill.Load)
}

// spillCand snapshots one cold candidate so segment writes can run
// outside the index locks: blocks are immutable once installed, so the
// graph and codes pointers stay valid after the read lock is released.
type spillCand struct {
	id, lo, hi, height int
	g                  *graph.CSR
	codes              *sq.Codes
}

// SpillCold writes every cold block (sealed, height <= Spill.MaxHeight,
// still RAM-resident) to its own segment and releases the in-RAM graph
// and codes only after the segment write has returned — so a crash or
// write failure at any point leaves the index lossless. It returns the
// number of blocks spilled and their total segment bytes. With no spill
// configured it is a no-op.
//
// The WAL manager calls this (through the wal.Spiller interface) at the
// start of every checkpoint, so the snapshot that records a block as
// spilled is always written after the block's segment is durable.
// SpillCold is single-writer, like Append: concurrent callers may write
// the same segment twice (harmless — block payloads are deterministic)
// but must not interleave with each other.
func (ix *Index) SpillCold() (int, int64, error) {
	cfg := ix.opts.Spill
	if cfg == nil {
		return 0, 0, nil
	}
	ix.mu.RLock()
	var cands []spillCand
	for id, b := range ix.blocks {
		if !b.Spilled && b.Height <= cfg.MaxHeight {
			cands = append(cands, spillCand{id: id, lo: b.Lo, hi: b.Hi, height: b.Height, g: b.Graph, codes: b.Codes})
		}
	}
	ix.mu.RUnlock()
	if len(cands) == 0 {
		return 0, 0, nil
	}

	// Segment writes run unlocked; appends and queries proceed. A failed
	// write aborts the pass with the blocks written so far released and
	// the rest untouched — never a half-released block.
	written := make([]int64, 0, len(cands))
	var total int64
	for i, c := range cands {
		n, err := cfg.Write(c.id, c.lo, c.hi, c.height, c.g, c.codes)
		if err != nil {
			ix.releaseSpilled(cands[:i], written)
			return i, total, fmt.Errorf("mbi: spilling block %d [%d,%d): %w", c.id, c.lo, c.hi, err)
		}
		written = append(written, n)
		total += n
	}
	ix.releaseSpilled(cands, written)
	return len(cands), total, nil
}

// releaseSpilled drops the RAM payload of blocks whose segments are
// durable. Caller must not hold mu.
func (ix *Index) releaseSpilled(cands []spillCand, bytes []int64) {
	if len(cands) == 0 {
		return
	}
	ix.mu.Lock()
	for i, c := range cands {
		b := &ix.blocks[c.id]
		if b.Spilled {
			continue
		}
		b.Graph = nil
		b.Codes = nil
		b.Spilled = true
		b.SegBytes = bytes[i]
	}
	if invariant.Enabled {
		invariant.NoError(ix.checkInvariantsLocked(), "mbi: after spill release")
	}
	ix.mu.Unlock()
}

// SetCacheBytes replaces the block cache with a fresh one bounded to n
// bytes (n <= 0 unbounded). Counters reset and the resident set starts
// empty; used by the tier benchmark to sweep budgets. Panics without
// tiered storage configured.
func (ix *Index) SetCacheBytes(n int64) {
	if ix.opts.Spill == nil {
		panic("mbi: SetCacheBytes without Options.Spill")
	}
	ix.mu.Lock()
	ix.cache = blockcache.New(n, ix.opts.Spill.Load)
	ix.mu.Unlock()
}

// CacheStats reports the block cache counters; ok is false when tiered
// storage is disabled.
func (ix *Index) CacheStats() (blockcache.Stats, bool) {
	ix.mu.RLock()
	c := ix.cache
	ix.mu.RUnlock()
	if c == nil {
		return blockcache.Stats{}, false
	}
	return c.Stats(), true
}

// FetchBlock pages one spilled block's payload through the cache and
// returns it unpinned — for tests and diagnostics, not the query path
// (the executor pins across its kernels).
func (ix *Index) FetchBlock(ctx context.Context, id int) (blockcache.Value, error) {
	ix.mu.RLock()
	c := ix.cache
	ix.mu.RUnlock()
	if c == nil {
		return blockcache.Value{}, fmt.Errorf("mbi: tiered storage not configured")
	}
	v, err := c.Get(ctx, uint64(id))
	if err != nil {
		return blockcache.Value{}, err
	}
	c.Unpin(uint64(id))
	return v, nil
}
