package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/bsbf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/theap"
)

// The paper's §5.4.2 closes with: "If possible, one can compute the
// optimal τ for each query interval experimentally beforehand, and use
// the pre-computed τ at run-time." This file implements that suggestion:
// TuneTau measures query throughput across a τ grid for a ladder of
// window fractions, producing a TauTable that SearchAutoTau consults per
// query based on how much of the database the window covers.

// TauTable maps a query window's coverage fraction to the τ that measured
// fastest for that regime.
type TauTable struct {
	// Fractions are ascending bucket upper bounds in (0, 1]; a window
	// covering fraction f uses the first bucket with Fractions[i] >= f.
	Fractions []float64
	// Taus[i] is the tuned threshold for bucket i.
	Taus []float64
}

// TauFor returns the tuned τ for a window covering fraction f of the
// database. It must only be called on a table returned by TuneTau.
func (t *TauTable) TauFor(f float64) float64 {
	i := sort.SearchFloat64s(t.Fractions, f)
	if i >= len(t.Taus) {
		i = len(t.Taus) - 1
	}
	return t.Taus[i]
}

// TunerConfig controls TuneTau's measurement grid.
type TunerConfig struct {
	// Taus is the candidate grid. Empty means {0.1 ... 0.9} by 0.2.
	Taus []float64
	// Fractions are the window-coverage bucket bounds. Empty means
	// {0.02, 0.1, 0.3, 0.6, 1.0}.
	Fractions []float64
	// QueriesPerBucket is the number of sampled (query, window) pairs per
	// bucket per τ. Zero means 30.
	QueriesPerBucket int
	// K is the result count to tune for. Zero means 10.
	K int
	// Search supplies the Algorithm 2 parameters used while measuring.
	// A zero value uses the index defaults.
	Search graph.SearchParams
	// Seed drives query sampling. Zero means 1.
	Seed int64
}

func (c *TunerConfig) applyDefaults(ix *Index) error {
	if len(c.Taus) == 0 {
		c.Taus = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{0.02, 0.1, 0.3, 0.6, 1.0}
	}
	if !sort.Float64sAreSorted(c.Fractions) {
		return fmt.Errorf("mbi: tuner fractions must be ascending, got %v", c.Fractions)
	}
	for _, tau := range c.Taus {
		if tau <= 0 || tau > 1 {
			return fmt.Errorf("mbi: tuner tau %g out of (0, 1]", tau)
		}
	}
	if c.QueriesPerBucket == 0 {
		c.QueriesPerBucket = 30
	}
	if c.QueriesPerBucket < 0 {
		return fmt.Errorf("mbi: negative QueriesPerBucket")
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.K < 0 {
		return fmt.Errorf("mbi: negative K")
	}
	if c.Search == (graph.SearchParams{}) {
		c.Search = ix.opts.Search
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// TuneTau measures, for each window-fraction bucket, which τ answers
// sampled queries fastest on this index, and returns the resulting table.
// Query vectors are sampled from the indexed data itself; windows are
// sampled uniformly at each bucket's fraction. The index must hold data.
//
// Tuning runs real searches and therefore takes time proportional to
// len(Taus) × len(Fractions) × QueriesPerBucket queries.
func (ix *Index) TuneTau(cfg TunerConfig) (*TauTable, error) {
	if err := cfg.applyDefaults(ix); err != nil {
		return nil, err
	}
	n := ix.Len()
	if n == 0 {
		return nil, fmt.Errorf("mbi: cannot tune an empty index")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	table := &TauTable{Fractions: cfg.Fractions}

	for _, frac := range cfg.Fractions {
		// Pre-sample the workload once per bucket so every τ measures the
		// same queries.
		type workItem struct {
			q      []float32
			ts, te int64
		}
		items := make([]workItem, cfg.QueriesPerBucket)
		ix.mu.RLock()
		for i := range items {
			wlen := int(frac * float64(n))
			if wlen < 1 {
				wlen = 1
			}
			start := 0
			if n > wlen {
				start = rng.Intn(n - wlen + 1)
			}
			ts := ix.times[start]
			var te int64
			if start+wlen < n {
				te = ix.times[start+wlen]
			} else {
				te = ix.times[n-1] + 1
			}
			items[i] = workItem{q: ix.store.At(rng.Intn(n)), ts: ts, te: te}
		}
		ix.mu.RUnlock()

		// Two repetitions per τ, scored by the faster one: a single pass is
		// vulnerable to GC pauses and cache effects, and a wrong τ choice
		// persists for the index's lifetime.
		bestTau, bestTime := cfg.Taus[0], time.Duration(1<<62)
		for _, tau := range cfg.Taus {
			var fastest time.Duration = 1 << 62
			for rep := 0; rep < 2; rep++ {
				qrng := rand.New(rand.NewSource(cfg.Seed + int64(tau*1000) + int64(rep)))
				start := time.Now()
				for _, it := range items {
					ix.SearchTau(it.q, cfg.K, it.ts, it.te, tau, cfg.Search, qrng)
				}
				if elapsed := time.Since(start); elapsed < fastest {
					fastest = elapsed
				}
			}
			if fastest < bestTime {
				bestTau, bestTime = tau, fastest
			}
		}
		table.Taus = append(table.Taus, bestTau)
	}
	return table, nil
}

// SearchAutoTauDefault is SearchAutoTau with the index's default search
// parameters and internal entry randomness, mirroring Search.
func (ix *Index) SearchAutoTauDefault(q []float32, k int, ts, te int64, table *TauTable) []theap.Neighbor {
	return ix.SearchAutoTau(q, k, ts, te, table, ix.opts.Search, nil)
}

// SearchAutoTau answers a TkNN query using the tuned τ for the window's
// coverage fraction — the run-time half of §5.4.2's suggestion. The
// fraction is computed with two binary searches, so the overhead over
// SearchTau is O(log n). A nil rng draws entry points from a plan-local
// query-hash entropy source, as in SearchTauContext.
func (ix *Index) SearchAutoTau(q []float32, k int, ts, te int64, table *TauTable, p graph.SearchParams, rng *rand.Rand) []theap.Neighbor {
	res, _ := ix.SearchAutoTauContext(context.Background(), q, k, ts, te, table, p, rng)
	return res
}

// SearchAutoTauContext is SearchAutoTau through the shared executor, with
// cancellation/deadline semantics and the stage-timing outcome of
// SearchTauContext.
func (ix *Index) SearchAutoTauContext(ctx context.Context, q []float32, k int, ts, te int64, table *TauTable, p graph.SearchParams, rng *rand.Rand) ([]theap.Neighbor, exec.Outcome) {
	ix.mu.RLock()
	n := ix.store.Len()
	var frac float64
	if n > 0 {
		lo, hi := bsbf.WindowOf(ix.times, ts, te)
		frac = float64(hi-lo) / float64(n)
	}
	ix.mu.RUnlock()
	return ix.SearchTauContext(ctx, q, k, ts, te, table.TauFor(frac), p, rng)
}
