package core

import (
	"fmt"

	"repro/internal/bsbf"
)

// validateSelectionLocked checks the correctness contract of top-down
// block selection (Algorithm 4) for the window [ts, te):
//
//  1. Every selected range is a valid, non-empty slice of the database.
//  2. The ranges are emitted in timestamp order and are pairwise disjoint
//     in row space — a vector searched twice would double its weight in
//     the merge and signal overlapping block windows.
//  3. The union of the ranges covers every vector whose timestamp falls in
//     the window: selection may over-approximate (τ admits blocks that
//     spill past the window; the per-block time filter trims them) but
//     must never drop an in-window vector, or recall silently decays.
//
// Callers hold mu (read suffices) and wrap the call in an
// invariant.Enabled guard; the coverage scan is O(window size).
func (ix *Index) validateSelectionLocked(sel []selection, ts, te int64) error {
	n := ix.store.Len()
	for i, s := range sel {
		if s.lo < 0 || s.hi > n || s.lo >= s.hi {
			return fmt.Errorf("mbi: selection %d has range [%d,%d) outside [0,%d)", i, s.lo, s.hi, n)
		}
		if i > 0 && s.lo < sel[i-1].hi {
			return fmt.Errorf("mbi: selections %d and %d overlap: [%d,%d) then [%d,%d)",
				i-1, i, sel[i-1].lo, sel[i-1].hi, s.lo, s.hi)
		}
	}
	lo, hi := bsbf.WindowOf(ix.times, ts, te)
	cur := lo
	for _, s := range sel {
		if s.hi <= cur {
			continue
		}
		if s.lo > cur {
			break // gap at cur: reported below
		}
		cur = s.hi
		if cur >= hi {
			break
		}
	}
	if cur < hi {
		return fmt.Errorf("mbi: selection misses in-window vector %d (t=%d, window [%d,%d))",
			cur, ix.times[cur], ts, te)
	}
	return nil
}
