package core

import (
	"math/rand"
	"testing"

	"repro/internal/bsbf"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/theap"
	"repro/internal/vec"
)

// testOptions returns small, fast options for structural tests.
func testOptions(leafSize int) Options {
	return Options{
		Dim:      8,
		Metric:   vec.Euclidean,
		LeafSize: leafSize,
		Tau:      0.5,
		Builder:  nndescent.MustNew(nndescent.DefaultConfig(8)),
		Search:   graph.SearchParams{MC: 32, Eps: 1.2},
		Seed:     1,
	}
}

// fill inserts n clustered vectors with timestamps 0..n-1.
func fill(t testing.TB, ix *Index, seed int64, n int) [][]float32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dim := ix.Options().Dim
	centers := make([][]float32, 6)
	for c := range centers {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = v
	}
	out := make([][]float32, n)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(len(centers))]
		v := make([]float32, dim)
		// Overlapping clusters (noise comparable to center separation):
		// the geometry of real embedding clouds, and the regime where
		// single-entry graph search is reliable.
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.6)
		}
		out[i] = v
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestOptionsValidation(t *testing.T) {
	good := testOptions(16)
	bad := []func(*Options){
		func(o *Options) { o.Dim = 0 },
		func(o *Options) { o.Metric = vec.Metric(9) },
		func(o *Options) { o.LeafSize = 0 },
		func(o *Options) { o.Tau = 0 },
		func(o *Options) { o.Tau = 1.5 },
		func(o *Options) { o.Builder = nil },
		func(o *Options) { o.Workers = -1 },
	}
	for i, mutate := range bad {
		o := good
		mutate(&o)
		if _, err := New(o); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(good); err != nil {
		t.Errorf("good options rejected: %v", err)
	}
}

func TestAppendValidation(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float32, 8)
	if err := ix.Append(v, 10); err != nil {
		t.Fatal(err)
	}
	if err := ix.Append(v, 9); err == nil {
		t.Error("decreasing timestamp accepted")
	}
	if err := ix.Append(v, 10); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
	if err := ix.Append(make([]float32, 3), 11); err == nil {
		t.Error("wrong dimension accepted")
	}
}

// TestTreeGrowth walks insertion through several leaf fills and checks the
// block/forest structure against the paper's figures at each step.
func TestTreeGrowth(t *testing.T) {
	const sl = 4
	ix, err := New(testOptions(sl))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 1, 16) // Figure 1's scenario: 16 vectors, S_L = 4

	st := ix.Stats()
	// Perfect tree over 16 vectors with S_L=4: 4 leaves + 2 + 1 = 7 blocks.
	if st.NumBlocks != 7 {
		t.Errorf("blocks = %d, want 7", st.NumBlocks)
	}
	if st.TreeHeight != 2 {
		t.Errorf("height = %d, want 2", st.TreeHeight)
	}
	if len(st.ForestHeights) != 1 || st.ForestHeights[0] != 2 {
		t.Errorf("forest heights = %v, want [2]", st.ForestHeights)
	}
	if st.OpenLeafFill != 0 {
		t.Errorf("open leaf fill = %d, want 0", st.OpenLeafFill)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}

	// Postorder numbering per Figure 1: blocks 0,1 are leaves, block 2
	// their parent, 3,4 leaves, 5 their parent, 6 the root.
	blocks := ix.Blocks()
	wantHeights := []int{0, 0, 1, 0, 0, 1, 2}
	for i, h := range wantHeights {
		if blocks[i].Height != h {
			t.Errorf("block %d height = %d, want %d", i, blocks[i].Height, h)
		}
	}
	if blocks[6].Lo != 0 || blocks[6].Hi != 16 {
		t.Errorf("root covers [%d, %d), want [0, 16)", blocks[6].Lo, blocks[6].Hi)
	}
}

// TestIncrementalGrowthInvariants drives many different insert counts and
// leaf sizes through the invariant checker.
func TestIncrementalGrowthInvariants(t *testing.T) {
	for _, sl := range []int{1, 2, 3, 5, 8} {
		ix, err := New(testOptions(sl))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(sl)))
		total := sl*16 + rng.Intn(sl*4)
		v := make([]float32, 8)
		for i := 0; i < total; i++ {
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			if err := ix.Append(v, int64(i)); err != nil {
				t.Fatal(err)
			}
			if i%7 == 0 {
				if err := ix.CheckInvariants(); err != nil {
					t.Fatalf("S_L=%d after %d inserts: %v", sl, i+1, err)
				}
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("S_L=%d final: %v", sl, err)
		}
		// Block count: every sealed leaf creates exactly one leaf block,
		// and a perfect forest over L leaves has 2L - popcount-ish blocks;
		// cheaper check: count equals sum over forest of (2^(h+1) - 1)
		// per root.
		st := ix.Stats()
		want := 0
		for _, h := range st.ForestHeights {
			want += 1<<(uint(h)+1) - 1
		}
		if st.NumBlocks != want {
			t.Errorf("S_L=%d: %d blocks, want %d (forest %v)", sl, st.NumBlocks, want, st.ForestHeights)
		}
	}
}

func TestAppendBatchEquivalence(t *testing.T) {
	a, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, a, 3, 37)
	ts := make([]int64, len(vs))
	for i := range ts {
		ts[i] = int64(i)
	}
	if err := b.AppendBatch(vs, ts); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.NumBlocks != sb.NumBlocks || sa.OpenLeafFill != sb.OpenLeafFill || sa.GraphEdges != sb.GraphEdges {
		t.Errorf("batch and loop insert diverge: %+v vs %+v", sa, sb)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAppendBatchValidation(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AppendBatch([][]float32{make([]float32, 8)}, []int64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := ix.AppendBatch([][]float32{make([]float32, 8), make([]float32, 8)}, []int64{5, 3}); err == nil {
		t.Error("decreasing timestamps accepted")
	}
}

// TestSelectionCoverProperty: the selected blocks must tile the query
// window — disjoint ranges whose union contains exactly the in-window
// vectors, possibly with extra out-of-window vectors at the edges (graph
// search filters those).
func TestSelectionCoverProperty(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 5, 71) // forest with several roots and a partial open leaf
	times := ix.Times()
	n := len(times)
	rng := rand.New(rand.NewSource(6))
	for _, tau := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		for trial := 0; trial < 200; trial++ {
			a := rng.Intn(n)
			b := a + 1 + rng.Intn(n-a)
			ts, te := int64(a), int64(b) // timestamps are 0..n-1
			ranges := ix.SelectedRanges(ts, te, tau)
			// Disjoint and ordered.
			for i := 1; i < len(ranges); i++ {
				if ranges[i][0] < ranges[i-1][1] {
					t.Fatalf("tau=%g window [%d,%d): overlapping ranges %v", tau, ts, te, ranges)
				}
			}
			// Cover: every in-window vector is inside some selected range.
			covered := func(idx int) bool {
				for _, r := range ranges {
					if idx >= r[0] && idx < r[1] {
						return true
					}
				}
				return false
			}
			wlo, whi := bsbf.WindowOf(times, ts, te)
			for idx := wlo; idx < whi; idx++ {
				if !covered(idx) {
					t.Fatalf("tau=%g window [%d,%d): vector %d not covered by %v", tau, ts, te, idx, ranges)
				}
			}
		}
	}
}

// TestLemma41 verifies Lemma 4.1: on a complete tree (no open leaf, single
// forest root), at most two blocks are selected when τ <= 0.5.
func TestLemma41(t *testing.T) {
	const sl = 4
	ix, err := New(testOptions(sl))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 7, 64) // 64 = 4 * 2^4: perfect tree
	st := ix.Stats()
	if len(st.ForestHeights) != 1 || st.OpenLeafFill != 0 {
		t.Fatalf("setup: tree not complete (forest %v, open %d)", st.ForestHeights, st.OpenLeafFill)
	}
	rng := rand.New(rand.NewSource(8))
	for _, tau := range []float64{0.1, 0.25, 0.5} {
		for trial := 0; trial < 500; trial++ {
			a := rng.Intn(64)
			b := a + 1 + rng.Intn(64-a)
			if got := ix.SelectedBlockCount(int64(a), int64(b), tau); got > 2 {
				t.Fatalf("tau=%g window [%d,%d): %d blocks selected, lemma bounds 2", tau, a, b, got)
			}
		}
	}
	// Sanity: for some window, selection is not always a single block.
	multi := false
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(64)
		b := a + 1 + rng.Intn(64-a)
		if ix.SelectedBlockCount(int64(a), int64(b), 0.5) == 2 {
			multi = true
			break
		}
	}
	if !multi {
		t.Error("selection never used 2 blocks at tau=0.5; test is vacuous")
	}
}

// TestTauExtremes checks Figure 4's intuition: τ→0 selects blocks near the
// root (few), τ→1 selects leaves (many).
func TestTauExtremes(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 9, 64)
	// A window covering half the data, misaligned with block boundaries.
	ts, te := int64(13), int64(45)
	lo := ix.SelectedBlockCount(ts, te, 0.01)
	hi := ix.SelectedBlockCount(ts, te, 1.0)
	if lo > 2 {
		t.Errorf("tau=0.01 selected %d blocks, want <= 2", lo)
	}
	if hi <= lo {
		t.Errorf("tau=1.0 selected %d blocks, not more than tau=0.01's %d", hi, lo)
	}
	// With tau=1, internal blocks require r_o > 1 which is impossible, so
	// every selected block is a leaf.
	ranges := ix.SelectedRanges(ts, te, 1.0)
	for _, r := range ranges {
		if r[1]-r[0] != 4 {
			t.Errorf("tau=1.0 selected non-leaf range %v", r)
		}
	}
}

// TestSearchExactOnTinyWindows: windows that resolve to brute-force-sized
// sets must return exact answers (they hit leaf blocks or the open leaf).
func TestSearchExactWithinOpenLeaf(t *testing.T) {
	ix, err := New(testOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, ix, 11, 20) // 2 sealed leaves + 4 in the open leaf
	// Window entirely inside the open leaf (timestamps 16..19).
	res := ix.Search(vs[18], 2, 16, 20)
	if len(res) != 2 || res[0].ID != 18 || res[0].Dist != 0 {
		t.Fatalf("open-leaf search = %v, want id 18 first", res)
	}
}

func TestSearchEmptyAndDegenerate(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Search(make([]float32, 8), 3, 0, 10); got != nil {
		t.Errorf("empty index search = %v", got)
	}
	vs := fill(t, ix, 13, 10)
	if got := ix.Search(vs[0], 0, 0, 10); got != nil {
		t.Errorf("k=0 search = %v", got)
	}
	if got := ix.Search(vs[0], 3, 7, 7); got != nil {
		t.Errorf("empty window search = %v", got)
	}
	if got := ix.Search(vs[0], 3, 100, 200); len(got) != 0 {
		t.Errorf("out-of-range window = %v", got)
	}
}

// TestSearchResultsRespectWindow fuzzes windows and checks every result
// lies inside, has correct distances, and is sorted.
func TestSearchResultsRespectWindow(t *testing.T) {
	ix, err := New(testOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, ix, 15, 200)
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 100; trial++ {
		a := rng.Intn(200)
		b := a + 1 + rng.Intn(200-a)
		q := vs[rng.Intn(len(vs))]
		res := ix.SearchWith(q, 5, int64(a), int64(b), graph.SearchParams{MC: 32, Eps: 1.3}, rng)
		for i, r := range res {
			if int(r.ID) < a || int(r.ID) >= b {
				t.Fatalf("result id %d outside window [%d, %d)", r.ID, a, b)
			}
			want := vec.SquaredL2(q, vs[r.ID])
			if r.Dist != want {
				t.Fatalf("result dist %g, recomputed %g", r.Dist, want)
			}
			if i > 0 && theap.Less(r, res[i-1]) {
				t.Fatal("results not sorted")
			}
		}
	}
}

// TestRecallAgainstExact is the core end-to-end quality gate: MBI must
// achieve high recall across short, medium, and long windows.
func TestRecallAgainstExact(t *testing.T) {
	opts := testOptions(64)
	opts.Builder = nndescent.MustNew(nndescent.DefaultConfig(12))
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, ix, 17, 2000)
	exact, err := bsbf.FromData(ix.Store(), ix.Times(), vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	p := graph.SearchParams{MC: 48, Eps: 1.3}
	const k = 10
	for _, frac := range []float64{0.02, 0.1, 0.3, 0.8, 1.0} {
		var recall float64
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			wlen := int(frac * 2000)
			if wlen < 1 {
				wlen = 1
			}
			a := rng.Intn(2000 - wlen + 1)
			ts, te := int64(a), int64(a+wlen)
			q := vs[rng.Intn(len(vs))]
			got := ix.SearchWith(q, k, ts, te, p, rng)
			want := exact.Search(q, k, ts, te)
			if len(want) == 0 {
				recall++
				continue
			}
			kk := k
			if len(want) < kk {
				kk = len(want)
			}
			threshold := want[kk-1].Dist * 1.00001
			hits := 0
			for i, r := range got {
				if i >= kk {
					break
				}
				if r.Dist <= threshold {
					hits++
				}
			}
			recall += float64(hits) / float64(kk)
		}
		recall /= trials
		if recall < 0.85 {
			t.Errorf("window fraction %.2f: recall@%d = %.3f, want >= 0.85", frac, k, recall)
		}
	}
}

// TestParallelBuildEquivalence: Workers > 1 must produce exactly the same
// index as sequential building (same seeds per block).
func TestParallelBuildEquivalence(t *testing.T) {
	seq := testOptions(4)
	par := testOptions(4)
	par.Workers = 4
	a, err := New(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(par)
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, a, 19, 64)
	for i, v := range vs {
		if err := b.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ba, bb := a.Blocks(), b.Blocks()
	if len(ba) != len(bb) {
		t.Fatalf("block counts differ: %d vs %d", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i].Lo != bb[i].Lo || ba[i].Hi != bb[i].Hi || ba[i].Height != bb[i].Height {
			t.Fatalf("block %d metadata differs", i)
		}
		if ba[i].Graph.NumEdges() != bb[i].Graph.NumEdges() {
			t.Fatalf("block %d edge counts differ", i)
		}
		for j := range ba[i].Graph.Adj {
			if ba[i].Graph.Adj[j] != bb[i].Graph.Adj[j] {
				t.Fatalf("block %d adjacency differs at %d", i, j)
			}
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestConcurrentSearches hammers SearchWith from several goroutines while
// results are checked for window containment. Heavier mixed
// append/search/seal workloads live in stress_race_test.go and run under
// `go test -race` (the `make race` target).
func TestConcurrentSearches(t *testing.T) {
	ix, err := New(testOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, ix, 21, 300)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				a := rng.Intn(300)
				b := a + 1 + rng.Intn(300-a)
				res := ix.SearchWith(vs[rng.Intn(len(vs))], 5, int64(a), int64(b),
					graph.SearchParams{MC: 32, Eps: 1.2}, rng)
				for _, r := range res {
					if int(r.ID) < a || int(r.ID) >= b {
						done <- errOutOfWindow
						return
					}
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errOutOfWindow = errorString("result outside window")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestSearchDuringAppends interleaves appends and searches; appends block
// searches via the write lock. The race-gated stress tests in
// stress_race_test.go scale this pattern up under the detector.
func TestSearchDuringAppends(t *testing.T) {
	ix, err := New(testOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 23, 50)
	stop := make(chan struct{})
	searchErr := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(24))
		q := make([]float32, 8)
		for {
			select {
			case <-stop:
				searchErr <- nil
				return
			default:
			}
			ix.SearchWith(q, 3, 0, 1<<40, graph.SearchParams{MC: 16, Eps: 1.1}, rng)
		}
	}()
	rng := rand.New(rand.NewSource(25))
	v := make([]float32, 8)
	for i := 0; i < 200; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(50+i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-searchErr; err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRestoreRoundTripState(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, ix, 27, 37)
	restored, err := Restore(ix.Options(), ix.Store(), ix.Times(), ix.Blocks(), ix.Forest(), ix.OpenLo())
	if err != nil {
		t.Fatal(err)
	}
	rng1 := rand.New(rand.NewSource(30))
	rng2 := rand.New(rand.NewSource(30))
	p := graph.SearchParams{MC: 32, Eps: 1.2}
	for trial := 0; trial < 20; trial++ {
		q := vs[trial%len(vs)]
		a := ix.SearchWith(q, 5, 0, 37, p, rng1)
		b := restored.SearchWith(q, 5, 0, 37, p, rng2)
		if len(a) != len(b) {
			t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("results differ at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 31, 16)
	blocks := ix.Blocks()
	blocks[0].Hi++ // corrupt a range
	if _, err := Restore(ix.Options(), ix.Store(), ix.Times(), blocks, ix.Forest(), ix.OpenLo()); err == nil {
		t.Error("corrupt block range accepted")
	}
	forest := ix.Forest()
	forest[0] = 999
	if _, err := Restore(ix.Options(), ix.Store(), ix.Times(), ix.Blocks(), forest, ix.OpenLo()); err == nil {
		t.Error("corrupt forest accepted")
	}
}
