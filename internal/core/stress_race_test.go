//go:build race

// Race-detector stress tests. The `race` build tag is set automatically by
// `go test -race` (the `make race` target and the CI race step), so these
// run exactly when the detector is watching and stay out of plain
// `go test ./...`. They subsume the "run with -race" guidance that used to
// live only in comments on the lighter concurrency tests in this package.

package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

// stressSearchers starts n goroutines that hammer SearchWith, Stats, Len,
// and the selection planner over random windows until stop closes, checking
// window containment on every result. Returns a channel carrying one error
// (or nil) per goroutine.
func stressSearchers(ix *Index, n int, stop <-chan struct{}) chan error {
	errs := make(chan error, n)
	dim := ix.Options().Dim
	for g := 0; g < n; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			q := make([]float32, dim)
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				hi := int64(ix.Len())
				if hi < 2 {
					continue
				}
				for j := range q {
					q[j] = float32(rng.NormFloat64())
				}
				a := rng.Int63n(hi - 1)
				b := a + 1 + rng.Int63n(hi-a)
				res := ix.SearchWith(q, 5, a, b, graph.SearchParams{MC: 16, Eps: 1.2}, rng)
				for _, r := range res {
					if int64(r.ID) < a || int64(r.ID) >= b {
						errs <- errOutOfWindow
						return
					}
				}
				// Exercise the read-side planners and stats under the same
				// contention; their results are checked by other tests.
				ix.SelectedBlockCount(a, b, 0.5)
				ix.Stats()
			}
		}(int64(g))
	}
	return errs
}

// stressAppend drives total appends through ix from a single writer (the
// timestamp contract demands one), sealing a leaf every leafSize inserts so
// the merge cascade runs constantly under searcher fire.
func stressAppend(t *testing.T, ix *Index, seed int64, total int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dim := ix.Options().Dim
	v := make([]float32, dim)
	for i := 0; i < total; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStressSyncAppendSearchSeal hammers a synchronous index: one appender
// sealing and merging inline (leaf size 4 forces a cascade roughly every
// fourth insert) against a pack of searchers.
func TestStressSyncAppendSearchSeal(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	opts := testOptions(4)
	opts.Workers = 4 // parallel block builds race against searchers too
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errs := stressSearchers(ix, 6, stop)
	stressAppend(t, ix, 101, 1200)
	close(stop)
	for g := 0; g < 6; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if got := ix.Len(); got != 1200 {
		t.Errorf("len %d, want 1200", got)
	}
}

// TestStressAsyncAppendSearchSeal runs the same workload against an async
// index, where seals are installed by the background merge worker while
// searchers brute-force the pending gap. Flush happens only after the
// appender stops: Flush waits on the pending WaitGroup and must not run
// concurrently with Appends that Add to it.
func TestStressAsyncAppendSearchSeal(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	opts := asyncOptions(4)
	opts.Workers = 4
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	stop := make(chan struct{})
	errs := stressSearchers(ix, 6, stop)
	stressAppend(t, ix, 103, 1200)
	ix.Flush()
	close(stop)
	for g := 0; g < 6; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if ix.PendingBuilds() != 0 {
		t.Errorf("pending builds after flush: %d", ix.PendingBuilds())
	}
}

// TestStressAsyncCloseUnderSearch closes an async index while searchers are
// mid-flight from several goroutines at once: Close must be idempotent and
// post-close searches must keep working.
func TestStressAsyncCloseUnderSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	ix, err := New(asyncOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	stressAppend(t, ix, 107, 300)
	stop := make(chan struct{})
	errs := stressSearchers(ix, 4, stop)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ix.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	for g := 0; g < 4; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestStressBatchIngest drives AppendBatch (the server's ingestion path)
// under the detector: batched appends racing searchers.
func TestStressBatchIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	ix, err := New(asyncOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	stop := make(chan struct{})
	errs := stressSearchers(ix, 4, stop)
	rng := rand.New(rand.NewSource(109))
	const batch = 16
	for lo := 0; lo < 800; lo += batch {
		vs := make([][]float32, batch)
		ts := make([]int64, batch)
		for i := range vs {
			v := make([]float32, 8)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			vs[i] = v
			ts[i] = int64(lo + i)
		}
		if err := ix.AppendBatch(vs, ts); err != nil {
			t.Fatal(err)
		}
	}
	ix.Flush()
	close(stop)
	for g := 0; g < 4; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.Len(); got != 800 {
		t.Errorf("len %d, want 800", got)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
