package core

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/sq"
	"repro/internal/vec"
)

// Asynchronous merging (Options.AsyncMerge). The paper's Algorithm 3
// builds the sealed leaf's graph and every newly completed ancestor inside
// the insert call; for a streaming ingester that means an occasional
// Append stalls for the duration of a full-tree merge (see the
// musicstream example's p-max). With AsyncMerge the seal is handed to a
// single background worker:
//
//   - Append only appends; on a leaf fill it advances openLo and queues a
//     sealJob. Backpressure comes from the bounded job channel.
//   - The worker processes jobs in seal order. For each it decides the
//     merge cascade from the currently installed forest (identical to the
//     synchronous decision, since installs are serialized), builds every
//     graph from a lock-free store snapshot, then installs the blocks
//     under the write lock.
//   - Queries brute-force the gap [installedHi, openLo) plus the open
//     leaf, so results never miss data; they are exact over that gap.
//
// The block tree, numbering, seeds — and therefore the resulting index —
// are bit-identical to the synchronous path.

// mergeWorker drains the job queue. It exits when Close closes the queue.
func (ix *Index) mergeWorker() {
	for job := range ix.jobs {
		ix.processSeal(job)
		ix.pending.Done()
	}
}

// processSeal performs one seal + bottom-up merge asynchronously.
func (ix *Index) processSeal(job sealJob) {
	// Snapshot state under the read lock. The cascade decision only
	// depends on the installed forest, which no one else mutates (single
	// worker), so it remains valid at install time.
	ix.mu.RLock()
	type pending struct {
		lo, hi, height int
	}
	cascade := []pending{{job.lo, job.hi, 0}}
	curH := 0
	for i := len(ix.forest) - 1; i >= 0; i-- {
		root := ix.blocks[ix.forest[i]]
		if root.Height != curH {
			break
		}
		curH++
		cascade = append(cascade, pending{root.Lo, job.hi, curH})
	}
	base := len(ix.blocks)
	snap := ix.store.Snapshot()
	ix.mu.RUnlock()

	graphs := make([]*graph.CSR, len(cascade))
	codes := make([]*sq.Codes, len(cascade))
	build := func(i int) {
		p := cascade[i]
		view := vec.View{Store: snap, Lo: p.lo, Hi: p.hi, Metric: ix.opts.Metric}
		graphs[i] = ix.opts.Builder.Build(view, ix.opts.Seed+int64(base+i))
		if ix.compressHeight(p.height) {
			codes[i] = sq.Train(snap, p.lo, p.hi, sq.TrainConfig{})
		}
	}
	if ix.opts.Workers > 1 && len(cascade) > 1 {
		sem := make(chan struct{}, ix.opts.Workers)
		var wg sync.WaitGroup
		for i := range cascade {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				build(i)
				<-sem
			}(i)
		}
		wg.Wait()
	} else {
		for i := range cascade {
			build(i)
		}
	}

	ix.mu.Lock()
	for i, p := range cascade {
		ix.blocks = append(ix.blocks, Block{Lo: p.lo, Hi: p.hi, Height: p.height, Graph: graphs[i], Codes: codes[i]})
	}
	merged := len(cascade) - 1
	ix.forest = ix.forest[:len(ix.forest)-merged]
	ix.forest = append(ix.forest, base+len(cascade)-1)
	if invariant.Enabled {
		invariant.NoError(ix.checkInvariantsLocked(), "mbi: after async block install")
	}
	ix.mu.Unlock()
}

// Flush blocks until every queued seal job has installed its blocks.
// It is a no-op for synchronous indexes.
func (ix *Index) Flush() {
	if ix.opts.AsyncMerge {
		ix.pending.Wait()
	}
}

// Close flushes outstanding merges and stops the background worker.
// Further Appends fail; searches keep working. Close is idempotent.
// It is a no-op for synchronous indexes.
func (ix *Index) Close() error {
	if !ix.opts.AsyncMerge {
		return nil
	}
	ix.mu.Lock()
	already := ix.closed
	ix.closed = true
	ix.mu.Unlock()
	if already {
		return nil
	}
	ix.pending.Wait()
	close(ix.jobs)
	return nil
}

// PendingBuilds reports how many vectors are sealed but not yet covered
// by installed blocks — the region queries currently brute-force beyond
// the open leaf. Zero for synchronous indexes.
func (ix *Index) PendingBuilds() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.openLo - ix.installedHiLocked()
}
