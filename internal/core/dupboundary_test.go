package core

import (
	"testing"

	"repro/internal/bsbf"
	"repro/internal/nndescent"
)

// TestSelectionCoversDuplicateBoundary pins block selection's coverage
// property when duplicate timestamps span a sealed-block boundary: every
// vector inside the query window must be covered by some selected range.
// A block's time window used to be the half-open [times[lo], times[hi]),
// which excludes the block's own trailing vectors when times[hi-1] ==
// times[hi] — a window starting exactly at that timestamp then missed them.
func TestSelectionCoversDuplicateBoundary(t *testing.T) {
	ix, err := New(Options{
		Dim:      4,
		LeafSize: 2,
		Tau:      0.5,
		Builder:  nndescent.MustNew(nndescent.DefaultConfig(4)),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// times: 0, 5 | 5, 5  — vector 1 (t=5) is the tail of leaf 0, and
	// leaf 1 starts at the same timestamp.
	times := []int64{0, 5, 5, 5}
	for i, tm := range times {
		v := []float32{float32(i), 0, 0, 0}
		if err := ix.Append(v, tm); err != nil {
			t.Fatal(err)
		}
	}
	// Window [5, 6) holds vectors 1, 2, 3.
	lo, hi := bsbf.WindowOf(times, 5, 6)
	t.Logf("ground-truth window rows: [%d, %d)", lo, hi)
	ranges := ix.SelectedRanges(5, 6, 0.5)
	t.Logf("selected ranges: %v", ranges)
	for i := lo; i < hi; i++ {
		covered := false
		for _, r := range ranges {
			if i >= r[0] && i < r[1] {
				covered = true
			}
		}
		if !covered {
			t.Errorf("in-window vector %d not covered by selection %v", i, ranges)
		}
	}
}
