//go:build !race

package core

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/sq"
	"repro/internal/theap"
)

// TestSearchTauBufZeroAllocs is the allocation gate on the MBI query path:
// after warmup, a sequential SearchTauBuf query — block selection, entry
// seeding, graph search, brute scan, and merge — must not touch the heap.
// Every buffer comes from the caller-owned Scratch or dst, so any regression
// here means a per-query allocation crept back into the hot path.
//
// The gate runs with QueryWorkers=1: parallel fan-out spawns goroutines,
// whose stacks the accounting would charge to the query. The file is
// excluded from race builds for the same reason — the race runtime
// instruments allocations of its own.
func TestSearchTauBufZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate inside guarded blocks")
	}
	opts := testOptions(16)
	opts.QueryWorkers = 1
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	vecs := fill(t, ix, 7, 320)

	ctx := context.Background()
	scr := NewScratch()
	var dst []theap.Neighbor
	p := graph.SearchParams{MC: 32, Eps: 1.2}
	q := vecs[17]
	const k, ts, te = 10, 40, 280 // multi-block window: graph + leaf scan subtasks

	// Warmup grows scr and dst to their steady-state capacities.
	for i := 0; i < 8; i++ {
		dst, _ = ix.SearchTauBuf(ctx, scr, dst, q, k, ts, te, opts.Tau, p, nil)
	}
	if len(dst) != k {
		t.Fatalf("warmup query returned %d results, want %d", len(dst), k)
	}

	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = ix.SearchTauBuf(ctx, scr, dst, q, k, ts, te, opts.Tau, p, nil)
	})
	if allocs != 0 {
		t.Errorf("SearchTauBuf allocates %.1f times per query, want 0", allocs)
	}
}

// TestSearchTauBufCompressedZeroAllocs extends the gate to the SQ8 path:
// with compression on, the same query runs the code-space graph search,
// LUT fill, and exact re-rank — all from Scratch arenas — and must stay
// off the heap just like the flat path. The plan is checked to actually
// contain compressed blocks so the gate cannot silently measure a flat
// fallback.
func TestSearchTauBufCompressedZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate inside guarded blocks")
	}
	opts := testOptions(16)
	opts.QueryWorkers = 1
	opts.Compression = sq.SQ8
	opts.RerankFactor = 4
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	vecs := fill(t, ix, 7, 320)

	ctx := context.Background()
	scr := NewScratch()
	var dst []theap.Neighbor
	p := graph.SearchParams{MC: 32, Eps: 1.2}
	q := vecs[17]
	const k, ts, te = 10, 40, 280

	plan := ix.ExplainTau(ts, te, opts.Tau)
	compressed := 0
	for _, b := range plan.Blocks {
		if b.Compressed {
			compressed++
		}
	}
	if compressed == 0 {
		t.Fatalf("plan selected no compressed blocks; gate would measure the flat path\n%s", plan)
	}

	for i := 0; i < 8; i++ {
		dst, _ = ix.SearchTauBuf(ctx, scr, dst, q, k, ts, te, opts.Tau, p, nil)
	}
	if len(dst) != k {
		t.Fatalf("warmup query returned %d results, want %d", len(dst), k)
	}

	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = ix.SearchTauBuf(ctx, scr, dst, q, k, ts, te, opts.Tau, p, nil)
	})
	if allocs != 0 {
		t.Errorf("compressed SearchTauBuf allocates %.1f times per query, want 0", allocs)
	}
}
