// Package core implements Multi-level Block Indexing (MBI), the paper's
// contribution: an incremental hierarchical index for time-restricted kNN
// search over time-accumulating high-dimensional vectors.
//
// MBI is conceptually a perfect binary tree of blocks. Each block covers a
// contiguous timestamp range and carries a graph-based approximate kNN
// index over exactly those vectors; a leaf covers S_L vectors, a parent
// covers the union of its children. Because vectors arrive in timestamp
// order, every block is a contiguous range [Lo, Hi) of one global store —
// no block ever copies vectors.
//
// Insertion (Algorithm 3): new vectors land in the open leaf; when it
// fills, its graph is built and bottom-up block merging creates the chain
// of ancestors whose subtrees just became complete. Blocks are numbered in
// creation order, which is exactly a postorder traversal, giving the
// sibling/child arithmetic used throughout: the children of block c at
// height h are c-2^h (left) and c-1 (right).
//
// Querying (Algorithm 4): top-down block selection walks from the root,
// keeping any block whose time-overlap ratio with the query window exceeds
// τ (or any leaf that overlaps at all) and recursing otherwise. Incomplete
// trees are completed with virtual blocks of infinite time window; such
// blocks always recurse, which makes selection over the virtual tree
// equivalent to independent selection on each root of the forest of
// complete subtrees that this implementation maintains explicitly.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/blockcache"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/sq"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Options configures an MBI index.
type Options struct {
	// Dim is the vector dimension.
	Dim int
	// Metric is the distance function (vec.Euclidean or vec.Angular).
	Metric vec.Metric
	// LeafSize is S_L, the number of vectors per leaf block.
	LeafSize int
	// Tau is the block-selection threshold τ ∈ (0, 1]. The paper proves at
	// most two blocks are searched per query when τ ≤ 0.5 (Lemma 4.1) and
	// recommends τ ≈ 0.5 absent tuning data.
	Tau float64
	// Builder constructs the per-block proximity graph (NNDescent in the
	// paper's experiments; any graph.Builder works).
	Builder graph.Builder
	// Search supplies the default Algorithm 2 parameters (M_C, ε) used by
	// Search; SearchWith overrides them per query.
	Search graph.SearchParams
	// Workers bounds the goroutines used for parallel block building
	// during a merge cascade (§4.2 "Parallelization of MBI").
	// Zero or one means build sequentially.
	Workers int
	// QueryWorkers bounds the goroutines one query may use to search its
	// selected blocks in parallel (the intra-query dimension of "Data
	// Series Indexing Gone Parallel"). Zero defaults to GOMAXPROCS; one
	// runs the plan sequentially on the calling goroutine.
	QueryWorkers int
	// AsyncMerge moves leaf sealing and bottom-up block merging to a
	// background worker so Append never blocks on graph construction.
	// Sealed-but-unbuilt vectors are answered by brute force until their
	// blocks install, so queries stay complete (and exact over that
	// region) at some throughput cost while the builder catches up.
	// Call Flush to wait for the worker and Close when done.
	AsyncMerge bool
	// Seed drives builder randomization; block i is built with seed
	// Seed + i so that construction is reproducible yet blocks differ.
	Seed int64
	// Compression selects the sealed-block vector codec: sq.None keeps
	// blocks flat; sq.SQ8 trains a per-block scalar quantizer at seal time
	// and queries search the codes asymmetrically with an exact re-rank.
	Compression sq.Kind
	// CompressMinHeight only compresses blocks of at least this height,
	// leaving the smallest (cheapest-to-scan) levels flat. Zero compresses
	// every sealed block.
	CompressMinHeight int
	// RerankFactor is the compressed-query over-fetch multiplier: a
	// compressed block contributes its k·RerankFactor best code-space
	// candidates, re-ranked exactly against the float32 store. Zero
	// defaults to exec.DefaultRerankFactor.
	RerankFactor int
	// Spill enables tiered storage: sealed blocks at or below
	// Spill.MaxHeight may have their graph and codes written to per-block
	// segments (SpillCold) and released from RAM, after which queries
	// page them back through a bounded block cache. Nil keeps every block
	// RAM-resident.
	Spill *SpillConfig
}

// Validate reports whether the options are usable.
func (o *Options) Validate() error {
	if o.Dim <= 0 {
		return fmt.Errorf("mbi: Dim must be positive, got %d", o.Dim)
	}
	if !o.Metric.Valid() {
		return fmt.Errorf("mbi: invalid metric %d", o.Metric)
	}
	if o.LeafSize <= 0 {
		return fmt.Errorf("mbi: LeafSize must be positive, got %d", o.LeafSize)
	}
	if o.Tau <= 0 || o.Tau > 1 {
		return fmt.Errorf("mbi: Tau must be in (0, 1], got %g", o.Tau)
	}
	if o.Builder == nil {
		return fmt.Errorf("mbi: Builder must be set")
	}
	if o.Workers < 0 {
		return fmt.Errorf("mbi: Workers must be non-negative, got %d", o.Workers)
	}
	if o.QueryWorkers < 0 {
		return fmt.Errorf("mbi: QueryWorkers must be non-negative, got %d", o.QueryWorkers)
	}
	if !o.Compression.Valid() {
		return fmt.Errorf("mbi: invalid compression kind %d", o.Compression)
	}
	if o.CompressMinHeight < 0 {
		return fmt.Errorf("mbi: CompressMinHeight must be non-negative, got %d", o.CompressMinHeight)
	}
	if o.RerankFactor < 0 {
		return fmt.Errorf("mbi: RerankFactor must be non-negative, got %d", o.RerankFactor)
	}
	if o.Spill != nil {
		if err := o.Spill.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Block is one node of the MBI tree: a contiguous global range plus its
// proximity graph. Height 0 is a (sealed) leaf. Codes is the block's SQ8
// payload when Options.Compression asked for one at its level, nil
// otherwise; a compressed block is searched through its codes with an
// exact re-rank, an uncompressed one straight from the store.
type Block struct {
	Lo, Hi int
	Height int
	Graph  *graph.CSR
	Codes  *sq.Codes
	// Spilled marks a block whose graph and codes live in a per-block
	// segment (Options.Spill): Graph and Codes are nil, and queries page
	// the payload back through the index's block cache keyed by the
	// block's creation index. SegBytes is the segment's on-disk size.
	Spilled  bool
	SegBytes int64
}

// Len returns the number of vectors the block covers.
func (b *Block) Len() int { return b.Hi - b.Lo }

// Index is an MBI index. Append is single-writer; Search/SearchWith may be
// called concurrently with each other. Append takes the write lock for the
// duration of any block builds it triggers, so searches issued during a
// merge cascade wait for it to finish.
type Index struct {
	opts Options

	mu sync.RWMutex
	//tknn:guardedBy(mu)
	store *vec.Store
	//tknn:guardedBy(mu)
	times []int64
	// blocks is in creation (= postorder) order.
	//tknn:guardedBy(mu)
	blocks []Block
	// forest holds block ids of complete-subtree roots, heights strictly
	// decreasing left→right.
	//tknn:guardedBy(mu)
	forest []int
	// openLo is the global start of the open (non-full) leaf.
	//tknn:guardedBy(mu)
	openLo int

	// Async-merge machinery (nil / unused when !opts.AsyncMerge). Sealed
	// leaf ranges travel through jobs to a single worker; vectors in
	// [installedHiLocked(), openLo) are sealed but their blocks are not
	// installed yet, so queries brute-force them.
	jobs    chan sealJob
	pending sync.WaitGroup
	//tknn:guardedBy(mu)
	closed bool

	// entrySalt seeds per-query entry-point randomness for the internal
	// Search path: each query hashes (entrySalt, vector) into a plan-local
	// entropy source, so concurrent queries share no state at all — and the
	// same query always draws the same entries, making results fully
	// deterministic where the old mutex-guarded rand.Rand made them depend
	// on call order.
	entrySalt uint64
	//tknn:guardedBy(mu)
	executor exec.Executor

	// cache pages spilled block payloads back from segment files; nil
	// unless Options.Spill is set. The pointer is read at plan time under
	// the read lock and swapped only by SetCacheBytes under the write
	// lock; the cache itself is internally synchronized.
	//tknn:guardedBy(mu)
	cache *blockcache.Cache
}

// sealJob is one filled leaf handed to the async merge worker.
type sealJob struct {
	lo, hi int
}

// New returns an empty MBI index.
func New(opts Options) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		opts:  opts,
		store: vec.NewStore(opts.Dim),
	}
	ix.entrySalt, ix.executor = queryState(opts)
	ix.cache = newBlockCache(opts)
	if opts.AsyncMerge {
		ix.jobs = make(chan sealJob, 16)
		go ix.mergeWorker()
	}
	return ix, nil
}

// queryState derives the runtime pieces New and Restore share: the
// entry-point salt (derived from the seed, distinctly from builds) and the
// intra-query executor. Per-query searcher and buffer state lives in
// Scratch, not the index. It is a free function so both constructors can
// assign the results into a still-private Index before publishing it.
func queryState(opts Options) (uint64, exec.Executor) {
	return uint64(opts.Seed) ^ 0x6d6269, exec.New(opts.QueryWorkers)
}

// Options returns the index configuration.
func (ix *Index) Options() Options { return ix.opts }

// SetQueryWorkers rebounds the intra-query worker pool: n <= 0 defaults to
// GOMAXPROCS, n == 1 runs plans sequentially. Exposed so benchmarks and
// tests can compare execution modes on one index.
func (ix *Index) SetQueryWorkers(n int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.executor = exec.New(n)
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.store.Len()
}

// Append inserts a timestamped vector (Algorithm 3). Timestamps must be
// non-decreasing — the time-accumulating setting of the paper. When the
// open leaf reaches S_L vectors its graph is built and bottom-up block
// merging creates every ancestor whose subtree just became complete,
// building their graphs in parallel when Options.Workers > 1.
func (ix *Index) Append(v []float32, t int64) error {
	// The defer-less unlock shape below is deliberate: the seal job must be
	// sent on ix.jobs only after mu is released (a full jobs channel would
	// otherwise deadlock the appender against the worker's install step,
	// which needs the write lock), so the error paths unlock early instead
	// of deferring.
	//lint:ignore lock-discipline unlock-before-channel-send is load-bearing here
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return fmt.Errorf("mbi: index is closed")
	}
	if n := len(ix.times); n > 0 && t < ix.times[n-1] {
		last := ix.times[n-1]
		ix.mu.Unlock()
		return fmt.Errorf("mbi: timestamp %d precedes last timestamp %d", t, last)
	}
	if _, err := ix.store.Append(v); err != nil {
		ix.mu.Unlock()
		return err
	}
	ix.times = append(ix.times, t)

	var job *sealJob
	if ix.store.Len()-ix.openLo >= ix.opts.LeafSize {
		if ix.opts.AsyncMerge {
			job = &sealJob{lo: ix.openLo, hi: ix.store.Len()}
			ix.pending.Add(1)
			ix.openLo = ix.store.Len()
		} else {
			ix.sealLeafLocked()
		}
	}
	ix.mu.Unlock()
	if job != nil {
		// Sent outside the lock: a full queue applies backpressure to the
		// appender without deadlocking the worker's install step.
		ix.jobs <- *job
	}
	return nil
}

// AppendBatch inserts vectors in bulk; ts[i] is the timestamp of vs[i].
// Semantically identical to calling Append in a loop, but holds the lock
// once.
func (ix *Index) AppendBatch(vs [][]float32, ts []int64) error {
	if len(vs) != len(ts) {
		return fmt.Errorf("mbi: %d vectors but %d timestamps", len(vs), len(ts))
	}
	var jobs []sealJob
	err := func() error {
		ix.mu.Lock()
		defer ix.mu.Unlock()
		if ix.closed {
			return fmt.Errorf("mbi: index is closed")
		}
		for i, v := range vs {
			if n := len(ix.times); n > 0 && ts[i] < ix.times[n-1] {
				return fmt.Errorf("mbi: timestamp %d precedes last timestamp %d", ts[i], ix.times[n-1])
			}
			if _, err := ix.store.Append(v); err != nil {
				return err
			}
			ix.times = append(ix.times, ts[i])
			if ix.store.Len()-ix.openLo >= ix.opts.LeafSize {
				if ix.opts.AsyncMerge {
					jobs = append(jobs, sealJob{lo: ix.openLo, hi: ix.store.Len()})
					ix.pending.Add(1)
					ix.openLo = ix.store.Len()
				} else {
					ix.sealLeafLocked()
				}
			}
		}
		return nil
	}()
	for _, job := range jobs {
		ix.jobs <- job // queued even on a later validation error: the data is committed
	}
	return err
}

// sealLeafLocked builds the graph for the just-filled leaf and performs
// bottom-up block merging (Algorithm 3 lines 4-14). Caller holds mu.
func (ix *Index) sealLeafLocked() {
	n := ix.store.Len()

	// Determine the full cascade up front: the leaf, then one parent per
	// trailing forest root of matching height. Knowing every range in
	// advance is what lets the graphs build in parallel (§4.2).
	type pending struct {
		lo, hi, height int
	}
	cascade := []pending{{ix.openLo, n, 0}}
	curH := 0
	for i := len(ix.forest) - 1; i >= 0; i-- {
		root := &ix.blocks[ix.forest[i]]
		if root.Height != curH {
			break
		}
		curH++
		cascade = append(cascade, pending{root.Lo, n, curH})
	}

	// Build all graphs (and train any block codecs), in parallel when
	// configured. Block i (by creation order) gets seed Seed + i for
	// reproducibility.
	base := len(ix.blocks)
	graphs := make([]*graph.CSR, len(cascade))
	codes := make([]*sq.Codes, len(cascade))
	// The build closures run on worker goroutines inside this write-lock
	// critical section; hand them the store snapshot rather than reaching
	// back through ix from an unlocked context.
	store := ix.store
	build := func(i int) {
		p := cascade[i]
		view := vec.View{Store: store, Lo: p.lo, Hi: p.hi, Metric: ix.opts.Metric}
		graphs[i] = ix.opts.Builder.Build(view, ix.opts.Seed+int64(base+i))
		if ix.compressHeight(p.height) {
			codes[i] = sq.Train(store, p.lo, p.hi, sq.TrainConfig{})
		}
	}
	if ix.opts.Workers > 1 && len(cascade) > 1 {
		sem := make(chan struct{}, ix.opts.Workers)
		var wg sync.WaitGroup
		for i := range cascade {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				build(i)
				<-sem
			}(i)
		}
		wg.Wait()
	} else {
		for i := range cascade {
			build(i)
		}
	}

	// Install in creation order: leaf first, then ancestors by height —
	// exactly the postorder numbering Algorithm 3 prescribes.
	for i, p := range cascade {
		ix.blocks = append(ix.blocks, Block{Lo: p.lo, Hi: p.hi, Height: p.height, Graph: graphs[i], Codes: codes[i]})
	}
	// Update the forest: the cascade's topmost block replaces the roots it
	// merged.
	merged := len(cascade) - 1
	ix.forest = ix.forest[:len(ix.forest)-merged]
	ix.forest = append(ix.forest, base+len(cascade)-1)
	ix.openLo = n

	if invariant.Enabled {
		invariant.NoError(ix.checkInvariantsLocked(), "mbi: after synchronous seal cascade")
	}
}

// compressHeight reports whether a sealed block of height h gets an SQ8
// codec under the index options.
func (ix *Index) compressHeight(h int) bool {
	return ix.opts.Compression == sq.SQ8 && h >= ix.opts.CompressMinHeight
}

// blockWindowLocked returns the time window [ts, te) of the global range
// [lo, hi): ts is its earliest timestamp, te the exclusive upper bound
// (§4.3's B_c.t_s / B_c.t_e). te must be large enough that every vector in
// the range satisfies t < te — when the range's last timestamp repeats past
// hi, the timestamp of the first vector after the range would exclude the
// range's own tail, so te is max(times[hi-1]+1, times[hi]). Windows of
// adjacent blocks may then overlap at a duplicated boundary timestamp;
// selection handles the resulting double-coverage by clipping each block's
// scan to the query window. Caller holds mu.
func (ix *Index) blockWindowLocked(lo, hi int) (int64, int64) {
	ts := ix.times[lo]
	te := ix.times[hi-1] + 1
	if hi < len(ix.times) && ix.times[hi] > te {
		te = ix.times[hi]
	}
	return ts, te
}

// selection is one block chosen by top-down block selection; openLeaf
// marks the pseudo-range of vectors without an installed graph (the open
// leaf, plus any async-sealed ranges whose builds are in flight), which is
// handled by brute force (Algorithm 4 lines 5-6).
type selection struct {
	lo, hi   int
	g        *graph.CSR
	codes    *sq.Codes // non-nil when the block is SQ8-compressed
	openLeaf bool
	// cold marks a spilled block: g and codes are nil and id is the
	// block's creation index, the key the executor's fetch stage uses to
	// page the payload through the block cache.
	cold bool
	id   int
}

// installedHiLocked returns the end of the region covered by installed
// blocks. Synchronous indexes keep this equal to openLo; with AsyncMerge
// it can trail openLo while builds are in flight. Caller holds mu.
func (ix *Index) installedHiLocked() int {
	if len(ix.forest) == 0 {
		return 0
	}
	return ix.blocks[ix.forest[len(ix.forest)-1]].Hi
}

// selectBlocksLocked runs top-down block selection (Algorithm 4,
// BlockSelection) over the forest of complete subtrees plus the
// brute-force tail (open leaf and pending async builds), appending to out
// (pass a scratch-backed slice to select without allocating, or nil for a
// fresh one). Caller holds mu.
func (ix *Index) selectBlocksLocked(ts, te int64, tau float64, out []selection) []selection {
	for _, root := range ix.forest {
		ix.selectInLocked(root, ts, te, tau, &out)
	}
	// Everything past the installed blocks behaves as a non-full leaf:
	// included whenever it overlaps the window (case 2 applies to every
	// leaf), answered exactly by brute force.
	if tail := ix.installedHiLocked(); tail < ix.store.Len() {
		bts, bte := ix.blockWindowLocked(tail, ix.store.Len())
		if overlaps(bts, bte, ts, te) {
			out = append(out, selection{lo: tail, hi: ix.store.Len(), openLeaf: true})
		}
	}
	return out
}

func overlaps(bts, bte, ts, te int64) bool {
	if bte > bts {
		return min64(bte, te) > max64(bts, ts)
	}
	// Degenerate block window (all timestamps equal): it overlaps iff the
	// query window contains that single timestamp.
	return ts <= bts && bts < te
}

// selectInLocked implements the three cases of Algorithm 4 for the subtree
// rooted at block bi.
func (ix *Index) selectInLocked(bi int, ts, te int64, tau float64, out *[]selection) {
	b := ix.blocks[bi]
	bts, bte := ix.blockWindowLocked(b.Lo, b.Hi)
	if !overlaps(bts, bte, ts, te) {
		return // case 1: r_o = 0
	}
	ro := 1.0
	if bte > bts {
		ro = float64(min64(bte, te)-max64(bts, ts)) / float64(bte-bts)
	}
	if b.Height == 0 || ro > tau {
		// Case 2: leaves always count; internal blocks count when the
		// window covers more than τ of them.
		*out = append(*out, selection{lo: b.Lo, hi: b.Hi, g: b.Graph, codes: b.Codes, cold: b.Spilled, id: bi})
		return
	}
	// Case 3: recurse into the children. Postorder numbering puts the
	// right child at bi-1 and the left child at bi-2^h.
	left := bi - (1 << uint(b.Height))
	right := bi - 1
	ix.selectInLocked(left, ts, te, tau, out)
	ix.selectInLocked(right, ts, te, tau, out)
}

// Search answers a TkNN query q = (w, k, ts, te) with the index's default
// Algorithm 2 parameters, returning up to k results ordered by ascending
// distance. IDs are global insertion indices. Fewer than k results are
// returned when the window holds fewer than k vectors.
func (ix *Index) Search(q []float32, k int, ts, te int64) []theap.Neighbor {
	res, _ := ix.SearchContext(context.Background(), q, k, ts, te)
	return res
}

// SearchContext is Search with a context: subtasks of the query plan never
// start after ctx is done, and on cancellation or deadline expiry the
// merged results of the subtasks that did run are returned with
// Outcome.Partial set instead of an error.
func (ix *Index) SearchContext(ctx context.Context, q []float32, k int, ts, te int64) ([]theap.Neighbor, exec.Outcome) {
	return ix.SearchTauContext(ctx, q, k, ts, te, ix.opts.Tau, ix.opts.Search, nil)
}

// SearchWith answers a TkNN query with explicit Algorithm 2 parameters and
// an explicit source of entry-point randomness, for reproducible
// experiments. rng must not be shared across goroutines.
func (ix *Index) SearchWith(q []float32, k int, ts, te int64, p graph.SearchParams, rng *rand.Rand) []theap.Neighbor {
	return ix.SearchTau(q, k, ts, te, ix.opts.Tau, p, rng)
}

// SearchTau is SearchWith with an explicit block-selection threshold τ,
// used by the τ-sweep experiment (Figure 9). τ is a pure query-time
// parameter — no index state depends on it.
func (ix *Index) SearchTau(q []float32, k int, ts, te int64, tau float64, p graph.SearchParams, rng *rand.Rand) []theap.Neighbor {
	res, _ := ix.SearchTauContext(context.Background(), q, k, ts, te, tau, p, rng)
	return res
}

// SearchTauContext plans the query (block selection plus per-block entry
// points) and hands the plan to the shared executor. A nil rng draws entry
// points from a plan-local entropy source seeded by hashing the query
// vector (see entrySalt); a non-nil rng is consumed at plan time in
// selection order. Either way the draws happen before execution, so results
// are reproducible and identical for every worker count. The returned
// outcome carries stage timings and the Partial flag.
//
// It borrows a pooled scratch and copies the results out; SearchTauBuf is
// the allocation-free variant.
func (ix *Index) SearchTauContext(ctx context.Context, q []float32, k int, ts, te int64, tau float64, p graph.SearchParams, rng *rand.Rand) ([]theap.Neighbor, exec.Outcome) {
	scr := getScratch()
	res, out := ix.searchTauScratch(ctx, scr, q, k, ts, te, tau, p, rng)
	res = exec.CopyNeighbors(res)
	out = out.Detach()
	putScratch(scr)
	return res, out
}

// SearchTauBuf is SearchTauContext with caller-owned buffers: block
// selection, entry seeds, subtask heaps, and merge storage come from scr,
// and the merged results are appended into dst[:0], whose grown backing
// the caller keeps across queries. A warmed-up sequential query performs
// zero heap allocations. Outcome.Subtasks aliases scr and is valid until
// scr's next query.
//
//tknn:hotpath
func (ix *Index) SearchTauBuf(ctx context.Context, scr *Scratch, dst []theap.Neighbor, q []float32, k int, ts, te int64, tau float64, p graph.SearchParams, rng *rand.Rand) ([]theap.Neighbor, exec.Outcome) {
	res, out := ix.searchTauScratch(ctx, scr, q, k, ts, te, tau, p, rng)
	dst = append(dst[:0], res...)
	return dst, out
}

// searchTauScratch plans into scr and runs: the shared core of
// SearchTauContext and SearchTauBuf. Results alias scr.
func (ix *Index) searchTauScratch(ctx context.Context, scr *Scratch, q []float32, k int, ts, te int64, tau float64, p graph.SearchParams, rng *rand.Rand) ([]theap.Neighbor, exec.Outcome) {
	if k <= 0 || ts >= te {
		return nil, exec.Outcome{}
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.store.Len() == 0 {
		return nil, exec.Outcome{}
	}
	plan, _, selDur := ix.planTimedLocked(scr, q, k, ts, te, tau, p, rng)
	res, out := ix.executor.RunScratch(ctx, plan, &scr.ex)
	out.Select = selDur
	return res, out
}

// SelectedBlockCount returns how many blocks top-down selection would
// search for the window [ts, te) with threshold tau — exposed for the
// Lemma 4.1 tests and explain-style diagnostics.
func (ix *Index) SelectedBlockCount(ts, te int64, tau float64) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.selectBlocksLocked(ts, te, tau, nil))
}

// SelectedRanges returns the global [lo, hi) ranges selection would search,
// in timestamp order; used by tests to verify the cover property.
func (ix *Index) SelectedRanges(ts, te int64, tau float64) [][2]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	sel := ix.selectBlocksLocked(ts, te, tau, nil)
	out := make([][2]int, len(sel))
	for i, s := range sel {
		out[i] = [2]int{s.lo, s.hi}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
