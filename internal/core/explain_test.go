package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestExplainMatchesSelection(t *testing.T) {
	ix, err := New(testOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 51, 100)
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 60; trial++ {
		a := rng.Intn(100)
		b := a + 1 + rng.Intn(100-a)
		plan := ix.Explain(int64(a), int64(b))
		ranges := ix.SelectedRanges(int64(a), int64(b), ix.opts.Tau)
		if len(plan.Blocks) != len(ranges) {
			t.Fatalf("[%d,%d): plan has %d blocks, selection %d", a, b, len(plan.Blocks), len(ranges))
		}
		total := 0
		for i, blk := range plan.Blocks {
			if blk.Lo != ranges[i][0] || blk.Hi != ranges[i][1] {
				t.Fatalf("plan block %d range mismatch", i)
			}
			if blk.InWindow < 0 || blk.InWindow > blk.Hi-blk.Lo {
				t.Fatalf("block %d in-window count %d out of range", i, blk.InWindow)
			}
			if blk.OverlapRatio < 0 || blk.OverlapRatio > 1 {
				t.Fatalf("block %d overlap ratio %g", i, blk.OverlapRatio)
			}
			total += blk.InWindow
		}
		// Timestamps are 0..n-1, so the window count is b-a (clamped).
		if want := b - a; plan.TotalInWindow != want || total != want {
			t.Fatalf("[%d,%d): total in-window %d (sum %d), want %d", a, b, plan.TotalInWindow, total, want)
		}
	}
}

func TestExplainOpenLeafAndHeights(t *testing.T) {
	ix, err := New(testOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 53, 20) // 2 sealed leaves + 4 in the open leaf
	plan := ix.Explain(0, 100)
	var sawOpen, sawGraph bool
	for _, blk := range plan.Blocks {
		if blk.BruteForce {
			sawOpen = true
			if blk.Height != -1 {
				t.Errorf("open leaf height %d, want -1", blk.Height)
			}
			if blk.Lo != 16 || blk.Hi != 20 {
				t.Errorf("open leaf range [%d,%d)", blk.Lo, blk.Hi)
			}
		} else {
			sawGraph = true
			if blk.Height < 0 {
				t.Errorf("sealed block height %d", blk.Height)
			}
		}
	}
	if !sawOpen || !sawGraph {
		t.Errorf("plan should include both kinds: open=%v graph=%v", sawOpen, sawGraph)
	}
	s := plan.String()
	for _, want := range []string{"window [0, 100)", "brute force", "graph"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

func TestExplainEmptyCases(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if plan := ix.Explain(0, 10); len(plan.Blocks) != 0 {
		t.Errorf("empty index plan has blocks: %+v", plan)
	}
	fill(t, ix, 55, 10)
	if plan := ix.Explain(5, 5); len(plan.Blocks) != 0 {
		t.Errorf("empty window plan has blocks: %+v", plan)
	}
	if plan := ix.Explain(1000, 2000); len(plan.Blocks) != 0 {
		t.Errorf("out-of-range plan has blocks: %+v", plan)
	}
}

func TestExplainTauChangesGranularity(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 57, 64)
	coarse := ix.ExplainTau(13, 45, 0.05)
	fine := ix.ExplainTau(13, 45, 1.0)
	if len(fine.Blocks) <= len(coarse.Blocks) {
		t.Errorf("tau=1 plan (%d blocks) not finer than tau=0.05 (%d)", len(fine.Blocks), len(coarse.Blocks))
	}
}

func TestTuneTauAndAutoSearch(t *testing.T) {
	ix, err := New(testOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, ix, 59, 400)
	table, err := ix.TuneTau(TunerConfig{
		Taus:             []float64{0.2, 0.5, 0.8},
		Fractions:        []float64{0.05, 0.5, 1.0},
		QueriesPerBucket: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Taus) != 3 {
		t.Fatalf("table has %d entries", len(table.Taus))
	}
	for _, tau := range table.Taus {
		if tau != 0.2 && tau != 0.5 && tau != 0.8 {
			t.Errorf("tuned tau %g not from the grid", tau)
		}
	}
	// TauFor bucketing.
	if got := table.TauFor(0.01); got != table.Taus[0] {
		t.Errorf("TauFor(0.01) = %g, want bucket 0's %g", got, table.Taus[0])
	}
	if got := table.TauFor(0.9); got != table.Taus[2] {
		t.Errorf("TauFor(0.9) = %g, want bucket 2's %g", got, table.Taus[2])
	}
	if got := table.TauFor(2.0); got != table.Taus[2] {
		t.Errorf("TauFor beyond last bucket should clamp")
	}

	// Auto search returns valid in-window results.
	rng := rand.New(rand.NewSource(60))
	p := graph.SearchParams{MC: 32, Eps: 1.3}
	for trial := 0; trial < 20; trial++ {
		a := rng.Intn(400)
		b := a + 1 + rng.Intn(400-a)
		res := ix.SearchAutoTau(vs[rng.Intn(len(vs))], 5, int64(a), int64(b), table, p, rng)
		for _, r := range res {
			if int(r.ID) < a || int(r.ID) >= b {
				t.Fatalf("auto-tau result %d outside [%d, %d)", r.ID, a, b)
			}
		}
	}
}

func TestTuneTauValidation(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.TuneTau(TunerConfig{}); err == nil {
		t.Error("tuning an empty index should fail")
	}
	fill(t, ix, 61, 20)
	if _, err := ix.TuneTau(TunerConfig{Taus: []float64{0, 0.5}}); err == nil {
		t.Error("tau 0 accepted")
	}
	if _, err := ix.TuneTau(TunerConfig{Fractions: []float64{0.5, 0.1}}); err == nil {
		t.Error("descending fractions accepted")
	}
	if _, err := ix.TuneTau(TunerConfig{QueriesPerBucket: -1}); err == nil {
		t.Error("negative QueriesPerBucket accepted")
	}
	if _, err := ix.TuneTau(TunerConfig{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	// Defaults work.
	table, err := ix.TuneTau(TunerConfig{QueriesPerBucket: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Taus) != len(table.Fractions) {
		t.Errorf("table shape %d/%d", len(table.Taus), len(table.Fractions))
	}
}
