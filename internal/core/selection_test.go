package core

import (
	"math/rand"
	"testing"
)

// refSelect is an independent reference implementation of Algorithm 4's
// BlockSelection that walks the literal virtual-completed tree: leaf slots
// are laid out in a perfect binary tree of the next power of two, nodes
// whose subtree is not fully sealed are virtual blocks with time window
// (-inf, +inf) and therefore always recurse (case 3), and the partially
// filled open-leaf slot behaves as a non-full leaf (case 2 whenever it
// overlaps). The production implementation walks the forest of complete
// subtrees instead; DESIGN.md claims the two are equivalent, and
// TestSelectionMatchesVirtualTreeWalk checks it.
func refSelect(ix *Index, ts, te int64, tau float64) [][2]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := ix.store.Len()
	if n == 0 {
		return nil
	}
	sl := ix.opts.LeafSize
	slots := (n + sl - 1) / sl
	span := 1
	for span < slots {
		span *= 2
	}
	var out [][2]int
	var walk func(slotLo, slotHi int)
	walk = func(slotLo, slotHi int) {
		lo := slotLo * sl
		hi := slotHi * sl
		if lo >= n {
			return // entirely in the future: nothing real beneath
		}
		if hi > n {
			hi = n
		}
		sealed := hi <= ix.openLo && hi == slotHi*sl
		if sealed {
			// A real block: apply the three cases.
			bts, bte := ix.blockWindowLocked(lo, hi)
			if !overlaps(bts, bte, ts, te) {
				return
			}
			ro := 1.0
			if bte > bts {
				ro = float64(min64(bte, te)-max64(bts, ts)) / float64(bte-bts)
			}
			if slotHi-slotLo == 1 || ro > tau {
				out = append(out, [2]int{lo, hi})
				return
			}
			mid := (slotLo + slotHi) / 2
			walk(slotLo, mid)
			walk(mid, slotHi)
			return
		}
		if slotHi-slotLo == 1 {
			// The open (non-full) leaf: a leaf block, case 2 on overlap.
			bts, bte := ix.blockWindowLocked(ix.openLo, n)
			if overlaps(bts, bte, ts, te) {
				out = append(out, [2]int{ix.openLo, n})
			}
			return
		}
		// Virtual block: time window extends to +inf, so r_o ~ 0 < tau —
		// always case 3.
		mid := (slotLo + slotHi) / 2
		walk(slotLo, mid)
		walk(mid, slotHi)
	}
	walk(0, span)
	return out
}

func TestSelectionMatchesVirtualTreeWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sl := range []int{2, 4, 7} {
		for _, n := range []int{1, 3, sl, sl + 1, 5 * sl, 8*sl - 1, 8 * sl, 13*sl + 2} {
			ix, err := New(testOptions(sl))
			if err != nil {
				t.Fatal(err)
			}
			v := make([]float32, 8)
			for i := 0; i < n; i++ {
				for j := range v {
					v[j] = float32(rng.NormFloat64())
				}
				// Occasionally repeat timestamps to cover duplicates.
				tstamp := int64(i)
				if i > 0 && rng.Intn(10) == 0 {
					tstamp = int64(i - 1)
				}
				_ = tstamp
				if err := ix.Append(v, int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			for _, tau := range []float64{0.2, 0.5, 0.8, 1.0} {
				for trial := 0; trial < 60; trial++ {
					a := rng.Intn(n)
					b := a + 1 + rng.Intn(n-a)
					got := ix.SelectedRanges(int64(a), int64(b), tau)
					want := refSelect(ix, int64(a), int64(b), tau)
					if len(got) != len(want) {
						t.Fatalf("sl=%d n=%d tau=%g [%d,%d): got %v, reference %v",
							sl, n, tau, a, b, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("sl=%d n=%d tau=%g [%d,%d): got %v, reference %v",
								sl, n, tau, a, b, got, want)
						}
					}
				}
			}
		}
	}
}

// TestLemma43OneBlockPerLevel checks Lemma 4.3's structure: for a query
// whose window starts exactly at the root block's earliest timestamp (an
// ILAQ block at the root) and tau > 0.5, selection uses at most one block
// per level, except possibly two at the leaf level.
func TestLemma43OneBlockPerLevel(t *testing.T) {
	const sl = 4
	ix, err := New(testOptions(sl))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 43, 128) // perfect tree: 32 leaves, height 5
	if got := len(ix.Forest()); got != 1 {
		t.Fatalf("setup: %d forest roots", got)
	}
	sizeToLevel := map[int]int{}
	for _, b := range ix.Blocks() {
		sizeToLevel[b.Len()] = b.Height
	}
	for _, tau := range []float64{0.6, 0.75, 0.9} {
		for wlen := 1; wlen <= 128; wlen++ {
			ranges := ix.SelectedRanges(0, int64(wlen), tau)
			perLevel := map[int]int{}
			for _, r := range ranges {
				lvl, ok := sizeToLevel[r[1]-r[0]]
				if !ok {
					t.Fatalf("selected range %v has no block size", r)
				}
				perLevel[lvl]++
			}
			for lvl, count := range perLevel {
				limit := 1
				if lvl == 0 {
					limit = 2
				}
				if count > limit {
					t.Fatalf("tau=%g window [0,%d): %d blocks at level %d (ranges %v)",
						tau, wlen, count, lvl, ranges)
				}
			}
		}
	}
}

// TestDuplicateTimestamps exercises the degenerate-window handling: many
// vectors share one timestamp, so block windows can be zero-length.
func TestDuplicateTimestamps(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	vs := make([][]float32, 40)
	for i := range vs {
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vs[i] = v
		// Timestamps: 0,0,0,0,1,1,1,1,2,... — whole leaves share one stamp.
		if err := ix.Append(v, int64(i/4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Query for a single shared timestamp: the half-open window [3, 4)
	// holds exactly vectors 12..15.
	res := ix.SearchWith(vs[13], 4, 3, 4, ix.opts.Search, rng)
	if len(res) != 4 {
		t.Fatalf("%d results, want 4", len(res))
	}
	for _, r := range res {
		if r.ID < 12 || r.ID > 15 {
			t.Errorf("result %d outside the shared-timestamp group", r.ID)
		}
	}
	// A window covering nothing between stamps returns nothing... there
	// are no gaps with integer consecutive stamps, so query before time 0.
	if got := ix.SearchWith(vs[0], 3, -10, 0, ix.opts.Search, rng); len(got) != 0 {
		t.Errorf("pre-history window returned %v", got)
	}
}

// TestExhaustiveEpsIsExact: with an effectively unbounded frontier and
// epsilon, MBI's answers must equal brute force exactly — the graph
// connectivity guarantee.
func TestExhaustiveEpsIsExact(t *testing.T) {
	ix, err := New(testOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	vs := fill(t, ix, 47, 300)
	rng := rand.New(rand.NewSource(48))
	big := graphParamsExhaustive()
	for trial := 0; trial < 40; trial++ {
		a := rng.Intn(300)
		b := a + 1 + rng.Intn(300-a)
		q := vs[rng.Intn(len(vs))]
		got := ix.SearchWith(q, 5, int64(a), int64(b), big, rng)
		want := bruteForce(ix, q, 5, int64(a), int64(b))
		if len(got) != len(want) {
			t.Fatalf("[%d,%d): %d results, want %d", a, b, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d): result %d = %v, want %v", a, b, i, got[i], want[i])
			}
		}
	}
}

// TestExactnessPropertyAcrossShapes is a randomized campaign: for random
// (S_L, n, window, k) combinations, exhaustive-parameter MBI must equal
// brute force exactly. It subsumes many hand-picked edge cases (windows
// inside one leaf, spanning the open leaf, covering everything).
func TestExactnessPropertyAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 12; trial++ {
		sl := 2 + rng.Intn(12)
		n := 1 + rng.Intn(sl*10)
		ix, err := New(testOptions(sl))
		if err != nil {
			t.Fatal(err)
		}
		vs := fill(t, ix, int64(trial), n)
		p := graphParamsExhaustive()
		for q := 0; q < 25; q++ {
			a := rng.Intn(n)
			b := a + 1 + rng.Intn(n-a)
			k := 1 + rng.Intn(8)
			probe := vs[rng.Intn(len(vs))]
			got := ix.SearchWith(probe, k, int64(a), int64(b), p, rng)
			want := bruteForce(ix, probe, k, int64(a), int64(b))
			if len(got) != len(want) {
				t.Fatalf("sl=%d n=%d k=%d [%d,%d): %d results, want %d", sl, n, k, a, b, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("sl=%d n=%d k=%d [%d,%d): result %d = %v, want %v", sl, n, k, a, b, i, got[i], want[i])
				}
			}
		}
	}
}
