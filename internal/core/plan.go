package core

import (
	"math/rand"
	"time"

	"repro/internal/bsbf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/invariant"
)

// This file is MBI's half of the plan/execute split: block selection
// (Algorithm 4) becomes a planner that translates its selections into
// exec.Subtasks, and the shared executor owns running them — sequentially
// or across a worker pool — and merging.

// planTimedLocked runs block selection and builds the executable plan,
// returning the selections (Explain annotates them) and the planning
// duration for the outcome's Select stage. Every buffer the plan needs
// comes from scr, so a warmed-up call allocates nothing. Caller holds mu.
func (ix *Index) planTimedLocked(scr *Scratch, q []float32, k int, ts, te int64, tau float64, p graph.SearchParams, rng *rand.Rand) (exec.Plan, []selection, time.Duration) {
	start := time.Now()
	sel := ix.selectBlocksLocked(ts, te, tau, scr.sel[:0])
	scr.sel = sel
	if invariant.Enabled {
		invariant.NoError(ix.validateSelectionLocked(sel, ts, te), "mbi: block selection")
	}
	plan := ix.planLocked(scr, sel, q, k, ts, te, p, rng)
	scr.ex.Subtasks = plan.Subtasks[:0]
	return plan, sel, time.Since(start)
}

// entryProbes is how many entry seeds pickEntriesLocked draws per graph
// block. A single random entry (Algorithm 2 line 1 verbatim) occasionally
// starts the walk in a basin the ε-bounded expansion cannot escape and
// misses an exact match even at k=1; multi-seeding the frontier with a
// handful of independent starts unions their basins, so a miss requires
// every seed to be unlucky at once. The extra cost is a few frontier
// pushes — noise next to the hundreds of distance evaluations a traversal
// performs.
const entryProbes = 4

// pickEntriesLocked draws the graph entry seeds for one selected block at
// plan time: entryProbes candidates, from rng when non-nil, else the
// plan-local entropy. The seeds are appended to scr's entry arena and
// returned as a capped sub-slice, so seed storage for any number of blocks
// costs zero steady-state allocations. Duplicates are fine — the
// searcher's visited set collapses them. Caller holds mu.
func (ix *Index) pickEntriesLocked(scr *Scratch, s selection, rng *rand.Rand, ent *exec.Entropy) []int32 {
	n := s.hi - s.lo
	probes := entryProbes
	if probes > n {
		probes = n
	}
	start := len(scr.ex.Entries)
	for i := 0; i < probes; i++ {
		if rng != nil {
			scr.ex.Entries = append(scr.ex.Entries, graph.RandomEntry(rng, n))
		} else {
			scr.ex.Entries = append(scr.ex.Entries, int32(ent.Intn(n)))
		}
	}
	return scr.ex.Entries[start:len(scr.ex.Entries):len(scr.ex.Entries)]
}

// planLocked translates selections into an exec.Plan: one subtask per
// selected block, in selection (= timestamp) order — graph search
// (Algorithm 2) for sealed blocks, brute scan (Algorithm 1) for the open
// leaf and any pending async tail. Subtasks are pure data; the executor's
// built-in kernels run them.
//
// Entry seeds are drawn here, at plan time, sequentially in selection
// order: an explicit rng therefore consumes a deterministic sequence
// (reproducible experiments stay reproducible), and execution order cannot
// perturb the draws — which, together with the subtasks covering disjoint
// global-id ranges, makes the merged result identical for every worker
// count. A nil rng draws from the scratch's entropy source reseeded by
// hashing the query vector: no shared state to contend on, and the same
// query always walks from the same entries, so internal-path results are
// deterministic end to end.
//
// The subtasks reference store, times, and graphs directly; the caller
// holds mu across the executor and the executor joins its workers before
// returning, so the references never outlive the lock. Caller holds mu.
func (ix *Index) planLocked(scr *Scratch, sel []selection, q []float32, k int, ts, te int64, p graph.SearchParams, rng *rand.Rand) exec.Plan {
	plan := exec.Plan{K: k, Query: q, Subtasks: scr.ex.Subtasks[:0]}
	scr.ex.Entries = scr.ex.Entries[:0]
	var ent *exec.Entropy
	if rng == nil {
		scr.ex.Ent.Reseed(int64(exec.QueryHash(ix.entrySalt, q)))
		ent = &scr.ex.Ent
	}
	for _, s := range sel {
		st := exec.Subtask{Lo: s.lo, Hi: s.hi, Store: ix.store, Metric: ix.opts.Metric}
		st.WindowStart, st.WindowEnd = ix.blockWindowLocked(s.lo, s.hi)
		if s.openLeaf {
			st.Kind = exec.BruteScan
			lo, hi := bsbf.WindowOf(ix.times[s.lo:s.hi], ts, te)
			st.ScanLo, st.ScanHi = s.lo+lo, s.lo+hi
		} else if s.cold {
			// Spilled block: the kernel inputs except the payload. Entry
			// seeds are still drawn here, in selection order, so results
			// are bit-identical to the RAM-resident plan. RerankK is
			// preset because whether the fetched payload carries codes is
			// unknown until the fetch stage resolves it.
			st.Kind = exec.GraphSearch
			st.Cold = true
			st.Cache = ix.cache
			st.CacheKey = uint64(s.id)
			st.Params = p
			st.Entries = ix.pickEntriesLocked(scr, s, rng, ent)
			st.Times = ix.times[s.lo:s.hi]
			st.Ts, st.Te = ts, te
			st.RerankK = exec.RerankK(k, ix.opts.RerankFactor, s.hi-s.lo)
		} else {
			st.Kind = exec.GraphSearch
			st.Graph = s.g
			st.Params = p
			st.Entries = ix.pickEntriesLocked(scr, s, rng, ent)
			st.Times = ix.times[s.lo:s.hi]
			st.Ts, st.Te = ts, te
			if s.codes != nil {
				// Compressed block: walk the graph against the SQ8 codes,
				// over-fetching k·RerankFactor so the exact re-rank can
				// recover ordering errors the quantizer introduced.
				st.Kind = exec.CompressedGraph
				st.Codes = s.codes
				st.RerankK = exec.RerankK(k, ix.opts.RerankFactor, s.hi-s.lo)
			}
		}
		plan.Subtasks = append(plan.Subtasks, st)
	}
	return plan
}
