package core

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/bsbf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/theap"
	"repro/internal/vec"
)

// This file is MBI's half of the plan/execute split: block selection
// (Algorithm 4) becomes a planner that translates its selections into
// exec.Subtasks, and the shared executor owns running them — sequentially
// or across a worker pool — and merging.

// planTimedLocked runs block selection and builds the executable plan,
// returning the selections (Explain annotates them) and the planning
// duration for the outcome's Select stage. Caller holds mu.
func (ix *Index) planTimedLocked(q []float32, k int, ts, te int64, tau float64, p graph.SearchParams, rng *rand.Rand) (exec.Plan, []selection, time.Duration) {
	start := time.Now()
	sel := ix.selectBlocksLocked(ts, te, tau)
	if invariant.Enabled {
		invariant.NoError(ix.validateSelectionLocked(sel, ts, te), "mbi: block selection")
	}
	plan := ix.planLocked(sel, q, k, ts, te, p, rng)
	return plan, sel, time.Since(start)
}

// entryProbes is how many entry seeds pickEntriesLocked draws per graph
// block. A single random entry (Algorithm 2 line 1 verbatim) occasionally
// starts the walk in a basin the ε-bounded expansion cannot escape and
// misses an exact match even at k=1; multi-seeding the frontier with a
// handful of independent starts unions their basins, so a miss requires
// every seed to be unlucky at once. The extra cost is a few frontier
// pushes — noise next to the hundreds of distance evaluations a traversal
// performs.
const entryProbes = 4

// pickEntriesLocked draws the graph entry seeds for one selected block at
// plan time: entryProbes candidates, from rng when non-nil, else the
// plan-local entropy. Duplicates are fine — the searcher's visited set
// collapses them. Caller holds mu.
func (ix *Index) pickEntriesLocked(s selection, rng *rand.Rand, ent *exec.Entropy) []int32 {
	n := s.hi - s.lo
	probes := entryProbes
	if probes > n {
		probes = n
	}
	entries := make([]int32, probes)
	for i := range entries {
		if rng != nil {
			entries[i] = graph.RandomEntry(rng, n)
		} else {
			entries[i] = int32(ent.Intn(n))
		}
	}
	return entries
}

// planLocked translates selections into an exec.Plan: one subtask per
// selected block, in selection (= timestamp) order — graph search
// (Algorithm 2) for sealed blocks, brute scan (Algorithm 1) for the open
// leaf and any pending async tail.
//
// Entry seeds are drawn here, at plan time, sequentially in selection
// order: an explicit rng therefore consumes a deterministic sequence
// (reproducible experiments stay reproducible), and execution order cannot
// perturb the draws — which, together with the subtasks covering disjoint
// global-id ranges, makes the merged result identical for every worker
// count. A nil rng draws from a plan-local entropy source seeded by
// hashing the query vector: no shared state to contend on, and the same
// query always walks from the same entries, so internal-path results are
// deterministic end to end.
//
// The subtask closures capture store, times, and graphs; the caller holds
// mu across executor.Run and the executor joins its workers before
// returning, so the captures never outlive the lock. Caller holds mu.
func (ix *Index) planLocked(sel []selection, q []float32, k int, ts, te int64, p graph.SearchParams, rng *rand.Rand) exec.Plan {
	plan := exec.Plan{K: k, Subtasks: make([]exec.Subtask, 0, len(sel))}
	var ent *exec.Entropy
	if rng == nil {
		ent = exec.NewEntropy(int64(exec.QueryHash(ix.entrySalt, q)))
	}
	for _, s := range sel {
		st := exec.Subtask{Lo: s.lo, Hi: s.hi}
		st.WindowStart, st.WindowEnd = ix.blockWindowLocked(s.lo, s.hi)
		if s.openLeaf {
			st.Kind = exec.BruteScan
			lo, hi := bsbf.WindowOf(ix.times[s.lo:s.hi], ts, te)
			lo, hi = s.lo+lo, s.lo+hi
			store, metric := ix.store, ix.opts.Metric
			st.Run = func(ctx context.Context) []theap.Neighbor {
				return bsbf.ScanRangeContext(ctx, store, metric, q, k, lo, hi)
			}
		} else {
			st.Kind = exec.GraphSearch
			entries := ix.pickEntriesLocked(s, rng, ent)
			view := vec.View{Store: ix.store, Lo: s.lo, Hi: s.hi, Metric: ix.opts.Metric}
			times := ix.times
			base := int32(s.lo)
			g := s.g
			st.Run = func(ctx context.Context) []theap.Neighbor {
				// A graph traversal visits a bounded frontier and is short
				// relative to scans; cancellation is honored between
				// subtasks rather than inside the walk.
				filter := func(local int32) bool {
					t := times[base+int32(local)]
					return t >= ts && t < te
				}
				sr := ix.searchers.Get().(*graph.Searcher)
				res := sr.Search(g, view, q, k, filter, p, entries[0], entries[1:]...)
				ix.searchers.Put(sr)
				for i := range res {
					res[i].ID += base
				}
				return res
			}
		}
		plan.Subtasks = append(plan.Subtasks, st)
	}
	return plan
}
