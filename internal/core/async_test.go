package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func asyncOptions(leafSize int) Options {
	o := testOptions(leafSize)
	o.AsyncMerge = true
	return o
}

// TestAsyncMatchesSyncExactly: after Flush, the async index must be
// block-for-block identical to the synchronous one (same cascade
// decisions, same seeds).
func TestAsyncMatchesSyncExactly(t *testing.T) {
	syncIx, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	asyncIx, err := New(asyncOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer asyncIx.Close()
	vs := fill(t, syncIx, 71, 77)
	for i, v := range vs {
		if err := asyncIx.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	asyncIx.Flush()

	a, b := syncIx.Blocks(), asyncIx.Blocks()
	if len(a) != len(b) {
		t.Fatalf("block counts differ: sync %d, async %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Lo != b[i].Lo || a[i].Hi != b[i].Hi || a[i].Height != b[i].Height {
			t.Fatalf("block %d metadata differs", i)
		}
		if len(a[i].Graph.Adj) != len(b[i].Graph.Adj) {
			t.Fatalf("block %d graphs differ in size", i)
		}
		for j := range a[i].Graph.Adj {
			if a[i].Graph.Adj[j] != b[i].Graph.Adj[j] {
				t.Fatalf("block %d adjacency differs at %d", i, j)
			}
		}
	}
	if err := asyncIx.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if asyncIx.PendingBuilds() != 0 {
		t.Errorf("pending builds after flush: %d", asyncIx.PendingBuilds())
	}
}

// TestAsyncSearchDuringBacklog: queries issued while builds are in flight
// must still return complete, in-window answers (the pending region is
// brute-forced).
func TestAsyncSearchDuringBacklog(t *testing.T) {
	ix, err := New(asyncOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	vs := fill(t, ix, 73, 200) // fill may race builds; that's the point
	rng := rand.New(rand.NewSource(74))
	p := graphParamsExhaustive()
	for trial := 0; trial < 40; trial++ {
		a := rng.Intn(200)
		b := a + 1 + rng.Intn(200-a)
		q := vs[rng.Intn(len(vs))]
		got := ix.SearchWith(q, 5, int64(a), int64(b), p, rng)
		exact := bruteForce(ix, q, 5, int64(a), int64(b))
		if len(got) != len(exact) {
			t.Fatalf("[%d,%d): %d results, want %d", a, b, len(got), len(exact))
		}
		for i := range got {
			if got[i] != exact[i] {
				t.Fatalf("[%d,%d): result %d = %v, want %v", a, b, i, got[i], exact[i])
			}
		}
	}
	ix.Flush()
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestAsyncConcurrentAppendAndSearch hammers an async index from an
// appender plus searchers. stress_race_test.go extends this workload and
// is gated on the race build tag, so `go test -race` runs both.
func TestAsyncConcurrentAppendAndSearch(t *testing.T) {
	ix, err := New(asyncOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for g := 0; g < 3; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			q := make([]float32, 8)
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				n := int64(ix.Len())
				if n < 2 {
					continue
				}
				a := rng.Int63n(n - 1)
				b := a + 1 + rng.Int63n(n-a)
				res := ix.SearchWith(q, 3, a, b, graph.SearchParams{MC: 16, Eps: 1.2}, rng)
				for _, r := range res {
					if int64(r.ID) < a || int64(r.ID) >= b {
						errs <- errOutOfWindow
						return
					}
				}
			}
		}(int64(g))
	}
	rng := rand.New(rand.NewSource(75))
	v := make([]float32, 8)
	for i := 0; i < 600; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for g := 0; g < 3; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	ix.Flush()
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if got := ix.Len(); got != 600 {
		t.Errorf("len %d", got)
	}
}

func TestAsyncCloseSemantics(t *testing.T) {
	ix, err := New(asyncOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 77, 20)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	v := make([]float32, 8)
	if err := ix.Append(v, 1000); err == nil {
		t.Error("append after close succeeded")
	}
	if err := ix.AppendBatch([][]float32{v}, []int64{1000}); err == nil {
		t.Error("batch append after close succeeded")
	}
	// Searches still work after close.
	rng := rand.New(rand.NewSource(78))
	if res := ix.SearchWith(v, 3, 0, 100, graphParamsExhaustive(), rng); len(res) != 3 {
		t.Errorf("post-close search returned %d results", len(res))
	}
	// Flush after close is a no-op.
	ix.Flush()
}

func TestSyncCloseIsNoop(t *testing.T) {
	ix, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ix, 79, 10)
	if err := ix.Close(); err != nil {
		t.Errorf("sync close: %v", err)
	}
	ix.Flush()
	if ix.PendingBuilds() != 0 {
		t.Error("sync index has pending builds")
	}
	// Sync indexes remain appendable after the no-op Close.
	if err := ix.Append(make([]float32, 8), 1000); err != nil {
		t.Errorf("append after no-op close: %v", err)
	}
}
