package core

import (
	"repro/internal/bsbf"
	"repro/internal/graph"
	"repro/internal/theap"
)

// graphParamsExhaustive returns search parameters that make Algorithm 2
// visit every reachable node: an effectively infinite frontier and bound.
func graphParamsExhaustive() graph.SearchParams {
	return graph.SearchParams{MC: 1 << 30, Eps: 1e9}
}

// bruteForce computes the exact TkNN answer against an index's data.
func bruteForce(ix *Index, q []float32, k int, ts, te int64) []theap.Neighbor {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	lo, hi := bsbf.WindowOf(ix.times, ts, te)
	return bsbf.ScanRange(ix.store, ix.opts.Metric, q, k, lo, hi)
}
