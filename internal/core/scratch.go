package core

import (
	"sync"

	"repro/internal/exec"
)

// Scratch owns every reusable per-query buffer of the MBI search path: the
// block-selection list, and (through the embedded executor scratch) the
// plan's subtask backing, the entry-seed arena, the per-subtask result
// heaps, the graph searchers, and the merge buffer. All of it grows to a
// high-water mark on the first queries and is then reused verbatim, which
// is what makes a warmed-up sequential SearchTauBuf allocation-free.
//
// A Scratch serves one query at a time and is not safe for concurrent use.
// Results returned through it (the neighbor slice when not copied into a
// caller buffer, and Outcome.Subtasks) alias the scratch and are valid
// until its next query.
type Scratch struct {
	ex  exec.Scratch
	sel []selection
}

// NewScratch returns an empty scratch; every buffer grows on first use and
// is retained afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool backs the convenience paths (SearchTauContext and friends),
// which borrow a scratch per query and copy results out before returning
// it.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }
