// Package bsbf implements the paper's first baseline, Binary Search and
// Brute-Force (Algorithm 1): keep the timestamped vectors sorted by
// timestamp, binary-search the query window to a contiguous range, and
// brute-force scan that range with a bounded max-heap.
//
// BSBF is exact within the window, O(log n + m log k) per query for a
// window of m vectors — excellent for short windows and hopeless for long
// ones, which is precisely the asymmetry MBI exploits. The same scan also
// serves as MBI's handler for the open (non-full) leaf block and as the
// exact ground-truth oracle of the dataset package.
package bsbf

import (
	"fmt"
	"sort"

	"repro/internal/theap"
	"repro/internal/vec"
)

// Index is a timestamp-sorted database supporting exact TkNN queries.
// Appends must be in non-decreasing timestamp order (the time-accumulating
// setting of the paper); Append is single-writer, Search may run
// concurrently with other Searches.
type Index struct {
	store  *vec.Store
	times  []int64
	metric vec.Metric
}

// New returns an empty BSBF index over dim-dimensional vectors.
func New(dim int, metric vec.Metric) *Index {
	return &Index{store: vec.NewStore(dim), metric: metric}
}

// FromData adopts an existing store and timestamp slice. times must be
// sorted ascending and len(times) must equal store.Len().
func FromData(store *vec.Store, times []int64, metric vec.Metric) (*Index, error) {
	if store.Len() != len(times) {
		return nil, fmt.Errorf("bsbf: %d vectors but %d timestamps", store.Len(), len(times))
	}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		return nil, fmt.Errorf("bsbf: timestamps not sorted")
	}
	return &Index{store: store, times: times, metric: metric}, nil
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return ix.store.Len() }

// TimesRef exposes the timestamp slice (read-only, aliases index memory).
func (ix *Index) TimesRef() []int64 { return ix.times }

// StoreRef exposes the backing store (read-only).
func (ix *Index) StoreRef() *vec.Store { return ix.store }

// Metric returns the index's distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// Append adds a timestamped vector. The timestamp must be >= the last
// appended timestamp.
func (ix *Index) Append(v []float32, t int64) error {
	if n := len(ix.times); n > 0 && t < ix.times[n-1] {
		return fmt.Errorf("bsbf: timestamp %d precedes last timestamp %d", t, ix.times[n-1])
	}
	if _, err := ix.store.Append(v); err != nil {
		return err
	}
	ix.times = append(ix.times, t)
	return nil
}

// Window returns the index range [lo, hi) of vectors with timestamps in
// [ts, te) — the BinarySearch step of Algorithm 1.
func (ix *Index) Window(ts, te int64) (lo, hi int) {
	return WindowOf(ix.times, ts, te)
}

// WindowOf binary-searches a sorted timestamp slice for the half-open
// window [ts, te), returning the corresponding index range [lo, hi).
func WindowOf(times []int64, ts, te int64) (lo, hi int) {
	lo = sort.Search(len(times), func(i int) bool { return times[i] >= ts })
	hi = sort.Search(len(times), func(i int) bool { return times[i] >= te })
	return lo, hi
}

// Search returns the exact k nearest neighbors to q among vectors with
// timestamps in [ts, te), ordered by ascending distance. Returned IDs are
// global insertion indices. Fewer than k results are returned when the
// window holds fewer than k vectors.
func (ix *Index) Search(q []float32, k int, ts, te int64) []theap.Neighbor {
	lo, hi := ix.Window(ts, te)
	return ScanRange(ix.store, ix.metric, q, k, lo, hi)
}

// ScanRange brute-force scans global rows [lo, hi) of store, returning the
// k nearest to q with global IDs. It is the BruteForce step of Algorithm 1,
// shared with MBI's open-leaf handling.
func ScanRange(store *vec.Store, metric vec.Metric, q []float32, k int, lo, hi int) []theap.Neighbor {
	if k <= 0 || lo >= hi {
		return nil
	}
	top := theap.NewTopK(k)
	for i := lo; i < hi; i++ {
		d := vec.Distance(metric, q, store.At(i))
		top.Push(theap.Neighbor{ID: int32(i), Dist: d})
	}
	return top.Items()
}
