// Package bsbf implements the paper's first baseline, Binary Search and
// Brute-Force (Algorithm 1): keep the timestamped vectors sorted by
// timestamp, binary-search the query window to a contiguous range, and
// brute-force scan that range with a bounded max-heap.
//
// BSBF is exact within the window, O(log n + m log k) per query for a
// window of m vectors — excellent for short windows and hopeless for long
// ones, which is precisely the asymmetry MBI exploits. The same scan also
// serves as MBI's handler for the open (non-full) leaf block and as the
// exact ground-truth oracle of the dataset package.
package bsbf

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/exec"
	"repro/internal/sq"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Index is a timestamp-sorted database supporting exact TkNN queries.
// Appends must be in non-decreasing timestamp order (the time-accumulating
// setting of the paper); Append is single-writer, Search may run
// concurrently with other Searches.
type Index struct {
	store  *vec.Store
	times  []int64
	metric vec.Metric

	// Optional SQ8 compression (see compress.go): cfg selects it, codes[c]
	// quantizes chunk c's rows, sealed is the global row count covered by
	// codes — always a multiple of cfg.ChunkSize.
	cfg    Config
	codes  []*sq.Codes
	sealed int
}

// New returns an empty BSBF index over dim-dimensional vectors.
func New(dim int, metric vec.Metric) *Index {
	return &Index{store: vec.NewStore(dim), metric: metric}
}

// FromData adopts an existing store and timestamp slice. times must be
// sorted ascending and len(times) must equal store.Len().
func FromData(store *vec.Store, times []int64, metric vec.Metric) (*Index, error) {
	if store.Len() != len(times) {
		return nil, fmt.Errorf("bsbf: %d vectors but %d timestamps", store.Len(), len(times))
	}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		return nil, fmt.Errorf("bsbf: timestamps not sorted")
	}
	return &Index{store: store, times: times, metric: metric}, nil
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return ix.store.Len() }

// TimesRef exposes the timestamp slice (read-only, aliases index memory).
func (ix *Index) TimesRef() []int64 { return ix.times }

// StoreRef exposes the backing store (read-only).
func (ix *Index) StoreRef() *vec.Store { return ix.store }

// Metric returns the index's distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// Append adds a timestamped vector. The timestamp must be >= the last
// appended timestamp.
func (ix *Index) Append(v []float32, t int64) error {
	if n := len(ix.times); n > 0 && t < ix.times[n-1] {
		return fmt.Errorf("bsbf: timestamp %d precedes last timestamp %d", t, ix.times[n-1])
	}
	if _, err := ix.store.Append(v); err != nil {
		return err
	}
	ix.times = append(ix.times, t)
	ix.sealChunks()
	return nil
}

// Window returns the index range [lo, hi) of vectors with timestamps in
// [ts, te) — the BinarySearch step of Algorithm 1.
func (ix *Index) Window(ts, te int64) (lo, hi int) {
	return WindowOf(ix.times, ts, te)
}

// WindowOf binary-searches a sorted timestamp slice for the half-open
// window [ts, te), returning the corresponding index range [lo, hi). The
// search is hand-rolled rather than sort.Search so the hot path carries no
// closures.
//
//tknn:hotpath
func WindowOf(times []int64, ts, te int64) (lo, hi int) {
	return lowerBound(times, ts), lowerBound(times, te)
}

// lowerBound returns the index of the first timestamp >= t.
func lowerBound(times []int64, t int64) int {
	lo, hi := 0, len(times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if times[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Search returns the exact k nearest neighbors to q among vectors with
// timestamps in [ts, te), ordered by ascending distance. Returned IDs are
// global insertion indices. Fewer than k results are returned when the
// window holds fewer than k vectors.
func (ix *Index) Search(q []float32, k int, ts, te int64) []theap.Neighbor {
	res, _ := ix.SearchContext(context.Background(), q, k, ts, te, exec.Executor{Workers: 1})
	return res
}

// SearchContext answers the query through the shared executor: the plan's
// scan chunks run across x's worker pool, subtasks never start after ctx
// is done, and expiry yields partial results tagged in the outcome. It
// borrows a pooled scratch and copies the results out; SearchBuf is the
// allocation-free variant.
func (ix *Index) SearchContext(ctx context.Context, q []float32, k int, ts, te int64, x exec.Executor) ([]theap.Neighbor, exec.Outcome) {
	scr := exec.GetScratch()
	res, out := ix.searchScratch(ctx, scr, q, k, ts, te, x)
	res = exec.CopyNeighbors(res)
	out = out.Detach()
	exec.PutScratch(scr)
	return res, out
}

// SearchBuf is SearchContext with caller-owned buffers: the query's plan,
// heaps, and merge storage come from scr, and the merged results are
// appended into dst[:0], whose grown backing the caller keeps across
// queries. A warmed-up sequential query performs zero heap allocations.
// Outcome.Subtasks aliases scr and is valid until scr's next query.
//
//tknn:hotpath
func (ix *Index) SearchBuf(ctx context.Context, scr *exec.Scratch, dst []theap.Neighbor, q []float32, k int, ts, te int64, x exec.Executor) ([]theap.Neighbor, exec.Outcome) {
	res, out := ix.searchScratch(ctx, scr, q, k, ts, te, x)
	dst = append(dst[:0], res...)
	return dst, out
}

// searchScratch plans into scr and runs: the shared core of SearchContext
// and SearchBuf. Results alias scr.
func (ix *Index) searchScratch(ctx context.Context, scr *exec.Scratch, q []float32, k int, ts, te int64, x exec.Executor) ([]theap.Neighbor, exec.Outcome) {
	planStart := time.Now()
	plan := exec.Plan{K: k, Query: q, Subtasks: scr.Subtasks[:0]}
	if k > 0 && ts < te {
		lo, hi := ix.Window(ts, te)
		if ix.sealed > 0 {
			ix.compressedPlanInto(&plan, k, lo, hi)
		} else {
			scanPlanInto(&plan, ix.store, ix.metric, ix.times, lo, hi)
		}
	}
	scr.Subtasks = plan.Subtasks[:0]
	planDur := time.Since(planStart)
	res, out := x.RunScratch(ctx, plan, scr)
	out.Select = planDur
	return res, out
}

// Plan translates the query into the shared executor's shape: the
// binary-searched window split into fixed-size brute-scan chunks, so a
// long window can be scanned by several workers and merged. Chunks cover
// disjoint id ranges, so the merged result is identical for every worker
// count.
func (ix *Index) Plan(q []float32, k int, ts, te int64) exec.Plan {
	if k <= 0 || ts >= te {
		return exec.Plan{K: k, Query: q}
	}
	lo, hi := ix.Window(ts, te)
	return ScanPlan(ix.store, ix.metric, ix.times, q, k, lo, hi)
}

// ScanChunk is the row count of one brute-scan subtask. Large enough that
// per-subtask overhead vanishes against ~thousands of distance
// evaluations, small enough that a window of a few chunks already
// parallelizes.
const ScanChunk = 8192

// ScanPlan builds the chunked brute-scan plan over global rows [lo, hi) of
// store; times (when non-empty) annotates each chunk's subtask with its
// time window.
func ScanPlan(store *vec.Store, metric vec.Metric, times []int64, q []float32, k, lo, hi int) exec.Plan {
	plan := exec.Plan{K: k, Query: q}
	if k <= 0 || lo >= hi {
		return plan
	}
	scanPlanInto(&plan, store, metric, times, lo, hi)
	return plan
}

// scanPlanInto appends the window's scan chunks to plan as data-only
// subtasks (the executor's built-in scan kernel runs them).
func scanPlanInto(plan *exec.Plan, store *vec.Store, metric vec.Metric, times []int64, lo, hi int) {
	for start := lo; start < hi; start += ScanChunk {
		end := start + ScanChunk
		if end > hi {
			end = hi
		}
		st := exec.Subtask{Kind: exec.BruteScan, Lo: start, Hi: end,
			Store: store, Metric: metric, ScanLo: start, ScanHi: end}
		if len(times) >= end {
			st.WindowStart, st.WindowEnd = times[start], times[end-1]+1
		}
		plan.Subtasks = append(plan.Subtasks, st)
	}
}

// ScanRange brute-force scans global rows [lo, hi) of store, returning the
// k nearest to q with global IDs. It is the BruteForce step of Algorithm 1,
// shared with MBI's open-leaf handling and the dataset oracle.
func ScanRange(store *vec.Store, metric vec.Metric, q []float32, k int, lo, hi int) []theap.Neighbor {
	return ScanRangeContext(context.Background(), store, metric, q, k, lo, hi)
}

// ScanRangeContext is ScanRange with cancellation, delegating to the
// executor's scan kernel: when the context fires mid-scan it returns the
// best neighbors found in the prefix scanned so far — a truncated answer,
// never an error. The executor tags the outcome Partial whenever the
// context fired mid-plan, so truncation is always reported.
func ScanRangeContext(ctx context.Context, store *vec.Store, metric vec.Metric, q []float32, k int, lo, hi int) []theap.Neighbor {
	if k <= 0 || lo >= hi {
		return nil
	}
	top := theap.NewTopK(k)
	exec.ScanInto(ctx, top, store, metric, q, lo, hi)
	return top.Items()
}
