package bsbf

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/theap"
	"repro/internal/vec"
)

// buildIndex creates an index with n random 4-d vectors at timestamps
// 0, 2, 4, ... (gaps let tests probe window boundaries between points).
func buildIndex(t *testing.T, seed int64, n int) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ix := New(4, vec.Euclidean)
	for i := 0; i < n; i++ {
		v := []float32{float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64())}
		if err := ix.Append(v, int64(2*i)); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	ix := New(2, vec.Euclidean)
	if err := ix.Append([]float32{1, 1}, 10); err != nil {
		t.Fatal(err)
	}
	if err := ix.Append([]float32{2, 2}, 9); err == nil {
		t.Error("decreasing timestamp accepted")
	}
	// Equal timestamps are fine (the paper assigns arbitrary order).
	if err := ix.Append([]float32{3, 3}, 10); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestAppendRejectsWrongDim(t *testing.T) {
	ix := New(3, vec.Euclidean)
	if err := ix.Append([]float32{1, 2}, 0); err == nil {
		t.Error("wrong-dimension vector accepted")
	}
	if ix.Len() != 0 {
		t.Error("failed append grew the index")
	}
}

func TestWindowBoundaries(t *testing.T) {
	ix := buildIndex(t, 1, 10) // timestamps 0, 2, ..., 18
	cases := []struct {
		ts, te int64
		lo, hi int
	}{
		{0, 20, 0, 10},    // everything
		{0, 1, 0, 1},      // first only
		{18, 19, 9, 10},   // last only
		{5, 9, 3, 5},      // interior, boundaries between points
		{4, 9, 2, 5},      // ts exactly on a point (inclusive)
		{4, 8, 2, 4},      // te exactly on a point (exclusive)
		{-5, 0, 0, 0},     // before everything (te exclusive)
		{19, 100, 10, 10}, // after everything
		{-10, 100, 0, 10},
	}
	for _, c := range cases {
		lo, hi := ix.Window(c.ts, c.te)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Window(%d, %d) = [%d, %d), want [%d, %d)", c.ts, c.te, lo, hi, c.lo, c.hi)
		}
	}
}

// exactTkNN is an independent reference implementation.
func exactTkNN(ix *Index, q []float32, k int, ts, te int64) []theap.Neighbor {
	var all []theap.Neighbor
	times := ix.TimesRef()
	for i := 0; i < ix.Len(); i++ {
		if times[i] >= ts && times[i] < te {
			all = append(all, theap.Neighbor{ID: int32(i), Dist: vec.Distance(ix.Metric(), q, ix.StoreRef().At(i))})
		}
	}
	sort.Slice(all, func(i, j int) bool { return theap.Less(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestSearchMatchesReference(t *testing.T) {
	ix := buildIndex(t, 2, 300)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		q := []float32{float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64())}
		k := 1 + rng.Intn(15)
		ts := int64(rng.Intn(650)) - 20
		te := ts + int64(rng.Intn(400))
		got := ix.Search(q, k, ts, te)
		want := exactTkNN(ix, q, k, ts, te)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSearchProperty(t *testing.T) {
	ix := buildIndex(t, 4, 200)
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := []float32{float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64())}
		k := int(kRaw)%20 + 1
		ts := int64(rng.Intn(450)) - 20
		te := ts + int64(rng.Intn(300))
		got := ix.Search(q, k, ts, te)
		// Every result in window, sorted ascending, no duplicates, and no
		// in-window vector closer than the worst result is missing.
		times := ix.TimesRef()
		seen := map[int32]bool{}
		for i, r := range got {
			if times[r.ID] < ts || times[r.ID] >= te {
				return false
			}
			if seen[r.ID] {
				return false
			}
			seen[r.ID] = true
			if i > 0 && theap.Less(r, got[i-1]) {
				return false
			}
		}
		want := exactTkNN(ix, q, k, ts, te)
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSearchEmptyWindowAndEmptyIndex(t *testing.T) {
	ix := New(2, vec.Euclidean)
	if got := ix.Search([]float32{0, 0}, 5, 0, 100); got != nil {
		t.Errorf("empty index search = %v", got)
	}
	if err := ix.Append([]float32{1, 1}, 5); err != nil {
		t.Fatal(err)
	}
	if got := ix.Search([]float32{0, 0}, 5, 10, 20); len(got) != 0 {
		t.Errorf("out-of-window search = %v", got)
	}
	if got := ix.Search([]float32{0, 0}, 0, 0, 10); len(got) != 0 {
		t.Errorf("k=0 search = %v", got)
	}
}

func TestFromData(t *testing.T) {
	s := vec.NewStore(2)
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]float32{float32(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := FromData(s, []int64{1, 2, 3}, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
	if _, err := FromData(s, []int64{1, 2}, vec.Euclidean); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromData(s, []int64{3, 2, 1}, vec.Euclidean); err == nil {
		t.Error("unsorted timestamps accepted")
	}
}

func TestScanRangeEdges(t *testing.T) {
	s := vec.NewStore(1)
	for i := 0; i < 5; i++ {
		if _, err := s.Append([]float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ScanRange(s, vec.Euclidean, []float32{0}, 3, 2, 2); got != nil {
		t.Errorf("empty range scan = %v", got)
	}
	if got := ScanRange(s, vec.Euclidean, []float32{0}, 0, 0, 5); got != nil {
		t.Errorf("k=0 scan = %v", got)
	}
	got := ScanRange(s, vec.Euclidean, []float32{10}, 2, 1, 4)
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 2 {
		t.Errorf("scan = %v, want ids 3, 2", got)
	}
}

func BenchmarkSearchWide(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ix := New(32, vec.Euclidean)
	for i := 0; i < 20000; i++ {
		v := make([]float32, 32)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	q := make([]float32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10, 0, 20000)
	}
}
