package bsbf

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/sq"
	"repro/internal/vec"
)

// Compressed BSBF: the baseline's scan cost is pure memory bandwidth, so it
// is the cleanest place to measure what SQ8 buys. With compression enabled
// the index seals each full ChunkSize-row run of appends into a per-chunk
// scalar quantizer; windowed queries scan sealed chunks through the
// asymmetric LUT kernel (1 byte/coordinate instead of 4) with an exact
// re-rank, and brute-force only the unsealed tail.

// Config selects the optional compression behavior of a BSBF index.
type Config struct {
	// Compression picks the per-chunk codec. sq.None (the zero value)
	// keeps the index fully float32 — identical to New.
	Compression sq.Kind
	// RerankFactor is the over-fetch multiplier for compressed scans
	// (candidates = k·RerankFactor, clipped to the chunk). 0 uses
	// exec.DefaultRerankFactor.
	RerankFactor int
	// ChunkSize is the number of rows sealed into one quantizer. 0 uses
	// ScanChunk, which matches the executor's scan-subtask granularity.
	ChunkSize int
}

// NewWithConfig returns an empty BSBF index with the given compression
// configuration. NewWithConfig(dim, metric, Config{}) is New(dim, metric).
func NewWithConfig(dim int, metric vec.Metric, cfg Config) (*Index, error) {
	if !cfg.Compression.Valid() {
		return nil, fmt.Errorf("bsbf: unknown compression kind %d", cfg.Compression)
	}
	if cfg.RerankFactor < 0 {
		return nil, fmt.Errorf("bsbf: negative rerank factor %d", cfg.RerankFactor)
	}
	if cfg.ChunkSize < 0 {
		return nil, fmt.Errorf("bsbf: negative chunk size %d", cfg.ChunkSize)
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = ScanChunk
	}
	ix := New(dim, metric)
	ix.cfg = cfg
	return ix, nil
}

// sealChunks trains quantizers for every full chunk of not-yet-sealed rows.
// Called from Append; a no-op unless compression is enabled.
func (ix *Index) sealChunks() {
	if ix.cfg.Compression != sq.SQ8 {
		return
	}
	for ix.store.Len() >= ix.sealed+ix.cfg.ChunkSize {
		lo := ix.sealed
		ix.codes = append(ix.codes, sq.Train(ix.store, lo, lo+ix.cfg.ChunkSize, sq.TrainConfig{}))
		ix.sealed += ix.cfg.ChunkSize
	}
}

// compressedPlanInto appends the window's subtasks to plan, routing rows of
// sealed chunks through the compressed-scan kernel and the unsealed tail
// through the flat scan. Chunk c covers global rows
// [c·ChunkSize, (c+1)·ChunkSize); a window clips into a chunk via
// ScanLo/ScanHi while Lo stays at the chunk base so code row i maps to
// global row Lo+i.
func (ix *Index) compressedPlanInto(plan *exec.Plan, k, lo, hi int) {
	cs := ix.cfg.ChunkSize
	for start := lo; start < hi && start < ix.sealed; {
		c := start / cs
		clo, chi := c*cs, (c+1)*cs
		end := hi
		if end > chi {
			end = chi
		}
		st := exec.Subtask{
			Kind: exec.CompressedScan, Lo: clo, Hi: chi,
			Store: ix.store, Metric: ix.metric,
			ScanLo: start, ScanHi: end,
			Codes:   ix.codes[c],
			RerankK: exec.RerankK(k, ix.cfg.RerankFactor, end-start),
		}
		if len(ix.times) >= end {
			st.WindowStart, st.WindowEnd = ix.times[start], ix.times[end-1]+1
		}
		plan.Subtasks = append(plan.Subtasks, st)
		start = end
	}
	if hi > ix.sealed {
		tail := lo
		if tail < ix.sealed {
			tail = ix.sealed
		}
		scanPlanInto(plan, ix.store, ix.metric, ix.times, tail, hi)
	}
}
