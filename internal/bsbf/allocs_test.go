//go:build !race

package bsbf

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/invariant"
	"repro/internal/sq"
	"repro/internal/theap"
	"repro/internal/vec"
)

// TestSearchBufZeroAllocs is the allocation gate on the baseline query
// path: after warmup, a sequential SearchBuf query — window binary search,
// chunked brute scan, and merge — must not touch the heap. The plan,
// per-chunk heaps, and merge storage all come from the caller-owned
// exec.Scratch, and results land in dst's retained backing.
//
// Workers=1 keeps execution on the caller's goroutine; parallel fan-out
// allocates goroutine bookkeeping that the gate deliberately excludes.
// Race builds skip via the build tag — the race runtime allocates.
func TestSearchBufZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate inside guarded blocks")
	}
	const dim, n = 16, 1024
	ix := New(dim, vec.Euclidean)
	rng := rand.New(rand.NewSource(11))
	q := make([]float32, dim)
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
		if i == 17 {
			copy(q, v)
		}
	}

	ctx := context.Background()
	scr := exec.NewScratch()
	var dst []theap.Neighbor
	x := exec.Executor{Workers: 1}
	const k, ts, te = 10, 100, 900

	for i := 0; i < 8; i++ {
		dst, _ = ix.SearchBuf(ctx, scr, dst, q, k, ts, te, x)
	}
	if len(dst) != k {
		t.Fatalf("warmup query returned %d results, want %d", len(dst), k)
	}

	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = ix.SearchBuf(ctx, scr, dst, q, k, ts, te, x)
	})
	if allocs != 0 {
		t.Errorf("SearchBuf allocates %.1f times per query, want 0", allocs)
	}
}

// TestSearchBufCompressedZeroAllocs extends the gate to the SQ8 path:
// with chunked compression on, the same window scans sealed chunks
// through the asymmetric LUT kernel and re-ranks survivors exactly, all
// from the caller-owned exec.Scratch — still zero heap traffic.
func TestSearchBufCompressedZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate inside guarded blocks")
	}
	const dim, n = 16, 1024
	ix, err := NewWithConfig(dim, vec.Euclidean, Config{
		Compression: sq.SQ8, RerankFactor: 4, ChunkSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	q := make([]float32, dim)
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := ix.Append(v, int64(i)); err != nil {
			t.Fatal(err)
		}
		if i == 17 {
			copy(q, v)
		}
	}

	ctx := context.Background()
	scr := exec.NewScratch()
	var dst []theap.Neighbor
	x := exec.Executor{Workers: 1}
	const k, ts, te = 10, 100, 900 // spans several sealed chunks mid-chunk

	for i := 0; i < 8; i++ {
		dst, _ = ix.SearchBuf(ctx, scr, dst, q, k, ts, te, x)
	}
	if len(dst) != k {
		t.Fatalf("warmup query returned %d results, want %d", len(dst), k)
	}

	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = ix.SearchBuf(ctx, scr, dst, q, k, ts, te, x)
	})
	if allocs != 0 {
		t.Errorf("compressed SearchBuf allocates %.1f times per query, want 0", allocs)
	}
}
