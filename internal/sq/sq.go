// Package sq implements per-block scalar quantization (SQ8) for sealed MBI
// blocks. A sealed block is immutable, which makes it a perfect training
// unit: Train fits a per-dimension affine quantizer (min + step) over
// exactly the block's vectors and encodes each coordinate into one byte,
// cutting the block's vector payload ~4x and raising effective scan
// bandwidth by the same factor.
//
// Search over codes is asymmetric: the query stays float32 and each code is
// scored through a per-(query, block) lookup table of 256 entries per
// dimension, so the inner loop is one table load and one add per
// coordinate — no decode, no multiply. Euclidean distances come out exact
// with respect to the *decoded* vectors; angular distances additionally use
// per-vector code norms precomputed at encode time. Compressed results are
// approximate, so callers over-fetch and re-rank the survivors against the
// float32 store (see exec's compressed kernels).
package sq

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Kind selects the per-block vector codec.
type Kind uint8

const (
	// None stores blocks as raw float32 rows (no codes are trained).
	None Kind = iota
	// SQ8 trains a per-block, per-dimension scalar quantizer at seal time
	// and encodes each coordinate into one byte.
	SQ8
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case SQ8:
		return "sq8"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined codec.
func (k Kind) Valid() bool { return k == None || k == SQ8 }

// TrainConfig tunes quantizer training.
type TrainConfig struct {
	// ClipSigma, when positive, clips each dimension's quantization range
	// to mean ± ClipSigma·σ (intersected with the observed min/max) before
	// fitting the steps. Outlier coordinates then saturate instead of
	// stretching the step for every inlier. Zero fits the plain observed
	// min/max range.
	ClipSigma float64
}

// Codes is one block's quantized payload: a per-dimension affine dequantizer
// (Min + Step·code) plus the row-major byte codes and per-row norms of the
// decoded vectors. Local row i corresponds to global store row Lo+i of the
// block that trained it; the mapping is owned by the caller.
//
// Codes are immutable after Train, like the blocks they compress.
type Codes struct {
	// Dim is the vector dimension; N is the number of encoded rows.
	Dim, N int
	// Min and Step hold the per-dimension dequantization affine map:
	// coordinate d of code c decodes to Min[d] + Step[d]·c. A constant
	// dimension has Step 0 and decodes exactly.
	Min, Step []float32
	// Data holds the codes row-major: row i is Data[i*Dim : (i+1)*Dim].
	Data []uint8
	// Norms[i] is the L2 norm (not squared) of decoded row i, precomputed
	// so the angular kernel needs no per-candidate normalization pass.
	Norms []float32
}

// lutWidth is the entries-per-dimension of the asymmetric lookup table:
// one per possible byte code.
const lutWidth = 256

// maxCode is the largest code value.
const maxCode = 255

// Train fits a quantizer over global rows [lo, hi) of store and encodes
// them. It panics if the range is empty or out of bounds — blocks are never
// empty, so that is always a caller bug. Training is deterministic: the
// same rows always produce byte-identical codes.
func Train(store *vec.Store, lo, hi int, cfg TrainConfig) *Codes {
	if lo < 0 || hi <= lo || hi > store.Len() {
		panic(fmt.Sprintf("sq: training range [%d,%d) invalid for store of %d rows", lo, hi, store.Len()))
	}
	dim := store.Dim()
	n := hi - lo
	c := &Codes{
		Dim:   dim,
		N:     n,
		Min:   make([]float32, dim),
		Step:  make([]float32, dim),
		Data:  make([]uint8, n*dim),
		Norms: make([]float32, n),
	}

	// Pass 1: per-dimension range (and moments, when clipping).
	lov := c.Min // reuse as the lower clip bound during training
	hiv := make([]float32, dim)
	copy(lov, store.At(lo))
	copy(hiv, store.At(lo))
	var mean, m2 []float64
	if cfg.ClipSigma > 0 {
		mean = make([]float64, dim)
		m2 = make([]float64, dim)
	}
	for i := lo; i < hi; i++ {
		row := store.At(i)
		for d, x := range row {
			if x < lov[d] {
				lov[d] = x
			}
			if x > hiv[d] {
				hiv[d] = x
			}
			if mean != nil {
				// Welford's update, numerically stable across block sizes.
				delta := float64(x) - mean[d]
				mean[d] += delta / float64(i-lo+1)
				m2[d] += delta * (float64(x) - mean[d])
			}
		}
	}
	if cfg.ClipSigma > 0 && n > 1 {
		for d := 0; d < dim; d++ {
			sigma := sqrt64(m2[d] / float64(n-1))
			if clipLo := mean[d] - cfg.ClipSigma*sigma; float32(clipLo) > lov[d] {
				lov[d] = float32(clipLo)
			}
			if clipHi := mean[d] + cfg.ClipSigma*sigma; float32(clipHi) < hiv[d] {
				hiv[d] = float32(clipHi)
			}
		}
	}
	for d := 0; d < dim; d++ {
		if span := hiv[d] - lov[d]; span > 0 {
			c.Step[d] = span / maxCode
		}
	}

	// Pass 2: encode, saturating at the clip bounds, and accumulate each
	// decoded row's norm. The decoded coordinate is materialized in
	// float32 — the exact value Decode and the LUT kernels see — but the
	// squared sum runs in float64: squaring a large-magnitude float32
	// coordinate overflows float32 even though the coordinate, and the
	// final unsquared norm, fit comfortably.
	for i := 0; i < n; i++ {
		row := store.At(lo + i)
		out := c.Data[i*dim : (i+1)*dim]
		var sq float64
		for d, x := range row {
			code := encode1(x, c.Min[d], c.Step[d])
			out[d] = code
			v := c.Min[d] + c.Step[d]*float32(code)
			sq += float64(v) * float64(v)
		}
		c.Norms[i] = float32(sqrt64(sq))
	}
	return c
}

// encode1 quantizes one coordinate: round((x-min)/step) clamped to a byte.
// A zero step (constant or clipped-flat dimension) encodes everything as 0.
func encode1(x, min, step float32) uint8 {
	if step == 0 {
		return 0
	}
	r := (x - min) / step
	if !(r > 0) { // also catches NaN from inf-inf in degenerate inputs
		return 0
	}
	if r >= maxCode {
		return maxCode
	}
	return uint8(r + 0.5)
}

// Row returns row i's codes, aliasing the payload.
func (c *Codes) Row(i int) []uint8 {
	off := i * c.Dim
	return c.Data[off : off+c.Dim : off+c.Dim]
}

// Decode writes decoded row i into dst (len >= Dim) and returns dst[:Dim].
func (c *Codes) Decode(i int, dst []float32) []float32 {
	row := c.Row(i)
	dst = dst[:c.Dim]
	for d, code := range row {
		dst[d] = c.Min[d] + c.Step[d]*float32(code)
	}
	return dst
}

// Bytes is the payload size of the codes: the byte rows plus the
// per-dimension affine map and the per-row norms. This is what persists and
// what the memory-reduction benchmark compares against Dim·4 bytes/vector.
func (c *Codes) Bytes() int {
	return len(c.Data) + 4*(len(c.Min)+len(c.Step)+len(c.Norms))
}

// LUTLen is the float32 length of the asymmetric lookup table FillLUT
// fills: lutWidth entries per dimension.
func (c *Codes) LUTLen() int { return c.Dim * lutWidth }

// FillLUT builds the per-query asymmetric-distance table into lut
// (len >= LUTLen): entry [d·256+v] scores code v of dimension d against
// q[d]. For Euclidean it holds the squared residual, so a row's distance is
// the plain sum of its lookups; for Angular it holds q[d]·decode(d,v), so
// the sum is the dot product, finished by FinishDist with the precomputed
// norms. Cost is Dim·256 multiply-adds per (query, block) — noise once a
// block holds more than a few hundred rows.
//
//tknn:hotpath
func (c *Codes) FillLUT(metric vec.Metric, q []float32, lut []float32) {
	for d := 0; d < c.Dim; d++ {
		min, step := c.Min[d], c.Step[d]
		qd := q[d]
		row := lut[d*lutWidth : (d+1)*lutWidth]
		if metric == vec.Euclidean {
			for v := range row {
				r := qd - (min + step*float32(v))
				row[v] = r * r
			}
		} else {
			for v := range row {
				row[v] = qd * (min + step*float32(v))
			}
		}
	}
}

// LUTDist scores row i through a table built by FillLUT with the same
// metric. qNorm is the query's L2 norm (vec.Norm), used only by the angular
// finish; zero-norm rows keep vec's "maximally distant" convention.
//
//tknn:hotpath
func (c *Codes) LUTDist(metric vec.Metric, lut []float32, qNorm float32, i int) float32 {
	s := lutSum(lut, c.Row(i))
	if metric == vec.Euclidean {
		return s
	}
	nb := c.Norms[i]
	if qNorm == 0 || nb == 0 {
		return 1
	}
	return 1 - s/(qNorm*nb)
}

// lutSum is the asymmetric inner loop: one table load and one add per
// coordinate, 4-wide unrolled like vec's kernels.
//
//tknn:hotpath
func lutSum(lut []float32, row []uint8) float32 {
	var s0, s1, s2, s3 float32
	d := 0
	for ; d+4 <= len(row); d += 4 {
		s0 += lut[d*lutWidth+int(row[d])]
		s1 += lut[(d+1)*lutWidth+int(row[d+1])]
		s2 += lut[(d+2)*lutWidth+int(row[d+2])]
		s3 += lut[(d+3)*lutWidth+int(row[d+3])]
	}
	for ; d < len(row); d++ {
		s0 += lut[d*lutWidth+int(row[d])]
	}
	return s0 + s1 + s2 + s3
}

// DistTo is the reference asymmetric distance: metric distance between q
// and decoded row i, computed directly (no table). LUTDist must agree with
// it up to float reassociation; tests and the invariant gate compare them.
func (c *Codes) DistTo(metric vec.Metric, q []float32, qNorm float32, i int) float32 {
	row := c.Row(i)
	if metric == vec.Euclidean {
		var s float32
		for d, code := range row {
			r := q[d] - (c.Min[d] + c.Step[d]*float32(code))
			s += r * r
		}
		return s
	}
	var dot float32
	for d, code := range row {
		dot += q[d] * (c.Min[d] + c.Step[d]*float32(code))
	}
	nb := c.Norms[i]
	if qNorm == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/(qNorm*nb)
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}

func sqrt64(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Validate checks structural consistency — the shape every other layer
// assumes — and that the affine map and norms are finite. Persist calls it
// on every loaded payload before installing codes into a block.
func (c *Codes) Validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("sq: non-positive dimension %d", c.Dim)
	}
	if c.N < 0 {
		return fmt.Errorf("sq: negative row count %d", c.N)
	}
	if len(c.Min) != c.Dim || len(c.Step) != c.Dim {
		return fmt.Errorf("sq: affine map has %d/%d entries for dim %d", len(c.Min), len(c.Step), c.Dim)
	}
	if len(c.Data) != c.N*c.Dim {
		return fmt.Errorf("sq: %d code bytes for %d rows of dim %d", len(c.Data), c.N, c.Dim)
	}
	if len(c.Norms) != c.N {
		return fmt.Errorf("sq: %d norms for %d rows", len(c.Norms), c.N)
	}
	if err := vec.CheckFinite(c.Min); err != nil {
		return fmt.Errorf("sq: min: %w", err)
	}
	if err := vec.CheckFinite(c.Step); err != nil {
		return fmt.Errorf("sq: step: %w", err)
	}
	if err := vec.CheckFinite(c.Norms); err != nil {
		return fmt.Errorf("sq: norms: %w", err)
	}
	for d, s := range c.Step {
		if s < 0 {
			return fmt.Errorf("sq: negative step %g at dimension %d", s, d)
		}
	}
	return nil
}
