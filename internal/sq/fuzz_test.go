package sq

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// FuzzTrainRoundtrip feeds arbitrary float payloads through Train and
// checks the quantizer's invariants hold for every finite input the fuzzer
// finds: Validate passes (finite parameters, consistent sizes), every
// decoded coordinate is within half a step of its original, and the cached
// norms match the decoded rows. Non-finite and empty payloads are skipped
// — stores reject NaN at ingest (vec.CheckFinite under the invariant
// gate), so they cannot reach Train in the real pipeline.
func FuzzTrainRoundtrip(f *testing.F) {
	f.Add([]byte{0, 0, 0x80, 0x3f, 0, 0, 0, 0x40, 0, 0, 0x40, 0x40, 0, 0, 0x80, 0x40}, uint8(2))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, dimByte uint8) {
		dim := int(dimByte)%8 + 1
		vals := make([]float32, 0, len(raw)/4)
		for i := 0; i+4 <= len(raw); i += 4 {
			bits := uint32(raw[i]) | uint32(raw[i+1])<<8 | uint32(raw[i+2])<<16 | uint32(raw[i+3])<<24
			v := math.Float32frombits(bits)
			if v-v != 0 { // NaN or Inf: ingest rejects these
				t.Skip("non-finite payload")
			}
			// Extreme magnitudes overflow float32 squared-norm and span
			// computations exactly as they would overflow real distance
			// kernels; real datasets are nowhere near, so bound the domain.
			if v > 1e15 || v < -1e15 {
				t.Skip("out-of-domain magnitude")
			}
			vals = append(vals, v)
		}
		n := len(vals) / dim
		if n == 0 {
			t.Skip("not enough data for one vector")
		}
		store := vec.NewStore(dim)
		for i := 0; i < n; i++ {
			if _, err := store.Append(vals[i*dim : (i+1)*dim]); err != nil {
				t.Fatal(err)
			}
		}

		c := Train(store, 0, n, TrainConfig{})
		if err := c.Validate(); err != nil {
			t.Fatalf("trained codes fail validation: %v", err)
		}
		dec := make([]float32, dim)
		for i := 0; i < n; i++ {
			c.Decode(i, dec)
			orig := store.At(i)
			for d := 0; d < dim; d++ {
				// Half a step of rounding error, plus float32 slack scaled
				// to the coordinate magnitudes involved.
				slack := float64(c.Step[d])/2 +
					1e-3*math.Max(1, math.Abs(float64(orig[d])))
				if diff := math.Abs(float64(dec[d] - orig[d])); diff > slack {
					t.Fatalf("row %d dim %d: decode error %v exceeds %v (orig %v, min %v, step %v)",
						i, d, diff, slack, orig[d], c.Min[d], c.Step[d])
				}
			}
			if want := vec.Norm(dec); math.Abs(float64(c.Norms[i]-want)) > 1e-2*math.Max(1, float64(want)) {
				t.Fatalf("row %d: cached norm %v, decoded norm %v", i, c.Norms[i], want)
			}
		}
	})
}
