package sq

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// fillStore appends n random dim-dimensional vectors drawn from rng.
func fillStore(t *testing.T, dim, n int, rng *rand.Rand) *vec.Store {
	t.Helper()
	s := vec.NewStore(dim)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64()) * float32(1+j%3)
		}
		if _, err := s.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestRoundtripError pins the quantizer's defining property: decoding an
// encoded coordinate lands within half a step of the original (nearest-
// value rounding), for every vector and dimension.
func TestRoundtripError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := fillStore(t, 12, 200, rng)
	c := Train(store, 0, store.Len(), TrainConfig{})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := make([]float32, c.Dim)
	for i := 0; i < c.N; i++ {
		c.Decode(i, dec)
		orig := store.At(i)
		for d := 0; d < c.Dim; d++ {
			bound := c.Step[d]/2 + 1e-5
			if diff := float64(dec[d] - orig[d]); math.Abs(diff) > float64(bound) {
				t.Fatalf("vector %d dim %d: decoded %v from %v, error %v exceeds step/2 = %v",
					i, d, dec[d], orig[d], diff, bound)
			}
		}
	}
}

// TestDegenerateBlocks covers the shapes that break naive quantizers:
// a constant dimension (zero span), a single-vector block, and a
// single-dimension store. All must train to finite parameters and decode
// exactly.
func TestDegenerateBlocks(t *testing.T) {
	t.Run("constant-dim", func(t *testing.T) {
		s := vec.NewStore(3)
		for i := 0; i < 10; i++ {
			if _, err := s.Append([]float32{5, float32(i), -2}); err != nil {
				t.Fatal(err)
			}
		}
		c := Train(s, 0, 10, TrainConfig{})
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.Step[0] != 0 || c.Step[2] != 0 {
			t.Fatalf("constant dims got nonzero steps %v, %v", c.Step[0], c.Step[2])
		}
		dec := make([]float32, 3)
		for i := 0; i < 10; i++ {
			c.Decode(i, dec)
			if dec[0] != 5 || dec[2] != -2 {
				t.Fatalf("constant dims decoded to %v, want [5 _ -2]", dec)
			}
		}
	})
	t.Run("single-vector", func(t *testing.T) {
		s := vec.NewStore(4)
		if _, err := s.Append([]float32{1, -3, 0.5, 100}); err != nil {
			t.Fatal(err)
		}
		c := Train(s, 0, 1, TrainConfig{})
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		dec := c.Decode(0, make([]float32, 4))
		want := []float32{1, -3, 0.5, 100}
		for d := range want {
			if dec[d] != want[d] {
				t.Fatalf("single vector decoded to %v, want %v", dec, want)
			}
		}
	})
	t.Run("sub-range", func(t *testing.T) {
		rng := rand.New(rand.NewSource(9))
		store := fillStore(t, 5, 64, rng)
		c := Train(store, 16, 48, TrainConfig{})
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.N != 32 {
			t.Fatalf("sub-range trained %d rows, want 32", c.N)
		}
		// Code row i stands for global row 16+i.
		dec := make([]float32, 5)
		c.Decode(0, dec)
		for d := range dec {
			diff := float64(dec[d] - store.At(16)[d])
			if math.Abs(diff) > float64(c.Step[d]/2+1e-5) {
				t.Fatalf("row 0 decodes against global 16 with error %v", diff)
			}
		}
	})
	t.Run("clip-sigma", func(t *testing.T) {
		// One wild outlier per dimension: with clipping the step shrinks,
		// without it the outlier dictates the range.
		s := vec.NewStore(2)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 99; i++ {
			if _, err := s.Append([]float32{float32(rng.NormFloat64()), float32(rng.NormFloat64())}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Append([]float32{1000, -1000}); err != nil {
			t.Fatal(err)
		}
		wide := Train(s, 0, 100, TrainConfig{})
		tight := Train(s, 0, 100, TrainConfig{ClipSigma: 3})
		if err := tight.Validate(); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 2; d++ {
			if tight.Step[d] >= wide.Step[d] {
				t.Fatalf("dim %d: clipped step %v not tighter than unclipped %v", d, tight.Step[d], wide.Step[d])
			}
		}
	})
}

// TestLUTMatchesDecodedDistance checks the asymmetric kernel's contract:
// for both metrics, FillLUT + LUTDist computes exactly the metric distance
// between the query and the DECODED row (up to float error) — the same
// value DistTo computes directly. Equality with the decoded-row distance
// is what makes over-fetch + exact re-rank sound: the approximation error
// is entirely the quantizer's, never the kernel's.
func TestLUTMatchesDecodedDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	store := fillStore(t, 9, 120, rng)
	c := Train(store, 0, store.Len(), TrainConfig{})
	q := make([]float32, 9)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	lut := make([]float32, c.LUTLen())
	dec := make([]float32, c.Dim)
	for _, metric := range []vec.Metric{vec.Euclidean, vec.Angular} {
		c.FillLUT(metric, q, lut)
		qn := vec.Norm(q)
		for i := 0; i < c.N; i++ {
			got := c.LUTDist(metric, lut, qn, i)
			ref := c.DistTo(metric, q, qn, i)
			if diff := math.Abs(float64(got - ref)); diff > 1e-4 {
				t.Fatalf("%v row %d: LUT dist %v, direct decoded dist %v (diff %v)", metric, i, got, ref, diff)
			}
			c.Decode(i, dec)
			want := vec.Distance(metric, q, dec)
			if diff := math.Abs(float64(got - want)); diff > 1e-4 {
				t.Fatalf("%v row %d: LUT dist %v, vec.Distance on decoded %v (diff %v)", metric, i, got, want, diff)
			}
		}
	}
}

// TestAsymmetricMonotonicity checks that LUT distances preserve the
// ordering of true distances up to quantization resolution: whenever two
// rows' true distances differ by clearly more than the worst-case
// quantization slack, the LUT ranks them the same way.
func TestAsymmetricMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	store := fillStore(t, 6, 150, rng)
	c := Train(store, 0, store.Len(), TrainConfig{})
	q := make([]float32, 6)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	lut := make([]float32, c.LUTLen())
	c.FillLUT(vec.Euclidean, q, lut)
	qn := vec.Norm(q)

	// Worst-case |sqrt(lutDist) - trueDist| per row is half the step
	// vector's norm; a gap of twice that in unsquared distance can never
	// be inverted by quantization alone.
	var stepSq float64
	for _, s := range c.Step {
		stepSq += float64(s) * float64(s) / 4
	}
	slack := 2*math.Sqrt(stepSq) + 1e-4

	type scored struct{ lutD, trueD float64 }
	rows := make([]scored, c.N)
	for i := range rows {
		rows[i] = scored{
			lutD:  math.Sqrt(float64(c.LUTDist(vec.Euclidean, lut, qn, i))),
			trueD: math.Sqrt(float64(vec.Distance(vec.Euclidean, q, store.At(i)))),
		}
	}
	for i := range rows {
		for j := range rows {
			if rows[i].trueD+slack < rows[j].trueD && rows[i].lutD > rows[j].lutD {
				t.Fatalf("rows %d,%d: true dists %v < %v - slack, but LUT ranks them %v > %v",
					i, j, rows[i].trueD, rows[j].trueD, rows[i].lutD, rows[j].lutD)
			}
		}
	}
}

// TestNormsCache checks the trained per-row norms equal the decoded rows'
// norms — the angular LUT finish divides by them, so a stale cache skews
// every cosine distance.
func TestNormsCache(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	store := fillStore(t, 7, 80, rng)
	c := Train(store, 0, store.Len(), TrainConfig{})
	dec := make([]float32, c.Dim)
	for i := 0; i < c.N; i++ {
		c.Decode(i, dec)
		want := vec.Norm(dec)
		if diff := math.Abs(float64(c.Norms[i] - want)); diff > 1e-4 {
			t.Fatalf("row %d: cached norm %v, decoded norm %v", i, c.Norms[i], want)
		}
	}
}

// TestBytes pins the memory accounting the benchmarks report: 1 byte per
// coordinate plus the per-dim parameters and per-row norms.
func TestBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	store := fillStore(t, 16, 32, rng)
	c := Train(store, 0, 32, TrainConfig{})
	want := 16*32 + 4*(16+16+32)
	if got := c.Bytes(); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
}

func TestTrainPanicsOnBadRange(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	store := fillStore(t, 3, 10, rng)
	for _, r := range [][2]int{{-1, 5}, {5, 11}, {7, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Train(%d, %d) did not panic", r[0], r[1])
				}
			}()
			Train(store, r[0], r[1], TrainConfig{})
		}()
	}
}
