package graph

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// twoBlobsView creates two well-separated 2-d blobs of n points each with
// a kNN-style graph connecting only within blobs.
func twoBlobsView(t *testing.T, n int) (*CSR, vec.View) {
	t.Helper()
	s := vec.NewStore(2)
	rng := rand.New(rand.NewSource(1))
	for blob := 0; blob < 2; blob++ {
		cx := float32(blob * 100)
		for i := 0; i < n; i++ {
			if _, err := s.Append([]float32{cx + float32(rng.NormFloat64()), float32(rng.NormFloat64())}); err != nil {
				t.Fatal(err)
			}
		}
	}
	view := vec.View{Store: s, Lo: 0, Hi: 2 * n, Metric: vec.Euclidean}
	lists := make([][]int32, 2*n)
	// Ring within each blob: connected per blob, disconnected across.
	for blob := 0; blob < 2; blob++ {
		for i := 0; i < n; i++ {
			v := blob*n + i
			next := blob*n + (i+1)%n
			lists[v] = append(lists[v], int32(next))
			lists[next] = append(lists[next], int32(v))
		}
	}
	return FromLists(lists), view
}

func countComponents(g *CSR) int {
	n := g.NumNodes()
	rev := make([][]int32, n)
	for v := 0; v < n; v++ {
		for _, nb := range g.Neighbors(int32(v)) {
			rev[nb] = append(rev[nb], int32(v))
		}
	}
	seen := make([]bool, n)
	comps := 0
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		comps++
		queue := []int32{int32(start)}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, nb := range g.Neighbors(v) {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
			for _, nb := range rev[v] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return comps
}

func TestEnsureConnectedBridgesComponents(t *testing.T) {
	g, view := twoBlobsView(t, 50)
	if countComponents(g) != 2 {
		t.Fatalf("setup: expected 2 components, got %d", countComponents(g))
	}
	fixed := EnsureConnected(g, view, rand.New(rand.NewSource(2)))
	if got := countComponents(fixed); got != 1 {
		t.Errorf("after EnsureConnected: %d components, want 1", got)
	}
	if err := fixed.Validate(); err != nil {
		t.Errorf("bridged graph invalid: %v", err)
	}
	// Bridges are short: they connect near pairs across the cut, not
	// arbitrary nodes. Every added edge should be shorter than the blob
	// separation plus intra-blob diameter allowance.
	extra := fixed.NumEdges() - g.NumEdges()
	if extra < 2 || extra > 12 {
		t.Errorf("added %d edges, want a handful of bidirectional bridges", extra)
	}
}

func TestEnsureConnectedNoopWhenConnected(t *testing.T) {
	g, view := twoBlobsView(t, 30)
	fixed := EnsureConnected(g, view, rand.New(rand.NewSource(3)))
	again := EnsureConnected(fixed, view, rand.New(rand.NewSource(4)))
	if again.NumEdges() != fixed.NumEdges() {
		t.Errorf("second pass changed edges: %d -> %d", fixed.NumEdges(), again.NumEdges())
	}
}

func TestEnsureConnectedTrivialGraphs(t *testing.T) {
	var view vec.View
	empty := &CSR{Off: []int32{0}}
	if got := EnsureConnected(empty, view, rand.New(rand.NewSource(1))); got != empty {
		t.Error("empty graph should be returned unchanged")
	}
	single := FromLists([][]int32{{}})
	if got := EnsureConnected(single, view, rand.New(rand.NewSource(1))); got != single {
		t.Error("single-node graph should be returned unchanged")
	}
}

func TestEnsureConnectedManyComponents(t *testing.T) {
	// 10 isolated nodes on a line: every node its own component.
	s := vec.NewStore(1)
	for i := 0; i < 10; i++ {
		if _, err := s.Append([]float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	view := vec.View{Store: s, Lo: 0, Hi: 10, Metric: vec.Euclidean}
	g := FromLists(make([][]int32, 10))
	fixed := EnsureConnected(g, view, rand.New(rand.NewSource(5)))
	if got := countComponents(fixed); got != 1 {
		t.Errorf("%d components after repair, want 1", got)
	}
	if err := fixed.Validate(); err != nil {
		t.Errorf("repaired graph invalid: %v", err)
	}
}
