package graph

import "math/rand"

// EnsureConnected returns g augmented with the minimum bridging edges
// needed so that every node is reachable from every other when edges are
// followed in both directions.
//
// A pure kNN graph over clustered data splits into one component per
// cluster, which makes single-entry best-first search (Algorithm 2) blind
// to every cluster but the entry's. Production graph indexes repair this
// after construction (NGT's connectivity adjustment, Vamana's medoid
// links); this function does the same: it finds weakly-connected
// components with a BFS, then for each secondary component adds one
// bidirectional edge between a near pair of sampled nodes across the cut.
// The graph is modified by rebuilding; g itself is not mutated.
func EnsureConnected(g *CSR, view DistancerView, rng *rand.Rand) *CSR {
	n := g.NumNodes()
	if n <= 1 {
		return g
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	// Undirected reachability needs reverse edges; build in-degree lists.
	rev := make([][]int32, n)
	for v := 0; v < n; v++ {
		for _, nb := range g.Neighbors(int32(v)) {
			rev[nb] = append(rev[nb], int32(v))
		}
	}
	var comps [][]int32
	queue := make([]int32, 0, n)
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		id := int32(len(comps))
		queue = append(queue[:0], int32(start))
		comp[start] = id
		members := []int32{int32(start)}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, nb := range g.Neighbors(v) {
				if comp[nb] == -1 {
					comp[nb] = id
					members = append(members, nb)
					queue = append(queue, nb)
				}
			}
			for _, nb := range rev[v] {
				if comp[nb] == -1 {
					comp[nb] = id
					members = append(members, nb)
					queue = append(queue, nb)
				}
			}
		}
		comps = append(comps, members)
	}
	if len(comps) == 1 {
		return g
	}

	// Bridge every pair of components directly with their closest sampled
	// cross pairs. Pairwise (rather than spanning-tree) bridging matters
	// for search quality: with a tree, walking from cluster A to cluster B
	// may require passing through a cluster farther from the query than A,
	// and Algorithm 2's ε admission gate refuses such uphill moves once
	// the result set is full. A direct A-B bridge is always downhill.
	// Beyond pairCap components, pairwise bridging is quadratic, so the
	// smallest components collapse into their nearest larger neighbor
	// first via star bridging.
	const (
		sampleCap = 48
		bridges   = 2  // bidirectional edges per component pair
		pairCap   = 24 // max components bridged pairwise
	)
	samples := make([][]int32, len(comps))
	for i, c := range comps {
		samples[i] = sampleNodes(c, sampleCap, rng)
	}

	extra := make(map[int32][]int32)
	addBest := func(sideA, sideB []int32, count int) {
		type pair struct {
			a, b int32
			d    float32
		}
		best := make([]pair, 0, count)
		for _, a := range sideA {
			for _, b := range sideB {
				d := view.Dist(int(a), int(b))
				if len(best) < count {
					best = append(best, pair{a, b, d})
					for j := len(best) - 1; j > 0 && best[j].d < best[j-1].d; j-- {
						best[j], best[j-1] = best[j-1], best[j]
					}
					continue
				}
				if d < best[count-1].d {
					best[count-1] = pair{a, b, d}
					for j := count - 1; j > 0 && best[j].d < best[j-1].d; j-- {
						best[j], best[j-1] = best[j-1], best[j]
					}
				}
			}
		}
		for _, p := range best {
			extra[p.a] = append(extra[p.a], p.b)
			extra[p.b] = append(extra[p.b], p.a)
		}
	}

	if len(comps) > pairCap {
		// Sort component ids by size descending; star-bridge the tail
		// onto the largest pairCap components' pooled sample.
		bySize := make([]int, len(comps))
		for i := range bySize {
			bySize[i] = i
		}
		for i := 1; i < len(bySize); i++ {
			x := bySize[i]
			j := i - 1
			for j >= 0 && len(comps[bySize[j]]) < len(comps[x]) {
				bySize[j+1] = bySize[j]
				j--
			}
			bySize[j+1] = x
		}
		var pool []int32
		for _, ci := range bySize[:pairCap] {
			pool = append(pool, sampleNodes(samples[ci], 8, rng)...)
		}
		for _, ci := range bySize[pairCap:] {
			addBest(samples[ci], pool, bridges)
		}
		// Pairwise-bridge the big components below.
		kept := make([][]int32, 0, pairCap)
		for _, ci := range bySize[:pairCap] {
			kept = append(kept, samples[ci])
		}
		samples = kept
	}
	for i := 0; i < len(samples); i++ {
		for j := i + 1; j < len(samples); j++ {
			addBest(samples[i], samples[j], bridges)
		}
	}

	lists := make([][]int32, n)
	for v := 0; v < n; v++ {
		nbs := g.Neighbors(int32(v))
		add := extra[int32(v)]
		if len(add) == 0 {
			lists[v] = nbs
			continue
		}
		merged := make([]int32, 0, len(nbs)+len(add))
		merged = append(merged, nbs...)
		for _, a := range add {
			dup := false
			for _, existing := range merged {
				if existing == a {
					dup = true
					break
				}
			}
			if !dup {
				merged = append(merged, a)
			}
		}
		lists[v] = merged
	}
	return FromLists(lists)
}

// DistancerView is the subset of vec.View that EnsureConnected needs;
// declared here to avoid an import cycle in tests that stub distances.
type DistancerView interface {
	Dist(i, j int) float32
}

func sampleNodes(pool []int32, limit int, rng *rand.Rand) []int32 {
	if len(pool) <= limit {
		out := make([]int32, len(pool))
		copy(out, pool)
		return out
	}
	out := make([]int32, limit)
	perm := rng.Perm(len(pool))
	for i := 0; i < limit; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}
