package graph

import (
	"math/rand"

	"repro/internal/invariant"
	"repro/internal/theap"
	"repro/internal/vec"
)

// SearchParams carries the tunables of Algorithm 2.
type SearchParams struct {
	// MC is the maximum candidate-set size M_C: when the frontier grows
	// past it, only the M_C nearest candidates are retained (line 16-17).
	MC int
	// Eps is the range-extension factor ε ≥ 1 controlling how far past the
	// current k-th distance the traversal keeps expanding once the result
	// set is full (line 11). Larger values trade speed for recall; the
	// paper sweeps 1.00–1.40 in steps of 0.02.
	Eps float32
}

// Searcher runs time-filtered best-first graph searches (Algorithm 2) over
// a fixed graph + view pair, reusing its internal buffers between queries.
// A Searcher is NOT safe for concurrent use; create one per goroutine.
type Searcher struct {
	visited  []uint32 // epoch-stamped instead of cleared per query
	epoch    uint32
	frontier theap.MinQueue
}

// NewSearcher returns a Searcher sized for graphs up to n nodes. It grows
// on demand, so n is only a pre-allocation hint.
func NewSearcher(n int) *Searcher {
	return &Searcher{visited: make([]uint32, n)}
}

// Filter restricts which nodes may enter the result set. For a TkNN query
// it is the time-window test t_s <= t < t_e on the node's timestamp; nodes
// failing the filter are still traversed (they guide the walk), they just
// never become results — exactly the SF modification in §3.2.2.
type Filter func(local int32) bool

// Search runs Algorithm 2: a best-first walk of g starting from entry,
// collecting into a size-k result heap only nodes accepted by filter.
// Results are returned in ascending distance order with local node ids.
//
// entry should be a uniformly random node of the view (line 1 of the
// algorithm); callers pass it in so that query-level determinism is under
// their control.
func (s *Searcher) Search(g *CSR, view vec.View, q []float32, k int, filter Filter, p SearchParams, entry int32) []theap.Neighbor {
	n := g.NumNodes()
	if n == 0 || k <= 0 {
		return nil
	}
	// Euclidean views compare squared distances, so the range-extension
	// factor is squared to keep ε's meaning ("explore up to ε times the
	// current k-th distance") metric-independent and comparable to the
	// paper's 1.00–1.40 sweep.
	eps := p.Eps
	if view.Metric == vec.Euclidean {
		eps *= eps
	}
	s.beginEpoch(n)
	result := theap.NewTopK(k)
	s.frontier.Reset()

	s.markSeen(entry)
	s.frontier.Push(theap.Neighbor{ID: entry, Dist: view.DistTo(q, int(entry))})

	// The loop runs until the candidate set is exhausted (line 5): unlike
	// many best-first searches there is no early break on the frontier
	// minimum — exploration is bounded instead by the ε admission gate
	// (line 11) and the M_C frontier cap (lines 16-17), exactly as the
	// paper specifies. ε therefore directly controls how much of the
	// query's neighborhood is visited.
	for s.frontier.Len() > 0 {
		cur := s.frontier.Pop() // argmin over C \ V (line 6)

		// Lines 8-11: expand neighbors, bounding by eps * worst(R) once
		// the result set is full.
		var bound float32
		bounded := false
		if result.Full() {
			bound = eps * result.Worst()
			bounded = true
		}
		for _, nb := range g.Neighbors(cur.ID) {
			if s.seen(nb) {
				continue
			}
			s.markSeen(nb)
			d := view.DistTo(q, int(nb))
			if bounded && d >= bound {
				continue
			}
			s.frontier.Push(theap.Neighbor{ID: nb, Dist: d})
		}

		// Lines 12-15: admit the visited node into R if it passes the
		// time filter.
		if filter == nil || filter(cur.ID) {
			result.Push(cur)
		}

		// Lines 16-17: cap the candidate set at M_C nearest.
		if p.MC > 0 && s.frontier.Len() > p.MC {
			s.frontier.TrimTo(p.MC)
		}
	}
	out := result.Items()
	if invariant.Enabled {
		for i, nb := range out {
			invariant.Checkf(nb.ID >= 0 && int(nb.ID) < n,
				"graph: Search result %d has id %d outside [0,%d)", i, nb.ID, n)
			invariant.Checkf(filter == nil || filter(nb.ID),
				"graph: Search result %d (id %d) fails the time filter", i, nb.ID)
			invariant.Checkf(i == 0 || !theap.Less(out[i], out[i-1]),
				"graph: Search results not ascending at %d", i)
		}
	}
	return out
}

// RandomEntry picks a uniform entry node for a graph with n nodes.
func RandomEntry(rng *rand.Rand, n int) int32 {
	return int32(rng.Intn(n))
}

func (s *Searcher) beginEpoch(n int) {
	if len(s.visited) < n {
		grown := make([]uint32, n)
		copy(grown, s.visited)
		s.visited = grown
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: clear and restart
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
}

func (s *Searcher) seen(i int32) bool { return s.visited[i] == s.epoch }
func (s *Searcher) markSeen(i int32)  { s.visited[i] = s.epoch }
