package graph

import (
	"math/rand"

	"repro/internal/invariant"
	"repro/internal/sq"
	"repro/internal/theap"
	"repro/internal/vec"
)

// SearchParams carries the tunables of Algorithm 2.
type SearchParams struct {
	// MC is the maximum candidate-set size M_C: when the frontier grows
	// past it, only the M_C nearest candidates are retained (line 16-17).
	MC int
	// Eps is the range-extension factor ε ≥ 1 controlling how far past the
	// current k-th distance the traversal keeps expanding once the result
	// set is full (line 11). Larger values trade speed for recall; the
	// paper sweeps 1.00–1.40 in steps of 0.02.
	Eps float32
}

// Searcher runs time-filtered best-first graph searches (Algorithm 2) over
// a fixed graph + view pair, reusing its internal buffers between queries.
// A Searcher is NOT safe for concurrent use; create one per goroutine.
type Searcher struct {
	visited  []uint32 // epoch-stamped instead of cleared per walk
	epoch    uint32
	admitted []uint32 // epoch-stamped per query, dedups restarts' results
	aEpoch   uint32
	frontier theap.MinQueue
	entryBuf []int32  // reused entry-seed backing for the compat Search path
	eval     distEval // the current query's candidate scorer (flat or compressed)
}

// distEval scores walk candidates for one query. The flat form reads the
// store through a view with the query's squared norm hoisted; the
// compressed form (codes != nil) reads SQ8 codes through the caller's
// asymmetric lookup table. It lives inside the Searcher — not on the stack
// — so handing it to the walk never escapes a per-query allocation, and it
// is a struct with a branch rather than a function value for the same
// reason (a per-query closure is one heap allocation per block per query).
type distEval struct {
	view   vec.View
	qsq    float32 // SquaredNorm(query), flat angular path
	codes  *sq.Codes
	lut    []float32
	qn     float32 // Norm(query), compressed angular path
	metric vec.Metric
}

// dist scores local node i against the query.
//
//tknn:hotpath
func (e *distEval) dist(q []float32, i int32) float32 {
	if e.codes != nil {
		return e.codes.LUTDist(e.metric, e.lut, e.qn, int(i))
	}
	return e.view.DistToCached(q, e.qsq, int(i))
}

// NewSearcher returns a Searcher sized for graphs up to n nodes. It grows
// on demand, so n is only a pre-allocation hint.
func NewSearcher(n int) *Searcher {
	return &Searcher{visited: make([]uint32, n), admitted: make([]uint32, n)}
}

// Filter restricts which nodes may enter the result set. For a TkNN query
// it is the time-window test t_s <= t < t_e on the node's timestamp; nodes
// failing the filter are still traversed (they guide the walk), they just
// never become results — exactly the SF modification in §3.2.2.
type Filter func(local int32) bool

// timeFilter is the walk's admission test in data form. The hot path
// (SearchInto) describes the time window as (times, ts, te) so that no
// closure needs to be built per query; the compat Search path wraps its
// Filter func in the fn field. A nil times with a nil fn admits everything.
type timeFilter struct {
	times  []int64 // local-indexed: times[i] belongs to view node i
	ts, te int64
	fn     Filter
}

// ok reports whether the node at local index i may enter the result set.
func (f *timeFilter) ok(i int32) bool {
	if f.fn != nil {
		return f.fn(i)
	}
	if f.times == nil {
		return true
	}
	t := f.times[i]
	return t >= f.ts && t < f.te
}

// Search runs Algorithm 2: a best-first walk of g starting from entry,
// collecting into a size-k result heap only nodes accepted by filter.
// Results are returned in ascending distance order with local node ids.
//
// entry should be a uniformly random node of the view (line 1 of the
// algorithm); callers pass it in so that query-level determinism is under
// their control.
//
// Additional entries run as independent restarts: each gets its own
// best-first walk (own frontier, own visited set) so the walks' basins
// union — a single unlucky entry can get absorbed into a local attractor
// the M_C cap and ε-bound will not let it escape, and with independent
// walks a miss requires every seed to be unlucky at once (miss rates
// multiply). The restarts share one result heap, so once an early walk
// has found good neighbors, later walks inherit the tight ε-bound and
// collapse after a handful of expansions; a restart only pays full price
// when the walks before it got trapped, which is exactly when it is
// needed.
func (s *Searcher) Search(g *CSR, view vec.View, q []float32, k int, filter Filter, p SearchParams, entry int32, more ...int32) []theap.Neighbor {
	n := g.NumNodes()
	if n == 0 || k <= 0 {
		return nil
	}
	result := theap.NewTopK(k)
	f := timeFilter{fn: filter}
	s.entryBuf = append(s.entryBuf[:0], entry)
	s.entryBuf = append(s.entryBuf, more...)
	s.searchInto(result, g, view, q, &f, p, s.entryBuf)

	out := result.Items()
	if invariant.Enabled {
		for i, nb := range out {
			invariant.Checkf(nb.ID >= 0 && int(nb.ID) < n,
				"graph: Search result %d has id %d outside [0,%d)", i, nb.ID, n)
			invariant.Checkf(filter == nil || filter(nb.ID),
				"graph: Search result %d (id %d) fails the time filter", i, nb.ID)
			invariant.Checkf(i == 0 || !theap.Less(out[i], out[i-1]),
				"graph: Search results not ascending at %d", i)
		}
	}
	return out
}

// SearchInto is the allocation-free form of Search: the result heap is
// caller-owned (reset here to the query's k), the time window arrives as
// data instead of a closure — times is local-indexed, nil admits every node
// — and the entry seeds arrive as a slice (entries[0] is the primary walk,
// the rest are restarts). Retained neighbors are left in result, unsorted;
// callers drain with result.Items(). It is a no-op on an empty graph, an
// empty entry list, or k <= 0.
//
//tknn:hotpath
func (s *Searcher) SearchInto(result *theap.TopK, g *CSR, view vec.View, q []float32, times []int64, ts, te int64, p SearchParams, entries []int32, k int) {
	if g.NumNodes() == 0 || len(entries) == 0 || k <= 0 {
		return
	}
	result.ResetK(k)
	f := timeFilter{times: times, ts: ts, te: te}
	s.searchInto(result, g, view, q, &f, p, entries)
}

// SearchCodesInto is SearchInto over a compressed block: candidates are
// scored against SQ8 codes through lut (built by codes.FillLUT for this
// query and metric) instead of the float32 store, so the walk reads one
// byte per coordinate. qNorm is the query's L2 norm (vec.Norm), consumed
// by the angular finish. Distances in result are asymmetric-approximate;
// callers over-fetch and re-rank exactly (see exec's compressed kernels).
//
//tknn:hotpath
func (s *Searcher) SearchCodesInto(result *theap.TopK, g *CSR, codes *sq.Codes, lut []float32, metric vec.Metric, qNorm float32, times []int64, ts, te int64, p SearchParams, entries []int32, k int) {
	if g.NumNodes() == 0 || len(entries) == 0 || k <= 0 {
		return
	}
	result.ResetK(k)
	f := timeFilter{times: times, ts: ts, te: te}
	s.eval = distEval{codes: codes, lut: lut, qn: qNorm, metric: metric}
	s.run(result, g, nil, &f, p, metric, entries)
}

// searchInto runs the query's walks against a prepared filter: the shared
// core of Search and SearchInto.
func (s *Searcher) searchInto(result *theap.TopK, g *CSR, view vec.View, q []float32, f *timeFilter, p SearchParams, entries []int32) {
	s.eval = distEval{view: view, qsq: vec.SquaredNorm(q), metric: view.Metric}
	s.run(result, g, q, f, p, view.Metric, entries)
}

// run executes the query's walks with the prepared scorer (s.eval).
func (s *Searcher) run(result *theap.TopK, g *CSR, q []float32, f *timeFilter, p SearchParams, metric vec.Metric, entries []int32) {
	// Euclidean scorers compare squared distances, so the range-extension
	// factor is squared to keep ε's meaning ("explore up to ε times the
	// current k-th distance") metric-independent and comparable to the
	// paper's 1.00–1.40 sweep.
	eps := p.Eps
	if metric == vec.Euclidean {
		eps *= eps
	}
	s.beginQuery(g.NumNodes())
	s.walk(g, q, f, p, eps, entries[0], result, false)
	for _, e := range entries[1:] {
		s.walk(g, q, f, p, eps, e, result, true)
	}
}

// walk is one best-first traversal (Algorithm 2) from entry, admitting
// into the shared result heap. Each walk gets a fresh visited epoch so it
// can traverse nodes earlier walks saw; admitted stamps persist across the
// query's walks so a node enters the result heap at most once.
//
// restart marks walks after the first. They inherit the ε-bound the
// earlier walks established, which would strand a seed that starts outside
// it (its very first expansion gets pruned); a restart may therefore
// always expand a neighbor strictly closer than the node being expanded —
// pure greedy descent is allowed from anywhere, and the full ε-bounded
// broadening resumes once the walk is inside the bound. The first walk is
// Algorithm 2 verbatim.
func (s *Searcher) walk(g *CSR, q []float32, filter *timeFilter, p SearchParams, eps float32, entry int32, result *theap.TopK, restart bool) {
	s.beginEpoch(g.NumNodes())
	s.frontier.Reset()
	s.markSeen(entry)
	s.frontier.Push(theap.Neighbor{ID: entry, Dist: s.eval.dist(q, entry)})

	// The loop runs until the candidate set is exhausted (line 5): unlike
	// many best-first searches there is no early break on the frontier
	// minimum — exploration is bounded instead by the ε admission gate
	// (line 11) and the M_C frontier cap (lines 16-17), exactly as the
	// paper specifies. ε therefore directly controls how much of the
	// query's neighborhood is visited.
	for s.frontier.Len() > 0 {
		cur := s.frontier.Pop() // argmin over C \ V (line 6)

		// Lines 8-11: expand neighbors, bounding by eps * worst(R) once
		// the result set is full.
		var bound float32
		bounded := false
		if result.Full() {
			bound = eps * result.Worst()
			bounded = true
		}
		for _, nb := range g.Neighbors(cur.ID) {
			if s.seen(nb) {
				continue
			}
			s.markSeen(nb)
			d := s.eval.dist(q, nb)
			if bounded && d >= bound && !(restart && d < cur.Dist) {
				continue
			}
			s.frontier.Push(theap.Neighbor{ID: nb, Dist: d})
		}

		// Lines 12-15: admit the visited node into R if it passes the
		// time filter and no earlier walk already admitted it (a node's
		// distance is fixed, so re-admission could only duplicate).
		if filter.ok(cur.ID) && s.admitted[cur.ID] != s.aEpoch {
			s.admitted[cur.ID] = s.aEpoch
			result.Push(cur)
		}

		// Lines 16-17: cap the candidate set at M_C nearest.
		if p.MC > 0 && s.frontier.Len() > p.MC {
			s.frontier.TrimTo(p.MC)
		}
	}
}

// RandomEntry picks a uniform entry node for a graph with n nodes.
func RandomEntry(rng *rand.Rand, n int) int32 {
	return int32(rng.Intn(n))
}

// beginQuery starts a new admitted epoch (one per Search call).
func (s *Searcher) beginQuery(n int) {
	if len(s.admitted) < n {
		//lint:ignore hotpath-alloc cold-start growth; the admitted array is retained for every later query
		grown := make([]uint32, n)
		copy(grown, s.admitted)
		s.admitted = grown
	}
	s.aEpoch++
	if s.aEpoch == 0 { // wrapped: clear and restart
		for i := range s.admitted {
			s.admitted[i] = 0
		}
		s.aEpoch = 1
	}
}

// beginEpoch starts a new visited epoch (one per walk).
func (s *Searcher) beginEpoch(n int) {
	if len(s.visited) < n {
		//lint:ignore hotpath-alloc cold-start growth; the visited array is retained for every later query
		grown := make([]uint32, n)
		copy(grown, s.visited)
		s.visited = grown
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: clear and restart
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
}

func (s *Searcher) seen(i int32) bool { return s.visited[i] == s.epoch }
func (s *Searcher) markSeen(i int32)  { s.visited[i] = s.epoch }
