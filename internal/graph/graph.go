// Package graph holds the proximity-graph machinery shared by every
// graph-backed index in this repository: a compact CSR adjacency
// representation, the Builder interface that NNDescent and NSW implement,
// and the time-filtered best-first search of the paper's Algorithm 2
// ("Graph-based SF Query Process"). MBI runs this search inside each
// selected block; the SF baseline runs it over the whole database.
package graph

import (
	"fmt"

	"repro/internal/vec"
)

// CSR is a directed adjacency list in compressed sparse row form.
// Node i's out-neighbors are Adj[Off[i]:Off[i+1]]. Node ids are local to
// the view the graph was built over.
type CSR struct {
	Off []int32
	Adj []int32
}

// NumNodes returns the number of nodes in the graph.
func (g *CSR) NumNodes() int {
	if len(g.Off) == 0 {
		return 0
	}
	return len(g.Off) - 1
}

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() int { return len(g.Adj) }

// Neighbors returns node i's out-neighbor slice (aliasing the CSR memory).
func (g *CSR) Neighbors(i int32) []int32 {
	return g.Adj[g.Off[i]:g.Off[i+1]]
}

// FromLists converts per-node adjacency lists to CSR form.
func FromLists(lists [][]int32) *CSR {
	off := make([]int32, len(lists)+1)
	total := 0
	for i, l := range lists {
		total += len(l)
		off[i+1] = int32(total)
	}
	adj := make([]int32, 0, total)
	for _, l := range lists {
		adj = append(adj, l...)
	}
	return &CSR{Off: off, Adj: adj}
}

// Validate checks structural sanity: monotone offsets and in-range
// neighbor ids with no self-loops. It is used by tests and by the
// deserializer to reject corrupt input.
func (g *CSR) Validate() error {
	n := g.NumNodes()
	if len(g.Off) == 0 {
		if len(g.Adj) != 0 {
			return fmt.Errorf("graph: edges without offsets")
		}
		return nil
	}
	if g.Off[0] != 0 {
		return fmt.Errorf("graph: first offset is %d, want 0", g.Off[0])
	}
	// Bound-check every offset before any slicing: Validate runs on
	// deserialized input, where offsets can be arbitrary garbage.
	for i := 0; i < n; i++ {
		if g.Off[i+1] < g.Off[i] {
			return fmt.Errorf("graph: offsets not monotone at node %d", i)
		}
		if int(g.Off[i+1]) > len(g.Adj) {
			return fmt.Errorf("graph: offset %d exceeds %d edges", g.Off[i+1], len(g.Adj))
		}
	}
	if int(g.Off[n]) != len(g.Adj) {
		return fmt.Errorf("graph: last offset %d != len(adj) %d", g.Off[n], len(g.Adj))
	}
	for i := 0; i < n; i++ {
		for _, nb := range g.Adj[g.Off[i]:g.Off[i+1]] {
			if nb < 0 || int(nb) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d (n=%d)", i, nb, n)
			}
			if int(nb) == i {
				return fmt.Errorf("graph: node %d has a self-loop", i)
			}
		}
	}
	return nil
}

// ValidateDegree checks that every node's out-degree is at most maxDeg.
// Builders call it (under the invariant gate) on their raw output before
// EnsureConnected, which may legitimately push a few bridge endpoints past
// the construction cap.
func (g *CSR) ValidateDegree(maxDeg int) error {
	for i := 0; i < g.NumNodes(); i++ {
		if d := int(g.Off[i+1] - g.Off[i]); d > maxDeg {
			return fmt.Errorf("graph: node %d has out-degree %d, cap %d", i, d, maxDeg)
		}
	}
	return nil
}

// Builder constructs a proximity graph over the vectors of a view.
// Implementations must be safe for concurrent use by multiple goroutines —
// MBI's bottom-up block merging builds sibling blocks in parallel with the
// same Builder value.
type Builder interface {
	// Build returns a proximity graph over view. seed drives any internal
	// randomization so that index construction is reproducible.
	Build(view vec.View, seed int64) *CSR

	// Name identifies the builder in logs and experiment output.
	Name() string
}
