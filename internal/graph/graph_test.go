package graph

import (
	"math/rand"
	"testing"

	"repro/internal/theap"
	"repro/internal/vec"
)

func TestFromListsAndAccessors(t *testing.T) {
	g := FromLists([][]int32{{1, 2}, {0}, {}})
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if nb := g.Neighbors(0); len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Errorf("Neighbors(0) = %v", nb)
	}
	if nb := g.Neighbors(2); len(nb) != 0 {
		t.Errorf("Neighbors(2) = %v, want empty", nb)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		g    *CSR
	}{
		{"out of range", &CSR{Off: []int32{0, 1}, Adj: []int32{5}}},
		{"negative", &CSR{Off: []int32{0, 1}, Adj: []int32{-1}}},
		{"self loop", &CSR{Off: []int32{0, 1}, Adj: []int32{0}}},
		{"non-monotone", &CSR{Off: []int32{0, 2, 1}, Adj: []int32{1, 0}}},
		{"bad first offset", &CSR{Off: []int32{1, 2}, Adj: []int32{0, 1}}},
		{"length mismatch", &CSR{Off: []int32{0, 1}, Adj: []int32{1, 0}}},
		{"edges without offsets", &CSR{Adj: []int32{0}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt graph", c.name)
		}
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := (&CSR{}).Validate(); err != nil {
		t.Errorf("empty graph rejected: %v", err)
	}
	if err := (&CSR{Off: []int32{0}}).Validate(); err != nil {
		t.Errorf("zero-node graph rejected: %v", err)
	}
}

// lineGraphView builds a 1-d dataset 0..n-1 at unit spacing with a path
// graph connecting consecutive points — searches on it have predictable
// exact answers.
func lineGraphView(t *testing.T, n int) (*CSR, vec.View) {
	t.Helper()
	s := vec.NewStore(1)
	lists := make([][]int32, n)
	for i := 0; i < n; i++ {
		if _, err := s.Append([]float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			lists[i] = append(lists[i], int32(i-1))
		}
		if i < n-1 {
			lists[i] = append(lists[i], int32(i+1))
		}
	}
	return FromLists(lists), vec.View{Store: s, Lo: 0, Hi: n, Metric: vec.Euclidean}
}

func TestSearchFindsExactOnPathGraph(t *testing.T) {
	g, view := lineGraphView(t, 100)
	s := NewSearcher(100)
	p := SearchParams{MC: 32, Eps: 1.2}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		target := float32(rng.Intn(100))
		res := s.Search(g, view, []float32{target}, 3, nil, p, RandomEntry(rng, 100))
		if len(res) != 3 {
			t.Fatalf("got %d results, want 3", len(res))
		}
		if res[0].ID != int32(target) || res[0].Dist != 0 {
			t.Fatalf("nearest to %g = %v", target, res[0])
		}
	}
}

func TestSearchHonorsFilter(t *testing.T) {
	g, view := lineGraphView(t, 100)
	s := NewSearcher(100)
	p := SearchParams{MC: 64, Eps: 1.4}
	// Only even ids may be results.
	filter := func(id int32) bool { return id%2 == 0 }
	res := s.Search(g, view, []float32{50}, 5, filter, p, 0)
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	for _, r := range res {
		if r.ID%2 != 0 {
			t.Errorf("filtered-out id %d in results", r.ID)
		}
	}
	if res[0].ID != 50 {
		t.Errorf("nearest even to 50 = %v, want id 50", res[0])
	}
}

func TestSearchResultsSortedAscending(t *testing.T) {
	g, view := lineGraphView(t, 64)
	s := NewSearcher(64)
	res := s.Search(g, view, []float32{10.4}, 8, nil, SearchParams{MC: 32, Eps: 1.3}, 63)
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatalf("results not sorted: %v", res)
		}
	}
}

func TestSearchEmptyGraphAndBadK(t *testing.T) {
	s := NewSearcher(0)
	var view vec.View
	if got := s.Search(&CSR{Off: []int32{0}}, view, []float32{1}, 3, nil, SearchParams{MC: 8, Eps: 1.1}, 0); got != nil {
		t.Errorf("search on empty graph = %v, want nil", got)
	}
	g, v := lineGraphView(t, 4)
	if got := s.Search(g, v, []float32{1}, 0, nil, SearchParams{MC: 8, Eps: 1.1}, 0); got != nil {
		t.Errorf("search with k=0 = %v, want nil", got)
	}
}

func TestSearchFewerMatchesThanK(t *testing.T) {
	g, view := lineGraphView(t, 20)
	s := NewSearcher(20)
	// Only ids 3 and 7 pass the filter; eps generous so the whole graph
	// is explored.
	filter := func(id int32) bool { return id == 3 || id == 7 }
	res := s.Search(g, view, []float32{5}, 10, filter, SearchParams{MC: 64, Eps: 100}, 0)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
}

func TestSearcherEpochReuse(t *testing.T) {
	g, view := lineGraphView(t, 30)
	s := NewSearcher(0) // starts empty, must grow
	for i := 0; i < 5; i++ {
		res := s.Search(g, view, []float32{float32(i * 5)}, 1, nil, SearchParams{MC: 16, Eps: 1.2}, 0)
		if len(res) != 1 || res[0].ID != int32(i*5) {
			t.Fatalf("query %d: got %v", i, res)
		}
	}
}

func TestSearcherEpochWraparound(t *testing.T) {
	g, view := lineGraphView(t, 10)
	s := NewSearcher(10)
	s.epoch = ^uint32(0) - 1 // force a wrap within two searches
	for i := 0; i < 3; i++ {
		res := s.Search(g, view, []float32{4}, 1, nil, SearchParams{MC: 16, Eps: 1.2}, 0)
		if len(res) != 1 || res[0].ID != 4 {
			t.Fatalf("post-wrap query %d: got %v", i, res)
		}
	}
}

func TestSearchMCTrimStillFindsNearWithGoodEntry(t *testing.T) {
	// With a tiny MC the frontier is trimmed aggressively; starting at the
	// target's own node must still return it.
	g, view := lineGraphView(t, 200)
	s := NewSearcher(200)
	res := s.Search(g, view, []float32{123}, 1, nil, SearchParams{MC: 2, Eps: 1.01}, 123)
	if len(res) != 1 || res[0].ID != 123 {
		t.Fatalf("got %v, want id 123", res)
	}
}

func TestRandomEntryInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		e := RandomEntry(rng, 7)
		if e < 0 || e >= 7 {
			t.Fatalf("entry %d out of range", e)
		}
	}
}

// TestSearchNeverReturnsDuplicates guards the seen-set logic.
func TestSearchNeverReturnsDuplicates(t *testing.T) {
	g, view := lineGraphView(t, 80)
	s := NewSearcher(80)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		res := s.Search(g, view, []float32{float32(rng.Intn(80))}, 10, nil,
			SearchParams{MC: 16, Eps: 1.3}, RandomEntry(rng, 80))
		seen := map[int32]bool{}
		for _, r := range res {
			if seen[r.ID] {
				t.Fatalf("duplicate id %d in %v", r.ID, res)
			}
			seen[r.ID] = true
		}
	}
}

var sinkNeighbors []theap.Neighbor

func BenchmarkSearchPathGraph(b *testing.B) {
	s := vec.NewStore(1)
	n := 10000
	lists := make([][]int32, n)
	for i := 0; i < n; i++ {
		if _, err := s.Append([]float32{float32(i)}); err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			lists[i] = append(lists[i], int32(i-1))
		}
		if i < n-1 {
			lists[i] = append(lists[i], int32(i+1))
		}
	}
	g := FromLists(lists)
	view := vec.View{Store: s, Lo: 0, Hi: n, Metric: vec.Euclidean}
	sr := NewSearcher(n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkNeighbors = sr.Search(g, view, []float32{float32(rng.Intn(n))}, 10, nil,
			SearchParams{MC: 32, Eps: 1.1}, RandomEntry(rng, n))
	}
}
