package tknn

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/bsbf"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/sf"
)

// BSBF is the Binary-Search-and-Brute-Force baseline (Algorithm 1).
// Queries are exact. It satisfies Index.
type BSBF struct {
	dim   int
	inner *bsbf.Index
	mu    sync.RWMutex
	x     exec.Executor
}

// NewBSBF creates an empty BSBF index.
func NewBSBF(dim int, metric Metric) (*BSBF, error) {
	return NewBSBFWithOptions(BSBFOptions{Dim: dim, Metric: metric})
}

// BSBFOptions configures a BSBF index beyond dimension and metric.
type BSBFOptions struct {
	// Dim is the vector dimension. Required.
	Dim int
	// Metric is the distance function. Default Euclidean.
	Metric Metric
	// Compression selects per-chunk vector compression: with
	// CompressionSQ8 each full run of ChunkSize appended rows is sealed
	// into a scalar quantizer, scans read 1-byte codes through an
	// asymmetric kernel, and an exact re-rank restores ordering. The
	// still-open tail is always scanned exactly.
	Compression Compression
	// RerankFactor is the compressed-scan over-fetch multiplier
	// (candidates = k·RerankFactor). 0 uses the executor default (4).
	RerankFactor int
	// ChunkSize is the row count sealed into one quantizer. 0 uses the
	// scan-subtask chunk size (8192).
	ChunkSize int
}

// NewBSBFWithOptions creates an empty BSBF index with explicit options.
func NewBSBFWithOptions(opts BSBFOptions) (*BSBF, error) {
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("tknn: dimension must be positive, got %d", opts.Dim)
	}
	if !opts.Metric.valid() {
		return nil, fmt.Errorf("tknn: invalid metric %d", opts.Metric)
	}
	if !opts.Compression.valid() {
		return nil, fmt.Errorf("tknn: invalid compression %d", opts.Compression)
	}
	inner, err := bsbf.NewWithConfig(opts.Dim, opts.Metric.internal(), bsbf.Config{
		Compression:  opts.Compression.internal(),
		RerankFactor: opts.RerankFactor,
		ChunkSize:    opts.ChunkSize,
	})
	if err != nil {
		return nil, err
	}
	return &BSBF{dim: opts.Dim, inner: inner, x: exec.New(0)}, nil
}

// SetQueryWorkers rebounds the intra-query scan pool: n <= 0 defaults to
// GOMAXPROCS, n == 1 scans sequentially.
func (b *BSBF) SetQueryWorkers(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.x = exec.New(n)
}

// Add implements Index.
func (b *BSBF) Add(v []float32, t int64) error {
	if len(v) != b.dim {
		return fmt.Errorf("%w: got %d, index has %d", ErrDimension, len(v), b.dim)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.inner.Append(v, t); err != nil {
		return fmt.Errorf("%w: %v", ErrTimestampOrder, err)
	}
	return nil
}

// Search implements Index. Results are exact.
func (b *BSBF) Search(q Query) ([]Result, error) {
	return b.SearchContext(context.Background(), q)
}

// SearchContext is Search through the shared executor: the window's scan
// chunks run across the query-worker pool, and a done context yields the
// best neighbors of the chunks that ran (a partial answer, not an error).
func (b *BSBF) SearchContext(ctx context.Context, q Query) ([]Result, error) {
	res, _, err := b.SearchDetailed(ctx, q)
	return res, err
}

// SearchDetailed is SearchContext plus stage timings and the Partial flag.
func (b *BSBF) SearchDetailed(ctx context.Context, q Query) ([]Result, SearchInfo, error) {
	if err := validateQuery(q, b.dim); err != nil {
		return nil, SearchInfo{}, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	ns, eo := b.inner.SearchContext(ctx, q.Vector, q.K, q.Start, q.End, b.x)
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{ID: int(n.ID), Dist: n.Dist}
	}
	// The bsbf package does not expose timestamps individually; recover
	// them through the window bounds: IDs are insertion indices.
	times := timesOfBSBF(b.inner)
	for i := range out {
		out[i].Time = times[out[i].ID]
	}
	return out, infoFrom(eo), nil
}

// SearchBatchContext fans queries across workers goroutines with the same
// batch semantics as MBI.SearchBatch: the first query error aborts, and a
// done context stops the batch with ctx.Err().
func (b *BSBF) SearchBatchContext(ctx context.Context, queries []Query, workers int) ([][]Result, error) {
	return searchBatchCtx(ctx, queries, workers, b.SearchContext)
}

// timesOfBSBF recovers the timestamp slice; split out for testability.
func timesOfBSBF(ix *bsbf.Index) []int64 { return ix.TimesRef() }

// Len implements Index.
func (b *BSBF) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.inner.Len()
}

// SFOptions configures the Search-and-Filtering baseline.
type SFOptions struct {
	// Dim is the vector dimension. Required.
	Dim int
	// Metric is the distance function. Default Euclidean.
	Metric Metric
	// Graph selects the graph construction algorithm. Default NNDescent.
	Graph GraphAlgorithm
	// GraphDegree is the proximity graph's neighbor count. Default 24.
	GraphDegree int
	// MaxCandidates is the search-time candidate cap M_C. Default
	// 2*GraphDegree.
	MaxCandidates int
	// Epsilon is the search range-extension factor ε >= 1. Default 1.1.
	Epsilon float64
	// RebuildEvery triggers an automatic full graph rebuild once that many
	// vectors have been added since the last build. Zero disables
	// automatic rebuilds (call Build explicitly). SF has no incremental
	// structure — this is the best it can do, and the contrast with MBI's
	// amortized insertion is the point of Figure 7a.
	RebuildEvery int
	// Seed drives graph-build randomization. Default 1.
	Seed int64
}

// ApplyDefaults fills unset fields with their defaults and validates.
func (o *SFOptions) ApplyDefaults() error {
	if o.Dim <= 0 {
		return fmt.Errorf("tknn: SFOptions.Dim must be positive, got %d", o.Dim)
	}
	if !o.Metric.valid() {
		return fmt.Errorf("tknn: invalid metric %d", o.Metric)
	}
	if o.GraphDegree == 0 {
		o.GraphDegree = 24
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 2 * o.GraphDegree
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1.1
	}
	if o.Epsilon < 1 {
		return fmt.Errorf("tknn: Epsilon must be >= 1, got %g", o.Epsilon)
	}
	if o.RebuildEvery < 0 {
		return fmt.Errorf("tknn: RebuildEvery must be non-negative, got %d", o.RebuildEvery)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// SF is the Search-and-Filtering baseline (§3.2.2): one proximity graph
// over the whole database, searched with time filtering. It satisfies
// Index.
type SF struct {
	opts       SFOptions
	inner      *sf.Index
	mu         sync.RWMutex
	sinceBuild int
	rebuilds   int
	// entrySalt seeds per-query entry-point randomness: each query hashes
	// (entrySalt, vector) into a plan-local entropy source, so concurrent
	// searches share no state — unlike the old mutex-guarded rand.Rand —
	// and the same query deterministically walks from the same entry.
	entrySalt uint64
	x         exec.Executor
}

// NewSF creates an empty SF index.
func NewSF(opts SFOptions) (*SF, error) {
	if err := opts.ApplyDefaults(); err != nil {
		return nil, err
	}
	mo := MBIOptions{Dim: opts.Dim, Graph: opts.Graph, GraphDegree: opts.GraphDegree}
	builder, err := mo.builder()
	if err != nil {
		return nil, err
	}
	return &SF{
		opts:      opts,
		inner:     sf.New(opts.Dim, opts.Metric.internal(), builder),
		entrySalt: uint64(opts.Seed) ^ 0x7366,
		x:         exec.New(0),
	}, nil
}

// Options returns the effective (defaulted) options.
func (s *SF) Options() SFOptions { return s.opts }

// Add implements Index. Vectors added after the last Build are covered by
// a brute-force tail scan until the next rebuild.
func (s *SF) Add(v []float32, t int64) error {
	if len(v) != s.opts.Dim {
		return fmt.Errorf("%w: got %d, index has %d", ErrDimension, len(v), s.opts.Dim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.inner.Append(v, t); err != nil {
		return fmt.Errorf("%w: %v", ErrTimestampOrder, err)
	}
	s.sinceBuild++
	if s.opts.RebuildEvery > 0 && s.sinceBuild >= s.opts.RebuildEvery {
		s.buildLocked()
	}
	return nil
}

// Build (re)constructs the proximity graph over everything added so far.
func (s *SF) Build() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buildLocked()
}

func (s *SF) buildLocked() {
	s.rebuilds++
	s.inner.BuildGraph(s.opts.Seed + int64(s.rebuilds))
	s.sinceBuild = 0
}

// Built returns how many vectors the current graph covers.
func (s *SF) Built() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Built()
}

// Search implements Index.
func (s *SF) Search(q Query) ([]Result, error) {
	return s.SearchContext(context.Background(), q)
}

// SearchContext is Search through the shared executor: the graph walk and
// the unbuilt-tail scan run as independent subtasks, and a done context
// yields the results of the subtasks that ran (a partial answer, not an
// error).
func (s *SF) SearchContext(ctx context.Context, q Query) ([]Result, error) {
	res, _, err := s.SearchDetailed(ctx, q)
	return res, err
}

// SearchDetailed is SearchContext plus stage timings and the Partial flag.
func (s *SF) SearchDetailed(ctx context.Context, q Query) ([]Result, SearchInfo, error) {
	if err := validateQuery(q, s.opts.Dim); err != nil {
		return nil, SearchInfo{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var entry int32
	if built := s.inner.Built(); built > 0 && s.inner.Graph() != nil {
		ent := exec.NewEntropy(int64(exec.QueryHash(s.entrySalt, q.Vector)))
		entry = int32(ent.Intn(built))
	}
	p := graph.SearchParams{MC: s.opts.MaxCandidates, Eps: float32(s.opts.Epsilon)}
	ns, eo := s.inner.SearchContext(ctx, q.Vector, q.K, q.Start, q.End, p, entry, s.x)
	return toResults(ns, s.inner.Times()), infoFrom(eo), nil
}

// SearchBatchContext fans queries across workers goroutines with the same
// batch semantics as MBI.SearchBatch: the first query error aborts, and a
// done context stops the batch with ctx.Err().
func (s *SF) SearchBatchContext(ctx context.Context, queries []Query, workers int) ([][]Result, error) {
	return searchBatchCtx(ctx, queries, workers, s.SearchContext)
}

// Len implements Index.
func (s *SF) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Len()
}

// Save serializes the index to w; LoadSF restores it.
func (s *SF) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return persist.SaveSF(w, s.inner)
}

// LoadSF restores an index saved with SF.Save. opts must carry the same
// Dim and Metric; graph construction settings may differ (they only apply
// to future rebuilds).
func LoadSF(r io.Reader, opts SFOptions) (*SF, error) {
	if err := opts.ApplyDefaults(); err != nil {
		return nil, err
	}
	mo := MBIOptions{Dim: opts.Dim, Graph: opts.Graph, GraphDegree: opts.GraphDegree}
	builder, err := mo.builder()
	if err != nil {
		return nil, err
	}
	inner, err := persist.LoadSF(r, builder)
	if err != nil {
		return nil, err
	}
	if inner.Metric() != opts.Metric.internal() {
		return nil, fmt.Errorf("tknn: file has metric %v, options say %v", inner.Metric(), opts.Metric)
	}
	return &SF{
		opts:      opts,
		inner:     inner,
		entrySalt: uint64(opts.Seed) ^ 0x7366,
		x:         exec.New(0),
	}, nil
}

// Internal exposes the underlying sf index for the experiment harness.
// Not part of the stable API.
func (s *SF) Internal() *sf.Index { return s.inner }
