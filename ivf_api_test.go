package tknn_test

import (
	"errors"
	"testing"

	tknn "repro"
)

var _ tknn.Index = (*tknn.IVF)(nil)

func TestIVFOptionsDefaults(t *testing.T) {
	o := tknn.IVFOptions{Dim: 8}
	if err := o.ApplyDefaults(); err != nil {
		t.Fatal(err)
	}
	if o.Probes != 8 || o.Seed != 1 {
		t.Errorf("defaults %+v", o)
	}
	bad := []tknn.IVFOptions{
		{},
		{Dim: 4, Lists: -1},
		{Dim: 4, Probes: -2},
		{Dim: 4, RebuildEvery: -1},
		{Dim: 4, Metric: tknn.Metric(7)},
	}
	for i, o := range bad {
		if err := o.ApplyDefaults(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestIVFEndToEnd(t *testing.T) {
	ix, err := tknn.NewIVF(tknn.IVFOptions{Dim: 8, Lists: 12, Probes: 12})
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(41, 400, 8)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if ix.Built() != 400 || ix.Lists() != 12 {
		t.Fatalf("built %d lists %d", ix.Built(), ix.Lists())
	}
	// All-probe searches are exact: the self-query must hit.
	res, err := ix.Search(tknn.Query{Vector: vs[123], K: 1, Start: 100, End: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 123 || res[0].Time != 123 || res[0].Dist != 0 {
		t.Errorf("self-query = %v", res)
	}
	// Window restriction holds for few probes too.
	res, err = ix.SearchProbes(tknn.Query{Vector: vs[50], K: 5, Start: 40, End: 60}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Time < 40 || r.Time >= 60 {
			t.Errorf("result time %d outside window", r.Time)
		}
	}
	if _, err := ix.SearchProbes(tknn.Query{Vector: vs[0], K: 1, Start: 0, End: 10}, 0); !errors.Is(err, tknn.ErrBadQuery) {
		t.Errorf("nprobe=0 error = %v", err)
	}
}

func TestIVFAutoRebuild(t *testing.T) {
	ix, err := tknn.NewIVF(tknn.IVFOptions{Dim: 8, Lists: 6, RebuildEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(43, 250, 8)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Built() < 200 {
		t.Errorf("Built = %d, want >= 200 after automatic rebuilds", ix.Built())
	}
}

func TestIVFErrorPaths(t *testing.T) {
	ix, err := tknn.NewIVF(tknn.IVFOptions{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add([]float32{1}, 0); !errors.Is(err, tknn.ErrDimension) {
		t.Errorf("wrong-dim error = %v", err)
	}
	if err := ix.Add([]float32{1, 2, 3, 4}, 10); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add([]float32{1, 2, 3, 4}, 5); !errors.Is(err, tknn.ErrTimestampOrder) {
		t.Errorf("order error = %v", err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
}
