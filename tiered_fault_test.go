//go:build tknn_fault

package tknn_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	tknn "repro"
	"repro/internal/fault"
	"repro/internal/wal"
)

// Fault-injection tests for tiered storage (build tag tknn_fault): a
// failed or torn segment write must never poison the index — blocks
// whose spill did not complete keep their RAM payload — and a failed
// block-cache load must degrade the query to Partial, never to an error
// or to wrong results.

// buildTieredPair builds a tiered index plus an all-RAM twin over the
// same data. Cold execution draws entry seeds at plan time in selection
// order, so the two must answer every query bit-identically — the twin
// is the unpoisoned reference the assertions compare against.
func buildTieredPair(t *testing.T, n int) (tiered, ram *tknn.MBI, vecs [][]float32) {
	t.Helper()
	t.Cleanup(fault.Reset)
	fault.Reset()
	vecs = tierVecs(n)
	opts := tierOpts(t.TempDir())
	tiered, err := tknn.NewMBI(opts)
	if err != nil {
		t.Fatalf("NewMBI(tiered): %v", err)
	}
	ramOpts := opts
	ramOpts.SpillDir, ramOpts.CacheBytes, ramOpts.SpillMaxHeight = "", 0, 0
	ram, err = tknn.NewMBI(ramOpts)
	if err != nil {
		t.Fatalf("NewMBI(ram): %v", err)
	}
	for i, v := range vecs {
		if err := tiered.Add(v, int64(i)); err != nil {
			t.Fatalf("Add %d (tiered): %v", i, err)
		}
		if err := ram.Add(v, int64(i)); err != nil {
			t.Fatalf("Add %d (ram): %v", i, err)
		}
	}
	return tiered, ram, vecs
}

func mustConfigure(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Configure(spec, 1); err != nil {
		t.Fatalf("Configure(%q): %v", spec, err)
	}
}

// assertSameResults fails unless the two result lists are bit-identical.
func assertSameResults(t *testing.T, got, want []tknn.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Time != want[i].Time || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestInjectedCacheLoadErrorDegradesToPartial(t *testing.T) {
	tiered, ram, vecs := buildTieredPair(t, 200)
	if n, _, err := tiered.SpillCold(); err != nil || n == 0 {
		t.Fatalf("SpillCold: %d blocks, %v", n, err)
	}
	q := tknn.Query{Vector: vecs[3], K: 10, Start: 0, End: 200}
	requireColdPlan(t, tiered, q.Start, q.End)

	// Every cache load fails: cold subtasks are skipped, the query
	// degrades to Partial — no error, no panic, no fabricated results.
	mustConfigure(t, "blockcache.load:error")
	res, info, err := tiered.SearchDetailed(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchDetailed under injection: %v", err)
	}
	if !info.Partial {
		t.Fatalf("failed loads served without Partial (%d results)", len(res))
	}

	// Clearing the fault fully restores the index: failed loads were
	// never cached, so the next query pages segments in and answers
	// bit-identically to the RAM twin.
	fault.Reset()
	res2, info2, err := tiered.SearchDetailed(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchDetailed after reset: %v", err)
	}
	if info2.Partial {
		t.Fatal("query still Partial after the fault cleared")
	}
	want, err := ram.Search(q)
	if err != nil {
		t.Fatalf("ram Search: %v", err)
	}
	assertSameResults(t, res2, want)
}

func TestInjectedCacheLoadLatencySurfacesAsFetch(t *testing.T) {
	tiered, ram, vecs := buildTieredPair(t, 200)
	if n, _, err := tiered.SpillCold(); err != nil || n == 0 {
		t.Fatalf("SpillCold: %d blocks, %v", n, err)
	}
	q := tknn.Query{Vector: vecs[3], K: 10, Start: 0, End: 200}
	requireColdPlan(t, tiered, q.Start, q.End)

	// Slow loads are not failures: the query completes, answers exactly,
	// and the stall is attributed to the Fetch stage.
	const delay = 20 * time.Millisecond
	mustConfigure(t, "blockcache.load:latency=20ms")
	res, info, err := tiered.SearchDetailed(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchDetailed under latency: %v", err)
	}
	if info.Partial {
		t.Fatal("slow loads degraded the query to Partial")
	}
	if info.Fetch < delay {
		t.Fatalf("Fetch stage %v, want at least the injected %v", info.Fetch, delay)
	}
	want, err := ram.Search(q)
	if err != nil {
		t.Fatalf("ram Search: %v", err)
	}
	assertSameResults(t, res, want)
}

func TestInjectedTornSpillNeverInstalled(t *testing.T) {
	tiered, ram, vecs := buildTieredPair(t, 200)
	q := tknn.Query{Vector: vecs[3], K: 10, Start: 0, End: 200}

	// The first segment write is torn after 10 bytes: SpillCold must
	// report the failure and release nothing — the block keeps its RAM
	// payload, and no .seg file is renamed into place.
	mustConfigure(t, "persist.segment.write:truncate=10:count=1")
	if _, _, err := tiered.SpillCold(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("SpillCold under injection: err = %v, want ErrInjected", err)
	}
	if st := tiered.Internal().Stats(); st.SpilledBlocks != 0 {
		t.Fatalf("torn spill released %d blocks", st.SpilledBlocks)
	}
	segs, err := filepath.Glob(filepath.Join(tiered.Options().SpillDir, "block-*.seg"))
	if err != nil {
		t.Fatalf("Glob: %v", err)
	}
	if len(segs) != 0 {
		t.Fatalf("torn write installed %d segment files: %v", len(segs), segs)
	}
	res, info, err := tiered.SearchDetailed(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchDetailed after torn spill: %v", err)
	}
	if info.Partial {
		t.Fatal("query Partial though every block kept its RAM payload")
	}
	want, err := ram.Search(q)
	if err != nil {
		t.Fatalf("ram Search: %v", err)
	}
	assertSameResults(t, res, want)

	// With the fault cleared the same pass succeeds end to end and the
	// now-cold index still answers bit-identically.
	fault.Reset()
	if n, _, err := tiered.SpillCold(); err != nil || n == 0 {
		t.Fatalf("SpillCold after reset: %d blocks, %v", n, err)
	}
	if err := tiered.Internal().CheckInvariants(); err != nil {
		t.Fatalf("invariants after spill: %v", err)
	}
	res2, info2, err := tiered.SearchDetailed(context.Background(), q)
	if err != nil {
		t.Fatalf("SearchDetailed after spill: %v", err)
	}
	if info2.Partial {
		t.Fatal("cold query Partial with intact segments")
	}
	assertSameResults(t, res2, want)
}

func TestInjectedSpillFailureDoesNotFailCheckpoint(t *testing.T) {
	t.Cleanup(fault.Reset)
	fault.Reset()
	dir := t.TempDir()
	opts := tierOpts(dir)
	cfg := wal.Config{Dir: dir, Sync: wal.SyncNever, SegmentBytes: 1 << 12}
	const total = 100
	vecs := tierVecs(total)

	m, err := wal.Open(cfg, tierRestore(opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < total; i++ {
		if err := m.Append(vecs[i], int64(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// Spilling fails, but spilling is an optimization: the checkpoint
	// must proceed with the blocks left inline — the snapshot is merely
	// bigger, never wrong.
	mustConfigure(t, "persist.segment.write:error:count=1")
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint must survive a spill failure: %v", err)
	}
	ix := m.Index().(*tknn.MBI)
	if st := ix.Internal().Stats(); st.SpilledBlocks != 0 {
		t.Fatalf("failed spill released %d blocks", st.SpilledBlocks)
	}
	fault.Reset()
	assertExactAt(t, ix, vecs, 0, total-1)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The inline snapshot recovers on its own; the next checkpoint
	// spills normally.
	m2, err := wal.Open(cfg, tierRestore(opts))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := m2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ix2 := m2.Index().(*tknn.MBI)
	if got := ix2.Len(); got != total {
		t.Fatalf("recovered %d vectors, want %d", got, total)
	}
	if _, err := m2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if st := ix2.Internal().Stats(); st.SpilledBlocks == 0 {
		t.Fatal("recovered index never spilled")
	}
	assertExactAt(t, ix2, vecs, 0, total-1)
}
