package tknn_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	tknn "repro"
)

// compile-time interface checks.
var (
	_ tknn.Index = (*tknn.MBI)(nil)
	_ tknn.Index = (*tknn.BSBF)(nil)
	_ tknn.Index = (*tknn.SF)(nil)
)

func randClustered(seed int64, n, dim int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 5)
	for c := range centers {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = v
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.6)
		}
		out[i] = v
	}
	return out
}

func TestMBIOptionsDefaults(t *testing.T) {
	o := tknn.MBIOptions{Dim: 16}
	if err := o.ApplyDefaults(); err != nil {
		t.Fatal(err)
	}
	if o.LeafSize != 1024 || o.Tau != 0.5 || o.GraphDegree != 24 ||
		o.MaxCandidates != 48 || o.Epsilon != 1.1 || o.Workers != 1 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
	bad := tknn.MBIOptions{}
	if err := bad.ApplyDefaults(); err == nil {
		t.Error("Dim=0 accepted")
	}
	badEps := tknn.MBIOptions{Dim: 4, Epsilon: 0.5}
	if err := badEps.ApplyDefaults(); err == nil {
		t.Error("Epsilon < 1 accepted")
	}
}

func TestMBIEndToEnd(t *testing.T) {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 12, LeafSize: 32, GraphDegree: 8, MaxCandidates: 64, Epsilon: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(1, 300, 12)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 300 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.BlockCount() == 0 || ix.TreeHeight() == 0 {
		t.Errorf("tree not growing: %d blocks height %d", ix.BlockCount(), ix.TreeHeight())
	}
	res, err := ix.Search(tknn.Query{Vector: vs[123], K: 5, Start: 100, End: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].ID != 123 || res[0].Dist != 0 || res[0].Time != 123 {
		t.Errorf("self-query first result = %+v", res[0])
	}
	for i, r := range res {
		if r.Time < 100 || r.Time >= 200 {
			t.Errorf("result %d time %d outside window", i, r.Time)
		}
	}
}

func TestMBIErrorPaths(t *testing.T) {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add([]float32{1, 2}, 0); !errors.Is(err, tknn.ErrDimension) {
		t.Errorf("wrong-dim Add error = %v", err)
	}
	if err := ix.Add([]float32{1, 2, 3, 4}, 10); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add([]float32{1, 2, 3, 4}, 5); !errors.Is(err, tknn.ErrTimestampOrder) {
		t.Errorf("out-of-order Add error = %v", err)
	}
	if _, err := ix.Search(tknn.Query{Vector: []float32{1}, K: 1, Start: 0, End: 1}); !errors.Is(err, tknn.ErrBadQuery) {
		t.Errorf("bad-dim query error = %v", err)
	}
	if _, err := ix.Search(tknn.Query{Vector: []float32{1, 2, 3, 4}, K: 0, Start: 0, End: 1}); !errors.Is(err, tknn.ErrBadQuery) {
		t.Errorf("k=0 query error = %v", err)
	}
	if _, err := ix.Search(tknn.Query{Vector: []float32{1, 2, 3, 4}, K: 1, Start: 5, End: 5}); !errors.Is(err, tknn.ErrBadQuery) {
		t.Errorf("empty-window query error = %v", err)
	}
}

func TestMBISaveLoad(t *testing.T) {
	opts := tknn.MBIOptions{Dim: 8, LeafSize: 16, GraphDegree: 6}
	ix, err := tknn.NewMBI(opts)
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(2, 100, 8)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := tknn.LoadMBI(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 || got.BlockCount() != ix.BlockCount() {
		t.Fatalf("loaded: len %d blocks %d", got.Len(), got.BlockCount())
	}
	res, err := got.Search(tknn.Query{Vector: vs[50], K: 1, Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 50 {
		t.Errorf("post-load search = %v", res)
	}
}

func TestBSBFExactness(t *testing.T) {
	ix, err := tknn.NewBSBF(6, tknn.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(3, 200, 6)
	for i, v := range vs {
		if err := ix.Add(v, int64(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ix.Search(tknn.Query{Vector: vs[77], K: 3, Start: 0, End: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 77 || res[0].Dist != 0 || res[0].Time != 154 {
		t.Errorf("first result = %+v", res[0])
	}
	if _, err := tknn.NewBSBF(0, tknn.Euclidean); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := tknn.NewBSBF(4, tknn.Metric(9)); err == nil {
		t.Error("bad metric accepted")
	}
}

func TestSFLifecycle(t *testing.T) {
	ix, err := tknn.NewSF(tknn.SFOptions{Dim: 10, GraphDegree: 8, Epsilon: 1.3, RebuildEvery: 150})
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(4, 400, 10)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// RebuildEvery=150 should have triggered at least two automatic builds.
	if ix.Built() < 300 {
		t.Errorf("Built = %d, want >= 300 after automatic rebuilds", ix.Built())
	}
	ix.Build()
	if ix.Built() != 400 {
		t.Errorf("Built = %d after explicit Build", ix.Built())
	}
	res, err := ix.Search(tknn.Query{Vector: vs[321], K: 4, Start: 0, End: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 || res[0].ID != 321 {
		t.Errorf("search = %v", res)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := tknn.LoadSF(&buf, tknn.SFOptions{Dim: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 400 || got.Built() != 400 {
		t.Fatalf("loaded len %d built %d", got.Len(), got.Built())
	}
}

func TestSFOptionsValidation(t *testing.T) {
	if _, err := tknn.NewSF(tknn.SFOptions{}); err == nil {
		t.Error("Dim 0 accepted")
	}
	if _, err := tknn.NewSF(tknn.SFOptions{Dim: 4, Epsilon: 0.9}); err == nil {
		t.Error("Epsilon < 1 accepted")
	}
	if _, err := tknn.NewSF(tknn.SFOptions{Dim: 4, RebuildEvery: -1}); err == nil {
		t.Error("negative RebuildEvery accepted")
	}
}

func TestNSWGraphOption(t *testing.T) {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 8, LeafSize: 32, Graph: tknn.NSW, GraphDegree: 8})
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(5, 150, 8)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ix.Search(tknn.Query{Vector: vs[88], K: 1, Start: 0, End: 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 88 {
		t.Errorf("NSW-backed search = %v", res)
	}
	if tknn.NSW.String() != "nsw" || tknn.NNDescent.String() != "nndescent" {
		t.Error("GraphAlgorithm names wrong")
	}
}

// TestCrossIndexAgreement: on the same data, all three indexes agree on
// the (unambiguous) nearest neighbor.
func TestCrossIndexAgreement(t *testing.T) {
	vs := randClustered(6, 256, 8)
	mbi, err := tknn.NewMBI(tknn.MBIOptions{Dim: 8, LeafSize: 32, GraphDegree: 8, Epsilon: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := tknn.NewBSBF(8, tknn.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	sfIx, err := tknn.NewSF(tknn.SFOptions{Dim: 8, GraphDegree: 8, Epsilon: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		for _, ix := range []tknn.Index{mbi, bs, sfIx} {
			if err := ix.Add(v, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sfIx.Build()
	q := tknn.Query{Vector: vs[200], K: 1, Start: 150, End: 256}
	for name, ix := range map[string]tknn.Index{"mbi": mbi, "bsbf": bs, "sf": sfIx} {
		res, err := ix.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res) != 1 || res[0].ID != 200 {
			t.Errorf("%s: self-query = %v", name, res)
		}
	}
}

func TestMetricString(t *testing.T) {
	if tknn.Euclidean.String() != "euclidean" || tknn.Angular.String() != "angular" {
		t.Error("metric names wrong")
	}
}
