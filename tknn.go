// Package tknn is the public API of this repository: time-restricted
// k-nearest-neighbor (TkNN) search over high-dimensional vectors that
// accumulate over time, implementing the EDBT 2024 paper "Efficient
// Proximity Search in Time-accumulating High-dimensional Data using
// Multi-level Block Indexing".
//
// A TkNN query asks for the k vectors nearest to a query vector among
// those whose timestamps fall in a half-open window [Start, End) —
// "which 10 photos taken between January 2010 and May 2011 are most
// similar to this one?". Three index types answer such queries:
//
//   - MBI — the paper's Multi-level Block Index: fast for every window
//     length, supports efficient incremental insertion. Use this one.
//   - BSBF — binary search + brute force: exact, fast for short windows,
//     linear in the window length. The paper's first baseline.
//   - SF — a single proximity graph with search-and-filtering: fast for
//     long windows, degrades sharply on short ones. The second baseline.
//
// All three satisfy the Index interface. Vectors must be appended in
// non-decreasing timestamp order (the time-accumulating setting).
//
// Quick start:
//
//	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 128, Metric: tknn.Angular, LeafSize: 1000})
//	...
//	err = ix.Add(embedding, photo.UnixTime)
//	...
//	res, err := ix.Search(tknn.Query{Vector: probe, K: 10, Start: jan2010, End: may2011})
package tknn

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/theap"
	"repro/internal/vec"
)

// Metric selects the distance function of an index.
type Metric int

const (
	// Euclidean compares vectors by squared L2 distance.
	Euclidean Metric = iota
	// Angular compares vectors by cosine distance (1 - cosine similarity).
	Angular
)

// String returns the metric's name.
func (m Metric) String() string { return m.internal().String() }

func (m Metric) internal() vec.Metric {
	if m == Angular {
		return vec.Angular
	}
	return vec.Euclidean
}

func (m Metric) valid() bool { return m == Euclidean || m == Angular }

// Query is one TkNN request: the K vectors nearest to Vector among those
// with timestamps in the half-open window [Start, End).
type Query struct {
	// Vector is the query point; its length must match the index
	// dimension.
	Vector []float32
	// K is the number of neighbors requested. Fewer results are returned
	// if the window holds fewer than K vectors.
	K int
	// Start and End bound the window: Start <= t < End.
	Start, End int64
}

// Result is one query answer.
type Result struct {
	// ID is the insertion index of the vector (0 for the first Add).
	ID int
	// Time is the vector's timestamp.
	Time int64
	// Dist is the metric distance to the query vector: squared L2 for
	// Euclidean indexes, cosine distance for Angular ones.
	Dist float32
}

// SearchInfo describes how one query executed through the shared
// execution layer: per-stage wall-clock durations and the partial-result
// flag. All SearchContext methods share these semantics.
type SearchInfo struct {
	// Partial reports that the context was done before the query plan
	// finished executing, so the results cover only the work that ran.
	// Context-free Search calls never set it.
	Partial bool
	// Select is the planning stage: block selection (MBI), window binary
	// search (BSBF), centroid ranking (IVF), entry drawing (SF).
	Select time.Duration
	// Search is the per-block subtask execution stage.
	Search time.Duration
	// Merge is the final cross-block combine.
	Merge time.Duration
	// Rerank is the exact re-scoring of compressed-block candidates
	// against the float32 store. It is contained in Search (re-ranking
	// happens inside each compressed subtask) and is zero on
	// uncompressed indexes.
	Rerank time.Duration
	// Fetch is the summed time cold (spilled) blocks spent paging their
	// payloads through the block cache. It overlaps the Search wall
	// clock (fetches run concurrently with hot-block kernels) and is
	// zero on an all-RAM index or an all-hot plan.
	Fetch time.Duration
}

func infoFrom(out exec.Outcome) SearchInfo {
	return SearchInfo{Partial: out.Partial, Select: out.Select, Search: out.Search, Merge: out.Merge, Rerank: out.Rerank, Fetch: out.Fetch}
}

// searchBatchCtx fans queries across workers with first-error-aborts
// batch semantics, shared by every SearchBatchContext.
func searchBatchCtx(ctx context.Context, queries []Query, workers int, search func(context.Context, Query) ([]Result, error)) ([][]Result, error) {
	out := make([][]Result, len(queries))
	err := exec.ForEach(ctx, workers, len(queries), func(i int) error {
		res, err := search(ctx, queries[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Index is the interface all three index types satisfy.
type Index interface {
	// Add appends a timestamped vector. Timestamps must be
	// non-decreasing. Add must not be called concurrently with itself;
	// Search may run concurrently with other Searches.
	Add(v []float32, t int64) error
	// Search answers a TkNN query, returning up to q.K results in
	// ascending distance order.
	Search(q Query) ([]Result, error)
	// Len returns the number of indexed vectors.
	Len() int
}

// Common errors.
var (
	// ErrDimension is returned when a vector's length does not match the
	// index dimension.
	ErrDimension = errors.New("tknn: vector dimension mismatch")
	// ErrBadQuery is returned when a query is malformed (K <= 0, empty
	// window, or dimension mismatch).
	ErrBadQuery = errors.New("tknn: bad query")
	// ErrTimestampOrder is returned when Add receives a timestamp earlier
	// than the last one.
	ErrTimestampOrder = errors.New("tknn: timestamps must be non-decreasing")
)

// validateQuery checks q against an index of the given dimension.
func validateQuery(q Query, dim int) error {
	if len(q.Vector) != dim {
		return fmt.Errorf("%w: query vector has %d dimensions, index has %d", ErrBadQuery, len(q.Vector), dim)
	}
	if q.K <= 0 {
		return fmt.Errorf("%w: K = %d", ErrBadQuery, q.K)
	}
	if q.Start >= q.End {
		return fmt.Errorf("%w: empty window [%d, %d)", ErrBadQuery, q.Start, q.End)
	}
	return nil
}

// toResults converts internal neighbors (global ids) to public results.
func toResults(ns []theap.Neighbor, times []int64) []Result {
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{ID: int(n.ID), Time: times[n.ID], Dist: n.Dist}
	}
	return out
}
