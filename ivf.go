package tknn

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/ivf"
)

// IVFOptions configures an inverted-file (IVF-Flat) index.
type IVFOptions struct {
	// Dim is the vector dimension. Required.
	Dim int
	// Metric is the distance function. Default Euclidean.
	Metric Metric
	// Lists is the number of inverted lists (k-means centroids). Zero
	// picks sqrt(n) at Build time.
	Lists int
	// Probes is the default number of lists a Search scans. More probes
	// raise recall and cost. Default 8.
	Probes int
	// RebuildEvery triggers an automatic recluster once that many vectors
	// have been added since the last build; zero disables (call Build).
	RebuildEvery int
	// Seed drives k-means initialization. Default 1.
	Seed int64
}

// ApplyDefaults fills unset fields and validates.
func (o *IVFOptions) ApplyDefaults() error {
	if o.Dim <= 0 {
		return fmt.Errorf("tknn: IVFOptions.Dim must be positive, got %d", o.Dim)
	}
	if !o.Metric.valid() {
		return fmt.Errorf("tknn: invalid metric %d", o.Metric)
	}
	if o.Lists < 0 {
		return fmt.Errorf("tknn: negative Lists")
	}
	if o.Probes == 0 {
		o.Probes = 8
	}
	if o.Probes < 0 {
		return fmt.Errorf("tknn: negative Probes")
	}
	if o.RebuildEvery < 0 {
		return fmt.Errorf("tknn: negative RebuildEvery")
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// IVF is an inverted-file index with native time-window support: every
// inverted list is kept in timestamp order, so the window restriction is
// a binary search per probed list rather than a post-filter. It satisfies
// Index. IVF answers exactly within the probed lists; recall across the
// whole window is governed by Probes (all lists probed = exact).
//
// This is the quantization-family alternative to the paper's graph-based
// methods: a different trade-off (no graph build, cheap short windows,
// recall capped by probes) useful as a comparator and for workloads where
// its profile fits.
type IVF struct {
	opts       IVFOptions
	inner      *ivf.Index
	mu         sync.RWMutex
	sinceBuild int
	rebuilds   int
	x          exec.Executor
}

// NewIVF creates an empty IVF index.
func NewIVF(opts IVFOptions) (*IVF, error) {
	if err := opts.ApplyDefaults(); err != nil {
		return nil, err
	}
	return &IVF{
		opts:  opts,
		inner: ivf.New(opts.Dim, opts.Metric.internal(), ivf.Config{Lists: opts.Lists}),
		x:     exec.New(0),
	}, nil
}

// SetQueryWorkers rebounds the intra-query probe pool: n <= 0 defaults to
// GOMAXPROCS, n == 1 scans probed lists sequentially.
func (x *IVF) SetQueryWorkers(n int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.x = exec.New(n)
}

// Options returns the effective (defaulted) options.
func (x *IVF) Options() IVFOptions { return x.opts }

// Add implements Index. Vectors added after the last Build are covered by
// a brute-force tail scan until the next rebuild.
func (x *IVF) Add(v []float32, t int64) error {
	if len(v) != x.opts.Dim {
		return fmt.Errorf("%w: got %d, index has %d", ErrDimension, len(v), x.opts.Dim)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if err := x.inner.Append(v, t); err != nil {
		return fmt.Errorf("%w: %v", ErrTimestampOrder, err)
	}
	x.sinceBuild++
	if x.opts.RebuildEvery > 0 && x.sinceBuild >= x.opts.RebuildEvery {
		return x.buildLocked()
	}
	return nil
}

// Build (re)clusters everything added so far into inverted lists.
func (x *IVF) Build() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.buildLocked()
}

func (x *IVF) buildLocked() error {
	x.rebuilds++
	if err := x.inner.Build(x.opts.Seed + int64(x.rebuilds)); err != nil {
		return err
	}
	x.sinceBuild = 0
	return nil
}

// Built returns how many vectors the current lists cover.
func (x *IVF) Built() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.inner.Built()
}

// Lists returns the number of inverted lists (0 before the first Build).
func (x *IVF) Lists() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.inner.Lists()
}

// Search implements Index, probing Options.Probes lists.
func (x *IVF) Search(q Query) ([]Result, error) {
	return x.SearchProbes(q, x.opts.Probes)
}

// SearchContext is Search through the shared executor: probed lists scan
// as independent subtasks across the query-worker pool, and a done context
// yields the results of the probes that ran (a partial answer, not an
// error).
func (x *IVF) SearchContext(ctx context.Context, q Query) ([]Result, error) {
	res, _, err := x.SearchDetailed(ctx, q, x.opts.Probes)
	return res, err
}

// SearchProbes is Search with an explicit probe count; nprobe >= Lists()
// makes the answer exact within the window.
func (x *IVF) SearchProbes(q Query, nprobe int) ([]Result, error) {
	res, _, err := x.SearchDetailed(context.Background(), q, nprobe)
	return res, err
}

// SearchDetailed is SearchContext with an explicit probe count, plus stage
// timings and the Partial flag.
func (x *IVF) SearchDetailed(ctx context.Context, q Query, nprobe int) ([]Result, SearchInfo, error) {
	if err := validateQuery(q, x.opts.Dim); err != nil {
		return nil, SearchInfo{}, err
	}
	if nprobe <= 0 {
		return nil, SearchInfo{}, fmt.Errorf("%w: nprobe = %d", ErrBadQuery, nprobe)
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	ns, eo := x.inner.SearchContext(ctx, q.Vector, q.K, q.Start, q.End, nprobe, x.x)
	out := make([]Result, len(ns))
	for i, n := range ns {
		out[i] = Result{ID: int(n.ID), Time: timeOfIVF(x.inner, int(n.ID)), Dist: n.Dist}
	}
	return out, infoFrom(eo), nil
}

// SearchBatchContext fans queries across workers goroutines with the same
// batch semantics as MBI.SearchBatch: the first query error aborts, and a
// done context stops the batch with ctx.Err().
func (x *IVF) SearchBatchContext(ctx context.Context, queries []Query, workers int) ([][]Result, error) {
	return searchBatchCtx(ctx, queries, workers, x.SearchContext)
}

// Len implements Index.
func (x *IVF) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.inner.Len()
}

// timeOfIVF resolves a result id to its timestamp.
func timeOfIVF(ix *ivf.Index, id int) int64 { return ix.TimeAt(id) }
