package tknn_test

import (
	"fmt"
	"log"

	tknn "repro"
)

// Example demonstrates the core workflow: create an MBI index, add
// timestamped vectors, and run a time-restricted kNN query.
func Example() {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 2, LeafSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	// Vectors arrive in timestamp order.
	points := [][]float32{{0, 0}, {1, 0}, {0, 1}, {5, 5}, {1, 1}, {6, 5}}
	for i, p := range points {
		if err := ix.Add(p, int64(i*10)); err != nil {
			log.Fatal(err)
		}
	}
	// The 2 nearest neighbors of (0.2, 0.2) with timestamps in [0, 35).
	res, err := ix.Search(tknn.Query{Vector: []float32{0.2, 0.2}, K: 2, Start: 0, End: 35})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("id=%d time=%d\n", r.ID, r.Time)
	}
	// Output:
	// id=0 time=0
	// id=1 time=10
}

// ExampleMBI_Explain shows the query planner: which blocks a window
// would touch, without searching.
func ExampleMBI_Explain() {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 1, LeafSize: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := ix.Add([]float32{float32(i)}, int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	plan := ix.Explain(0, 8) // the whole timeline: one root block
	fmt.Printf("blocks searched: %d\n", len(plan.Blocks))
	fmt.Printf("vectors in window: %d\n", plan.TotalInWindow)
	// Output:
	// blocks searched: 1
	// vectors in window: 8
}

// ExampleNewBSBF shows the exact baseline, useful as a ground-truth
// oracle or for small datasets.
func ExampleNewBSBF() {
	ix, err := tknn.NewBSBF(1, tknn.Euclidean)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ix.Add([]float32{float32(i)}, int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	res, err := ix.Search(tknn.Query{Vector: []float32{4.2}, K: 3, Start: 0, End: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Println(r.ID)
	}
	// Output:
	// 4
	// 5
	// 3
}
