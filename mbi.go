package tknn

import (
	"context"
	"fmt"
	"io"

	"repro/internal/blockcache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/nndescent"
	"repro/internal/nsw"
	"repro/internal/persist"
	"repro/internal/sq"
	"repro/internal/theap"
)

// GraphAlgorithm selects the per-block proximity-graph construction
// algorithm. The paper uses NNDescent; NSW is provided because MBI treats
// the graph index as a pluggable module (§4.1).
type GraphAlgorithm int

const (
	// NNDescent builds each block's graph with the NNDescent local-join
	// algorithm (the paper's choice).
	NNDescent GraphAlgorithm = iota
	// NSW builds each block's graph by incremental Navigable-Small-World
	// insertion.
	NSW
)

// String returns the algorithm's name.
func (a GraphAlgorithm) String() string {
	if a == NSW {
		return "nsw"
	}
	return "nndescent"
}

// Compression selects how sealed blocks store their vectors for search.
type Compression int

const (
	// CompressionNone keeps sealed blocks fully float32 (the default).
	CompressionNone Compression = iota
	// CompressionSQ8 trains a per-block scalar quantizer at seal time and
	// searches sealed blocks through 1-byte codes with an asymmetric
	// distance kernel, then re-ranks the best candidates against the
	// float32 store. ~4x less search-path memory traffic per block at a
	// small recall cost that the re-rank largely recovers.
	CompressionSQ8
)

// String returns the compression mode's name.
func (c Compression) String() string {
	if c == CompressionSQ8 {
		return "sq8"
	}
	return "none"
}

func (c Compression) valid() bool { return c == CompressionNone || c == CompressionSQ8 }

func (c Compression) internal() sq.Kind {
	if c == CompressionSQ8 {
		return sq.SQ8
	}
	return sq.None
}

// MBIOptions configures an MBI index. Zero values get sensible defaults
// from ApplyDefaults; only Dim is mandatory.
type MBIOptions struct {
	// Dim is the vector dimension. Required.
	Dim int
	// Metric is the distance function. Default Euclidean.
	Metric Metric
	// LeafSize is S_L, the number of vectors per leaf block. New data
	// is brute-force scanned until a leaf fills, so the leaf size bounds
	// the unindexed tail. Default 1024.
	LeafSize int
	// Tau is the block-selection threshold τ ∈ (0, 1]. At most two blocks
	// are searched per query when Tau <= 0.5. Default 0.5, the paper's
	// recommendation when no tuning data is available.
	Tau float64
	// Graph selects the per-block graph construction algorithm.
	Graph GraphAlgorithm
	// GraphDegree is the neighbor count of each block graph (NNDescent K
	// or NSW M). Default 24.
	GraphDegree int
	// MaxCandidates is the search-time candidate cap M_C. Default
	// 2*GraphDegree.
	MaxCandidates int
	// Epsilon is the default search range-extension factor ε >= 1.
	// Default 1.1. Larger values raise recall and lower throughput.
	Epsilon float64
	// Workers bounds the goroutines used to build block graphs during a
	// merge cascade. Default 1 (sequential).
	Workers int
	// QueryWorkers bounds the goroutines one query may use to search its
	// selected blocks in parallel. Zero defaults to GOMAXPROCS; one runs
	// each query sequentially on its calling goroutine.
	QueryWorkers int
	// AsyncMerge builds block graphs on a background worker so Add never
	// blocks on graph construction; vectors whose blocks are still
	// building are answered exactly by brute force. Call Flush to wait
	// for the builder and Close when done with the index.
	AsyncMerge bool
	// Seed makes index construction reproducible. Default 1.
	Seed int64
	// Compression selects per-block vector compression for sealed blocks.
	// Default CompressionNone.
	Compression Compression
	// CompressMinHeight only compresses sealed blocks of at least this
	// tree height, keeping small low blocks exact while the large
	// high blocks — where the memory is — use codes. 0 compresses every
	// sealed block. Ignored without Compression.
	CompressMinHeight int
	// RerankFactor is the compressed-block over-fetch multiplier: the
	// approximate search keeps k·RerankFactor candidates for the exact
	// re-rank. 0 uses the executor default (4). Ignored without
	// Compression.
	RerankFactor int
	// SpillDir, when set, enables tiered storage: SpillCold writes
	// sealed blocks at or below SpillMaxHeight into per-block segment
	// files under this directory and releases their RAM payloads;
	// queries page spilled blocks back through a bounded LRU block
	// cache. Empty (the default) keeps the whole index RAM-resident.
	SpillDir string
	// CacheBytes bounds the block cache's resident payload bytes.
	// Default 256 MiB. Blocks pinned by in-flight queries may push the
	// cache past the bound transiently; it drains back as they finish.
	// Ignored without SpillDir.
	CacheBytes int64
	// SpillMaxHeight is the tallest block height SpillCold moves to
	// disk; taller blocks (and the open leaf) always stay in RAM.
	// Default 8. Ignored without SpillDir.
	SpillMaxHeight int
}

// ApplyDefaults fills unset fields with their defaults and validates the
// result.
func (o *MBIOptions) ApplyDefaults() error {
	if o.Dim <= 0 {
		return fmt.Errorf("tknn: MBIOptions.Dim must be positive, got %d", o.Dim)
	}
	if !o.Metric.valid() {
		return fmt.Errorf("tknn: invalid metric %d", o.Metric)
	}
	if o.LeafSize == 0 {
		o.LeafSize = 1024
	}
	if o.Tau == 0 {
		o.Tau = 0.5
	}
	if o.GraphDegree == 0 {
		o.GraphDegree = 24
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 2 * o.GraphDegree
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1.1
	}
	if o.Epsilon < 1 {
		return fmt.Errorf("tknn: Epsilon must be >= 1, got %g", o.Epsilon)
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if !o.Compression.valid() {
		return fmt.Errorf("tknn: invalid compression %d", o.Compression)
	}
	if o.CompressMinHeight < 0 {
		return fmt.Errorf("tknn: CompressMinHeight must be non-negative, got %d", o.CompressMinHeight)
	}
	if o.RerankFactor < 0 {
		return fmt.Errorf("tknn: RerankFactor must be non-negative, got %d", o.RerankFactor)
	}
	if o.SpillMaxHeight < 0 {
		return fmt.Errorf("tknn: SpillMaxHeight must be non-negative, got %d", o.SpillMaxHeight)
	}
	if o.CacheBytes < 0 {
		return fmt.Errorf("tknn: CacheBytes must be non-negative, got %d", o.CacheBytes)
	}
	if o.SpillDir != "" {
		if o.CacheBytes == 0 {
			o.CacheBytes = 256 << 20
		}
		if o.SpillMaxHeight == 0 {
			o.SpillMaxHeight = 8
		}
	}
	return nil
}

func (o MBIOptions) builder() (graph.Builder, error) {
	switch o.Graph {
	case NNDescent:
		return nndescent.New(nndescent.DefaultConfig(o.GraphDegree))
	case NSW:
		return nsw.New(nsw.DefaultConfig(o.GraphDegree))
	default:
		return nil, fmt.Errorf("tknn: unknown graph algorithm %d", o.Graph)
	}
}

// spillConfig wires the core index's tiered storage to persist's
// per-block segment files under SpillDir. Nil without SpillDir.
func (o MBIOptions) spillConfig() *core.SpillConfig {
	if o.SpillDir == "" {
		return nil
	}
	dir, dim := o.SpillDir, o.Dim
	return &core.SpillConfig{
		Write: func(id, lo, hi, height int, g *graph.CSR, c *sq.Codes) (int64, error) {
			return persist.WriteSegmentFile(dir, id, lo, hi, height, dim, g, c)
		},
		Load: func(ctx context.Context, key uint64) (blockcache.Value, error) {
			g, c, _, _, err := persist.ReadSegmentFile(dir, int(key), dim)
			if err != nil {
				return blockcache.Value{}, err
			}
			return blockcache.Value{Graph: g, Codes: c}, nil
		},
		MaxHeight:  o.SpillMaxHeight,
		CacheBytes: o.CacheBytes,
	}
}

func (o MBIOptions) coreOptions() (core.Options, error) {
	b, err := o.builder()
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Dim:               o.Dim,
		Metric:            o.Metric.internal(),
		LeafSize:          o.LeafSize,
		Tau:               o.Tau,
		Builder:           b,
		Search:            graph.SearchParams{MC: o.MaxCandidates, Eps: float32(o.Epsilon)},
		Workers:           o.Workers,
		QueryWorkers:      o.QueryWorkers,
		AsyncMerge:        o.AsyncMerge,
		Seed:              o.Seed,
		Compression:       o.Compression.internal(),
		CompressMinHeight: o.CompressMinHeight,
		RerankFactor:      o.RerankFactor,
		Spill:             o.spillConfig(),
	}, nil
}

// MBI is the paper's Multi-level Block Index. It satisfies Index.
type MBI struct {
	opts  MBIOptions
	inner *core.Index

	// tauTable, when non-nil, makes Search pick τ per query from the
	// tuned table (see AutoTuneTau). Written once by AutoTuneTau; reads
	// race-free thereafter because AutoTuneTau must not run concurrently
	// with Search.
	tauTable *core.TauTable
}

// NewMBI creates an empty MBI index. opts is copied; unset fields default
// per MBIOptions.
func NewMBI(opts MBIOptions) (*MBI, error) {
	if err := opts.ApplyDefaults(); err != nil {
		return nil, err
	}
	co, err := opts.coreOptions()
	if err != nil {
		return nil, err
	}
	inner, err := core.New(co)
	if err != nil {
		return nil, err
	}
	return &MBI{opts: opts, inner: inner}, nil
}

// Options returns the effective (defaulted) options.
func (m *MBI) Options() MBIOptions { return m.opts }

// Add implements Index. When an Add fills a leaf block, it additionally
// builds the graph indexes for the leaf and any newly completed ancestor
// blocks before returning, so individual Add calls occasionally take much
// longer than the average — the amortized cost is O(n^0.14 log n) per
// vector (§4.4.2).
func (m *MBI) Add(v []float32, t int64) error {
	if len(v) != m.opts.Dim {
		return fmt.Errorf("%w: got %d, index has %d", ErrDimension, len(v), m.opts.Dim)
	}
	if err := m.inner.Append(v, t); err != nil {
		return fmt.Errorf("%w: %v", ErrTimestampOrder, err)
	}
	return nil
}

// Search implements Index. After AutoTuneTau, the block-selection
// threshold is chosen per query from the tuned table; otherwise
// Options.Tau applies.
func (m *MBI) Search(q Query) ([]Result, error) {
	return m.SearchContext(context.Background(), q)
}

// SearchContext is Search with cancellation/deadline semantics: block
// subtasks never start after ctx is done, and on expiry the merged results
// of the blocks that did run are returned — a partial answer, not an
// error. Use SearchDetailed to observe the Partial flag and stage timings.
func (m *MBI) SearchContext(ctx context.Context, q Query) ([]Result, error) {
	res, _, err := m.SearchDetailed(ctx, q)
	return res, err
}

// SearchDetailed is SearchContext plus execution details: per-stage
// durations and whether the answer is partial.
func (m *MBI) SearchDetailed(ctx context.Context, q Query) ([]Result, SearchInfo, error) {
	if err := validateQuery(q, m.opts.Dim); err != nil {
		return nil, SearchInfo{}, err
	}
	var (
		ns  []theap.Neighbor
		out exec.Outcome
	)
	if m.tauTable != nil {
		ns, out = m.inner.SearchAutoTauContext(ctx, q.Vector, q.K, q.Start, q.End, m.tauTable, m.inner.Options().Search, nil)
	} else {
		ns, out = m.inner.SearchContext(ctx, q.Vector, q.K, q.Start, q.End)
	}
	return toResults(ns, m.inner.Times()), infoFrom(out), nil
}

// SearchBatch answers many queries, fanning them across workers
// goroutines (0 or 1 means sequential). Results[i] answers queries[i];
// the first query error aborts the batch. Concurrent searches are safe —
// this is plain fan-out over Search.
func (m *MBI) SearchBatch(queries []Query, workers int) ([][]Result, error) {
	return m.SearchBatchContext(context.Background(), queries, workers)
}

// SearchBatchContext is SearchBatch with a context: a done context stops
// the batch with ctx.Err() (queries already in flight still finish), in
// addition to the first-error-aborts semantics of SearchBatch.
func (m *MBI) SearchBatchContext(ctx context.Context, queries []Query, workers int) ([][]Result, error) {
	return searchBatchCtx(ctx, queries, workers, m.SearchContext)
}

// AutoTuneTau implements the paper's §5.4.2 suggestion: it measures which
// block-selection threshold τ answers queries fastest for a ladder of
// window sizes on this index's own data, then makes every subsequent
// Search pick τ from the resulting table based on the query window's
// coverage. samplesPerBucket controls tuning effort (0 uses a default of
// 30 sampled queries per window-size bucket). AutoTuneTau must not run
// concurrently with Search or Add; tuning issues real queries, so expect
// it to take roughly the time of a few hundred searches.
func (m *MBI) AutoTuneTau(samplesPerBucket int) error {
	table, err := m.inner.TuneTau(core.TunerConfig{QueriesPerBucket: samplesPerBucket, Seed: m.opts.Seed})
	if err != nil {
		return err
	}
	m.tauTable = table
	return nil
}

// TunedTaus reports the per-window-fraction thresholds AutoTuneTau chose
// (nil before tuning): TunedTaus()[i] applies to windows covering up to
// TunedFractions()[i] of the data.
func (m *MBI) TunedTaus() []float64 {
	if m.tauTable == nil {
		return nil
	}
	return append([]float64(nil), m.tauTable.Taus...)
}

// TunedFractions reports the bucket bounds of the tuned table (nil before
// tuning).
func (m *MBI) TunedFractions() []float64 {
	if m.tauTable == nil {
		return nil
	}
	return append([]float64(nil), m.tauTable.Fractions...)
}

// Len implements Index.
func (m *MBI) Len() int { return m.inner.Len() }

// BlockCount returns the number of sealed blocks (each carrying a graph).
func (m *MBI) BlockCount() int { return m.inner.Stats().NumBlocks }

// TreeHeight returns the height of the tallest complete subtree.
func (m *MBI) TreeHeight() int { return m.inner.Stats().TreeHeight }

// Flush waits until every block build queued by AsyncMerge has
// installed. A no-op without AsyncMerge.
func (m *MBI) Flush() { m.inner.Flush() }

// Close flushes outstanding asynchronous builds and stops the background
// worker; further Adds fail, searches keep working. A no-op without
// AsyncMerge. Close is idempotent.
func (m *MBI) Close() error { return m.inner.Close() }

// PendingBuilds reports how many vectors are sealed but not yet covered
// by built blocks (always 0 without AsyncMerge).
func (m *MBI) PendingBuilds() int { return m.inner.PendingBuilds() }

// Explain reports which blocks a query window would search, without
// searching — block ranges, heights, overlap ratios, and in-window
// counts, like an EXPLAIN plan.
func (m *MBI) Explain(start, end int64) core.Plan { return m.inner.Explain(start, end) }

// SearchExplain answers the query and returns the executed plan: the
// Explain statics annotated with per-block durations, skip flags, found
// counts, stage timings, and the Partial flag — EXPLAIN ANALYZE for a
// TkNN query. It always uses Options.Tau (the tuned table, if any, is
// not consulted), matching Explain.
func (m *MBI) SearchExplain(ctx context.Context, q Query) ([]Result, core.Plan, error) {
	if err := validateQuery(q, m.opts.Dim); err != nil {
		return nil, core.Plan{}, err
	}
	ns, plan := m.inner.SearchExplainContext(ctx, q.Vector, q.K, q.Start, q.End, m.opts.Tau, m.inner.Options().Search, nil)
	return toResults(ns, m.inner.Times()), plan, nil
}

// SpillCold writes sealed blocks at or below SpillMaxHeight into their
// segment files under SpillDir and releases their RAM payloads,
// returning blocks spilled and segment bytes written. Every released
// block's segment is durable (fsynced and renamed into place) before
// the RAM copy is dropped. A no-op (0, 0, nil) without SpillDir.
// SpillCold implements wal.Spiller, so a WAL-managed tiered index
// spills automatically on every checkpoint.
func (m *MBI) SpillCold() (int, int64, error) {
	if m.opts.SpillDir == "" {
		return 0, 0, nil
	}
	return m.inner.SpillCold()
}

// CacheStats reports the block cache's counters. ok is false without
// SpillDir (there is no cache).
func (m *MBI) CacheStats() (stats blockcache.Stats, ok bool) {
	return m.inner.CacheStats()
}

// SetCacheBytes rebounds the block cache at runtime (benchmarks sweep
// it). It panics without SpillDir.
func (m *MBI) SetCacheBytes(n int64) { m.inner.SetCacheBytes(n) }

// Save serializes the index to w; LoadMBI restores it. Save must not run
// concurrently with Add (it shares Add's single-writer role); it flushes
// asynchronous builds first so the file is always complete.
func (m *MBI) Save(w io.Writer) error { return persist.SaveMBI(w, m.inner) }

// LoadMBI restores an index saved with Save. opts must carry the same
// Dim, Metric, and LeafSize the saved index had; graph construction
// settings may differ (they only affect future inserts).
func LoadMBI(r io.Reader, opts MBIOptions) (*MBI, error) {
	if err := opts.ApplyDefaults(); err != nil {
		return nil, err
	}
	co, err := opts.coreOptions()
	if err != nil {
		return nil, err
	}
	inner, err := persist.LoadMBI(r, co)
	if err != nil {
		return nil, err
	}
	return &MBI{opts: opts, inner: inner}, nil
}

// Internal exposes the underlying core index for the experiment harness.
// Not part of the stable API.
func (m *MBI) Internal() *core.Index { return m.inner }
