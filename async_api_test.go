package tknn_test

import (
	"strings"
	"testing"

	tknn "repro"
)

func TestMBIAsyncMergePublicAPI(t *testing.T) {
	ix, err := tknn.NewMBI(tknn.MBIOptions{
		Dim: 8, LeafSize: 32, GraphDegree: 8, AsyncMerge: true, Epsilon: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	vs := randClustered(31, 200, 8)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Queries answer correctly even before the builder catches up.
	res, err := ix.Search(tknn.Query{Vector: vs[150], K: 1, Start: 0, End: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 150 {
		t.Errorf("mid-build search = %v", res)
	}
	ix.Flush()
	if ix.PendingBuilds() != 0 {
		t.Errorf("pending after flush: %d", ix.PendingBuilds())
	}
	if ix.BlockCount() == 0 {
		t.Error("no blocks after flush")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(vs[0], 1000); err == nil {
		t.Error("add after close succeeded")
	}
}

func TestMBIExplainPublicAPI(t *testing.T) {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 8, LeafSize: 16, GraphDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(33, 100, 8)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	plan := ix.Explain(10, 90)
	if len(plan.Blocks) == 0 {
		t.Fatal("empty plan")
	}
	if plan.TotalInWindow != 80 {
		t.Errorf("TotalInWindow = %d, want 80", plan.TotalInWindow)
	}
	if !strings.Contains(plan.String(), "block [") {
		t.Errorf("plan string: %s", plan.String())
	}
}

func TestAutoTuneTau(t *testing.T) {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 8, LeafSize: 32, GraphDegree: 8, Epsilon: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.TunedTaus() != nil {
		t.Error("tuned taus before tuning")
	}
	vs := randClustered(35, 300, 8)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.AutoTuneTau(4); err != nil {
		t.Fatal(err)
	}
	taus := ix.TunedTaus()
	fracs := ix.TunedFractions()
	if len(taus) == 0 || len(taus) != len(fracs) {
		t.Fatalf("tuned table shape: %d taus, %d fractions", len(taus), len(fracs))
	}
	for _, tau := range taus {
		if tau <= 0 || tau > 1 {
			t.Errorf("tuned tau %g out of range", tau)
		}
	}
	// Post-tuning searches still answer correctly.
	res, err := ix.Search(tknn.Query{Vector: vs[123], K: 1, Start: 0, End: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 123 {
		t.Errorf("post-tune self-query = %v", res)
	}
}

func TestAutoTuneTauEmptyIndex(t *testing.T) {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AutoTuneTau(2); err == nil {
		t.Error("tuning an empty index should fail")
	}
}

func TestSearchBatch(t *testing.T) {
	ix, err := tknn.NewMBI(tknn.MBIOptions{Dim: 8, LeafSize: 32, GraphDegree: 8, Epsilon: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	vs := randClustered(51, 300, 8)
	for i, v := range vs {
		if err := ix.Add(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]tknn.Query, 40)
	for i := range queries {
		queries[i] = tknn.Query{Vector: vs[i*7], K: 1, Start: 0, End: 300}
	}
	for _, workers := range []int{0, 1, 4, 100} {
		out, err := ix.SearchBatch(queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(queries) {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, res := range out {
			if len(res) != 1 || res[0].ID != i*7 {
				t.Fatalf("workers=%d query %d: %v", workers, i, res)
			}
		}
	}
	// An invalid query aborts the batch with its index in the error.
	queries[13].K = 0
	if _, err := ix.SearchBatch(queries, 4); err == nil {
		t.Error("bad query in batch did not error")
	}
	if _, err := ix.SearchBatch(queries, 1); err == nil {
		t.Error("bad query in sequential batch did not error")
	}
	// Empty batch is fine.
	if out, err := ix.SearchBatch(nil, 8); err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}
