// Command tknnd serves one MBI index over HTTP.
//
//	tknnd -addr :8080 -dim 128 -metric angular -leaf 4096 -data-dir /var/lib/tknn
//
// Endpoints (JSON):
//
//	POST /vectors           insert one timestamped vector or a batch
//	POST /search            time-restricted kNN search
//	GET  /stats             index shape
//	GET  /healthz           liveness
//	GET  /readyz            readiness: 503 during startup recovery and drain
//	POST /admin/checkpoint  snapshot now and prune the WAL (durable mode)
//
// Durability. With -data-dir the daemon runs a write-ahead log: every
// acknowledged insert is logged (fsync per -fsync) before it is applied,
// background checkpoints bound replay time (-checkpoint-every), and a
// crashed process recovers its exact acknowledged state on restart.
//
// Tiered storage. Adding -spill moves cold sealed blocks into per-block
// segment files under <data-dir>/segments at every checkpoint; queries
// page them back through a bounded LRU block cache (-cache-bytes).
// Recovery composes the newest snapshot, the segment files it
// references, and the WAL suffix.
//
// The legacy pair stays supported for snapshot-only deployments: with
// -load the index starts from a file written by -save-on-exit (or by
// tknn.MBI.Save); with -save-on-exit it persists on SIGINT/SIGTERM. The
// two modes are mutually exclusive — the WAL subsumes both flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	tknn "repro"
	"repro/internal/server"
	"repro/internal/wal"
)

// holdingHandler answers probes while the daemon recovers its WAL:
// liveness is green (the process is up and making progress), readiness —
// and every API route — is 503 with a Retry-After so well-behaved
// clients back off instead of erroring.
func holdingHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, "starting: recovery in progress", http.StatusServiceUnavailable)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dim := flag.Int("dim", 128, "vector dimension")
	metricName := flag.String("metric", "euclidean", "distance metric: euclidean or angular")
	leaf := flag.Int("leaf", 4096, "MBI leaf size S_L")
	tau := flag.Float64("tau", 0.5, "block-selection threshold")
	degree := flag.Int("degree", 24, "per-block graph degree")
	eps := flag.Float64("eps", 1.2, "search range-extension factor")
	searchTimeout := flag.Duration("search-timeout", 0, "per-request search deadline; expired queries return partial results (0 = none)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: concurrent /search (and, separately, /vectors) requests before queuing and 429s (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission control: queued requests beyond -max-inflight before shedding (0 = same as -max-inflight)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "bound on draining in-flight requests at shutdown; /readyz flips to 503 before the drain starts")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log and checkpoints (durable mode)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always, interval, or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync=interval")
	checkpointEvery := flag.Int("checkpoint-every", 100000, "checkpoint after this many appended records (0 = manual only)")
	segmentBytes := flag.Int64("segment-bytes", 64<<20, "WAL segment rotation threshold")
	spill := flag.Bool("spill", false, "tiered storage: spill cold sealed blocks to segment files under <data-dir>/segments at every checkpoint (requires -data-dir)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "block cache byte bound for -spill; spilled blocks page through this cache")
	load := flag.String("load", "", "load index from file at startup (legacy snapshot mode)")
	saveOnExit := flag.String("save-on-exit", "", "save index to file on shutdown (legacy snapshot mode)")
	flag.Parse()

	var metric tknn.Metric
	switch *metricName {
	case "euclidean", "l2":
		metric = tknn.Euclidean
	case "angular", "cosine":
		metric = tknn.Angular
	default:
		log.Fatalf("unknown metric %q", *metricName)
	}

	opts := tknn.MBIOptions{
		Dim:         *dim,
		Metric:      metric,
		LeafSize:    *leaf,
		Tau:         *tau,
		GraphDegree: *degree,
		Epsilon:     *eps,
	}

	if *dataDir != "" && (*load != "" || *saveOnExit != "") {
		log.Fatal("-data-dir already persists the index; drop -load/-save-on-exit")
	}
	if *spill {
		if *dataDir == "" {
			log.Fatal("-spill needs -data-dir: segments live alongside the WAL and checkpoints")
		}
		opts.SpillDir = filepath.Join(*dataDir, "segments")
		opts.CacheBytes = *cacheBytes
	}

	// Bind the listener before recovery so load balancers can probe the
	// daemon while it replays its WAL: /healthz answers 200 (the process
	// is alive), everything else — /readyz included — answers 503 until
	// the real handler is swapped in below.
	// The box keeps the stored concrete type constant across the swap —
	// atomic.Value rejects storing a different dynamic type.
	type handlerBox struct{ h http.Handler }
	var active atomic.Value
	active.Store(handlerBox{holdingHandler()})
	srv := &http.Server{
		Addr: *addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			active.Load().(handlerBox).h.ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	log.Printf("tknnd listening on %s (dim %d, %s, S_L %d); not ready until recovery completes", *addr, *dim, metric, *leaf)

	var ix *tknn.MBI
	var manager *wal.Manager
	var err error
	switch {
	case *dataDir != "":
		policy, perr := wal.ParseSyncPolicy(*fsync)
		if perr != nil {
			log.Fatal(perr)
		}
		manager, err = wal.Open(wal.Config{
			Dir:             *dataDir,
			Sync:            policy,
			SyncInterval:    *fsyncInterval,
			SegmentBytes:    *segmentBytes,
			CheckpointEvery: *checkpointEvery,
			Logf:            log.Printf,
		}, func(snapshot io.Reader) (wal.Target, error) {
			if snapshot == nil {
				return tknn.NewMBI(opts)
			}
			return tknn.LoadMBI(snapshot, opts)
		})
		if err != nil {
			log.Fatalf("opening data dir %s: %v", *dataDir, err)
		}
		ix = manager.Index().(*tknn.MBI)
		log.Printf("durable mode: %d vectors recovered from %s (fsync=%s)", ix.Len(), *dataDir, policy)
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			log.Fatalf("opening %s: %v", *load, ferr)
		}
		ix, err = tknn.LoadMBI(f, opts)
		_ = f.Close() // read-only handle; the load error below is the one that matters
		if err != nil {
			log.Fatalf("loading index: %v", err)
		}
		log.Printf("loaded %d vectors (%d blocks) from %s", ix.Len(), ix.BlockCount(), *load)
	default:
		ix, err = tknn.NewMBI(opts)
		if err != nil {
			log.Fatalf("creating index: %v", err)
		}
	}

	var handler *server.Server
	if manager != nil {
		handler = server.NewDurable(ix, manager)
	} else {
		handler = server.New(ix)
	}
	handler.SetSearchTimeout(*searchTimeout)
	if *maxInflight > 0 {
		handler.SetLimits(server.Limits{MaxInflight: *maxInflight, MaxQueue: *maxQueue})
		log.Printf("admission control: %d in-flight slots per class", *maxInflight)
	}
	// Recovery is done: swap the real handler in. /readyz flips to 200
	// here and back to 503 the moment a drain begins.
	active.Store(handlerBox{handler})
	log.Printf("ready: serving %d vectors", ix.Len())

	// Shut down from the main goroutine: Shutdown blocks until in-flight
	// requests drain (bounded by -shutdown-timeout), so no insert can
	// race the final snapshot/seal below.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		// Flip readiness first so load balancers stop routing new work,
		// then drain what is already in flight.
		handler.SetReady(false)
		log.Printf("received %s; draining connections (bound %v)", s, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("shutdown: %v", err)
		}
		if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			log.Printf("serve: %v", serveErr)
		}
	case err := <-errCh:
		// The listener failed outright (bad addr, port in use).
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}

	// Writes are drained; persist and seal.
	if manager != nil {
		start := time.Now()
		info, err := manager.Checkpoint()
		if err != nil {
			log.Printf("final checkpoint: %v (the WAL still holds every acknowledged insert)", err)
		} else {
			log.Printf("final checkpoint %s: %d vectors, %d bytes in %v", info.Path, ix.Len(), info.Bytes, time.Since(start).Round(time.Millisecond))
		}
		if err := manager.Close(); err != nil {
			log.Fatalf("sealing WAL: %v", err)
		}
	}
	if *saveOnExit != "" {
		start := time.Now()
		if err := saveIndex(ix, *saveOnExit); err != nil {
			log.Fatalf("saving index: %v", err)
		}
		log.Printf("saved %d vectors to %s in %v", ix.Len(), *saveOnExit, time.Since(start).Round(time.Millisecond))
	}
}

func saveIndex(ix *tknn.MBI, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// The cleanup removes are best-effort by design: the write or close
	// error being returned is the actionable failure, and a stale .tmp
	// file is harmless (the next save truncates it).
	if err := ix.Save(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	// Rename-into-place keeps a crash from leaving a torn file.
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("renaming into place: %w", err)
	}
	return nil
}
