// Command tknnd serves one MBI index over HTTP.
//
//	tknnd -addr :8080 -dim 128 -metric angular -leaf 4096 -data-dir /var/lib/tknn
//
// Endpoints (JSON):
//
//	POST /vectors           insert one timestamped vector or a batch
//	POST /search            time-restricted kNN search
//	GET  /stats             index shape
//	GET  /healthz           liveness
//	POST /admin/checkpoint  snapshot now and prune the WAL (durable mode)
//
// Durability. With -data-dir the daemon runs a write-ahead log: every
// acknowledged insert is logged (fsync per -fsync) before it is applied,
// background checkpoints bound replay time (-checkpoint-every), and a
// crashed process recovers its exact acknowledged state on restart.
//
// The legacy pair stays supported for snapshot-only deployments: with
// -load the index starts from a file written by -save-on-exit (or by
// tknn.MBI.Save); with -save-on-exit it persists on SIGINT/SIGTERM. The
// two modes are mutually exclusive — the WAL subsumes both flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	tknn "repro"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dim := flag.Int("dim", 128, "vector dimension")
	metricName := flag.String("metric", "euclidean", "distance metric: euclidean or angular")
	leaf := flag.Int("leaf", 4096, "MBI leaf size S_L")
	tau := flag.Float64("tau", 0.5, "block-selection threshold")
	degree := flag.Int("degree", 24, "per-block graph degree")
	eps := flag.Float64("eps", 1.2, "search range-extension factor")
	searchTimeout := flag.Duration("search-timeout", 0, "per-request search deadline; expired queries return partial results (0 = none)")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log and checkpoints (durable mode)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always, interval, or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync=interval")
	checkpointEvery := flag.Int("checkpoint-every", 100000, "checkpoint after this many appended records (0 = manual only)")
	segmentBytes := flag.Int64("segment-bytes", 64<<20, "WAL segment rotation threshold")
	load := flag.String("load", "", "load index from file at startup (legacy snapshot mode)")
	saveOnExit := flag.String("save-on-exit", "", "save index to file on shutdown (legacy snapshot mode)")
	flag.Parse()

	var metric tknn.Metric
	switch *metricName {
	case "euclidean", "l2":
		metric = tknn.Euclidean
	case "angular", "cosine":
		metric = tknn.Angular
	default:
		log.Fatalf("unknown metric %q", *metricName)
	}

	opts := tknn.MBIOptions{
		Dim:         *dim,
		Metric:      metric,
		LeafSize:    *leaf,
		Tau:         *tau,
		GraphDegree: *degree,
		Epsilon:     *eps,
	}

	if *dataDir != "" && (*load != "" || *saveOnExit != "") {
		log.Fatal("-data-dir already persists the index; drop -load/-save-on-exit")
	}

	var ix *tknn.MBI
	var manager *wal.Manager
	var err error
	switch {
	case *dataDir != "":
		policy, perr := wal.ParseSyncPolicy(*fsync)
		if perr != nil {
			log.Fatal(perr)
		}
		manager, err = wal.Open(wal.Config{
			Dir:             *dataDir,
			Sync:            policy,
			SyncInterval:    *fsyncInterval,
			SegmentBytes:    *segmentBytes,
			CheckpointEvery: *checkpointEvery,
			Logf:            log.Printf,
		}, func(snapshot io.Reader) (wal.Target, error) {
			if snapshot == nil {
				return tknn.NewMBI(opts)
			}
			return tknn.LoadMBI(snapshot, opts)
		})
		if err != nil {
			log.Fatalf("opening data dir %s: %v", *dataDir, err)
		}
		ix = manager.Index().(*tknn.MBI)
		log.Printf("durable mode: %d vectors recovered from %s (fsync=%s)", ix.Len(), *dataDir, policy)
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			log.Fatalf("opening %s: %v", *load, ferr)
		}
		ix, err = tknn.LoadMBI(f, opts)
		_ = f.Close() // read-only handle; the load error below is the one that matters
		if err != nil {
			log.Fatalf("loading index: %v", err)
		}
		log.Printf("loaded %d vectors (%d blocks) from %s", ix.Len(), ix.BlockCount(), *load)
	default:
		ix, err = tknn.NewMBI(opts)
		if err != nil {
			log.Fatalf("creating index: %v", err)
		}
	}

	var handler *server.Server
	if manager != nil {
		handler = server.NewDurable(ix, manager)
	} else {
		handler = server.New(ix)
	}
	handler.SetSearchTimeout(*searchTimeout)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Run the listener in a goroutine and shut down from the main one:
	// Shutdown blocks until in-flight requests drain, so no insert can
	// race the final snapshot/seal below.
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	log.Printf("tknnd listening on %s (dim %d, %s, S_L %d)", *addr, *dim, metric, *leaf)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s; draining connections", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("shutdown: %v", err)
		}
		if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			log.Printf("serve: %v", serveErr)
		}
	case err := <-errCh:
		// The listener failed outright (bad addr, port in use).
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}

	// Writes are drained; persist and seal.
	if manager != nil {
		start := time.Now()
		info, err := manager.Checkpoint()
		if err != nil {
			log.Printf("final checkpoint: %v (the WAL still holds every acknowledged insert)", err)
		} else {
			log.Printf("final checkpoint %s: %d vectors, %d bytes in %v", info.Path, ix.Len(), info.Bytes, time.Since(start).Round(time.Millisecond))
		}
		if err := manager.Close(); err != nil {
			log.Fatalf("sealing WAL: %v", err)
		}
	}
	if *saveOnExit != "" {
		start := time.Now()
		if err := saveIndex(ix, *saveOnExit); err != nil {
			log.Fatalf("saving index: %v", err)
		}
		log.Printf("saved %d vectors to %s in %v", ix.Len(), *saveOnExit, time.Since(start).Round(time.Millisecond))
	}
}

func saveIndex(ix *tknn.MBI, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// The cleanup removes are best-effort by design: the write or close
	// error being returned is the actionable failure, and a stale .tmp
	// file is harmless (the next save truncates it).
	if err := ix.Save(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	// Rename-into-place keeps a crash from leaving a torn file.
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("renaming into place: %w", err)
	}
	return nil
}
