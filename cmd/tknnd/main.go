// Command tknnd serves one MBI index over HTTP.
//
//	tknnd -addr :8080 -dim 128 -metric angular -leaf 4096
//
// Endpoints (JSON):
//
//	POST /vectors   insert one timestamped vector or a batch
//	POST /search    time-restricted kNN search
//	GET  /stats     index shape
//	GET  /healthz   liveness
//
// With -load the index starts from a file written by -save-on-exit (or by
// tknn.MBI.Save); with -save-on-exit it persists on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	tknn "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dim := flag.Int("dim", 128, "vector dimension")
	metricName := flag.String("metric", "euclidean", "distance metric: euclidean or angular")
	leaf := flag.Int("leaf", 4096, "MBI leaf size S_L")
	tau := flag.Float64("tau", 0.5, "block-selection threshold")
	degree := flag.Int("degree", 24, "per-block graph degree")
	eps := flag.Float64("eps", 1.2, "search range-extension factor")
	load := flag.String("load", "", "load index from file at startup")
	saveOnExit := flag.String("save-on-exit", "", "save index to file on shutdown")
	flag.Parse()

	var metric tknn.Metric
	switch *metricName {
	case "euclidean", "l2":
		metric = tknn.Euclidean
	case "angular", "cosine":
		metric = tknn.Angular
	default:
		log.Fatalf("unknown metric %q", *metricName)
	}

	opts := tknn.MBIOptions{
		Dim:         *dim,
		Metric:      metric,
		LeafSize:    *leaf,
		Tau:         *tau,
		GraphDegree: *degree,
		Epsilon:     *eps,
	}

	var ix *tknn.MBI
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			log.Fatalf("opening %s: %v", *load, ferr)
		}
		ix, err = tknn.LoadMBI(f, opts)
		_ = f.Close() // read-only handle; the load error below is the one that matters
		if err != nil {
			log.Fatalf("loading index: %v", err)
		}
		log.Printf("loaded %d vectors (%d blocks) from %s", ix.Len(), ix.BlockCount(), *load)
	} else {
		ix, err = tknn.NewMBI(opts)
		if err != nil {
			log.Fatalf("creating index: %v", err)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(ix),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("tknnd listening on %s (dim %d, %s, S_L %d)", *addr, *dim, metric, *leaf)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}

	if *saveOnExit != "" {
		if err := saveIndex(ix, *saveOnExit); err != nil {
			log.Fatalf("saving index: %v", err)
		}
		log.Printf("saved %d vectors to %s", ix.Len(), *saveOnExit)
	}
}

func saveIndex(ix *tknn.MBI, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// The cleanup removes are best-effort by design: the write or close
	// error being returned is the actionable failure, and a stale .tmp
	// file is harmless (the next save truncates it).
	if err := ix.Save(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	// Rename-into-place keeps a crash from leaving a torn file.
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("renaming into place: %w", err)
	}
	return nil
}
