package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule lock-discipline.
//
// The MBI index is a state machine (open leaf → sealed → built → swapped
// into the forest) guarded by sync.RWMutex fields, and the compiler
// verifies none of it. Two failure modes have bitten systems like this
// (see "Data Series Indexing Gone Parallel"): an exported accessor that
// reads tree state without taking the lock — fine under the race detector
// until a merge cascade moves the slice out from under it — and a
// hand-rolled Lock/Unlock pair where an early return on one branch leaks
// the lock or double-unlocks.
//
// The rule is a per-package heuristic, deliberately conservative:
//
//   - A struct field is considered "guarded" by a mutex field of the same
//     struct when some method assigns it after locking that mutex (or
//     inside a method whose name ends in "Locked", this repository's
//     convention for caller-holds-mu helpers).
//   - Exported methods that access a guarded field without acquiring the
//     guarding mutex anywhere in their body are flagged.
//   - A non-deferred Lock whose matching Unlock sits in a different
//     branch/block is flagged: that shape leaks the lock on any code path
//     added between them later.
//
// Function literals are analyzed as separate units: a closure passed to
// another goroutine has its own locking obligations.
const ruleLock = "lock-discipline"

// lockMethodNames are the sync.Mutex/RWMutex methods the rule tracks.
// TryLock/TryRLock count as acquisitions for held-ness; their pairing is
// handled specially in checkBranchUnlock (the successful branch holds).
var lockOps = map[string]bool{
	"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true,
}

func (l *linter) checkLockDiscipline(pkg *Package) {
	mutexFields := mutexFieldsByType(pkg)

	type methodInfo struct {
		decl    *ast.FuncDecl
		tn      *types.TypeName
		recvObj types.Object // the receiver variable; nil for unnamed receivers
	}
	var methods []methodInfo
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Branch-spanning unlock applies to every function; the
			// guarded-field analysis below only to methods of mutex-bearing
			// types.
			for _, unit := range funcUnits(fd.Body) {
				l.checkBranchUnlock(pkg, fd.Name.Name, unit)
			}
			if fd.Recv == nil {
				continue
			}
			tn, recvObj := receiverType(pkg, fd)
			if tn == nil || len(mutexFields[tn]) == 0 || recvObj == nil {
				continue
			}
			methods = append(methods, methodInfo{decl: fd, tn: tn, recvObj: recvObj})
		}
	}

	// Pass 1: learn which fields are written under which mutex.
	guarded := map[*types.TypeName]map[string]string{} // field -> guarding mutex
	for _, m := range methods {
		mf := mutexFields[m.tn]
		lockedHelper := strings.HasSuffix(m.decl.Name.Name, "Locked")
		defaultMu := defaultMutex(mf)
		for _, unit := range funcUnits(m.decl.Body) {
			// Positions of write-lock acquisitions per mutex field.
			lockPos := map[string][]token.Pos{}
			inspectUnit(unit, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if mu, op := recvMutexCall(pkg, call, m.recvObj, mf); mu != "" && op == "Lock" {
						lockPos[mu] = append(lockPos[mu], call.Pos())
					}
				}
				return true
			})
			record := func(field string, pos token.Pos) {
				if guarded[m.tn] == nil {
					guarded[m.tn] = map[string]string{}
				}
				if lockedHelper {
					guarded[m.tn][field] = defaultMu
					return
				}
				for mu, positions := range lockPos {
					for _, lp := range positions {
						if lp < pos {
							guarded[m.tn][field] = mu
							return
						}
					}
				}
			}
			inspectUnit(unit, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						if field := recvField(pkg, lhs, m.recvObj, mf); field != "" {
							if lockedHelper || len(lockPos) > 0 {
								record(field, lhs.Pos())
							}
						}
					}
				case *ast.IncDecStmt:
					if field := recvField(pkg, s.X, m.recvObj, mf); field != "" {
						if lockedHelper || len(lockPos) > 0 {
							record(field, s.X.Pos())
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: exported methods touching guarded fields without the lock.
	for _, m := range methods {
		name := m.decl.Name.Name
		if !ast.IsExported(name) || strings.HasSuffix(name, "Locked") {
			continue
		}
		if l.guardIndex().annotatedTypes[m.tn] {
			// The type opted into //tknn:guardedBy: the guarded-by rule
			// verifies it interprocedurally, so the heuristic stands down.
			continue
		}
		g := guarded[m.tn]
		if len(g) == 0 {
			continue
		}
		mf := mutexFields[m.tn]
		held := map[string]bool{}
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if mu, op := recvMutexCall(pkg, call, m.recvObj, mf); mu != "" && op != "Unlock" && op != "RUnlock" {
					held[mu] = true // Lock, RLock, or a Try variant
				}
			}
			return true
		})
		reported := map[string]bool{}
		// Only the method's own statements: accesses inside nested
		// closures may run under locks taken elsewhere, so they are
		// excluded rather than guessed at.
		inspectUnit(m.decl.Body, func(n ast.Node) bool {
			field := recvField(pkg, n, m.recvObj, mf)
			if field == "" || reported[field] {
				return true
			}
			mu, ok := g[field]
			if !ok || held[mu] {
				return true
			}
			reported[field] = true
			l.report(n.Pos(), ruleLock,
				"exported method %s accesses %s.%s without holding %s (the field is written under %s elsewhere in this package)",
				name, m.recvObj.Name(), field, mu, mu)
			return true
		})
	}
}

// mutexFieldsByType maps each named struct type of the package to its
// sync.Mutex / sync.RWMutex field names.
func mutexFieldsByType(pkg *Package) map[*types.TypeName][]string {
	out := map[*types.TypeName][]string{}
	if pkg.Types == nil {
		return out
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isSyncMutex(st.Field(i).Type()) {
				out[tn] = append(out[tn], st.Field(i).Name())
			}
		}
	}
	return out
}

// defaultMutex picks the mutex that *Locked helper methods are assumed to
// run under: the conventional "mu" if present, else the first declared.
func defaultMutex(fields []string) string {
	for _, f := range fields {
		if f == "mu" {
			return f
		}
	}
	sorted := append([]string(nil), fields...)
	sort.Strings(sorted)
	return sorted[0]
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverType resolves a method declaration to its receiver's type name
// and receiver variable object.
func receiverType(pkg *Package, fd *ast.FuncDecl) (*types.TypeName, types.Object) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, nil
	}
	recvIdent := fd.Recv.List[0].Names[0]
	obj := pkg.Info.Defs[recvIdent]
	if obj == nil {
		return nil, nil
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	return named.Obj(), obj
}

// recvMutexCall matches recv.<mutexField>.<op>() and returns the mutex
// field and operation, or "", "".
func recvMutexCall(pkg *Package, call *ast.CallExpr, recvObj types.Object, mutexFields []string) (string, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !lockOps[sel.Sel.Name] {
		return "", ""
	}
	inner, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := unparen(inner.X).(*ast.Ident)
	if !ok || pkg.Info.Uses[id] != recvObj {
		return "", ""
	}
	for _, mf := range mutexFields {
		if inner.Sel.Name == mf {
			return mf, sel.Sel.Name
		}
	}
	return "", ""
}

// recvField matches a recv.<field> selector (for a non-mutex field) and
// returns the field name, or "".
func recvField(pkg *Package, n ast.Node, recvObj types.Object, mutexFields []string) string {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok || pkg.Info.Uses[id] != recvObj {
		return ""
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	name := sel.Sel.Name
	for _, mf := range mutexFields {
		if name == mf {
			return ""
		}
	}
	return name
}

// funcUnits returns body plus every function literal beneath it, each to
// be analyzed as an independent unit.
func funcUnits(body *ast.BlockStmt) []ast.Node {
	units := []ast.Node{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			units = append(units, fl)
		}
		return true
	})
	return units
}

// inspectUnit walks a unit without descending into nested function
// literals (they are their own units).
func inspectUnit(unit ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(unit, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != unit {
			return false
		}
		return fn(n)
	})
}

// tryLockKey renders the receiver of a (possibly negated) TryLock
// condition, matching the key addCall produces for plain lock calls.
func tryLockKey(cond ast.Expr) string {
	e := unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		e = unparen(u.X)
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return types.ExprString(sel.X)
		}
	}
	return ""
}

// lockEvent is one Lock/Unlock call found during the branch scan.
type lockEvent struct {
	key       string // printed receiver expression, e.g. "ix.mu"
	op        string
	deferred  bool
	pos       token.Pos
	container ast.Node // the node owning the statement list the call sits in
}

// checkBranchUnlock flags non-deferred Lock/Unlock pairs whose two halves
// live in different statement lists.
func (l *linter) checkBranchUnlock(pkg *Package, fnName string, unit ast.Node) {
	var body *ast.BlockStmt
	switch u := unit.(type) {
	case *ast.BlockStmt:
		body = u
	case *ast.FuncLit:
		body = u.Body
	default:
		return
	}
	var events []lockEvent
	var walkList func(list []ast.Stmt, owner ast.Node)
	addCall := func(x ast.Expr, deferred bool, owner ast.Node) {
		call, ok := unparen(x).(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lockOps[sel.Sel.Name] {
			return
		}
		t, ok := pkg.Info.Types[sel.X]
		if !ok || !isSyncMutex(t.Type) {
			return
		}
		events = append(events, lockEvent{
			key:       types.ExprString(sel.X),
			op:        sel.Sel.Name,
			deferred:  deferred,
			pos:       call.Pos(),
			container: owner,
		})
	}
	walkStmt := func(s ast.Stmt, owner ast.Node) {
		switch st := s.(type) {
		case *ast.ExprStmt:
			addCall(st.X, false, owner)
		case *ast.DeferStmt:
			addCall(st.Call, true, owner)
		case *ast.BlockStmt:
			walkList(st.List, st)
		case *ast.IfStmt:
			// A TryLock in the condition acquires the lock for exactly one
			// branch: the success body for `if mu.TryLock()`, the code
			// after the statement for `if !mu.TryLock() { return }`.
			if _, flavor, negated, ok := tryLockCond(pkg, st.Cond); ok {
				op := "TryLock"
				if flavor == heldR {
					op = "TryRLock"
				}
				container := ast.Node(st.Body)
				if negated {
					container = owner
				}
				events = append(events, lockEvent{
					key:       tryLockKey(st.Cond),
					op:        op,
					pos:       st.Cond.Pos(),
					container: container,
				})
			}
			walkList(st.Body.List, st.Body)
			if st.Else != nil {
				walkList([]ast.Stmt{st.Else}, owner)
			}
		case *ast.ForStmt:
			walkList(st.Body.List, st.Body)
		case *ast.RangeStmt:
			walkList(st.Body.List, st.Body)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body, cc)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body, cc)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkList(cc.Body, cc)
				}
			}
		case *ast.LabeledStmt:
			walkList([]ast.Stmt{st.Stmt}, owner)
		}
		// GoStmt bodies run on another goroutine and FuncLit bodies are
		// separate units; neither is traversed here.
	}
	walkList = func(list []ast.Stmt, owner ast.Node) {
		for _, s := range list {
			walkStmt(s, owner)
		}
	}
	walkList(body.List, body)

	type openKey struct{ key, flavor string }
	open := map[openKey]lockEvent{}
	flavor := func(op string) string {
		if strings.HasPrefix(strings.TrimPrefix(op, "Try"), "R") {
			return "R"
		}
		return "W"
	}
	for _, ev := range events {
		k := openKey{ev.key, flavor(ev.op)}
		switch ev.op {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if !ev.deferred {
				open[k] = ev
			}
		case "Unlock", "RUnlock":
			lk, ok := open[k]
			if !ok {
				continue // unlock of a lock taken elsewhere (e.g. in a caller)
			}
			delete(open, k)
			if ev.deferred || lk.container == ev.container {
				continue
			}
			l.report(lk.pos, ruleLock,
				fmt.Sprintf("%s.%s() in %s is released on a different branch without defer; a new early return between them would leak the lock — use defer or keep the pair in one block",
					lk.key, lk.op, fnName))
		}
	}
}
