package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rule goroutine-leak.
//
// Every long-lived goroutine in the library follows one shape: it drains
// a channel (the merge worker ranges over its job queue), selects on a
// done channel (the WAL sync and checkpoint loops), or announces
// completion through a WaitGroup (the parallel build and ground-truth
// workers). A goroutine with none of those can never be joined — Close
// returns while it still runs, tests pass while it still holds the index
// alive, and under -race its late reads fire after teardown. That exact
// leak is why wal.Manager grew its done channel.
//
// The rule flags `go` statements whose callee body contains no join
// signal: no channel send or receive, no select, no range over a channel,
// no close, and no WaitGroup-style Done/Add/Wait call. Only callees the
// package can see are judged — a function literal or a same-package
// function/method; cross-package and dynamic callees are skipped rather
// than guessed at. Like no-global-rand, the rule covers library code
// (root package and internal/...): a binary's goroutines die with the
// process, a library's outlive their caller's interest.
const ruleGoroutine = "goroutine-leak"

func (l *linter) checkGoroutineLeak(pkg *Package) {
	if pkg.Rel != "" && !strings.HasPrefix(pkg.Rel, "internal/") {
		return // library packages only: root package and internal/...
	}
	// Same-package callees, resolvable through Uses: functions and
	// methods alike.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			name := "function literal"
			switch fun := unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			case *ast.Ident:
				if fd := decls[pkg.Info.Uses[fun]]; fd != nil {
					body, name = fd.Body, fun.Name
				}
			case *ast.SelectorExpr:
				if fd := decls[pkg.Info.Uses[fun.Sel]]; fd != nil {
					body, name = fd.Body, fun.Sel.Name
				}
			}
			if body == nil {
				return true // cross-package or dynamic callee: not analyzable here
			}
			if !hasJoinSignal(pkg, body) {
				l.report(gs.Pos(), ruleGoroutine,
					"goroutine %s has no completion signal (channel op, select, close, or WaitGroup Done/Add/Wait) and can never be joined; signal when it finishes or give it a done channel", name)
			}
			return true
		})
	}
}

// hasJoinSignal reports whether the body contains any construct through
// which the goroutine's completion can be observed or driven. Nested
// function literals count: a worker that defers a closure calling Done
// still signals.
func hasJoinSignal(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := unparen(x.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && pkg.Info.Uses[fun] == types.Universe.Lookup("close") {
					found = true
				}
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "Done", "Add", "Wait":
					found = true
				}
			}
		}
		return !found
	})
	return found
}
