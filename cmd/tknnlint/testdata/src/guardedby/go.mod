module lintcase

go 1.22
