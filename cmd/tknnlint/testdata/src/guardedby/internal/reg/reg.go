// Package reg exercises the guarded-by rule: directive parsing, direct
// and interprocedural access checks, RLock-held writes, the ...Locked
// call-site convention, closure isolation, the fresh-local exemption,
// and suppression.
package reg

import "sync"

// Tree carries the annotations. blocks and size are guarded by mu; hits
// needs both mu and statsMu. The bad/worse/ugly fields exercise the
// directive-misuse diagnostics.
type Tree struct {
	mu      sync.RWMutex
	statsMu sync.Mutex

	//tknn:guardedBy(mu)
	blocks []int
	size   int //tknn:guardedBy(mu)

	//tknn:guardedBy(mu, statsMu)
	hits int

	//tknn:guardedBy(nope)
	bad int

	//tknn:guardedBy(size)
	worse int

	//tknn:guardedBy
	ugly int
}

//tknn:guardedBy(mu)
func (t *Tree) Misplaced() {}

//tknn:guardedBy(mu)
var loose int

// NewTree initializes fields before the value is published: exempt.
func NewTree() *Tree {
	t := &Tree{}
	t.blocks = make([]int, 0, 8)
	t.size = 0
	return t
}

// Peek reads size without any lock: flagged.
func (t *Tree) Peek() int {
	return t.size
}

// Grow writes blocks while holding only the read lock: flagged as an
// RLock-held write.
func (t *Tree) Grow(n int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.blocks = append(t.blocks, n)
}

// Hit holds mu but not statsMu; both guards are required: flagged.
func (t *Tree) Hit() {
	t.mu.Lock()
	t.hits++
	t.mu.Unlock()
}

// HitBoth holds both guards in a consistent order: clean.
func (t *Tree) HitBoth() {
	t.mu.Lock()
	t.statsMu.Lock()
	t.hits++
	t.statsMu.Unlock()
	t.mu.Unlock()
}

// resetTail is private and lock-free, but every static caller holds mu,
// so the interprocedural entry set keeps it clean.
func (t *Tree) resetTail() {
	t.blocks = t.blocks[:0]
	t.size = 0
}

// Clear locks around resetTail: clean.
func (t *Tree) Clear() {
	t.mu.Lock()
	t.resetTail()
	t.mu.Unlock()
}

// Flush also locks; the intersection over both call sites holds mu.
func (t *Tree) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resetTail()
}

// dropAll is reached from an unlocked caller (Leak), so the
// intersection over call sites is empty: its write is flagged.
func (t *Tree) dropAll() {
	t.blocks = nil
}

// Leak forgets the lock before calling dropAll.
func (t *Tree) Leak() {
	t.dropAll()
}

// clearLocked follows the caller-holds-mu naming convention; the body is
// checked under that assumption and stays clean. Callers that do not
// hold mu are flagged at the call site instead.
func (t *Tree) clearLocked() {
	t.blocks = nil
	t.size = 0
}

// Good holds mu around the Locked call: clean.
func (t *Tree) Good() {
	t.mu.Lock()
	t.clearLocked()
	t.mu.Unlock()
}

// Bad calls the Locked helper without mu: flagged at the call.
func (t *Tree) Bad() {
	t.clearLocked()
}

// Walk builds a closure that reads blocks. Closures are separate units
// and inherit no held locks, so the read inside the literal is flagged
// even though Walk holds mu.
func (t *Tree) Walk() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := func() int { return len(t.blocks) }
	return f()
}

// TryBump writes size only inside the successful TryLock branch: clean.
func (t *Tree) TryBump() {
	if t.mu.TryLock() {
		t.size++
		t.mu.Unlock()
	}
}

// Snapshot reads lock-free on purpose and documents why: suppressed.
func (t *Tree) Snapshot() int {
	//lint:ignore guarded-by single-writer phase, documented in the call contract
	return t.size
}
