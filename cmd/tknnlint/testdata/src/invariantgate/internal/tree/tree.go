// Package tree exercises the invariant-gate rule: assertion calls whose
// arguments are evaluated in default builds because the call sits outside
// an `if invariant.Enabled` guard.
package tree

import (
	"fmt"

	"lintcase/internal/invariant"
)

// Node is a size-annotated binary tree node.
type Node struct {
	Left, Right *Node
	Size        int
}

func (n *Node) validate() error {
	if n == nil {
		return nil
	}
	want := 1
	for _, c := range []*Node{n.Left, n.Right} {
		if c != nil {
			if err := c.validate(); err != nil {
				return err
			}
			want += c.Size
		}
	}
	if n.Size != want {
		return fmt.Errorf("tree: node size %d, subtree has %d", n.Size, want)
	}
	return nil
}

// Insert runs the full validator unguarded: the O(n) walk happens in
// every production build. Firing case.
func Insert(n *Node) {
	n.Size++
	invariant.NoError(n.validate(), "tree: after insert")
}

// Remove guards correctly: Enabled is constant-false here, so the whole
// block is eliminated. Clean case.
func Remove(n *Node) {
	n.Size--
	if invariant.Enabled {
		invariant.NoError(n.validate(), "tree: after remove")
	}
}

// Rotate mixes the shapes: the first assertion is naked (firing case),
// the second sits under a compound Enabled condition (clean case).
func Rotate(n *Node) {
	invariant.Check(n.Size >= 0, "tree: size non-negative")
	if invariant.Enabled && n.Left != nil {
		invariant.Check(n.Left.Size < n.Size, "tree: left subtree smaller")
	}
}

// Balance is the accepted exception: the argument is a plain field
// comparison, cheap enough to tolerate unguarded.
func Balance(n *Node) {
	//lint:ignore invariant-gate argument is one integer comparison; guard would be noise
	invariant.Checkf(n.Size >= 0, "tree: balance precondition, size %d", n.Size)
}
