// Package invariant mirrors the repository's assertion layer: helpers
// that branch on a build-selected Enabled constant. The invariant-gate
// rule must not fire inside this package — the internal !Enabled fast
// path is exactly where the helpers are allowed to mention themselves.
package invariant

import "fmt"

// Enabled selects the checking build; the corpus pins it off.
const Enabled = false

// Violation is a failed assertion.
type Violation struct{ Msg string }

func (v Violation) Error() string { return "invariant violated: " + v.Msg }

// Check panics when cond is false in a checking build.
func Check(cond bool, msg string) {
	if !Enabled || cond {
		return
	}
	panic(Violation{Msg: msg})
}

// Checkf is Check with a formatted message.
func Checkf(cond bool, format string, args ...any) {
	if !Enabled || cond {
		return
	}
	panic(Violation{Msg: fmt.Sprintf(format, args...)})
}

// NoError panics when err is non-nil in a checking build.
func NoError(err error, context string) {
	if !Enabled || err == nil {
		return
	}
	panic(Violation{Msg: context + ": " + err.Error()})
}
