// Package wired exercises the gate rule over the second gated package
// (fault) and the cross-package guard cases: an `if fault.Enabled` block
// gates fault calls only — it never vouches for an invariant call, and
// vice versa.
package wired

import (
	"lintcase/internal/fault"
	"lintcase/internal/invariant"
)

// Append pays a registry lookup on every call in every build: the fault
// call sits outside a guard. Firing case.
func Append(rec []byte) error {
	if err := fault.Hit("wal.write"); err != nil {
		return err
	}
	return nil
}

// Sync guards correctly: Enabled is constant-false here, so the lookup
// is eliminated from default builds. Clean case.
func Sync() error {
	if fault.Enabled {
		if err := fault.Hit("wal.sync"); err != nil {
			return err
		}
	}
	return nil
}

// Mixed nests the wrong guards: a fault guard cannot vouch for an
// invariant call, nor an invariant guard for a fault call. Both firing
// cases.
func Mixed(n int) error {
	if fault.Enabled {
		invariant.Check(n >= 0, "wired: count non-negative")
	}
	if invariant.Enabled {
		if err := fault.Hit("wired.mixed"); err != nil {
			return err
		}
	}
	return nil
}
