// Package fault mirrors the repository's injection registry: the second
// gated package. Like internal/invariant, its helpers may mention
// themselves (the !Enabled fast path lives here), but every call site
// elsewhere must sit under an `if fault.Enabled` guard.
package fault

import "errors"

// Enabled selects the injection build; the corpus pins it off.
const Enabled = false

// ErrInjected marks a deliberately injected failure.
var ErrInjected = errors.New("injected fault")

// Hit reports whether the named injection point should fail now.
func Hit(point string) error {
	if !Enabled {
		return nil
	}
	return ErrInjected
}
