// Package lintcase is the module root: a library package, so the
// no-global-rand rule applies here too.
package lintcase

import "math/rand"

// Jitter draws from the process-global generator: flagged.
func Jitter() float64 {
	return rand.NormFloat64()
}

// SeededJitter threads an explicit generator: clean.
func SeededJitter(rng *rand.Rand) float64 {
	return rng.NormFloat64()
}
