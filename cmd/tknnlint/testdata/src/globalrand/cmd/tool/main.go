// Binaries are exempt from no-global-rand: reproducibility is a library
// property; a CLI may roll dice however it likes.
package main

import "math/rand"

func main() {
	_ = rand.Intn(3)
}
