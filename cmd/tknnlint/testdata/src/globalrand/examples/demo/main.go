// Examples are exempt: their randomness is not part of an index's
// identity, and global rand keeps snippets short.
package main

import (
	"fmt"
	"math/rand"
)

func main() {
	fmt.Println(rand.Intn(10))
}
