// Package sampler exercises the no-global-rand rule inside internal/.
package sampler

import "math/rand"

// Pick uses the global generator: flagged.
func Pick(n int) int {
	return rand.Intn(n)
}

// Shuffled uses two more top-level helpers: two findings.
func Shuffled(n int) []int {
	out := rand.Perm(n)
	rand.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Seeded builds an explicit generator: the rand.New/rand.NewSource
// constructors are the sanctioned calls, and methods on the resulting
// *rand.Rand are always fine.
func Seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Quiet documents an explicit exception.
func Quiet() float32 {
	//lint:ignore no-global-rand demo of a justified one-off exception
	return rand.Float32()
}

// Unjustified carries an ignore with no reason: the directive is invalid
// and the finding stays.
func Unjustified() float64 {
	//lint:ignore no-global-rand
	return rand.ExpFloat64()
}
