// Package pool exercises the copylock rule: by-value receivers,
// parameters, and range variables that carry synchronization primitives.
package pool

import (
	"sync"
	"sync/atomic"
)

// Buf guards its data with an embedded mutex; copying a Buf copies the
// mutex.
type Buf struct {
	mu   sync.Mutex
	data []byte
}

// Len has a value receiver: every call copies mu. Firing case.
func (b Buf) Len() int {
	return len(b.data)
}

// Reset takes the lock-bearing struct by value. Firing case.
func Reset(b Buf) {
	b.data = b.data[:0]
}

// Total copies each lock-bearing element into the range variable. Firing
// case.
func Total(bufs []Buf) int {
	n := 0
	for _, b := range bufs {
		n += len(b.data)
	}
	return n
}

// stats buries an atomic counter one struct deep, so the containment
// check must be transitive.
type stats struct {
	hits atomic.Int64
}

// tracked embeds stats by value.
type tracked struct {
	s    stats
	name string
}

// Describe receives the transitively lock-bearing struct by value. Firing
// case.
func Describe(t tracked) string {
	return t.name
}

// Snapshot is the accepted exception: the copy is taken before the value
// is ever shared, so the primitive inside has never been used.
//
//lint:ignore copylock copy happens before first use; the zero mutex is safe to duplicate
func Snapshot(b Buf) []byte {
	return append([]byte(nil), b.data...)
}

// Grow takes a pointer, the clean shape.
func Grow(b *Buf, n int) {
	b.mu.Lock()
	b.data = append(b.data, make([]byte, n)...)
	b.mu.Unlock()
}

// Sum ranges over indices, the clean shape for lock-bearing slices.
func Sum(bufs []Buf) int {
	n := 0
	for i := range bufs {
		n += len(bufs[i].data)
	}
	return n
}

// Names ranges over a slice of plain values: no primitive, no finding.
func Names(ts []string) int {
	n := 0
	for _, s := range ts {
		n += len(s)
	}
	return n
}
