// Package client is the HTTP-client scope: a dropped body-close leaks
// connections under load.
package client

import "io"

func drain(body io.ReadCloser) {
	io.Copy(io.Discard, body) // discarded copy count and error: flagged
	body.Close()              // discarded close error: flagged
}
