// Package persist is the snapshot-codec scope: a dropped write or close
// error here ships a torn index file.
package persist

import "os"

func snapshot(f *os.File, payload []byte) {
	f.Write(payload) // discarded write error: flagged
	_ = f.Close()    // explicit discard: clean
}
