// Package other sits outside cmd/ and internal/server: the
// unchecked-errors rule does not apply, noisy as the call may be.
package other

import "os"

// Cleanup discards an os error in an out-of-scope package: clean.
func Cleanup() {
	os.Remove("scratch")
}
