// Package fault is the eighth unchecked-errors scope: the injection
// registry is what the chaos and recovery gates trust, so a swallowed
// error in schedule parsing or installation makes a fault schedule
// silently weaker than the test believes.
package fault

import (
	"encoding/json"
	"io"
)

// DumpSchedule serializes the active schedule to w.
func DumpSchedule(w io.Writer, rules []string) {
	json.NewEncoder(w).Encode(rules)     // discarded encode error: flagged
	_ = json.NewEncoder(w).Encode(rules) // explicit discard: clean
}
