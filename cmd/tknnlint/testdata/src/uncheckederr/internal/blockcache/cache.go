// Package blockcache is the eighth unchecked-errors scope: its loader
// runs segment-file I/O on the query path, where a swallowed error turns
// a disk fault into silently missing results instead of a Partial
// outcome.
package blockcache

import (
	"io"
	"os"
)

// Fill pages one segment payload into buf.
func Fill(f *os.File, buf []byte) {
	io.ReadFull(f, buf)        // discarded read error: flagged
	_ = f.Close()              // explicit discard: clean
	defer f.Close()            // deferred close on a read path: accepted
	_, _ = io.ReadFull(f, buf) // explicit discard: clean
}
