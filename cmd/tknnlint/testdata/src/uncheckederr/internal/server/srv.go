// Package server is the second unchecked-errors scope.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

func handle(w http.ResponseWriter, v any) {
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(v) // discarded encoding error: flagged
	fmt.Fprintln(w, "done")      // fmt is outside the watched io/os/net/encoding set: clean
}
