// Package sq is the seventh unchecked-errors scope: quantized block codes
// flow into the persistence codec, so a swallowed encode error ships a
// file whose compressed sections disagree with their vectors.
package sq

import (
	"encoding/binary"
	"io"
)

// Dump serializes codes to w.
func Dump(w io.Writer, codes []uint8) {
	binary.Write(w, binary.LittleEndian, codes)     // discarded write error: flagged
	_ = binary.Write(w, binary.LittleEndian, codes) // explicit discard: clean
}
