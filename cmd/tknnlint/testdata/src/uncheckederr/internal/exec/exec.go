// Package exec is the fourth unchecked-errors scope: the shared query
// executor underlies every index's search path.
package exec

import "encoding/json"

func report(enc *json.Encoder, v any) {
	enc.Encode(v)     // discarded encode error: flagged
	_ = enc.Encode(v) // explicit discard: clean
}
