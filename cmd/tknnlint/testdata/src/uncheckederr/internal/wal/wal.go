// Package wal is the third unchecked-errors scope: dropped fsync and
// close errors void the durability guarantee.
package wal

import "os"

func seal(f *os.File) {
	f.Sync()                   // discarded fsync error: flagged
	f.Close()                  // discarded close error: flagged
	_ = os.Remove("stale.tmp") // explicit discard: clean
}
