// Command tool exercises the unchecked-errors rule inside cmd/ scope.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	os.Remove("stale.tmp") // discarded os error: flagged

	f, err := os.Create("out.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	json.NewEncoder(f).Encode(map[string]int{"a": 1}) // discarded encoding error: flagged
	f.Close()                                         // discarded close error on a write path: flagged

	_ = os.Remove("explicitly-ignored") // explicit discard: clean

	g, err := os.Open("in.json")
	if err != nil {
		return
	}
	defer g.Close() // deferred close on a read path is idiomatic: clean
	var v map[string]int
	if err := json.NewDecoder(g).Decode(&v); err != nil { // handled: clean
		return
	}
	fmt.Println(v)

	//lint:ignore unchecked-errors best-effort cleanup, failure changes nothing
	os.Remove("also-ignored")
}
