// Package invariant mirrors the real repository's debug-assertion shim so
// the corpus can exercise the `if invariant.Enabled` exemption.
package invariant

// Enabled reports whether assertions compile in.
const Enabled = false

// Checkf asserts cond.
func Checkf(cond bool, format string, args ...any) {}
