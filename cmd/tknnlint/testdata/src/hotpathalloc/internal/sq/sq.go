// Package sq mirrors the repository's scalar-quantization kernels: the
// LUT fill and asymmetric scan are //tknn:hotpath, so per-query
// allocations there must fire while the reviewed cold-start growth idiom
// stays suppressed.
package sq

// Codes is a block's quantized form.
type Codes struct {
	Dim  int
	Data []uint8
}

// Scanner reuses its lookup table across queries.
type Scanner struct {
	lut []float32
}

// FillLUT builds the query's lookup table.
//
//tknn:hotpath
func (s *Scanner) FillLUT(c *Codes, q []float32) []float32 {
	fresh := make([]float32, c.Dim*256) // flagged: per-query LUT allocation
	_ = fresh
	if cap(s.lut) < c.Dim*256 {
		//lint:ignore hotpath-alloc cold-start growth; the LUT is retained for every later query
		s.lut = make([]float32, c.Dim*256)
	}
	return s.lut[:c.Dim*256]
}
