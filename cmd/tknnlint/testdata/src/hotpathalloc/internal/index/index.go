// Package index exercises the hotpath-alloc rule: per-query heap
// allocations inside a //tknn:hotpath function and its transitive
// callees, next to the exempt shapes (reused selector state, caller
// buffers, resliced locals, invariant-guarded blocks) that must stay
// silent.
package index

import "lintcase/internal/invariant"

// Item is one scored result.
type Item struct {
	ID   int32
	Dist float32
}

// state carries the reusable buffers the exempt sites draw from.
type state struct {
	buf   []Item
	seen  map[int32]bool
	items []Item
}

var backing []byte

func payload() []byte { return backing }

func release(i int) {}

func sink(v any) {}

func filterWith(f func(Item) bool) {}

// Search is the corpus's hot root.
//
//tknn:hotpath
func (s *state) Search(dst []Item, q []float32, k int) []Item {
	ids := make([]int32, k) // flagged: make
	_ = ids
	extra := new(Item) // flagged: new
	_ = extra
	weights := []float32{1, 2, 3} // flagged: slice literal
	_ = weights
	boxed := &Item{ID: 1} // flagged: address-taken composite
	_ = boxed
	var grown []Item
	grown = append(grown, Item{ID: 2}) // flagged: growing a fresh local
	_ = grown
	lookup := map[int32]bool{} // flagged: map literal
	lookup[3] = true           // flagged: local map write
	name := string(payload())  // flagged: slice-to-string conversion
	_ = name
	escape := func() int { return k } // flagged: closure outlives statement
	_ = escape
	for i := 0; i < k; i++ {
		defer release(i) // flagged: defer in loop
	}
	sink(Item{ID: 4}) // flagged: struct boxed into interface parameter

	// Exempt shapes below: reused or caller-owned state never fires.
	s.items = append(s.items, Item{ID: 5})
	dst = append(dst[:0], s.items...)
	tmp := s.buf[:0]
	tmp = append(tmp, Item{ID: 6})
	_ = tmp
	s.seen[9] = true
	filterWith(func(it Item) bool { return it.ID > 0 })
	if invariant.Enabled {
		audit := make([]Item, k)
		invariant.Checkf(len(audit) == k, "audit sized %d", len(audit))
	}

	//lint:ignore hotpath-alloc cold-start growth retained across queries
	s.buf = make([]Item, 0, k)

	helperScore(q)

	//lint:ignore hotpath-alloc coldInit runs once per index, not per query
	coldInit(k)
	return dst
}

// helperScore is hot only transitively — reached from Search.
func helperScore(q []float32) {
	acc := make([]float32, len(q)) // flagged: make in a transitive callee
	_ = acc
}

// coldInit allocates freely: the suppressed call edge in Search keeps it
// out of the hot set.
func coldInit(k int) {
	warm := make([]Item, k)
	_ = warm
}

// Rebuild is unreachable from any hot root; its allocations are fine.
func Rebuild(n int) []Item {
	return make([]Item, n)
}
