// Package reg exercises both halves of the lock-discipline rule: the
// guarded-field heuristic and the branch-spanning unlock check.
package reg

import "sync"

// Registry guards count and hits with mu. Add teaches the analyzer the
// guard on count (write after mu.Lock); resetLocked teaches it the guard
// on hits (write inside a *Locked helper).
type Registry struct {
	mu    sync.RWMutex
	count int
	hits  int
	name  string // never written in a method: unguarded
}

// Add establishes that count is written under mu.
func (r *Registry) Add() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
}

// resetLocked follows the caller-holds-mu naming convention; its write
// still marks hits as guarded.
func (r *Registry) resetLocked() {
	r.hits = 0
}

// Peek reads the guarded count without any lock: flagged.
func (r *Registry) Peek() int {
	return r.count
}

// Hits reads a field only ever written by a *Locked helper, again without
// the lock: flagged.
func (r *Registry) Hits() int {
	return r.hits
}

// Len holds the read lock: clean.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.count
}

// Name reads an unguarded field: clean.
func (r *Registry) Name() string {
	return r.name
}

// Reset writes a guarded field lock-free but documents why: suppressed.
func (r *Registry) Reset() {
	//lint:ignore lock-discipline callers run Reset before any goroutines start
	r.count = 0
}

// Drain releases the lock on one branch and at the end of the function —
// the shape that leaks the lock when someone adds an early return.
// Flagged at the Lock call.
func (r *Registry) Drain(flush bool) int {
	r.mu.Lock()
	if flush {
		n := r.count
		r.count = 0
		r.mu.Unlock()
		return n
	}
	n := r.count
	r.mu.Unlock()
	return n
}

// swap keeps the pair in one block: clean even without defer.
func (r *Registry) swap(n int) int {
	r.mu.Lock()
	old := r.count
	r.count = n
	r.mu.Unlock()
	return old
}

// Touch holds the write lock while updating both fields: clean.
func (r *Registry) Touch() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.hits++
}

// TryDrain acquires via TryLock but releases on a different branch:
// flagged at the TryLock, same as a branch-spanning Lock.
func (r *Registry) TryDrain() int {
	if r.mu.TryLock() {
		if r.count > 0 {
			n := r.count
			r.count = 0
			r.mu.Unlock()
			return n
		}
		r.mu.Unlock()
	}
	return 0
}

// TryReset keeps the successful-TryLock acquisition and its release in
// one block: clean.
func (r *Registry) TryReset() {
	if r.mu.TryLock() {
		r.count = 0
		r.mu.Unlock()
	}
}
