// Package clean walks every rule's happy path at once; the linter must
// report nothing and exit zero here.
package clean

import (
	"math/rand"
	"sync"
)

// Counter is fully disciplined: every access holds mu.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc increments under the lock.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Value reads under the lock.
func (c *Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Sample threads a seeded generator.
func Sample(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
