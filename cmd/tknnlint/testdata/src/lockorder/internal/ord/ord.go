// Package ord exercises the lock-order rule: a direct two-lock cycle,
// a cycle closed through an interprocedural acquire, a reviewed
// (suppressed) cycle, and a consistently ordered pair that stays clean.
package ord

import "sync"

// S's two methods disagree on acquisition order: a→b and b→a form a
// cycle, reported once at the alphabetically-least edge's acquire site.
type S struct {
	a sync.Mutex
	b sync.Mutex
}

// AB acquires a then b.
func (s *S) AB() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

// BA acquires b then a: the reverse order.
func (s *S) BA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

// T closes its cycle interprocedurally: Cross holds c while lockD
// acquires d two frames down, and Back acquires c while holding d.
type T struct {
	c sync.Mutex
	d sync.Mutex
}

// lockD acquires d on behalf of its callers.
func (t *T) lockD() {
	t.d.Lock()
	t.d.Unlock()
}

// Cross holds c across the lockD call: edge c→d via may-entry
// propagation.
func (t *T) Cross() {
	t.c.Lock()
	t.lockD()
	t.c.Unlock()
}

// Back acquires c while holding d: edge d→c, closing the cycle.
func (t *T) Back() {
	t.d.Lock()
	t.c.Lock()
	t.c.Unlock()
	t.d.Unlock()
}

// U's cycle is reviewed and suppressed at the witness site.
type U struct {
	e sync.Mutex
	f sync.Mutex
}

// EF holds e while acquiring f; FE does the reverse, but the two are
// serialized by construction, so the witness carries an ignore.
func (u *U) EF() {
	u.e.Lock()
	//lint:ignore lock-order EF and FE are serialized by the caller; reviewed
	u.f.Lock()
	u.f.Unlock()
	u.e.Unlock()
}

func (u *U) FE() {
	u.f.Lock()
	u.e.Lock()
	u.e.Unlock()
	u.f.Unlock()
}

// V orders g before h everywhere: edge g→h only, no cycle, clean.
type V struct {
	g sync.Mutex
	h sync.Mutex
}

func (v *V) First() {
	v.g.Lock()
	v.h.Lock()
	v.h.Unlock()
	v.g.Unlock()
}

func (v *V) Second() {
	v.g.Lock()
	v.h.Lock()
	v.h.Unlock()
	v.g.Unlock()
}
