// Package exec exercises the ctx-discipline rule: context parameters out
// of first position, *Context names without a context, dropped caller
// contexts, and stored contexts — next to the clean shapes that must stay
// silent.
package exec

import "context"

// Runner stores a context, which outlives the call that created it.
type Runner struct {
	ctx context.Context // flagged: stored context
	n   int
}

// ScanContext takes its context after the data it scopes.
func ScanContext(n int, ctx context.Context) int { // flagged: context not first
	return drain(ctx, n)
}

// SearchContext promises a cancellable variant but accepts no context.
func SearchContext(q []float32, k int) int { // flagged: *Context without a context
	return k + len(q)
}

// Run was handed a context and replaces it with a fresh root.
func Run(ctx context.Context, n int) int {
	return drain(context.Background(), n) // flagged: drops caller's cancellation
}

// LegacyContext predates the context plumbing; the wire format pins its
// signature.
//lint:ignore ctx-discipline legacy signature kept for wire compatibility
func LegacyContext(n int) int {
	return n
}

// Drain is the clean shape: context first, threaded through.
func Drain(ctx context.Context, n int) int {
	return drain(ctx, n)
}

func drain(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}
