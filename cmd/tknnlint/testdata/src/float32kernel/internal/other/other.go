// Package other is outside the kernel scope entirely: float64 is fine.
package other

import "math"

// Mean is ordinary non-kernel code: clean.
func Mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / math.Max(1, float64(len(xs)))
}
