// Package vec mirrors the real internal/vec layout so the float32-kernel
// rule's package scoping and allowlist can be exercised.
package vec

import "math"

// Bad widens on the hot path twice: the conversion inside the loop and
// the math.Sqrt call are both findings. The untyped-constant float64
// accumulator is deliberately NOT a finding — the rule bans conversions
// and math calls, not the float64 type itself.
func Bad(a []float32) float32 {
	s := 0.0
	for _, x := range a {
		s += float64(x)
	}
	return float32(math.Sqrt(s))
}

// Good stays in float32 end to end.
func Good(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// sqrt32 is the allowlisted widening point: its conversion and math.Sqrt
// call produce no findings.
func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}

// Norm routes through the blessed helper: clean.
func Norm(a []float32) float32 {
	var s float32
	for _, x := range a {
		s += x * x
	}
	return sqrt32(s)
}

// Suppressed carries an explicit exception.
func Suppressed(a []float32) float32 {
	//lint:ignore float32-kernel reference computation kept for a doc example
	return float32(float64(a[0]) * 2)
}
