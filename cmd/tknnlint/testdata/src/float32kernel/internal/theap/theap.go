// Package theap is whole-package kernel scope: every function is checked.
package theap

import "math"

// AbsDiff leaks through math on the kernel path: the math.Abs call and
// the float64 conversion feeding it are two findings on one line.
func AbsDiff(a, b float32) float32 {
	return float32(math.Abs(float64(a - b)))
}

// Closer is the float32-only fix: clean.
func Closer(a, b float32) bool {
	d := a - b
	return d*d < 1e-12
}
