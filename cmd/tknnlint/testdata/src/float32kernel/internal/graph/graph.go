// Package graph is name-scoped: only *Distance*/*Search* functions are
// kernel code; construction-time helpers may use float64 freely.
package graph

// SearchScore matches the *Search* scope: flagged.
func SearchScore(d float32) float32 {
	return float32(float64(d) * 1.5)
}

// DistanceBound matches the *Distance* scope: flagged.
func DistanceBound(d float32) float32 {
	return float32(float64(d) + 0.5)
}

// buildBudget is construction-time code outside the scoped names: clean.
func buildBudget(n int) float64 {
	return float64(n) * 1.5
}
