// Package query exercises the scratch-reuse rule: hot functions that hold
// a scratch yet build fresh per-query state through New*/Get*
// constructors.
package query

import "sync"

// Scratch holds the reusable per-query buffers.
type Scratch struct {
	Heap  []int32
	Items []int32
}

var pool = sync.Pool{New: func() any { return &Scratch{} }}

// GetScratch borrows a pooled scratch.
func GetScratch() *Scratch { return pool.Get().(*Scratch) }

// NewScratch returns an empty scratch.
func NewScratch() *Scratch {
	var zero Scratch
	return &zero
}

// Search is the corpus's hot root; it already holds scr.
//
//tknn:hotpath
func Search(scr *Scratch, k int) []int32 {
	fresh := GetScratch() // flagged: scratch in hand, pool hit anyway
	_ = fresh
	scr2 := NewScratch() // flagged: scratch in hand, fresh one built
	_ = scr2
	//lint:ignore scratch-reuse searcher pool grows once at cold start
	warm := NewScratch()
	_ = warm
	scr.Heap = scr.Heap[:0]
	return scr.Heap
}

// Plan has no scratch in scope, so constructors are its own business.
//
//tknn:hotpath
func Plan(k int) *Scratch {
	return GetScratch()
}
