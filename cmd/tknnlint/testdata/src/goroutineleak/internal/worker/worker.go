// Package worker exercises the goroutine-leak rule: goroutines whose
// bodies carry no completion signal.
package worker

import "sync"

// Watch spins a literal with no join signal of any kind. Firing case.
func Watch(poll func() bool) {
	go func() {
		for {
			if poll() {
				return
			}
		}
	}()
}

// spin runs its work list forever; nothing outside can observe it stop.
func spin(fns []func()) {
	for {
		for _, fn := range fns {
			fn()
		}
	}
}

// RunAll leaks through a named same-package callee. Firing case.
func RunAll(fns []func()) {
	go spin(fns)
}

// Logger retries its flush forever.
type Logger struct {
	lines []string
	flush func([]string) error
}

func (lg *Logger) loop() {
	for {
		if err := lg.flush(lg.lines); err == nil {
			lg.lines = lg.lines[:0]
		}
	}
}

// Start leaks through a method callee. Firing case.
func Start(lg *Logger) {
	go lg.loop()
}

// daemonLoop ticks forever; there is deliberately no way to stop it.
func daemonLoop(tick func()) {
	for {
		tick()
	}
}

// Daemon is the accepted exception: a process-lifetime goroutine that is
// meant to die with the binary.
func Daemon(tick func()) {
	//lint:ignore goroutine-leak process-lifetime daemon; dies with the binary by design
	go daemonLoop(tick)
}

// FanOut joins through a WaitGroup. Clean case.
func FanOut(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Consume drains a channel: it stops when the producer closes. Clean
// case.
func Consume(jobs chan int, apply func(int)) {
	go func() {
		for j := range jobs {
			apply(j)
		}
	}()
}

// Notify signals completion on a done channel. Clean case.
func Notify(run func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		run()
		close(done)
	}()
	return done
}
