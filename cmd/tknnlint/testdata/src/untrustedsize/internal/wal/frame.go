// Package wal exercises the untrusted-size rule on the replay path:
// slice bounds from local read helpers and varint-decoded allocation
// sizes.
package wal

import (
	"bufio"
	"encoding/binary"
)

// readLen is a module-local decode helper: values it fills through a
// pointer are tainted at every caller.
func readLen(b []byte, out *uint32) {
	*out = binary.LittleEndian.Uint32(b)
}

// Frame slices by an unchecked decoded offset: flagged at the bound.
func Frame(b []byte) []byte {
	var n uint32
	readLen(b, &n)
	return b[:n]
}

// FrameChecked validates the offset against the buffer first: clean.
func FrameChecked(b []byte) []byte {
	var n uint32
	readLen(b, &n)
	if int(n) > len(b) {
		return nil
	}
	return b[:n]
}

// Varint allocates from a varint-decoded length with no cap: flagged.
func Varint(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}
