// Package blockcache is the third untrusted-size scope: cache loaders
// hand it payloads decoded from segment files, so any length it decodes
// itself must be bounded before it allocates.
package blockcache

import "encoding/binary"

// Admit sizes a resident buffer straight from a decoded segment header:
// flagged — a flipped bit becomes a multi-gigabyte allocation.
func Admit(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n)
}

// AdmitBounded caps the decoded length against the cache budget first:
// clean.
func AdmitBounded(hdr []byte, budget int) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	if int(n) > budget {
		return nil
	}
	return make([]byte, n)
}
