// Package persist exercises the untrusted-size rule on the snapshot
// decode path: unchecked decoded sizes flow into make and io.CopyN;
// bound-checked ones stay clean.
package persist

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxPayload = 1 << 20

var errTooLarge = errors.New("payload too large")

// LoadRaw allocates straight from a decoded count: flagged.
func LoadRaw(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// LoadCapped checks the decoded count before allocating: clean.
func LoadCapped(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	if n > maxPayload {
		return nil, errTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Spool copies a decoded length with no cap: flagged at the CopyN
// length argument.
func Spool(dst io.Writer, src io.Reader) error {
	var n uint64
	if err := binary.Read(src, binary.LittleEndian, &n); err != nil {
		return err
	}
	if _, err := io.CopyN(dst, src, int64(n)); err != nil {
		return err
	}
	return nil
}

// SpoolCapped bounds the length first: clean.
func SpoolCapped(dst io.Writer, src io.Reader) error {
	var n uint64
	if err := binary.Read(src, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n > maxPayload {
		return errTooLarge
	}
	if _, err := io.CopyN(dst, src, int64(n)); err != nil {
		return err
	}
	return nil
}

// Inline feeds the decode straight into make: flagged.
func Inline(hdr []byte) []int64 {
	return make([]int64, binary.LittleEndian.Uint16(hdr))
}

// Preload allocates from a decoded hint on purpose: suppressed.
func Preload(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	//lint:ignore untrusted-size startup-only sizing hint; a bad value fails fast at open
	return make([]byte, n)
}
