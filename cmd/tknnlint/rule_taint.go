package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rule untrusted-size.
//
// The persist and WAL decode paths parse bytes that came from disk —
// possibly truncated, possibly corrupted, possibly hostile. A length
// word decoded from such bytes and fed straight into make() is the
// classic crash-recovery attack surface: a flipped bit becomes a 4 GiB
// allocation. The chunked-read discipline (cap every decoded count
// against a sane bound before allocating) is established in
// internal/persist; this rule pins it so future format changes cannot
// regress it.
//
// Scope: internal/persist, internal/wal, and internal/blockcache —
// the last because the block cache's loader hands it payloads decoded
// from segment files, so any future decoding it grows must keep the
// same discipline.
//
// Sources (a value becomes tainted):
//   - results of encoding/binary ByteOrder decodes (order.Uint16/32/64)
//     and binary.ReadUvarint / binary.ReadVarint
//   - variables whose address is passed to binary.Read or to a
//     module-local read helper (func name starting with read/Read)
//
// Propagation: through assignments, arithmetic, and conversions —
// but NOT through function calls. A helper like minInt(n, readChunk)
// returns a clean value by construction; if the helper is wrong that is
// its own review problem, not every caller's.
//
// Sanitizer: any comparison (<, <=, >, >=, ==, !=) mentioning the
// tainted variable between the taint and the use. The rule does not
// judge whether the bound is correct — only that a bound check exists.
//
// Sinks: make() size/cap arguments, io.CopyN's length argument, and
// slice-expression bounds. A decode call sitting directly in a sink
// argument (make([]byte, order.Uint32(hdr))) is flagged the same way.
//
// The analysis is intraprocedural and position-ordered: latest event
// wins, so a re-decode after a check re-taints.
const ruleTaint = "untrusted-size"

// taintScope reports whether the rule applies to the package.
func taintScope(rel string) bool {
	return rel == "internal/persist" || rel == "internal/wal" || rel == "internal/blockcache" ||
		strings.HasPrefix(rel, "internal/persist/") || strings.HasPrefix(rel, "internal/wal/") ||
		strings.HasPrefix(rel, "internal/blockcache/")
}

func (l *linter) checkUntrustedSize(pkg *Package) {
	if !taintScope(pkg.Rel) {
		return
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			l.checkTaintBody(pkg, fd)
		}
	}
}

// taintState tracks, per variable, the positions where it was tainted
// and where it was bound-checked. A use is tainted when the latest
// preceding taint is later than the latest preceding sanitizer.
type taintState struct {
	pkg    *Package
	taints map[types.Object][]token.Pos
	sani   map[types.Object][]token.Pos
}

func (ts *taintState) taintedAt(obj types.Object, use token.Pos) bool {
	latest := func(evts []token.Pos) token.Pos {
		best := token.NoPos
		for _, p := range evts {
			if p < use && p > best {
				best = p
			}
		}
		return best
	}
	t := latest(ts.taints[obj])
	if t == token.NoPos {
		return false
	}
	return t > latest(ts.sani[obj])
}

// checkTaintBody runs the taint pass over one function.
func (l *linter) checkTaintBody(pkg *Package, fd *ast.FuncDecl) {
	ts := &taintState{
		pkg:    pkg,
		taints: map[types.Object][]token.Pos{},
		sani:   map[types.Object][]token.Pos{},
	}

	// Pass 1a: direct sources — &x passed to binary.Read or a read helper.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isDecodePtrSink(pkg, call) {
			return true
		}
		for _, arg := range call.Args {
			u, ok := unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			if id, ok := unparen(u.X).(*ast.Ident); ok {
				if obj := objectOf(pkg, id); obj != nil {
					ts.taints[obj] = append(ts.taints[obj], call.End())
				}
			}
		}
		return true
	})

	// Pass 1b: sanitizers — any comparison mentioning a variable.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := objectOf(pkg, id); obj != nil {
						ts.sani[obj] = append(ts.sani[obj], be.Pos())
					}
				}
				return true
			})
		}
		return true
	})

	// Pass 1c: propagation through assignments, to a fixpoint (loops can
	// carry taint backward through a second pass).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objectOf(pkg, id)
				if obj == nil {
					continue
				}
				if _, tainted := ts.exprTaint(as.Rhs[i], as.Rhs[i].Pos()); tainted {
					if !hasPos(ts.taints[obj], as.End()) {
						ts.taints[obj] = append(ts.taints[obj], as.End())
						changed = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: sinks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pkg, e, "make") {
				for _, arg := range e.Args[1:] {
					if name, tainted := ts.exprTaint(arg, arg.Pos()); tainted {
						l.report(arg.Pos(), ruleTaint,
							"make sized by untrusted decoded value %s with no bound check between decode and allocation; cap it first", name)
					}
				}
			}
			if isIoCopyN(pkg, e) && len(e.Args) == 3 {
				if name, tainted := ts.exprTaint(e.Args[2], e.Args[2].Pos()); tainted {
					l.report(e.Args[2].Pos(), ruleTaint,
						"io.CopyN length is untrusted decoded value %s with no bound check; cap it first", name)
				}
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{e.Low, e.High, e.Max} {
				if bound == nil {
					continue
				}
				if name, tainted := ts.exprTaint(bound, bound.Pos()); tainted {
					l.report(bound.Pos(), ruleTaint,
						"slice bound is untrusted decoded value %s with no bound check; validate it first", name)
				}
			}
		}
		return true
	})
}

func hasPos(evts []token.Pos, p token.Pos) bool {
	for _, e := range evts {
		if e == p {
			return true
		}
	}
	return false
}

// exprTaint reports whether the expression carries taint at use position
// `use`, and names the tainted variable (or "decoded value" for an
// inline decode call). Taint flows through arithmetic, conversions, and
// parens; it stops at function calls and at comparisons.
func (ts *taintState) exprTaint(e ast.Expr, use token.Pos) (string, bool) {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := objectOf(ts.pkg, x)
		if obj != nil && ts.taintedAt(obj, use) {
			return x.Name, true
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return "", false // boolean result: not a size
		}
		if name, t := ts.exprTaint(x.X, use); t {
			return name, true
		}
		return ts.exprTaint(x.Y, use)
	case *ast.UnaryExpr:
		return ts.exprTaint(x.X, use)
	case *ast.CallExpr:
		if isBinaryDecodeCall(ts.pkg, x) {
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				return sel.Sel.Name + "(...)", true
			}
			return "(inline decode)", true
		}
		// A conversion is transparent; any other call launders the value.
		if tv, ok := ts.pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return ts.exprTaint(x.Args[0], use)
		}
	}
	return "", false
}

// isBinaryDecodeCall matches order.Uint16/32/64 on an encoding/binary
// ByteOrder and binary.ReadUvarint / binary.ReadVarint.
func isBinaryDecodeCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || tv.Type == nil {
			return false
		}
		t := tv.Type
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "encoding/binary"
	case "ReadUvarint", "ReadVarint":
		fn := calleeFunc(pkg.Info, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary"
	}
	return false
}

// isDecodePtrSink matches calls that fill their pointer arguments with
// decoded bytes: binary.Read and module-local read helpers.
func isDecodePtrSink(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" && fn.Name() == "Read" {
		return true
	}
	// Module-local decode helper by naming convention.
	if fn.Pkg() != nil && fn.Pkg().Path() == pkg.ImportPath {
		name := fn.Name()
		return strings.HasPrefix(name, "read") || strings.HasPrefix(name, "Read")
	}
	return false
}

// isIoCopyN matches io.CopyN.
func isIoCopyN(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "io" && fn.Name() == "CopyN"
}
