package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata expected.txt files")

// caseDiags lints one testdata module with the default ./... pattern.
func caseDiags(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	match, err := matcher(nil)
	if err != nil {
		t.Fatal(err)
	}
	return Lint(mod, match)
}

// render formats the active findings the way the CLI's text mode does;
// suppressed findings are invisible here, exactly as they are to a user
// running tknnlint without -json.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range active(diags) {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGolden compares each corpus module's diagnostics against its
// expected.txt. Run `go test ./cmd/tknnlint -run Golden -update` after a
// deliberate rule or message change.
func TestGolden(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no testdata cases found")
	}
	for _, dir := range dirs {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			got := render(caseDiags(t, dir))
			expFile := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(expFile, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(expFile)
			if err != nil {
				t.Fatalf("reading golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCaseShape pins the corpus semantics independent of exact messages:
// which rule fires in each module, that positive modules yield findings
// (the non-zero exit path), and that clean stays clean.
func TestCaseShape(t *testing.T) {
	cases := []struct {
		dir      string
		rule     string // every finding must carry this rule
		minHits  int
		wantNone bool
	}{
		{dir: "float32kernel", rule: ruleFloat32, minHits: 5},
		{dir: "globalrand", rule: ruleRand, minHits: 4},
		{dir: "lockdiscipline", rule: ruleLock, minHits: 4},
		{dir: "guardedby", rule: ruleGuarded, minHits: 11},
		{dir: "lockorder", rule: ruleLockOrder, minHits: 2},
		{dir: "untrustedsize", rule: ruleTaint, minHits: 4},
		{dir: "uncheckederr", rule: ruleErr, minHits: 4},
		{dir: "copylock", rule: ruleCopylock, minHits: 4},
		{dir: "goroutineleak", rule: ruleGoroutine, minHits: 3},
		{dir: "invariantgate", rule: ruleInvariant, minHits: 2},
		{dir: "hotpathalloc", rule: ruleHotAlloc, minHits: 10},
		{dir: "ctxdiscipline", rule: ruleCtx, minHits: 4},
		{dir: "scratchreuse", rule: ruleScratch, minHits: 2},
		{dir: "clean", wantNone: true},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			diags := active(caseDiags(t, filepath.Join("testdata", "src", tc.dir)))
			if tc.wantNone {
				if len(diags) != 0 {
					t.Fatalf("expected no findings, got:\n%s", render(diags))
				}
				return
			}
			if len(diags) < tc.minHits {
				t.Errorf("expected at least %d findings, got %d:\n%s", tc.minHits, len(diags), render(diags))
			}
			for _, d := range diags {
				if d.Rule != tc.rule {
					t.Errorf("unexpected rule %s in %s case: %s", d.Rule, tc.rule, d)
				}
			}
		})
	}
}

// TestSuppression verifies that //lint:ignore removes exactly the
// annotated site: the suppressed functions appear in no diagnostic.
func TestSuppression(t *testing.T) {
	checks := []struct {
		dir     string
		file    string
		banned  string // substring that must not appear in any message position
		present string // substring that must appear (proves the rule fires elsewhere in the same file)
	}{
		{dir: "float32kernel", file: "internal/vec/vec.go", banned: "vec.go:50", present: "internal/vec/vec.go:14"},
		{dir: "globalrand", file: "internal/sampler/sampler.go", banned: "Float32", present: "Intn"},
		{dir: "lockdiscipline", file: "internal/reg/reg.go", banned: "Reset", present: "Peek"},
		{dir: "guardedby", file: "internal/reg/reg.go", banned: "reg.go:149", present: "reg.go:49"},
		{dir: "lockorder", file: "internal/ord/ord.go", banned: "ord.U", present: "ord.S"},
		{dir: "untrustedsize", file: "internal/persist/load.go", banned: "load.go:84", present: "load.go:23"},
		{dir: "uncheckederr", file: "cmd/tool/main.go", banned: "also-ignored", present: "Remove"},
		{dir: "copylock", file: "internal/pool/pool.go", banned: "Snapshot", present: "Reset"},
		{dir: "goroutineleak", file: "internal/worker/worker.go", banned: "daemonLoop", present: "spin"},
		{dir: "invariantgate", file: "internal/tree/tree.go", banned: "Checkf", present: "Check"},
		{dir: "hotpathalloc", file: "internal/index/index.go", banned: "index.go:91", present: "index.go:84"},
		{dir: "ctxdiscipline", file: "internal/exec/exec.go", banned: "LegacyContext", present: "SearchContext"},
		{dir: "scratchreuse", file: "internal/query/query.go", banned: "query.go:34", present: "NewScratch"},
	}
	for _, c := range checks {
		t.Run(c.dir, func(t *testing.T) {
			out := render(caseDiags(t, filepath.Join("testdata", "src", c.dir)))
			if c.banned != "" && strings.Contains(out, c.banned) {
				t.Errorf("suppressed site leaked (%q):\n%s", c.banned, out)
			}
			if c.present != "" && !strings.Contains(out, c.present) {
				t.Errorf("expected %q in output (rule should still fire at unsuppressed sites):\n%s", c.present, out)
			}
		})
	}
}

// TestRepoIsClean is the gate the CI lint step enforces: the repository
// itself must have no active findings. Suppressed findings are allowed —
// each is a reviewed //lint:ignore with a reason — and -json reports them,
// so the test asserts every reported finding is marked suppressed.
// Loading the whole module costs a few seconds of std-lib type checking,
// so it is skipped in -short mode.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("tknnlint on the repository exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("active finding in the repository: %s", d)
		}
	}
}

// TestRunExitCodes drives the CLI entry point against a positive corpus
// module to pin the exit-code contract: 1 on findings, 2 on a bad flag.
func TestRunExitCodes(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := os.Chdir(filepath.Join("testdata", "src", "uncheckederr")); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Errorf("positive corpus: want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "["+ruleErr+"]") {
		t.Errorf("text output missing [%s] tag:\n%s", ruleErr, stdout.String())
	}
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: want exit 2, got %d", code)
	}
	if code := run([]string{"./no/such/dir/..."}, &stdout, &stderr); code != 2 {
		t.Errorf("pattern matching no packages: want exit 2, got %d", code)
	}
}

// TestJSONSuppressionStatus pins the -json contract on a corpus module
// that has both kinds of finding: every diagnostic appears, suppressed
// ones flagged as such, and the exit code reflects only the active set.
func TestJSONSuppressionStatus(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := os.Chdir(filepath.Join("testdata", "src", "copylock")); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("module with active findings: want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	activeN, suppressedN := 0, 0
	for _, d := range diags {
		if d.Rule != ruleCopylock {
			t.Errorf("unexpected rule %s: %s", d.Rule, d)
		}
		if d.Suppressed {
			suppressedN++
		} else {
			activeN++
		}
	}
	if activeN == 0 || suppressedN == 0 {
		t.Errorf("want both active and suppressed findings in JSON, got %d active / %d suppressed:\n%s",
			activeN, suppressedN, stdout.String())
	}
}

// TestGuardDirectiveArgs pins the directive grammar: the accepted forms
// and each malformed shape's rejection. Resolution errors (unknown mutex,
// non-mutex target, directive on a method or var) are covered by the
// guardedby golden corpus.
func TestGuardDirectiveArgs(t *testing.T) {
	cases := []struct {
		text    string
		names   []string
		wantErr bool
	}{
		{text: "//tknn:guardedBy(mu)", names: []string{"mu"}},
		{text: "//tknn:guardedBy(mu, statsMu)", names: []string{"mu", "statsMu"}},
		{text: "//tknn:guardedBy(mu,statsMu,cpMu)", names: []string{"mu", "statsMu", "cpMu"}},
		{text: "//tknn:guardedBy", wantErr: true},
		{text: "//tknn:guardedBy()", wantErr: true},
		{text: "//tknn:guardedBy(mu", wantErr: true},
		{text: "//tknn:guardedBy(,)", wantErr: true},
		{text: "//tknn:guardedBy mu", wantErr: true},
	}
	for _, c := range cases {
		names, errMsg := parseGuardArgs(c.text)
		if c.wantErr {
			if errMsg == "" {
				t.Errorf("parseGuardArgs(%q): want error, got names %v", c.text, names)
			}
			continue
		}
		if errMsg != "" {
			t.Errorf("parseGuardArgs(%q): unexpected error %q", c.text, errMsg)
			continue
		}
		if len(names) != len(c.names) {
			t.Errorf("parseGuardArgs(%q) = %v, want %v", c.text, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("parseGuardArgs(%q)[%d] = %q, want %q", c.text, i, names[i], c.names[i])
			}
		}
	}
}

// TestSARIFOutput drives -sarif against the guardedby corpus: valid
// SARIF 2.1.0, one result per diagnostic (suppressed included, marked
// with an inSource suppression), exit code still 1 on active findings.
func TestSARIFOutput(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := os.Chdir(filepath.Join("testdata", "src", "guardedby")); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("corpus with active findings: want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	var doc sarifDoc
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if doc.Version != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "tknnlint" {
		t.Fatalf("want one run driven by tknnlint, got %+v", doc.Runs)
	}
	if len(doc.Runs[0].Tool.Driver.Rules) != len(ruleCatalog) {
		t.Errorf("driver.rules has %d entries, want %d", len(doc.Runs[0].Tool.Driver.Rules), len(ruleCatalog))
	}
	activeN, suppressedN := 0, 0
	for _, r := range doc.Runs[0].Results {
		if r.RuleID != ruleGuarded {
			t.Errorf("unexpected ruleId %q", r.RuleID)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
			t.Errorf("result missing physical location: %+v", r)
		}
		if len(r.Suppressions) > 0 {
			if r.Suppressions[0].Kind != "inSource" {
				t.Errorf("suppression kind = %q, want inSource", r.Suppressions[0].Kind)
			}
			suppressedN++
		} else {
			activeN++
		}
	}
	if activeN == 0 || suppressedN == 0 {
		t.Errorf("want both active and suppressed results, got %d active / %d suppressed", activeN, suppressedN)
	}
	if code := run([]string{"-sarif", "-json", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("-sarif with -json: want exit 2, got %d", code)
	}
}

// TestLockGraphDOT drives -lockgraph against the lockorder corpus and
// pins the DOT shape: deterministic digraph with the expected edges.
func TestLockGraphDOT(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := os.Chdir(filepath.Join("testdata", "src", "lockorder")); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-lockgraph", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-lockgraph: want exit 0, got %d (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"digraph lockorder {",
		`"ord.S.a" -> "ord.S.b"`,
		`"ord.S.b" -> "ord.S.a"`,
		`"ord.T.c" -> "ord.T.d"`, // interprocedural: held across the lockD call
		`"ord.V.g" -> "ord.V.h"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"ord.V.h" -> "ord.V.g"`) {
		t.Errorf("DOT output has a reverse V edge that no code creates:\n%s", out)
	}
	// Determinism: a second run renders byte-identical output.
	var again bytes.Buffer
	if code := run([]string{"-lockgraph", "./..."}, &again, &stderr); code != 0 {
		t.Fatalf("second -lockgraph run: exit %d", code)
	}
	if again.String() != out {
		t.Error("-lockgraph output is not deterministic across runs")
	}
}

// TestMatcher pins the package-pattern subset the Makefile and CI rely on.
func TestMatcher(t *testing.T) {
	pkg := func(rel string) *Package { return &Package{Rel: rel} }
	cases := []struct {
		patterns []string
		rel      string
		want     bool
	}{
		{nil, "internal/vec", true},
		{[]string{"./..."}, "", true},
		{[]string{"./internal/..."}, "internal/core", true},
		{[]string{"./internal/..."}, "cmd/tknnd", false},
		{[]string{"./internal/vec"}, "internal/vec", true},
		{[]string{"internal/vec"}, "internal/vecstore", false},
	}
	for _, c := range cases {
		m, err := matcher(c.patterns)
		if err != nil {
			t.Fatal(err)
		}
		if got := m(pkg(c.rel)); got != c.want {
			t.Errorf("matcher(%v)(%q) = %v, want %v", c.patterns, c.rel, got, c.want)
		}
	}
}
