package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Static held-lock tracking shared by the guarded-by and lock-order
// rules.
//
// Locks are identified by their declaration object (*types.Var): a mutex
// field of a struct, a package-level mutex var, or a function-local
// mutex. The analysis is type-level, not instance-level — `a.mu` and
// `b.mu` of two values of the same struct type are the same lock key.
// That is the standard approximation for annotation checkers: it is
// exact for the single-instance mutexes this repository uses and errs
// toward false positives (caught in review) rather than silence when a
// type is instantiated many times.
//
// Within one function unit (a body, or a function literal — closures are
// separate units with no inherited state), Lock/RLock/Unlock/RUnlock
// calls become a position-ordered event list. Each event carries the
// span of its innermost enclosing block, and only applies to program
// points inside that span. That scoping is what makes the common
// early-return shape
//
//	mu.Lock()
//	if bad { mu.Unlock(); return err }
//	guarded = ...        // still under mu
//	mu.Unlock()
//
// come out right: the branch-local Unlock does not release the lock for
// the code after the branch, and a TryLock in an if condition holds its
// mutex exactly within the success body. Deferred unlocks hold to the
// end of the unit and never release early.

// lockFlavor distinguishes read- from write-held mutexes.
type lockFlavor int

const (
	heldR lockFlavor = 1 // RLock held
	heldW lockFlavor = 2 // Lock held (subsumes R)
)

// heldSet maps a mutex object to the strongest flavor it is held at.
type heldSet map[*types.Var]lockFlavor

// add records mu held at flavor f, keeping the strongest flavor.
func (h heldSet) add(mu *types.Var, f lockFlavor) {
	if h[mu] < f {
		h[mu] = f
	}
}

// union merges o into a copy of h and returns it; either may be nil.
func (h heldSet) union(o heldSet) heldSet {
	out := heldSet{}
	for mu, f := range h {
		out.add(mu, f)
	}
	for mu, f := range o {
		out.add(mu, f)
	}
	return out
}

// intersect keeps the locks present in both sets, at the weaker flavor.
func (h heldSet) intersect(o heldSet) heldSet {
	out := heldSet{}
	for mu, f := range h {
		if of, ok := o[mu]; ok {
			if of < f {
				f = of
			}
			out[mu] = f
		}
	}
	return out
}

// equal reports set equality including flavors.
func (h heldSet) equal(o heldSet) bool {
	if len(h) != len(o) {
		return false
	}
	for mu, f := range h {
		if o[mu] != f {
			return false
		}
	}
	return true
}

// lockEvt is one acquire or release inside a unit.
type lockEvt struct {
	mu      *types.Var
	flavor  lockFlavor
	acquire bool
	pos     token.Pos
	scope   span // the event applies only to positions inside this span
}

// unitLockEvents collects the position-ordered lock events of one unit
// (a function body or a single function literal), not descending into
// nested literals. unitSpan is the whole unit's position range, used as
// the scope of top-level events.
func unitLockEvents(pkg *Package, unit ast.Node) []lockEvt {
	var body *ast.BlockStmt
	switch u := unit.(type) {
	case *ast.BlockStmt:
		body = u
	case *ast.FuncLit:
		body = u.Body
	default:
		return nil
	}
	unitSpan := span{body.Pos(), body.End()}

	// parentScope[n] is the span of the innermost enclosing block-like
	// node for every node in the unit.
	var evts []lockEvt
	var walk func(n ast.Node, scope span, deferred bool)
	addCall := func(call *ast.CallExpr, scope span, deferred bool) {
		mu, op := mutexCall(pkg, call)
		if mu == nil {
			return
		}
		switch op {
		case "Lock":
			if !deferred {
				evts = append(evts, lockEvt{mu: mu, flavor: heldW, acquire: true, pos: call.Pos(), scope: scope})
			}
		case "RLock":
			if !deferred {
				evts = append(evts, lockEvt{mu: mu, flavor: heldR, acquire: true, pos: call.Pos(), scope: scope})
			}
		case "Unlock":
			if !deferred { // deferred unlocks hold to the end of the unit
				evts = append(evts, lockEvt{mu: mu, flavor: heldW, pos: call.Pos(), scope: scope})
			}
		case "RUnlock":
			if !deferred {
				evts = append(evts, lockEvt{mu: mu, flavor: heldR, pos: call.Pos(), scope: scope})
			}
		}
	}
	walk = func(n ast.Node, scope span, deferred bool) {
		switch s := n.(type) {
		case nil:
			return
		case *ast.BlockStmt:
			inner := span{s.Pos(), s.End()}
			for _, st := range s.List {
				walk(st, inner, false)
			}
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok {
				addCall(call, scope, false)
			}
		case *ast.DeferStmt:
			addCall(s.Call, scope, true)
		case *ast.IfStmt:
			if s.Init != nil {
				walk(s.Init, scope, false)
			}
			// A TryLock in the condition acquires for exactly one branch:
			// the success body for `if mu.TryLock()`, the code after the
			// statement for the early-return `if !mu.TryLock() { return }`.
			if mu, flavor, negated, ok := tryLockCond(pkg, s.Cond); ok {
				if negated {
					evts = append(evts, lockEvt{mu: mu, flavor: flavor, acquire: true, pos: s.End(), scope: scope})
				} else {
					evts = append(evts, lockEvt{mu: mu, flavor: flavor, acquire: true, pos: s.Body.Pos(), scope: span{s.Body.Pos(), s.Body.End()}})
				}
			}
			walk(s.Body, scope, false)
			walk(s.Else, scope, false)
		case *ast.ForStmt:
			walk(s.Init, scope, false)
			walk(s.Post, scope, false)
			walk(s.Body, scope, false)
		case *ast.RangeStmt:
			walk(s.Body, scope, false)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					inner := span{cc.Pos(), cc.End()}
					for _, st := range cc.Body {
						walk(st, inner, false)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					inner := span{cc.Pos(), cc.End()}
					for _, st := range cc.Body {
						walk(st, inner, false)
					}
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					inner := span{cc.Pos(), cc.End()}
					for _, st := range cc.Body {
						walk(st, inner, false)
					}
				}
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, scope, false)
		}
		// GoStmt bodies run on another goroutine and FuncLit bodies are
		// separate units; neither contributes events here.
	}
	for _, st := range body.List {
		walk(st, unitSpan, false)
	}
	// Negated-TryLock events carry a post-statement position and are
	// appended before the branch body is walked; replay needs strict
	// position order.
	sort.Slice(evts, func(i, j int) bool { return evts[i].pos < evts[j].pos })
	return evts
}

// heldAtPos replays the unit's events up to p and returns the locks held
// there. Events on branches that do not contain p are skipped.
func heldAtPos(evts []lockEvt, p token.Pos) heldSet {
	type open struct {
		mu     *types.Var
		flavor lockFlavor
	}
	var stack []open
	for _, e := range evts {
		if e.pos >= p {
			break
		}
		if p < e.scope.lo || p >= e.scope.hi {
			continue // branch-local event; p is elsewhere
		}
		if e.acquire {
			stack = append(stack, open{e.mu, e.flavor})
			continue
		}
		// Release: pop the most recent matching acquire, if any.
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].mu == e.mu && stack[i].flavor == e.flavor {
				stack = append(stack[:i], stack[i+1:]...)
				break
			}
		}
	}
	held := heldSet{}
	for _, o := range stack {
		held.add(o.mu, o.flavor)
	}
	return held
}

// mutexCall matches <expr>.<op>() where <expr> resolves to a
// sync.Mutex/RWMutex object (struct field, package-level var, or local
// var) and op is a lock operation. Try variants are resolved by
// tryLockCond; here they return "" so statement-position TryLock calls
// (whose result is discarded) contribute nothing.
func mutexCall(pkg *Package, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	mu := mutexObject(pkg, sel.X)
	if mu == nil {
		return nil, ""
	}
	return mu, op
}

// tryLockCond recognizes `mu.TryLock()` / `mu.TryRLock()` (optionally
// under a single !) as an if condition and returns the mutex, the flavor
// a success acquires, and whether the condition was negated.
func tryLockCond(pkg *Package, cond ast.Expr) (*types.Var, lockFlavor, bool, bool) {
	negated := false
	e := unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		negated = true
		e = unparen(u.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, 0, false, false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0, false, false
	}
	var flavor lockFlavor
	switch sel.Sel.Name {
	case "TryLock":
		flavor = heldW
	case "TryRLock":
		flavor = heldR
	default:
		return nil, 0, false, false
	}
	mu := mutexObject(pkg, sel.X)
	if mu == nil {
		return nil, 0, false, false
	}
	return mu, flavor, negated, true
}

// mutexObject resolves an expression naming a mutex to its declaration
// object: `x.mu` (field selection, however deep the base), `pkgMu`
// (package-level or local var), or `s.inner.mu`. Returns nil when the
// expression is not a sync mutex or cannot be resolved statically.
func mutexObject(pkg *Package, e ast.Expr) *types.Var {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		s, ok := pkg.Info.Selections[x]
		if !ok || s.Kind() != types.FieldVal {
			// Package-qualified var (pkg.Mu): the Sel resolves via Uses.
			if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && isSyncMutex(v.Type()) {
				return v
			}
			return nil
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !isSyncMutex(v.Type()) {
			return nil
		}
		return v
	case *ast.Ident:
		v, ok := objectOf(pkg, x).(*types.Var)
		if !ok || !isSyncMutex(v.Type()) {
			return nil
		}
		return v
	}
	return nil
}

// lockDisplayName renders a mutex object for messages and the DOT graph:
// "pkg.Type.field" for struct fields, "pkg.var" otherwise.
func lockDisplayName(mu *types.Var) string {
	name := mu.Name()
	if mu.IsField() {
		if owner := fieldOwner(mu); owner != nil {
			name = owner.Name() + "." + name
		}
	}
	if mu.Pkg() != nil {
		name = mu.Pkg().Name() + "." + name
	}
	return name
}

// fieldOwner finds the named struct type declaring field, scanning the
// field's package scope.
func fieldOwner(field *types.Var) *types.TypeName {
	if field.Pkg() == nil {
		return nil
	}
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn
			}
		}
	}
	return nil
}

// lockedHelperName reports whether the function follows the
// caller-holds-the-lock naming convention.
func lockedHelperName(fn *types.Func) bool {
	return strings.HasSuffix(fn.Name(), "Locked")
}

// receiverDefaultMutex returns the conventional mutex of fn's receiver
// type for *Locked helpers: the field named "mu" if present, else the
// first declared mutex field. nil for non-methods and mutex-less types.
func receiverDefaultMutex(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var first *types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !isSyncMutex(f.Type()) {
			continue
		}
		if f.Name() == "mu" {
			return f
		}
		if first == nil {
			first = f
		}
	}
	return first
}
