// Command tknnlint is this repository's static analyzer: it enforces the
// invariants the compiler cannot see and `go vet` does not know about.
//
//	tknnlint [-json|-sarif] [-lockgraph] [packages]
//
// Packages follow the usual ./... patterns; the default is the whole
// module. Exit status is 0 when clean, 1 when findings were reported, and
// 2 on usage or load errors, so it slots directly into CI next to vet.
//
// Rules (see `tknnlint -rules` and DESIGN.md "Static analysis & CI
// gates"):
//
//	float32-kernel    hot-path distance kernels must stay float32
//	no-global-rand    library code threads seeded *rand.Rand, never the
//	                  global generator
//	lock-discipline   exported methods hold the mutex guarding the fields
//	                  they touch; branchy Lock/Unlock pairs use defer
//	unchecked-errors  cmd/, internal/server, internal/wal, internal/exec,
//	                  internal/persist, and internal/client check
//	                  io/os/net/encoding errors
//	copylock          no by-value receivers, parameters, or range
//	                  variables carrying sync/atomic primitives
//	goroutine-leak    library goroutines carry a completion signal
//	                  (channel op, select, close, WaitGroup method)
//	invariant-gate    internal/invariant calls sit inside an
//	                  `if invariant.Enabled` guard
//	hotpath-alloc     //tknn:hotpath functions and their transitive
//	                  callees perform no per-query heap allocations
//	ctx-discipline    query-path packages take context first, *Context
//	                  functions accept one, held contexts are threaded
//	                  (never replaced by Background/TODO), and no
//	                  struct stores a context
//	scratch-reuse     hot functions holding a *Scratch draw per-query
//	                  buffers from it instead of New*/Get* constructors
//	guarded-by        fields annotated //tknn:guardedBy(mu) are accessed
//	                  only with the named mutex statically held, verified
//	                  interprocedurally; RLock-held writes are flagged
//	lock-order        acquire-while-holding edges form a module-wide
//	                  lock-ordering graph; cycles are potential deadlocks
//	untrusted-size    internal/persist and internal/wal never size an
//	                  allocation from a decoded value without a bound
//	                  check in between
//
// Any finding can be suppressed, one site at a time, with a trailing or
// preceding comment:
//
//	//lint:ignore <rule>[,<rule>...] reason for the exception
//
// Text output and the exit status consider only active findings. -json
// emits every finding, suppressed ones included, each object carrying
// file/line/col, the rule name, the message, and "suppressed" — so a CI
// artifact of the JSON output records the accepted exceptions too.
// -sarif emits the same information as SARIF 2.1.0 (suppressed findings
// carry an inSource suppression) for code-scanning UIs. The exit status
// is 1 exactly when active findings exist, in all output modes.
//
// -lockgraph skips linting and prints the module's lock-ordering graph
// as DOT (see `make lockgraph` and DESIGN.md).
//
// The analyzer is built on go/parser and go/types alone — the module has
// no dependencies, and the linter keeps it that way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tknnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	lockGraph := fs.Bool("lockgraph", false, "print the lock-ordering graph as DOT and exit")
	listRules := fs.Bool("rules", false, "print the rule catalog and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tknnlint [-json|-sarif] [-lockgraph] [-rules] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range ruleCatalog {
			fmt.Fprintf(stdout, "%-16s %s\n", r.Name, r.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "tknnlint: -json and -sarif are mutually exclusive")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "tknnlint:", err)
		return 2
	}
	mod, err := LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *lockGraph {
		fmt.Fprint(stdout, LockGraphDOT(mod))
		return 0
	}
	match, err := matcher(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "tknnlint:", err)
		return 2
	}
	// A typo'd pattern silently passing would defeat the CI gate: treat
	// "matched nothing" like go vet does, as an error.
	matched := 0
	for _, pkg := range mod.Pkgs {
		if match(pkg) {
			matched++
		}
	}
	if matched == 0 {
		fmt.Fprintf(stderr, "tknnlint: %v matched no packages\n", fs.Args())
		return 2
	}
	diags := Lint(mod, match)
	act := active(diags)

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "tknnlint:", err)
			return 2
		}
	case *sarifOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifReport(diags)); err != nil {
			fmt.Fprintln(stderr, "tknnlint:", err)
			return 2
		}
	default:
		for _, d := range act {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(act) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(stderr, "tknnlint: %d finding(s)\n", len(act))
		}
		return 1
	}
	return 0
}
