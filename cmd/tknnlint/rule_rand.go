package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// Rule no-global-rand.
//
// Every randomized algorithm in the library — NNDescent's neighbor
// sampling, kmeans++ seeding, NSW insertion, Algorithm 2's random entry
// point — must draw from a seeded *rand.Rand threaded in by the caller.
// The paper's evaluation depends on bit-identical index rebuilds (the
// async-merge equivalence test literally compares adjacency arrays), and
// one call to the global generator anywhere in a build path silently
// destroys that: the global source is seeded from runtime entropy and
// shared across goroutines, so results change run to run and under
// different goroutine interleavings. Library packages therefore must not
// call top-level math/rand functions. Binaries (cmd/), examples, and
// tests may: their randomness is not part of an index's identity.
const ruleRand = "no-global-rand"

// randConstructors are the math/rand top-level functions that build
// explicit generators rather than touching the global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func (l *linter) checkGlobalRand(pkg *Package) {
	if pkg.Rel != "" && !strings.HasPrefix(pkg.Rel, "internal/") {
		return // library packages only: root package and internal/...
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if randConstructors[sel.Sel.Name] {
				return true
			}
			l.report(call.Pos(), ruleRand,
				"top-level rand.%s uses the process-global generator and breaks reproducible builds; thread a seeded *rand.Rand through the constructor",
				sel.Sel.Name)
			return true
		})
	}
}
